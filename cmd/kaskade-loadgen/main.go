// Command kaskade-loadgen drives a running kaskaded daemon with
// concurrent sessions and reports throughput and latency — the
// benchmark harness for the service boundary. Each session goroutine
// holds its own session token (so the daemon's per-session
// prepared-statement cache is exercised the way real clients exercise
// it) and loops a configurable query mix until the duration elapses;
// the report gives QPS over successful requests, latency quantiles
// (p50/p90/p99 from a power-of-two-bucket histogram), and the
// admission-control outcomes (429s are counted separately from
// failures — a saturated server refusing work is behaving correctly).
//
// Examples:
//
//	kaskade-loadgen -addr localhost:7465 -sessions 8 -duration 10s
//	kaskade-loadgen -query 'MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN COUNT(*) AS n' -sessions 16
//
// The exit status is non-zero if any request failed outright (transport
// error, 5xx, or a mid-stream execution error); 429s do not fail the
// run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"kaskade/internal/metrics"
)

// defaultMix is the query mix when no -query flags are given — shaped
// for the prov dataset kaskaded serves by default: a streaming
// projection, a grouped aggregate, and a 2-hop pattern that rewrites
// over a connector view if one is materialized.
var defaultMix = []string{
	`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN COUNT(*) AS n`,
	`SELECT A, COUNT(B) FROM (
	   MATCH (q_j:Job)-[:WRITES_TO]->(q_f:File) RETURN q_j AS A, q_f AS B
	 ) GROUP BY A`,
	`MATCH (x:Job)-[p*2..2]->(y:Job) RETURN COUNT(*) AS n`,
}

// queryResponse is the slice of the /v1/query body the loadgen needs:
// row_count present = complete result, error present = mid-stream
// failure.
type queryResponse struct {
	RowCount *int    `json:"row_count"`
	Error    *string `json:"error"`
	Kind     string  `json:"kind"`
}

// tally is the shared run accounting, all atomics.
type tally struct {
	ok       atomic.Int64
	rejected atomic.Int64
	failed   atomic.Int64
	rows     atomic.Int64
}

func main() {
	var queries []string
	var (
		addr     = flag.String("addr", "localhost:7465", "kaskaded address (host:port)")
		sessions = flag.Int("sessions", 8, "concurrent sessions")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		timeout  = flag.Duration("request-timeout", 30*time.Second, "client-side per-request timeout")
	)
	flag.Func("query", "query to include in the mix (repeatable; default: built-in prov mix)", func(q string) error {
		queries = append(queries, q)
		return nil
	})
	flag.Parse()
	if len(queries) == 0 {
		queries = defaultMix
	}
	if *sessions < 1 {
		*sessions = 1
	}

	// SIGINT/SIGTERM ends the run early but still prints the report —
	// in-flight requests are cancelled through the request contexts.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := "http://" + strings.TrimPrefix(*addr, "http://")
	client := &http.Client{
		Timeout:   *timeout,
		Transport: &http.Transport{MaxIdleConns: *sessions * 2, MaxIdleConnsPerHost: *sessions * 2},
	}

	var (
		t    tally
		hist metrics.Histogram
		wg   sync.WaitGroup
	)
	fmt.Printf("kaskade-loadgen: %d sessions, %s against %s, %d-query mix\n",
		*sessions, *duration, base, len(queries))
	start := time.Now()
	deadline := start.Add(*duration)
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			session := "" // minted by the daemon on the first request
			for j := 0; time.Now().Before(deadline) && ctx.Err() == nil; j++ {
				q := queries[(worker+j)%len(queries)]
				session = issue(ctx, client, base, session, q, &t, &hist)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	h := hist.Snapshot()
	ok, rejected, failed := t.ok.Load(), t.rejected.Load(), t.failed.Load()
	fmt.Printf("requests: %d ok, %d rejected (429), %d failed\n", ok, rejected, failed)
	fmt.Printf("rows: %d\n", t.rows.Load())
	fmt.Printf("qps: %.1f\n", float64(ok)/elapsed.Seconds())
	fmt.Printf("latency: mean=%s p50≤%s p90≤%s p99≤%s\n",
		h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.90).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond))
	if failed > 0 {
		os.Exit(1)
	}
}

// issue sends one query and records its outcome, returning the session
// token to carry forward (the daemon echoes it on every response).
func issue(ctx context.Context, client *http.Client, base, session, query string, t *tally, hist *metrics.Histogram) string {
	body, _ := json.Marshal(map[string]any{"query": query})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.failed.Add(1)
		return session
	}
	req.Header.Set("Content-Type", "application/json")
	if session != "" {
		req.Header.Set("X-Kaskade-Session", session)
	}
	begin := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			t.failed.Add(1) // a request we cancelled ourselves is not a failure
		}
		return session
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	hist.Observe(time.Since(begin))
	if tok := resp.Header.Get("X-Kaskade-Session"); tok != "" {
		session = tok
	}
	switch {
	case err != nil:
		t.failed.Add(1)
	case resp.StatusCode == http.StatusTooManyRequests:
		t.rejected.Add(1)
	case resp.StatusCode != http.StatusOK:
		t.failed.Add(1)
	default:
		var qr queryResponse
		if json.Unmarshal(raw, &qr) != nil || qr.Error != nil || qr.RowCount == nil {
			t.failed.Add(1) // mid-stream error or torn body: not a complete result
			break
		}
		t.ok.Add(1)
		t.rows.Add(int64(*qr.RowCount))
	}
	return session
}
