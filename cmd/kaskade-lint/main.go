// Command kaskade-lint runs the repo's invariant analyzers
// (internal/lint): determinism of map iteration in result paths,
// context propagation through blocking code, atomic-access discipline,
// lock-hold hygiene, and the server's error taxonomy.
//
// Run it directly (it re-executes itself under `go vet`):
//
//	go run ./cmd/kaskade-lint ./...
//
// or as a vet tool:
//
//	go build -o kaskade-lint ./cmd/kaskade-lint
//	go vet -vettool=$PWD/kaskade-lint ./...
//
// Suppress a finding with a justified comment on (or above) its line:
//
//	//kaskade:allow <analyzer> <reason>
//
// and audit all suppressions with `kaskade-lint -report`.
package main

import (
	"os"

	"kaskade/internal/lint"
	"kaskade/internal/lint/vettool"
)

func main() {
	os.Exit(vettool.Main(lint.All()))
}
