package main

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"kaskade"
	"kaskade/internal/datagen"
	"kaskade/internal/views"
)

func TestSplitStatements(t *testing.T) {
	cases := []struct {
		name  string
		in    string
		stmts []string
		rest  string
	}{
		{"empty", "", nil, ""},
		{"one", "SHOW VIEWS;", []string{"SHOW VIEWS;"}, ""},
		{"unterminated", "SHOW VIEWS", nil, "SHOW VIEWS"},
		{"two on one line", "SHOW VIEWS; DROP VIEW jj;", []string{"SHOW VIEWS;", " DROP VIEW jj;"}, ""},
		{"quoted semicolon", `MATCH (v) WHERE v.name = 'a;b' RETURN v;`,
			[]string{`MATCH (v) WHERE v.name = 'a;b' RETURN v;`}, ""},
		{"escaped quote", `MATCH (v) WHERE v.name = 'a\';b' RETURN v;`,
			[]string{`MATCH (v) WHERE v.name = 'a\';b' RETURN v;`}, ""},
		// A ';' inside a line comment must not terminate the statement —
		// the comment runs to end of line, and the real terminator comes
		// after.
		{"sql comment with semicolon", "SHOW -- not a terminator ;\nVIEWS;",
			[]string{"SHOW -- not a terminator ;\nVIEWS;"}, ""},
		{"c comment with semicolon", "SHOW // not a terminator ;\nVIEWS;",
			[]string{"SHOW // not a terminator ;\nVIEWS;"}, ""},
		{"comment swallows rest of line only", "-- lead comment ; still comment\nSHOW VIEWS;",
			[]string{"-- lead comment ; still comment\nSHOW VIEWS;"}, ""},
		// The bracketless edge --> is an edge, not a comment opener (the
		// gql lexer's rule), so the terminator after it still counts.
		{"arrow edge is not a comment", "MATCH (a)-->(b) RETURN a;",
			[]string{"MATCH (a)-->(b) RETURN a;"}, ""},
		{"arrow then comment", "MATCH (a)-->(b) RETURN a; -- tail ; comment",
			[]string{"MATCH (a)-->(b) RETURN a;"}, " -- tail ; comment"},
		{"trailing comment no newline", "SHOW VIEWS; -- dangling ;",
			[]string{"SHOW VIEWS;"}, " -- dangling ;"},
	}
	for _, tc := range cases {
		stmts, rest := splitStatements(tc.in)
		if !reflect.DeepEqual(stmts, tc.stmts) || rest != tc.rest {
			t.Errorf("%s: splitStatements(%q) = (%q, %q), want (%q, %q)",
				tc.name, tc.in, stmts, rest, tc.stmts, tc.rest)
		}
	}
}

// replSystem builds a small prov-derived system the REPL scripts run
// against.
func replSystem(t *testing.T) *kaskade.System {
	t.Helper()
	cfg := datagen.DefaultProvConfig()
	cfg.Jobs, cfg.Files, cfg.TasksPerJob, cfg.Machines, cfg.Users = 40, 80, 1, 3, 3
	raw, err := datagen.Prov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := views.VertexInclusionSummarizer{Types: []string{"Job", "File"}}.Materialize(raw)
	if err != nil {
		t.Fatal(err)
	}
	return kaskade.New(g)
}

func TestReplScript(t *testing.T) {
	sys := replSystem(t)
	// One script exercising comment-embedded ';', multiple statements on
	// a single line, EXPLAIN [ANALYZE] statements, and an error that the
	// loop must survive.
	script := strings.Join([]string{
		`-- leading comment lines are skipped outright`,
		`CREATE MATERIALIZED VIEW jj AS -- a comment with ; inside`,
		`  MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y;`,
		`SHOW VIEWS; MATCH (a:Job)-->(b:File) RETURN COUNT(a);`,
		`EXPLAIN MATCH (x:Job)-[r:CONN_2HOP_Job_Job*1..2]->(y:Job) RETURN x, y;`,
		`EXPLAIN ANALYZE MATCH (x:Job)-[r:CONN_2HOP_Job_Job*1..2]->(y:Job) RETURN x, y;`,
		`THIS IS NOT GQL;`,
		`DROP VIEW jj;`,
	}, "\n")
	var out strings.Builder
	if err := repl(context.Background(), sys, 0, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"materialized view jj",
		"CREATE MATERIALIZED VIEW jj AS MATCH",
		"COUNT(a)",
		"plan: rewritten over materialized view CONN_2HOP_Job_Job",
		"total", // the ANALYZE profile table
		"error:",
		"dropped view jj",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("repl output missing %q:\n%s", want, got)
		}
	}
	// Exactly one statement errored.
	if n := strings.Count(got, "error:"); n != 1 {
		t.Errorf("repl reported %d errors, want 1:\n%s", n, got)
	}
	// Plain EXPLAIN must not move the hit counter; the one ANALYZE
	// execution moves it to exactly 1.
	if s := sys.MetricsSnapshot(); s.RewriteHits != 1 {
		t.Errorf("rewrite hits after script = %d, want 1 (ANALYZE only)", s.RewriteHits)
	}
}

func TestReplStatementSpanningLinesWithComments(t *testing.T) {
	sys := replSystem(t)
	script := "MATCH (a:Job)-->(b:File) -- why not ; here\nRETURN COUNT(a);"
	var out strings.Builder
	if err := repl(context.Background(), sys, 0, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "error:") {
		t.Fatalf("comment-embedded ';' broke the statement:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "COUNT(a)") {
		t.Fatalf("missing result:\n%s", out.String())
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 4); got != "    " {
		t.Errorf("empty sparkline = %q", got)
	}
	got := sparkline([]float64{0, 1, 2, 4}, 4)
	if []rune(got)[0] != '▁' || []rune(got)[3] != '█' {
		t.Errorf("sparkline(0..4) = %q, want baseline start and full-block end", got)
	}
	// Longer series keeps only the trailing window.
	if got := sparkline([]float64{9, 9, 9, 0, 0}, 2); got != "▁▁" {
		t.Errorf("windowed sparkline = %q, want \"▁▁\"", got)
	}
	if n := len([]rune(sparkline([]float64{1, 2}, 6))); n != 6 {
		t.Errorf("sparkline not padded to width: %d runes", n)
	}
}

func TestTopCmdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sys := replSystem(t)
	var out strings.Builder
	cfg := topConfig{interval: 50 * time.Millisecond, retention: time.Second, duration: 300 * time.Millisecond, drivers: 2}
	if err := topCmd(context.Background(), sys, 200_000, `MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y`, cfg, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"kaskade top", "qps", "latency", "hit ratio", "top queries by cumulative time"} {
		if !strings.Contains(got, want) {
			t.Errorf("top output missing %q:\n%s", want, got)
		}
	}
	if s := sys.MetricsSnapshot(); s.Queries == 0 {
		t.Error("top drivers executed no queries")
	}
}
