// kaskade top: a live terminal dashboard over the System's metrics.
// It adopts a view selection for the configured query, spins up a small
// self-driving workload (half the drivers run the view-rewritten query,
// half a base-graph query), and then samples MetricsSnapshot into a
// ring buffer on every tick, rendering QPS, latency quantiles, rewrite
// hit-ratio, per-view usage sparklines, and the top queries by
// cumulative time. Pure stdlib: ANSI clear on a TTY, sequential frames
// otherwise (so `kaskade -cmd top -duration 2s | cat` works in CI).
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"kaskade"
	"kaskade/internal/metrics"
)

// topConfig bundles the -cmd top flags.
type topConfig struct {
	interval  time.Duration // sampling/redraw period
	retention time.Duration // ring-buffer history window
	duration  time.Duration // total runtime; 0 = until Ctrl-C
	drivers   int           // workload goroutines
}

// topMissQuery is the base-graph half of the driver mix: a single-hop
// pattern no connector view covers, so its rewrite decisions count as
// misses and the hit-ratio series has both sides to move between.
const topMissQuery = `SELECT A, COUNT(B) FROM (
  MATCH (q_j:Job)-[:WRITES_TO]->(q_f:File) RETURN q_j AS A, q_f AS B
) GROUP BY A`

// topCmd runs the dashboard until ctx is cancelled or cfg.duration
// elapses.
func topCmd(ctx context.Context, sys *kaskade.System, budget int64, query string, cfg topConfig, out io.Writer) error {
	if cfg.interval <= 0 {
		cfg.interval = 500 * time.Millisecond
	}
	if cfg.drivers < 1 {
		cfg.drivers = 1
	}
	if cfg.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.duration)
		defer cancel()
	}

	// Materialize views for the hit query so the workload exercises the
	// rewrite path, mirroring -cmd run.
	sel, err := sys.SelectViews([]string{query}, budget)
	if err != nil {
		return err
	}
	if err := sys.AdoptSelection(sel); err != nil {
		return err
	}

	// Validate the driver mix once up front; a query that cannot run on
	// this dataset is dropped rather than spamming the error counter.
	mix := make([]string, 0, 2)
	for _, q := range []string{query, topMissQuery} {
		if _, err := sys.QueryContext(ctx, q); err == nil {
			mix = append(mix, q)
		}
	}
	if len(mix) == 0 {
		return fmt.Errorf("top: no runnable workload query on dataset")
	}

	// Self-driving workload: driver i loops its mix[i%len] query until
	// the session ends. Ad-hoc execution (not prepared) is deliberate —
	// every execution makes a rewrite decision, so the hit-ratio series
	// reflects load, not just epoch changes.
	var wg sync.WaitGroup
	for i := 0; i < cfg.drivers; i++ {
		q := mix[i%len(mix)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				_, _ = sys.QueryContext(ctx, q)
			}
		}()
	}
	defer wg.Wait()

	capacity := 2
	if cfg.retention > cfg.interval {
		capacity = int(cfg.retention/cfg.interval) + 1
	}
	ring := metrics.NewRing(capacity)
	ring.Push(metrics.Sample{At: time.Now(), Snap: sys.MetricsSnapshot()})

	tty := false
	if f, ok := out.(*os.File); ok {
		if fi, err := f.Stat(); err == nil {
			tty = fi.Mode()&os.ModeCharDevice != 0
		}
	}

	start := time.Now()
	tick := time.NewTicker(cfg.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			// Final frame so short -duration runs always show data.
			ring.Push(metrics.Sample{At: time.Now(), Snap: sys.MetricsSnapshot()})
			fmt.Fprint(out, renderTop(sys, ring, start, tty))
			return nil
		case <-tick.C:
			ring.Push(metrics.Sample{At: time.Now(), Snap: sys.MetricsSnapshot()})
			fmt.Fprint(out, renderTop(sys, ring, start, tty))
		}
	}
}

// renderTop formats one dashboard frame from the ring's history.
func renderTop(sys *kaskade.System, ring *metrics.Ring, start time.Time, tty bool) string {
	samples := ring.Samples()
	last := samples[len(samples)-1]
	s := last.Snap

	var b strings.Builder
	if tty {
		b.WriteString("\x1b[H\x1b[2J") // home + clear
	}
	g := sys.Graph()
	fmt.Fprintf(&b, "kaskade top — uptime %s, |V|=%d |E|=%d, views=%d, freezes=%d, workers %d (peak %d)\n",
		time.Since(start).Round(time.Second), g.NumVertices(), g.NumEdges(),
		len(s.Views), s.FreezeEvents, s.WorkersActive, s.WorkersPeak)
	fmt.Fprintf(&b, "queries=%d  errors=%d  rows=%d  rewrites: %d hit / %d miss (ratio %.2f)\n",
		s.Queries, s.QueryErrors, s.Rows, s.RewriteHits, s.RewriteMisses, s.HitRatio())
	fmt.Fprintf(&b, "columns=%d (%d B)  prop reads: %d columnar / %d map\n",
		s.ColumnCount, s.ColumnBytes, s.ColumnScans, s.PropMapFallbacks)
	fmt.Fprintf(&b, "delta: tail %dv/%de  overlay reads=%d  compactions=%d (last %s)\n",
		s.DeltaTailVertices, s.DeltaTailEdges, s.OverlayReads, s.Compactions,
		s.LastCompaction.Round(time.Microsecond))
	// Service-boundary counters (zero unless this System is also served
	// by a kaskaded daemon in-process).
	fmt.Fprintf(&b, "admission: %d admitted / %d rejected / %d timed out  in-flight=%d  sessions=%d  cache: %d hit / %d miss\n\n",
		s.Admitted, s.Rejected, s.TimedOut, s.InFlight, s.Sessions, s.CacheHits, s.CacheMisses)

	const width = 48
	qps := seriesOf(samples, func(cur, prev metrics.Sample) float64 {
		dt := cur.At.Sub(prev.At).Seconds()
		if dt <= 0 {
			return 0
		}
		return float64(cur.Snap.Queries-prev.Snap.Queries) / dt
	})
	fmt.Fprintf(&b, "qps       %s %8.1f\n", sparkline(qps, width), lastOr0(qps))

	lat := seriesOf(samples, func(cur, prev metrics.Sample) float64 {
		return float64(cur.Snap.Latency.Sub(prev.Snap.Latency).Mean())
	})
	var p50, p95 time.Duration
	if len(samples) >= 2 {
		ih := last.Snap.Latency.Sub(samples[len(samples)-2].Snap.Latency)
		p50, p95 = ih.Quantile(0.50), ih.Quantile(0.95)
	}
	fmt.Fprintf(&b, "latency   %s p50≤%-8s p95≤%s\n", sparkline(lat, width),
		p50.Round(time.Microsecond), p95.Round(time.Microsecond))

	ratio := seriesOf(samples, func(cur, prev metrics.Sample) float64 {
		dh := cur.Snap.RewriteHits - prev.Snap.RewriteHits
		dm := cur.Snap.RewriteMisses - prev.Snap.RewriteMisses
		if dh+dm == 0 {
			return 0
		}
		return float64(dh) / float64(dh+dm)
	})
	fmt.Fprintf(&b, "hit ratio %s %8.2f\n", sparkline(ratio, width), lastOr0(ratio))

	if len(s.Views) > 0 {
		b.WriteString("\nviews (rewrite hits / interval)\n")
		for _, v := range s.Views {
			name := v.Name
			series := seriesOf(samples, func(cur, prev metrics.Sample) float64 {
				return float64(viewHits(cur.Snap, name) - viewHits(prev.Snap, name))
			})
			fmt.Fprintf(&b, "  %-28s %s %8d total\n", truncate(name, 28), sparkline(series, width-10), v.Hits)
		}
	}

	if r := sys.Metrics(); r != nil {
		if top := r.TopQueries(5); len(top) > 0 {
			b.WriteString("\ntop queries by cumulative time\n")
			fmt.Fprintf(&b, "  %8s %12s %12s %10s  %s\n", "count", "total", "mean", "rows", "query")
			for _, q := range top {
				fmt.Fprintf(&b, "  %8d %12s %12s %10d  %s\n",
					q.Count, q.Total.Round(time.Microsecond), q.Mean().Round(time.Microsecond),
					q.Rows, truncate(strings.Join(strings.Fields(q.Query), " "), 60))
			}
		}
	}
	if !tty {
		b.WriteString("\n")
	}
	return b.String()
}

// seriesOf maps consecutive sample pairs to a derived per-interval
// series (len = len(samples)-1; empty with fewer than two samples).
func seriesOf(samples []metrics.Sample, f func(cur, prev metrics.Sample) float64) []float64 {
	if len(samples) < 2 {
		return nil
	}
	out := make([]float64, len(samples)-1)
	for i := 1; i < len(samples); i++ {
		out[i-1] = f(samples[i], samples[i-1])
	}
	return out
}

// viewHits finds one view's hit counter in a snapshot (0 if absent —
// e.g. the view was created mid-window).
func viewHits(s metrics.Snapshot, name string) int64 {
	for _, v := range s.Views {
		if v.Name == name {
			return v.Hits
		}
	}
	return 0
}

// sparkBars is the eight-level Unicode block ramp sparklines draw with.
var sparkBars = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the last `width` values scaled against the window
// maximum; an all-zero (or empty) window renders as baseline blocks.
func sparkline(vals []float64, width int) string {
	if width < 1 {
		width = 1
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	out := make([]rune, 0, width)
	for i := len(vals); i < width; i++ {
		out = append(out, ' ') // left-pad until the window fills
	}
	for _, v := range vals {
		idx := 0
		if max > 0 && v > 0 {
			idx = int(v / max * float64(len(sparkBars)-1))
			if idx >= len(sparkBars) {
				idx = len(sparkBars) - 1
			}
		}
		out = append(out, sparkBars[idx])
	}
	return string(out)
}

// lastOr0 returns the final element of a series (0 when empty).
func lastOr0(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	return vals[len(vals)-1]
}

// truncate shortens s to at most n runes, marking the cut with an
// ellipsis.
func truncate(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	if n < 1 {
		return ""
	}
	return string(r[:n-1]) + "…"
}
