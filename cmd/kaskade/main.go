// Command kaskade is the CLI for the Kaskade graph view optimizer: it
// generates (or loads) an evaluation graph, enumerates candidate views
// for a query, runs view selection under a budget, and executes queries
// raw vs. rewritten over materialized views.
//
// Examples:
//
//	kaskade -cmd tables
//	kaskade -dataset prov -cmd schema
//	kaskade -dataset prov -cmd stats
//	kaskade -dataset prov -cmd enumerate -query "$(cat q.gql)"
//	kaskade -dataset prov -cmd select -query "$(cat q.gql)" -budget 100000
//	kaskade -dataset prov -cmd run -query "$(cat q.gql)" -budget 100000
//	kaskade -dataset prov -cmd repl < script.gql
//
// The repl command reads ';'-terminated statements from stdin —
// queries and view DDL alike (CREATE [MATERIALIZED] VIEW .. AS <pattern>,
// SHOW VIEWS, DROP VIEW), plus EXPLAIN <query> — and executes each
// through the same System.Exec dispatcher the library exposes.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"kaskade"
	"kaskade/internal/datagen"
	"kaskade/internal/graph"
	"kaskade/internal/harness"
	"kaskade/internal/views"
)

func main() {
	var (
		cmd     = flag.String("cmd", "help", "tables|schema|stats|enumerate|select|run|explain|repl|top")
		dataset = flag.String("dataset", "prov", "dataset: prov|dblp|roadnet|soc")
		scale   = flag.Float64("scale", 0.25, "dataset scale factor")
		seed    = flag.Int64("seed", 0, "generator seed override")
		query   = flag.String("query", "", "query text (defaults to the blast-radius query on prov)")
		budget  = flag.Int64("budget", 200_000, "view materialization budget in edges")
		filter  = flag.Bool("filter", true, "pre-apply the schema-level summarizer on heterogeneous datasets")
		rawRun  = flag.Bool("raw", true, "for -cmd run, also execute the query without views for comparison")
		load    = flag.String("load", "", "load the graph from a file (written with -save) instead of generating")
		save    = flag.String("save", "", "save the (possibly filtered) graph to a file and exit")
		workers = flag.Int("workers", 1, "pattern-match and view-materialization parallelism (1 = sequential, -1 = one per CPU)")
		timeout = flag.Duration("timeout", 0, "per-query deadline (0 = none); Ctrl-C also cancels a running query cleanly")

		// -cmd top knobs.
		interval  = flag.Duration("interval", 500*time.Millisecond, "for -cmd top: sampling and redraw interval")
		retention = flag.Duration("retention", 2*time.Minute, "for -cmd top: how much sample history the ring buffer keeps")
		duration  = flag.Duration("duration", 0, "for -cmd top: stop after this long (0 = run until Ctrl-C)")
		drivers   = flag.Int("drivers", 4, "for -cmd top: self-driving workload goroutines generating load")
	)
	flag.Parse()
	top := topConfig{interval: *interval, retention: *retention, duration: *duration, drivers: *drivers}

	// Queries run under a signal-aware context: the first Ctrl-C
	// cancels the in-flight pattern match (worker pool included)
	// instead of killing the process mid-write. Phases that predate
	// context threading (generation, selection, materialization) don't
	// poll ctx, so once it fires the handler is released — a second
	// Ctrl-C kills the process the ordinary way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	if err := run(ctx, *cmd, *dataset, *scale, *seed, *query, *budget, *filter, *rawRun, *load, *save, *workers, *timeout, top); err != nil {
		fmt.Fprintln(os.Stderr, "kaskade:", err)
		os.Exit(1)
	}
}

// queryCtx derives the per-query context from the session context.
func queryCtx(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return context.WithCancel(ctx)
}

func run(ctx context.Context, cmd, dataset string, scale float64, seed int64, query string, budget int64, filter, rawRun bool, load, save string, workers int, timeout time.Duration, top topConfig) error {
	if (cmd == "help" || cmd == "") && save == "" {
		flag.Usage()
		return nil
	}
	if cmd == "tables" {
		fmt.Print(kaskade.ViewInventory())
		return nil
	}

	var g *graph.Graph
	var err error
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = graph.Load(f)
		if err != nil {
			return fmt.Errorf("loading %s: %w", load, err)
		}
		filter = false // the file is taken as-is
	} else {
		g, err = datagen.Generate(dataset, scale, seed)
		if err != nil {
			return err
		}
	}
	if filter {
		switch dataset {
		case datagen.NameProv:
			g, err = views.VertexInclusionSummarizer{Types: []string{"Job", "File"}}.Materialize(g)
		case datagen.NameDBLP:
			g, err = views.VertexInclusionSummarizer{Types: []string{"Author", "Paper"}}.Materialize(g)
		}
		if err != nil {
			return err
		}
	}
	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		if err := graph.Save(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved %s to %s\n", g, save)
		return nil
	}

	sys := kaskade.New(g)
	sys.Parallelism = workers

	if query == "" {
		query = harness.BlastRadiusQuery
	}

	switch cmd {
	case "schema":
		if g.Schema() == nil {
			fmt.Println("(no schema)")
			return nil
		}
		fmt.Print(g.Schema().String())
		return nil

	case "stats":
		p := sys.Stats()
		fmt.Printf("|V| = %d, |E| = %d\n", p.NumVertices, p.NumEdges)
		fmt.Printf("%-14s %8s %6s %6s %6s %8s\n", "vertex type", "count", "p50", "p90", "p95", "max")
		for _, t := range g.VertexTypes() {
			s := p.ByType[t]
			fmt.Printf("%-14s %8d %6d %6d %6d %8d\n", t, s.Count, s.P50, s.P90, s.P95, s.Max)
		}
		return nil

	case "enumerate":
		cands, err := sys.EnumerateViews(query)
		if err != nil {
			return err
		}
		fmt.Printf("%d candidate views:\n%s\n", len(cands), kaskade.DescribeCandidates(cands))
		return nil

	case "select":
		sel, err := sys.SelectViews([]string{query}, budget)
		if err != nil {
			return err
		}
		fmt.Print(sel.Describe())
		return nil

	case "explain":
		sel, err := sys.SelectViews([]string{query}, budget)
		if err != nil {
			return err
		}
		if err := sys.AdoptSelection(sel); err != nil {
			return err
		}
		out, err := sys.Explain(query)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil

	case "run":
		// Prepare first: the statement is parsed once, and its plan is
		// rewritten lazily against whatever the catalog holds at each
		// execution (here: before and after adoption).
		stmt, err := sys.Prepare(query)
		if err != nil {
			return err
		}
		sel, err := sys.SelectViews([]string{query}, budget)
		if err != nil {
			return err
		}
		fmt.Print(sel.Describe())
		start := time.Now()
		if err := sys.AdoptSelection(sel); err != nil {
			return err
		}
		fmt.Printf("materialized %s in %s (%d edges)\n\n",
			strings.Join(sys.Catalog().Views(), ", "),
			time.Since(start).Round(time.Millisecond),
			sys.Catalog().TotalEdges())

		plan, err := stmt.Plan()
		if err != nil {
			return err
		}
		qctx, cancel := queryCtx(ctx, timeout)
		start = time.Now()
		res, err := stmt.ExecContext(qctx)
		cancel()
		if err != nil {
			return describeCancelled(err, timeout)
		}
		viewDur := time.Since(start)
		fmt.Printf("with views (plan: %s): %d rows in %s\n", planName(plan.ViewName), len(res.Rows), viewDur.Round(time.Microsecond))

		if rawRun {
			qctx, cancel := queryCtx(ctx, timeout)
			start = time.Now()
			rawRes, err := stmt.ExecContext(qctx, kaskade.WithoutViews())
			cancel()
			if err != nil {
				return describeCancelled(err, timeout)
			}
			rawDur := time.Since(start)
			fmt.Printf("raw:                      %d rows in %s\n", len(rawRes.Rows), rawDur.Round(time.Microsecond))
			if viewDur > 0 {
				fmt.Printf("speedup: %.2fx\n", float64(rawDur)/float64(viewDur))
			}
		}
		if len(res.Rows) > 0 {
			fmt.Println("\nfirst rows:")
			preview := *res
			if len(preview.Rows) > 5 {
				preview.Rows = preview.Rows[:5]
			}
			fmt.Print(preview.String())
		}
		return nil

	case "repl":
		return repl(ctx, sys, timeout, os.Stdin, os.Stdout)

	case "top":
		return topCmd(ctx, sys, budget, query, top, os.Stdout)
	}
	return fmt.Errorf("unknown command %q", cmd)
}

// repl reads ';'-terminated statements from in and executes each
// through System.Exec — queries, CREATE/DROP VIEW, SHOW VIEWS, and
// EXPLAIN [ANALYZE] <query> — printing results (and statement errors)
// to out. A statement error is printed and the loop continues, so piped
// scripts run end to end; each statement runs under the session context
// (-timeout, Ctrl-C).
func repl(ctx context.Context, sys *kaskade.System, timeout time.Duration, in io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var buf strings.Builder
	exec1 := func(stmt string) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			return
		}
		qctx, cancel := queryCtx(ctx, timeout)
		res, err := sys.Exec(qctx, stmt)
		cancel()
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			return
		}
		fmt.Fprint(out, res.String())
	}
	for sc.Scan() {
		line := sc.Text()
		if t := strings.TrimSpace(line); buf.Len() == 0 && (t == "" || strings.HasPrefix(t, "--")) {
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		stmts, rest := splitStatements(buf.String())
		buf.Reset()
		buf.WriteString(rest)
		for _, st := range stmts {
			exec1(st)
		}
	}
	if buf.Len() > 0 {
		exec1(buf.String())
	}
	return sc.Err()
}

// splitStatements cuts the buffer at every ';' outside a string literal
// or comment, returning the complete statements (terminator included,
// as ParseStatement accepts it) and the unterminated remainder — so
// several statements may share a line, and neither a quoted ';' nor one
// buried in a comment terminates a statement. Comment detection mirrors
// the gql lexer: `--` and `//` start line comments, except the
// bracketless edge `-->` (the anonymous-edge form String() emits).
func splitStatements(s string) (stmts []string, rest string) {
	start := 0
	var quote byte
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case quote != 0:
			if c == '\\' {
				i++ // skip the escaped character
			} else if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '-' && i+1 < len(s) && s[i+1] == '-' && !(i+2 < len(s) && s[i+2] == '>'),
			c == '/' && i+1 < len(s) && s[i+1] == '/':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case c == ';':
			stmts = append(stmts, s[start:i+1])
			start = i + 1
		}
	}
	return stmts, s[start:]
}

// describeCancelled turns a context error into actionable CLI output.
func describeCancelled(err error, timeout time.Duration) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("query exceeded -timeout=%s (raise it, shrink -scale, or let views do their job)", timeout)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("query cancelled")
	}
	return err
}

func planName(v string) string {
	if v == "" {
		return "base graph"
	}
	return v
}
