// Command kaskade-bench regenerates every table and figure of the
// paper's evaluation (§VII) over the synthetic stand-in datasets.
//
// Usage:
//
//	kaskade-bench                  # everything at default scale
//	kaskade-bench -exp fig7        # one experiment
//	kaskade-bench -scale 0.2       # smaller datasets (faster)
//
// Experiments: tables, datasets, queries, fig5, fig6, fig7, fig8,
// ablation, all.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"kaskade/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: tables|datasets|queries|fig5|fig6|fig7|fig8|ablation|all")
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = paper-shaped laptop defaults)")
	sample := flag.Int("sample", 200, "per-source traversal sample for Fig. 7 queries")
	seed := flag.Int64("seed", 0, "generator seed override (0 = defaults)")
	workers := flag.Int("workers", 1, "pattern-match parallelism (1 = sequential, -1 = one per CPU); results are identical either way")
	timeout := flag.Duration("timeout", 0, "deadline for the fig7 query-runtime experiment (0 = none); Ctrl-C aborts it cleanly (press twice to force-quit other experiments)")
	flag.Parse()

	// Only fig7 executes queries through the cancellable path today;
	// the other experiments ignore ctx. The first Ctrl-C cancels fig7
	// cleanly and releases the handler, so a second one force-quits.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-sigCtx.Done()
		stop()
	}()
	ctx := sigCtx
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := harness.Config{Scale: *scale, Seed: *seed, Sample: *sample, Workers: *workers}
	if err := run(ctx, *exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "kaskade-bench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, exp string, cfg harness.Config) error {
	w := os.Stdout
	section := func(name string, fn func() error) error {
		start := time.Now()
		fmt.Fprintf(w, "==== %s ====\n", name)
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(w, "(%s took %s)\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}
	want := func(name string) bool { return exp == "all" || exp == name }

	if want("tables") || want("queries") {
		if err := section("Tables I & II (view classes)", func() error {
			harness.PrintTableIAndII(w)
			return nil
		}); err != nil {
			return err
		}
		if err := section("Table IV (query workload)", func() error {
			harness.PrintTableIV(w)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("datasets") {
		if err := section("Table III (datasets)", func() error {
			rows, err := harness.TableIII(cfg)
			if err != nil {
				return err
			}
			harness.PrintTableIII(w, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig5") {
		if err := section("Fig. 5 (view size estimation)", func() error {
			rows, err := harness.Fig5(cfg)
			if err != nil {
				return err
			}
			harness.PrintFig5(w, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig6") {
		if err := section("Fig. 6 (size reduction)", func() error {
			rows, err := harness.Fig6(cfg)
			if err != nil {
				return err
			}
			harness.PrintFig6(w, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig7") {
		if err := section("Fig. 7 (query runtimes)", func() error {
			rows, err := harness.Fig7Context(ctx, cfg)
			if err != nil {
				return err
			}
			harness.PrintFig7(w, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig8") {
		if err := section("Fig. 8 (degree distributions)", func() error {
			rows, err := harness.Fig8(cfg)
			if err != nil {
				return err
			}
			harness.PrintFig8(w, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("ablation") {
		if err := section("§IV-A ablation (search-space pruning)", func() error {
			rows, err := harness.Ablation()
			if err != nil {
				return err
			}
			harness.PrintAblation(w, rows)
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}
