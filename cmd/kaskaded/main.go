// Command kaskaded is the Kaskade network daemon: it loads (or
// generates) a graph, stands up a System over it, and serves the
// HTTP/JSON API in internal/server — per-session prepared-statement
// caches, admission control with an in-flight limit, a TTL+epoch
// response cache, and the topology/metrics endpoints — until SIGINT or
// SIGTERM, then drains in-flight queries under a bounded deadline
// (stragglers are cancelled via context, never leaked).
//
// Examples:
//
//	kaskaded -addr :7465 -dataset prov -scale 0.25
//	kaskaded -load graph.kask -max-inflight 32 -cache-ttl 5s
//	curl -s localhost:7465/healthz
//	curl -s localhost:7465/v1/query -d '{"query":"MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN COUNT(*) AS n"}'
//
// See the README's "Running as a server" section for the endpoint
// reference and cmd/kaskade-loadgen for a load generator against a
// running daemon.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kaskade"
	"kaskade/internal/datagen"
	"kaskade/internal/graph"
	"kaskade/internal/server"
	"kaskade/internal/views"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:7465", "listen address")
		dataset = flag.String("dataset", "prov", "dataset to generate: prov|dblp|roadnet|soc")
		scale   = flag.Float64("scale", 0.25, "dataset scale factor")
		seed    = flag.Int64("seed", 0, "generator seed override")
		filter  = flag.Bool("filter", true, "pre-apply the schema-level summarizer on heterogeneous datasets")
		load    = flag.String("load", "", "load the graph from a file (kaskade -save) instead of generating")
		workers = flag.Int("workers", -1, "pattern-match and materialization parallelism (-1 = one per CPU)")

		maxInflight = flag.Int("max-inflight", 64, "admission control: max concurrently executing requests (excess get 429)")
		defTimeout  = flag.Duration("default-timeout", 30*time.Second, "execution deadline when the client asks for none")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "clamp on client-requested deadlines")
		maxRows     = flag.Int("max-rows", 1_000_000, "per-request row cap (clients may lower, never raise; -1 = unlimited)")
		cacheTTL    = flag.Duration("cache-ttl", 2*time.Second, "response cache TTL (0 disables caching)")
		sessionTTL  = flag.Duration("session-ttl", 30*time.Minute, "idle session eviction")
		topoNodes   = flag.Int("topology-max-nodes", 1000, "max nodes served by /v1/topology")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline before in-flight queries are cancelled")
	)
	flag.Parse()

	// SIGINT/SIGTERM starts the drain; a second signal kills the
	// process the ordinary way (the handler is released on first fire).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, stop, *addr, *dataset, *scale, *seed, *filter, *load, *workers, server.Config{
		MaxInFlight:      *maxInflight,
		DefaultTimeout:   *defTimeout,
		MaxTimeout:       *maxTimeout,
		MaxRows:          *maxRows,
		CacheTTL:         *cacheTTL,
		SessionTTL:       *sessionTTL,
		TopologyMaxNodes: *topoNodes,
	}, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "kaskaded:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, stop context.CancelFunc, addr, dataset string, scale float64, seed int64, filter bool, load string, workers int, cfg server.Config, drain time.Duration) error {
	g, err := buildGraph(dataset, scale, seed, filter, load)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err // signaled during the (possibly long) graph build
	}
	sys := kaskade.New(g)
	sys.Parallelism = workers

	srv := server.New(sys, cfg)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("kaskaded: serving %s on http://%s (max in-flight %d, drain %s)",
		g, l.Addr(), cfg.MaxInFlight, drain)

	go func() {
		<-ctx.Done()
		stop()
		log.Printf("kaskaded: draining (deadline %s)", drain)
	}()

	if err := srv.Serve(ctx, l, drain); err != nil {
		return err
	}
	log.Printf("kaskaded: drained, shut down cleanly")
	return nil
}

// buildGraph loads or generates the served graph, mirroring the kaskade
// CLI's dataset handling (including the schema-level pre-filter on
// heterogeneous datasets).
func buildGraph(dataset string, scale float64, seed int64, filter bool, load string) (*graph.Graph, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err := graph.Load(f)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", load, err)
		}
		return g, nil
	}
	g, err := datagen.Generate(dataset, scale, seed)
	if err != nil {
		return nil, err
	}
	if filter {
		switch dataset {
		case datagen.NameProv:
			g, err = views.VertexInclusionSummarizer{Types: []string{"Job", "File"}}.Materialize(g)
		case datagen.NameDBLP:
			g, err = views.VertexInclusionSummarizer{Types: []string{"Author", "Paper"}}.Materialize(g)
		}
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}
