// DBLP co-authorship: heterogeneous publication network analytics over
// an author-to-author connector view. Shows a second domain (the paper's
// dblp-net evaluation graph) and a different query pattern: fixed
// two-hop co-authorship contraction plus aggregation on top — consumed
// through the streaming API (Rows cursor and its iter.Seq2 adapter).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"kaskade"
	"kaskade/internal/datagen"
	"kaskade/internal/views"
)

// coAuthors counts each author's distinct co-authorships: a 2-hop
// author-paper-author traversal, the dblp counterpart of job-file-job.
const coAuthors = `
SELECT name, n FROM (
  MATCH (a:Author)-[:AUTHORED]->(p:Paper)-[:AUTHORED_BY]->(b:Author)
  RETURN a.name AS name, COUNT(b) AS n
) ORDER BY n DESC LIMIT 10`

func main() {
	cfg := datagen.DefaultDBLPConfig()
	raw, err := datagen.DBLP(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dblp graph: %s\n", raw)

	// Keep authors and papers (venues are irrelevant to co-authorship).
	filtered, err := views.VertexInclusionSummarizer{Types: []string{"Author", "Paper"}}.Materialize(raw)
	if err != nil {
		log.Fatal(err)
	}
	sys := kaskade.New(filtered)

	// Selection proposes the author-to-author 2-hop connector for this
	// workload; adopt and compare.
	sel, err := sys.SelectViews([]string{coAuthors}, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sel.Describe())
	if err := sys.AdoptSelection(sel); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	stmt, err := sys.Prepare(coAuthors)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	rawRes, err := stmt.ExecContext(ctx, kaskade.WithoutViews())
	if err != nil {
		log.Fatal(err)
	}
	rawDur := time.Since(start)

	plan, err := stmt.Plan()
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	res, err := stmt.ExecContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	viewDur := time.Since(start)

	fmt.Printf("\ntop co-authors, raw:       %s\n", rawDur.Round(time.Microsecond))
	fmt.Printf("top co-authors, view (%s): %s\n", plan.ViewName, viewDur.Round(time.Microsecond))

	// Stream the leaderboard through the cursor's range adapter: rows
	// arrive one at a time (identical order to the buffered result),
	// and the loop ending closes the cursor.
	rows, err := stmt.QueryContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	rank := 0
	for row, err := range rows.All() {
		if err != nil {
			log.Fatal(err)
		}
		rank++
		fmt.Printf("%2d. %-24v %v co-authorships\n", rank, row[0], row[1])
	}

	// Sanity: both plans agree on the ranking.
	if len(rawRes.Rows) != len(res.Rows) {
		log.Fatalf("plans disagree: %d vs %d rows", len(rawRes.Rows), len(res.Rows))
	}
	for i := range res.Rows {
		if rawRes.Rows[i][0] != res.Rows[i][0] || rawRes.Rows[i][1] != res.Rows[i][1] {
			log.Fatalf("row %d differs: %v vs %v", i, rawRes.Rows[i], res.Rows[i])
		}
	}
	fmt.Println("\nraw and view plans agree ✓")
}
