// DDL: manage graph views entirely through the query language — CREATE
// MATERIALIZED VIEW from a Table I/II defining pattern, watch a prepared
// statement transparently re-rewrite onto the view, inspect the catalog
// with SHOW VIEWS (rewrite-hit counters included), and DROP the view to
// send the statement back to the base plan. The struct-based view
// constructors remain the programmatic escape hatch; here nothing but
// statement text touches the view lifecycle.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"kaskade"
)

const blastRadius = `
SELECT A.pipelineName, AVG(T_CPU) FROM (
  SELECT A, SUM(B.CPU) AS T_CPU FROM (
    MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
          (q_f1:File)-[r*0..8]->(q_f2:File)
          (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
    RETURN q_j1 AS A, q_j2 AS B
  ) GROUP BY A, B
) GROUP BY A.pipelineName`

func main() {
	// The lineage graph of the paper's Fig. 3(a).
	schema := kaskade.MustSchema(
		[]string{"Job", "File"},
		[]kaskade.EdgeType{
			{From: "Job", To: "File", Name: "WRITES_TO"},
			{From: "File", To: "Job", Name: "IS_READ_BY"},
		},
	)
	g := kaskade.NewGraph(schema)
	job := func(name string, cpu int64) kaskade.VertexID {
		return g.MustAddVertex("Job", kaskade.Properties{
			"name": name, "CPU": cpu, "pipelineName": "etl",
		})
	}
	file := func(name string) kaskade.VertexID {
		return g.MustAddVertex("File", kaskade.Properties{"name": name})
	}
	j1, j2, j3 := job("j1", 10), job("j2", 20), job("j3", 30)
	f1, f2, f3, f4 := file("f1"), file("f2"), file("f3"), file("f4")
	g.MustAddEdge(j1, f1, "WRITES_TO", nil)
	g.MustAddEdge(j1, f2, "WRITES_TO", nil)
	g.MustAddEdge(f1, j2, "IS_READ_BY", nil)
	g.MustAddEdge(f2, j3, "IS_READ_BY", nil)
	g.MustAddEdge(j2, f3, "WRITES_TO", nil)
	g.MustAddEdge(j3, f4, "WRITES_TO", nil)

	sys := kaskade.New(g)
	ctx := context.Background()

	// A prepared statement caches the plan; right now: base-graph scan.
	stmt, err := sys.Prepare(blastRadius)
	if err != nil {
		log.Fatal(err)
	}

	// CREATE the job-to-job 2-hop connector declaratively. The view
	// compiler recognizes the pattern as a k-hop connector; the CREATE
	// bumps the catalog epoch, so the statement re-rewrites by itself.
	res, err := sys.Exec(ctx, `CREATE MATERIALIZED VIEW job_conn AS
	    MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	plan, err := stmt.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared plan now uses: %s\n\n", plan.ViewName)

	out, err := stmt.ExecContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blast radius over the view:\n%s\n", out)

	// SHOW VIEWS reports the catalog: names, sizes, rewrite hits, and
	// canonical DDL that round-trips through CREATE VIEW.
	res, err = sys.Exec(ctx, `SHOW VIEWS`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)

	// Patterns outside the Table I/II inventory are rejected clearly,
	// and the query-only surface rejects DDL with a typed error.
	if _, err := sys.Exec(ctx, `CREATE VIEW nope AS MATCH (a)-[p*2..4]->(b) RETURN a, b`); err != nil {
		fmt.Printf("out-of-inventory pattern: %v\n", err)
	}
	if _, err := sys.Query(`SHOW VIEWS`); errors.Is(err, kaskade.ErrDDL) {
		fmt.Printf("query surface: %v\n\n", err)
	}

	// DROP VIEW sends the statement back to the base plan — same rows.
	if _, err := sys.Exec(ctx, `DROP VIEW job_conn`); err != nil {
		log.Fatal(err)
	}
	plan, err = stmt.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after DROP VIEW, prepared plan view = %q\n", plan.ViewName)
}
