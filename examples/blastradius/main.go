// Blast radius: the paper's §I-A scenario at scale. Generates a
// synthetic provenance graph (jobs, files, tasks, machines, users),
// applies the schema-level summarizer, lets Kaskade select and
// materialize views for the blast-radius workload, and compares
// end-to-end query times raw vs. rewritten — under a deadline, the way
// a service would run it: every execution carries a context, and the
// raw baseline is the one that risks blowing it.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"kaskade"
	"kaskade/internal/datagen"
	"kaskade/internal/views"
)

const blastRadius = `
SELECT A.pipelineName, AVG(T_CPU) FROM (
  SELECT A, SUM(B.CPU) AS T_CPU FROM (
    MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
          (q_f1:File)-[r*0..8]->(q_f2:File)
          (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
    RETURN q_j1 AS A, q_j2 AS B
  ) GROUP BY A, B
) GROUP BY A.pipelineName`

func main() {
	// Generate the raw provenance graph: the lineage core (jobs/files)
	// plus the satellite bulk (tasks, machines, users) that dominates
	// raw size, like the paper's 3.2B-vertex production graph.
	cfg := datagen.DefaultProvConfig()
	cfg.Jobs, cfg.Files = 800, 2000
	raw, err := datagen.Prov(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw provenance graph: %s\n", raw)

	// Schema-level summarizer: keep only what lineage queries touch.
	// (In the paper this is what makes the graph fit a single machine:
	// 16.4B edges -> 34M.)
	filtered, err := views.VertexInclusionSummarizer{Types: []string{"Job", "File"}}.Materialize(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after summarizer:     %s (%.0fx fewer edges)\n\n",
		filtered, float64(raw.NumEdges())/float64(filtered.NumEdges()))

	sys := kaskade.New(filtered)

	// View selection for the blast-radius workload under a budget.
	start := time.Now()
	sel, err := sys.SelectViews([]string{blastRadius}, 500_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view selection took %s\n", time.Since(start).Round(time.Millisecond))
	fmt.Print(sel.Describe())

	start = time.Now()
	if err := sys.AdoptSelection(sel); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialization took %s (%d edges stored)\n\n",
		time.Since(start).Round(time.Millisecond), sys.Catalog().TotalEdges())

	// Execute raw vs. rewritten through one prepared statement, each
	// run under a 30-second deadline. Cancellation reaches into the
	// pattern matcher, so a query that cannot make the deadline stops
	// instead of burning the machine.
	stmt, err := sys.Prepare(blastRadius)
	if err != nil {
		log.Fatal(err)
	}
	deadline := 30 * time.Second

	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	start = time.Now()
	rawRes, err := stmt.ExecContext(ctx, kaskade.WithoutViews())
	cancel()
	if errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("raw execution blew the %s deadline — exactly the workload views exist for", deadline)
	}
	if err != nil {
		log.Fatal(err)
	}
	rawDur := time.Since(start)

	plan, err := stmt.Plan()
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel = context.WithTimeout(context.Background(), deadline)
	start = time.Now()
	res, err := stmt.ExecContext(ctx)
	cancel()
	if err != nil {
		log.Fatal(err)
	}
	viewDur := time.Since(start)

	fmt.Printf("raw execution:       %d rows in %s\n", len(rawRes.Rows), rawDur.Round(time.Microsecond))
	fmt.Printf("rewritten (%s): %d rows in %s\n", plan.ViewName, len(res.Rows), viewDur.Round(time.Microsecond))
	if viewDur > 0 {
		fmt.Printf("speedup: %.2fx\n", float64(rawDur)/float64(viewDur))
	}
	if len(rawRes.Rows) != len(res.Rows) {
		log.Fatalf("result mismatch: %d vs %d rows", len(rawRes.Rows), len(res.Rows))
	}
	fmt.Println("\nresults agree between raw and rewritten plans ✓")

	// A repeated workload is where the prepared statement pays off:
	// every execution after the first skips parse and rewrite.
	const repeats = 20
	start = time.Now()
	for i := 0; i < repeats; i++ {
		if _, err := stmt.Exec(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d prepared re-executions: %s/query amortized\n",
		repeats, (time.Since(start) / repeats).Round(time.Microsecond))
}
