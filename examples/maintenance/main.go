// Incremental view maintenance: a provenance graph grows (new jobs keep
// writing and reading files) while a materialized job-to-job connector
// stays consistent without rematerialization — the maintenance side of
// graph views that makes them practical on live graphs.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"kaskade"
)

func main() {
	schema := kaskade.MustSchema(
		[]string{"Job", "File"},
		[]kaskade.EdgeType{
			{From: "Job", To: "File", Name: "WRITES_TO"},
			{From: "File", To: "Job", Name: "IS_READ_BY"},
		})
	base := kaskade.NewGraph(schema)

	def := kaskade.KHopConnector{SrcType: "Job", DstType: "Job", K: 2}
	m, err := kaskade.NewMaintainedConnector(def, base)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate a growing data lake: jobs arrive over time, write fresh
	// files, and read files written by earlier jobs.
	rng := rand.New(rand.NewSource(42))
	var jobs, files []kaskade.VertexID
	start := time.Now()
	for day := 0; day < 300; day++ {
		j, err := m.AddVertex("Job", kaskade.Properties{"CPU": int64(1 + rng.Intn(100))})
		if err != nil {
			log.Fatal(err)
		}
		// Read a few existing files (lineage to earlier jobs)...
		for r := 0; r < rng.Intn(4) && len(files) > 0; r++ {
			f := files[rng.Intn(len(files))]
			if _, err := m.AddEdge(f, j, "IS_READ_BY", kaskade.Properties{"ts": int64(day)}); err != nil {
				log.Fatal(err)
			}
		}
		// ...and write some new ones.
		for w := 0; w < 1+rng.Intn(3); w++ {
			f, err := m.AddVertex("File", nil)
			if err != nil {
				log.Fatal(err)
			}
			files = append(files, f)
			if _, err := m.AddEdge(j, f, "WRITES_TO", kaskade.Properties{"ts": int64(day)}); err != nil {
				log.Fatal(err)
			}
		}
		jobs = append(jobs, j)

		if (day+1)%100 == 0 {
			fmt.Printf("day %3d: base %s; maintained connector has %d job-to-job edges\n",
				day+1, base, m.View().NumEdges())
		}
	}
	maintainDur := time.Since(start)

	// Cross-check against a from-scratch materialization.
	start = time.Now()
	fresh, err := def.Materialize(base)
	if err != nil {
		log.Fatal(err)
	}
	rematDur := time.Since(start)
	if fresh.NumEdges() != m.View().NumEdges() {
		log.Fatalf("maintained view diverged: %d vs %d edges", m.View().NumEdges(), fresh.NumEdges())
	}
	fmt.Printf("\nmaintained view matches rematerialization (%d contracted edges) ✓\n", fresh.NumEdges())
	fmt.Printf("total incremental upkeep across %d days: %s (one rematerialization alone: %s)\n",
		300, maintainDur.Round(time.Microsecond), rematDur.Round(time.Microsecond))

	// The maintained view is a normal graph: query it directly, here
	// through the streaming cursor with a scan into a typed variable.
	sys := kaskade.New(m.View())
	rows, err := sys.QueryRows(context.Background(), `
		SELECT n FROM (
			MATCH (a:Job)-[c]->(b:Job) RETURN COUNT(c) AS n
		)`, kaskade.WithoutViews())
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	var n int64
	for rows.Next() {
		if err := rows.Scan(&n); err != nil {
			log.Fatal(err)
		}
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job-to-job dependency edges queryable on the view: %d\n", n)
}
