// Quickstart: build a tiny data-lineage graph by hand (the paper's
// Fig. 3a), prepare the job blast radius query, let Kaskade select and
// materialize views for it — the prepared statement transparently
// re-rewrites onto the new connector — and stream the results.
package main

import (
	"context"
	"fmt"
	"log"

	"kaskade"
)

const blastRadius = `
SELECT A.pipelineName, AVG(T_CPU) FROM (
  SELECT A, SUM(B.CPU) AS T_CPU FROM (
    MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
          (q_f1:File)-[r*0..8]->(q_f2:File)
          (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
    RETURN q_j1 AS A, q_j2 AS B
  ) GROUP BY A, B
) GROUP BY A.pipelineName`

func main() {
	// 1. Declare the schema: jobs write files, files are read by jobs.
	//    There are no job-job or file-file edges — the structural
	//    constraint Kaskade's view enumeration mines.
	schema := kaskade.MustSchema(
		[]string{"Job", "File"},
		[]kaskade.EdgeType{
			{From: "Job", To: "File", Name: "WRITES_TO"},
			{From: "File", To: "Job", Name: "IS_READ_BY"},
		},
	)

	// 2. Load the graph of the paper's Fig. 3(a).
	g := kaskade.NewGraph(schema)
	job := func(name string, cpu int64) kaskade.VertexID {
		return g.MustAddVertex("Job", kaskade.Properties{
			"name": name, "CPU": cpu, "pipelineName": "etl",
		})
	}
	file := func(name string) kaskade.VertexID {
		return g.MustAddVertex("File", kaskade.Properties{"name": name})
	}
	j1, j2, j3 := job("j1", 10), job("j2", 20), job("j3", 30)
	f1, f2, f3, f4 := file("f1"), file("f2"), file("f3"), file("f4")
	g.MustAddEdge(j1, f1, "WRITES_TO", nil)
	g.MustAddEdge(j1, f2, "WRITES_TO", nil)
	g.MustAddEdge(f1, j2, "IS_READ_BY", nil)
	g.MustAddEdge(f2, j3, "IS_READ_BY", nil)
	g.MustAddEdge(j2, f3, "WRITES_TO", nil)
	g.MustAddEdge(j3, f4, "WRITES_TO", nil)

	sys := kaskade.New(g)
	ctx := context.Background()

	// 3. Prepare the workload query once: the statement caches the
	//    parsed AST and (lazily) the view-rewritten plan, so repeated
	//    executions skip parse and rewrite. Right now the catalog is
	//    empty, so its plan is a base-graph scan.
	stmt, err := sys.Prepare(blastRadius)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := stmt.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared plan before views: base graph (view=%q)\n\n", plan.ViewName)

	// 4. Enumerate candidate views: the constraint-based enumerator
	//    mines the schema (only even-length job-to-job paths exist) and
	//    the query (at most 10 hops between q_j1 and q_j2) and proposes
	//    k-hop connectors and summarizers.
	cands, err := sys.EnumerateViews(blastRadius)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enumerated %d candidate views:\n%s\n\n", len(cands), kaskade.DescribeCandidates(cands))

	// 5. Select views under a space budget and materialize them. This
	//    bumps the catalog epoch: the prepared statement notices on its
	//    next execution and re-rewrites — no re-Prepare needed.
	sel, err := sys.SelectViews([]string{blastRadius}, 10_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sel.Describe())
	if err := sys.AdoptSelection(sel); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized: %v\n\n", sys.Catalog().Views())

	// 6. The same statement now runs over the 2-hop job-to-job
	//    connector (Listing 1 -> Listing 4 of the paper).
	explain, err := sys.Explain(blastRadius)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(explain)

	res, err := stmt.ExecContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nblast radius (with views):\n%s", res.String())

	// 7. Results also stream: a Rows cursor yields rows incrementally —
	//    identical rows, identical order — with database/sql ergonomics.
	//    WithoutViews executes the baseline plan for comparison.
	rows, err := stmt.QueryContext(ctx, kaskade.WithoutViews())
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	fmt.Println("\nblast radius (raw, streamed row by row):")
	for rows.Next() {
		var pipeline string
		var avg float64
		if err := rows.Scan(&pipeline, &avg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %.1f\n", pipeline, avg)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
}
