// View selection under budgets: the §V-B knapsack in action. A workload
// of three lineage queries competes for materialization space; sweeping
// the budget shows which views win at each size, and that the chosen
// sets always respect the budget.
package main

import (
	"context"
	"fmt"
	"log"

	"kaskade"
	"kaskade/internal/datagen"
	"kaskade/internal/views"
)

var workload = []string{
	// Q1-style blast radius (variable-length).
	`SELECT A.pipelineName, AVG(T_CPU) FROM (
	   SELECT A, SUM(B.CPU) AS T_CPU FROM (
	     MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
	           (q_f1:File)-[r*0..8]->(q_f2:File)
	           (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
	     RETURN q_j1 AS A, q_j2 AS B
	   ) GROUP BY A, B
	 ) GROUP BY A.pipelineName`,
	// Direct downstream dependencies (fixed 2-hop).
	`MATCH (a:Job)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(b:Job)
	 RETURN a.name AS producer, COUNT(b) AS consumers`,
	// Hot files: most-read outputs.
	`SELECT fname, readers FROM (
	   MATCH (f:File)-[:IS_READ_BY]->(j:Job)
	   RETURN f.name AS fname, COUNT(j) AS readers
	 ) ORDER BY readers DESC LIMIT 5`,
}

func main() {
	cfg := datagen.DefaultProvConfig()
	cfg.Jobs, cfg.Files = 600, 1500
	raw, err := datagen.Prov(cfg)
	if err != nil {
		log.Fatal(err)
	}
	filtered, err := views.VertexInclusionSummarizer{Types: []string{"Job", "File"}}.Materialize(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineage graph: %s\n", filtered)
	fmt.Printf("workload: %d queries\n\n", len(workload))

	sys := kaskade.New(filtered)
	for _, budget := range []int64{0, 5_000, 50_000, 5_000_000} {
		sel, err := sys.SelectViews(workload, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("---- budget %d edges ----\n%s\n", budget, sel.Describe())
	}

	// Adopt the generous-budget selection and answer the workload.
	sel, err := sys.SelectViews(workload, 5_000_000)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.AdoptSelection(sel); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized: %v (%d edges)\n\n", sys.Catalog().Views(), sys.Catalog().TotalEdges())

	// Serve the workload as a set of prepared statements — parse and
	// §V-C rewrite happen once per query, not once per request — with a
	// per-request row guard as a safety net.
	ctx := context.Background()
	for i, q := range workload {
		stmt, err := sys.Prepare(q, kaskade.WithMaxRows(1_000_000))
		if err != nil {
			log.Fatal(err)
		}
		plan, err := stmt.Plan()
		if err != nil {
			log.Fatal(err)
		}
		res, err := stmt.ExecContext(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d -> plan %-22s (%d rows)\n", i+1, planName(plan.ViewName), len(res.Rows))
	}
}

func planName(v string) string {
	if v == "" {
		return "base graph"
	}
	return v
}
