// Benchmarks regenerating the paper's tables and figures (one benchmark
// per table/figure, backed by internal/harness) plus micro-benchmarks of
// the pieces Kaskade puts on the critical path: view enumeration (the
// paper reports "a few milliseconds" per query, §VII-A), connector
// materialization, pattern matching, and view selection.
//
// Run with: go test -bench=. -benchmem
package kaskade_test

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"kaskade"
	"kaskade/internal/datagen"
	"kaskade/internal/enum"
	"kaskade/internal/exec"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/harness"
	"kaskade/internal/knapsack"
	"kaskade/internal/prolog"
	"kaskade/internal/views"
	"kaskade/internal/workload"
)

// benchCfg keeps figure regeneration fast enough for -bench runs while
// preserving every shape; use cmd/kaskade-bench for full-scale output.
func benchCfg() harness.Config { return harness.Config{Scale: 0.05, Sample: 25} }

// --- one benchmark per table/figure ---

func BenchmarkTableI_II_ViewInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if kaskade.ViewInventory() == "" {
			b.Fatal("empty inventory")
		}
	}
}

func BenchmarkTableIII_Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.TableIII(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		harness.PrintTableIII(io.Discard, rows)
	}
}

func BenchmarkTableIV_Workload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.PrintTableIV(io.Discard)
	}
}

func BenchmarkFig5_ViewSizeEstimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		harness.PrintFig5(io.Discard, rows)
	}
}

func BenchmarkFig6_SizeReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		harness.PrintFig6(io.Discard, rows)
	}
}

func BenchmarkFig7_QueryRuntimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		harness.PrintFig7(io.Discard, rows)
	}
}

func BenchmarkFig8_DegreeDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		harness.PrintFig8(io.Discard, rows)
	}
}

func BenchmarkAblation_SearchSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Ablation()
		if err != nil {
			b.Fatal(err)
		}
		harness.PrintAblation(io.Discard, rows)
	}
}

// --- critical-path micro-benchmarks ---

func filteredProvBench(b *testing.B) *graph.Graph {
	b.Helper()
	cfg := datagen.DefaultProvConfig()
	cfg.Jobs, cfg.Files, cfg.TasksPerJob, cfg.Machines = 500, 1200, 2, 20
	raw, err := datagen.Prov(cfg)
	if err != nil {
		b.Fatal(err)
	}
	g, err := views.VertexInclusionSummarizer{Types: []string{"Job", "File"}}.Materialize(raw)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkViewEnumeration measures constraint-based enumeration latency
// for the blast-radius query — the paper's "introduces a few
// milliseconds to the total query runtime" claim (§VII-A).
func BenchmarkViewEnumeration(b *testing.B) {
	q := gql.MustParse(harness.BlastRadiusQuery)
	en := &enum.Enumerator{Schema: datagen.ProvSchema(), MaxK: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := en.Enumerate(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConnectorMaterialization(b *testing.B) {
	g := filteredProvBench(b)
	v := views.KHopConnector{SrcType: "Job", DstType: "Job", K: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Materialize(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummarizerMaterialization(b *testing.B) {
	cfg := datagen.DefaultProvConfig()
	cfg.Jobs, cfg.Files, cfg.TasksPerJob = 500, 1200, 10
	raw, err := datagen.Prov(cfg)
	if err != nil {
		b.Fatal(err)
	}
	v := views.VertexInclusionSummarizer{Types: []string{"Job", "File"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Materialize(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlastRadius compares the paper's headline query over the
// filtered graph vs. over the materialized 2-hop connector.
func BenchmarkBlastRadius(b *testing.B) {
	g := filteredProvBench(b)
	conn, err := views.KHopConnector{SrcType: "Job", DstType: "Job", K: 2}.Materialize(g)
	if err != nil {
		b.Fatal(err)
	}
	base := gql.MustParse(harness.BlastRadiusQuery)
	rewritten := gql.MustParse(`
		SELECT A.pipelineName, AVG(T_CPU) FROM (
		  SELECT A, SUM(B.CPU) AS T_CPU FROM (
		    MATCH (q_j1:Job)-[r:CONN_2HOP_Job_Job*1..5]->(q_j2:Job)
		    RETURN q_j1 AS A, q_j2 AS B
		  ) GROUP BY A, B
		) GROUP BY A.pipelineName`)

	b.Run("filter", func(b *testing.B) {
		ex := &exec.Executor{G: g}
		for i := 0; i < b.N; i++ {
			if _, err := ex.Execute(base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("connector", func(b *testing.B) {
		ex := &exec.Executor{G: conn}
		for i := 0; i < b.N; i++ {
			if _, err := ex.Execute(rewritten); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkViewSelection(b *testing.B) {
	g := filteredProvBench(b)
	a := &workload.Analyzer{Schema: g.Schema(), MaxK: 10}
	qs := []gql.Query{gql.MustParse(harness.BlastRadiusQuery)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Analyze(g, qs, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrologSchemaKHopPath(b *testing.B) {
	m := prolog.NewMachine()
	if err := m.ConsultString(`
		schemaEdge('Job', 'File', 'W').
		schemaEdge('File', 'Job', 'R').
		schemaKHopPath(X, Y, K) :- schemaKHopWalk(X, Y, K).
		schemaKHopWalk(X, Y, 1) :- schemaEdge(X, Y, _).
		schemaKHopWalk(X, Y, K) :- K > 1,
			schemaEdge(X, Z, _), K1 is K - 1, schemaKHopWalk(Z, Y, K1).
	`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sols, err := m.Query("schemaKHopPath('Job', 'Job', 8)", 0)
		if err != nil || len(sols) == 0 {
			b.Fatalf("sols=%d err=%v", len(sols), err)
		}
	}
}

func BenchmarkPatternMatch2Hop(b *testing.B) {
	g := filteredProvBench(b)
	q := gql.MustParse(`MATCH (a:Job)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(c:Job) RETURN a, c`)
	ex := &exec.Executor{G: g}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWorkerCounts are the parallelism levels the parallel-executor
// benchmarks sweep: sequential baseline, 2, 4, and every CPU.
func benchWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkParallelPatternMatch measures the worker-pool matcher on the
// multi-core datagen workload: the 2-hop lineage join over the filtered
// provenance graph. workers=1 is the sequential path; higher counts
// partition the Job candidate list (results are identical either way).
func BenchmarkParallelPatternMatch(b *testing.B) {
	g := filteredProvBench(b)
	q := gql.MustParse(`MATCH (a:Job)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(c:Job) RETURN a, c`)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			ex := &exec.Executor{G: g, Workers: w}
			for i := 0; i < b.N; i++ {
				if _, err := ex.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelVarLengthMatch stresses the matcher's hardest case —
// variable-length path enumeration with edge uniqueness — where each
// first-node subtree is expensive and worker partitioning pays most.
func BenchmarkParallelVarLengthMatch(b *testing.B) {
	g := filteredProvBench(b)
	q := gql.MustParse(`MATCH (a:Job)-[r*1..3]->(v) RETURN COUNT(r) AS n`)
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			ex := &exec.Executor{G: g, Workers: w}
			for i := 0; i < b.N; i++ {
				if _, err := ex.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelViewMaterialization measures concurrent catalog
// builds: four independent views over one read-only base graph.
func BenchmarkParallelViewMaterialization(b *testing.B) {
	g := filteredProvBench(b)
	cands := []enum.Candidate{
		{View: views.KHopConnector{SrcType: "Job", DstType: "Job", K: 2}},
		{View: views.KHopConnector{SrcType: "File", DstType: "File", K: 2}},
		{View: views.VertexInclusionSummarizer{Types: []string{"Job"}}},
		{View: views.EdgeInclusionSummarizer{Types: []string{"WRITES_TO"}}},
	}
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := workload.NewCatalog(g)
				if err := c.AddAll(cands, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPreparedVsAdHoc is the prepared-query acceptance benchmark:
// ad-hoc Query pays parse + §V-C view rewriting (schema inference,
// candidate enumeration, cost estimation) on every call, while a
// PreparedQuery pays them once and then only an epoch check per
// execution. The graph is kept small so the match itself is cheap and
// the amortized planning work dominates the gap.
func BenchmarkPreparedVsAdHoc(b *testing.B) {
	g := buildLineage(7, 30, 60)
	sys := kaskade.New(g)
	sel, err := sys.SelectViews([]string{blastRadiusQuery}, 1_000_000)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.AdoptSelection(sel); err != nil {
		b.Fatal(err)
	}

	b.Run("adhoc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.Query(blastRadiusQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		stmt, err := sys.Prepare(blastRadiusQuery)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Exec(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamedVsBuffered prices the Rows cursor against the
// buffered Result on a projection query: the cursor adds one coroutine
// hop per row but never holds the full table.
func BenchmarkStreamedVsBuffered(b *testing.B) {
	g := filteredProvBench(b)
	q := gql.MustParse(`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`)
	ex := &exec.Executor{G: g}
	ctx := context.Background()
	b.Run("buffered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ex.ExecuteContext(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streamed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := ex.Stream(ctx, q)
			if err != nil {
				b.Fatal(err)
			}
			for rows.Next() {
			}
			if err := rows.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKnapsack60Items(b *testing.B) {
	items := make([]knapsack.Item, 60)
	for i := range items {
		items[i] = knapsack.Item{Weight: int64(1 + (i*37)%997), Value: float64((i * 61) % 503)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		knapsack.Solve(items, 5_000)
	}
}

func BenchmarkLabelPropagation(b *testing.B) {
	g := filteredProvBench(b)
	r := workload.BaseRunner(g, "Job", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(workload.Q7Community); err != nil {
			b.Fatal(err)
		}
	}
}
