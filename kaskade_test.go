// Integration tests of the public API: the exact code path a downstream
// user follows (README quick start), plus property-based checks tying
// the optimizer's pieces together through the façade.
package kaskade_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"kaskade"
)

const blastRadiusQuery = `
SELECT A.pipelineName, AVG(T_CPU) FROM (
  SELECT A, SUM(B.CPU) AS T_CPU FROM (
    MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
          (q_f1:File)-[r*0..8]->(q_f2:File)
          (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
    RETURN q_j1 AS A, q_j2 AS B
  ) GROUP BY A, B
) GROUP BY A.pipelineName`

// buildLineage constructs a random DAG lineage graph through the public
// API (files written by one job, read only by later jobs).
func buildLineage(seed int64, nJobs, nFiles int) *kaskade.Graph {
	schema := kaskade.MustSchema(
		[]string{"Job", "File"},
		[]kaskade.EdgeType{
			{From: "Job", To: "File", Name: "WRITES_TO"},
			{From: "File", To: "Job", Name: "IS_READ_BY"},
		})
	g := kaskade.NewGraph(schema)
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]kaskade.VertexID, nJobs)
	for i := range jobs {
		jobs[i] = g.MustAddVertex("Job", kaskade.Properties{
			"CPU":          int64(1 + rng.Intn(100)),
			"pipelineName": []string{"etl", "ml", "reporting"}[rng.Intn(3)],
		})
	}
	for i := 0; i < nFiles; i++ {
		f := g.MustAddVertex("File", nil)
		w := rng.Intn(nJobs)
		g.MustAddEdge(jobs[w], f, "WRITES_TO", nil)
		for r := 0; r < rng.Intn(3); r++ {
			if w+1 < nJobs {
				g.MustAddEdge(f, jobs[w+1+rng.Intn(nJobs-w-1)], "IS_READ_BY", nil)
			}
		}
	}
	return g
}

func TestReadmeQuickStart(t *testing.T) {
	g := buildLineage(1, 60, 150)
	sys := kaskade.New(g)

	sel, err := sys.SelectViews([]string{blastRadiusQuery}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AdoptSelection(sel); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(blastRadiusQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no blast radius rows")
	}
	if res.String() == "" {
		t.Error("result rendering empty")
	}
}

// TestRewriteEquivalenceProperty: on random DAG lineage graphs, the
// optimizer's chosen plan returns exactly the raw plan's result — the
// end-to-end soundness property of view-based rewriting.
func TestRewriteEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := buildLineage(seed, 30, 80)
		sys := kaskade.New(g)
		raw, err := sys.QueryRaw(blastRadiusQuery)
		if err != nil {
			return false
		}
		sel, err := sys.SelectViews([]string{blastRadiusQuery}, 1<<40)
		if err != nil {
			return false
		}
		if err := sys.AdoptSelection(sel); err != nil {
			return false
		}
		got, err := sys.Query(blastRadiusQuery)
		if err != nil {
			return false
		}
		if len(got.Rows) != len(raw.Rows) {
			return false
		}
		want := map[string]float64{}
		for _, row := range raw.Rows {
			want[row[0].(string)] = asFloat(row[1])
		}
		for _, row := range got.Rows {
			w, ok := want[row[0].(string)]
			if !ok {
				return false
			}
			d := asFloat(row[1]) - w
			if d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func asFloat(v any) float64 {
	switch v := v.(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	}
	return 0
}

func TestPublicViewTypes(t *testing.T) {
	g := buildLineage(3, 20, 40)
	// Every re-exported view class materializes through the public API.
	viewList := []kaskade.View{
		kaskade.KHopConnector{SrcType: "Job", DstType: "Job", K: 2},
		kaskade.SameVertexTypeConnector{VType: "Job", MaxLen: 4},
		kaskade.SameEdgeTypeConnector{EType: "WRITES_TO", MaxLen: 3},
		kaskade.SourceToSinkConnector{MaxLen: 6},
		kaskade.VertexInclusionSummarizer{Types: []string{"Job"}},
		kaskade.VertexRemovalSummarizer{Types: []string{"File"}},
		kaskade.EdgeInclusionSummarizer{Types: []string{"WRITES_TO"}},
		kaskade.EdgeRemovalSummarizer{Types: []string{"IS_READ_BY"}},
		kaskade.VertexAggregatorSummarizer{VType: "Job", GroupBy: "pipelineName"},
		kaskade.EdgeAggregatorSummarizer{},
		kaskade.SubgraphAggregatorSummarizer{VType: "Job", GroupBy: "pipelineName"},
	}
	for _, v := range viewList {
		if _, err := v.Materialize(g); err != nil {
			t.Errorf("%s: %v", v.Name(), err)
		}
	}
}

func TestEnumerateThroughFacade(t *testing.T) {
	sys := kaskade.New(buildLineage(5, 25, 60))
	cands, err := sys.EnumerateViews(blastRadiusQuery)
	if err != nil {
		t.Fatal(err)
	}
	if kaskade.DescribeCandidates(cands) == "" {
		t.Error("no candidate description")
	}
	hasK2 := false
	for _, c := range cands {
		if v, ok := c.View.(kaskade.KHopConnector); ok && v.K == 2 && v.SrcType == "Job" {
			hasK2 = true
		}
	}
	if !hasK2 {
		t.Error("missing the job-to-job 2-hop connector candidate")
	}
}

// TestDDLThroughFacade follows the README's declarative flow: create a
// view in the query language, watch prepared statements pick it up,
// inspect it, and drop it.
func TestDDLThroughFacade(t *testing.T) {
	ctx := context.Background()
	sys := kaskade.New(buildLineage(7, 60, 150))

	stmt, err := sys.Prepare(blastRadiusQuery)
	if err != nil {
		t.Fatal(err)
	}
	base, err := stmt.ExecContext(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := sys.Exec(ctx, `CREATE MATERIALIZED VIEW jj AS
	    MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y`); err != nil {
		t.Fatal(err)
	}
	plan, err := stmt.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.ViewName == "" {
		t.Fatal("prepared statement did not re-rewrite over the DDL-created view")
	}
	got, err := stmt.ExecContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != base.String() {
		t.Fatal("rewritten result differs from base result")
	}

	infos := sys.ListViews()
	if len(infos) != 1 || infos[0].Name != "jj" || infos[0].DDL == "" {
		t.Fatalf("ListViews = %+v", infos)
	}
	if v, err := kaskade.CompileView(`MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y`); err != nil || v.Name() == "" {
		t.Fatalf("CompileView: %v", err)
	}
	if d := kaskade.DefineView(kaskade.KHopConnector{SrcType: "Job", DstType: "Job", K: 2}); d.DDL == "" {
		t.Fatal("DefineView derived no DDL")
	}

	// The query-only surface rejects DDL with the typed error.
	if _, err := sys.Query(`SHOW VIEWS`); !errors.Is(err, kaskade.ErrDDL) {
		t.Errorf("Query(SHOW VIEWS) error = %v, want ErrDDL", err)
	}
	if _, err := sys.Exec(ctx, `DROP VIEW jj`); err != nil {
		t.Fatal(err)
	}
	if len(sys.ListViews()) != 0 {
		t.Fatal("view survived DROP VIEW")
	}
}
