// Benchmark and CI guard for the delta-overlay storage lifecycle: a
// sustained 1:10 mutate:query mix on overlay storage (mutations land in
// the frozen snapshot's tail, compaction folds it off the hot path)
// versus the legacy refreeze lifecycle (every mutation invalidates the
// cached CSR and the next query rebuilds it from scratch).
package kaskade_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"kaskade/internal/datagen"
	"kaskade/internal/exec"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
)

// queriesPerMutation is the mix ratio the acceptance gate pins: each
// benchmark iteration performs one schema-valid mutation followed by
// this many queries.
const queriesPerMutation = 10

// mixedWorkloadGraph builds the provenance graph the mixed benchmark
// mutates: large enough that a full CSR rebuild is clearly priced, small
// enough for -bench smoke runs.
func mixedWorkloadGraph(tb testing.TB) *graph.Graph {
	tb.Helper()
	cfg := datagen.DefaultProvConfig()
	cfg.Jobs, cfg.Files, cfg.TasksPerJob, cfg.Machines = 300, 800, 2, 16
	g, err := datagen.Prov(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// mixedMutateQuery runs n iterations of the 1:10 mix against g and
// returns the rendered rows of the final query, so arms can be checked
// for byte-identity. Mutations tie new File vertices into existing Jobs
// with schema-valid WRITES_TO edges; the query is a point lookup on the
// small Machine type — cheap by design, so the refreeze arm's cost is
// dominated by the per-mutation CSR rebuild it pays and the overlay arm
// avoids, which is exactly the trade this benchmark prices.
func mixedMutateQuery(tb testing.TB, g *graph.Graph, n int) []string {
	tb.Helper()
	jobs := g.VerticesOfType("Job")
	q := gql.MustParse(`MATCH (m:Machine) WHERE m.name = "m0" RETURN m.name AS name`)
	ex := &exec.Executor{G: g}
	var last *exec.Result
	for i := 0; i < n; i++ {
		f := g.MustAddVertex("File", graph.Properties{"name": "fmix"})
		g.MustAddEdge(jobs[i%len(jobs)], f, "WRITES_TO", graph.Properties{"ts": int64(i)})
		for j := 0; j < queriesPerMutation; j++ {
			res, err := ex.Execute(q)
			if err != nil {
				tb.Fatal(err)
			}
			last = res
		}
	}
	out := make([]string, 0, len(last.Rows)+1)
	out = append(out, fmt.Sprint(last.Cols))
	for _, r := range last.Rows {
		out = append(out, fmt.Sprint(r))
	}
	return out
}

// BenchmarkMixedMutateQuery prices sustained mutation rate against
// query latency in both storage lifecycles. The overlay arm absorbs
// mutations into the snapshot tail (compacting at the default
// threshold); the refreeze arm invalidates the cached CSR per mutation,
// so each iteration pays a full rebuild on its first query.
func BenchmarkMixedMutateQuery(b *testing.B) {
	b.Run("overlay", func(b *testing.B) {
		g := mixedWorkloadGraph(b)
		g.Freeze()
		b.ResetTimer()
		mixedMutateQuery(b, g, b.N)
	})
	b.Run("refreeze", func(b *testing.B) {
		g := mixedWorkloadGraph(b)
		g.SetDeltaOverlay(false)
		g.Freeze()
		b.ResetTimer()
		mixedMutateQuery(b, g, b.N)
	})
}

// TestMixedMutateQueryGuard is the CI acceptance gate for the overlay:
// at a 1:10 mutate:query mix the overlay lifecycle must run at least 5x
// faster per iteration than freeze-after-every-mutation, and the two
// arms must return byte-identical rows. Gated behind BENCH_GUARD=1
// because wall-clock ratios are meaningless on a loaded machine.
func TestMixedMutateQueryGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") != "1" {
		t.Skip("set BENCH_GUARD=1 to run the mixed mutate/query guard")
	}
	run := func(overlay bool) (time.Duration, []string) {
		g := mixedWorkloadGraph(t)
		if !overlay {
			g.SetDeltaOverlay(false)
		}
		g.Freeze()
		// Byte-identity first, on a fixed iteration count, before the
		// graph diverges under b.N-driven growth.
		rows := mixedMutateQuery(t, g, 3)
		// Min-of-N on a fresh graph per probe: the minimum is the run
		// least polluted by scheduling noise.
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			gb := mixedWorkloadGraph(t)
			if !overlay {
				gb.SetDeltaOverlay(false)
			}
			gb.Freeze()
			r := testing.Benchmark(func(b *testing.B) {
				mixedMutateQuery(b, gb, b.N)
			})
			if d := time.Duration(r.NsPerOp()); d < best {
				best = d
			}
		}
		return best, rows
	}
	ov, ovRows := run(true)
	rf, rfRows := run(false)
	if len(ovRows) != len(rfRows) {
		t.Fatalf("overlay returned %d rendered rows, refreeze %d", len(ovRows), len(rfRows))
	}
	for i := range ovRows {
		if ovRows[i] != rfRows[i] {
			t.Fatalf("row %d diverged: overlay %s, refreeze %s", i, ovRows[i], rfRows[i])
		}
	}
	t.Logf("mixed 1:%d mix: overlay %v/op, refreeze %v/op (%.1fx)",
		queriesPerMutation, ov, rf, float64(rf)/float64(ov))
	if rf < 5*ov {
		t.Fatalf("overlay speedup below gate: overlay=%v refreeze=%v (%.2fx < 5x)",
			ov, rf, float64(rf)/float64(ov))
	}
	fmt.Fprintf(os.Stderr, "mixed mutate/query: overlay=%v refreeze=%v (%.1fx)\n",
		ov, rf, float64(rf)/float64(ov))
}
