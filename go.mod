module kaskade

go 1.23
