module kaskade

go 1.22
