// Package kaskade is a from-scratch Go implementation of KASKADE
// ("Kaskade: Graph Views for Efficient Graph Analytics", da Trindade et
// al., ICDE 2020): a graph query optimization framework that mines
// structural constraints from graph schemas and query workloads, derives
// materialized graph views (connectors and summarizers) via inference-
// based view enumeration, selects the most beneficial views under a
// space budget with a cost model and a 0/1 knapsack, and rewrites
// incoming queries over the materialized views.
//
// Quick start:
//
//	schema := kaskade.MustSchema(
//		[]string{"Job", "File"},
//		[]kaskade.EdgeType{
//			{From: "Job", To: "File", Name: "WRITES_TO"},
//			{From: "File", To: "Job", Name: "IS_READ_BY"},
//		})
//	g := kaskade.NewGraph(schema)
//	// ... load vertices and edges ...
//	sys := kaskade.New(g)
//	sel, _ := sys.SelectViews([]string{blastRadiusQuery}, 1_000_000)
//	_ = sys.AdoptSelection(sel)
//	res, _ := sys.Query(blastRadiusQuery) // runs over the 2-hop connector
//
// The packages under internal/ implement every substrate the paper
// depends on: a property-graph engine (for Neo4j), a Prolog-style
// inference engine (for SWI-Prolog), a hybrid Cypher+SQL language and
// executor, the §V-A cost model, a branch-and-bound knapsack (for
// OR-Tools), synthetic dataset generators standing in for the
// evaluation's graphs, and the full benchmark harness that regenerates
// every table and figure of the paper.
//
// # Query API
//
// The query surface is modeled on database/sql. For a repeated
// workload — Kaskade's whole reason to exist — Prepare parses and
// view-rewrites once, and every execution after that skips straight to
// the match:
//
//	stmt, _ := sys.Prepare(blastRadiusQuery)
//	for range requests {
//		res, _ := stmt.ExecContext(ctx) // no parse, no rewrite
//		...
//	}
//
// A prepared plan tracks the catalog: AdoptSelection, MaterializeView,
// and DropView bump an internal epoch, and the statement transparently
// re-rewrites on its next execution, so long-lived statements follow
// the view set — including away from a view that was dropped.
//
// Every execution path takes a context.Context (QueryContext,
// QueryRows, ExecContext): cancel it — or let its deadline pass — and
// a pathological pattern match stops promptly, worker pool included.
//
// Results stream. QueryRows and PreparedQuery.QueryContext return a
// Rows cursor (Next/Scan/Err/Close, plus an iter.Seq2 adapter in All)
// that yields rows incrementally instead of buffering the table, in
// exactly the order the buffered API returns them:
//
//	rows, _ := sys.QueryRows(ctx, q)
//	defer rows.Close()
//	for rows.Next() {
//		var p string; var n int64
//		_ = rows.Scan(&p, &n)
//	}
//
// Per-query functional options override the System defaults:
// WithWorkers (match parallelism), WithMaxRows (row guard),
// WithoutViews (baseline execution — what QueryRaw does).
//
// # Declarative view DDL
//
// Views are defined in the query language itself — the paper's Table
// I/II templates are graph patterns, so CREATE VIEW takes one as its
// body. System.Exec executes DDL (and plain queries) through one
// dispatcher:
//
//	_, _ = sys.Exec(ctx, `CREATE MATERIALIZED VIEW jj AS
//	    MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y`)
//	res, _ := sys.Exec(ctx, `SHOW VIEWS`) // name, kind, sizes, rewrite hits, DDL
//	_, _ = sys.Exec(ctx, `DROP VIEW jj`)
//
// The view compiler recognizes which Table I/II class a pattern
// denotes — k-hop ((x:S)-[p*k..k]->(y:T)), same-vertex-type
// ((x:T)-[p*1..n]->(y:T)), same-edge-type ((x)-[p:E*1..n]->(y)),
// source-to-sink ((x)-[p*1..n]->(y) WHERE INDEGREE(x) = 0 AND
// OUTDEGREE(y) = 0), label/type inclusion and removal filters, and the
// vertex/edge/subgraph aggregators — and errors descriptively on
// anything else. Every view is materialized on creation (MATERIALIZED
// is optional); CREATE bumps the catalog epoch so prepared statements
// transparently re-rewrite over the new view, and DROP VIEW re-rewrites
// them away from it. The query-only paths (Query*, Prepare) reject DDL
// with an error wrapping ErrDDL. ViewInventory lists every class with
// an example CREATE statement; the struct-based view constructors below
// remain the programmatic escape hatch for options the DDL cannot
// express (multi-edge-type k-hop filters, DedupPairs).
//
// # Frozen CSR storage
//
// Execution runs on an immutable, cache-friendly storage layout: a
// graph's Freeze method derives a Frozen view with flat CSR adjacency
// arrays, interned type labels, per-vertex edges grouped by edge type
// (a typed traversal step reads one contiguous pre-filtered slice),
// and a dense per-type vertex index. Freezing happens automatically —
// New freezes the base graph, LoadGraph freezes what it loads, and
// every view landed in the catalog is frozen before it becomes
// visible — and is memoized, so it costs one O(V+E) build per graph.
// The frozen view preserves every iteration order, so results are
// byte-identical to the append-mode accessors; Explain reports the
// storage line of the plan's graph. Graphs must not be mutated after
// freezing (the read-only-after-load contract, unchanged).
//
// # Parallel execution
//
// Query execution and view materialization run on worker pools when
// System.Parallelism is set (0 or 1 = sequential, N>1 = N workers,
// negative = one per available CPU):
//
//	sys := kaskade.New(g)
//	sys.Parallelism = -1 // use every CPU
//
// The pattern matcher partitions the binding space of a query's first
// node across workers and merges partition results in partition order,
// so parallel execution is deterministic: results — row order, group
// order, even float accumulation order — are byte-identical to the
// sequential path, which remains the semantic reference. How a
// partition's results travel is chosen per query at plan time (see
// AggMode): pure projections stream each partition's row prefix
// eagerly (low time-to-first-row at any worker count),
// order-insensitive aggregates (COUNT/MIN/MAX, and SUM over
// provably-integer expressions — property accesses are untyped, so
// SUM over a property buffers) run as per-partition partial
// accumulators merged in partition order, and AVG, float SUM, and
// unprovable SUM fall back to buffering yields for exact sequential
// fold order.
// AdoptSelection materializes independent selected views concurrently
// (spare workers fan out inside each connector's per-source path
// search), preserving catalog order. Graphs are read-only once loaded
// and the catalog locks its view set, so a System is safe for
// concurrent use throughout — queries may overlap each other and
// catalog mutation.
//
// # Observability
//
// Every System carries an always-on metrics registry: executions bump
// atomic counters (queries, rows, errors), a lock-free latency
// histogram, per-query-text cumulative stats, and the §V-C rewrite
// hit/miss counters. Read it three ways:
//
//	snap := sys.MetricsSnapshot()        // point-in-time copy of everything
//	top := sys.Metrics().TopQueries(5)   // hottest query texts by total time
//	out, _ := sys.ExplainAnalyze(ctx, q) // plan + per-stage actuals for one run
//
// MetricsSnapshot is lock-free with respect to query execution, so a
// monitoring loop never stalls queries; consecutive snapshots subtract
// cleanly into interval rates and windowed latency quantiles
// (Hist.Sub/Quantile), which is how the `kaskade -cmd top` dashboard
// derives its time series. EXPLAIN and Explain plan without executing
// and move no counter; EXPLAIN ANALYZE (and ExplainAnalyze) execute for
// real. SetMetrics(nil) disables recording entirely — CI's bench guard
// pins the enabled-vs-disabled overhead on the prepared path under 5%.
package kaskade

import (
	"io"

	"kaskade/internal/core"
	"kaskade/internal/cost"
	"kaskade/internal/enum"
	"kaskade/internal/exec"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/metrics"
	"kaskade/internal/views"
	"kaskade/internal/workload"
)

// System is a Kaskade instance over one base graph (see core.System).
type System = core.System

// New creates a Kaskade system over a property graph.
func New(g *Graph) *System { return core.New(g) }

// Graph types re-exported from the property-graph engine.
type (
	// Graph is the in-memory property graph Kaskade operates on.
	Graph = graph.Graph
	// Frozen is a graph's immutable CSR view: flat adjacency arrays with
	// per-vertex edges grouped by type, built once by Graph.Freeze and
	// cached. New, AdoptSelection/MaterializeView, and LoadGraph freeze
	// automatically, so queries and traversals run on it by default.
	Frozen = graph.Frozen
	// Schema declares vertex types and the domain/range of edge types,
	// plus optional property kinds (Schema.DeclareProperty).
	Schema = graph.Schema
	// EdgeType declares one typed edge with its endpoint vertex types.
	EdgeType = graph.EdgeType
	// PropKind is a schema-declared property value type; declaring a
	// property PropInt lets the planner prove integer SUM over it and
	// select the partial-aggregation path.
	PropKind = graph.PropKind
	// Properties is a key-value bag on a vertex or edge.
	Properties = graph.Properties
	// VertexID identifies a vertex within a Graph.
	VertexID = graph.VertexID
	// EdgeID identifies an edge within a Graph.
	EdgeID = graph.EdgeID
)

// Declarable property kinds (see PropKind).
const (
	PropInt    = graph.PropInt
	PropFloat  = graph.PropFloat
	PropString = graph.PropString
	PropBool   = graph.PropBool
)

// NewGraph returns an empty graph governed by schema (nil = unconstrained).
func NewGraph(schema *Schema) *Graph { return graph.NewGraph(schema) }

// NewSchema builds a schema, validating edge type endpoint declarations.
func NewSchema(vertexTypes []string, edgeTypes []EdgeType) (*Schema, error) {
	return graph.NewSchema(vertexTypes, edgeTypes)
}

// MustSchema is NewSchema that panics on error, for static schemas.
func MustSchema(vertexTypes []string, edgeTypes []EdgeType) *Schema {
	return graph.MustSchema(vertexTypes, edgeTypes)
}

// Result is a buffered query result table.
type Result = exec.Result

// Rows is a streaming query result cursor (database/sql-style:
// Next/Scan/Err/Close, iter.Seq2 via All). Returned by System.QueryRows
// and PreparedQuery.QueryContext; rows arrive incrementally, in the
// exact order the buffered Result would hold them, and Close aborts the
// underlying match.
type Rows = exec.Rows

// Row is one result tuple.
type Row = exec.Row

// Value is a runtime query value: nil, int64, float64, string, bool, or
// a vertex/edge/path reference.
type Value = exec.Value

// ErrRowLimit is returned when a query exceeds MaxRows.
var ErrRowLimit = exec.ErrRowLimit

// ErrDDL is wrapped by the query-only paths (Query*, Prepare, Explain)
// when handed a DDL statement (CREATE VIEW, DROP VIEW, SHOW VIEWS);
// execute those with System.Exec.
var ErrDDL = gql.ErrDDL

// ErrViewExists is wrapped by CREATE VIEW when the name (or an
// identically defined view) is already in the catalog; DROP VIEW first.
var ErrViewExists = workload.ErrViewExists

// ViewDef is a named, declaratively defined view: catalog name,
// canonical CREATE VIEW text, and the compiled View. CREATE VIEW
// produces one; DefineView derives one from a struct-built view.
type ViewDef = views.ViewDef

// ViewInfo is one SHOW VIEWS row: registry name, class, canonical DDL,
// view graph size, and the §V-C rewrite-hit counter. System.ListViews
// returns them programmatically.
type ViewInfo = workload.ViewInfo

// CompileView compiles a defining pattern (the body of a CREATE VIEW
// statement) to the Table I/II view class it denotes, erroring
// descriptively on patterns outside the inventory.
func CompileView(src string) (View, error) { return views.Compile(src) }

// DefineView wraps a struct-built view in a named ViewDef, deriving the
// canonical DDL text where the view is DDL-expressible.
func DefineView(v View) ViewDef { return views.Define(v) }

// PreparedQuery is a parsed, view-rewritten query cached for repeated
// execution; it re-rewrites transparently when the catalog changes
// (views adopted or dropped).
type PreparedQuery = core.PreparedQuery

// AggMode is the aggregation execution strategy the parallel path
// selects at plan time: AggModePartial runs order-insensitive
// accumulators (COUNT, MIN, MAX, integer SUM) as per-chunk partials
// merged in partition order; AggModeBuffered replays yields in
// sequential order for accumulators whose fold order is observable
// (float SUM, AVG); AggModeNone streams pure projections eagerly.
// Either way results are byte-identical to sequential execution.
// Inspect a statement's strategy with PreparedQuery.AggMode.
type AggMode = exec.AggMode

// Aggregation execution strategies (see AggMode).
const (
	AggModeNone     = exec.AggModeNone
	AggModeBuffered = exec.AggModeBuffered
	AggModePartial  = exec.AggModePartial
)

// QueryOption tunes one query execution (or one prepared query's
// defaults).
type QueryOption = core.QueryOption

// WithWorkers sets per-query pattern-match parallelism (overrides
// System.Parallelism; 0/1 = sequential, negative = one per CPU).
func WithWorkers(n int) QueryOption { return core.WithWorkers(n) }

// WithMaxRows bounds a query's intermediate rows (overrides
// System.MaxRows; 0 = unlimited).
func WithMaxRows(n int) QueryOption { return core.WithMaxRows(n) }

// WithoutViews bypasses view-based rewriting for this query (the
// baseline of every experiment; what QueryRaw does).
func WithoutViews() QueryOption { return core.WithoutViews() }

// View types (Tables I and II of the paper).
type (
	// View is a graph view: a derivation producing a view graph.
	View = views.View
	// KHopConnector contracts k-length paths between two vertex types.
	KHopConnector = views.KHopConnector
	// SameVertexTypeConnector contracts paths between same-type endpoints.
	SameVertexTypeConnector = views.SameVertexTypeConnector
	// SameEdgeTypeConnector contracts single-edge-type paths.
	SameEdgeTypeConnector = views.SameEdgeTypeConnector
	// SourceToSinkConnector contracts source-to-sink paths.
	SourceToSinkConnector = views.SourceToSinkConnector
	// VertexInclusionSummarizer keeps only the listed vertex types.
	VertexInclusionSummarizer = views.VertexInclusionSummarizer
	// VertexRemovalSummarizer drops the listed vertex types.
	VertexRemovalSummarizer = views.VertexRemovalSummarizer
	// EdgeInclusionSummarizer keeps only the listed edge types.
	EdgeInclusionSummarizer = views.EdgeInclusionSummarizer
	// EdgeRemovalSummarizer drops the listed edge types.
	EdgeRemovalSummarizer = views.EdgeRemovalSummarizer
	// VertexAggregatorSummarizer groups vertices into supervertices.
	VertexAggregatorSummarizer = views.VertexAggregatorSummarizer
	// EdgeAggregatorSummarizer merges parallel edges into superedges.
	EdgeAggregatorSummarizer = views.EdgeAggregatorSummarizer
	// SubgraphAggregatorSummarizer contracts group subgraphs.
	SubgraphAggregatorSummarizer = views.SubgraphAggregatorSummarizer
)

// Observability types re-exported from the metrics core.
type (
	// MetricsRegistry is a System's live metric set: atomic counters, a
	// lock-free latency histogram, and per-query cumulative stats.
	// System.Metrics returns the active one; SetMetrics(nil) disables
	// recording.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of every metric, including
	// the process-wide freeze/worker gauges and per-view hit counters
	// (System.MetricsSnapshot). Consecutive snapshots subtract into
	// interval rates and windowed latency quantiles.
	MetricsSnapshot = metrics.Snapshot
	// MetricsHist is an immutable latency-histogram snapshot with
	// Sub/Mean/Quantile helpers.
	MetricsHist = metrics.Hist
	// QueryStat is one query text's cumulative execution record
	// (MetricsRegistry.TopQueries).
	QueryStat = metrics.QueryStat
	// MetricsRing is a fixed-capacity time-series buffer of timestamped
	// snapshots — the storage behind the `kaskade top` dashboard.
	MetricsRing = metrics.Ring
	// MetricsSample is one timestamped snapshot in a MetricsRing.
	MetricsSample = metrics.Sample
)

// NewMetricsRegistry returns an empty registry — pass it to
// System.SetMetrics to reset counters or re-enable recording after
// SetMetrics(nil).
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewMetricsRing returns a ring buffer holding the most recent capacity
// samples.
func NewMetricsRing(capacity int) *MetricsRing { return metrics.NewRing(capacity) }

// Optimizer-facing types.
type (
	// Candidate is an enumerated view with its rewrite anchors.
	Candidate = enum.Candidate
	// Selection is the outcome of view selection (§V-B).
	Selection = workload.Selection
	// Plan is the outcome of view-based rewriting for one query (§V-C).
	Plan = workload.Plan
	// GraphProperties are the §V-A statistics behind size estimation.
	GraphProperties = cost.GraphProperties
)

// ViewInventory renders Tables I and II (the supported view classes).
func ViewInventory() string { return core.ViewInventory() }

// DescribeCandidates renders enumerated candidates for display.
func DescribeCandidates(cands []Candidate) string { return core.DescribeCandidates(cands) }

// MaintainedConnector keeps a materialized k-hop connector incrementally
// consistent with its base graph under vertex/edge insertions — the view
// maintenance side of graph views (Zhuge & Garcia-Molina, which the
// paper builds on).
type MaintainedConnector = views.MaintainedConnector

// NewMaintainedConnector materializes the connector over base and
// returns a maintainer; route subsequent mutations through it.
func NewMaintainedConnector(def KHopConnector, base *Graph) (*MaintainedConnector, error) {
	return views.NewMaintainedConnector(def, base)
}

// MaintainedCollection keeps the chained k-hop connector views for
// k=1..K incrementally consistent with one base graph: each mutation's
// path deltas for every k are computed from a single shared frontier
// walk instead of K independent maintainers.
type MaintainedCollection = views.MaintainedCollection

// NewMaintainedCollection materializes def's connector at every hop
// count 1..def.K over base and returns the chained maintainer.
func NewMaintainedCollection(def KHopConnector, base *Graph) (*MaintainedCollection, error) {
	return views.NewMaintainedCollection(def, base)
}

// SaveGraph serializes a graph (schema, vertices, edges, properties) to
// a line-oriented text format that LoadGraph reads back losslessly.
func SaveGraph(w io.Writer, g *Graph) error { return graph.Save(w, g) }

// LoadGraph reads a graph written by SaveGraph.
func LoadGraph(r io.Reader) (*Graph, error) { return graph.Load(r) }
