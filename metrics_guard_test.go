package kaskade_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"kaskade"
)

// preparedWorkload builds the BenchmarkPreparedVsAdHoc system: a small
// lineage graph with adopted views, so per-execution cost is dominated
// by the match plus whatever instrumentation adds — the surface the
// overhead guard measures.
func preparedWorkload(tb testing.TB) (*kaskade.System, *kaskade.PreparedQuery) {
	tb.Helper()
	sys := kaskade.New(buildLineage(7, 30, 60))
	sel, err := sys.SelectViews([]string{blastRadiusQuery}, 1_000_000)
	if err != nil {
		tb.Fatal(err)
	}
	if err := sys.AdoptSelection(sel); err != nil {
		tb.Fatal(err)
	}
	stmt, err := sys.Prepare(blastRadiusQuery)
	if err != nil {
		tb.Fatal(err)
	}
	return sys, stmt
}

// BenchmarkPreparedMetricsOverhead prices the always-on metrics
// instrumentation on the prepared hot path: identical executions with
// the registry enabled vs SetMetrics(nil).
func BenchmarkPreparedMetricsOverhead(b *testing.B) {
	sys, stmt := preparedWorkload(b)
	b.Run("metrics=on", func(b *testing.B) {
		sys.SetMetrics(kaskade.NewMetricsRegistry())
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Exec(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("metrics=off", func(b *testing.B) {
		sys.SetMetrics(nil)
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Exec(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestMetricsOverheadGuard is the CI bench guard: prepared executions
// with metrics enabled must run within 5% of the disabled path. Gated
// behind BENCH_GUARD=1 because wall-clock assertions are meaningless on
// a loaded developer machine.
func TestMetricsOverheadGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") != "1" {
		t.Skip("set BENCH_GUARD=1 to run the metrics overhead guard")
	}
	sys, stmt := preparedWorkload(t)
	run := func(reg *kaskade.MetricsRegistry) time.Duration {
		sys.SetMetrics(reg)
		// Warm up plans and caches.
		if _, err := stmt.Exec(); err != nil {
			t.Fatal(err)
		}
		// Min-of-N: the minimum is the run least polluted by scheduling
		// noise, the standard trick for guard-style comparisons.
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					if _, err := stmt.Exec(); err != nil {
						b.Fatal(err)
					}
				}
			})
			if d := time.Duration(r.NsPerOp()); d < best {
				best = d
			}
		}
		return best
	}
	off := run(nil)
	on := run(kaskade.NewMetricsRegistry())
	limit := off + off/20 + 20*time.Microsecond // 5% + epsilon for timer jitter
	t.Logf("prepared exec: metrics on %v, off %v, limit %v", on, off, limit)
	if on > limit {
		t.Fatalf("metrics overhead too high: on=%v off=%v (limit %v)", on, off, limit)
	}
	fmt.Fprintf(os.Stderr, "metrics overhead: on=%v off=%v (%.1f%%)\n",
		on, off, 100*float64(on-off)/float64(off))
}
