// Ablation benchmarks for the design choices DESIGN.md calls out:
// parallel-edge vs. deduplicated connector semantics, incremental view
// maintenance vs. rematerialization, stitched vs. naive cost pricing,
// and the Eq. 1 vs. Eq. 2/3 estimators.
package kaskade_test

import (
	"fmt"
	"testing"

	"kaskade/internal/cost"
	"kaskade/internal/datagen"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/views"
)

// BenchmarkConnectorSemantics compares materialization under path
// semantics (one edge per contracted path, the §V-A default) against
// pair-dedup semantics (reachability only): dedup is smaller and
// cheaper, but loses path counts and per-path aggregates.
func BenchmarkConnectorSemantics(b *testing.B) {
	g := filteredProvBench(b)
	for _, dedup := range []bool{false, true} {
		name := "parallel_paths"
		if dedup {
			name = "dedup_pairs"
		}
		b.Run(name, func(b *testing.B) {
			v := views.KHopConnector{SrcType: "Job", DstType: "Job", K: 2, DedupPairs: dedup}
			var edges int
			for i := 0; i < b.N; i++ {
				vg, err := v.Materialize(g)
				if err != nil {
					b.Fatal(err)
				}
				edges = vg.NumEdges()
			}
			b.ReportMetric(float64(edges), "view_edges")
		})
	}
}

// BenchmarkViewMaintenance compares keeping a connector fresh under edge
// insertions via incremental maintenance vs. rematerializing after each
// batch — the reason MaintainedConnector exists.
func BenchmarkViewMaintenance(b *testing.B) {
	const batch = 50
	mkBase := func() (*graph.Graph, []graph.VertexID, []graph.VertexID) {
		cfg := datagen.DefaultProvConfig()
		cfg.Jobs, cfg.Files, cfg.TasksPerJob, cfg.Machines = 300, 700, 1, 5
		raw, err := datagen.Prov(cfg)
		if err != nil {
			b.Fatal(err)
		}
		g, err := views.VertexInclusionSummarizer{Types: []string{"Job", "File"}}.Materialize(raw)
		if err != nil {
			b.Fatal(err)
		}
		return g, g.VerticesOfType("Job"), g.VerticesOfType("File")
	}
	def := views.KHopConnector{SrcType: "Job", DstType: "Job", K: 2}

	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			base, jobs, files := mkBase()
			m, err := views.NewMaintainedConnector(def, base)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for k := 0; k < batch; k++ {
				j := jobs[k%len(jobs)]
				f := files[(k*7)%len(files)]
				if _, err := m.AddEdge(j, f, "WRITES_TO", graph.Properties{"ts": int64(k)}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("rematerialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			base, jobs, files := mkBase()
			b.StartTimer()
			for k := 0; k < batch; k++ {
				j := jobs[k%len(jobs)]
				f := files[(k*7)%len(files)]
				if _, err := base.AddEdge(j, f, "WRITES_TO", graph.Properties{"ts": int64(k)}); err != nil {
					b.Fatal(err)
				}
				if _, err := def.Materialize(base); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkSizeEstimators compares the three §V-A estimators on the
// same graph; all are effectively free next to materialization, which is
// the point of estimating at all.
func BenchmarkSizeEstimators(b *testing.B) {
	g := filteredProvBench(b)
	props := cost.Collect(g)
	b.Run("erdos_renyi_eq1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cost.ErdosRenyiPaths(int64(props.NumVertices), int64(props.NumEdges), 2)
		}
	})
	b.Run("heterogeneous_eq3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cost.EstimateKHopPaths(props, g.Schema(), 2, 95); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("source_rooted_walk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cost.EstimateKHopPathsFromType(props, g.Schema(), "Job", 2, 95); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact_count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			views.CountKHopPaths(g, "Job", "Job", 2)
		}
	})
}

// BenchmarkEvalCostByK shows how the cost model prices the blast radius
// rewritten over increasing k (larger k = fewer hops to traverse but
// denser contracted edges); the knapsack sees these tradeoffs.
func BenchmarkEvalCostByK(b *testing.B) {
	g := filteredProvBench(b)
	props := cost.Collect(g)
	for _, k := range []int{2, 4} {
		lo, hi := (2+k-1)/k, 10/k
		q := gql.MustParse(fmt.Sprintf(
			`MATCH (a:Job)-[r:CONN_%dHOP_Job_Job*%d..%d]->(b:Job) RETURN a, b`, k, lo, hi))
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cost.EvalCost(q, props, nil, 95); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
