// Package analysis is Kaskade's in-tree analyzer framework: a
// deliberately small, stdlib-only mirror of the
// golang.org/x/tools/go/analysis API surface that kaskade-lint's
// analyzers program against. The container builds offline against a
// vendored-free module, so the framework lives here instead of pulling
// x/tools; the shapes (Analyzer, Pass, Diagnostic) match the upstream
// ones closely enough that an analyzer written for this package ports
// to the real framework by changing one import.
//
// Beyond the x/tools shapes, the framework owns the repo's suppression
// protocol: a diagnostic whose line (or the line above it) carries a
//
//	//kaskade:allow <analyzer> <reason>
//
// comment is dropped — but only when a non-empty reason is present; a
// reasonless allow is itself reported, so suppressions stay auditable
// (cmd/kaskade-lint -report inventories them).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker: a name (used in
// diagnostics, flags, and //kaskade:allow directives), human
// documentation, and the Run function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer; it must be a valid Go identifier
	// (it becomes a command-line flag and a suppression key).
	Name string
	// Doc is the analyzer's documentation: first line a one-sentence
	// summary, the rest detail.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through the Pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package: the syntax, the type
// information, and the report sink. Analyzers must not mutate any of
// it.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report reports one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Diagnostic is one finding: a position and a message. Category is the
// analyzer name, filled by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Category string
}

// Position resolves the diagnostic's position against fset.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// AllowDirective is one parsed //kaskade:allow comment.
type AllowDirective struct {
	Pos      token.Position // position of the comment
	Analyzer string         // suppressed analyzer name
	Reason   string         // justification ("" = invalid directive)
}

// allowPrefix introduces a suppression comment.
const allowPrefix = "//kaskade:allow"

// ParseAllows extracts every //kaskade:allow directive from the files.
// Directives are returned in file/line order.
func ParseAllows(fset *token.FileSet, files []*ast.File) []AllowDirective {
	var out []AllowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				out = append(out, AllowDirective{
					Pos:      fset.Position(c.Pos()),
					Analyzer: name,
					Reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// Run applies every analyzer to the package and returns the surviving
// diagnostics in file/line order: suppressed findings (a matching
// //kaskade:allow with a reason on the finding's line or the line
// above) are dropped, and a matching allow with no reason turns into
// its own diagnostic so it cannot silently disable a check.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	type allowKey struct {
		file     string
		line     int
		analyzer string
	}
	allows := make(map[allowKey]AllowDirective)
	for _, a := range ParseAllows(fset, files) {
		allows[allowKey{a.Pos.Filename, a.Pos.Line, a.Analyzer}] = a
	}

	var out []Diagnostic
	for _, an := range analyzers {
		pass := &Pass{
			Analyzer:  an,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.report = func(d Diagnostic) {
			d.Category = an.Name
			posn := fset.Position(d.Pos)
			// An allow covers its own line and the next one, so both
			// trailing comments and a directive line above work.
			for _, line := range []int{posn.Line, posn.Line - 1} {
				if a, ok := allows[allowKey{posn.Filename, line, an.Name}]; ok {
					if a.Reason == "" {
						out = append(out, Diagnostic{
							Pos:      d.Pos,
							Category: an.Name,
							Message: fmt.Sprintf("suppression without reason: write %s %s <why this is safe>",
								allowPrefix, an.Name),
						})
					}
					return
				}
			}
			out = append(out, d)
		}
		if err := an.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", an.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Category < out[j].Category
	})
	return out, nil
}
