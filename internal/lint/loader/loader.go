// Package loader parses and type-checks one package's worth of Go
// files for the lint framework — the shared front half of both drivers
// (the analysistest corpus runner and the go vet unitchecker mode),
// which differ only in where import information comes from (source
// re-compilation vs. the export data go vet hands over).
package loader

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ParseDir parses every non-test .go file directly in dir, in file-name
// order (deterministic across platforms).
func ParseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	return ParseFiles(fset, dir, names)
}

// ParseFiles parses the named files (resolved against dir when
// relative), with comments — the suppression protocol and the corpus
// "want" annotations both live in comments.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Check type-checks files as package pkgPath using imp for imports and
// returns the package plus the full types.Info the analyzers need.
// Type errors do not abort checking (types.Config.Error collects and
// checking continues), but the first one is returned so drivers can
// decide whether a partially typed package is usable.
func Check(fset *token.FileSet, pkgPath string, files []*ast.File, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	var firstErr error
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, _ := conf.Check(pkgPath, fset, files, info)
	return pkg, info, firstErr
}
