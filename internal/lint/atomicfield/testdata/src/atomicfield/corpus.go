// Package atomicfield exercises the mixed atomic/plain access rule.
package atomicfield

import "sync/atomic"

type counters struct {
	hits  int64
	total int64
}

func (c *counters) Incr() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) Read() int64 {
	return c.hits // want `non-atomic access to hits`
}

func (c *counters) ReadAtomic() int64 {
	return atomic.LoadInt64(&c.hits)
}

// total is never touched atomically: plain access is fine.
func (c *counters) Total() int64 {
	return c.total
}

// Composite-literal initialization happens before the value is shared.
func newCounters() *counters {
	return &counters{hits: 0, total: 0}
}

var _ = newCounters

var ready int64

func SetReady() { atomic.StoreInt64(&ready, 1) }

func IsReady() bool {
	return ready == 1 // want `non-atomic access to ready`
}
