// Package atomicfield exercises the mixed atomic/plain access rule.
package atomicfield

import (
	"sync/atomic"
	"unsafe"
)

type counters struct {
	hits  int64
	total int64
}

func (c *counters) Incr() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) Read() int64 {
	return c.hits // want `non-atomic access to hits`
}

func (c *counters) ReadAtomic() int64 {
	return atomic.LoadInt64(&c.hits)
}

// total is never touched atomically: plain access is fine.
func (c *counters) Total() int64 {
	return c.total
}

// Composite-literal initialization happens before the value is shared.
func newCounters() *counters {
	return &counters{hits: 0, total: 0}
}

var _ = newCounters

var ready int64

func SetReady() { atomic.StoreInt64(&ready, 1) }

func IsReady() bool {
	return ready == 1 // want `non-atomic access to ready`
}

// snapshotSwap models the delta-overlay compaction swap: a compactor
// publishes a rebuilt snapshot through a function-style atomic pointer
// store and drains the tail counter atomically, so every other path
// must go through sync/atomic too — a plain read of either field races
// with an in-flight compaction.
type snapshotSwap struct {
	snap      unsafe.Pointer // *snapshot, swapped on compaction
	tailEdges int64
}

func (s *snapshotSwap) compact(rebuilt unsafe.Pointer) {
	atomic.StorePointer(&s.snap, rebuilt)
	atomic.StoreInt64(&s.tailEdges, 0)
}

func (s *snapshotSwap) appendEdge() {
	atomic.AddInt64(&s.tailEdges, 1)
}

// The racy reader pair: a query thread grabbing the snapshot and tail
// length with plain loads while compact runs.
func (s *snapshotSwap) current() unsafe.Pointer {
	return s.snap // want `non-atomic access to snap`
}

func (s *snapshotSwap) tailLen() int64 {
	return s.tailEdges // want `non-atomic access to tailEdges`
}

// The fixed reader pair.
func (s *snapshotSwap) currentAtomic() unsafe.Pointer {
	return atomic.LoadPointer(&s.snap)
}

func (s *snapshotSwap) tailLenAtomic() int64 {
	return atomic.LoadInt64(&s.tailEdges)
}
