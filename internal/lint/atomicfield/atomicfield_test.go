package atomicfield_test

import (
	"testing"

	"kaskade/internal/lint/analysistest"
	"kaskade/internal/lint/atomicfield"
)

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer, "atomicfield")
}
