// Package atomicfield flags mixed atomic and plain access: once any
// code in the package touches a variable or struct field through
// sync/atomic (atomic.AddInt64(&x.n, 1), atomic.LoadUint32(&flag), …),
// every other access to it must also be atomic — a plain read races
// with the atomic writer even when it "only" reads, and the race
// detector finds it only if both paths fire in one test run.
//
// This protects internal/metrics' lock-free counters. The typed
// wrappers (atomic.Int64 et al.) are immune by construction and are
// the preferred fix; this analyzer covers the function-style API.
//
// Accesses inside composite literals (initial construction, before the
// value is shared) are not counted as plain uses.
package atomicfield

import (
	"go/ast"
	"go/types"

	"kaskade/internal/lint/analysis"
	"kaskade/internal/lint/lintutil"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "flags non-atomic access to variables and fields that are accessed with sync/atomic elsewhere in the package",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: every object reached through &obj as the pointer argument
	// of a sync/atomic call, and the exact identifiers making up those
	// atomic accesses (so pass 2 can skip them).
	atomicObjs := make(map[types.Object]bool)
	atomicIdents := make(map[*ast.Ident]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			obj, id := resolveTarget(pass.TypesInfo, addr.X)
			if obj != nil {
				atomicObjs[obj] = true
				atomicIdents[id] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: any other use of those objects is a plain (racy) access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				// Field names in composite literals are initialization,
				// not shared-state access.
				for _, elt := range x.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							atomicIdents[id] = true
						}
					}
				}
			case *ast.Ident:
				if atomicIdents[x] {
					return true
				}
				obj := pass.TypesInfo.Uses[x]
				if obj != nil && atomicObjs[obj] {
					pass.Reportf(x.Pos(), "non-atomic access to %s, which is accessed with sync/atomic elsewhere in this package", x.Name)
				}
			}
			return true
		})
	}
	return nil
}

// resolveTarget maps the operand of &... to the variable or field
// object being addressed, plus the identifier naming it.
func resolveTarget(info *types.Info, e ast.Expr) (types.Object, *ast.Ident) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(x), x
	case *ast.SelectorExpr:
		return info.ObjectOf(x.Sel), x.Sel
	case *ast.IndexExpr:
		// &arr[i] — track the array/slice variable itself.
		return resolveTarget(info, x.X)
	}
	return nil, nil
}
