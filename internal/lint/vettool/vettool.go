// Package vettool runs kaskade-lint's analyzers under the `go vet
// -vettool=` protocol, and doubles as the standalone driver.
//
// The protocol (cmd/go/internal/work, cmd/go/internal/vet) has three
// entry points:
//
//   - `tool -V=full` — print a version line cmd/go hashes into the
//     build cache key. For a "devel" version the last field must be
//     "buildID=..."; we use the SHA-256 of our own executable so a
//     rebuilt linter invalidates cached vet results.
//   - `tool -flags` — print a JSON description of the tool's flags so
//     `go vet -mapiter=false ./...` can validate and forward them.
//   - `tool [flags] <objdir>/vet.cfg` — analyze one package described
//     by the JSON config: parse the listed files, type-check against
//     the export data cmd/go already built (ImportMap + PackageFile),
//     run the analyzers, print findings to stderr, and exit 2 if any.
//
// Dependency packages are visited with VetxOnly=true: no analysis is
// wanted, only the facts file (VetxOutput). Our analyzers are purely
// intra-package, so the facts file is an empty placeholder — but it
// must exist, because cmd/go caches per-package vet results through it.
//
// Invoked any other way, the driver re-executes itself through
// `go vet -vettool=<self>` so the official build system handles
// package loading, caching, and parallelism, or — with -report —
// inventories every //kaskade:allow suppression in the tree.
package vettool

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"kaskade/internal/lint/analysis"
	"kaskade/internal/lint/loader"
)

// vetConfig mirrors the JSON cmd/go writes to <objdir>/vet.cfg
// (cmd/go/internal/work.vetConfig). Fields we never read are omitted;
// unknown JSON keys are ignored by encoding/json.
type vetConfig struct {
	ID                        string            // package ID, e.g. "kaskade/internal/exec"
	Compiler                  string            // "gc"
	Dir                       string            // package directory
	ImportPath                string            // import path, possibly with " [foo.test]" suffix
	GoFiles                   []string          // absolute paths of .go files to analyze
	ImportMap                 map[string]string // source import path -> canonical path
	PackageFile               map[string]string // canonical path -> export data file
	Standard                  map[string]bool   // canonical path -> is stdlib
	VetxOnly                  bool              // only facts wanted, no diagnostics
	VetxOutput                string            // where to write this package's facts
	GoVersion                 string            // language version, e.g. "go1.23"
	SucceedOnTypecheckFailure bool              // exit 0 silently on type errors (go vet -e absent)
}

// Main is the kaskade-lint entry point. It returns the process exit
// code: 0 clean, 1 operational error, 2 diagnostics reported.
func Main(analyzers []*analysis.Analyzer) int {
	fs := flag.NewFlagSet("kaskade-lint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: kaskade-lint [-report] [-<analyzer>=false ...] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs the Kaskade invariant analyzers over the named packages\n")
		fmt.Fprintf(fs.Output(), "(default ./...) by re-executing itself as `go vet -vettool`.\n\nAnalyzers:\n")
		for _, a := range analyzers {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	versionFlag := fs.String("V", "", "print version and exit (go vet handshake)")
	flagsFlag := fs.Bool("flags", false, "print flag descriptions in JSON and exit (go vet handshake)")
	reportFlag := fs.Bool("report", false, "inventory all //kaskade:allow suppressions instead of analyzing")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = fs.Bool(a.Name, true, doc)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 1
	}

	switch {
	case *versionFlag != "":
		printVersion()
		return 0
	case *flagsFlag:
		return printFlags(analyzers)
	case *reportFlag:
		return runReport(fs.Args())
	}

	active := make([]*analysis.Analyzer, 0, len(analyzers))
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	if args := fs.Args(); len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnit(args[0], active)
	}
	return runStandalone(fs.Args(), analyzers, enabled)
}

// printVersion emits the -V=full handshake line. cmd/go requires
// fields[1] == "version", and for a "devel" version the last field must
// start with "buildID="; hashing our own binary makes the vet cache key
// content-addressed, so a rebuilt linter re-vets everything.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("kaskade-lint version devel buildID=%s\n", id)
}

// printFlags emits the -flags handshake: the tool flags go vet should
// accept and forward (the per-analyzer toggles).
func printFlags(analyzers []*analysis.Analyzer) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	out := make([]jsonFlag, 0, len(analyzers))
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: doc})
	}
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kaskade-lint: %v\n", err)
		return 1
	}
	os.Stdout.Write(data)
	fmt.Println()
	return 0
}

// runUnit analyzes the single package described by a vet.cfg file.
func runUnit(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kaskade-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "kaskade-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Facts file first: cmd/go stores it in the build cache even when we
	// go on to report diagnostics, and its absence disables caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("kaskade-lint: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "kaskade-lint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Test files and generated files are out of scope for the invariant
	// analyzers: tests exercise internals on purpose, and generated code
	// is fixed at its generator.
	fset := token.NewFileSet()
	var names []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			names = append(names, f)
		}
	}
	if len(names) == 0 {
		return 0
	}
	parsed, err := loader.ParseFiles(fset, cfg.Dir, names)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "kaskade-lint: %v\n", err)
		return 1
	}
	files := parsed[:0]
	for _, f := range parsed {
		if !ast.IsGenerated(f) {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, info, typeErr := loader.Check(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
	if typeErr != nil || pkg == nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "kaskade-lint: typecheck %s: %v\n", cfg.ImportPath, typeErr)
		return 1
	}

	diags, err := analysis.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kaskade-lint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Position(fset), d.Message, d.Category)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// runStandalone re-executes through `go vet -vettool=<self>` so cmd/go
// does package loading, export-data builds, caching, and parallelism.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, enabled map[string]*bool) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "kaskade-lint: %v\n", err)
		return 1
	}
	args := []string{"vet", "-vettool=" + exe}
	for _, a := range analyzers {
		if !*enabled[a.Name] {
			args = append(args, "-"+a.Name+"=false")
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		var exitErr *exec.ExitError
		if ok := asExitError(err, &exitErr); ok {
			return exitErr.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "kaskade-lint: %v\n", err)
		return 1
	}
	return 0
}

func asExitError(err error, target **exec.ExitError) bool {
	e, ok := err.(*exec.ExitError)
	if ok {
		*target = e
	}
	return ok
}

// runReport walks the tree (default ".") and prints every
// //kaskade:allow directive with its justification — the suppression
// ledger CI uploads per PR. Directives with no reason are errors.
func runReport(roots []string) int {
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var total, missing int
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") {
				return nil
			}
			fset := token.NewFileSet()
			files, err := loader.ParseFiles(fset, "", []string{path})
			if err != nil {
				return err
			}
			for _, a := range analysis.ParseAllows(fset, files) {
				total++
				if a.Reason == "" {
					missing++
					fmt.Printf("%s:%d: allow %s: MISSING REASON\n", a.Pos.Filename, a.Pos.Line, a.Analyzer)
					continue
				}
				fmt.Printf("%s:%d: allow %s: %s\n", a.Pos.Filename, a.Pos.Line, a.Analyzer, a.Reason)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kaskade-lint: %v\n", err)
			return 1
		}
	}
	fmt.Printf("%d suppression(s), %d missing a reason\n", total, missing)
	if missing > 0 {
		return 1
	}
	return 0
}
