package vettool_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolOnFixture builds cmd/kaskade-lint and runs it through the
// real `go vet -vettool=` pipeline over the known-dirty fixture module
// in ../testdata/fixture: every analyzer must fire there, the justified
// suppression must hold, and the clean package must pass. This is the
// end-to-end pin on the unitchecker protocol (version/flags handshake,
// vet.cfg parsing, export-data type-checking, exit codes) that the
// in-process corpus tests cannot cover.
func TestVettoolOnFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the linter and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "kaskade-lint")
	build := exec.Command("go", "build", "-o", bin, "kaskade/cmd/kaskade-lint")
	build.Dir = "../../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building kaskade-lint: %v\n%s", err, out)
	}
	fixture, err := filepath.Abs(filepath.Join("..", "testdata", "fixture"))
	if err != nil {
		t.Fatal(err)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = fixture
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet over the dirty fixture passed; output:\n%s", out)
	}
	text := string(out)
	for _, want := range []string{
		"[mapiter]", "[ctxflow]", "[atomicfield]", "[lockhold]", "[errtaxonomy]",
		"iteration order is nondeterministic",
		"context.TODO in non-test code",
		"exported Publish blocks",
		"while holding h.mu",
		"non-atomic access to hits",
		"http.Error bypasses the error taxonomy",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("go vet output missing %q; output:\n%s", want, text)
		}
	}
	if strings.Contains(text, "suppressed.go") {
		t.Errorf("justified suppression did not hold through go vet; output:\n%s", text)
	}

	cleanVet := exec.Command("go", "vet", "-vettool="+bin, "./clean")
	cleanVet.Dir = fixture
	if out, err := cleanVet.CombinedOutput(); err != nil {
		t.Errorf("go vet over the clean package failed: %v\n%s", err, out)
	}
}
