// Package lockhold_gated exercises the blocking-while-locked rule.
package lockhold_gated

import (
	"sync"
	"time"
)

type registry struct {
	mu     sync.Mutex
	events chan string
}

// A slow receiver stalls every caller that wants the lock.
func (r *registry) Publish(ev string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events <- ev // want `potentially blocking channel send while holding r.mu`
}

// Unlock before the send: fine.
func (r *registry) PublishFast(ev string) {
	r.mu.Lock()
	ch := r.events
	r.mu.Unlock()
	ch <- ev
}

// Non-blocking probe under the lock: the sanctioned shape.
func (r *registry) TryPublish(ev string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case r.events <- ev:
		return true
	default:
		return false
	}
}

func (r *registry) SlowScan() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want `potentially blocking time.Sleep call while holding r.mu`
	r.mu.Unlock()
}

type gate struct {
	mu sync.RWMutex
	wg sync.WaitGroup
}

// Read locks count too: a writer behind this RLock waits for wg.
func (g *gate) Snapshot() {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.wg.Wait() // want `Wait call while holding g.mu`
}

// Work captured in a closure runs after the unlock.
func (r *registry) Enqueue(ev string) func() {
	r.mu.Lock()
	defer r.mu.Unlock()
	return func() { r.events <- ev }
}
