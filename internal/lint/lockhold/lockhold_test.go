package lockhold_test

import (
	"testing"

	"kaskade/internal/lint/analysistest"
	"kaskade/internal/lint/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, "testdata", lockhold.Analyzer, "lockhold_gated")
}
