// Package lockhold flags operations that can block while a
// sync.Mutex or sync.RWMutex is held: channel sends and receives,
// selects without a default, Wait calls, and time.Sleep between a
// mu.Lock() and the matching unlock. A blocked goroutine that holds a
// lock turns local backpressure into a global stall — the
// epoch/session-cache deadlock shape the server and workload packages
// are structured to avoid.
//
// The critical section is computed syntactically within one statement
// list: from a `mu.Lock()` / `mu.RLock()` statement to the matching
// `mu.Unlock()` / `mu.RUnlock()`, or to the end of the list when the
// unlock is deferred. Function literals inside the section are not
// walked (they typically run later, off the lock); non-blocking
// select-with-default is allowed (that is the sanctioned "nudge"
// idiom in internal/exec).
package lockhold

import (
	"go/ast"
	"go/types"

	"kaskade/internal/lint/analysis"
	"kaskade/internal/lint/lintutil"
)

// Analyzer is the lockhold analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "flags potentially blocking operations while holding a sync.Mutex/RWMutex",
	Run:  run,
}

// Gates are the package-path fragments where lockhold applies —
// the deadlock-prone session/epoch machinery, plus the corpus.
var Gates = []string{"internal/workload", "internal/server", "lockhold_gated"}

func run(pass *analysis.Pass) error {
	if !lintutil.Gated(pass.Pkg.Path(), Gates) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if block, ok := n.(*ast.BlockStmt); ok {
				checkBlock(pass, block.List)
			}
			return true
		})
	}
	return nil
}

// checkBlock scans one statement list for lock/unlock pairs and runs
// the blocking-op walker over each critical section.
func checkBlock(pass *analysis.Pass, stmts []ast.Stmt) {
	for i, s := range stmts {
		recv, locked := lockCall(pass.TypesInfo, s, "Lock", "RLock")
		if !locked {
			continue
		}
		// Find the end of the critical section: the matching unlock
		// statement, or the end of the list when the unlock is deferred
		// (or missing).
		end := len(stmts)
		start := i + 1
		if start < len(stmts) {
			if d, ok := stmts[start].(*ast.DeferStmt); ok {
				if r, ok2 := unlockExpr(pass.TypesInfo, d.Call); ok2 && r == recv {
					start++ // the defer itself is not part of the section
				}
			}
		}
		for j := start; j < len(stmts); j++ {
			if r, ok := unlockStmt(pass.TypesInfo, stmts[j]); ok && r == recv {
				end = j
				break
			}
		}
		for j := start; j < end; j++ {
			lintutil.FindBlocking(stmts[j], pass.TypesInfo, func(op lintutil.BlockingOp) {
				pass.Reportf(op.Pos, "potentially blocking %s while holding %s", op.What, recv)
			})
		}
	}
}

// lockCall reports whether stmt is `recv.Lock()` or `recv.RLock()` on a
// sync mutex, returning the receiver's source text as the section key.
func lockCall(info *types.Info, stmt ast.Stmt, names ...string) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	return mutexMethod(info, call, names...)
}

func unlockStmt(info *types.Info, stmt ast.Stmt) (string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	return unlockExpr(info, call)
}

func unlockExpr(info *types.Info, call *ast.CallExpr) (string, bool) {
	return mutexMethod(info, call, "Unlock", "RUnlock")
}

// mutexMethod matches recv.<name>() where recv is sync.Mutex or
// sync.RWMutex (possibly behind a pointer) and name is one of names.
func mutexMethod(info *types.Info, call *ast.CallExpr, names ...string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	nameOK := false
	for _, n := range names {
		if sel.Sel.Name == n {
			nameOK = true
		}
	}
	if !nameOK {
		return "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if !lintutil.IsNamedType(t, "sync", "Mutex") && !lintutil.IsNamedType(t, "sync", "RWMutex") {
		return "", false
	}
	return types.ExprString(sel.X), true
}
