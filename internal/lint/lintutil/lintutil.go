// Package lintutil holds the type- and AST-resolution helpers the
// kaskade-lint analyzers share: resolving calls to specific package
// functions, recognizing context.Context and sync mutex types, and the
// blocking-operation walker that both ctxflow (blocking exported
// functions) and lockhold (blocking while holding a mutex) are built
// on.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Gated reports whether a package path falls under any of the gate
// fragments (substring match — "internal/server" matches the module
// path-qualified form, and an analyzer's corpus package name matches
// its testdata import path).
func Gated(pkgPath string, gates []string) bool {
	for _, g := range gates {
		if strings.Contains(pkgPath, g) {
			return true
		}
	}
	return false
}

// PkgFunc resolves a call to a package-level function and reports
// whether it is pkgPath.name (alias-proof: resolution goes through the
// type checker, not the source spelling).
func PkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// CalleeFunc resolves the called function object, or nil when the
// callee is not a simple function/method reference.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsNamedType reports whether t (possibly behind pointers) is the named
// type pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool { return IsNamedType(t, "context", "Context") }

// HasContextParam reports whether the function type has a
// context.Context parameter.
func HasContextParam(ft *ast.FuncType, info *types.Info) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := info.TypeOf(field.Type); t != nil && IsContextType(t) {
			return true
		}
	}
	return false
}

// BlockingOp is one operation that can block the goroutine.
type BlockingOp struct {
	Pos  token.Pos
	What string // human description ("channel send", "Wait call", ...)
}

// FindBlocking walks n and reports operations that can block: channel
// sends and receives (except inside a select that has a default
// clause), selects without a default, calls to methods named Wait, and
// time.Sleep. Nested function literals are skipped — their bodies run
// on their own call, not here.
func FindBlocking(n ast.Node, info *types.Info, report func(BlockingOp)) {
	var walk func(n ast.Node, nonblocking map[ast.Stmt]bool)
	walk = func(n ast.Node, nonblocking map[ast.Stmt]bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch x := c.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				hasDefault := false
				for _, cl := range x.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					report(BlockingOp{Pos: x.Pos(), What: "select without default"})
				}
				for _, cl := range x.Body.List {
					cc, ok := cl.(*ast.CommClause)
					if !ok {
						continue
					}
					if cc.Comm != nil {
						if hasDefault {
							// The comm op itself cannot block; its body
							// still can.
							nb := map[ast.Stmt]bool{cc.Comm: true}
							walk(cc.Comm, nb)
						} else {
							walk(cc.Comm, nil)
						}
					}
					for _, s := range cc.Body {
						walk(s, nil)
					}
				}
				return false
			case *ast.SendStmt:
				if nonblocking[ast.Stmt(x)] {
					return true
				}
				report(BlockingOp{Pos: x.Pos(), What: "channel send"})
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					report(BlockingOp{Pos: x.Pos(), What: "channel receive"})
				}
			case *ast.CallExpr:
				if fn := CalleeFunc(info, call(x)); fn != nil {
					if fn.Name() == "Wait" && fn.Pkg() != nil {
						report(BlockingOp{Pos: x.Pos(), What: fn.Pkg().Name() + "." + receiverName(fn) + "Wait call"})
					}
					if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
						report(BlockingOp{Pos: x.Pos(), What: "time.Sleep call"})
					}
				}
			}
			return true
		})
	}
	walk(n, nil)
}

func call(c *ast.CallExpr) *ast.CallExpr { return c }

// receiverName renders "WaitGroup." for a method, "" for a function.
func receiverName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() + "."
	}
	return ""
}
