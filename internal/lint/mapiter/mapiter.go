// Package mapiter flags result accumulation inside `for range` over a
// map: Go randomizes map iteration order, so appending to a slice,
// sending on a channel, or pushing through an iterator yield inside
// such a loop leaks nondeterminism into whatever consumes the result.
//
// This is the exact bug class behind Kaskade's "merge determinism"
// guarantee — parallel merges must be byte-identical to sequential —
// which the CI determinism matrix only catches probabilistically.
//
// The analyzer understands the repo's sanctioned escape: accumulate
// from the map, then sort. An append whose target is later passed to a
// sort.* or slices.Sort* call in the same function is not reported;
// neither is an append into a slice declared inside the loop body
// (per-key scratch that cannot observe cross-key order).
package mapiter

import (
	"go/ast"
	"go/types"
	"strings"

	"kaskade/internal/lint/analysis"
	"kaskade/internal/lint/lintutil"
)

// Analyzer is the mapiter analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flags order-sensitive accumulation inside range-over-map without a later sort",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, body := range functionBodies(file) {
			checkFunc(pass, body)
		}
	}
	return nil
}

// functionBodies returns the body of every function and function
// literal in the file. Each body is checked independently so a range
// statement is attributed to its innermost enclosing function.
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				out = append(out, x.Body)
			}
		case *ast.FuncLit:
			out = append(out, x.Body)
		}
		return true
	})
	return out
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	inspectShallow(body, func(n ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		checkRange(pass, body, rs)
	})
}

// checkRange inspects one range-over-map body for order-sensitive
// accumulation. Nested range-over-map statements are not descended
// into — each gets its own checkRange, so findings are not doubled.
func checkRange(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok {
			if t := pass.TypesInfo.TypeOf(inner.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return false
				}
			}
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "channel send inside range over map: iteration order is nondeterministic")
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "yield" {
				pass.Reportf(x.Pos(), "yield inside range over map: iteration order is nondeterministic")
			}
		case *ast.AssignStmt:
			checkAppend(pass, fnBody, rs, x)
		}
		return true
	})
}

// checkAppend flags `x = append(x, ...)` inside the loop when x is
// declared outside the loop and never sorted afterwards.
func checkAppend(pass *analysis.Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass.TypesInfo, call) || i >= len(as.Lhs) {
			continue
		}
		obj := targetObject(pass.TypesInfo, as.Lhs[i])
		if obj == nil {
			continue
		}
		// Per-iteration scratch: a slice declared inside the loop body
		// only ever sees one key's data.
		if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
			continue
		}
		if sortedLater(pass.TypesInfo, fnBody, obj) {
			continue
		}
		pass.Reportf(as.Pos(),
			"appending to %s inside range over map: iteration order is nondeterministic (sort the result or iterate sorted keys)",
			obj.Name())
	}
}

// targetObject resolves the assignment target to the accumulated
// variable or struct field.
func targetObject(info *types.Info, lhs ast.Expr) types.Object {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		return info.ObjectOf(x.Sel)
	}
	return nil
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedLater reports whether the enclosing function contains a
// sort.* / slices.Sort* call referencing obj — the sanctioned
// accumulate-then-sort idiom.
func sortedLater(info *types.Info, fnBody *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(info, call) {
			return true
		}
		ast.Inspect(call, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == obj {
				found = true
			}
			return !found
		})
		return true
	})
	return found
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := lintutil.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.Contains(fn.Name(), "Sort")
	}
	return false
}

// inspectShallow walks n calling f on every node, without descending
// into nested function literals (their bodies belong to another
// function).
func inspectShallow(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || c == n {
			return true
		}
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		f(c)
		return true
	})
}
