// Package mapiter is the determinism corpus for the mapiter analyzer.
//
// Why Kaskade pins determinism mechanically instead of trusting review:
// PR 1's query lexer treated `--` as the start of a SQL-style line
// comment, so the edge arrow in `(a)-->(b)` was eaten as a comment and
// the rest of the pattern silently vanished. The bug shipped because
// the only guard was end-to-end tests that happened not to use that
// spelling — the same failure mode as map-iteration order leaking into
// merged results, which the CI determinism matrix only catches when the
// runtime's map seed happens to expose it. Both bug classes need a
// check that fires on the *shape* of the code, every build; this corpus
// pins that check's exact behavior.
package mapiter

import "sort"

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `iteration order is nondeterministic`
	}
	return keys
}

// The sanctioned escape: accumulate, then sort.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sendOnChannel(m map[string]int, out chan string) {
	for k := range m {
		out <- k // want `channel send inside range over map`
	}
}

func yieldPush(m map[string]int, yield func(string) bool) {
	for k := range m {
		yield(k) // want `yield inside range over map`
	}
}

// Per-key scratch declared inside the loop cannot observe cross-key
// order.
func perKeyScratch(m map[string][]int) map[string]int {
	out := make(map[string]int)
	for k, vs := range m {
		var total []int
		for _, v := range vs {
			total = append(total, v)
		}
		out[k] = len(total)
	}
	return out
}

type sink struct{ rows []string }

// Field targets are tracked like variables.
func (s *sink) fill(m map[string]bool) {
	for k := range m {
		s.rows = append(s.rows, k) // want `iteration order is nondeterministic`
	}
}

// A justified suppression silences the finding.
func suppressedWithReason(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //kaskade:allow mapiter caller re-sorts before emitting
	}
	return keys
}

// A reasonless suppression is itself a finding.
func suppressedWithoutReason(m map[string]int) []string {
	var keys []string
	for k := range m {
		//kaskade:allow mapiter
		keys = append(keys, k) // want `suppression without reason`
	}
	return keys
}
