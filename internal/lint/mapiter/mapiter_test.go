package mapiter_test

import (
	"testing"

	"kaskade/internal/lint/analysistest"
	"kaskade/internal/lint/mapiter"
)

func TestMapiter(t *testing.T) {
	analysistest.Run(t, "testdata", mapiter.Analyzer, "mapiter")
}
