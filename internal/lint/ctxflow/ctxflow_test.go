package ctxflow_test

import (
	"testing"

	"kaskade/internal/lint/analysistest"
	"kaskade/internal/lint/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "ctxflow", "ctxflow_gated", "ctxflow_main")
}
