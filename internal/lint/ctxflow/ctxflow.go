// Package ctxflow enforces Kaskade's context-propagation discipline:
//
//   - context.TODO() never ships in non-test code.
//   - context.Background() is not called where a context.Context is
//     already in scope (an enclosing function takes one) — except the
//     nil-normalization idiom `if ctx == nil { ctx = context.Background() }`,
//     i.e. assigning to the context parameter itself.
//   - In package main, context.Background() belongs in func main (the
//     signal.NotifyContext root); helpers must take the context from
//     their caller.
//   - http.NewRequest is always wrong in non-test code — use
//     http.NewRequestWithContext.
//   - In the gated packages (internal/exec, internal/algo,
//     internal/server, internal/core), exported functions that can
//     block — channel operations, select without default, Wait calls,
//     time.Sleep — must accept a context.Context. Lifecycle methods
//     (Close, Shutdown, Stop, Wait) are exempt: their contract is to
//     block until done.
//
// Context-free convenience wrappers (`Run(q)` calling
// `RunContext(context.Background(), q)`) are fine: the wrapper has no
// ctx parameter in scope and does not itself block.
package ctxflow

import (
	"go/ast"
	"go/token"

	"kaskade/internal/lint/analysis"
	"kaskade/internal/lint/lintutil"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flags context.Background/TODO misuse and blocking exported functions without a context parameter",
	Run:  run,
}

// BlockingGates are the package-path fragments where the
// blocking-exported-function rule applies. Overridable for tests; the
// corpus package name is included so the analysistest corpus exercises
// the rule.
var BlockingGates = []string{
	"internal/exec", "internal/algo", "internal/server", "internal/core",
	"ctxflow_gated",
}

// lifecycleExempt are exported method names whose contract is to block
// without a context (drain-and-stop shapes).
var lifecycleExempt = map[string]bool{
	"Close": true, "Shutdown": true, "Stop": true, "Wait": true,
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	gated := lintutil.Gated(pass.Pkg.Path(), BlockingGates)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkBackground(pass, fd, isMain)
				if gated && !isMain {
					checkBlockingExported(pass, fd)
				}
			}
			// http.NewRequest and context.TODO are wrong anywhere,
			// including package-level var initializers.
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if lintutil.PkgFunc(pass.TypesInfo, call, "context", "TODO") {
					pass.Reportf(call.Pos(), "context.TODO in non-test code: plumb a real context here")
				}
				if lintutil.PkgFunc(pass.TypesInfo, call, "net/http", "NewRequest") {
					pass.Reportf(call.Pos(), "http.NewRequest ignores cancellation: use http.NewRequestWithContext")
				}
				return true
			})
		}
	}
	return nil
}

// checkBackground walks one top-level function, tracking the innermost
// context parameter in scope (from the FuncDecl or enclosing FuncLits),
// and flags context.Background() calls that should use it instead.
func checkBackground(pass *analysis.Pass, fd *ast.FuncDecl, isMain bool) {
	var walk func(n ast.Node, ctxInScope bool)
	walk = func(n ast.Node, ctxInScope bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch x := c.(type) {
			case *ast.FuncLit:
				walk(x.Body, ctxInScope || lintutil.HasContextParam(x.Type, pass.TypesInfo))
				return false
			case *ast.AssignStmt:
				// Nil-normalization: `ctx = context.Background()` where
				// ctx is itself a context variable already in scope.
				if ctxInScope && len(x.Lhs) == 1 && len(x.Rhs) == 1 {
					if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok &&
						lintutil.PkgFunc(pass.TypesInfo, call, "context", "Background") {
						if t := pass.TypesInfo.TypeOf(x.Lhs[0]); t != nil && lintutil.IsContextType(t) && x.Tok == token.ASSIGN {
							return false
						}
					}
				}
			case *ast.CallExpr:
				if !lintutil.PkgFunc(pass.TypesInfo, call(x), "context", "Background") {
					return true
				}
				switch {
				case ctxInScope:
					pass.Reportf(x.Pos(), "context.Background() with a context.Context in scope: propagate it (or context.WithoutCancel(ctx) for work that outlives it)")
				case isMain && fd.Name.Name != "main":
					pass.Reportf(x.Pos(), "context.Background() in helper %s: take the signal-aware context from main", fd.Name.Name)
				}
			}
			return true
		})
	}
	walk(fd.Body, lintutil.HasContextParam(fd.Type, pass.TypesInfo))
}

func call(c *ast.CallExpr) *ast.CallExpr { return c }

// checkBlockingExported flags exported functions in gated packages that
// block without accepting a context.
func checkBlockingExported(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || lifecycleExempt[fd.Name.Name] {
		return
	}
	if lintutil.HasContextParam(fd.Type, pass.TypesInfo) {
		return
	}
	reported := false
	lintutil.FindBlocking(fd.Body, pass.TypesInfo, func(op lintutil.BlockingOp) {
		if reported {
			return
		}
		reported = true
		pass.Reportf(fd.Pos(), "exported %s blocks (%s) but takes no context.Context", fd.Name.Name, op.What)
	})
}
