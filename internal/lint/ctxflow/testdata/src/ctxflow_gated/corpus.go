// Package ctxflow_gated exercises the blocking-exported-function rule,
// which applies only in the gated engine packages.
package ctxflow_gated

import (
	"context"
	"sync"
	"time"
)

type Pool struct {
	jobs chan int
	wg   sync.WaitGroup
}

// A blocking send with no way to cancel.
func (p *Pool) Submit(job int) { // want `exported Submit blocks`
	p.jobs <- job
}

// The same operation made cancelable.
func (p *Pool) SubmitContext(ctx context.Context, job int) {
	select {
	case p.jobs <- job:
	case <-ctx.Done():
	}
}

// Lifecycle methods block by contract.
func (p *Pool) Close() {
	close(p.jobs)
	p.wg.Wait()
}

// Non-blocking probe (select with default): the nudge idiom.
func (p *Pool) Nudge() {
	select {
	case p.jobs <- 0:
	default:
	}
}

func Flush(wg *sync.WaitGroup) { // want `exported Flush blocks`
	wg.Wait()
}

func Backoff() { // want `exported Backoff blocks`
	time.Sleep(time.Millisecond)
}

// Unexported helpers may block; their exported callers own the
// context.
func drainOne(ch chan int) int {
	return <-ch
}

var _ = drainOne
