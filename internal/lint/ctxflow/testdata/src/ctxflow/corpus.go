// Package ctxflow exercises the context-misuse rules that apply in any
// library package: Background-with-context-in-scope, TODO, and
// http.NewRequest.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

// Background while a context is in scope: the drain-context shape.
func Drain(ctx context.Context, d time.Duration) {
	dctx, cancel := context.WithTimeout(context.Background(), d) // want `with a context.Context in scope`
	defer cancel()
	_ = dctx
}

// Nil-normalization assigns to a context variable: sanctioned.
func Normalize(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// Context-free convenience wrapper: no context in scope, so Background
// is the correct root.
func Run() context.Context {
	return RunContext(context.Background())
}

func RunContext(ctx context.Context) context.Context { return ctx }

// TODO never ships.
func Todo() context.Context {
	return context.TODO() // want `context.TODO in non-test code`
}

// NewRequest ignores cancellation.
func Fetch() {
	req, err := http.NewRequest("GET", "http://localhost/", nil) // want `use http.NewRequestWithContext`
	_, _ = req, err
}

// A closure's own context parameter puts a context in scope.
func Closure() {
	f := func(ctx context.Context) {
		_ = context.Background() // want `with a context.Context in scope`
	}
	f(context.TODO()) // want `context.TODO in non-test code`
}
