// The main-package rule: func main owns the root context (ideally via
// signal.NotifyContext); helpers take it as a parameter.
package main

import (
	"context"
	"fmt"
)

func main() {
	ctx := context.Background() // the root belongs here
	fmt.Println(run(ctx))
}

func run(ctx context.Context) error { return ctx.Err() }

func helper() error {
	ctx := context.Background() // want `in helper helper`
	return ctx.Err()
}

var _ = helper
