package errtaxonomy_test

import (
	"testing"

	"kaskade/internal/lint/analysistest"
	"kaskade/internal/lint/errtaxonomy"
)

func TestErrtaxonomy(t *testing.T) {
	analysistest.Run(t, "testdata", errtaxonomy.Analyzer, "errtaxonomy_gated")
}
