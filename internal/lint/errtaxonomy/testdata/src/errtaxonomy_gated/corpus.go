// Package errtaxonomy_gated exercises the typed-error-taxonomy rule.
package errtaxonomy_gated

import "net/http"

type errKind string

// writeError is the designated taxonomy writer: the one place an
// error status may be written raw.
func writeError(w http.ResponseWriter, status int, kind errKind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write([]byte(`{"error":{"kind":"` + string(kind) + `","message":"` + msg + `"}}`))
}

func handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http.Error bypasses the error taxonomy`
}

func handleRaw(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusBadRequest) // want `WriteHeader\(400\) bypasses`
}

func handleComputed(w http.ResponseWriter, status int) {
	w.WriteHeader(status) // want `computed status bypasses`
}

// Success and redirect statuses are not taxonomy business.
func handleOK(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusNoContent)
}

// A status response that is deliberately not an error response can be
// suppressed with a reason.
func handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusServiceUnavailable) //kaskade:allow errtaxonomy load-shed status report, not a taxonomy error
}

var (
	_ = writeError
	_ = handleBad
	_ = handleRaw
	_ = handleComputed
	_ = handleOK
	_ = handleHealth
)
