// Package errtaxonomy keeps internal/server's error responses on the
// typed error-kind taxonomy (PR 7): every error leaving the HTTP
// boundary goes through writeError, which maps an errKind to a status
// code and a machine-readable JSON body. Calling http.Error or writing
// an error-range status code directly bypasses the taxonomy, producing
// a text/plain body clients can't classify.
//
// Flagged in gated packages:
//
//   - any call to net/http.Error
//   - w.WriteHeader(code) outside the designated writer when code is a
//     constant >= 400, or is not constant (a computed status must come
//     from the taxonomy's mapping, not ad-hoc arithmetic)
//
// Success and redirect statuses (constants < 400) are fine anywhere.
package errtaxonomy

import (
	"go/ast"
	"go/constant"

	"kaskade/internal/lint/analysis"
	"kaskade/internal/lint/lintutil"
)

// Analyzer is the errtaxonomy analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc:  "flags http.Error and raw error-status writes that bypass the server's typed error taxonomy",
	Run:  run,
}

// Gates are the package-path fragments where the taxonomy applies,
// plus the corpus package.
var Gates = []string{"internal/server", "errtaxonomy_gated"}

// designatedWriters may call WriteHeader with error statuses: they ARE
// the taxonomy.
var designatedWriters = map[string]bool{"writeError": true}

func run(pass *analysis.Pass) error {
	if !lintutil.Gated(pass.Pkg.Path(), Gates) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || designatedWriters[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if lintutil.PkgFunc(pass.TypesInfo, call, "net/http", "Error") {
					pass.Reportf(call.Pos(), "http.Error bypasses the error taxonomy: use writeError with an error kind")
					return true
				}
				checkWriteHeader(pass, call)
				return true
			})
		}
	}
	return nil
}

// checkWriteHeader flags w.WriteHeader(code) with an error-range or
// non-constant status.
func checkWriteHeader(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return
	}
	fn := lintutil.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// The method comes from net/http's ResponseWriter interface (or a
	// local wrapper embedding it in this gated package).
	if fn.Pkg().Path() != "net/http" && fn.Pkg().Path() != pass.Pkg.Path() {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	if tv.Value == nil {
		pass.Reportf(call.Pos(), "WriteHeader with a computed status bypasses the error taxonomy: map the error kind through writeError")
		return
	}
	if code, ok := constant.Int64Val(tv.Value); ok && code >= 400 {
		pass.Reportf(call.Pos(), "WriteHeader(%d) bypasses the error taxonomy: use writeError with an error kind", code)
	}
}
