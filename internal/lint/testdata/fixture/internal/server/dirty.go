// Package server is the known-dirty fixture for the kaskade-lint
// integration test: one violation per analyzer, checked through the
// real `go vet -vettool=` pipeline rather than the in-process corpus
// runner. The directory is named internal/server so the gated
// analyzers (lockhold, errtaxonomy, ctxflow's blocking rule) apply.
package server

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
)

type Hub struct {
	mu     sync.Mutex
	events chan string
	hits   int64
}

// mapiter: nondeterministic accumulation.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// ctxflow: TODO in library code.
func Root() context.Context {
	return context.TODO()
}

// ctxflow: exported blocking function without a context.
func (h *Hub) Publish(ev string) {
	h.events <- ev
}

// lockhold: blocking send while holding the mutex.
func (h *Hub) Broadcast(ev string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.events <- ev
}

// atomicfield: mixed atomic/plain access.
func (h *Hub) Incr() { atomic.AddInt64(&h.hits, 1) }

func (h *Hub) Hits() int64 { return h.hits }

// errtaxonomy: plain-text error response.
func Handle(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest)
}
