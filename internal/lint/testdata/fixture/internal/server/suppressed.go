package server

// SuppressedKeys carries a justified suppression: the integration test
// asserts no diagnostic points at this file.
func SuppressedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //kaskade:allow mapiter fixture exercises justified suppression through go vet
	}
	return keys
}
