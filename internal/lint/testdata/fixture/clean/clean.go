// Package clean must produce no diagnostics: the accumulate-then-sort
// idiom is the sanctioned way out of map-iteration nondeterminism.
package clean

import "sort"

func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
