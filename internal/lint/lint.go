// Package lint assembles Kaskade's invariant analyzers. See the
// "Static analysis" section of the README for what each one enforces
// and how suppressions work.
package lint

import (
	"kaskade/internal/lint/analysis"
	"kaskade/internal/lint/atomicfield"
	"kaskade/internal/lint/ctxflow"
	"kaskade/internal/lint/errtaxonomy"
	"kaskade/internal/lint/lockhold"
	"kaskade/internal/lint/mapiter"
)

// All returns every analyzer in the suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.Analyzer,
		ctxflow.Analyzer,
		errtaxonomy.Analyzer,
		lockhold.Analyzer,
		mapiter.Analyzer,
	}
}
