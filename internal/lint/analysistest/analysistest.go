// Package analysistest runs an analyzer over a testdata corpus and
// checks its diagnostics against // want annotations — the in-tree
// equivalent of golang.org/x/tools/go/analysis/analysistest.
//
// A corpus package lives at <testdata>/src/<pkg>/ and its files carry
// expectations in trailing comments:
//
//	rows = append(rows, k) // want `order is nondeterministic`
//
// Each `...`- or "..."-quoted fragment is a regular expression that
// must match a diagnostic reported on that line; every diagnostic must
// match exactly one annotation and vice versa, so the corpus pins the
// analyzer's exact output (no extra findings, no missed ones).
//
// Corpus packages may import only the standard library: imports are
// type-checked from source (importer "source"), which works offline.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"kaskade/internal/lint/analysis"
	"kaskade/internal/lint/loader"
)

// want is one expectation: a regexp that must match a diagnostic at
// file:line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	used bool
}

// Run applies a to each corpus package under testdata/src and reports
// any mismatch between diagnostics and // want annotations as test
// errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPkg(t, testdata, a, pkg)
	}
}

func runPkg(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	fset := token.NewFileSet()
	files, err := loader.ParseDir(fset, dir)
	if err != nil {
		t.Errorf("%s: %v", pkg, err)
		return
	}
	typesPkg, info, err := loader.Check(fset, pkg, files, importer.ForCompiler(fset, "source", nil), "")
	if err != nil {
		t.Errorf("%s: corpus must type-check cleanly: %v", pkg, err)
		return
	}
	diags, err := analysis.Run(fset, files, typesPkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Errorf("%s: %v", pkg, err)
		return
	}

	wants, err := parseWants(fset, files)
	if err != nil {
		t.Errorf("%s: %v", pkg, err)
		return
	}

	for _, d := range diags {
		posn := d.Position(fset)
		if w := match(wants, posn.Filename, posn.Line, d.Message); w == nil {
			t.Errorf("%s:%d: unexpected diagnostic: %s [%s]", posn.Filename, posn.Line, d.Message, d.Category)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched `%s`", w.file, w.line, w.raw)
		}
	}
}

// match finds the first unused want at file:line whose regexp matches
// msg, marks it used, and returns it.
func match(wants []*want, file string, line int, msg string) *want {
	for _, w := range wants {
		if !w.used && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.used = true
			return w
		}
	}
	return nil
}

// parseWants extracts // want annotations from every comment in the
// corpus files.
func parseWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var out []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				patterns, err := parsePatterns(strings.TrimPrefix(text, "want "))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", posn.Filename, posn.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %v", posn.Filename, posn.Line, err)
					}
					out = append(out, &want{file: posn.Filename, line: posn.Line, re: re, raw: p})
				}
			}
		}
	}
	return out, nil
}

// parsePatterns splits a want payload into its quoted regexp
// fragments: backquoted strings are taken verbatim, double-quoted ones
// are unquoted with Go escape rules.
func parsePatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated ` in want comment")
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			prefix, err := strconv.QuotedPrefix(s)
			if err != nil {
				return nil, fmt.Errorf("bad quoted pattern in want comment: %v", err)
			}
			unq, err := strconv.Unquote(prefix)
			if err != nil {
				return nil, err
			}
			out = append(out, unq)
			s = s[len(prefix):]
		default:
			return nil, fmt.Errorf("want patterns must be quoted with ` or \" (at %q)", s)
		}
	}
}
