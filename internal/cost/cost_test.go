package cost

import (
	"math"
	"testing"

	"kaskade/internal/datagen"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
)

func smallProv(t testing.TB) *graph.Graph {
	t.Helper()
	cfg := datagen.DefaultProvConfig()
	cfg.Jobs, cfg.Files, cfg.TasksPerJob, cfg.Machines, cfg.Users = 300, 600, 2, 20, 10
	g, err := datagen.Prov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCollect(t *testing.T) {
	g := smallProv(t)
	p := Collect(g)
	if p.NumVertices != g.NumVertices() || p.NumEdges != g.NumEdges() {
		t.Errorf("sizes: %d/%d vs %d/%d", p.NumVertices, p.NumEdges, g.NumVertices(), g.NumEdges())
	}
	js, ok := p.ByType["Job"]
	if !ok || js.Count != 300 {
		t.Errorf("job summary = %+v", js)
	}
	if js.P50 > js.P95 || js.P95 > js.Max {
		t.Errorf("percentiles not monotone: %+v", js)
	}
}

func TestErdosRenyiPaths(t *testing.T) {
	// Dense small graph: n=4, m=6 (complete): expected 2-paths
	// C(4,3) * (6/6)^2 = 4.
	got := ErdosRenyiPaths(4, 6, 2)
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("ER(4,6,2) = %v, want 4", got)
	}
	// Degenerate inputs.
	if ErdosRenyiPaths(1, 0, 2) != 0 {
		t.Error("n<k+1 should give 0")
	}
	if ErdosRenyiPaths(100, 50, 0) != 0 {
		t.Error("k<1 should give 0")
	}
	// Large n does not overflow.
	big := ErdosRenyiPaths(5_000_000_000, 16_000_000_000, 2)
	if math.IsNaN(big) || math.IsInf(big, 0) || big <= 0 {
		t.Errorf("ER at paper scale = %v", big)
	}
}

func TestEstimatorsMonotoneInAlphaAndK(t *testing.T) {
	g := smallProv(t)
	p := Collect(g)
	sc := g.Schema()
	for _, k := range []int{1, 2, 3} {
		e50, err := EstimateKHopPaths(p, sc, k, 50)
		if err != nil {
			t.Fatal(err)
		}
		e95, err := EstimateKHopPaths(p, sc, k, 95)
		if err != nil {
			t.Fatal(err)
		}
		e100, err := EstimateKHopPaths(p, sc, k, 100)
		if err != nil {
			t.Fatal(err)
		}
		if !(e50 <= e95 && e95 <= e100) {
			t.Errorf("k=%d: estimates not monotone in α: %g %g %g", k, e50, e95, e100)
		}
	}
	// Monotone in k for α where deg >= 1.
	e2, _ := EstimateKHopPaths(p, sc, 2, 95)
	e4, _ := EstimateKHopPaths(p, sc, 4, 95)
	if e4 < e2 {
		t.Errorf("estimate not monotone in k: k2=%g k4=%g", e2, e4)
	}
}

func TestHomogeneousVsHeterogeneousDispatch(t *testing.T) {
	soc, err := datagen.SocialNetwork(datagen.SocialConfig{Users: 500, Edges: 3000, Exponent: 2.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := Collect(soc)
	viaDispatch, err := EstimateKHopPaths(p, soc.Schema(), 2, 95)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := EstimateHomogeneousPaths(p, 2, 95)
	if err != nil {
		t.Fatal(err)
	}
	if viaDispatch != direct {
		t.Errorf("dispatch = %g, homogeneous = %g", viaDispatch, direct)
	}
	if _, err := EstimateHeterogeneousPaths(p, nil, 2, 95); err == nil {
		t.Error("heterogeneous estimator without schema should error")
	}
}

func TestUnsupportedAlpha(t *testing.T) {
	g := smallProv(t)
	p := Collect(g)
	if _, err := EstimateKHopPaths(p, g.Schema(), 2, 42); err == nil {
		t.Error("α=42 should be rejected")
	}
}

func TestEvalCostOrdersPlans(t *testing.T) {
	g := smallProv(t)
	p := Collect(g)
	sc := g.Schema()

	long := gql.MustParse(`MATCH (a:Job)-[:WRITES_TO]->(f1:File)(f1:File)-[r*0..8]->(f2:File)(f2:File)-[:IS_READ_BY]->(b:Job) RETURN a, b`)
	short := gql.MustParse(`MATCH (a:Job)-[r*1..5]->(b:Job) RETURN a, b`)

	cLong, err := EvalCost(long, p, sc, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	cShort, err := EvalCost(short, p, sc, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	// The whole point of the rewrite: fewer hops must price cheaper.
	if cShort >= cLong {
		t.Errorf("rewritten plan not cheaper: short=%g long=%g", cShort, cLong)
	}
}

func TestEvalCostErrors(t *testing.T) {
	g := smallProv(t)
	p := Collect(g)
	if _, err := EvalCost(gql.MustParse(`MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a`), p, g.Schema(), 42); err == nil {
		t.Error("bad alpha should surface")
	}
}

func TestCreationCostProportional(t *testing.T) {
	if CreationCost(100) >= CreationCost(1000) {
		t.Error("creation cost not increasing with size")
	}
}
