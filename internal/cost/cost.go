// Package cost implements Kaskade's graph view cost model (§V-A):
// per-type graph data properties (vertex cardinalities and coarse
// out-degree percentile summaries), the three k-length-path/view-size
// estimators (Erdős–Rényi Eq. 1, homogeneous Eq. 2, heterogeneous Eq. 3),
// view creation cost, and a query evaluation cost proxy standing in for
// Neo4j's cost-based optimizer.
package cost

import (
	"fmt"
	"math"

	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/stats"
)

// DefaultAlpha is the degree percentile Kaskade uses in production: the
// paper found α=95 provides an upper bound for most real-world graphs
// while 50 ≤ α ≤ 95 brackets the actual size (§V-A, §VII-D).
const DefaultAlpha = 95

// GraphProperties are the statistics maintained during loading/updates
// (§V-A "Graph data properties"): vertex cardinality and out-degree
// summaries per vertex type, plus whole-graph aggregates.
type GraphProperties struct {
	NumVertices int
	NumEdges    int
	ByType      map[string]stats.DegreeSummary
	Overall     stats.DegreeSummary
}

// Collect computes graph properties with exact percentiles. (A real
// deployment would maintain these incrementally; exactness keeps the
// evaluation honest at our scales.)
func Collect(g *graph.Graph) *GraphProperties {
	p := &GraphProperties{
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumEdges(),
		ByType:      make(map[string]stats.DegreeSummary),
		Overall:     stats.Summarize(g, ""),
	}
	for _, t := range g.VertexTypes() {
		p.ByType[t] = stats.Summarize(g, t)
	}
	return p
}

// ErdosRenyiPaths is Eq. (1): the expected number of k-length simple
// paths in a G(n, m) random graph, C(n, k+1) · (m / C(n,2))^k. The paper
// shows it underestimates real-world graphs by orders of magnitude; it is
// kept for the Fig. 5 comparison.
func ErdosRenyiPaths(n, m int64, k int) float64 {
	if n < int64(k)+1 || n < 2 || k < 1 {
		return 0
	}
	// Work in logs to survive large n.
	logChoose := func(n int64, r int64) float64 {
		if r < 0 || r > n {
			return math.Inf(-1)
		}
		s := 0.0
		for i := int64(0); i < r; i++ {
			s += math.Log(float64(n-i)) - math.Log(float64(i+1))
		}
		return s
	}
	logP := math.Log(float64(m)) - logChoose(n, 2)
	logE := logChoose(n, int64(k)+1) + float64(k)*logP
	return math.Exp(logE)
}

// EstimateHomogeneousPaths is Eq. (2): n · deg_α^k for a graph with a
// single vertex type.
func EstimateHomogeneousPaths(p *GraphProperties, k, alpha int) (float64, error) {
	deg, err := p.Overall.Degree(alpha)
	if err != nil {
		return 0, err
	}
	return float64(p.NumVertices) * math.Pow(float64(deg), float64(k)), nil
}

// EstimateHeterogeneousPaths is Eq. (3): Σ_{t ∈ T_G} n_t · deg_α(t)^k,
// where T_G is the set of vertex types that are the domain of at least
// one edge type in the schema.
func EstimateHeterogeneousPaths(p *GraphProperties, schema *graph.Schema, k, alpha int) (float64, error) {
	if schema == nil {
		return 0, fmt.Errorf("cost: heterogeneous estimator requires a schema")
	}
	total := 0.0
	for _, t := range schema.SourceTypes() {
		s, ok := p.ByType[t]
		if !ok {
			continue
		}
		deg, err := s.Degree(alpha)
		if err != nil {
			return 0, err
		}
		total += float64(s.Count) * math.Pow(float64(deg), float64(k))
	}
	return total, nil
}

// EstimateKHopPaths dispatches to the homogeneous or heterogeneous
// estimator based on the schema (§V-A). It estimates the number of
// k-length paths, which equals the edge count of a k-hop connector view.
func EstimateKHopPaths(p *GraphProperties, schema *graph.Schema, k, alpha int) (float64, error) {
	if schema == nil || schema.IsHomogeneous() {
		return EstimateHomogeneousPaths(p, k, alpha)
	}
	return EstimateHeterogeneousPaths(p, schema, k, alpha)
}

// EstimateKHopPathsFromType refines Eq. (3) to paths rooted at a single
// source type: n_src · Π_{i<k} deg_α(frontier_i), where frontier_i is
// the set of vertex types reachable in i schema hops from srcType and
// the step fan-out is the largest deg_α among them. It predicts the edge
// count contributed by a specific connector's source (used when pricing
// a rewriting); the paper's Eq. (3) remains the view-size/weight
// estimator.
func EstimateKHopPathsFromType(p *GraphProperties, schema *graph.Schema, srcType string, k, alpha int) (float64, error) {
	if schema == nil || srcType == "" {
		return EstimateHomogeneousPaths(p, k, alpha)
	}
	frontier := map[string]bool{srcType: true}
	total := 1.0
	if s, ok := p.ByType[srcType]; ok {
		total = float64(s.Count)
	}
	for step := 0; step < k; step++ {
		stepDeg := 0
		next := map[string]bool{}
		for t := range frontier {
			for _, et := range schema.EdgeTypesFrom(t) {
				next[et.To] = true
			}
			if s, ok := p.ByType[t]; ok {
				d, err := s.Degree(alpha)
				if err != nil {
					return 0, err
				}
				if d > stepDeg {
					stepDeg = d
				}
			}
		}
		if len(next) == 0 {
			return 0, nil // no k-length paths exist from srcType
		}
		total *= float64(stepDeg)
		frontier = next
	}
	return total, nil
}

// CreationCost models the cost of computing and materializing a view.
// §V-A: the I/O cost dominates, so creation cost is directly proportional
// to the view's estimated size (we use unit proportionality).
func CreationCost(estimatedEdges float64) float64 { return estimatedEdges }

// EvalCost is the query evaluation cost proxy (the paper defers to
// Neo4j's cost-based optimizer; we model the dominant term of pattern
// matching: candidate starts times per-hop fan-out, summed over
// variable-length bounds). It only needs to order plans reasonably —
// absolute values are meaningless, exactly like a real optimizer's cost.
func EvalCost(q gql.Query, p *GraphProperties, schema *graph.Schema, alpha int) (float64, error) {
	m := gql.InnermostMatch(q)
	if m == nil {
		return 0, fmt.Errorf("cost: query has no MATCH block")
	}
	total := 0.0
	for _, pat := range stitchChains(m.Patterns) {
		c, err := patternCost(pat, p, schema, alpha)
		if err != nil {
			return 0, err
		}
		total += c
	}
	// SELECT wrappers add linear passes over the result; dominated by
	// matching, so omitted like the paper's computational costs.
	return total, nil
}

// stitchChains merges patterns that chain on shared endpoint variables
// (Listing 1 splits one logical chain over three MATCH patterns; pricing
// them independently would ignore the joins).
func stitchChains(pats []gql.PathPattern) []gql.PathPattern {
	chains := make([]gql.PathPattern, 0, len(pats))
	for _, p := range pats {
		chains = append(chains, clonePattern(p))
	}
	for changed := true; changed; {
		changed = false
	outer:
		for i := range chains {
			for j := range chains {
				if i == j {
					continue
				}
				li, lj := chains[i], chains[j]
				endVar := li.Nodes[len(li.Nodes)-1].Var
				if endVar != "" && endVar == lj.Nodes[0].Var {
					merged := clonePattern(li)
					merged.Nodes = append(merged.Nodes, lj.Nodes[1:]...)
					merged.Edges = append(merged.Edges, lj.Edges...)
					rest := make([]gql.PathPattern, 0, len(chains)-1)
					for k := range chains {
						if k != i && k != j {
							rest = append(rest, chains[k])
						}
					}
					chains = append(rest, merged)
					changed = true
					break outer
				}
			}
		}
	}
	return chains
}

func clonePattern(p gql.PathPattern) gql.PathPattern {
	return gql.PathPattern{
		Nodes: append([]gql.NodePattern(nil), p.Nodes...),
		Edges: append([]gql.EdgePattern(nil), p.Edges...),
	}
}

func patternCost(pat gql.PathPattern, p *GraphProperties, schema *graph.Schema, alpha int) (float64, error) {
	if len(pat.Nodes) == 0 {
		return 0, nil
	}
	starts := float64(p.NumVertices)
	if t := pat.Nodes[0].Type; t != "" {
		if s, ok := p.ByType[t]; ok {
			starts = float64(s.Count)
		} else {
			starts = 0
		}
	}
	cost := starts
	rows := starts
	for i, e := range pat.Edges {
		srcType := pat.Nodes[i].Type
		if e.Reversed {
			srcType = pat.Nodes[i+1].Type
		}
		var mult float64
		if e.VarLength {
			// Variable-length segments traverse interior vertices of
			// arbitrary types (on heterogeneous graphs they alternate),
			// so the per-hop fan-out is the whole graph's deg_α rather
			// than the endpoint type's.
			b, err := branching(p, "", alpha)
			if err != nil {
				return 0, err
			}
			lo, hi := e.MinHops, e.MaxHops
			if hi < 0 {
				hi = maxReasonableHops
			}
			mult = geometricSum(b, lo, hi)
		} else {
			b, err := branching(p, srcType, alpha)
			if err != nil {
				return 0, err
			}
			mult = b
		}
		rows *= mult
		cost += rows
	}
	return cost, nil
}

// maxReasonableHops bounds unbounded variable-length patterns in the
// cost model (matching the paper's k≤10 working assumption in §IV-B).
const maxReasonableHops = 10

// branching returns the per-hop fan-out: deg_α of the source vertex type
// when known, the overall deg_α otherwise. A fan-out below 1 is clamped
// to 1 so chains do not price below their start count.
func branching(p *GraphProperties, srcType string, alpha int) (float64, error) {
	s := p.Overall
	if srcType != "" {
		if ts, ok := p.ByType[srcType]; ok {
			s = ts
		}
	}
	d, err := s.Degree(alpha)
	if err != nil {
		return 0, err
	}
	if d < 1 {
		return 1, nil
	}
	return float64(d), nil
}

// geometricSum returns Σ_{k=lo..hi} b^k (with b^0 = 1).
func geometricSum(b float64, lo, hi int) float64 {
	if hi < lo {
		return 0
	}
	sum := 0.0
	for k := lo; k <= hi; k++ {
		sum += math.Pow(b, float64(k))
	}
	return sum
}
