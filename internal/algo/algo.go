// Package algo implements the graph algorithms the evaluation workload
// needs beyond pattern matching: k-hop neighborhood traversals (Q2/Q3),
// per-path aggregation (Q4), label-propagation community detection
// (Q7 — the paper used Neo4j's APOC UDF), and largest-community
// extraction (Q8).
package algo

import (
	"fmt"
	"sort"

	"kaskade/internal/graph"
)

// Direction selects traversal orientation.
type Direction int

// Traversal directions.
const (
	Forward  Direction = iota // follow out-edges (descendants)
	Backward                  // follow in-edges (ancestors)
)

// KHopNeighborhood returns the set of vertices reachable from src within
// 1..k hops in the given direction (BFS; src itself is excluded). This is
// the primitive behind Q2 (ancestors, Backward) and Q3 (descendants,
// Forward).
func KHopNeighborhood(g *graph.Graph, src graph.VertexID, k int, dir Direction) []graph.VertexID {
	if k < 1 {
		return nil
	}
	visited := map[graph.VertexID]bool{src: true}
	frontier := []graph.VertexID{src}
	var out []graph.VertexID
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		var next []graph.VertexID
		for _, v := range frontier {
			for _, eid := range edgesOf(g, v, dir) {
				n := neighbor(g, eid, dir)
				if !visited[n] {
					visited[n] = true
					next = append(next, n)
					out = append(out, n)
				}
			}
		}
		frontier = next
	}
	return out
}

// PathLengths computes, for every vertex in src's forward k-hop
// neighborhood, the aggregate (max) of the edge property `prop` over all
// edges of the BFS tree path reaching it — Q4's "weighted distance":
// retrieve the 4-hop neighborhood, then aggregate an edge data property
// (the timestamp) along paths. The BFS relaxes a vertex when a path with
// a smaller aggregate is found, making the result order-independent.
func PathLengths(g *graph.Graph, src graph.VertexID, k int, prop string) map[graph.VertexID]int64 {
	dist := make(map[graph.VertexID]int64)
	type item struct {
		v    graph.VertexID
		agg  int64
		hops int
	}
	queue := []item{{v: src, agg: 0, hops: 0}}
	best := map[graph.VertexID]int64{src: 0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.hops == k {
			continue
		}
		for _, eid := range g.Out(cur.v) {
			e := g.Edge(eid)
			ts, _ := e.Prop(prop).(int64)
			agg := cur.agg
			if ts > agg {
				agg = ts
			}
			prev, seen := best[e.To]
			if !seen || agg < prev {
				best[e.To] = agg
				queue = append(queue, item{v: e.To, agg: agg, hops: cur.hops + 1})
				if e.To != src {
					dist[e.To] = agg
				}
			}
		}
	}
	return dist
}

// LabelPropagation runs synchronous label-propagation community
// detection for the given number of passes (Q7; the paper runs 25 passes
// of the APOC implementation). Every vertex starts in its own community;
// each pass it adopts the most frequent community among its undirected
// neighbors (ties broken by the smaller label for determinism). The
// final labels are written to the vertex property `communityProp` and
// also returned.
func LabelPropagation(g *graph.Graph, passes int, communityProp string) []int64 {
	n := g.NumVertices()
	labels := make([]int64, n)
	for i := range labels {
		labels[i] = int64(i)
	}
	next := make([]int64, n)
	counts := make(map[int64]int)
	for p := 0; p < passes; p++ {
		changed := false
		for v := 0; v < n; v++ {
			clear(counts)
			id := graph.VertexID(v)
			for _, eid := range g.Out(id) {
				counts[labels[g.Edge(eid).To]]++
			}
			for _, eid := range g.In(id) {
				counts[labels[g.Edge(eid).From]]++
			}
			if len(counts) == 0 {
				next[v] = labels[v]
				continue
			}
			bestLabel, bestCount := labels[v], 0
			for label, c := range counts {
				if c > bestCount || (c == bestCount && label < bestLabel) {
					bestLabel, bestCount = label, c
				}
			}
			next[v] = bestLabel
			if bestLabel != labels[v] {
				changed = true
			}
		}
		labels, next = next, labels
		if !changed {
			break
		}
	}
	if communityProp != "" {
		for v := 0; v < n; v++ {
			g.Vertex(graph.VertexID(v)).SetProp(communityProp, labels[v])
		}
	}
	return labels
}

// LargestCommunity returns the community label with the most vertices of
// countType ("" counts all vertices) and the member vertices of that
// community — Q8: the largest community as measured by the number of
// "job" vertices. It reads the labels written by LabelPropagation.
func LargestCommunity(g *graph.Graph, communityProp, countType string) (label int64, members []graph.VertexID, err error) {
	counts := make(map[int64]int)
	found := false
	g.EachVertex(func(v *graph.Vertex) {
		l, ok := v.Prop(communityProp).(int64)
		if !ok {
			return
		}
		found = true
		if countType == "" || v.Type == countType {
			counts[l]++
		}
	})
	if !found {
		return 0, nil, fmt.Errorf("algo: no %q labels present; run LabelPropagation first", communityProp)
	}
	best := int64(-1)
	bestCount := -1
	var labelsSorted []int64
	for l := range counts {
		labelsSorted = append(labelsSorted, l)
	}
	sort.Slice(labelsSorted, func(i, j int) bool { return labelsSorted[i] < labelsSorted[j] })
	for _, l := range labelsSorted {
		if counts[l] > bestCount {
			best, bestCount = l, counts[l]
		}
	}
	g.EachVertex(func(v *graph.Vertex) {
		if l, ok := v.Prop(communityProp).(int64); ok && l == best {
			members = append(members, v.ID)
		}
	})
	return best, members, nil
}

// Reachable computes the full forward reachability set from src
// (unbounded hops), excluding src — the "blast radius" vertex set used
// by Q1-style impact analyses.
func Reachable(g *graph.Graph, src graph.VertexID) []graph.VertexID {
	visited := map[graph.VertexID]bool{src: true}
	stack := []graph.VertexID{src}
	var out []graph.VertexID
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range g.Out(v) {
			n := g.Edge(eid).To
			if !visited[n] {
				visited[n] = true
				out = append(out, n)
				stack = append(stack, n)
			}
		}
	}
	return out
}

func edgesOf(g *graph.Graph, v graph.VertexID, dir Direction) []graph.EdgeID {
	if dir == Forward {
		return g.Out(v)
	}
	return g.In(v)
}

func neighbor(g *graph.Graph, eid graph.EdgeID, dir Direction) graph.VertexID {
	if dir == Forward {
		return g.Edge(eid).To
	}
	return g.Edge(eid).From
}
