// Package algo implements the graph algorithms the evaluation workload
// needs beyond pattern matching: k-hop neighborhood traversals (Q2/Q3),
// per-path aggregation (Q4), label-propagation community detection
// (Q7 — the paper used Neo4j's APOC UDF), and largest-community
// extraction (Q8).
//
// Every kernel runs on the graph's frozen CSR view (graph.Frozen): flat
// offset/edge arrays instead of pointer-chasing per-vertex slices, and
// index-addressed bitsets instead of map[VertexID]bool visited sets —
// the storage layout that removed the allocation bottleneck from the
// k-hop hot path. Results are byte-identical to the historical
// append-mode implementations (same vertices, same order).
//
// The Traversal type bundles a frozen graph with reusable scratch state
// (visited bitset, frontier arrays, result buffer), so a loop over many
// sources — the shape of every Fig. 7 per-source query — performs no
// per-source allocation. The package-level functions are convenience
// wrappers that build a one-shot Traversal.
//
// Context variants (KHopNeighborhoodContext etc.) poll ctx inside the
// traversal, not just between sources, so even a single huge traversal
// stops promptly on cancellation. Parallel per-source and per-round
// variants live in parallel.go.
package algo

import (
	"context"
	"fmt"
	"sort"

	"kaskade/internal/bitset"
	"kaskade/internal/graph"
)

// Direction selects traversal orientation.
type Direction int

// Traversal directions.
const (
	Forward  Direction = iota // follow out-edges (descendants)
	Backward                  // follow in-edges (ancestors)
)

// ctxPollEvery is how many traversal steps (edge probes) pass between
// context polls: frequent enough that cancellation is prompt, rare
// enough that the poll never shows up in profiles.
const ctxPollEvery = 1024

// Traversal bundles a frozen graph with reusable scratch state: the
// visited bitset, BFS frontier arrays, per-vertex relaxation arrays,
// and a result buffer. Reusing one Traversal across a per-source loop
// makes each traversal allocation-free (scratch is cleared by walking
// the previous result, O(|result|), not O(V)).
//
// A Traversal is single-goroutine; give each worker its own (see
// ForEachSource). Slices returned by its methods are backed by the
// scratch buffer and valid only until the next call on the same
// Traversal — copy them to keep them.
type Traversal struct {
	f        *graph.Frozen
	visited  bitset.Set
	frontier []graph.VertexID
	next     []graph.VertexID
	buf      []graph.VertexID // result buffer for KHop/Reachable

	// PathLengths scratch: dense best-aggregate array and its touched set.
	best  []int64
	seen  bitset.Set
	queue []plItem

	steps int // context poll tick counter
}

type plItem struct {
	v    graph.VertexID
	agg  int64
	hops int
}

// NewTraversal returns a Traversal over g's frozen view (freezing it on
// first use if needed).
func NewTraversal(g *graph.Graph) *Traversal { return NewFrozenTraversal(g.Freeze()) }

// NewFrozenTraversal returns a Traversal over an already-frozen graph.
func NewFrozenTraversal(f *graph.Frozen) *Traversal {
	return &Traversal{
		f:       f,
		visited: bitset.New(f.NumVertices()),
	}
}

// Frozen returns the frozen graph the traversal runs on.
func (t *Traversal) Frozen() *graph.Frozen { return t.f }

func (t *Traversal) edges(v graph.VertexID, dir Direction) []graph.EdgeID {
	if dir == Forward {
		return t.f.Out(v)
	}
	return t.f.In(v)
}

func (t *Traversal) neighbor(eid graph.EdgeID, dir Direction) graph.VertexID {
	if dir == Forward {
		return t.f.To(eid)
	}
	return t.f.From(eid)
}

// tick polls ctx once every ctxPollEvery steps.
func (t *Traversal) tick(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	t.steps++
	if t.steps%ctxPollEvery != 0 {
		return nil
	}
	return ctx.Err()
}

// KHop returns the set of vertices reachable from src within 1..k hops
// in the given direction (BFS; src itself is excluded), in the same
// order as KHopNeighborhood. The result is scratch-backed: valid until
// the next call on this Traversal.
func (t *Traversal) KHop(src graph.VertexID, k int, dir Direction) []graph.VertexID {
	out, _ := t.KHopContext(nil, src, k, dir)
	return out
}

// KHopContext is KHop with cancellation: ctx is polled inside the
// traversal (every ctxPollEvery edge probes), so even one huge
// neighborhood expansion stops promptly. A nil ctx never cancels.
func (t *Traversal) KHopContext(ctx context.Context, src graph.VertexID, k int, dir Direction) ([]graph.VertexID, error) {
	if k < 1 {
		return nil, nil
	}
	out := t.buf[:0]
	t.visited.Add(int(src))
	defer func() {
		// Clear only what this traversal touched, and keep the grown
		// buffers for the next call (also on the error path).
		t.visited.Remove(int(src))
		for _, v := range out {
			t.visited.Remove(int(v))
		}
		t.buf = out[:0]
		t.frontier = t.frontier[:0]
		t.next = t.next[:0]
	}()
	frontier := append(t.frontier[:0], src)
	next := t.next[:0]
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, v := range frontier {
			for _, eid := range t.edges(v, dir) {
				if err := t.tick(ctx); err != nil {
					t.frontier, t.next = frontier, next
					return out, err
				}
				n := t.neighbor(eid, dir)
				if !t.visited.Has(int(n)) {
					t.visited.Add(int(n))
					next = append(next, n)
					out = append(out, n)
				}
			}
		}
		frontier, next = next, frontier
	}
	t.frontier, t.next = frontier, next
	return out, nil
}

// KHopNeighborhood returns the set of vertices reachable from src within
// 1..k hops in the given direction (BFS; src itself is excluded). This is
// the primitive behind Q2 (ancestors, Backward) and Q3 (descendants,
// Forward). For a loop over many sources, reuse a Traversal instead.
func KHopNeighborhood(g *graph.Graph, src graph.VertexID, k int, dir Direction) []graph.VertexID {
	out := NewTraversal(g).KHop(src, k, dir)
	if len(out) == 0 {
		return nil
	}
	return out
}

// KHopNeighborhoodContext is KHopNeighborhood with cancellation: ctx is
// polled inside the traversal, not just between calls.
func KHopNeighborhoodContext(ctx context.Context, g *graph.Graph, src graph.VertexID, k int, dir Direction) ([]graph.VertexID, error) {
	return NewTraversal(g).KHopContext(ctx, src, k, dir)
}

// PathLengths computes, for every vertex in src's forward k-hop
// neighborhood, the aggregate (max) of the edge property `prop` over all
// edges of the BFS tree path reaching it — Q4's "weighted distance":
// retrieve the 4-hop neighborhood, then aggregate an edge data property
// (the timestamp) along paths. The BFS relaxes a vertex when a path with
// a smaller aggregate is found, making the result order-independent.
//
// Edges whose `prop` is missing or not an int64 are skipped entirely:
// they contribute no aggregate and paths may not traverse them. (They
// were previously coerced to 0, which silently made an untimestamped
// edge look like the oldest possible one.) A vertex reachable only
// through skipped edges is absent from the result.
func PathLengths(g *graph.Graph, src graph.VertexID, k int, prop string) map[graph.VertexID]int64 {
	dist, _ := NewTraversal(g).PathLengthsContext(nil, src, k, prop)
	return dist
}

// PathLengthsContext is PathLengths with cancellation.
func PathLengthsContext(ctx context.Context, g *graph.Graph, src graph.VertexID, k int, prop string) (map[graph.VertexID]int64, error) {
	return NewTraversal(g).PathLengthsContext(ctx, src, k, prop)
}

// PathLengthsContext computes the per-vertex path aggregate (see
// PathLengths) using the traversal's dense relaxation arrays. The
// returned map is freshly allocated (not scratch-backed).
func (t *Traversal) PathLengthsContext(ctx context.Context, src graph.VertexID, k int, prop string) (map[graph.VertexID]int64, error) {
	if t.best == nil {
		t.best = make([]int64, t.f.NumVertices())
	}
	if t.seen == nil {
		t.seen = bitset.New(t.f.NumVertices())
	}
	touched := t.buf[:0] // vertices with a best[] entry, src excluded
	defer func() {
		t.seen.Remove(int(src))
		for _, v := range touched {
			t.seen.Remove(int(v))
		}
		t.buf = touched[:0]
		t.queue = t.queue[:0]
	}()
	queue := append(t.queue[:0], plItem{v: src, agg: 0, hops: 0})
	t.seen.Add(int(src))
	t.best[src] = 0
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		if cur.hops == k {
			continue
		}
		for _, eid := range t.f.Out(cur.v) {
			if err := t.tick(ctx); err != nil {
				t.queue = queue[:0]
				return nil, err
			}
			ts, ok := t.f.Edge(eid).Prop(prop).(int64)
			if !ok {
				continue // missing/non-int64 property: edge not traversable
			}
			agg := cur.agg
			if ts > agg {
				agg = ts
			}
			to := t.f.To(eid)
			if t.seen.Has(int(to)) && agg >= t.best[to] {
				continue
			}
			if !t.seen.Has(int(to)) {
				t.seen.Add(int(to))
				if to != src {
					touched = append(touched, to)
				}
			}
			t.best[to] = agg
			queue = append(queue, plItem{v: to, agg: agg, hops: cur.hops + 1})
		}
	}
	t.queue = queue
	dist := make(map[graph.VertexID]int64, len(touched))
	for _, v := range touched {
		dist[v] = t.best[v]
	}
	return dist, nil
}

// LabelPropagation runs synchronous label-propagation community
// detection for the given number of passes (Q7; the paper runs 25 passes
// of the APOC implementation). Every vertex starts in its own community;
// each pass it adopts the most frequent community among its undirected
// neighbors (ties broken by the smaller label for determinism). The
// final labels are written to the vertex property `communityProp` and
// also returned.
func LabelPropagation(g *graph.Graph, passes int, communityProp string) []int64 {
	labels, _ := LabelPropagationContext(context.Background(), g, passes, communityProp)
	return labels
}

// LabelPropagationContext is LabelPropagation with cancellation, polled
// once per pass per chunk of vertices.
func LabelPropagationContext(ctx context.Context, g *graph.Graph, passes int, communityProp string) ([]int64, error) {
	return LabelPropagationParallel(ctx, g, passes, communityProp, 1)
}

// lpScratch is a worker's flat scratch for lpAdoptLabel. Labels are
// always vertex indices (every vertex starts labeled with its own
// index and only ever adopts a neighbor's label), so the per-label
// neighbor counts live in a flat []int32 indexed by label instead of a
// map[int64]int — no hashing, no per-pass map churn. Entries are
// invalidated in O(1) by epoch tag: counts[l] is live only while
// mark[l] == epoch, and reset just bumps the epoch. touched records
// the labels seen for the current vertex so the argmax sweep visits
// exactly the nonzero counts (the rule — max count, min label on ties
// — is order-independent, so sweeping in first-seen order is as
// deterministic as sweeping a sorted set).
type lpScratch struct {
	counts  []int32
	mark    []uint32
	epoch   uint32
	touched []int64
}

func newLPScratch(n int) *lpScratch {
	return &lpScratch{
		counts:  make([]int32, n),
		mark:    make([]uint32, n),
		touched: make([]int64, 0, 64),
	}
}

// reset invalidates all counts for the next vertex.
func (s *lpScratch) reset() {
	s.epoch++
	if s.epoch == 0 {
		// Epoch wrapped: stale marks from 2^32 vertices ago would read as
		// current. Clear them and restart above zero.
		clear(s.mark)
		s.epoch = 1
	}
	s.touched = s.touched[:0]
}

// bump counts one neighbor carrying the given label.
func (s *lpScratch) bump(label int64) {
	if s.mark[label] != s.epoch {
		s.mark[label] = s.epoch
		s.counts[label] = 0
		s.touched = append(s.touched, label)
	}
	s.counts[label]++
}

// lpAdoptLabel computes one vertex's next label: the most frequent
// label among its undirected neighbors, smaller label winning ties.
// The rule is deterministic — min label among the max-count labels —
// so computing vertices in any order (or in parallel) yields identical
// labels. sc is per-worker scratch; the whole computation is
// allocation-free on the warm path (pinned by
// TestLabelPropagationAllocations).
func lpAdoptLabel(f *graph.Frozen, labels []int64, v int, sc *lpScratch) int64 {
	sc.reset()
	id := graph.VertexID(v)
	for _, eid := range f.Out(id) {
		sc.bump(labels[f.To(eid)])
	}
	for _, eid := range f.In(id) {
		sc.bump(labels[f.From(eid)])
	}
	if len(sc.touched) == 0 {
		return labels[v]
	}
	bestLabel, bestCount := labels[v], int32(0)
	for _, label := range sc.touched {
		if c := sc.counts[label]; c > bestCount || (c == bestCount && label < bestLabel) {
			bestLabel, bestCount = label, c
		}
	}
	return bestLabel
}

// LargestCommunity returns the community label with the most vertices of
// countType ("" counts all vertices) and the member vertices of that
// community — Q8: the largest community as measured by the number of
// "job" vertices. It reads the labels written by LabelPropagation.
func LargestCommunity(g *graph.Graph, communityProp, countType string) (label int64, members []graph.VertexID, err error) {
	counts := make(map[int64]int)
	found := false
	g.EachVertex(func(v *graph.Vertex) {
		l, ok := v.Prop(communityProp).(int64)
		if !ok {
			return
		}
		found = true
		if countType == "" || v.Type == countType {
			counts[l]++
		}
	})
	if !found {
		return 0, nil, fmt.Errorf("algo: no %q labels present; run LabelPropagation first", communityProp)
	}
	best := int64(-1)
	bestCount := -1
	var labelsSorted []int64
	for l := range counts {
		labelsSorted = append(labelsSorted, l)
	}
	sort.Slice(labelsSorted, func(i, j int) bool { return labelsSorted[i] < labelsSorted[j] })
	for _, l := range labelsSorted {
		if counts[l] > bestCount {
			best, bestCount = l, counts[l]
		}
	}
	g.EachVertex(func(v *graph.Vertex) {
		if l, ok := v.Prop(communityProp).(int64); ok && l == best {
			members = append(members, v.ID)
		}
	})
	return best, members, nil
}

// Reachable computes the full forward reachability set from src
// (unbounded hops), excluding src — the "blast radius" vertex set used
// by Q1-style impact analyses.
func Reachable(g *graph.Graph, src graph.VertexID) []graph.VertexID {
	out, _ := NewTraversal(g).ReachableContext(nil, src)
	if len(out) == 0 {
		return nil
	}
	return out
}

// ReachableContext is Reachable with cancellation.
func ReachableContext(ctx context.Context, g *graph.Graph, src graph.VertexID) ([]graph.VertexID, error) {
	return NewTraversal(g).ReachableContext(ctx, src)
}

// ReachableContext computes the forward reachability set (see
// Reachable) on the traversal's scratch. The result is scratch-backed:
// valid until the next call on this Traversal.
func (t *Traversal) ReachableContext(ctx context.Context, src graph.VertexID) ([]graph.VertexID, error) {
	out := t.buf[:0]
	t.visited.Add(int(src))
	defer func() {
		t.visited.Remove(int(src))
		for _, v := range out {
			t.visited.Remove(int(v))
		}
		t.buf = out[:0]
		t.frontier = t.frontier[:0]
	}()
	stack := append(t.frontier[:0], src)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range t.f.Out(v) {
			if err := t.tick(ctx); err != nil {
				t.frontier = stack
				return out, err
			}
			n := t.f.To(eid)
			if !t.visited.Has(int(n)) {
				t.visited.Add(int(n))
				out = append(out, n)
				stack = append(stack, n)
			}
		}
	}
	t.frontier = stack
	return out, nil
}
