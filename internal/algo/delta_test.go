package algo

import (
	"math/rand"
	"reflect"
	"testing"

	"kaskade/internal/graph"
)

// TestKernelsMatchRefreezeUnderMutation is the algo half of the
// delta-overlay equivalence coverage: every kernel run over a frozen
// snapshot carrying a tail must produce byte-identical results to the
// legacy refreeze lifecycle on an identical graph. The kernels walk the
// frozen accessors exclusively, so this pins the merged base+tail
// adjacency, endpoints, and vertex counts end to end.
func TestKernelsMatchRefreezeUnderMutation(t *testing.T) {
	build := func() *graph.Graph {
		rng := rand.New(rand.NewSource(31))
		g := graph.NewGraph(nil)
		for i := 0; i < 50; i++ {
			g.MustAddVertex("V", nil)
		}
		for i := 0; i < 200; i++ {
			g.MustAddEdge(graph.VertexID(rng.Intn(50)), graph.VertexID(rng.Intn(50)),
				"E", graph.Properties{"ts": int64(rng.Intn(40)), "w": int64(1 + rng.Intn(9))})
		}
		return g
	}
	gOv := build()
	gRf := build()
	gRf.SetDeltaOverlay(false)
	gOv.Freeze()
	gRf.Freeze()

	// Identical mutations: new vertices joined into the existing graph.
	mutate := func(g *graph.Graph) {
		rng := rand.New(rand.NewSource(53))
		base := 50
		for i := 0; i < 12; i++ {
			v := g.MustAddVertex("V", nil)
			g.MustAddEdge(graph.VertexID(rng.Intn(base)), v, "E",
				graph.Properties{"ts": int64(100 + i), "w": int64(2)})
			g.MustAddEdge(v, graph.VertexID(rng.Intn(base)), "E",
				graph.Properties{"ts": int64(200 + i), "w": int64(3)})
		}
	}
	mutate(gOv)
	mutate(gRf)
	if gRf.CachedFrozen() != nil {
		t.Fatal("refreeze baseline kept its snapshot; A/B exercises one lifecycle")
	}

	for _, src := range []graph.VertexID{0, 7, 55} {
		for _, k := range []int{1, 3} {
			for _, dir := range []Direction{Forward, Backward} {
				ov := KHopNeighborhood(gOv, src, k, dir)
				rf := KHopNeighborhood(gRf, src, k, dir)
				if !reflect.DeepEqual(ov, rf) {
					t.Fatalf("KHop(src=%d, k=%d, dir=%v): overlay %v, refreeze %v", src, k, dir, ov, rf)
				}
			}
		}
		ov := PathLengths(gOv, src, 4, "w")
		rf := PathLengths(gRf, src, 4, "w")
		if !reflect.DeepEqual(ov, rf) {
			t.Fatalf("PathLengths(src=%d): overlay %v, refreeze %v", src, ov, rf)
		}
		rOv := Reachable(gOv, src)
		rRf := Reachable(gRf, src)
		if !reflect.DeepEqual(rOv, rRf) {
			t.Fatalf("Reachable(src=%d): overlay %v, refreeze %v", src, rOv, rRf)
		}
	}
	lOv := LabelPropagation(gOv, 4, "")
	lRf := LabelPropagation(gRf, 4, "")
	if !reflect.DeepEqual(lOv, lRf) {
		t.Fatal("LabelPropagation diverged between overlay and refreeze")
	}
	if f := gOv.CachedFrozen(); f == nil {
		t.Fatal("overlay graph lost its snapshot")
	} else if _, te := f.TailSize(); te == 0 {
		t.Fatal("overlay graph has no tail; A/B exercised nothing")
	}
}
