package algo

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"kaskade/internal/graph"
)

// --- append-mode reference implementations ---
//
// These are the historical map-based kernels (pre-CSR), kept verbatim
// as the semantic reference the frozen implementations must reproduce
// byte-identically (same vertices, same order). PathLengths carries the
// current skip-missing-property semantics so the reference isolates the
// storage change from the (separately pinned) semantic fix.

func kHopRef(g *graph.Graph, src graph.VertexID, k int, dir Direction) []graph.VertexID {
	if k < 1 {
		return nil
	}
	edgesOf := func(v graph.VertexID) []graph.EdgeID {
		if dir == Forward {
			return g.Out(v)
		}
		return g.In(v)
	}
	neighbor := func(eid graph.EdgeID) graph.VertexID {
		if dir == Forward {
			return g.Edge(eid).To
		}
		return g.Edge(eid).From
	}
	visited := map[graph.VertexID]bool{src: true}
	frontier := []graph.VertexID{src}
	var out []graph.VertexID
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		var next []graph.VertexID
		for _, v := range frontier {
			for _, eid := range edgesOf(v) {
				n := neighbor(eid)
				if !visited[n] {
					visited[n] = true
					next = append(next, n)
					out = append(out, n)
				}
			}
		}
		frontier = next
	}
	return out
}

func pathLengthsRef(g *graph.Graph, src graph.VertexID, k int, prop string) map[graph.VertexID]int64 {
	dist := make(map[graph.VertexID]int64)
	type item struct {
		v    graph.VertexID
		agg  int64
		hops int
	}
	queue := []item{{v: src, agg: 0, hops: 0}}
	best := map[graph.VertexID]int64{src: 0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.hops == k {
			continue
		}
		for _, eid := range g.Out(cur.v) {
			e := g.Edge(eid)
			ts, ok := e.Prop(prop).(int64)
			if !ok {
				continue
			}
			agg := cur.agg
			if ts > agg {
				agg = ts
			}
			prev, seen := best[e.To]
			if !seen || agg < prev {
				best[e.To] = agg
				queue = append(queue, item{v: e.To, agg: agg, hops: cur.hops + 1})
				if e.To != src {
					dist[e.To] = agg
				}
			}
		}
	}
	return dist
}

func labelPropagationRef(g *graph.Graph, passes int) []int64 {
	n := g.NumVertices()
	labels := make([]int64, n)
	for i := range labels {
		labels[i] = int64(i)
	}
	next := make([]int64, n)
	counts := make(map[int64]int)
	for p := 0; p < passes; p++ {
		changed := false
		for v := 0; v < n; v++ {
			clear(counts)
			id := graph.VertexID(v)
			for _, eid := range g.Out(id) {
				counts[labels[g.Edge(eid).To]]++
			}
			for _, eid := range g.In(id) {
				counts[labels[g.Edge(eid).From]]++
			}
			if len(counts) == 0 {
				next[v] = labels[v]
				continue
			}
			bestLabel, bestCount := labels[v], 0
			for label, c := range counts {
				if c > bestCount || (c == bestCount && label < bestLabel) {
					bestLabel, bestCount = label, c
				}
			}
			next[v] = bestLabel
			if bestLabel != labels[v] {
				changed = true
			}
		}
		labels, next = next, labels
		if !changed {
			break
		}
	}
	return labels
}

func reachableRef(g *graph.Graph, src graph.VertexID) []graph.VertexID {
	visited := map[graph.VertexID]bool{src: true}
	stack := []graph.VertexID{src}
	var out []graph.VertexID
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range g.Out(v) {
			n := g.Edge(eid).To
			if !visited[n] {
				visited[n] = true
				out = append(out, n)
				stack = append(stack, n)
			}
		}
	}
	return out
}

// randomGraph builds a typed random graph with int64 "ts" properties on
// most edges (a fraction carry none, exercising the skip semantics).
func randomGraph(t testing.TB, seed int64, nv, ne int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewGraph(nil)
	types := []string{"Job", "File", "Task"}
	etypes := []string{"A", "B"}
	for i := 0; i < nv; i++ {
		g.MustAddVertex(types[rng.Intn(len(types))], nil)
	}
	for i := 0; i < ne; i++ {
		from := graph.VertexID(rng.Intn(nv))
		to := graph.VertexID(rng.Intn(nv))
		var props graph.Properties
		if rng.Intn(10) > 0 { // 90% of edges carry a timestamp
			props = graph.Properties{"ts": int64(rng.Intn(1000))}
		}
		g.MustAddEdge(from, to, etypes[rng.Intn(len(etypes))], props)
	}
	return g
}

func sameVertexSlice(t *testing.T, what string, want, got []graph.VertexID) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vertices, want %d", what, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: [%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

// TestFrozenKernelsMatchAppendReference is the frozen-vs-append
// equivalence suite for every kernel: identical results, identical
// order, across random graphs, hop budgets, directions, and (for the
// parallel variants) worker counts 1 and 4.
func TestFrozenKernelsMatchAppendReference(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		g := randomGraph(t, seed, 300, 1200)
		srcs := make([]graph.VertexID, 0, 40)
		for i := 0; i < 40; i++ {
			srcs = append(srcs, graph.VertexID((i*17)%g.NumVertices()))
		}
		tr := NewTraversal(g)
		for _, k := range []int{1, 2, 4} {
			for _, dir := range []Direction{Forward, Backward} {
				// Sequential Traversal (scratch reuse across sources).
				for _, s := range srcs {
					want := kHopRef(g, s, k, dir)
					sameVertexSlice(t, "KHop", want, tr.KHop(s, k, dir))
				}
				// Parallel per-source fan-out, deterministic merge.
				for _, workers := range []int{1, 4} {
					got, err := KHopNeighborhoods(context.Background(), g, srcs, k, dir, workers)
					if err != nil {
						t.Fatal(err)
					}
					for i, s := range srcs {
						sameVertexSlice(t, "KHopNeighborhoods", kHopRef(g, s, k, dir), got[i])
					}
				}
			}
			// PathLengths: map equality (order-free by construction).
			for _, s := range srcs[:10] {
				want := pathLengthsRef(g, s, k, "ts")
				got := PathLengths(g, s, k, "ts")
				if len(want) != len(got) {
					t.Fatalf("PathLengths(%d,k=%d): %d entries, want %d", s, k, len(got), len(want))
				}
				for v, agg := range want {
					if got[v] != agg {
						t.Fatalf("PathLengths(%d,k=%d)[%d] = %d, want %d", s, k, v, got[v], agg)
					}
				}
			}
			for _, workers := range []int{1, 4} {
				multi, err := PathLengthsMulti(context.Background(), g, srcs[:10], k, "ts", workers)
				if err != nil {
					t.Fatal(err)
				}
				for i, s := range srcs[:10] {
					want := pathLengthsRef(g, s, k, "ts")
					if len(want) != len(multi[i]) {
						t.Fatalf("PathLengthsMulti workers=%d src=%d: %d entries, want %d", workers, s, len(multi[i]), len(want))
					}
					for v, agg := range want {
						if multi[i][v] != agg {
							t.Fatalf("PathLengthsMulti workers=%d src=%d [%d] = %d, want %d", workers, s, v, multi[i][v], agg)
						}
					}
				}
			}
		}
		// Reachable.
		for _, s := range srcs[:10] {
			sameVertexSlice(t, "Reachable", reachableRef(g, s), Reachable(g, s))
		}
		// Label propagation, sequential and chunk-parallel.
		want := labelPropagationRef(g, 10)
		for _, workers := range []int{1, 4} {
			got, err := LabelPropagationParallel(context.Background(), g, 10, "", workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("LabelPropagationParallel workers=%d: label[%d] = %d, want %d", workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPathLengthsSkipsUntypedEdges pins the semantic fix: an edge whose
// aggregation property is missing or not an int64 is skipped — it
// neither contributes a 0 aggregate nor extends any path. (Previously
// `ts, _ := e.Prop(prop).(int64)` coerced such edges to timestamp 0.)
func TestPathLengthsSkipsUntypedEdges(t *testing.T) {
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	c := g.MustAddVertex("V", nil)
	d := g.MustAddVertex("V", nil)
	g.MustAddEdge(a, b, "E", graph.Properties{"ts": int64(5)})
	g.MustAddEdge(b, c, "E", nil)                                  // no ts: not traversable
	g.MustAddEdge(a, d, "E", graph.Properties{"ts": "not-an-int"}) // wrong type: not traversable
	dist := PathLengths(g, a, 4, "ts")
	if got, ok := dist[b], true; !ok || got != 5 {
		t.Errorf("dist[b] = %d (present=%v), want 5", got, ok)
	}
	if _, ok := dist[c]; ok {
		t.Error("c reachable only through a ts-less edge; must be absent")
	}
	if _, ok := dist[d]; ok {
		t.Error("d reachable only through a non-int64 ts edge; must be absent")
	}
}

// TestTraversalContextCancellation proves prompt cancellation with no
// goroutine leaks: a parallel per-source sweep over a dense graph is
// cancelled mid-flight; the call must return the context's error
// quickly and every pool goroutine must drain.
func TestTraversalContextCancellation(t *testing.T) {
	g := randomGraph(t, 5, 2000, 20000)
	srcs := make([]graph.VertexID, g.NumVertices())
	for i := range srcs {
		srcs[i] = graph.VertexID(i)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := KHopNeighborhoods(ctx, g, srcs, 6, Forward, 4)
	if err == nil {
		// The sweep may legitimately win the race; rerun pre-cancelled.
		ctx2, cancel2 := context.WithCancel(context.Background())
		cancel2()
		if _, err2 := KHopNeighborhoods(ctx2, g, srcs, 6, Forward, 4); err2 != context.Canceled {
			t.Fatalf("pre-cancelled sweep: err = %v, want context.Canceled", err2)
		}
	} else if err != context.Canceled {
		t.Fatalf("cancelled sweep: err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}

	// Label propagation cancels between chunks.
	ctx3, cancel3 := context.WithCancel(context.Background())
	cancel3()
	if _, err := LabelPropagationParallel(ctx3, g, 50, "", 4); err != context.Canceled {
		t.Fatalf("cancelled label propagation: err = %v, want context.Canceled", err)
	}

	// All pool goroutines must have drained (allow the runtime a moment).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestKHopHotPathAllocations is the allocation-regression guard on the
// k-hop hot path: with a warm Traversal (the per-source loop shape of
// Q1-Q4), a traversal performs no per-call heap allocation — the win
// over the historical map[VertexID]bool visited sets.
func TestKHopHotPathAllocations(t *testing.T) {
	g := randomGraph(t, 9, 500, 3000)
	tr := NewTraversal(g)
	src := graph.VertexID(1)
	// Warm the scratch buffers to their steady-state capacity.
	for i := 0; i < 10; i++ {
		tr.KHop(graph.VertexID(i), 4, Forward)
	}
	allocs := testing.AllocsPerRun(200, func() {
		tr.KHop(src, 4, Forward)
	})
	if allocs > 0 {
		t.Errorf("KHop hot path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestLabelPropagationAllocations is the allocation-regression guard on
// the label-adoption hot path: with a warm lpScratch, computing a
// vertex's next label allocates nothing — the win of the epoch-tagged
// flat counts over the historical per-worker map[int64]int.
func TestLabelPropagationAllocations(t *testing.T) {
	g := randomGraph(t, 17, 500, 3000)
	f := g.Freeze()
	n := f.NumVertices()
	labels := make([]int64, n)
	for i := range labels {
		labels[i] = int64(i)
	}
	sc := newLPScratch(n)
	// Warm the touched slice past any realistic degree.
	for v := 0; v < n; v++ {
		lpAdoptLabel(f, labels, v, sc)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for v := 0; v < 64; v++ {
			lpAdoptLabel(f, labels, v, sc)
		}
	})
	if allocs > 0 {
		t.Errorf("label adoption allocates %.1f objects per 64 vertices, want 0", allocs)
	}
}

// BenchmarkAlgoKHop prices the frozen bitset k-hop against the
// map-based append-mode reference (the Fig. 7 Q2/Q3 hot path).
func BenchmarkAlgoKHop(b *testing.B) {
	g := randomGraph(b, 3, 2000, 12000)
	srcs := make([]graph.VertexID, 100)
	for i := range srcs {
		srcs[i] = graph.VertexID(i * 13 % g.NumVertices())
	}
	b.Run("append", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range srcs {
				kHopRef(g, s, 4, Forward)
			}
		}
	})
	b.Run("frozen", func(b *testing.B) {
		tr := NewTraversal(g)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, s := range srcs {
				tr.KHop(s, 4, Forward)
			}
		}
	})
}

// BenchmarkAlgoLabelPropagation prices a label-propagation pass on the
// frozen layout against the append-mode reference (Q7).
func BenchmarkAlgoLabelPropagation(b *testing.B) {
	g := randomGraph(b, 4, 3000, 18000)
	b.Run("append", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			labelPropagationRef(g, 10)
		}
	})
	b.Run("frozen", func(b *testing.B) {
		g.Freeze()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := LabelPropagationParallel(context.Background(), g, 10, "", 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAlgoPathLengths prices Q4's per-path aggregation.
func BenchmarkAlgoPathLengths(b *testing.B) {
	g := randomGraph(b, 6, 2000, 12000)
	srcs := make([]graph.VertexID, 50)
	for i := range srcs {
		srcs[i] = graph.VertexID(i * 31 % g.NumVertices())
	}
	b.Run("append", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, s := range srcs {
				pathLengthsRef(g, s, 4, "ts")
			}
		}
	})
	b.Run("frozen", func(b *testing.B) {
		tr := NewTraversal(g)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, s := range srcs {
				if _, err := tr.PathLengthsContext(nil, s, 4, "ts"); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
