package algo

import (
	"testing"

	"kaskade/internal/graph"
)

// chain builds a -> b -> c -> d with timestamps 5, 2, 9.
func chain(t testing.TB) (*graph.Graph, []graph.VertexID) {
	t.Helper()
	g := graph.NewGraph(nil)
	ids := make([]graph.VertexID, 4)
	for i := range ids {
		ids[i] = g.MustAddVertex("V", nil)
	}
	g.MustAddEdge(ids[0], ids[1], "E", graph.Properties{"ts": int64(5)})
	g.MustAddEdge(ids[1], ids[2], "E", graph.Properties{"ts": int64(2)})
	g.MustAddEdge(ids[2], ids[3], "E", graph.Properties{"ts": int64(9)})
	return g, ids
}

func TestKHopNeighborhoodForward(t *testing.T) {
	g, ids := chain(t)
	got := KHopNeighborhood(g, ids[0], 2, Forward)
	if len(got) != 2 || got[0] != ids[1] || got[1] != ids[2] {
		t.Errorf("2-hop forward = %v, want [b c]", got)
	}
	all := KHopNeighborhood(g, ids[0], 10, Forward)
	if len(all) != 3 {
		t.Errorf("10-hop forward = %v, want 3 vertices", all)
	}
	if KHopNeighborhood(g, ids[0], 0, Forward) != nil {
		t.Error("k=0 should be empty")
	}
}

func TestKHopNeighborhoodBackward(t *testing.T) {
	g, ids := chain(t)
	got := KHopNeighborhood(g, ids[3], 2, Backward)
	if len(got) != 2 || got[0] != ids[2] || got[1] != ids[1] {
		t.Errorf("2-hop backward = %v, want [c b]", got)
	}
}

func TestKHopNeighborhoodNoDoubleCount(t *testing.T) {
	// Diamond: a->b, a->c, b->d, c->d. d reached once.
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	c := g.MustAddVertex("V", nil)
	d := g.MustAddVertex("V", nil)
	g.MustAddEdge(a, b, "E", nil)
	g.MustAddEdge(a, c, "E", nil)
	g.MustAddEdge(b, d, "E", nil)
	g.MustAddEdge(c, d, "E", nil)
	got := KHopNeighborhood(g, a, 2, Forward)
	if len(got) != 3 {
		t.Errorf("diamond 2-hop = %v, want 3 distinct vertices", got)
	}
}

func TestPathLengths(t *testing.T) {
	g, ids := chain(t)
	dist := PathLengths(g, ids[0], 3, "ts")
	// b: max(5)=5; c: max(5,2)=5; d: max(5,2,9)=9.
	if dist[ids[1]] != 5 || dist[ids[2]] != 5 || dist[ids[3]] != 9 {
		t.Errorf("path aggregates = %v", dist)
	}
	// Bounded hops exclude d.
	dist = PathLengths(g, ids[0], 2, "ts")
	if _, ok := dist[ids[3]]; ok {
		t.Error("d reachable within 2 hops?")
	}
}

func TestPathLengthsPicksSmallerAggregate(t *testing.T) {
	// Two paths to c: via b (max ts 9) and direct (ts 3): keep 3.
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	c := g.MustAddVertex("V", nil)
	g.MustAddEdge(a, b, "E", graph.Properties{"ts": int64(9)})
	g.MustAddEdge(b, c, "E", graph.Properties{"ts": int64(1)})
	g.MustAddEdge(a, c, "E", graph.Properties{"ts": int64(3)})
	dist := PathLengths(g, a, 4, "ts")
	if dist[c] != 3 {
		t.Errorf("dist[c] = %d, want 3 (smaller max over paths)", dist[c])
	}
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	// Two triangles joined by a single edge: communities should align
	// with the triangles.
	g := graph.NewGraph(nil)
	v := make([]graph.VertexID, 6)
	for i := range v {
		v[i] = g.MustAddVertex("V", nil)
	}
	tri := func(a, b, c graph.VertexID) {
		g.MustAddEdge(a, b, "E", nil)
		g.MustAddEdge(b, c, "E", nil)
		g.MustAddEdge(c, a, "E", nil)
	}
	tri(v[0], v[1], v[2])
	tri(v[3], v[4], v[5])
	g.MustAddEdge(v[2], v[3], "E", nil)

	labels := LabelPropagation(g, 25, "community")
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("first triangle split: %v", labels[:3])
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Errorf("second triangle split: %v", labels[3:])
	}
	// Labels persisted as properties.
	if g.Vertex(v[0]).Prop("community") != labels[0] {
		t.Error("community property not written")
	}
}

func TestLabelPropagationDeterminism(t *testing.T) {
	g, _ := chain(t)
	l1 := LabelPropagation(g, 10, "")
	l2 := LabelPropagation(g, 10, "")
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("nondeterministic labels at %d", i)
		}
	}
}

func TestLargestCommunity(t *testing.T) {
	g := graph.NewGraph(nil)
	// Community 0: two Jobs and a File; community 1: one Job.
	a := g.MustAddVertex("Job", graph.Properties{"community": int64(0)})
	b := g.MustAddVertex("Job", graph.Properties{"community": int64(0)})
	g.MustAddVertex("File", graph.Properties{"community": int64(0)})
	g.MustAddVertex("Job", graph.Properties{"community": int64(1)})

	label, members, err := LargestCommunity(g, "community", "Job")
	if err != nil {
		t.Fatal(err)
	}
	if label != 0 {
		t.Errorf("label = %d, want 0", label)
	}
	if len(members) != 3 { // all members of community 0, any type
		t.Errorf("members = %v, want 3", members)
	}
	_ = a
	_ = b
	// Missing labels error.
	g2 := graph.NewGraph(nil)
	g2.MustAddVertex("Job", nil)
	if _, _, err := LargestCommunity(g2, "community", ""); err == nil {
		t.Error("missing labels accepted")
	}
}

func TestReachable(t *testing.T) {
	g, ids := chain(t)
	r := Reachable(g, ids[1])
	if len(r) != 2 {
		t.Errorf("reachable from b = %v, want [c d]", r)
	}
	// Cycles terminate.
	g.MustAddEdge(ids[3], ids[0], "E", nil)
	r = Reachable(g, ids[0])
	if len(r) != 3 {
		t.Errorf("reachable with cycle = %v, want 3", r)
	}
}
