// Parallel traversal variants: per-source fan-out (the shape of the
// Fig. 7 workload queries Q1-Q4) and per-round label propagation. Both
// run on internal/par's worker pool and merge deterministically — a
// per-source result lands in its source's index slot, and a label pass
// computes every vertex's next label from the same immutable previous
// labels — so results are identical to the sequential kernels at any
// worker count.
package algo

import (
	"context"
	"runtime"

	"kaskade/internal/graph"
	"kaskade/internal/par"
)

// ForEachSource runs fn(t, i, srcs[i]) for every source index on up to
// `workers` goroutines (0 or 1 = sequential, negative = one per
// available CPU), giving each worker a private Traversal over g. fn
// must write its result into a per-index slot (slice element i) — the
// deterministic merge — and must not touch shared mutable state. The
// first error in source order is returned; on cancellation, ctx's error
// is returned even when no fn observed it (unclaimed sources never
// run).
func ForEachSource(ctx context.Context, g *graph.Graph, srcs []graph.VertexID, workers int, fn func(t *Traversal, i int, src graph.VertexID) error) error {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	f := g.Freeze()
	if workers <= 1 || len(srcs) < 2 {
		t := NewFrozenTraversal(f)
		for i, s := range srcs {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := fn(t, i, s); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(srcs))
	par.DoContext(ctx, len(srcs), workers, func(next func() (int, bool)) {
		t := NewFrozenTraversal(f)
		for {
			i, ok := next()
			if !ok {
				return
			}
			errs[i] = fn(t, i, srcs[i])
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// KHopNeighborhoods computes KHopNeighborhood for every source on up to
// `workers` goroutines; result i is source i's neighborhood (copied out
// of worker scratch, so all results are valid together). Results are
// identical to calling KHopNeighborhood per source, in any worker
// configuration.
func KHopNeighborhoods(ctx context.Context, g *graph.Graph, srcs []graph.VertexID, k int, dir Direction, workers int) ([][]graph.VertexID, error) {
	out := make([][]graph.VertexID, len(srcs))
	err := ForEachSource(ctx, g, srcs, workers, func(t *Traversal, i int, s graph.VertexID) error {
		nb, err := t.KHopContext(ctx, s, k, dir)
		if err != nil {
			return err
		}
		if len(nb) > 0 {
			out[i] = append([]graph.VertexID(nil), nb...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PathLengthsMulti computes PathLengths for every source on up to
// `workers` goroutines; result i is source i's per-vertex aggregate
// map. Results are identical to calling PathLengths per source.
func PathLengthsMulti(ctx context.Context, g *graph.Graph, srcs []graph.VertexID, k int, prop string, workers int) ([]map[graph.VertexID]int64, error) {
	out := make([]map[graph.VertexID]int64, len(srcs))
	err := ForEachSource(ctx, g, srcs, workers, func(t *Traversal, i int, s graph.VertexID) error {
		dist, err := t.PathLengthsContext(ctx, s, k, prop)
		if err != nil {
			return err
		}
		out[i] = dist
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// lpChunkSize is the vertex-range granularity of a parallel label
// propagation pass (over-decomposed so fast workers steal skewed tail
// work, like the matcher's candidate chunks).
const lpChunkSize = 2048

// LabelPropagationParallel is LabelPropagation with each pass's
// per-vertex label adoption fanned out over up to `workers` goroutines
// (0 or 1 = sequential, negative = one per available CPU). A pass
// computes every vertex's next label from the same immutable previous
// labels — synchronous propagation — so the labels are identical to the
// sequential kernel at any worker count. ctx is polled once per chunk;
// on cancellation the passes stop and ctx's error is returned.
func LabelPropagationParallel(ctx context.Context, g *graph.Graph, passes int, communityProp string, workers int) ([]int64, error) {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	f := g.Freeze()
	n := f.NumVertices()
	labels := make([]int64, n)
	for i := range labels {
		labels[i] = int64(i)
	}
	next := make([]int64, n)
	numChunks := (n + lpChunkSize - 1) / lpChunkSize
	changedBy := make([]bool, numChunks)

	// Per-worker adoption scratch, recycled through a free-list channel
	// so the flat count/mark arrays are allocated at most once per
	// worker slot for the whole run, not once per pass (the old
	// map[int64]int was rebuilt by every worker every pass). At most
	// max(workers, 1) scratches are checked out at once, so the
	// buffered return below never blocks.
	free := make(chan *lpScratch, max(workers, 1))

	// par.DoContext runs the claim loop inline when workers <= 1 and
	// polls ctx in next() either way, so one code path serves both.
	runPass := func() error {
		par.DoContext(ctx, numChunks, max(workers, 1), func(nx func() (int, bool)) {
			var sc *lpScratch
			select {
			case sc = <-free:
			default:
				sc = newLPScratch(n)
			}
			defer func() { free <- sc }()
			for {
				ci, ok := nx()
				if !ok {
					return
				}
				lo := ci * lpChunkSize
				hi := min(lo+lpChunkSize, n)
				changed := false
				for v := lo; v < hi; v++ {
					next[v] = lpAdoptLabel(f, labels, v, sc)
					if next[v] != labels[v] {
						changed = true
					}
				}
				changedBy[ci] = changed
			}
		})
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}

	for p := 0; p < passes; p++ {
		for i := range changedBy {
			changedBy[i] = false
		}
		if err := runPass(); err != nil {
			return nil, err
		}
		labels, next = next, labels
		changed := false
		for _, c := range changedBy {
			changed = changed || c
		}
		if !changed {
			break
		}
	}
	if communityProp != "" {
		for v := 0; v < n; v++ {
			g.Vertex(graph.VertexID(v)).SetProp(communityProp, labels[v])
		}
	}
	return labels, nil
}
