package prolog

import (
	"fmt"
	"io"
	"strings"
)

// Clause is a stored program clause Head :- Body. Facts have Body == nil
// (treated as true).
type Clause struct {
	Head Term
	Body Term // nil for facts
}

// Machine is a Prolog interpreter instance: a clause database plus solver
// state. A Machine is not safe for concurrent use; Kaskade builds one per
// enumeration run (they are cheap).
type Machine struct {
	db    map[string][]*Clause // functor/arity -> clauses in assertion order
	order []string             // deterministic listing order

	trail    []*Var
	steps    int64
	MaxSteps int64     // inference step budget; <=0 means DefaultMaxSteps
	MaxDepth int       // recursion depth bound; <=0 means DefaultMaxDepth
	Out      io.Writer // destination for write/1 and nl/0; nil discards
}

// Steps returns the number of inference steps consumed by the most recent
// query — the enumeration-effort metric used by the search-space ablation.
func (m *Machine) Steps() int64 { return m.steps }

// Default solver guards. View enumeration over mined constraints is
// heavily pruned, so these are generous.
const (
	DefaultMaxSteps = 50_000_000
	DefaultMaxDepth = 100_000
)

// ErrStepLimit is returned when a query exceeds the machine's inference
// step budget, which usually indicates an unbounded rule (exactly the
// failure mode constraint injection is designed to avoid, §IV-A2).
var ErrStepLimit = fmt.Errorf("prolog: inference step limit exceeded")

// ErrDepthLimit is returned when resolution exceeds the recursion bound.
var ErrDepthLimit = fmt.Errorf("prolog: recursion depth limit exceeded")

// NewMachine returns a machine preloaded with the library predicates
// (member/2, append/3, foldl/4-6, convlist/3, ...).
func NewMachine() *Machine {
	m := &Machine{db: make(map[string][]*Clause)}
	if err := m.ConsultString(stdlib); err != nil {
		panic("prolog: stdlib failed to load: " + err.Error())
	}
	return m
}

// ConsultString parses Prolog source text (clauses and facts separated by
// '.') and asserts every clause, in order, at the end of the database.
func (m *Machine) ConsultString(src string) error {
	clauses, err := ParseProgram(src)
	if err != nil {
		return err
	}
	for _, c := range clauses {
		if err := m.Assertz(c); err != nil {
			return err
		}
	}
	return nil
}

// Assertz appends a clause to its predicate's clause list.
func (m *Machine) Assertz(c *Clause) error {
	key := Indicator(c.Head)
	if key == "" {
		return fmt.Errorf("prolog: assert: head %s is not callable", TermString(c.Head))
	}
	if builtins[key] != nil {
		return fmt.Errorf("prolog: assert: cannot redefine builtin %s", key)
	}
	if _, seen := m.db[key]; !seen {
		m.order = append(m.order, key)
	}
	m.db[key] = append(m.db[key], c)
	return nil
}

// AssertFact parses and asserts a single fact or rule given as text,
// e.g. m.AssertFact("schemaEdge('Job','File','WRITES_TO')").
func (m *Machine) AssertFact(src string) error {
	if !strings.HasSuffix(strings.TrimSpace(src), ".") {
		src = src + "."
	}
	return m.ConsultString(src)
}

// Predicates returns the user-defined predicate indicators in definition
// order (for listing/debugging).
func (m *Machine) Predicates() []string {
	return append([]string(nil), m.order...)
}

// clausesFor returns the clauses for a callable term's indicator.
func (m *Machine) clausesFor(goal Term) []*Clause {
	return m.db[Indicator(goal)]
}

// Solution is one answer to a query: the query's named variables resolved
// to ground-ish terms (unbound variables may remain).
type Solution map[string]Term

// Get returns the binding for a variable name.
func (s Solution) Get(name string) Term { return s[name] }

// Atom returns the binding for name as an atom string, or "" if it is not
// an atom.
func (s Solution) Atom(name string) string {
	if a, ok := deref(s[name]).(Atom); ok {
		return string(a)
	}
	return ""
}

// Int returns the binding for name as an int64, or 0 if it is not an
// integer.
func (s Solution) Int(name string) int64 {
	if i, ok := deref(s[name]).(Int); ok {
		return int64(i)
	}
	return 0
}

// Query parses a goal (e.g. "kHopConnector(X,Y,XT,YT,K)") and returns all
// solutions in SLD order. The limit caps the number of solutions; limit<=0
// means unlimited.
func (m *Machine) Query(goal string, limit int) ([]Solution, error) {
	g, vars, err := ParseQuery(goal)
	if err != nil {
		return nil, err
	}
	var out []Solution
	err = m.SolveTerm(g, func() bool {
		sol := make(Solution, len(vars))
		for name, v := range vars {
			sol[name] = Resolve(v)
		}
		out = append(out, sol)
		return limit > 0 && len(out) >= limit
	})
	return out, err
}

// QueryOnce runs the goal and reports whether at least one solution
// exists (returning it if so).
func (m *Machine) QueryOnce(goal string) (Solution, bool, error) {
	sols, err := m.Query(goal, 1)
	if err != nil || len(sols) == 0 {
		return nil, false, err
	}
	return sols[0], true, nil
}

// SolveTerm proves the goal term, invoking yield once per solution while
// the solution's bindings are in place. Returning true from yield stops
// the search. SolveTerm resets the step counter.
func (m *Machine) SolveTerm(goal Term, yield func() (stop bool)) error {
	m.steps = 0
	mark := len(m.trail)
	defer m.undoTo(mark)
	_, err := m.solve(goal, 0, func() (bool, error) { return yield(), nil })
	if isCut(err) {
		err = nil
	}
	return err
}

// bindVar binds v to t and records it on the trail for backtracking.
func (m *Machine) bindVar(v *Var, t Term) {
	v.Ref = t
	m.trail = append(m.trail, v)
}

// undoTo unwinds the trail to a previous mark, unbinding variables.
func (m *Machine) undoTo(mark int) {
	for i := len(m.trail) - 1; i >= mark; i-- {
		m.trail[i].Ref = nil
	}
	m.trail = m.trail[:mark]
}

// unify attempts to unify a and b, trailing bindings; it reports success.
// On failure the caller is responsible for undoing to its own mark (the
// solver always does). Unlike most Prologs, unification performs the
// occurs check: X = f(X) fails instead of building a cyclic term. Terms
// in Kaskade's rules are tiny, and totality of Resolve/compare is worth
// the linear walk.
func (m *Machine) unify(a, b Term) bool {
	a, b = deref(a), deref(b)
	if a == b {
		return true
	}
	if av, ok := a.(*Var); ok {
		if occurs(av, b) {
			return false
		}
		m.bindVar(av, b)
		return true
	}
	if bv, ok := b.(*Var); ok {
		if occurs(bv, a) {
			return false
		}
		m.bindVar(bv, a)
		return true
	}
	switch a := a.(type) {
	case Atom:
		b, ok := b.(Atom)
		return ok && a == b
	case Int:
		b, ok := b.(Int)
		return ok && a == b
	case Float:
		b, ok := b.(Float)
		return ok && a == b
	case *Compound:
		bc, ok := b.(*Compound)
		if !ok || a.Functor != bc.Functor || len(a.Args) != len(bc.Args) {
			return false
		}
		for i := range a.Args {
			if !m.unify(a.Args[i], bc.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// occurs reports whether unbound variable v appears inside t.
func occurs(v *Var, t Term) bool {
	switch t := deref(t).(type) {
	case *Var:
		return t == v
	case *Compound:
		for _, a := range t.Args {
			if occurs(v, a) {
				return true
			}
		}
	}
	return false
}

// Unify exposes unification for tests and for fact construction; bindings
// persist until the next query resets the trail, so it is mostly useful on
// scratch machines.
func (m *Machine) Unify(a, b Term) bool {
	mark := len(m.trail)
	if m.unify(a, b) {
		return true
	}
	m.undoTo(mark)
	return false
}
