package prolog

// stdlib is the library of list/control predicates written in Prolog
// itself and consulted into every new Machine. It provides the predicates
// the paper's view templates and constraint mining rules rely on
// (member/2, append/3, foldl/4, convlist/3, ...).
const stdlib = `
% --- list membership and construction ---

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

memberchk(X, L) :- member(X, L), !.

append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

reverse(L, R) :- reverse_(L, [], R).
reverse_([], Acc, Acc).
reverse_([H|T], Acc, R) :- reverse_(T, [H|Acc], R).

last([X], X).
last([_|T], X) :- last(T, X).

nth0(I, L, E) :- nth_(L, 0, I, E).
nth1(I, L, E) :- nth_(L, 1, I, E).
nth_([H|_], N, N, H).
nth_([_|T], N0, N, E) :- N1 is N0 + 1, nth_(T, N1, N, E).

% --- arithmetic over lists ---

sum_list(L, S) :- foldl(plus_, L, 0, S).
plus_(X, A, R) :- R is A + X.

max_list([H|T], M) :- foldl(max_, T, H, M).
max_(X, A, R) :- R is max(A, X).

min_list([H|T], M) :- foldl(min_, T, H, M).
min_(X, A, R) :- R is min(A, X).

% --- higher-order predicates ---

maplist(_, []).
maplist(G, [X|Xs]) :- call(G, X), maplist(G, Xs).

maplist(_, [], []).
maplist(G, [X|Xs], [Y|Ys]) :- call(G, X, Y), maplist(G, Xs, Ys).

maplist(_, [], [], []).
maplist(G, [X|Xs], [Y|Ys], [Z|Zs]) :- call(G, X, Y, Z), maplist(G, Xs, Ys, Zs).

foldl(_, [], A, A).
foldl(G, [X|Xs], A0, A) :- call(G, X, A0, A1), foldl(G, Xs, A1, A).

foldl(_, [], [], A, A).
foldl(G, [X|Xs], [Y|Ys], A0, A) :- call(G, X, Y, A0, A1), foldl(G, Xs, Ys, A1, A).

% convlist(G, In, Out): apply G to each element, keeping the results for
% the elements on which G succeeds.
convlist(_, [], []).
convlist(G, [X|Xs], Out) :-
    ( call(G, X, Y) -> Out = [Y|Rest] ; Out = Rest ),
    convlist(G, Xs, Rest).

% include/exclude by predicate.
include(_, [], []).
include(G, [X|Xs], Out) :-
    ( call(G, X) -> Out = [X|Rest] ; Out = Rest ),
    include(G, Xs, Rest).

exclude(_, [], []).
exclude(G, [X|Xs], Out) :-
    ( call(G, X) -> Out = Rest ; Out = [X|Rest] ),
    exclude(G, Xs, Rest).

forall(C, A) :- \+ (C, \+ A).

% --- misc ---

ignore(G) :- ( call(G) -> true ; true ).

once(G) :- call(G), !.
`
