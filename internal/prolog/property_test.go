package prolog

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randTerm builds a random ground-ish term from a seed stream.
func randTerm(rng *rand.Rand, depth int, vars []*Var) Term {
	switch n := rng.Intn(6); {
	case n == 0 && len(vars) > 0:
		return vars[rng.Intn(len(vars))]
	case n <= 2:
		return Atom([]string{"a", "b", "c", "f", "g"}[rng.Intn(5)])
	case n == 3:
		return Int(rng.Intn(10))
	default:
		if depth <= 0 {
			return Atom("leaf")
		}
		arity := 1 + rng.Intn(3)
		args := make([]Term, arity)
		for i := range args {
			args[i] = randTerm(rng, depth-1, vars)
		}
		return Comp([]string{"f", "g", "h"}[rng.Intn(3)], args...)
	}
}

// TestUnifySymmetric: unify(a,b) succeeds iff unify(b,a) does.
func TestUnifySymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars := []*Var{NewVar("X"), NewVar("Y"), NewVar("Z")}
		a := randTerm(rng, 3, vars)
		b := randTerm(rng, 3, vars)

		m1 := &Machine{db: map[string][]*Clause{}}
		ok1 := m1.Unify(a, b)
		m1.undoTo(0)

		m2 := &Machine{db: map[string][]*Clause{}}
		ok2 := m2.Unify(b, a)
		m2.undoTo(0)
		return ok1 == ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestUnifyReflexive: every term unifies with itself, and after undo the
// variables are unbound again.
func TestUnifyReflexive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars := []*Var{NewVar("X"), NewVar("Y")}
		a := randTerm(rng, 3, vars)
		m := &Machine{db: map[string][]*Clause{}}
		if !m.Unify(a, a) {
			return false
		}
		m.undoTo(0)
		for _, v := range vars {
			if v.Ref != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestUnifyMakesEqual: when unification succeeds, both sides resolve to
// structurally identical terms.
func TestUnifyMakesEqual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vars := []*Var{NewVar("X"), NewVar("Y"), NewVar("Z")}
		a := randTerm(rng, 3, vars)
		b := randTerm(rng, 3, vars)
		m := &Machine{db: map[string][]*Clause{}}
		if !m.Unify(a, b) {
			return true // nothing to check
		}
		equal := compareTerms(Resolve(a), Resolve(b)) == 0
		m.undoTo(0)
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSortIdempotent: sort/2 output is sorted, deduplicated, and stable
// under re-sorting.
func TestSortIdempotent(t *testing.T) {
	f := func(xs []int8) bool {
		elems := make([]Term, len(xs))
		for i, x := range xs {
			elems[i] = Int(x)
		}
		sorted := sortUnique(append([]Term(nil), elems...))
		for i := 1; i < len(sorted); i++ {
			if compareTerms(sorted[i-1], sorted[i]) >= 0 {
				return false
			}
		}
		again := sortUnique(append([]Term(nil), sorted...))
		if len(again) != len(sorted) {
			return false
		}
		for i := range again {
			if compareTerms(again[i], sorted[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTermOrderTotal: compareTerms is antisymmetric and transitive on
// random term triples.
func TestTermOrderTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randTerm(rng, 2, nil)
		b := randTerm(rng, 2, nil)
		c := randTerm(rng, 2, nil)
		// Antisymmetry.
		if sign(compareTerms(a, b)) != -sign(compareTerms(b, a)) {
			return false
		}
		// Transitivity: a<=b && b<=c => a<=c.
		if compareTerms(a, b) <= 0 && compareTerms(b, c) <= 0 && compareTerms(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

// TestListRoundTrip: MkList/ListSlice are inverse.
func TestListRoundTrip(t *testing.T) {
	f := func(xs []int16) bool {
		elems := make([]Term, len(xs))
		for i, x := range xs {
			elems[i] = Int(x)
		}
		back, ok := ListSlice(MkList(elems...))
		if !ok || len(back) != len(elems) {
			return false
		}
		for i := range back {
			if compareTerms(back[i], elems[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQueryDeterminism: the same program and query yield the same
// solutions in the same order, twice.
func TestQueryDeterminism(t *testing.T) {
	prog := `
		edge(a,b). edge(b,c). edge(a,c). edge(c,d).
		path(X,Y) :- edge(X,Y).
		path(X,Y) :- edge(X,Z), path(Z,Y).
	`
	run := func() []string {
		m := NewMachine()
		if err := m.ConsultString(prog); err != nil {
			t.Fatal(err)
		}
		sols, err := m.Query("path(a, W)", 0)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, s := range sols {
			out = append(out, s.Atom("W"))
		}
		return out
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %v vs %v", r1, r2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("solution %d differs: %v vs %v", i, r1, r2)
		}
	}
}
