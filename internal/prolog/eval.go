package prolog

import (
	"fmt"
	"math"
)

// EvalArith evaluates an arithmetic expression term (the right-hand side
// of is/2 and the operands of numeric comparisons) to an Int or Float.
// Integer results are kept integral; / promotes to Float unless the
// division is exact, matching SWI-Prolog's default behaviour.
func EvalArith(t Term) (Term, error) {
	t = deref(t)
	switch t := t.(type) {
	case Int:
		return t, nil
	case Float:
		return t, nil
	case *Var:
		return nil, fmt.Errorf("prolog: arithmetic: unbound variable")
	case Atom:
		switch t {
		case "pi":
			return Float(math.Pi), nil
		case "e":
			return Float(math.E), nil
		case "inf", "infinite":
			return Float(math.Inf(1)), nil
		}
		return nil, fmt.Errorf("prolog: arithmetic: unknown constant %s", t)
	case *Compound:
		return evalCompound(t)
	}
	return nil, fmt.Errorf("prolog: arithmetic: cannot evaluate %s", TermString(t))
}

func evalCompound(c *Compound) (Term, error) {
	if len(c.Args) == 1 {
		x, err := EvalArith(c.Args[0])
		if err != nil {
			return nil, err
		}
		switch c.Functor {
		case "-":
			if i, ok := x.(Int); ok {
				return -i, nil
			}
			return -(x.(Float)), nil
		case "+":
			return x, nil
		case "abs":
			if i, ok := x.(Int); ok {
				if i < 0 {
					return -i, nil
				}
				return i, nil
			}
			return Float(math.Abs(float64(x.(Float)))), nil
		case "sign":
			switch v := x.(type) {
			case Int:
				switch {
				case v > 0:
					return Int(1), nil
				case v < 0:
					return Int(-1), nil
				}
				return Int(0), nil
			case Float:
				switch {
				case v > 0:
					return Float(1), nil
				case v < 0:
					return Float(-1), nil
				}
				return Float(0), nil
			}
		case "float":
			return Float(toF(x)), nil
		case "integer", "truncate":
			return Int(int64(toF(x))), nil
		case "floor":
			return Int(int64(math.Floor(toF(x)))), nil
		case "ceiling":
			return Int(int64(math.Ceil(toF(x)))), nil
		case "sqrt":
			return Float(math.Sqrt(toF(x))), nil
		case "log":
			return Float(math.Log(toF(x))), nil
		case "exp":
			return Float(math.Exp(toF(x))), nil
		}
		return nil, fmt.Errorf("prolog: arithmetic: unknown function %s/1", c.Functor)
	}
	if len(c.Args) != 2 {
		return nil, fmt.Errorf("prolog: arithmetic: unknown function %s/%d", c.Functor, len(c.Args))
	}
	a, err := EvalArith(c.Args[0])
	if err != nil {
		return nil, err
	}
	b, err := EvalArith(c.Args[1])
	if err != nil {
		return nil, err
	}
	ai, aInt := a.(Int)
	bi, bInt := b.(Int)
	bothInt := aInt && bInt
	switch c.Functor {
	case "+":
		if bothInt {
			return ai + bi, nil
		}
		return Float(toF(a) + toF(b)), nil
	case "-":
		if bothInt {
			return ai - bi, nil
		}
		return Float(toF(a) - toF(b)), nil
	case "*":
		if bothInt {
			return ai * bi, nil
		}
		return Float(toF(a) * toF(b)), nil
	case "/":
		if toF(b) == 0 {
			return nil, fmt.Errorf("prolog: arithmetic: division by zero")
		}
		if bothInt && ai%bi == 0 {
			return ai / bi, nil
		}
		return Float(toF(a) / toF(b)), nil
	case "//":
		if !bothInt {
			return nil, fmt.Errorf("prolog: arithmetic: // needs integers")
		}
		if bi == 0 {
			return nil, fmt.Errorf("prolog: arithmetic: division by zero")
		}
		return Int(math.Floor(float64(ai) / float64(bi))), nil
	case "mod":
		if !bothInt {
			return nil, fmt.Errorf("prolog: arithmetic: mod needs integers")
		}
		if bi == 0 {
			return nil, fmt.Errorf("prolog: arithmetic: division by zero")
		}
		r := ai % bi
		if r != 0 && (r < 0) != (bi < 0) {
			r += bi
		}
		return r, nil
	case "min":
		if compareTerms(a, b) <= 0 {
			return a, nil
		}
		return b, nil
	case "max":
		if compareTerms(a, b) >= 0 {
			return a, nil
		}
		return b, nil
	case "**", "^":
		if bothInt && bi >= 0 {
			// Integer power by repeated multiplication.
			result := Int(1)
			for i := Int(0); i < bi; i++ {
				result *= ai
			}
			return result, nil
		}
		return Float(math.Pow(toF(a), toF(b))), nil
	}
	return nil, fmt.Errorf("prolog: arithmetic: unknown function %s/2", c.Functor)
}

func toF(t Term) float64 {
	switch t := t.(type) {
	case Int:
		return float64(t)
	case Float:
		return float64(t)
	}
	return math.NaN()
}
