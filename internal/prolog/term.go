// Package prolog implements the logic-programming inference engine that
// Kaskade uses for constraint-based view enumeration (§IV of the paper).
// It stands in for SWI-Prolog: a Prolog interpreter with unification,
// SLD resolution with chronological backtracking, negation as failure,
// cut, if-then-else, integer/float arithmetic, list syntax, findall/setof,
// and a parser for rule/fact source text, so the paper's view templates
// and constraint mining rules (Listings 2, 3, 5, 6) run essentially
// verbatim.
//
// The engine is deterministic: clauses are tried in assertion order and
// solutions are delivered in SLD order, which keeps view enumeration
// reproducible.
package prolog

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a Prolog term: Atom, Int, Float, *Var, or *Compound.
type Term interface {
	isTerm()
}

// Atom is a Prolog atom such as foo, 'Job', or [].
type Atom string

// Int is a Prolog integer.
type Int int64

// Float is a Prolog floating-point number.
type Float float64

// Var is a logic variable. Binding is destructive with trail-based undo:
// Ref is nil while unbound. Vars are compared by identity.
type Var struct {
	Name string // for display; not identity
	Ref  Term   // nil when unbound
}

// Compound is a compound term Functor(Args...). Lists use the functor "."
// with two arguments in the traditional way, with Atom("[]") as nil.
type Compound struct {
	Functor string
	Args    []Term
}

func (Atom) isTerm()      {}
func (Int) isTerm()       {}
func (Float) isTerm()     {}
func (*Var) isTerm()      {}
func (*Compound) isTerm() {}

// emptyList is the list terminator atom.
const emptyList = Atom("[]")

// NewVar returns a fresh unbound variable with the given display name.
func NewVar(name string) *Var { return &Var{Name: name} }

// Comp builds a compound term.
func Comp(functor string, args ...Term) *Compound {
	return &Compound{Functor: functor, Args: args}
}

// MkList builds a proper list term from elements.
func MkList(elems ...Term) Term {
	var list Term = emptyList
	for i := len(elems) - 1; i >= 0; i-- {
		list = Comp(".", elems[i], list)
	}
	return list
}

// deref follows variable bindings to the representative term.
func deref(t Term) Term {
	for {
		v, ok := t.(*Var)
		if !ok || v.Ref == nil {
			return t
		}
		t = v.Ref
	}
}

// Resolve returns t with all bound variables substituted, deeply. The
// result shares no live variable bindings, so it remains valid after
// backtracking. Unbound variables are left in place.
func Resolve(t Term) Term {
	t = deref(t)
	c, ok := t.(*Compound)
	if !ok {
		return t
	}
	args := make([]Term, len(c.Args))
	for i, a := range c.Args {
		args[i] = Resolve(a)
	}
	return &Compound{Functor: c.Functor, Args: args}
}

// ListSlice converts a proper list term into a Go slice. It reports
// ok=false for partial lists (unbound tail) or non-lists.
func ListSlice(t Term) (elems []Term, ok bool) {
	for {
		t = deref(t)
		if t == emptyList {
			return elems, true
		}
		c, isC := t.(*Compound)
		if !isC || c.Functor != "." || len(c.Args) != 2 {
			return nil, false
		}
		elems = append(elems, c.Args[0])
		t = c.Args[1]
	}
}

// Indicator returns the functor/arity key of a callable term, e.g.
// "member/2", or "" if t is not callable (not an atom or compound).
func Indicator(t Term) string {
	switch t := deref(t).(type) {
	case Atom:
		return string(t) + "/0"
	case *Compound:
		return fmt.Sprintf("%s/%d", t.Functor, len(t.Args))
	}
	return ""
}

// renameTerm copies t, replacing every distinct variable with a fresh one.
// Used to standardize clauses apart before resolution.
func renameTerm(t Term, seen map[*Var]*Var) Term {
	switch t := t.(type) {
	case *Var:
		if t.Ref != nil {
			return renameTerm(t.Ref, seen)
		}
		if fresh, ok := seen[t]; ok {
			return fresh
		}
		fresh := NewVar(t.Name)
		seen[t] = fresh
		return fresh
	case *Compound:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = renameTerm(a, seen)
		}
		return &Compound{Functor: t.Functor, Args: args}
	default:
		return t
	}
}

// compareTerms implements the standard order of terms:
// Var < Float,Int (by value) < Atom < Compound (arity, then functor, then args).
func compareTerms(a, b Term) int {
	a, b = deref(a), deref(b)
	oa, ob := termOrder(a), termOrder(b)
	if oa != ob {
		return oa - ob
	}
	switch a := a.(type) {
	case *Var:
		// Arbitrary but stable within a run: compare pointers via name then identity.
		bv := b.(*Var)
		if a == bv {
			return 0
		}
		if c := strings.Compare(a.Name, bv.Name); c != 0 {
			return c
		}
		// Same name, distinct vars: fall back to address-ish inequality.
		return -1
	case Int:
		switch b := b.(type) {
		case Int:
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		case Float:
			return compareFloats(float64(a), float64(b))
		}
	case Float:
		switch b := b.(type) {
		case Int:
			return compareFloats(float64(a), float64(b))
		case Float:
			return compareFloats(float64(a), float64(b))
		}
	case Atom:
		return strings.Compare(string(a), string(b.(Atom)))
	case *Compound:
		bc := b.(*Compound)
		if d := len(a.Args) - len(bc.Args); d != 0 {
			return d
		}
		if c := strings.Compare(a.Functor, bc.Functor); c != 0 {
			return c
		}
		for i := range a.Args {
			if c := compareTerms(a.Args[i], bc.Args[i]); c != 0 {
				return c
			}
		}
		return 0
	}
	return 0
}

func compareFloats(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func termOrder(t Term) int {
	switch t.(type) {
	case *Var:
		return 0
	case Float, Int:
		return 1
	case Atom:
		return 2
	default:
		return 3
	}
}

// sortUnique sorts terms by the standard order and removes duplicates
// (for sort/2 and setof/3).
func sortUnique(ts []Term) []Term {
	sort.SliceStable(ts, func(i, j int) bool { return compareTerms(ts[i], ts[j]) < 0 })
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || compareTerms(out[len(out)-1], t) != 0 {
			out = append(out, t)
		}
	}
	return out
}

// needsQuote reports whether an atom requires single quotes when printed.
func needsQuote(s string) bool {
	if s == "" {
		return true
	}
	if s == "[]" || s == "!" || s == ";" || s == "," {
		return false
	}
	c := s[0]
	if c >= 'a' && c <= 'z' {
		for i := 1; i < len(s); i++ {
			c := s[i]
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
				return true
			}
		}
		return false
	}
	// All-symbolic atoms print bare.
	for i := 0; i < len(s); i++ {
		if !strings.ContainsRune("+-*/\\^<>=~:.?@#&", rune(s[i])) {
			return true
		}
	}
	return false
}

// TermString renders a term in canonical-ish Prolog syntax (lists and
// operators in natural notation).
func TermString(t Term) string {
	var b strings.Builder
	writeTerm(&b, t, 1200)
	return b.String()
}

var infixOps = map[string]struct{ prec, lp, rp int }{
	":-":   {1200, 1199, 1199},
	";":    {1100, 1099, 1100},
	"->":   {1050, 1049, 1050},
	",":    {1000, 999, 1000},
	"=":    {700, 699, 699},
	"\\=":  {700, 699, 699},
	"==":   {700, 699, 699},
	"\\==": {700, 699, 699},
	"is":   {700, 699, 699},
	"=:=":  {700, 699, 699},
	"=\\=": {700, 699, 699},
	"<":    {700, 699, 699},
	">":    {700, 699, 699},
	"=<":   {700, 699, 699},
	">=":   {700, 699, 699},
	"+":    {500, 500, 499},
	"-":    {500, 500, 499},
	"*":    {400, 400, 399},
	"/":    {400, 400, 399},
	"//":   {400, 400, 399},
	"mod":  {400, 400, 399},
}

func writeTerm(b *strings.Builder, t Term, maxPrec int) {
	switch t := deref(t).(type) {
	case Atom:
		s := string(t)
		if needsQuote(s) {
			fmt.Fprintf(b, "'%s'", strings.ReplaceAll(s, "'", "\\'"))
		} else {
			b.WriteString(s)
		}
	case Int:
		fmt.Fprintf(b, "%d", int64(t))
	case Float:
		fmt.Fprintf(b, "%g", float64(t))
	case *Var:
		switch {
		case t.Name == "" || t.Name == "_":
			fmt.Fprintf(b, "_G%p", t)
		case t.Name[0] == '_':
			b.WriteString(t.Name)
		default:
			b.WriteString("_" + t.Name)
		}
	case *Compound:
		if t.Functor == "." && len(t.Args) == 2 {
			writeList(b, t)
			return
		}
		if op, ok := infixOps[t.Functor]; ok && len(t.Args) == 2 {
			paren := op.prec > maxPrec
			if paren {
				b.WriteByte('(')
			}
			writeTerm(b, t.Args[0], op.lp)
			if t.Functor == "," {
				b.WriteString(",")
			} else {
				b.WriteString(string(t.Functor))
			}
			writeTerm(b, t.Args[1], op.rp)
			if paren {
				b.WriteByte(')')
			}
			return
		}
		if t.Functor == "\\+" && len(t.Args) == 1 {
			b.WriteString("\\+")
			writeTerm(b, t.Args[0], 900)
			return
		}
		if needsQuote(t.Functor) {
			fmt.Fprintf(b, "'%s'", strings.ReplaceAll(t.Functor, "'", "\\'"))
		} else {
			b.WriteString(t.Functor)
		}
		b.WriteByte('(')
		for i, a := range t.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			writeTerm(b, a, 999)
		}
		b.WriteByte(')')
	}
}

func writeList(b *strings.Builder, c *Compound) {
	b.WriteByte('[')
	first := true
	var t Term = c
	for {
		t = deref(t)
		if t == emptyList {
			break
		}
		cc, ok := t.(*Compound)
		if !ok || cc.Functor != "." || len(cc.Args) != 2 {
			b.WriteByte('|')
			writeTerm(b, t, 999)
			break
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		writeTerm(b, cc.Args[0], 999)
		t = cc.Args[1]
	}
	b.WriteByte(']')
}
