package prolog

import "fmt"

// cont is a solver continuation: invoked once per proof with bindings in
// place; it returns stop=true to end the search (bindings are retained
// while unwinding so the caller's yield sees them).
type cont func() (stop bool, err error)

// cutSignal implements cut: it unwinds choice points until it reaches the
// predicate-call boundary identified by barrier, which consumes it.
type cutSignal struct{ barrier int }

func (cutSignal) Error() string { return "prolog: cut" }

func isCut(err error) bool {
	_, ok := err.(cutSignal)
	return ok
}

// solve proves goal, calling k for every proof. depth is the current
// resolution depth (for the depth guard and for cut barriers); cutParent
// is the barrier a cut in this goal should cut to.
func (m *Machine) solve(goal Term, depth int, k cont) (bool, error) {
	return m.solveCtl(goal, depth, depth, k)
}

func (m *Machine) solveCtl(goal Term, depth, cutParent int, k cont) (bool, error) {
	m.steps++
	if max := m.MaxSteps; max <= 0 {
		if m.steps > DefaultMaxSteps {
			return false, ErrStepLimit
		}
	} else if m.steps > max {
		return false, ErrStepLimit
	}
	if max := m.MaxDepth; max <= 0 {
		if depth > DefaultMaxDepth {
			return false, ErrDepthLimit
		}
	} else if depth > max {
		return false, ErrDepthLimit
	}

	goal = deref(goal)
	switch g := goal.(type) {
	case *Var:
		return false, fmt.Errorf("prolog: unbound variable used as goal")
	case Int, Float:
		return false, fmt.Errorf("prolog: number %s used as goal", TermString(goal))
	case *Compound:
		switch {
		case g.Functor == "," && len(g.Args) == 2:
			return m.solveCtl(g.Args[0], depth, cutParent, func() (bool, error) {
				return m.solveCtl(g.Args[1], depth, cutParent, k)
			})
		case g.Functor == ";" && len(g.Args) == 2:
			// If-then-else when the left branch is (Cond -> Then).
			if ite, ok := deref(g.Args[0]).(*Compound); ok && ite.Functor == "->" && len(ite.Args) == 2 {
				return m.solveITE(ite.Args[0], ite.Args[1], g.Args[1], depth, cutParent, k)
			}
			stop, err := m.solveCtl(g.Args[0], depth, cutParent, k)
			if stop || err != nil {
				return stop, err
			}
			return m.solveCtl(g.Args[1], depth, cutParent, k)
		case g.Functor == "->" && len(g.Args) == 2:
			// Bare if-then: (Cond -> Then) == (Cond -> Then ; fail).
			return m.solveITE(g.Args[0], g.Args[1], Atom("fail"), depth, cutParent, k)
		}
	}

	key := Indicator(goal)
	if b := builtins[key]; b != nil {
		var args []Term
		if c, ok := goal.(*Compound); ok {
			args = c.Args
		}
		return b(m, args, depth, cutParent, k)
	}

	clauses := m.clausesFor(goal)
	if clauses == nil {
		return false, fmt.Errorf("prolog: unknown predicate %s", key)
	}
	callDepth := depth + 1
	for _, c := range clauses {
		mark := len(m.trail)
		seen := make(map[*Var]*Var)
		head := renameTerm(c.Head, seen)
		if m.unify(goal, head) {
			var stop bool
			var err error
			if c.Body == nil {
				stop, err = k()
			} else {
				body := renameTerm(c.Body, seen)
				stop, err = m.solveCtl(body, callDepth, callDepth, k)
			}
			if stop {
				return true, err
			}
			if err != nil {
				if cs, ok := err.(cutSignal); ok && cs.barrier == callDepth {
					// Cut originating in this clause body: discard the
					// remaining clause alternatives.
					m.undoTo(mark)
					return false, nil
				}
				return false, err
			}
		}
		m.undoTo(mark)
	}
	return false, nil
}

// solveITE implements (Cond -> Then ; Else) with commit-to-first-solution
// semantics for Cond; cut inside Cond is local, cut inside Then/Else is
// transparent to the enclosing clause.
func (m *Machine) solveITE(cond, then, els Term, depth, cutParent int, k cont) (bool, error) {
	condBarrier := depth + 1
	committed := false
	stop, err := m.solveCtl(cond, condBarrier, condBarrier, func() (bool, error) {
		committed = true
		stop, err := m.solveCtl(then, depth+1, cutParent, k)
		if stop || err != nil {
			return stop, err
		}
		// Then is exhausted; kill the remaining Cond choice points so we
		// do not re-enter Then under a different Cond solution.
		return false, cutSignal{barrier: condBarrier}
	})
	if err != nil {
		if cs, ok := err.(cutSignal); ok && cs.barrier == condBarrier {
			return stop, nil
		}
		return stop, err
	}
	if stop {
		return true, nil
	}
	if committed {
		return false, nil
	}
	return m.solveCtl(els, depth+1, cutParent, k)
}
