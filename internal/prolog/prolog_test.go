package prolog

import (
	"sort"
	"strings"
	"testing"
)

// solveAll is a test helper: consult the program, run the query, and
// return every solution.
func solveAll(t *testing.T, program, query string) []Solution {
	t.Helper()
	m := NewMachine()
	if program != "" {
		if err := m.ConsultString(program); err != nil {
			t.Fatalf("consult: %v", err)
		}
	}
	sols, err := m.Query(query, 0)
	if err != nil {
		t.Fatalf("query %q: %v", query, err)
	}
	return sols
}

func atoms(sols []Solution, name string) []string {
	var out []string
	for _, s := range sols {
		out = append(out, s.Atom(name))
	}
	return out
}

func ints(sols []Solution, name string) []int64 {
	var out []int64
	for _, s := range sols {
		out = append(out, s.Int(name))
	}
	return out
}

func TestFactsAndRules(t *testing.T) {
	prog := `
		parent(tom, bob).
		parent(bob, ann).
		parent(bob, pat).
		grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
	`
	sols := solveAll(t, prog, "grandparent(tom, W)")
	got := atoms(sols, "W")
	if len(got) != 2 || got[0] != "ann" || got[1] != "pat" {
		t.Errorf("grandparent(tom,W) = %v, want [ann pat]", got)
	}
}

func TestQuotedAtoms(t *testing.T) {
	prog := `edge('Job', 'File', 'WRITES_TO').`
	sols := solveAll(t, prog, "edge(X, Y, T)")
	if len(sols) != 1 || sols[0].Atom("X") != "Job" || sols[0].Atom("T") != "WRITES_TO" {
		t.Errorf("quoted atoms round-trip failed: %v", sols)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		query string
		want  int64
	}{
		{"X is 2 + 3", 5},
		{"X is 2 + 3 * 4", 14},
		{"X is (2 + 3) * 4", 20},
		{"X is 10 - 3 - 2", 5}, // left associative
		{"X is 7 // 2", 3},
		{"X is -7 // 2", -4}, // floor division
		{"X is 7 mod 3", 1},
		{"X is -7 mod 3", 2}, // positive remainder
		{"X is min(3, 5)", 3},
		{"X is max(3, 5)", 5},
		{"X is abs(-4)", 4},
		{"X is 2 ^ 10", 1024},
		{"X is 6 / 3", 2}, // exact int division stays integral
	}
	for _, tc := range cases {
		sols := solveAll(t, "", tc.query)
		if len(sols) != 1 {
			t.Errorf("%s: %d solutions", tc.query, len(sols))
			continue
		}
		if got := sols[0].Int("X"); got != tc.want {
			t.Errorf("%s = %d, want %d", tc.query, got, tc.want)
		}
	}
}

func TestFloatArithmetic(t *testing.T) {
	sols := solveAll(t, "", "X is 7 / 2")
	if len(sols) != 1 {
		t.Fatalf("7/2: %d solutions", len(sols))
	}
	f, ok := deref(sols[0]["X"]).(Float)
	if !ok || float64(f) != 3.5 {
		t.Errorf("7/2 = %v, want 3.5", sols[0]["X"])
	}
}

func TestArithmeticErrors(t *testing.T) {
	m := NewMachine()
	if _, err := m.Query("X is 1 / 0", 0); err == nil {
		t.Error("1/0: want error")
	}
	if _, err := m.Query("X is Y + 1", 0); err == nil {
		t.Error("unbound in arithmetic: want error")
	}
	if _, err := m.Query("X is foo + 1", 0); err == nil {
		t.Error("atom in arithmetic: want error")
	}
}

func TestComparisons(t *testing.T) {
	yes := []string{"1 < 2", "2 =< 2", "3 > 2", "3 >= 3", "2 =:= 2", "2 =\\= 3", "1 + 1 =:= 2"}
	for _, q := range yes {
		if len(solveAll(t, "", q)) != 1 {
			t.Errorf("%s: want success", q)
		}
	}
	no := []string{"2 < 1", "2 =:= 3"}
	for _, q := range no {
		if len(solveAll(t, "", q)) != 0 {
			t.Errorf("%s: want failure", q)
		}
	}
}

func TestUnificationBuiltins(t *testing.T) {
	if len(solveAll(t, "", "f(X, b) = f(a, Y), X = a, Y = b")) != 1 {
		t.Error("compound unification failed")
	}
	if len(solveAll(t, "", "f(a) = f(b)")) != 0 {
		t.Error("f(a)=f(b) should fail")
	}
	if len(solveAll(t, "", "X \\= X")) != 0 {
		t.Error("X \\= X should fail")
	}
	if len(solveAll(t, "", "a \\= b")) != 1 {
		t.Error("a \\= b should succeed")
	}
	if len(solveAll(t, "", "f(X) == f(X)")) != 1 {
		t.Error("structural equality on shared var failed")
	}
	if len(solveAll(t, "", "f(X) == f(Y)")) != 0 {
		t.Error("f(X) == f(Y) should fail (distinct vars)")
	}
}

func TestListPredicates(t *testing.T) {
	sols := solveAll(t, "", "member(X, [a, b, c])")
	if got := atoms(sols, "X"); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("member = %v", got)
	}
	sols = solveAll(t, "", "append([1,2], [3], L)")
	if len(sols) != 1 {
		t.Fatalf("append: %d solutions", len(sols))
	}
	elems, ok := ListSlice(sols[0]["L"])
	if !ok || len(elems) != 3 {
		t.Errorf("append result = %v", TermString(sols[0]["L"]))
	}
	// append in splitting mode enumerates all splits.
	sols = solveAll(t, "", "append(A, B, [1,2,3])")
	if len(sols) != 4 {
		t.Errorf("append split: %d solutions, want 4", len(sols))
	}
	sols = solveAll(t, "", "reverse([1,2,3], R)")
	if len(sols) != 1 || TermString(sols[0]["R"]) != "[3,2,1]" {
		t.Errorf("reverse = %v", TermString(sols[0]["R"]))
	}
	sols = solveAll(t, "", "length([a,b,c], N)")
	if len(sols) != 1 || sols[0].Int("N") != 3 {
		t.Errorf("length = %v", sols)
	}
	sols = solveAll(t, "", "sum_list([1,2,3,4], S)")
	if len(sols) != 1 || sols[0].Int("S") != 10 {
		t.Errorf("sum_list = %v", sols)
	}
	sols = solveAll(t, "", "max_list([3,1,4,1,5], M)")
	if len(sols) != 1 || sols[0].Int("M") != 5 {
		t.Errorf("max_list = %v", sols)
	}
}

func TestBetween(t *testing.T) {
	sols := solveAll(t, "", "between(2, 5, X)")
	got := ints(sols, "X")
	if len(got) != 4 || got[0] != 2 || got[3] != 5 {
		t.Errorf("between(2,5,X) = %v", got)
	}
	if len(solveAll(t, "", "between(1, 3, 2)")) != 1 {
		t.Error("between(1,3,2) should succeed")
	}
	if len(solveAll(t, "", "between(1, 3, 7)")) != 0 {
		t.Error("between(1,3,7) should fail")
	}
	if len(solveAll(t, "", "between(3, 1, X)")) != 0 {
		t.Error("empty range should fail")
	}
}

func TestNegationAsFailure(t *testing.T) {
	prog := `
		edge(a, b).
		edge(b, c).
		nonedge(X, Y) :- node(X), node(Y), \+ edge(X, Y).
		node(a). node(b). node(c).
	`
	sols := solveAll(t, prog, "nonedge(a, X)")
	got := atoms(sols, "X")
	want := []string{"a", "c"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("nonedge(a,X) = %v, want %v", got, want)
	}
	// not/1 is an alias.
	if len(solveAll(t, prog, "not(edge(a, c))")) != 1 {
		t.Error("not(edge(a,c)) should succeed")
	}
	// Bindings made inside \+ must not leak.
	sols = solveAll(t, prog, "\\+ edge(a, z), X = kept")
	if len(sols) != 1 || sols[0].Atom("X") != "kept" {
		t.Errorf("bindings after \\+ = %v", sols)
	}
}

func TestFindall(t *testing.T) {
	prog := `p(1). p(2). p(3).`
	sols := solveAll(t, prog, "findall(X, p(X), L)")
	if len(sols) != 1 || TermString(sols[0]["L"]) != "[1,2,3]" {
		t.Errorf("findall = %v", TermString(sols[0]["L"]))
	}
	// findall with no solutions yields [].
	sols = solveAll(t, prog, "findall(X, (p(X), X > 10), L)")
	if len(sols) != 1 || TermString(sols[0]["L"]) != "[]" {
		t.Errorf("empty findall = %v", TermString(sols[0]["L"]))
	}
	// Template may be compound.
	sols = solveAll(t, prog, "findall(X-Y, (p(X), p(Y), Y is X + 1), L)")
	if len(sols) != 1 || TermString(sols[0]["L"]) != "[1-2,2-3]" {
		t.Errorf("compound findall = %v", TermString(sols[0]["L"]))
	}
}

func TestSetofAndSort(t *testing.T) {
	prog := `q(3). q(1). q(3). q(2).`
	sols := solveAll(t, prog, "setof(X, q(X), L)")
	if len(sols) != 1 || TermString(sols[0]["L"]) != "[1,2,3]" {
		t.Errorf("setof = %v", TermString(sols[0]["L"]))
	}
	// setof fails when there are no solutions (unlike findall).
	if len(solveAll(t, prog, "setof(X, (q(X), X > 10), L)")) != 0 {
		t.Error("setof with no solutions should fail")
	}
	sols = solveAll(t, "", "sort([c, a, b, a], L)")
	if len(sols) != 1 || TermString(sols[0]["L"]) != "[a,b,c]" {
		t.Errorf("sort = %v", TermString(sols[0]["L"]))
	}
	sols = solveAll(t, "", "msort([c, a, b, a], L)")
	if len(sols) != 1 || TermString(sols[0]["L"]) != "[a,a,b,c]" {
		t.Errorf("msort = %v", TermString(sols[0]["L"]))
	}
}

func TestCut(t *testing.T) {
	prog := `
		first(X) :- member(X, [1, 2, 3]), !.
		max(X, Y, X) :- X >= Y, !.
		max(_, Y, Y).
	`
	sols := solveAll(t, prog, "first(X)")
	if len(sols) != 1 || sols[0].Int("X") != 1 {
		t.Errorf("first/1 with cut = %v", ints(sols, "X"))
	}
	sols = solveAll(t, prog, "max(3, 5, M)")
	if len(sols) != 1 || sols[0].Int("M") != 5 {
		t.Errorf("max(3,5) = %v", ints(sols, "M"))
	}
	sols = solveAll(t, prog, "max(5, 3, M)")
	if len(sols) != 1 || sols[0].Int("M") != 5 {
		t.Errorf("max(5,3) = %v (cut failed to commit)", ints(sols, "M"))
	}
	// Cut is local to the clause: callers still backtrack.
	sols = solveAll(t, prog, "member(Y, [a,b]), first(_)")
	if len(sols) != 2 {
		t.Errorf("cut leaked into caller: %d solutions, want 2", len(sols))
	}
}

func TestIfThenElse(t *testing.T) {
	prog := `classify(X, neg) :- ( X < 0 -> true ; fail ).
	         sign(X, S) :- ( X > 0 -> S = pos ; X < 0 -> S = neg ; S = zero ).`
	sols := solveAll(t, prog, "sign(5, S)")
	if len(sols) != 1 || sols[0].Atom("S") != "pos" {
		t.Errorf("sign(5) = %v", atoms(sols, "S"))
	}
	sols = solveAll(t, prog, "sign(-5, S)")
	if len(sols) != 1 || sols[0].Atom("S") != "neg" {
		t.Errorf("sign(-5) = %v", atoms(sols, "S"))
	}
	sols = solveAll(t, prog, "sign(0, S)")
	if len(sols) != 1 || sols[0].Atom("S") != "zero" {
		t.Errorf("sign(0) = %v", atoms(sols, "S"))
	}
	// Condition commits to its first solution.
	sols = solveAll(t, "p(1). p(2).", "( p(X) -> true ; fail )")
	if len(sols) != 1 || sols[0].Int("X") != 1 {
		t.Errorf("if-then-else did not commit: %v", ints(sols, "X"))
	}
}

func TestDisjunction(t *testing.T) {
	sols := solveAll(t, "", "( X = a ; X = b )")
	got := atoms(sols, "X")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("disjunction = %v", got)
	}
}

func TestHigherOrder(t *testing.T) {
	prog := `double(X, Y) :- Y is X * 2.
	         sum(X, Y, R) :- R is X + Y.
	         bigenough(X) :- X >= 2.`
	sols := solveAll(t, prog, "maplist(double, [1,2,3], L)")
	if len(sols) != 1 || TermString(sols[0]["L"]) != "[2,4,6]" {
		t.Errorf("maplist = %v", TermString(sols[0]["L"]))
	}
	sols = solveAll(t, prog, "foldl(sum, [1,2,3], 0, R)")
	if len(sols) != 1 || sols[0].Int("R") != 6 {
		t.Errorf("foldl = %v", sols)
	}
	sols = solveAll(t, prog, "convlist(double, [1,2], L)")
	if len(sols) != 1 || TermString(sols[0]["L"]) != "[2,4]" {
		t.Errorf("convlist = %v", TermString(sols[0]["L"]))
	}
	sols = solveAll(t, prog, "include(bigenough, [1,2,3], L)")
	if len(sols) != 1 || TermString(sols[0]["L"]) != "[2,3]" {
		t.Errorf("include = %v", TermString(sols[0]["L"]))
	}
	if len(solveAll(t, prog, "forall(member(X, [2,3,4]), bigenough(X))")) != 1 {
		t.Error("forall should succeed")
	}
	if len(solveAll(t, prog, "forall(member(X, [1,2]), bigenough(X))")) != 0 {
		t.Error("forall should fail")
	}
}

func TestRecursivePaths(t *testing.T) {
	// The shape of the paper's schemaKHopPath rule (Lst. 2).
	prog := `
		schemaEdge('Job', 'File', 'WRITES_TO').
		schemaEdge('File', 'Job', 'IS_READ_BY').
		schemaKHopPath(X, Y, K) :- schemaKHopPath(X, Y, K, []).
		schemaKHopPath(X, Y, 1, _) :- schemaEdge(X, Y, _).
		schemaKHopPath(X, Y, K, Trail) :-
			schemaEdge(X, Z, _), not(member(Z, Trail)),
			schemaKHopPath(Z, Y, K1, [X|Trail]), K is K1 + 1.
	`
	sols := solveAll(t, prog, "schemaKHopPath('Job', 'Job', K)")
	got := ints(sols, "K")
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Job->Job path lengths = %v, want [2]", got)
	}
	sols = solveAll(t, prog, "schemaKHopPath('Job', 'File', K)")
	if got := ints(sols, "K"); len(got) != 1 || got[0] != 1 {
		t.Errorf("Job->File path lengths = %v, want [1]", got)
	}
}

func TestUnknownPredicateIsError(t *testing.T) {
	m := NewMachine()
	if _, err := m.Query("no_such_predicate(X)", 0); err == nil {
		t.Error("unknown predicate: want error")
	}
}

func TestStepLimit(t *testing.T) {
	m := NewMachine()
	m.MaxSteps = 10_000
	if err := m.ConsultString(`loop :- loop.`); err != nil {
		t.Fatal(err)
	}
	_, err := m.Query("loop", 0)
	if err != ErrStepLimit && err != ErrDepthLimit {
		t.Errorf("infinite loop: got %v, want step/depth limit", err)
	}
}

func TestDepthLimit(t *testing.T) {
	m := NewMachine()
	m.MaxDepth = 50
	if err := m.ConsultString(`count(N) :- N1 is N + 1, count(N1).`); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Query("count(0)", 0); err != ErrDepthLimit {
		t.Errorf("deep recursion: got %v, want ErrDepthLimit", err)
	}
}

func TestQueryLimit(t *testing.T) {
	sols := solveAll(t, "p(1). p(2). p(3).", "p(X)")
	if len(sols) != 3 {
		t.Fatalf("unlimited: %d", len(sols))
	}
	m := NewMachine()
	if err := m.ConsultString("p(1). p(2). p(3)."); err != nil {
		t.Fatal(err)
	}
	two, err := m.Query("p(X)", 2)
	if err != nil || len(two) != 2 {
		t.Errorf("limit 2: %d solutions, err=%v", len(two), err)
	}
}

func TestAssertzAndPredicates(t *testing.T) {
	m := NewMachine()
	if err := m.AssertFact("schemaVertex('Job')"); err != nil {
		t.Fatal(err)
	}
	if err := m.AssertFact("schemaVertex('File')."); err != nil {
		t.Fatal(err)
	}
	sols, err := m.Query("schemaVertex(X)", 0)
	if err != nil || len(sols) != 2 {
		t.Fatalf("facts: %v, err=%v", sols, err)
	}
	// Redefining a builtin is rejected; library predicates (member/2)
	// remain extensible like in standard Prolog.
	if err := m.AssertFact("is(a, b)"); err == nil {
		t.Error("redefining is/2 should fail")
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{
		"p(a",        // unclosed args
		"p(a)) .",    // stray paren
		"'unclosed",  // unterminated atom
		"p(a) q(b).", // missing operator
		"1 :- x.",    // non-callable head
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q): want error", src)
		}
	}
}

func TestTermStringRoundTrip(t *testing.T) {
	cases := []string{
		"foo",
		"foo(bar,baz)",
		"[1,2,3]",
		"[a|T]",
		"f(X,g(Y,[1,2]))",
		"'Has Space'(x)",
		"1+2*3",
		"(1+2)*3",
	}
	for _, src := range cases {
		t1, err := ParseTerm(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		s := TermString(t1)
		t2, err := ParseTerm(s)
		if err != nil {
			t.Errorf("reparse %q (printed as %q): %v", src, s, err)
			continue
		}
		if TermString(t2) != s {
			t.Errorf("round trip %q: %q != %q", src, TermString(t2), s)
		}
	}
}

func TestComments(t *testing.T) {
	prog := `
		% a line comment
		p(1). /* a block
		comment */ p(2).
	`
	if got := len(solveAll(t, prog, "p(X)")); got != 2 {
		t.Errorf("facts with comments: %d, want 2", got)
	}
}

func TestSolutionBindingsSurviveBacktracking(t *testing.T) {
	m := NewMachine()
	if err := m.ConsultString("p(f(1)). p(f(2))."); err != nil {
		t.Fatal(err)
	}
	var saved []Term
	g, vars, err := ParseQuery("p(X)")
	if err != nil {
		t.Fatal(err)
	}
	err = m.SolveTerm(g, func() bool {
		saved = append(saved, Resolve(vars["X"]))
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) != 2 {
		t.Fatalf("%d solutions", len(saved))
	}
	// After the query, the snapshots must still be ground.
	if TermString(saved[0]) != "f(1)" || TermString(saved[1]) != "f(2)" {
		t.Errorf("snapshots = %s, %s", TermString(saved[0]), TermString(saved[1]))
	}
}

func TestWriteOutput(t *testing.T) {
	m := NewMachine()
	var sb strings.Builder
	m.Out = &sb
	if _, err := m.Query("write(hello), nl", 0); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "hello\n" {
		t.Errorf("write output = %q", sb.String())
	}
}

func TestFunctorArg(t *testing.T) {
	sols := solveAll(t, "", "functor(f(a,b), N, A)")
	if len(sols) != 1 || sols[0].Atom("N") != "f" || sols[0].Int("A") != 2 {
		t.Errorf("functor = %v", sols)
	}
	sols = solveAll(t, "", "functor(T, point, 2)")
	if len(sols) != 1 || Indicator(sols[0]["T"]) != "point/2" {
		t.Errorf("functor build = %v", sols)
	}
	sols = solveAll(t, "", "arg(2, f(a,b,c), X)")
	if len(sols) != 1 || sols[0].Atom("X") != "b" {
		t.Errorf("arg = %v", sols)
	}
}

func TestAtomConcat(t *testing.T) {
	sols := solveAll(t, "", "atom_concat(foo, bar, X)")
	if len(sols) != 1 || sols[0].Atom("X") != "foobar" {
		t.Errorf("atom_concat = %v", sols)
	}
	sols = solveAll(t, "", "atom_concat(A, B, ab)")
	if len(sols) != 3 {
		t.Errorf("atom_concat split: %d solutions, want 3", len(sols))
	}
}
