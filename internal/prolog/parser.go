package prolog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseProgram parses Prolog source text into clauses. Each clause is a
// fact (`head.`) or a rule (`head :- body.`). `%` comments and `/* */`
// block comments are supported. Variables are scoped per clause.
func ParseProgram(src string) ([]*Clause, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var clauses []*Clause
	for !p.atEOF() {
		vars := make(map[string]*Var)
		t, err := p.parseTerm(1200, vars)
		if err != nil {
			return nil, err
		}
		if err := p.expectEnd(); err != nil {
			return nil, err
		}
		c, err := termToClause(t)
		if err != nil {
			return nil, err
		}
		clauses = append(clauses, c)
	}
	return clauses, nil
}

// ParseQuery parses a single goal term (without the trailing '.'),
// returning it together with its named variables (underscore-prefixed
// names are excluded so callers receive only variables they asked for).
func ParseQuery(src string) (Term, map[string]*Var, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, nil, err
	}
	if p.atEOF() {
		return nil, nil, fmt.Errorf("prolog: empty query")
	}
	vars := make(map[string]*Var)
	t, err := p.parseTerm(1200, vars)
	if err != nil {
		return nil, nil, err
	}
	if !p.atEOF() && !(p.peek().kind == tokEnd) {
		return nil, nil, fmt.Errorf("prolog: trailing input after query at %s", p.peek().text)
	}
	named := make(map[string]*Var, len(vars))
	for name, v := range vars {
		if !strings.HasPrefix(name, "_") {
			named[name] = v
		}
	}
	return t, named, nil
}

// ParseTerm parses a single term with fresh variables (for tests and fact
// construction).
func ParseTerm(src string) (Term, error) {
	t, _, err := ParseQuery(src)
	return t, err
}

func termToClause(t Term) (*Clause, error) {
	if c, ok := t.(*Compound); ok && c.Functor == ":-" {
		switch len(c.Args) {
		case 2:
			if Indicator(c.Args[0]) == "" {
				return nil, fmt.Errorf("prolog: clause head %s is not callable", TermString(c.Args[0]))
			}
			return &Clause{Head: c.Args[0], Body: c.Args[1]}, nil
		case 1:
			return nil, fmt.Errorf("prolog: directives are not supported: %s", TermString(t))
		}
	}
	if Indicator(t) == "" {
		return nil, fmt.Errorf("prolog: fact %s is not callable", TermString(t))
	}
	return &Clause{Head: t}, nil
}

// --- lexer ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokAtom
	tokVar
	tokInt
	tokFloat
	tokPunct // ( ) [ ] , |
	tokEnd   // clause-terminating .
)

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	// funcCall marks an atom immediately followed by '(' (no space),
	// which begins a compound term's argument list.
	funcCall bool
	pos      int
}

const symbolChars = "+-*/\\^<>=~:.?@#&$"

type parser struct {
	toks []token
	i    int
	src  string
}

func newParser(src string) (*parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks, src: src}, nil
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '%':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("prolog: unterminated block comment at offset %d", i)
			}
			i += 2 + end + 2
		case c >= '0' && c <= '9':
			j := i
			for j < n && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			isFloat := false
			if j+1 < n && src[j] == '.' && src[j+1] >= '0' && src[j+1] <= '9' {
				isFloat = true
				j++
				for j < n && src[j] >= '0' && src[j] <= '9' {
					j++
				}
			}
			if j < n && (src[j] == 'e' || src[j] == 'E') {
				k := j + 1
				if k < n && (src[k] == '+' || src[k] == '-') {
					k++
				}
				if k < n && src[k] >= '0' && src[k] <= '9' {
					isFloat = true
					for k < n && src[k] >= '0' && src[k] <= '9' {
						k++
					}
					j = k
				}
			}
			text := src[i:j]
			if isFloat {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, fmt.Errorf("prolog: bad float %q at offset %d", text, i)
				}
				toks = append(toks, token{kind: tokFloat, text: text, fval: f, pos: i})
			} else {
				v, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("prolog: bad integer %q at offset %d", text, i)
				}
				toks = append(toks, token{kind: tokInt, text: text, ival: v, pos: i})
			}
			i = j
		case c == '\'':
			var sb strings.Builder
			j := i + 1
			closed := false
			for j < n {
				if src[j] == '\\' && j+1 < n {
					switch src[j+1] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '\\':
						sb.WriteByte('\\')
					case '\'':
						sb.WriteByte('\'')
					default:
						sb.WriteByte(src[j+1])
					}
					j += 2
					continue
				}
				if src[j] == '\'' {
					// '' inside quotes is an escaped quote.
					if j+1 < n && src[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("prolog: unterminated quoted atom at offset %d", i)
			}
			tok := token{kind: tokAtom, text: sb.String(), pos: i}
			if j+1 < n && src[j+1] == '(' {
				tok.funcCall = true
			}
			toks = append(toks, tok)
			i = j + 1
		case isAtomStart(rune(c)):
			j := i
			for j < n && isIdentChar(rune(src[j])) {
				j++
			}
			tok := token{kind: tokAtom, text: src[i:j], pos: i}
			if j < n && src[j] == '(' {
				tok.funcCall = true
			}
			toks = append(toks, tok)
			i = j
		case isVarStart(rune(c)):
			j := i
			for j < n && isIdentChar(rune(src[j])) {
				j++
			}
			toks = append(toks, token{kind: tokVar, text: src[i:j], pos: i})
			i = j
		case c == '(' || c == ')' || c == '[' || c == ']' || c == ',' || c == '|':
			toks = append(toks, token{kind: tokPunct, text: string(c), pos: i})
			i++
		case c == '!' || c == ';':
			toks = append(toks, token{kind: tokAtom, text: string(c), pos: i})
			i++
		case strings.IndexByte(symbolChars, c) >= 0:
			// A '.' followed by layout/EOF/comment terminates a clause.
			if c == '.' {
				if i+1 >= n || src[i+1] == ' ' || src[i+1] == '\t' || src[i+1] == '\n' || src[i+1] == '\r' || src[i+1] == '%' {
					toks = append(toks, token{kind: tokEnd, text: ".", pos: i})
					i++
					continue
				}
			}
			j := i
			for j < n && strings.IndexByte(symbolChars, src[j]) >= 0 {
				j++
			}
			// Do not swallow a clause-terminating '.' at the end of a
			// symbolic run (e.g. "X = Y.").
			text := src[i:j]
			for len(text) > 1 && text[len(text)-1] == '.' &&
				(i+len(text) >= n || isLayout(src[i+len(text)]) || src[i+len(text)] == '%') {
				text = text[:len(text)-1]
				j--
			}
			tok := token{kind: tokAtom, text: text, pos: i}
			if j < n && src[j] == '(' {
				tok.funcCall = true
			}
			toks = append(toks, tok)
			i = j
		default:
			return nil, fmt.Errorf("prolog: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isLayout(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isAtomStart(r rune) bool { return unicode.IsLower(r) }

func isVarStart(r rune) bool { return unicode.IsUpper(r) || r == '_' }

func isIdentChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// --- operator tables ---

type opInfo struct {
	prec int
	typ  string // xfx, xfy, yfx for infix; fy, fx for prefix
}

var infixTable = map[string]opInfo{
	":-": {1200, "xfx"}, "-->": {1200, "xfx"},
	";":  {1100, "xfy"},
	"->": {1050, "xfy"},
	",":  {1000, "xfy"},
	"=":  {700, "xfx"}, "\\=": {700, "xfx"},
	"==": {700, "xfx"}, "\\==": {700, "xfx"},
	"@<": {700, "xfx"}, "@>": {700, "xfx"}, "@=<": {700, "xfx"}, "@>=": {700, "xfx"},
	"is": {700, "xfx"}, "=..": {700, "xfx"},
	"=:=": {700, "xfx"}, "=\\=": {700, "xfx"},
	"<": {700, "xfx"}, ">": {700, "xfx"}, "=<": {700, "xfx"}, ">=": {700, "xfx"},
	"+": {500, "yfx"}, "-": {500, "yfx"},
	"*": {400, "yfx"}, "/": {400, "yfx"}, "//": {400, "yfx"}, "mod": {400, "yfx"},
	"**": {200, "xfx"}, "^": {200, "xfy"},
}

var prefixTable = map[string]opInfo{
	":-": {1200, "fx"}, "?-": {1200, "fx"},
	"\\+": {900, "fy"},
	"-":   {200, "fy"}, "+": {200, "fy"},
}

// --- parser ---

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.toks[p.i].kind == tokEOF }

func (p *parser) expectEnd() error {
	t := p.next()
	if t.kind != tokEnd {
		return fmt.Errorf("prolog: expected '.' at offset %d, found %q", t.pos, t.text)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("prolog: expected %q at offset %d, found %q", s, t.pos, t.text)
	}
	return nil
}

// parseTerm parses a term whose principal operator has precedence at most
// maxPrec, using precedence climbing.
func (p *parser) parseTerm(maxPrec int, vars map[string]*Var) (Term, error) {
	left, err := p.parsePrimary(maxPrec, vars)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var opName string
		switch {
		case t.kind == tokAtom:
			opName = t.text
		case t.kind == tokPunct && (t.text == "," || t.text == "|"):
			opName = t.text
			if opName == "|" {
				opName = ";" // X | Y is an alternative for disjunction
			}
		default:
			return left, nil
		}
		op, ok := infixTable[opName]
		if !ok || op.prec > maxPrec {
			return left, nil
		}
		p.next()
		rightMax := op.prec
		if op.typ == "xfx" || op.typ == "yfx" {
			rightMax = op.prec - 1
		}
		right, err := p.parseTerm(rightMax, vars)
		if err != nil {
			return nil, err
		}
		left = Comp(opName, left, right)
	}
}

func (p *parser) parsePrimary(maxPrec int, vars map[string]*Var) (Term, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		return Int(t.ival), nil
	case tokFloat:
		return Float(t.fval), nil
	case tokVar:
		if t.text == "_" {
			return NewVar("_"), nil
		}
		if v, ok := vars[t.text]; ok {
			return v, nil
		}
		v := NewVar(t.text)
		vars[t.text] = v
		return v, nil
	case tokPunct:
		switch t.text {
		case "(":
			inner, err := p.parseTerm(1200, vars)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return inner, nil
		case "[":
			return p.parseList(vars)
		}
		return nil, fmt.Errorf("prolog: unexpected %q at offset %d", t.text, t.pos)
	case tokAtom:
		if t.funcCall {
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			args, err := p.parseArgs(vars)
			if err != nil {
				return nil, err
			}
			return Comp(t.text, args...), nil
		}
		// Prefix operator?
		if op, ok := prefixTable[t.text]; ok && op.prec <= maxPrec && p.canStartTerm() {
			operandMax := op.prec
			if op.typ == "fx" {
				operandMax = op.prec - 1
			}
			operand, err := p.parseTerm(operandMax, vars)
			if err != nil {
				return nil, err
			}
			// Fold unary minus on numeric literals.
			if t.text == "-" {
				switch v := operand.(type) {
				case Int:
					return -v, nil
				case Float:
					return -v, nil
				}
			}
			if t.text == "+" {
				switch operand.(type) {
				case Int, Float:
					return operand, nil
				}
			}
			return Comp(t.text, operand), nil
		}
		return Atom(t.text), nil
	case tokEnd:
		return nil, fmt.Errorf("prolog: unexpected '.' at offset %d", t.pos)
	}
	return nil, fmt.Errorf("prolog: unexpected end of input")
}

// canStartTerm reports whether the next token can begin a term, which
// disambiguates prefix operators from bare atoms (e.g. `- 1` vs `(-)`).
func (p *parser) canStartTerm() bool {
	t := p.peek()
	switch t.kind {
	case tokInt, tokFloat, tokVar:
		return true
	case tokAtom:
		// An infix-only operator cannot start a term.
		if _, isInfix := infixTable[t.text]; isInfix {
			_, isPrefix := prefixTable[t.text]
			return isPrefix || t.funcCall
		}
		return true
	case tokPunct:
		return t.text == "(" || t.text == "["
	}
	return false
}

func (p *parser) parseArgs(vars map[string]*Var) ([]Term, error) {
	var args []Term
	for {
		a, err := p.parseTerm(999, vars)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		t := p.next()
		if t.kind == tokPunct && t.text == "," {
			continue
		}
		if t.kind == tokPunct && t.text == ")" {
			return args, nil
		}
		return nil, fmt.Errorf("prolog: expected ',' or ')' at offset %d, found %q", t.pos, t.text)
	}
}

func (p *parser) parseList(vars map[string]*Var) (Term, error) {
	if t := p.peek(); t.kind == tokPunct && t.text == "]" {
		p.next()
		return emptyList, nil
	}
	var elems []Term
	var tail Term = emptyList
	for {
		e, err := p.parseTerm(999, vars)
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
		t := p.next()
		if t.kind == tokPunct && t.text == "," {
			continue
		}
		if t.kind == tokPunct && t.text == "|" {
			tail, err = p.parseTerm(999, vars)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			break
		}
		if t.kind == tokPunct && t.text == "]" {
			break
		}
		return nil, fmt.Errorf("prolog: expected ',', '|' or ']' at offset %d, found %q", t.pos, t.text)
	}
	list := tail
	for i := len(elems) - 1; i >= 0; i-- {
		list = Comp(".", elems[i], list)
	}
	return list, nil
}
