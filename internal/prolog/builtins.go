package prolog

import (
	"fmt"
	"io"
	"strings"
)

// builtinFn implements a builtin predicate over already-dereferenced call
// arguments. It must call k for each solution and undo its own bindings on
// failure paths (most use m.undoTo around attempts).
type builtinFn func(m *Machine, args []Term, depth, cutParent int, k cont) (bool, error)

var builtins map[string]builtinFn

func init() {
	builtins = map[string]builtinFn{
		"true/0":        biTrue,
		"fail/0":        biFail,
		"false/0":       biFail,
		"!/0":           biCut,
		"=/2":           biUnify,
		"\\=/2":         biNotUnify,
		"==/2":          biStructEq,
		"\\==/2":        biStructNeq,
		"@</2":          biTermLess,
		"@>/2":          biTermGreater,
		"compare/3":     biCompare,
		"var/1":         biVar,
		"nonvar/1":      biNonvar,
		"atom/1":        biAtom,
		"number/1":      biNumber,
		"integer/1":     biInteger,
		"is/2":          biIs,
		"</2":           numCmp(func(c int) bool { return c < 0 }),
		">/2":           numCmp(func(c int) bool { return c > 0 }),
		"=</2":          numCmp(func(c int) bool { return c <= 0 }),
		">=/2":          numCmp(func(c int) bool { return c >= 0 }),
		"=:=/2":         numCmp(func(c int) bool { return c == 0 }),
		"=\\=/2":        numCmp(func(c int) bool { return c != 0 }),
		"\\+/1":         biNegation,
		"not/1":         biNegation,
		"between/3":     biBetween,
		"succ/2":        biSucc,
		"length/2":      biLength,
		"findall/3":     biFindall,
		"setof/3":       biSetof,
		"bagof/3":       biBagof,
		"sort/2":        biSort,
		"msort/2":       biMsort,
		"atom_concat/3": biAtomConcat,
		"write/1":       biWrite,
		"nl/0":          biNl,
		"functor/3":     biFunctor,
		"arg/3":         biArg,
	}
	for n := 1; n <= 8; n++ {
		builtins[fmt.Sprintf("call/%d", n)] = biCall
	}
}

func biTrue(m *Machine, _ []Term, _, _ int, k cont) (bool, error) { return k() }

func biFail(*Machine, []Term, int, int, cont) (bool, error) { return false, nil }

func biCut(m *Machine, _ []Term, _, cutParent int, k cont) (bool, error) {
	stop, err := k()
	if stop || err != nil {
		return stop, err
	}
	return false, cutSignal{barrier: cutParent}
}

func biUnify(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	mark := len(m.trail)
	if m.unify(args[0], args[1]) {
		stop, err := k()
		if stop || err != nil {
			return stop, err
		}
	}
	m.undoTo(mark)
	return false, nil
}

func biNotUnify(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	mark := len(m.trail)
	ok := m.unify(args[0], args[1])
	m.undoTo(mark)
	if ok {
		return false, nil
	}
	return k()
}

func biStructEq(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	if compareTerms(args[0], args[1]) == 0 {
		return k()
	}
	return false, nil
}

func biStructNeq(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	if compareTerms(args[0], args[1]) != 0 {
		return k()
	}
	return false, nil
}

func biTermLess(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	if compareTerms(args[0], args[1]) < 0 {
		return k()
	}
	return false, nil
}

func biTermGreater(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	if compareTerms(args[0], args[1]) > 0 {
		return k()
	}
	return false, nil
}

func biCompare(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	c := compareTerms(args[1], args[2])
	var rel Atom
	switch {
	case c < 0:
		rel = "<"
	case c > 0:
		rel = ">"
	default:
		rel = "="
	}
	return biUnify(m, []Term{args[0], rel}, 0, 0, k)
}

func typeCheck(pred func(Term) bool) builtinFn {
	return func(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
		if pred(deref(args[0])) {
			return k()
		}
		return false, nil
	}
}

var (
	biVar = typeCheck(func(t Term) bool { _, ok := t.(*Var); return ok })

	biNonvar = typeCheck(func(t Term) bool { _, ok := t.(*Var); return !ok })

	biAtom = typeCheck(func(t Term) bool { _, ok := t.(Atom); return ok })

	biInteger = typeCheck(func(t Term) bool { _, ok := t.(Int); return ok })

	biNumber = typeCheck(func(t Term) bool {
		switch t.(type) {
		case Int, Float:
			return true
		}
		return false
	})
)

func biIs(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	val, err := EvalArith(args[1])
	if err != nil {
		return false, err
	}
	return biUnify(m, []Term{args[0], val}, 0, 0, k)
}

func numCmp(ok func(int) bool) builtinFn {
	return func(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
		a, err := EvalArith(args[0])
		if err != nil {
			return false, err
		}
		b, err := EvalArith(args[1])
		if err != nil {
			return false, err
		}
		if ok(compareTerms(a, b)) {
			return k()
		}
		return false, nil
	}
}

// biNegation implements negation as failure (\+ and not). The inner goal
// runs with a local cut barrier and its bindings are always undone.
func biNegation(m *Machine, args []Term, depth, _ int, k cont) (bool, error) {
	mark := len(m.trail)
	found := false
	_, err := m.solve(args[0], depth+1, func() (bool, error) {
		found = true
		return true, nil
	})
	m.undoTo(mark)
	if err != nil && !isCut(err) {
		return false, err
	}
	if found {
		return false, nil
	}
	return k()
}

func biBetween(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	lo, err := EvalArith(args[0])
	if err != nil {
		return false, err
	}
	hi, err := EvalArith(args[1])
	if err != nil {
		return false, err
	}
	l, ok1 := lo.(Int)
	h, ok2 := hi.(Int)
	if !ok1 || !ok2 {
		return false, fmt.Errorf("prolog: between/3: bounds must be integers")
	}
	x := deref(args[2])
	if xi, ok := x.(Int); ok {
		if xi >= l && xi <= h {
			return k()
		}
		return false, nil
	}
	for i := l; i <= h; i++ {
		mark := len(m.trail)
		if m.unify(args[2], i) {
			stop, err := k()
			if stop || err != nil {
				return stop, err
			}
		}
		m.undoTo(mark)
	}
	return false, nil
}

func biSucc(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	a, b := deref(args[0]), deref(args[1])
	if ai, ok := a.(Int); ok {
		if ai < 0 {
			return false, fmt.Errorf("prolog: succ/2: negative argument")
		}
		return biUnify(m, []Term{args[1], ai + 1}, 0, 0, k)
	}
	if bi, ok := b.(Int); ok {
		if bi <= 0 {
			return false, nil
		}
		return biUnify(m, []Term{args[0], bi - 1}, 0, 0, k)
	}
	return false, fmt.Errorf("prolog: succ/2: insufficiently instantiated")
}

func biLength(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	if elems, ok := ListSlice(args[0]); ok {
		return biUnify(m, []Term{args[1], Int(len(elems))}, 0, 0, k)
	}
	if n, ok := deref(args[1]).(Int); ok && n >= 0 {
		fresh := make([]Term, n)
		for i := range fresh {
			fresh[i] = NewVar("_L")
		}
		return biUnify(m, []Term{args[0], MkList(fresh...)}, 0, 0, k)
	}
	return false, fmt.Errorf("prolog: length/2: insufficiently instantiated")
}

func biFindall(m *Machine, args []Term, depth, _ int, k cont) (bool, error) {
	var results []Term
	mark := len(m.trail)
	_, err := m.solve(args[1], depth+1, func() (bool, error) {
		results = append(results, Resolve(args[0]))
		return false, nil
	})
	m.undoTo(mark)
	if err != nil && !isCut(err) {
		return false, err
	}
	return biUnify(m, []Term{args[2], MkList(results...)}, 0, 0, k)
}

// biSetof implements a simplified setof/3: ^-witnesses are stripped (their
// variables are treated as existentially quantified, like findall), results
// are sorted with duplicates removed, and the call fails if there are no
// solutions. This covers the paper's usage (aggregation with dedup).
func biSetof(m *Machine, args []Term, depth, cutParent int, k cont) (bool, error) {
	goal := deref(args[1])
	for {
		c, ok := goal.(*Compound)
		if ok && c.Functor == "^" && len(c.Args) == 2 {
			goal = deref(c.Args[1])
			continue
		}
		break
	}
	var results []Term
	mark := len(m.trail)
	_, err := m.solve(goal, depth+1, func() (bool, error) {
		results = append(results, Resolve(args[0]))
		return false, nil
	})
	m.undoTo(mark)
	if err != nil && !isCut(err) {
		return false, err
	}
	if len(results) == 0 {
		return false, nil
	}
	return biUnify(m, []Term{args[2], MkList(sortUnique(results)...)}, 0, 0, k)
}

// biBagof is the same simplification as setof but preserves order and
// duplicates, failing on no solutions.
func biBagof(m *Machine, args []Term, depth, cutParent int, k cont) (bool, error) {
	goal := deref(args[1])
	for {
		c, ok := goal.(*Compound)
		if ok && c.Functor == "^" && len(c.Args) == 2 {
			goal = deref(c.Args[1])
			continue
		}
		break
	}
	var results []Term
	mark := len(m.trail)
	_, err := m.solve(goal, depth+1, func() (bool, error) {
		results = append(results, Resolve(args[0]))
		return false, nil
	})
	m.undoTo(mark)
	if err != nil && !isCut(err) {
		return false, err
	}
	if len(results) == 0 {
		return false, nil
	}
	return biUnify(m, []Term{args[2], MkList(results...)}, 0, 0, k)
}

func biSort(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	elems, ok := ListSlice(args[0])
	if !ok {
		return false, fmt.Errorf("prolog: sort/2: first argument is not a proper list")
	}
	resolved := make([]Term, len(elems))
	for i, e := range elems {
		resolved[i] = Resolve(e)
	}
	return biUnify(m, []Term{args[1], MkList(sortUnique(resolved)...)}, 0, 0, k)
}

func biMsort(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	elems, ok := ListSlice(args[0])
	if !ok {
		return false, fmt.Errorf("prolog: msort/2: first argument is not a proper list")
	}
	resolved := make([]Term, len(elems))
	for i, e := range elems {
		resolved[i] = Resolve(e)
	}
	// Stable sort without dedup.
	sorted := append([]Term(nil), resolved...)
	insertionSortTerms(sorted)
	return biUnify(m, []Term{args[1], MkList(sorted...)}, 0, 0, k)
}

func insertionSortTerms(ts []Term) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && compareTerms(ts[j-1], ts[j]) > 0; j-- {
			ts[j-1], ts[j] = ts[j], ts[j-1]
		}
	}
}

func biAtomConcat(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	a, aok := deref(args[0]).(Atom)
	b, bok := deref(args[1]).(Atom)
	if aok && bok {
		return biUnify(m, []Term{args[2], Atom(string(a) + string(b))}, 0, 0, k)
	}
	c, cok := deref(args[2]).(Atom)
	if !cok {
		return false, fmt.Errorf("prolog: atom_concat/3: insufficiently instantiated")
	}
	s := string(c)
	for i := 0; i <= len(s); i++ {
		mark := len(m.trail)
		if m.unify(args[0], Atom(s[:i])) && m.unify(args[1], Atom(s[i:])) {
			stop, err := k()
			if stop || err != nil {
				return stop, err
			}
		}
		m.undoTo(mark)
	}
	return false, nil
}

func biWrite(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	if m.Out != nil {
		io.WriteString(m.Out, strings.ReplaceAll(TermString(Resolve(args[0])), "'", ""))
	}
	return k()
}

func biNl(m *Machine, _ []Term, _, _ int, k cont) (bool, error) {
	if m.Out != nil {
		io.WriteString(m.Out, "\n")
	}
	return k()
}

func biFunctor(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	switch t := deref(args[0]).(type) {
	case *Compound:
		mark := len(m.trail)
		if m.unify(args[1], Atom(t.Functor)) && m.unify(args[2], Int(len(t.Args))) {
			stop, err := k()
			if stop || err != nil {
				return stop, err
			}
		}
		m.undoTo(mark)
		return false, nil
	case Atom:
		mark := len(m.trail)
		if m.unify(args[1], t) && m.unify(args[2], Int(0)) {
			stop, err := k()
			if stop || err != nil {
				return stop, err
			}
		}
		m.undoTo(mark)
		return false, nil
	case Int, Float:
		mark := len(m.trail)
		if m.unify(args[1], t) && m.unify(args[2], Int(0)) {
			stop, err := k()
			if stop || err != nil {
				return stop, err
			}
		}
		m.undoTo(mark)
		return false, nil
	case *Var:
		name, nok := deref(args[1]).(Atom)
		arity, aok := deref(args[2]).(Int)
		if !nok || !aok {
			return false, fmt.Errorf("prolog: functor/3: insufficiently instantiated")
		}
		var built Term
		if arity == 0 {
			built = name
		} else {
			as := make([]Term, arity)
			for i := range as {
				as[i] = NewVar("_F")
			}
			built = Comp(string(name), as...)
		}
		return biUnify(m, []Term{args[0], built}, 0, 0, k)
	}
	return false, nil
}

func biArg(m *Machine, args []Term, _, _ int, k cont) (bool, error) {
	n, ok := deref(args[0]).(Int)
	if !ok {
		return false, fmt.Errorf("prolog: arg/3: first argument must be an integer")
	}
	c, ok := deref(args[1]).(*Compound)
	if !ok {
		return false, fmt.Errorf("prolog: arg/3: second argument must be compound")
	}
	if n < 1 || int(n) > len(c.Args) {
		return false, nil
	}
	return biUnify(m, []Term{args[2], c.Args[n-1]}, 0, 0, k)
}

// biCall implements call/1..8: call(G, E1..En) appends the extra args to G
// and proves it with a fresh (local) cut barrier.
func biCall(m *Machine, args []Term, depth, _ int, k cont) (bool, error) {
	goal := deref(args[0])
	extra := args[1:]
	if len(extra) > 0 {
		switch g := goal.(type) {
		case Atom:
			goal = Comp(string(g), extra...)
		case *Compound:
			goal = Comp(g.Functor, append(append([]Term{}, g.Args...), extra...)...)
		default:
			return false, fmt.Errorf("prolog: call: goal is not callable")
		}
	}
	stop, err := m.solve(goal, depth+1, k)
	if isCut(err) {
		err = nil
	}
	return stop, err
}
