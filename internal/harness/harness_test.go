package harness

import (
	"strings"
	"testing"

	"kaskade/internal/workload"
)

// tiny keeps harness tests fast: ~5% of default dataset sizes.
func tiny() Config { return Config{Scale: 0.05, Sample: 25} }

func TestFig5ShapesHold(t *testing.T) {
	rows, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	byDataset := map[string][]Fig5Row{}
	for _, r := range rows {
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
		// α-monotonicity everywhere.
		if r.Est50 > r.Est95 {
			t.Errorf("%s@%d: est50 %g > est95 %g", r.Dataset, r.Edges, r.Est50, r.Est95)
		}
	}
	// Power-law graph (soc): the α-percentile estimators bracket the
	// actual on the largest prefix, and Erdős–Rényi underestimates it.
	socRows := byDataset["soc"]
	last := socRows[len(socRows)-1]
	if !(last.Est50 <= float64(last.Actual)) {
		t.Errorf("soc: est50 %g should lower-bound actual %d", last.Est50, last.Actual)
	}
	if !(last.Est95 >= float64(last.Actual)/4) {
		t.Errorf("soc: est95 %g implausibly far below actual %d", last.Est95, last.Actual)
	}
	if last.ErdosRenyi >= float64(last.Actual) {
		t.Errorf("soc: Erdős–Rényi %g should underestimate actual %d (§V-A)", last.ErdosRenyi, last.Actual)
	}
	// Homogeneous connectors exceed the base graph size (§VII-D): the
	// 2-hop connector on soc is larger than the graph itself.
	if last.Actual <= int64(last.Edges) {
		t.Errorf("soc: connector (%d) should exceed graph size (%d)", last.Actual, last.Edges)
	}
}

func TestFig6ReductionShape(t *testing.T) {
	rows, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig6Row{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.Stage] = r
	}
	// prov: filter cuts sharply (satellites dominate raw); connector
	// cuts further below the raw size.
	if !(byKey["prov/filter"].Edges < byKey["prov/raw"].Edges/3) {
		t.Errorf("prov filter %d vs raw %d: expected >3x reduction",
			byKey["prov/filter"].Edges, byKey["prov/raw"].Edges)
	}
	if !(byKey["prov/connector"].Edges < byKey["prov/raw"].Edges) {
		t.Errorf("prov connector %d not below raw %d",
			byKey["prov/connector"].Edges, byKey["prov/raw"].Edges)
	}
	// dblp: milder but present reduction at the filter stage.
	if !(byKey["dblp/filter"].Edges < byKey["dblp/raw"].Edges) {
		t.Errorf("dblp filter %d not below raw %d",
			byKey["dblp/filter"].Edges, byKey["dblp/raw"].Edges)
	}
	// Vertex counts shrink at each heterogeneous filter stage.
	if !(byKey["prov/connector"].Vertices < byKey["prov/filter"].Vertices) {
		t.Errorf("prov connector keeps %d vertices, filter %d",
			byKey["prov/connector"].Vertices, byKey["prov/filter"].Vertices)
	}
}

func TestFig7RunsAndAgrees(t *testing.T) {
	rows, err := Fig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Dataset] = true
		if r.Baseline <= 0 || r.Connector <= 0 {
			t.Errorf("%s/%s: non-positive durations", r.Dataset, r.Query)
		}
		// Q1 agreement on prov (exact rewriting on the DAG lineage).
		if r.Dataset == "prov" && r.Query == workload.Q1BlastRadius {
			if r.BaselineResult != r.ConnectorResult {
				t.Errorf("prov Q1: base=%d conn=%d", r.BaselineResult, r.ConnectorResult)
			}
		}
	}
	for _, d := range []string{"prov", "dblp", "roadnet", "soc"} {
		if !seen[d] {
			t.Errorf("dataset %s missing from Fig. 7", d)
		}
	}
	// Q1 appears only for prov.
	for _, r := range rows {
		if r.Query == workload.Q1BlastRadius && r.Dataset != "prov" {
			t.Errorf("Q1 ran on %s", r.Dataset)
		}
	}
}

func TestFig8Fits(t *testing.T) {
	rows, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	fits := map[string]Fig8Row{}
	for _, r := range rows {
		fits[r.Dataset] = r
	}
	// Power-law datasets fit well; roadnet does not look power-law
	// (tiny max degree).
	if fits["soc"].R2 < 0.6 {
		t.Errorf("soc R² = %.2f, want power-law-like", fits["soc"].R2)
	}
	if fits["roadnet"].MaxDeg > 4 {
		t.Errorf("roadnet max degree = %d", fits["roadnet"].MaxDeg)
	}
	if fits["soc"].MaxDeg <= fits["roadnet"].MaxDeg {
		t.Error("soc should have much heavier tail than roadnet")
	}
}

func TestTableIII(t *testing.T) {
	rows, err := TableIII(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 4 raw + 2 summarized
		t.Fatalf("Table III rows = %d, want 6", len(rows))
	}
	if rows[0].Name != "prov (raw)" || rows[1].Name != "prov (summarized)" {
		t.Errorf("row order: %v, %v", rows[0].Name, rows[1].Name)
	}
	if rows[1].Edges >= rows[0].Edges {
		t.Error("summarized prov not smaller than raw")
	}
}

func TestAblationShape(t *testing.T) {
	rows, err := Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Constrained candidate count stays tiny while the
		// unconstrained space grows with k.
		if r.ConstrainedCandidates > 12 {
			t.Errorf("maxK=%d: %d constrained candidates", r.MaxK, r.ConstrainedCandidates)
		}
		if r.MaxK >= 6 && r.UnconstrainedSolutions <= r.ConstrainedCandidates {
			t.Errorf("maxK=%d: unconstrained %d not larger than constrained %d",
				r.MaxK, r.UnconstrainedSolutions, r.ConstrainedCandidates)
		}
	}
	// Unconstrained space grows with k (cyclic schema).
	if rows[4].UnconstrainedSolutions <= rows[0].UnconstrainedSolutions {
		t.Error("unconstrained space should grow with k")
	}
	if rows[4].ProceduralExplored <= rows[0].ProceduralExplored {
		t.Error("Alg. 1 explored count should grow with k")
	}
}

func TestPrinters(t *testing.T) {
	var sb strings.Builder
	cfg := tiny()
	if rows, err := Fig6(cfg); err == nil {
		PrintFig6(&sb, rows)
	}
	if rows, err := Fig8(cfg); err == nil {
		PrintFig8(&sb, rows)
	}
	if rows, err := TableIII(cfg); err == nil {
		PrintTableIII(&sb, rows)
	}
	PrintTableIAndII(&sb)
	PrintTableIV(&sb)
	if rows, err := Ablation(); err == nil {
		PrintAblation(&sb, rows)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 6", "Fig. 8", "Table III", "Table I", "Table IV", "ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q", want)
		}
	}
}
