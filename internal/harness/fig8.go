package harness

import (
	"fmt"
	"io"

	"kaskade/internal/datagen"
	"kaskade/internal/stats"
)

// Fig8Row summarizes one dataset's degree distribution: the log-log CCDF
// power-law fit (slope, implied exponent γ, R² goodness-of-linear-fit)
// plus distribution extremes. The paper's Fig. 8 plots the CCDFs; the
// fit quantifies "roughly modeled by a power law ... as evidenced by a
// goodness-of-linear-fit".
type Fig8Row struct {
	Dataset  string
	Vertices int
	Slope    float64
	Gamma    float64
	R2       float64
	MaxDeg   int
	P50      int
	P95      int
	// CCDF holds a decimated CCDF series for plotting.
	CCDF []stats.CCDFPoint
}

// Fig8 computes degree distributions and power-law fits per dataset.
func Fig8(cfg Config) ([]Fig8Row, error) {
	graphs, names, err := Datasets(cfg)
	if err != nil {
		return nil, err
	}
	var rows []Fig8Row
	for _, name := range names {
		g := graphs[name]
		// The provenance graph the evaluation queries run on is the
		// summarized (jobs+files) one; its degree distribution is the
		// relevant power law (the raw graph's bulk is near-constant-
		// degree task chains).
		if name == datagen.NameProv {
			var err error
			g, err = FilteredProv(g)
			if err != nil {
				return nil, err
			}
		}
		degs := stats.OutDegrees(g, "")
		summary := stats.Summarize(g, "")
		row := Fig8Row{
			Dataset:  name,
			Vertices: len(degs),
			MaxDeg:   summary.Max,
			P50:      summary.P50,
			P95:      summary.P95,
		}
		if fit, err := stats.FitPowerLaw(degs); err == nil {
			row.Slope = fit.Slope
			row.Gamma = fit.Gamma()
			row.R2 = fit.R2
		}
		ccdf := stats.CCDF(degs)
		row.CCDF = decimate(ccdf, 12)
		rows = append(rows, row)
	}
	return rows, nil
}

// decimate keeps at most n evenly spaced points of a series.
func decimate(pts []stats.CCDFPoint, n int) []stats.CCDFPoint {
	if len(pts) <= n {
		return pts
	}
	out := make([]stats.CCDFPoint, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pts[i*(len(pts)-1)/(n-1)])
	}
	return out
}

// PrintFig8 renders fits and a compact CCDF series per dataset.
func PrintFig8(w io.Writer, rows []Fig8Row) {
	header := []string{"dataset", "vertices", "ccdf_slope", "gamma", "R2", "p50", "p95", "max_deg"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset,
			fmt.Sprintf("%d", r.Vertices),
			fmt.Sprintf("%.2f", r.Slope),
			fmt.Sprintf("%.2f", r.Gamma),
			fmt.Sprintf("%.3f", r.R2),
			fmt.Sprintf("%d", r.P50),
			fmt.Sprintf("%d", r.P95),
			fmt.Sprintf("%d", r.MaxDeg),
		})
	}
	fmt.Fprintln(w, "Fig. 8: degree distribution power-law fits (log-log CCDF)")
	table(w, header, cells)
	for _, r := range rows {
		fmt.Fprintf(w, "  %s CCDF (deg: count_above):", r.Dataset)
		for _, p := range r.CCDF {
			fmt.Fprintf(w, " %d:%d", p.Degree, p.Count)
		}
		fmt.Fprintln(w)
	}
}
