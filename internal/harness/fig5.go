package harness

import (
	"fmt"
	"io"

	"kaskade/internal/cost"
	"kaskade/internal/datagen"
	"kaskade/internal/graph"
	"kaskade/internal/views"
)

// Fig5Row is one point of Fig. 5: 2-hop connector size over the subgraph
// induced by the first Edges edges of a dataset — the α=50 and α=95
// estimates (Eq. 2/3), the Erdős–Rényi estimate (Eq. 1, shown by §V-A to
// underestimate badly), and the actual count of 2-length paths.
type Fig5Row struct {
	Dataset    string
	Edges      int     // |E| of the prefix subgraph (the x-axis)
	Est50      float64 // Eq. 2/3 with α=50
	Est95      float64 // Eq. 2/3 with α=95
	ErdosRenyi float64 // Eq. 1
	Actual     int64   // exact 2-length path count
}

// Fig5 sweeps edge prefixes of each dataset (log-spaced) and computes
// estimated vs. actual 2-hop connector sizes.
func Fig5(cfg Config) ([]Fig5Row, error) {
	graphs, names, err := Datasets(cfg)
	if err != nil {
		return nil, err
	}
	var rows []Fig5Row
	for _, name := range names {
		g := graphs[name]
		for _, n := range prefixSizes(g.NumEdges()) {
			sub, err := datagen.Prefix(g, n)
			if err != nil {
				return nil, err
			}
			row, err := fig5Point(name, sub)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func fig5Point(name string, g *graph.Graph) (Fig5Row, error) {
	props := cost.Collect(g)
	est50, err := cost.EstimateKHopPaths(props, g.Schema(), 2, 50)
	if err != nil {
		return Fig5Row{}, err
	}
	est95, err := cost.EstimateKHopPaths(props, g.Schema(), 2, 95)
	if err != nil {
		return Fig5Row{}, err
	}
	return Fig5Row{
		Dataset:    name,
		Edges:      g.NumEdges(),
		Est50:      est50,
		Est95:      est95,
		ErdosRenyi: cost.ErdosRenyiPaths(int64(g.NumVertices()), int64(g.NumEdges()), 2),
		Actual:     views.CountKHopPaths(g, "", "", 2),
	}, nil
}

// prefixSizes returns log-spaced prefix sizes up to the graph's edge
// count (the paper sweeps 10^4..10^7; we sweep from 10^3 up to the
// generated size).
func prefixSizes(max int) []int {
	var out []int
	for n := 1000; n < max; n *= 3 {
		out = append(out, n)
	}
	out = append(out, max)
	return out
}

// PrintFig5 renders the sweep as an aligned table.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	header := []string{"dataset", "graph_edges", "est_a50", "est_a95", "erdos_renyi", "actual_connector_edges"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset,
			fmt.Sprintf("%d", r.Edges),
			fmt.Sprintf("%.3g", r.Est50),
			fmt.Sprintf("%.3g", r.Est95),
			fmt.Sprintf("%.3g", r.ErdosRenyi),
			fmt.Sprintf("%d", r.Actual),
		})
	}
	fmt.Fprintln(w, "Fig. 5: estimated vs. actual 2-hop connector sizes over edge prefixes (log-log in the paper)")
	table(w, header, cells)
}
