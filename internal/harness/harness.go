// Package harness regenerates every table and figure of the paper's
// evaluation (§VII) over the synthetic stand-in datasets: Fig. 5 (view
// size estimation), Fig. 6 (effective size reduction), Fig. 7 (query
// runtimes over filter vs. connector views), Fig. 8 (degree
// distributions), Tables I-IV, and the §IV-A search-space ablation.
//
// Absolute numbers differ from the paper (different hardware, scaled
// datasets); the shapes the paper reports are what the harness verifies:
// who wins, by roughly what factor, and where the crossovers fall.
package harness

import (
	"fmt"
	"io"
	"strings"

	"kaskade/internal/datagen"
	"kaskade/internal/graph"
	"kaskade/internal/views"
)

// Config controls dataset scales so experiments fit a laptop budget.
type Config struct {
	// Scale multiplies the default dataset sizes (1.0 = package
	// defaults; benches use smaller).
	Scale float64
	// Seed offsets generator seeds (0 = defaults).
	Seed int64
	// Sample caps per-source traversals in Fig. 7 queries.
	Sample int
	// Workers sets pattern-match parallelism for the gql-executed
	// queries the harness times (0 or 1 = sequential, negative = one
	// worker per available CPU). The harness materializes its views one
	// at a time — only cmd/kaskade's AdoptSelection path builds views
	// concurrently. Parallel runs produce the same numbers as
	// sequential ones — the executor's merge is deterministic — just
	// faster.
	Workers int
}

// DefaultConfig is the scale used by `kaskade-bench` without flags.
func DefaultConfig() Config { return Config{Scale: 1, Sample: 200} }

// Datasets returns the four evaluation graphs at the configured scale,
// keyed by short name, in Table III order.
func Datasets(cfg Config) (map[string]*graph.Graph, []string, error) {
	names := []string{datagen.NameProv, datagen.NameDBLP, datagen.NameRoadNet, datagen.NameSocial}
	out := make(map[string]*graph.Graph, len(names))
	for _, n := range names {
		g, err := datagen.Generate(n, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, nil, fmt.Errorf("harness: generating %s: %w", n, err)
		}
		out[n] = g
	}
	return out, names, nil
}

// FilteredProv applies the schema-level summarizer of the evaluation
// (keep jobs and files) to the raw provenance graph. The summarizer is
// compiled from the same defining pattern CREATE VIEW accepts, so the
// harness exercises the declarative surface; the compiled view is the
// VertexInclusionSummarizer struct, so the output is unchanged.
func FilteredProv(raw *graph.Graph) (*graph.Graph, error) {
	return views.MustCompile(`MATCH (v) WHERE LABEL(v) = 'File' OR LABEL(v) = 'Job' RETURN v`).Materialize(raw)
}

// FilteredDBLP keeps authors and papers (the paper's summarized dblp
// keeps authors and publication-type vertices); declaratively defined
// like FilteredProv.
func FilteredDBLP(raw *graph.Graph) (*graph.Graph, error) {
	return views.MustCompile(`MATCH (v) WHERE LABEL(v) = 'Author' OR LABEL(v) = 'Paper' RETURN v`).Materialize(raw)
}

// table renders aligned rows.
func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
}
