package harness

import (
	"fmt"
	"io"

	"kaskade/internal/graph"
	"kaskade/internal/views"
)

// Fig6Row is one bar group of Fig. 6: the effective graph size at each
// stage — raw graph, schema-level summarizer (filter), and 2-hop
// connector over the filtered graph.
type Fig6Row struct {
	Dataset  string
	Stage    string // raw | filter | connector
	Vertices int
	Edges    int
}

// Fig6 reproduces the effective-size-reduction experiment on the two
// heterogeneous networks (§VII-E): prov summarizes to jobs+files then
// contracts job-file-job paths; dblp summarizes to authors+papers then
// contracts author-paper-author paths.
func Fig6(cfg Config) ([]Fig6Row, error) {
	graphs, _, err := Datasets(cfg)
	if err != nil {
		return nil, err
	}
	var rows []Fig6Row
	stages := func(name string, raw *graph.Graph, keep []string, src string) error {
		rows = append(rows, Fig6Row{name, "raw", raw.NumVertices(), raw.NumEdges()})
		filtered, err := views.VertexInclusionSummarizer{Types: keep}.Materialize(raw)
		if err != nil {
			return err
		}
		rows = append(rows, Fig6Row{name, "filter", filtered.NumVertices(), filtered.NumEdges()})
		conn, err := views.KHopConnector{SrcType: src, DstType: src, K: 2}.Materialize(filtered)
		if err != nil {
			return err
		}
		rows = append(rows, Fig6Row{name, "connector", conn.NumVertices(), conn.NumEdges()})
		return nil
	}
	if err := stages("prov", graphs["prov"], []string{"Job", "File"}, "Job"); err != nil {
		return nil, err
	}
	if err := stages("dblp", graphs["dblp"], []string{"Author", "Paper"}, "Author"); err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintFig6 renders the stages with reduction factors.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	header := []string{"dataset", "stage", "vertices", "edges", "edge_reduction_vs_raw"}
	var cells [][]string
	rawEdges := map[string]int{}
	for _, r := range rows {
		if r.Stage == "raw" {
			rawEdges[r.Dataset] = r.Edges
		}
	}
	for _, r := range rows {
		red := "1x"
		if base := rawEdges[r.Dataset]; base > 0 && r.Edges > 0 {
			red = fmt.Sprintf("%.1fx", float64(base)/float64(r.Edges))
		}
		cells = append(cells, []string{
			r.Dataset, r.Stage,
			fmt.Sprintf("%d", r.Vertices),
			fmt.Sprintf("%d", r.Edges),
			red,
		})
	}
	fmt.Fprintln(w, "Fig. 6: effective graph size reduction (summarizer then 2-hop connector)")
	table(w, header, cells)
}
