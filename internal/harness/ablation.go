package harness

import (
	"fmt"
	"io"

	"kaskade/internal/constraints"
	"kaskade/internal/datagen"
	"kaskade/internal/enum"
	"kaskade/internal/gql"
)

// BlastRadiusQuery is the paper's Listing 1, used throughout the
// evaluation and in the ablation.
const BlastRadiusQuery = `
SELECT A.pipelineName, AVG(T_CPU) FROM (
  SELECT A, SUM(B.CPU) AS T_CPU FROM (
    MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
          (q_f1:File)-[r*0..8]->(q_f2:File)
          (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
    RETURN q_j1 AS A, q_j2 AS B
  ) GROUP BY A, B
) GROUP BY A.pipelineName`

// AblationRow compares, at one maximum k, the search effort of
// constraint-injected enumeration against (a) unconstrained declarative
// schema-path enumeration and (b) the procedural Alg. 1 — the §IV-A2
// claim that injected query constraints prune the M^k schema-path space
// to a handful of feasible instantiations.
type AblationRow struct {
	MaxK int
	// Constrained enumeration (query + schema constraints injected).
	ConstrainedCandidates int
	ConstrainedSteps      int64
	// Unconstrained declarative enumeration (schema constraints only).
	UnconstrainedSolutions int
	UnconstrainedSteps     int64
	// Procedural Alg. 1 over the same schema.
	ProceduralPaths    int
	ProceduralExplored int
}

// Ablation runs the §IV-A search-space comparison over the full prov
// schema (which contains a Task->Task cycle, the M^k worst case) for a
// range of k bounds.
func Ablation() ([]AblationRow, error) {
	schema := datagen.ProvSchema()
	q := gql.MustParse(BlastRadiusQuery)
	var rows []AblationRow
	for _, maxK := range []int{2, 4, 6, 8, 10} {
		en := &enum.Enumerator{Schema: schema, MaxK: maxK}
		res, err := en.Enumerate(q)
		if err != nil {
			return nil, err
		}
		unSol, unSteps, err := enum.UnconstrainedSchemaPaths(schema, maxK)
		if err != nil {
			return nil, err
		}
		paths, explored := constraints.KHopSchemaPathsProcedural(schema.EdgeTypes(), maxK)
		rows = append(rows, AblationRow{
			MaxK:                   maxK,
			ConstrainedCandidates:  len(res.Candidates),
			ConstrainedSteps:       res.Steps,
			UnconstrainedSolutions: unSol,
			UnconstrainedSteps:     unSteps,
			ProceduralPaths:        len(paths),
			ProceduralExplored:     explored,
		})
	}
	return rows, nil
}

// PrintAblation renders the comparison.
func PrintAblation(w io.Writer, rows []AblationRow) {
	header := []string{"max_k", "constrained_candidates", "constrained_steps",
		"unconstrained_solutions", "unconstrained_steps", "alg1_paths", "alg1_explored"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.MaxK),
			fmt.Sprintf("%d", r.ConstrainedCandidates),
			fmt.Sprintf("%d", r.ConstrainedSteps),
			fmt.Sprintf("%d", r.UnconstrainedSolutions),
			fmt.Sprintf("%d", r.UnconstrainedSteps),
			fmt.Sprintf("%d", r.ProceduralPaths),
			fmt.Sprintf("%d", r.ProceduralExplored),
		})
	}
	fmt.Fprintln(w, "§IV-A ablation: constraint-injected enumeration vs. unconstrained schema paths vs. procedural Alg. 1 (prov schema, cyclic)")
	table(w, header, cells)
}
