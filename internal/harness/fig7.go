package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"kaskade/internal/datagen"
	"kaskade/internal/views"
	"kaskade/internal/workload"
)

// Fig7Row is one bar pair of Fig. 7: a query's total runtime over the
// baseline graph (the filtered graph for heterogeneous datasets, the raw
// graph for homogeneous ones) versus over the 2-hop connector view, with
// the rewritten hop/pass budgets of §VII-C.
type Fig7Row struct {
	Dataset   string
	Query     workload.QueryID
	Baseline  time.Duration
	Connector time.Duration
	// Speedup is Baseline/Connector (>1 means the view wins).
	Speedup float64
	// BaselineResult/ConnectorResult are the scalar result summaries
	// (equal for the exactly-rewritable heterogeneous queries).
	BaselineResult  int64
	ConnectorResult int64
}

// fig7Scenario describes one dataset's Fig. 7 panel.
type fig7Scenario struct {
	name       string
	keepTypes  []string // schema summarizer for heterogeneous datasets (nil = raw)
	sourceType string
	queries    []workload.QueryID
	// scaleMul/sampleCap tame the homogeneous power-law case: its 2-hop
	// connector is ~two orders of magnitude larger than the raw graph
	// (the §VII-D finding), so running it at full scale only burns time
	// re-demonstrating the loss.
	scaleMul  float64
	sampleCap int
}

// Fig7 measures the Table IV workload over baseline vs. connector graphs
// for all four datasets (§VII-F). Q1 runs only on prov (its blast-radius
// semantics needs job CPU properties), matching the paper's figure.
func Fig7(cfg Config) ([]Fig7Row, error) {
	return Fig7Context(context.Background(), cfg)
}

// Fig7Context is Fig7 with cancellation: the experiment's timed queries
// observe ctx, so an over-scaled sweep can be abandoned (kaskade-bench
// wires Ctrl-C and -timeout here).
func Fig7Context(ctx context.Context, cfg Config) ([]Fig7Row, error) {
	all := []workload.QueryID{
		workload.Q2Ancestors, workload.Q3Descendants, workload.Q4PathLengths,
		workload.Q5EdgeCount, workload.Q6VertexCount,
		workload.Q7Community, workload.Q8LargestComm,
	}
	scenarios := []fig7Scenario{
		{"prov", []string{"Job", "File"}, "Job", append([]workload.QueryID{workload.Q1BlastRadius}, all...), 1, 0},
		{"dblp", []string{"Author", "Paper"}, "Author", all, 1, 0},
		{"roadnet", nil, "Intersection", all, 1, 0},
		{"soc", nil, "User", all, 0.25, 50},
	}
	var rows []Fig7Row
	for _, sc := range scenarios {
		raw, err := datagen.Generate(sc.name, cfg.Scale*sc.scaleMul, cfg.Seed)
		if err != nil {
			return nil, err
		}
		base := raw
		if sc.keepTypes != nil {
			base, err = views.VertexInclusionSummarizer{Types: sc.keepTypes}.Materialize(raw)
			if err != nil {
				return nil, err
			}
		}
		src := sc.sourceType
		if sc.keepTypes == nil {
			src = "" // homogeneous: vertex-to-vertex connector
		}
		conn, err := views.KHopConnector{SrcType: src, DstType: src, K: 2}.Materialize(base)
		if err != nil {
			return nil, err
		}
		// Freeze both sides before the timed runs: the queries execute on
		// the CSR path either way (the executor freezes lazily), but the
		// one-off index build must not land inside a measured interval.
		base.Freeze()
		conn.Freeze()
		sample := cfg.Sample
		if sc.sampleCap > 0 && (sample == 0 || sample > sc.sampleCap) {
			sample = sc.sampleCap
		}
		baseRun := workload.BaseRunner(base, sc.sourceType, sample)
		connRun := workload.ConnectorRunner(conn, sc.sourceType, 2, sample)
		baseRun.Workers, connRun.Workers = cfg.Workers, cfg.Workers
		for _, q := range sc.queries {
			row, err := timeQuery(ctx, sc.name, q, baseRun, connRun)
			if err != nil {
				return nil, fmt.Errorf("harness: fig7 %s %s: %w", sc.name, q, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func timeQuery(ctx context.Context, dataset string, q workload.QueryID, base, conn *workload.Runner) (Fig7Row, error) {
	start := time.Now()
	bres, err := base.RunContext(ctx, q)
	if err != nil {
		return Fig7Row{}, err
	}
	bdur := time.Since(start)

	start = time.Now()
	cres, err := conn.RunContext(ctx, q)
	if err != nil {
		return Fig7Row{}, err
	}
	cdur := time.Since(start)

	speedup := 0.0
	if cdur > 0 {
		speedup = float64(bdur) / float64(cdur)
	}
	return Fig7Row{
		Dataset: dataset, Query: q,
		Baseline: bdur, Connector: cdur, Speedup: speedup,
		BaselineResult: bres, ConnectorResult: cres,
	}, nil
}

// PrintFig7 renders the runtime comparison.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	header := []string{"dataset", "query", "baseline", "connector", "speedup", "base_result", "conn_result"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, string(r.Query),
			r.Baseline.String(), r.Connector.String(),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%d", r.BaselineResult),
			fmt.Sprintf("%d", r.ConnectorResult),
		})
	}
	fmt.Fprintln(w, "Fig. 7: total query runtimes, baseline graph vs. 2-hop connector view")
	table(w, header, cells)
}
