package harness

import (
	"fmt"
	"io"

	"kaskade/internal/core"
	"kaskade/internal/workload"
)

// TableIIIRow is one dataset inventory row (the paper's Table III).
type TableIIIRow struct {
	Name     string
	Type     string
	Vertices int
	Edges    int
}

// TableIII generates the datasets and reports their sizes, including the
// summarized provenance and dblp variants the runtime experiments use.
func TableIII(cfg Config) ([]TableIIIRow, error) {
	graphs, names, err := Datasets(cfg)
	if err != nil {
		return nil, err
	}
	kinds := map[string]string{
		"prov":    "Data lineage (heterogeneous)",
		"dblp":    "Publications (heterogeneous)",
		"roadnet": "Road network (homogeneous)",
		"soc":     "Social network (homogeneous)",
	}
	var rows []TableIIIRow
	for _, n := range names {
		g := graphs[n]
		rows = append(rows, TableIIIRow{Name: n + " (raw)", Type: kinds[n], Vertices: g.NumVertices(), Edges: g.NumEdges()})
		switch n {
		case "prov":
			f, err := FilteredProv(g)
			if err != nil {
				return nil, err
			}
			rows = append(rows, TableIIIRow{Name: "prov (summarized)", Type: kinds[n], Vertices: f.NumVertices(), Edges: f.NumEdges()})
		case "dblp":
			f, err := FilteredDBLP(g)
			if err != nil {
				return nil, err
			}
			rows = append(rows, TableIIIRow{Name: "dblp (summarized)", Type: kinds[n], Vertices: f.NumVertices(), Edges: f.NumEdges()})
		}
	}
	return rows, nil
}

// PrintTableIII renders the dataset inventory.
func PrintTableIII(w io.Writer, rows []TableIIIRow) {
	header := []string{"short_name", "type", "|V|", "|E|"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name, r.Type, fmt.Sprintf("%d", r.Vertices), fmt.Sprintf("%d", r.Edges),
		})
	}
	fmt.Fprintln(w, "Table III: networks used for evaluation (synthetic stand-ins at laptop scale)")
	table(w, header, cells)
}

// PrintTableIAndII renders the view-class inventories.
func PrintTableIAndII(w io.Writer) {
	fmt.Fprint(w, core.ViewInventory())
}

// PrintTableIV renders the query workload.
func PrintTableIV(w io.Writer) {
	header := []string{"query", "name", "operation", "result"}
	var cells [][]string
	for _, q := range workload.TableIV() {
		cells = append(cells, []string{string(q.ID), q.Name, q.Operation, q.Result})
	}
	fmt.Fprintln(w, "Table IV: query workload")
	table(w, header, cells)
}
