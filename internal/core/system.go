// Package core wires Kaskade's components (Fig. 2 of the paper) into one
// system: the constraint miner and inference-based view enumerator feed
// the workload analyzer (view selection) and the query rewriter; an
// execution engine evaluates plans over the raw graph or over
// materialized views. The root kaskade package re-exports this as the
// public API.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"kaskade/internal/cost"
	"kaskade/internal/enum"
	"kaskade/internal/exec"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/metrics"
	"kaskade/internal/par"
	"kaskade/internal/views"
	"kaskade/internal/workload"
)

// System is a Kaskade instance over one base graph.
//
// A System is safe for concurrent use: graphs are read-only after
// load, and the catalog guards its view set with a read/write lock, so
// queries (Query, QueryContext, QueryRows, prepared executions) may
// overlap each other and AdoptSelection/MaterializeView. Each catalog
// mutation bumps the catalog epoch; prepared queries poll it and
// transparently re-rewrite, and ad-hoc queries always rewrite against
// the current view set.
//
// Views are managed declaratively through Exec (CREATE [MATERIALIZED]
// VIEW name AS <pattern>, DROP VIEW, SHOW VIEWS — see ddl.go); the
// struct-based MaterializeView/AdoptSelection/DropView calls are the
// programmatic face of the same catalog.
type System struct {
	graph    *graph.Graph
	analyzer *workload.Analyzer
	catalog  *workload.Catalog
	// metrics is the always-on observability registry (see
	// internal/metrics); SetMetrics(nil) disables recording (the
	// overhead A/B switch the bench guard uses). Atomic so the switch
	// may race in-flight queries.
	metrics atomic.Pointer[metrics.Registry]
	// MaxRows guards query execution (0 = unlimited).
	MaxRows int
	// Parallelism controls both pattern-match workers during query
	// execution and concurrent view materialization in AdoptSelection:
	// 0 or 1 = sequential, N>1 = that many workers, negative = one per
	// available CPU. Parallel execution is deterministic — results are
	// identical to the sequential path (see internal/exec).
	Parallelism int
}

// New creates a system over the given graph. The graph should have a
// schema — Kaskade's constraint mining feeds on it (§IV-A); without one,
// only raw execution works. The graph is frozen here (its immutable CSR
// view built and cached), so every query and traversal runs on the
// frozen path from the first call; per the read-only-after-load
// contract, the graph must not be mutated after this.
func New(g *graph.Graph) *System {
	g.Freeze()
	s := &System{
		graph:    g,
		analyzer: &workload.Analyzer{Schema: g.Schema()},
		catalog:  workload.NewCatalog(g),
	}
	r := metrics.NewRegistry()
	s.metrics.Store(r)
	s.catalog.SetMetrics(r)
	return s
}

// Metrics returns the System's metrics registry (nil when disabled via
// SetMetrics). Query execution, rewriting, and materialization record
// into it continuously; read it directly for cumulative counters and
// top-queries, or take consistent point-in-time copies with
// MetricsSnapshot.
func (s *System) Metrics() *metrics.Registry { return s.metrics.Load() }

// SetMetrics replaces the System's metrics registry; nil disables
// recording entirely (the A/B switch behind the metrics-overhead bench
// guard). Safe to call concurrently with queries: in-flight executions
// finish recording into whichever registry they started with.
func (s *System) SetMetrics(r *metrics.Registry) {
	s.metrics.Store(r)
	s.catalog.SetMetrics(r)
}

// MetricsSnapshot returns a point-in-time copy of every metric: the
// registry's counters and latency histogram, the process-wide freeze
// and worker-pool gauges, and the per-view rewrite-hit counters in
// catalog order. It is lock-free with respect to query execution, so
// a monitoring loop (the `kaskade top` sampler) never stalls queries.
func (s *System) MetricsSnapshot() metrics.Snapshot {
	var snap metrics.Snapshot
	if r := s.metrics.Load(); r != nil {
		snap = r.Snapshot()
	}
	snap.FreezeEvents = graph.CSRBuilds()
	snap.WorkersActive = par.ActiveWorkers()
	snap.WorkersPeak = par.PeakWorkers()
	// CachedFrozen, not Freeze: a monitoring scrape reports the columns
	// that exist, it never pays (or fails) an O(V+E) freeze build.
	if fz := s.graph.CachedFrozen(); fz != nil {
		cols, colBytes := fz.ColumnStats()
		snap.ColumnCount = int64(cols)
		snap.ColumnBytes = colBytes
		tv, te := fz.TailSize()
		snap.DeltaTailVertices = int64(tv)
		snap.DeltaTailEdges = int64(te)
	}
	snap.OverlayReads = graph.OverlayReads()
	snap.Compactions = graph.CompactionsTotal()
	snap.LastCompaction = graph.LastCompactionDuration()
	for _, v := range s.catalog.ListViews() {
		snap.Views = append(snap.Views, metrics.ViewCount{Name: v.Name, Hits: v.Hits})
	}
	return snap
}

// Graph returns the base graph.
func (s *System) Graph() *graph.Graph { return s.graph }

// Catalog returns the materialized view catalog.
func (s *System) Catalog() *workload.Catalog { return s.catalog }

// Epoch returns the catalog's mutation counter: it increments on every
// view created or dropped, so any result computed at epoch E is
// guaranteed unaffected by catalog changes exactly while Epoch() == E.
// It is the invalidation signal for caches layered above the System —
// the kaskaded response cache keys entries by it.
func (s *System) Epoch() uint64 { return s.catalog.Epoch() }

// Stats returns the maintained graph data properties (§V-A).
func (s *System) Stats() *cost.GraphProperties { return cost.Collect(s.graph) }

// Query parses, performs view-based rewriting against the materialized
// catalog (§V-C), and executes the best plan. It is QueryContext
// without cancellation; repeated workloads should Prepare instead.
func (s *System) Query(src string) (*exec.Result, error) {
	return s.QueryContext(context.Background(), src)
}

// QueryWithPlan is Query, also returning the chosen plan for inspection.
func (s *System) QueryWithPlan(src string) (*exec.Result, *workload.Plan, error) {
	q, err := gql.Parse(src)
	if err != nil {
		s.countError()
		return nil, nil, err
	}
	cfg := s.config(nil)
	plan, err := s.plan(q, cfg)
	if err != nil {
		s.countError()
		return nil, nil, err
	}
	res, err := s.executor(cfg, plan.Graph, src).Execute(plan.Query)
	return res, plan, err
}

// QueryRaw executes the query against the base graph, bypassing views
// (the baseline of every experiment). It is shorthand for
// QueryContext with the WithoutViews option.
func (s *System) QueryRaw(src string) (*exec.Result, error) {
	return s.QueryContext(context.Background(), src, WithoutViews())
}

// EnumerateViews runs constraint-based view enumeration (§IV) for one
// query and returns the candidates.
func (s *System) EnumerateViews(src string) ([]enum.Candidate, error) {
	q, err := gql.Parse(src)
	if err != nil {
		return nil, err
	}
	en := &enum.Enumerator{Schema: s.graph.Schema()}
	res, err := en.Enumerate(q)
	if err != nil {
		return nil, err
	}
	return res.Candidates, nil
}

// SelectViews runs view selection (§V-B) for a workload of query strings
// under a space budget in edges, without materializing anything.
func (s *System) SelectViews(workloadQueries []string, budgetEdges int64) (*workload.Selection, error) {
	qs := make([]gql.Query, len(workloadQueries))
	for i, src := range workloadQueries {
		q, err := gql.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("kaskade: workload query %d: %w", i, err)
		}
		qs[i] = q
	}
	return s.analyzer.Analyze(s.graph, qs, budgetEdges)
}

// AdoptSelection materializes every chosen view of a selection into the
// catalog. Independent views are built concurrently when Parallelism
// allows, with leftover worker budget fanned out inside each
// connector's own per-source path search; catalog order matches the
// selection order regardless. Adoption bumps the catalog epoch, so
// prepared queries pick up the new views on their next execution.
func (s *System) AdoptSelection(sel *workload.Selection) error {
	cands := make([]enum.Candidate, len(sel.Chosen))
	for i, ev := range sel.Chosen {
		cands[i] = ev.Candidate
	}
	return s.catalog.AddAll(cands, s.Parallelism)
}

// MaterializeView materializes a single view directly (manual view
// management; anchors default to empty so only summarizer redirection
// or name-matched connector rewriting applies). The build fans out over
// Parallelism workers when the view class supports it.
func (s *System) MaterializeView(v views.View) error {
	return s.catalog.AddAll([]enum.Candidate{{View: v}}, s.Parallelism)
}

// DropView evicts a materialized view from the catalog by name,
// releasing its view graph and bumping the catalog epoch: ad-hoc
// queries stop rewriting over it immediately, and prepared queries
// whose cached plan used it transparently re-rewrite on their next
// execution. It reports whether the view was present.
func (s *System) DropView(name string) bool {
	return s.catalog.DropView(name)
}

// Explain describes the plan Kaskade would choose for a query, without
// executing it — and without touching any usage counter: planning goes
// through Catalog.PlanOnly, so SHOW VIEWS rewrite-hit counters keep
// meaning actual executions. Use ExplainAnalyze to run the plan and see
// per-stage actuals.
func (s *System) Explain(src string) (string, error) {
	q, err := gql.Parse(src)
	if err != nil {
		return "", err
	}
	plan, err := s.catalog.PlanOnly(q)
	if err != nil {
		return "", err
	}
	return s.explainText(plan), nil
}

// ExplainAnalyze executes src through the ordinary query path and
// renders the chosen plan together with per-stage actuals: wall time,
// row counts, and parallel chunk counts per stage, plus the worker
// count and aggregation mode the execution actually used. Unlike
// Explain, this is a real execution — rewrite-hit and query counters
// move, and the reported row counts are exactly what QueryContext
// would have returned.
func (s *System) ExplainAnalyze(ctx context.Context, src string, opts ...QueryOption) (string, error) {
	q, err := gql.Parse(src)
	if err != nil {
		s.countError()
		return "", err
	}
	return s.explainAnalyze(ctx, q, src, opts)
}

// explainAnalyze is ExplainAnalyze over a parsed query — shared with
// the EXPLAIN ANALYZE statement path in Exec.
func (s *System) explainAnalyze(ctx context.Context, q gql.Query, label string, opts []QueryOption) (string, error) {
	cfg := s.config(opts)
	plan, err := s.plan(q, cfg)
	if err != nil {
		s.countError()
		return "", err
	}
	ex := s.executor(cfg, plan.Graph, label)
	ex.Prof = &exec.Profile{}
	if _, err := ex.ExecuteContext(ctx, plan.Query); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(s.explainText(plan))
	fmt.Fprintf(&b, "execution: workers=%d, agg mode=%s\n", ex.Prof.Workers, ex.Prof.Mode)
	b.WriteString(ex.Prof.String())
	return b.String(), nil
}

// explainText renders one plan the way Explain and EXPLAIN [ANALYZE]
// print it.
func (s *System) explainText(plan *workload.Plan) string {
	var b strings.Builder
	if plan.ViewName == "" {
		fmt.Fprintf(&b, "plan: base graph scan (no applicable materialized view)\n")
	} else {
		fmt.Fprintf(&b, "plan: rewritten over materialized view %s\n", plan.ViewName)
		if m, ok := s.catalog.Get(plan.ViewName); ok {
			if m.Def.DDL != "" {
				// The canonical DDL round-trips: feeding it back through
				// Exec recreates an identical view.
				fmt.Fprintf(&b, "view: %s\n", m.Def.DDL)
			} else {
				fmt.Fprintf(&b, "view: %s (struct-defined; no DDL form)\n", m.Candidate.View.Describe())
			}
			fmt.Fprintf(&b, "rewrite hits: %d\n", m.RewriteHits())
		}
	}
	fmt.Fprintf(&b, "estimated cost: %.4g\n", plan.Cost)
	fz := plan.Graph.Freeze()
	cols, colBytes := fz.ColumnStats()
	fmt.Fprintf(&b, "storage: frozen csr (|V|=%d, |E|=%d, edge types=%d, columns=%d (%d B))\n",
		fz.NumVertices(), fz.NumEdges(), len(fz.EdgeTypes()), cols, colBytes)
	if tv, te := fz.TailSize(); tv+te > 0 {
		fmt.Fprintf(&b, "delta: overlay tail %d vertices, %d edges (compactions=%d)\n",
			tv, te, plan.Graph.Compactions())
	}
	if mode := exec.QueryAggModeFor(plan.Query, plan.Graph.Schema()); mode != exec.AggModeNone {
		fmt.Fprintf(&b, "aggregation: %s\n", mode)
	}
	fmt.Fprintf(&b, "query: %s\n", plan.Query.String())
	return b.String()
}

// ViewInventory renders Tables I and II: the connector and summarizer
// classes the view template library supports, each with the canonical
// defining pattern CREATE VIEW accepts (the text round-trips through
// the parser and the view compiler).
func ViewInventory() string {
	type row struct{ name, desc, ddl string }
	connectors := []row{
		{"Same-vertex-type connector", "Target vertices are all pairs of vertices with a specific vertex type.",
			views.SameVertexTypeConnector{VType: "T", MaxLen: 8}.Cypher()},
		{"k-hop connector", "Target vertices are all vertex pairs that are connected through k-length paths.",
			views.KHopConnector{SrcType: "S", DstType: "T", K: 2}.Cypher()},
		{"Same-edge-type connector", "Target vertices are all pairs of vertices connected with a path of edges of a specific edge type.",
			views.SameEdgeTypeConnector{EType: "E", MaxLen: 8}.Cypher()},
		{"Source-to-sink connector", "Target vertices are (source, sink) pairs: no incoming resp. no outgoing edges.",
			views.SourceToSinkConnector{MaxLen: 8}.Cypher()},
	}
	summarizers := []row{
		{"Vertex-removal summarizer", "Removes vertices (and connected edges) satisfying a predicate.",
			views.VertexRemovalSummarizer{Types: []string{"T"}}.Cypher()},
		{"Edge-removal summarizer", "Removes edges satisfying a predicate.",
			views.EdgeRemovalSummarizer{Types: []string{"E"}}.Cypher()},
		{"Vertex-inclusion summarizer", "Keeps vertices satisfying the predicate and edges with both endpoints kept.",
			views.VertexInclusionSummarizer{Types: []string{"S", "T"}}.Cypher()},
		{"Edge-inclusion summarizer", "Keeps only edges satisfying a predicate.",
			views.EdgeInclusionSummarizer{Types: []string{"E"}}.Cypher()},
		{"Vertex-aggregator summarizer", "Groups vertices satisfying a predicate into supervertices with aggregated properties.",
			views.VertexAggregatorSummarizer{VType: "T", GroupBy: "g"}.Cypher()},
		{"Edge-aggregator summarizer", "Groups parallel edges into superedges with aggregated properties.",
			views.EdgeAggregatorSummarizer{EType: "E"}.Cypher()},
		{"Subgraph-aggregator summarizer", "Groups vertices and the edges among them into supervertices.",
			views.SubgraphAggregatorSummarizer{VType: "T", GroupBy: "g"}.Cypher()},
	}
	var b strings.Builder
	emit := func(rows []row) {
		for _, r := range rows {
			fmt.Fprintf(&b, "  %-32s %s\n", r.name, r.desc)
			fmt.Fprintf(&b, "  %-32s e.g. CREATE VIEW v AS %s\n", "", r.ddl)
		}
	}
	b.WriteString("Table I: Connectors in KASKADE\n")
	emit(connectors)
	b.WriteString("Table II: Summarizers in KASKADE\n")
	emit(summarizers)
	return b.String()
}

// DescribeCandidates renders enumerated candidates deterministically,
// appending the canonical DDL pattern where the candidate is
// DDL-expressible — the text an operator can hand straight back to
// CREATE VIEW.
func DescribeCandidates(cands []enum.Candidate) string {
	lines := make([]string, 0, len(cands))
	for _, c := range cands {
		anchor := ""
		if c.SrcVar != "" {
			anchor = fmt.Sprintf(" anchored at (%s, %s)", c.SrcVar, c.DstVar)
		}
		line := fmt.Sprintf("%-28s %s%s", c.Template, c.View.Describe(), anchor)
		if pat, err := views.CanonicalPattern(c.View); err == nil {
			line += "\n" + fmt.Sprintf("%-28s ddl: %s", "", pat)
		}
		lines = append(lines, line)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
