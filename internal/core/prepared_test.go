package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"kaskade/internal/exec"
)

// TestPreparedMatchesAdHoc: a prepared query must return exactly what
// Query returns, before views exist, and again after an epoch bump —
// without being re-prepared.
func TestPreparedMatchesAdHoc(t *testing.T) {
	sys := testSystem(t)
	p, err := sys.Prepare(blastRadius)
	if err != nil {
		t.Fatal(err)
	}

	want, err := sys.Query(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("prepared result diverged from ad-hoc (no views)")
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.ViewName != "" {
		t.Fatalf("plan uses view %q with empty catalog", plan.ViewName)
	}

	// Adopt views: the catalog epoch bumps and the very same prepared
	// query must transparently re-rewrite onto the connector.
	epoch := sys.Catalog().Epoch()
	sel, err := sys.SelectViews([]string{blastRadius}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AdoptSelection(sel); err != nil {
		t.Fatal(err)
	}
	if sys.Catalog().Epoch() == epoch {
		t.Fatal("AdoptSelection did not bump the catalog epoch")
	}

	want2, err := sys.Query(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want2, got2) {
		t.Fatal("prepared result diverged from ad-hoc (after adoption)")
	}
	plan2, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan2.ViewName == "" {
		t.Fatal("prepared plan ignored the newly materialized views")
	}

	// WithoutViews still bypasses the catalog on the same statement.
	raw, err := p.Exec(WithoutViews())
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, err := sys.QueryRaw(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantRaw, raw) {
		t.Fatal("prepared WithoutViews diverged from QueryRaw")
	}
}

// TestPreparedPlanCachedWithinEpoch: consecutive executions at a stable
// epoch reuse the identical *Plan (pointer equality), proving the
// rewrite is skipped.
func TestPreparedPlanCachedWithinEpoch(t *testing.T) {
	sys := testSystem(t)
	sel, err := sys.SelectViews([]string{blastRadius}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AdoptSelection(sel); err != nil {
		t.Fatal(err)
	}
	p, err := sys.Prepare(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("plan re-rewritten despite stable epoch")
	}
}

// TestPreparedReplansAfterDropView pins the staleness fix: a statement
// whose cached plan was rewritten over a view must, after DropView,
// re-rewrite instead of executing the stale plan — and still return
// exactly the base-graph result.
func TestPreparedReplansAfterDropView(t *testing.T) {
	sys := testSystem(t)
	sel, err := sys.SelectViews([]string{blastRadius}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AdoptSelection(sel); err != nil {
		t.Fatal(err)
	}
	p, err := sys.Prepare(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Exec() // caches the view-rewritten plan
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.ViewName == "" {
		t.Fatal("plan does not use a view; nothing to drop")
	}

	epoch := sys.Catalog().Epoch()
	if !sys.DropView(plan.ViewName) {
		t.Fatalf("DropView(%q) = false", plan.ViewName)
	}
	if sys.Catalog().Epoch() == epoch {
		t.Fatal("DropView did not bump the catalog epoch")
	}

	plan2, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan2.ViewName == plan.ViewName {
		t.Fatalf("prepared plan still uses dropped view %q", plan.ViewName)
	}
	got, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("result changed after DropView (views must never change semantics)")
	}

	// DropView of a name that was never materialized reports absence.
	if sys.DropView("NO_SUCH_VIEW") {
		t.Fatal("DropView of an unknown view returned true")
	}
}

// TestPreparedAggMode: the statement surfaces its plan's aggregation
// strategy — the blast-radius workload bottoms out in a pure-projection
// MATCH, while ad-hoc aggregate shapes report partial or buffered.
func TestPreparedAggMode(t *testing.T) {
	sys := testSystem(t)
	cases := []struct {
		src  string
		want exec.AggMode
	}{
		{`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`, exec.AggModeNone},
		{`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j AS job, COUNT(f) AS n`, exec.AggModePartial},
		{`MATCH (j:Job) RETURN AVG(j.CPU) AS a`, exec.AggModeBuffered},
	}
	for _, tc := range cases {
		p, err := sys.Prepare(tc.src)
		if err != nil {
			t.Fatal(err)
		}
		mode, err := p.AggMode()
		if err != nil {
			t.Fatal(err)
		}
		if mode != tc.want {
			t.Errorf("AggMode(%q) = %v, want %v", tc.src, mode, tc.want)
		}
	}
}

// TestPreparedQueryOptions: per-execution options override prepare-time
// defaults, which override System fields.
func TestPreparedQueryOptions(t *testing.T) {
	sys := testSystem(t)
	const q = `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`

	// Prepare-time MaxRows trips...
	p, err := sys.Prepare(q, WithMaxRows(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(); !errors.Is(err, exec.ErrRowLimit) {
		t.Fatalf("prepare-time WithMaxRows(1): err = %v, want ErrRowLimit", err)
	}
	// ...unless a per-exec option lifts it.
	if _, err := p.Exec(WithMaxRows(0)); err != nil {
		t.Fatalf("per-exec WithMaxRows(0): %v", err)
	}
	// Workers options agree with sequential results.
	seq, err := p.Exec(WithMaxRows(0), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := p.Exec(WithMaxRows(0), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("WithWorkers(4) diverged from WithWorkers(1)")
	}
}

// TestPreparedStreaming: the prepared cursor streams the same rows as
// the prepared buffered execution.
func TestPreparedStreaming(t *testing.T) {
	sys := testSystem(t)
	p, err := sys.Prepare(`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j.pipelineName AS p, COUNT(f) AS n`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := p.QueryContext(context.Background(), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rows.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("streamed prepared rows diverged from buffered")
	}
}

// TestConcurrentPreparedAcrossEpochBump is the -race coverage for the
// prepared-query path: many goroutines hammer ExecContext on shared
// statements while AdoptSelection lands views and bumps the epoch
// mid-flight. Every execution must succeed and agree with the reference
// result (views never change results, only plans).
func TestConcurrentPreparedAcrossEpochBump(t *testing.T) {
	sys := testSystem(t)
	sys.Parallelism = 2

	queries := []string{
		blastRadius,
		`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j.pipelineName AS p, COUNT(f) AS n`,
		`MATCH ()-[r]->() RETURN COUNT(*) AS n`,
	}
	stmts := make([]*PreparedQuery, len(queries))
	wants := make([]*exec.Result, len(queries))
	for i, q := range queries {
		p, err := sys.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		stmts[i] = p
		want, err := p.Exec()
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = want
	}

	sel, err := sys.SelectViews([]string{blastRadius}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*4*len(queries)+1)
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for round := 0; round < 4; round++ {
				for qi, p := range stmts {
					res, err := p.ExecContext(context.Background())
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(res.Rows, wants[qi].Rows) {
						t.Errorf("goroutine %d: prepared result diverged across epoch bump", i)
						return
					}
				}
			}
		}(i)
	}
	// The epoch bump races the executions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := sys.AdoptSelection(sel); err != nil {
			errs <- err
		}
	}()
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the dust settles, the statements must be on the new plan.
	plan, err := stmts[0].Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.ViewName == "" {
		t.Error("prepared plan not re-rewritten after concurrent adoption")
	}
}
