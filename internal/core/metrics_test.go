package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// viewHitsOf sums the per-view rewrite-hit counters — the SHOW VIEWS
// numbers, which must move in lockstep with the registry's RewriteHits.
func viewHitsOf(sys *System) int64 {
	var total int64
	for _, v := range sys.ListViews() {
		total += v.Hits
	}
	return total
}

func TestCounterSemantics(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t)

	if _, err := sys.Exec(ctx, createJJ); err != nil {
		t.Fatal(err)
	}
	s := sys.MetricsSnapshot()
	if s.Materializations != 1 {
		t.Errorf("materializations = %d, want 1", s.Materializations)
	}
	if s.Queries != 0 {
		t.Errorf("DDL counted as a query execution: %d", s.Queries)
	}

	// Plan-only inspection moves nothing: not the registry counters, not
	// the per-view hits.
	if _, err := sys.Explain(blastRadius); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec(ctx, "EXPLAIN "+blastRadius); err != nil {
		t.Fatal(err)
	}
	s = sys.MetricsSnapshot()
	if s.RewriteHits != 0 || s.RewriteMisses != 0 || s.Queries != 0 {
		t.Errorf("EXPLAIN moved counters: hits=%d misses=%d queries=%d",
			s.RewriteHits, s.RewriteMisses, s.Queries)
	}
	if got := viewHitsOf(sys); got != 0 {
		t.Errorf("EXPLAIN moved per-view hits: %d", got)
	}

	// One ad-hoc execution: one query, one rewrite decision (a hit), rows
	// and latency observed.
	res, err := sys.Query(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	s = sys.MetricsSnapshot()
	if s.Queries != 1 || s.RewriteHits != 1 || s.RewriteMisses != 0 {
		t.Errorf("after one query: queries=%d hits=%d misses=%d, want 1/1/0",
			s.Queries, s.RewriteHits, s.RewriteMisses)
	}
	if s.Rows != int64(len(res.Rows)) {
		t.Errorf("rows = %d, want %d", s.Rows, len(res.Rows))
	}
	if s.Latency.Count != 1 {
		t.Errorf("latency count = %d, want 1", s.Latency.Count)
	}
	if got := viewHitsOf(sys); got != s.RewriteHits {
		t.Errorf("per-view hits %d out of lockstep with registry hits %d", got, s.RewriteHits)
	}

	// A prepared query re-plans once per catalog epoch: five executions
	// count five queries but a single rewrite decision.
	p, err := sys.Prepare(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := p.Exec(); err != nil {
			t.Fatal(err)
		}
	}
	s = sys.MetricsSnapshot()
	if s.Queries != 6 || s.RewriteHits != 2 {
		t.Errorf("after prepared runs: queries=%d hits=%d, want 6/2", s.Queries, s.RewriteHits)
	}

	// Dropping the view bumps the epoch; the next prepared execution
	// re-plans and the decision is now a miss.
	if !sys.DropView("jj") {
		t.Fatal("drop failed")
	}
	if _, err := p.Exec(); err != nil {
		t.Fatal(err)
	}
	s = sys.MetricsSnapshot()
	if s.Queries != 7 || s.RewriteHits != 2 || s.RewriteMisses != 1 {
		t.Errorf("after drop: queries=%d hits=%d misses=%d, want 7/2/1",
			s.Queries, s.RewriteHits, s.RewriteMisses)
	}

	// WithoutViews bypasses planning entirely — no rewrite decision.
	if _, err := sys.QueryRaw(blastRadius); err != nil {
		t.Fatal(err)
	}
	s = sys.MetricsSnapshot()
	if s.Queries != 8 || s.RewriteHits+s.RewriteMisses != 3 {
		t.Errorf("raw query made a rewrite decision: queries=%d hits=%d misses=%d",
			s.Queries, s.RewriteHits, s.RewriteMisses)
	}

	// Parse failures count as errors, not executions.
	if _, err := sys.Query("MATCH oops"); err == nil {
		t.Fatal("expected parse error")
	}
	s = sys.MetricsSnapshot()
	if s.QueryErrors != 1 || s.Queries != 8 {
		t.Errorf("after parse error: errors=%d queries=%d, want 1/8", s.QueryErrors, s.Queries)
	}

	// Per-query stats accumulated under the source text.
	top := sys.Metrics().TopQueries(1)
	if len(top) != 1 || top[0].Count != 8 {
		t.Fatalf("top = %+v, want the workload query with count 8", top)
	}
}

func TestSetMetricsNilDisablesRecording(t *testing.T) {
	sys := testSystem(t)
	sys.SetMetrics(nil)
	if _, err := sys.Query(blastRadius); err != nil {
		t.Fatal(err)
	}
	if sys.Metrics() != nil {
		t.Fatal("registry not nil after SetMetrics(nil)")
	}
	// Snapshot still works, composing only the process-wide gauges.
	if s := sys.MetricsSnapshot(); s.Queries != 0 || s.FreezeEvents == 0 {
		t.Errorf("disabled snapshot = %+v", s)
	}
}

func TestExplainAnalyzeRowsMatchBufferedExecute(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		sys := testSystem(t)
		if _, err := sys.Exec(ctx, createJJ); err != nil {
			t.Fatal(err)
		}
		want, err := sys.QueryContext(ctx, blastRadius, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		out, err := sys.ExplainAnalyze(ctx, blastRadius, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		// The profile's total row count is the buffered result's, exactly.
		totalLine := fmt.Sprintf("%-28s %12d", "total", len(want.Rows))
		if !strings.Contains(out, totalLine) {
			t.Errorf("w=%d: analyze output missing %q:\n%s", workers, totalLine, out)
		}
		if !strings.Contains(out, "plan: rewritten over materialized view") {
			t.Errorf("w=%d: analyze output missing plan text:\n%s", workers, out)
		}
		for _, stage := range []string{"match", "select: aggregate"} {
			if !strings.Contains(out, stage) {
				t.Errorf("w=%d: analyze output missing stage %q:\n%s", workers, stage, out)
			}
		}
		if !strings.Contains(out, fmt.Sprintf("workers=%d", workers)) {
			t.Errorf("w=%d: analyze output missing worker count:\n%s", workers, out)
		}

		// The statement form goes through Exec and returns the same text
		// as a one-column table.
		res, err := sys.Exec(ctx, "EXPLAIN ANALYZE "+blastRadius, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Cols) != 1 || res.Cols[0] != "plan" {
			t.Fatalf("w=%d: EXPLAIN ANALYZE cols = %v", workers, res.Cols)
		}
		var joined strings.Builder
		for _, r := range res.Rows {
			fmt.Fprintf(&joined, "%v\n", r[0])
		}
		if !strings.Contains(joined.String(), totalLine) {
			t.Errorf("w=%d: statement form missing %q:\n%s", workers, totalLine, joined.String())
		}

		// ANALYZE executes for real: the run moved the counters.
		s := sys.MetricsSnapshot()
		if s.Queries != 3 { // QueryContext + ExplainAnalyze + statement form
			t.Errorf("w=%d: queries = %d, want 3", workers, s.Queries)
		}
		if s.RewriteHits != 3 {
			t.Errorf("w=%d: analyze did not count its rewrite decisions: hits=%d", workers, s.RewriteHits)
		}
	}
}

// TestMetricsConcurrentWithQueries races executions, snapshot scrapes,
// and the registry disable switch (run under -race in CI).
func TestMetricsConcurrentWithQueries(t *testing.T) {
	ctx := context.Background()
	sys := testSystem(t)
	if _, err := sys.Exec(ctx, createJJ); err != nil {
		t.Fatal(err)
	}
	reg := sys.Metrics()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := sys.QueryContext(ctx, blastRadius); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			_ = sys.MetricsSnapshot()
			_ = reg.TopQueries(3)
			if j == 25 {
				sys.SetMetrics(nil)
				sys.SetMetrics(reg)
			}
		}
	}()
	wg.Wait()
	// The disable window may drop a few observations; everything that was
	// recorded must be internally consistent.
	s := sys.MetricsSnapshot()
	if s.Queries == 0 || s.Queries > 20 {
		t.Errorf("queries = %d, want in (0, 20]", s.Queries)
	}
	if s.Latency.Count != s.Queries {
		t.Errorf("latency count %d != queries %d", s.Latency.Count, s.Queries)
	}
}
