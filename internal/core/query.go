// Query execution surface of a System, modeled on database/sql: ad-hoc
// context-aware execution (QueryContext), streaming cursors
// (QueryRows), prepared queries (Prepare, in prepared.go), and
// per-query functional options that override the System's defaults.
package core

import (
	"context"

	"kaskade/internal/exec"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/workload"
)

// QueryOption tunes one query execution (or one prepared query's
// defaults), overriding the System-level knobs.
type QueryOption func(*queryConfig)

type queryConfig struct {
	workers int
	maxRows int
	noViews bool
}

// WithWorkers sets pattern-match parallelism for this query: 0 or 1 =
// sequential, N>1 = that many workers, negative = one per available
// CPU. Results are identical at any setting (the parallel merge is
// deterministic); it overrides System.Parallelism.
func WithWorkers(n int) QueryOption {
	return func(c *queryConfig) { c.workers = n }
}

// WithMaxRows bounds the intermediate rows this query may produce
// before aborting with exec.ErrRowLimit (0 = unlimited). It overrides
// System.MaxRows.
func WithMaxRows(n int) QueryOption {
	return func(c *queryConfig) { c.maxRows = n }
}

// WithoutViews executes against the base graph, bypassing view-based
// rewriting — the baseline of every experiment (what QueryRaw does).
func WithoutViews() QueryOption {
	return func(c *queryConfig) { c.noViews = true }
}

// config resolves options over the System's defaults.
func (s *System) config(opts []QueryOption) queryConfig {
	cfg := queryConfig{workers: s.Parallelism, maxRows: s.MaxRows}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// executor builds the executor for one run over the plan's graph.
func (cfg queryConfig) executor(g *graph.Graph) *exec.Executor {
	return &exec.Executor{G: g, MaxRows: cfg.maxRows, Workers: cfg.workers}
}

// executor builds the metrics-instrumented executor for one run: the
// System's registry receives the execution's count/rows/latency, and
// label names it in the per-query stats (top queries by time).
func (s *System) executor(cfg queryConfig, g *graph.Graph, label string) *exec.Executor {
	ex := cfg.executor(g)
	ex.Metrics = s.metrics.Load()
	ex.Label = label
	return ex
}

// countError records a statement that failed before execution (parse or
// plan error) — executions that start are observed by the executor.
func (s *System) countError() {
	if r := s.metrics.Load(); r != nil {
		r.QueryErrors.Inc()
	}
}

// plan resolves the graph and (possibly rewritten) query to execute:
// the base graph verbatim under WithoutViews, the catalog's cheapest
// view-based rewriting otherwise.
func (s *System) plan(q gql.Query, cfg queryConfig) (*workload.Plan, error) {
	if cfg.noViews {
		return &workload.Plan{Query: q, Graph: s.graph}, nil
	}
	return s.catalog.Rewrite(q)
}

// QueryContext parses src, performs view-based rewriting against the
// materialized catalog (§V-C), and executes the best plan, honoring
// ctx cancellation/deadline throughout execution: a pathological
// pattern match stops soon after the caller walks away. For repeated
// queries, Prepare amortizes the parse and rewrite.
func (s *System) QueryContext(ctx context.Context, src string, opts ...QueryOption) (*exec.Result, error) {
	q, err := gql.Parse(src)
	if err != nil {
		s.countError()
		return nil, err
	}
	cfg := s.config(opts)
	plan, err := s.plan(q, cfg)
	if err != nil {
		s.countError()
		return nil, err
	}
	return s.executor(cfg, plan.Graph, src).ExecuteContext(ctx, plan.Query)
}

// QueryRows is QueryContext returning a streaming cursor instead of a
// buffered table: rows arrive incrementally, byte-identical and in
// identical order to the buffered result, and closing the cursor (or
// cancelling ctx) aborts the match. The caller must Close the cursor.
func (s *System) QueryRows(ctx context.Context, src string, opts ...QueryOption) (*exec.Rows, error) {
	q, err := gql.Parse(src)
	if err != nil {
		s.countError()
		return nil, err
	}
	cfg := s.config(opts)
	plan, err := s.plan(q, cfg)
	if err != nil {
		s.countError()
		return nil, err
	}
	return s.executor(cfg, plan.Graph, src).Stream(ctx, plan.Query)
}
