package core

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/views"
	"kaskade/internal/workload"
)

const createJJ = `CREATE MATERIALIZED VIEW jj AS MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y`

func TestExecDDLLifecycle(t *testing.T) {
	sys := testSystem(t)
	ctx := context.Background()

	// CREATE returns a status row and lands the view.
	res, err := sys.Exec(ctx, createJJ)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0].(string), "materialized view jj") {
		t.Fatalf("create result = %+v", res)
	}
	if got := sys.Catalog().Views(); len(got) != 1 || got[0] != "CONN_2HOP_Job_Job" {
		t.Fatalf("catalog views = %v", got)
	}

	// Re-CREATE under the same or an equivalent name errors.
	if _, err := sys.Exec(ctx, createJJ); !errors.Is(err, workload.ErrViewExists) {
		t.Errorf("duplicate CREATE error = %v", err)
	}

	// SHOW VIEWS lists it with the canonical DDL and a hits column.
	res, err = sys.Exec(ctx, `SHOW VIEWS;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("SHOW VIEWS rows = %+v", res.Rows)
	}
	if name := res.Rows[0][res.Col("name")]; name != "jj" {
		t.Errorf("name = %v", name)
	}
	ddl := res.Rows[0][res.Col("definition")].(string)
	if !strings.HasPrefix(ddl, "CREATE MATERIALIZED VIEW jj AS MATCH") {
		t.Errorf("definition = %q", ddl)
	}
	// The printed definition round-trips: dropping and re-running it
	// recreates the same view.
	if _, err := sys.Exec(ctx, `DROP VIEW jj`); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Exec(ctx, ddl); err != nil {
		t.Fatalf("round-tripped DDL %q: %v", ddl, err)
	}

	// Queries flow through Exec too.
	res, err = sys.Exec(ctx, `MATCH (j:Job) RETURN COUNT(*) AS n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) <= 0 {
		t.Fatalf("query through Exec = %+v", res)
	}

	// DROP of an unknown view errors.
	if _, err := sys.Exec(ctx, `DROP VIEW nope`); err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("drop unknown = %v", err)
	}
	// Patterns outside the inventory error clearly.
	if _, err := sys.Exec(ctx, `CREATE VIEW bad AS MATCH (a)-[p*2..4]->(b) RETURN a, b`); err == nil ||
		!strings.Contains(err.Error(), "view inventory") {
		t.Errorf("out-of-inventory CREATE = %v", err)
	}
}

func TestQuerySurfaceRejectsDDLTyped(t *testing.T) {
	sys := testSystem(t)
	if _, err := sys.Query(createJJ); !errors.Is(err, gql.ErrDDL) {
		t.Errorf("Query(DDL) error = %v, want ErrDDL", err)
	}
	if _, err := sys.QueryContext(context.Background(), `DROP VIEW x`); !errors.Is(err, gql.ErrDDL) {
		t.Errorf("QueryContext(DDL) error = %v, want ErrDDL", err)
	}
	if _, err := sys.QueryRows(context.Background(), `SHOW VIEWS`); !errors.Is(err, gql.ErrDDL) {
		t.Errorf("QueryRows(DDL) error = %v, want ErrDDL", err)
	}
	if _, err := sys.Prepare(createJJ); !errors.Is(err, gql.ErrDDL) {
		t.Errorf("Prepare(DDL) error = %v, want ErrDDL", err)
	}
	if _, err := sys.Explain(`SHOW VIEWS`); !errors.Is(err, gql.ErrDDL) {
		t.Errorf("Explain(DDL) error = %v, want ErrDDL", err)
	}
}

// TestPreparedReplansAcrossDDL pins the acceptance criterion: a
// prepared statement transparently re-rewrites across CREATE VIEW and
// DROP VIEW of a named view, and its results never change.
func TestPreparedReplansAcrossDDL(t *testing.T) {
	sys := testSystem(t)
	ctx := context.Background()
	p, err := sys.Prepare(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Exec() // caches the base plan
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.ViewName != "" {
		t.Fatalf("empty catalog but plan uses %q", plan.ViewName)
	}

	if _, err := sys.Exec(ctx, createJJ); err != nil {
		t.Fatal(err)
	}
	plan, err = p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.ViewName != "CONN_2HOP_Job_Job" {
		t.Fatalf("prepared plan did not pick up the DDL-created view: %+v", plan)
	}
	got, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultStrings(got), resultStrings(base)) {
		t.Fatal("view-rewritten result differs from base result")
	}

	if _, err := sys.Exec(ctx, `DROP VIEW jj`); err != nil {
		t.Fatal(err)
	}
	plan, err = p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.ViewName != "" {
		t.Fatalf("prepared plan still uses dropped view: %+v", plan)
	}
	got, err = p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resultStrings(got), resultStrings(base)) {
		t.Fatal("result changed after DROP VIEW")
	}
}

// resultStrings renders a result for comparison across graphs (vertex
// refs print type:id, stable within one System's base/view pair).
func resultStrings(r interface{ String() string }) string { return r.String() }

// TestDDLEquivalenceAgainstStructAPI pins byte-identity between the two
// surfaces end to end: for every Table I/II class, CREATE VIEW from
// pattern text must materialize a view graph byte-identical to the
// struct-built equivalent, at workers 1 and 4, and the rewritten query
// results over the DDL-created view must match the struct path.
func TestDDLEquivalenceAgainstStructAPI(t *testing.T) {
	classes := []struct {
		name   string
		create string
		view   views.View
	}{
		{"jj2", `CREATE VIEW jj2 AS MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y`,
			views.KHopConnector{SrcType: "Job", DstType: "Job", K: 2}},
		{"svt", `CREATE VIEW svt AS MATCH (x:Job)-[p*1..4]->(y:Job) RETURN x, y`,
			views.SameVertexTypeConnector{VType: "Job", MaxLen: 4}},
		{"set", `CREATE VIEW set AS MATCH (x)-[p:WRITES_TO*1..3]->(y) RETURN x, y`,
			views.SameEdgeTypeConnector{EType: "WRITES_TO", MaxLen: 3}},
		{"ss", `CREATE VIEW ss AS MATCH (x)-[p*1..4]->(y) WHERE INDEGREE(x) = 0 AND OUTDEGREE(y) = 0 RETURN x, y`,
			views.SourceToSinkConnector{MaxLen: 4}},
		{"keepv", `CREATE VIEW keepv AS MATCH (v) WHERE LABEL(v) = 'File' OR LABEL(v) = 'Job' RETURN v`,
			views.VertexInclusionSummarizer{Types: []string{"File", "Job"}}},
		{"dropv", `CREATE VIEW dropv AS MATCH (v) WHERE NOT (LABEL(v) = 'File') RETURN v`,
			views.VertexRemovalSummarizer{Types: []string{"File"}}},
		{"keepe", `CREATE VIEW keepe AS MATCH (x)-[e]->(y) WHERE TYPE(e) = 'WRITES_TO' RETURN x, e, y`,
			views.EdgeInclusionSummarizer{Types: []string{"WRITES_TO"}}},
		{"drope", `CREATE VIEW drope AS MATCH (x)-[e]->(y) WHERE NOT (TYPE(e) = 'IS_READ_BY') RETURN x, e, y`,
			views.EdgeRemovalSummarizer{Types: []string{"IS_READ_BY"}}},
		{"aggv", `CREATE VIEW aggv AS MATCH (v:Job) RETURN v.pipelineName, COUNT(v), SUM(v.CPU)`,
			views.VertexAggregatorSummarizer{VType: "Job", GroupBy: "pipelineName", Aggs: map[string]views.AggFunc{"CPU": views.AggSum}}},
		{"agge", `CREATE VIEW agge AS MATCH (x)-[e:WRITES_TO]->(y) RETURN x, y, COUNT(e)`,
			views.EdgeAggregatorSummarizer{EType: "WRITES_TO"}},
		{"aggsg", `CREATE VIEW aggsg AS MATCH (v:Job)-[e]->(w:Job) WHERE v.pipelineName = w.pipelineName RETURN v.pipelineName, COUNT(v)`,
			views.SubgraphAggregatorSummarizer{VType: "Job", GroupBy: "pipelineName"}},
	}
	for _, workers := range []int{1, 4} {
		ddlSys, structSys := testSystem(t), testSystem(t)
		ddlSys.Parallelism, structSys.Parallelism = workers, workers
		for _, tc := range classes {
			if _, err := ddlSys.Exec(context.Background(), tc.create); err != nil {
				t.Fatalf("w=%d %s: %v", workers, tc.name, err)
			}
			if err := structSys.MaterializeView(tc.view); err != nil {
				t.Fatalf("w=%d %s: struct: %v", workers, tc.name, err)
			}
			dm, ok := ddlSys.Catalog().Get(tc.view.Name())
			if !ok {
				t.Fatalf("w=%d %s: DDL view not under structural name %q", workers, tc.name, tc.view.Name())
			}
			sm, _ := structSys.Catalog().Get(tc.view.Name())
			var db, sb bytes.Buffer
			if err := graph.Save(&db, dm.Graph); err != nil {
				t.Fatal(err)
			}
			if err := graph.Save(&sb, sm.Graph); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(db.Bytes(), sb.Bytes()) {
				t.Errorf("w=%d %s: DDL view graph differs from struct view graph", workers, tc.name)
			}
		}
		// With the full inventory materialized on both systems, the
		// rewritten workload query agrees byte for byte.
		want, err := structSys.Query(blastRadius)
		if err != nil {
			t.Fatal(err)
		}
		got, gotPlan, err := ddlSys.QueryWithPlan(blastRadius)
		if err != nil {
			t.Fatal(err)
		}
		if gotPlan.ViewName == "" {
			t.Errorf("w=%d: DDL system did not rewrite over a view", workers)
		}
		if got.String() != want.String() {
			t.Errorf("w=%d: rewritten results differ between DDL and struct systems", workers)
		}
	}
}

func TestExplainPrintsDDLAndHits(t *testing.T) {
	sys := testSystem(t)
	if _, err := sys.Exec(context.Background(), createJJ); err != nil {
		t.Fatal(err)
	}
	// Explain plans without executing, so it must not move the hit
	// counter — only the actual execution below does.
	if out, err := sys.Explain(blastRadius); err != nil {
		t.Fatal(err)
	} else if !strings.Contains(out, "rewrite hits: 0") {
		t.Errorf("explain before any execution should report 0 hits:\n%s", out)
	}
	if _, err := sys.Query(blastRadius); err != nil {
		t.Fatal(err)
	}
	out, err := sys.Explain(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "view: CREATE MATERIALIZED VIEW jj AS MATCH") {
		t.Errorf("explain missing canonical DDL:\n%s", out)
	}
	if !strings.Contains(out, "rewrite hits: 1") {
		t.Errorf("explain missing rewrite hits:\n%s", out)
	}
	// Repeated Explain still observes, never counts.
	if out, _ := sys.Explain(blastRadius); !strings.Contains(out, "rewrite hits: 1") {
		t.Errorf("repeated explain moved the hit counter:\n%s", out)
	}
	// The DDL line round-trips through the parser.
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "view: "); ok {
			if _, err := gql.ParseStatement(rest); err != nil {
				t.Errorf("explain view line does not reparse: %q: %v", rest, err)
			}
		}
	}
}

func TestInventoryAndCandidatesPrintDDL(t *testing.T) {
	// Every inventory example is a CREATE statement the parser and view
	// compiler accept.
	for _, line := range strings.Split(ViewInventory(), "\n") {
		idx := strings.Index(line, "e.g. ")
		if idx < 0 {
			continue
		}
		src := strings.TrimSpace(line[idx+len("e.g. "):])
		st, err := gql.ParseStatement(src)
		if err != nil {
			t.Errorf("inventory example does not parse: %q: %v", src, err)
			continue
		}
		if _, err := views.CompilePattern(st.(*gql.CreateViewStmt).Body); err != nil {
			t.Errorf("inventory example does not compile: %q: %v", src, err)
		}
	}

	sys := testSystem(t)
	cands, err := sys.EnumerateViews(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	desc := DescribeCandidates(cands)
	if !strings.Contains(desc, "ddl: MATCH") {
		t.Errorf("candidate listing has no DDL patterns:\n%s", desc)
	}
	// Each printed pattern compiles.
	for _, line := range strings.Split(desc, "\n") {
		if idx := strings.Index(line, "ddl: "); idx >= 0 {
			if _, err := views.Compile(strings.TrimSpace(line[idx+len("ddl: "):])); err != nil {
				t.Errorf("candidate ddl does not compile: %q: %v", line, err)
			}
		}
	}
}
