package core

import (
	"strings"
	"testing"

	"kaskade/internal/datagen"
	"kaskade/internal/graph"
	"kaskade/internal/views"
)

const blastRadius = `
SELECT A.pipelineName, AVG(T_CPU) FROM (
  SELECT A, SUM(B.CPU) AS T_CPU FROM (
    MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
          (q_f1:File)-[r*0..8]->(q_f2:File)
          (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
    RETURN q_j1 AS A, q_j2 AS B
  ) GROUP BY A, B
) GROUP BY A.pipelineName`

func testSystem(t testing.TB) *System {
	t.Helper()
	cfg := datagen.DefaultProvConfig()
	cfg.Jobs, cfg.Files, cfg.TasksPerJob, cfg.Machines, cfg.Users = 120, 250, 1, 5, 5
	raw, err := datagen.Prov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := views.VertexInclusionSummarizer{Types: []string{"Job", "File"}}.Materialize(raw)
	if err != nil {
		t.Fatal(err)
	}
	return New(filtered)
}

func TestSystemEndToEnd(t *testing.T) {
	sys := testSystem(t)

	// Before any views, Query == QueryRaw.
	raw, err := sys.QueryRaw(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	res, plan, err := sys.QueryWithPlan(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ViewName != "" {
		t.Errorf("plan used view %q with empty catalog", plan.ViewName)
	}
	if len(res.Rows) != len(raw.Rows) {
		t.Fatalf("rows: %d vs %d", len(res.Rows), len(raw.Rows))
	}

	// Select and adopt views.
	sel, err := sys.SelectViews([]string{blastRadius}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Chosen) == 0 {
		t.Fatalf("nothing chosen:\n%s", sel.Describe())
	}
	if err := sys.AdoptSelection(sel); err != nil {
		t.Fatal(err)
	}
	if len(sys.Catalog().Views()) == 0 {
		t.Fatal("catalog empty after adoption")
	}

	// Now the query routes through a view and agrees with raw.
	res2, plan2, err := sys.QueryWithPlan(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.ViewName == "" {
		t.Error("query did not use a materialized view")
	}
	if len(res2.Rows) != len(raw.Rows) {
		t.Errorf("view rows %d != raw rows %d", len(res2.Rows), len(raw.Rows))
	}
}

func TestSystemExplain(t *testing.T) {
	sys := testSystem(t)
	out, err := sys.Explain(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "base graph scan") {
		t.Errorf("explain without views: %s", out)
	}
	sel, err := sys.SelectViews([]string{blastRadius}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AdoptSelection(sel); err != nil {
		t.Fatal(err)
	}
	out, err = sys.Explain(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rewritten over materialized view") {
		t.Errorf("explain with views: %s", out)
	}
	if !strings.Contains(out, "storage: frozen csr") {
		t.Errorf("explain missing frozen storage line: %s", out)
	}
	if !strings.Contains(out, "columns=") {
		t.Errorf("explain storage line missing column stats: %s", out)
	}
	// blastRadius bottoms out in a pure-projection MATCH, so no
	// aggregation line; an aggregate query names its strategy.
	if strings.Contains(out, "aggregation:") {
		t.Errorf("explain printed an aggregation mode for a projection: %s", out)
	}
	out, err = sys.Explain(`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j AS job, COUNT(f) AS n`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "aggregation: partial") {
		t.Errorf("explain missing partial aggregation mode: %s", out)
	}
}

func TestSystemEnumerate(t *testing.T) {
	sys := testSystem(t)
	cands, err := sys.EnumerateViews(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 5 {
		t.Errorf("only %d candidates", len(cands))
	}
	desc := DescribeCandidates(cands)
	if !strings.Contains(desc, "2-hop connector Job->Job") {
		t.Errorf("candidates missing the job connector:\n%s", desc)
	}
}

func TestSystemManualView(t *testing.T) {
	sys := testSystem(t)
	if err := sys.MaterializeView(views.VertexInclusionSummarizer{Types: []string{"Job", "File"}}); err != nil {
		t.Fatal(err)
	}
	if len(sys.Catalog().Views()) != 1 {
		t.Fatalf("views = %v", sys.Catalog().Views())
	}
	// The summarizer applies to the query (it keeps everything the
	// query needs), so the plan may use it; either way results agree.
	res, _, err := sys.QueryWithPlan(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := sys.QueryRaw(blastRadius)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(raw.Rows) {
		t.Errorf("rows differ: %d vs %d", len(res.Rows), len(raw.Rows))
	}
}

func TestSystemErrors(t *testing.T) {
	sys := testSystem(t)
	if _, err := sys.Query("NOT A QUERY"); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := sys.SelectViews([]string{"also not a query"}, 10); err == nil {
		t.Error("bad workload accepted")
	}
	if _, err := sys.EnumerateViews("nope("); err == nil {
		t.Error("bad enumerate query accepted")
	}
}

func TestSystemMaxRowsGuard(t *testing.T) {
	sys := testSystem(t)
	sys.MaxRows = 1
	if _, err := sys.QueryRaw(`MATCH (j:Job) RETURN j`); err == nil {
		t.Error("row guard not applied")
	}
}

func TestSystemWithoutSchema(t *testing.T) {
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	g.MustAddEdge(a, b, "E", nil)
	sys := New(g)
	// Raw execution works without a schema.
	res, err := sys.QueryRaw(`MATCH (x)-[e]->(y) RETURN COUNT(*) AS n`)
	if err != nil || res.Rows[0][0].(int64) != 1 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	// Enumeration requires one (constraint mining needs schema facts).
	if _, err := sys.EnumerateViews(`MATCH (x)-[e]->(y) RETURN x, y`); err == nil {
		t.Error("enumeration without schema should error")
	}
}

func TestViewInventoryComplete(t *testing.T) {
	inv := ViewInventory()
	for _, want := range []string{
		"k-hop connector", "Same-vertex-type connector", "Same-edge-type connector",
		"Source-to-sink connector", "Vertex-removal summarizer", "Edge-removal summarizer",
		"Vertex-inclusion summarizer", "Edge-inclusion summarizer",
		"Vertex-aggregator summarizer", "Edge-aggregator summarizer", "Subgraph-aggregator summarizer",
	} {
		if !strings.Contains(inv, want) {
			t.Errorf("inventory missing %q", want)
		}
	}
}
