// View DDL execution surface of a System: Exec dispatches parsed
// statements — CREATE [MATERIALIZED] VIEW, DROP VIEW, SHOW VIEWS, or a
// plain query — through the same entry point, the wire-expressible face
// of the view lifecycle. The query-only paths (Query*, Prepare) reject
// DDL with an error wrapping gql.ErrDDL.
package core

import (
	"context"
	"fmt"
	"strings"

	"kaskade/internal/exec"
	"kaskade/internal/gql"
	"kaskade/internal/views"
	"kaskade/internal/workload"
)

// Exec parses and executes one statement. Queries take the ordinary
// path (view-based rewriting, then execution under ctx, honoring the
// per-query options); DDL statements run the view lifecycle:
//
//   - CREATE [MATERIALIZED] VIEW name AS <pattern> compiles the pattern
//     to its Table I/II view class (views.CompilePattern), materializes
//     it under the System's Parallelism, and lands it in the catalog —
//     prepared statements transparently re-rewrite over it. Every
//     Kaskade view is materialized; the MATERIALIZED keyword is
//     optional. A name collision errors (wrapping
//     workload.ErrViewExists) — DROP VIEW first.
//   - DROP VIEW name evicts the view (by DDL or structural name) and
//     bumps the catalog epoch, so prepared statements re-rewrite away
//     from it.
//   - SHOW VIEWS returns one row per materialized view: name, kind,
//     |V|, |E|, the §V-C rewrite-hit counter, and the canonical DDL.
//
// DDL results are small status tables, so the REPL and scripts can
// treat every statement uniformly. Materialization does not poll ctx
// (like AdoptSelection); cancellation applies to query execution.
func (s *System) Exec(ctx context.Context, src string, opts ...QueryOption) (*exec.Result, error) {
	stmt, err := gql.ParseStatement(src)
	if err != nil {
		s.countError()
		return nil, err
	}
	switch st := stmt.(type) {
	case *gql.QueryStmt:
		cfg := s.config(opts)
		plan, err := s.plan(st.Query, cfg)
		if err != nil {
			s.countError()
			return nil, err
		}
		return s.executor(cfg, plan.Graph, src).ExecuteContext(ctx, plan.Query)
	case *gql.ExplainStmt:
		return s.execExplain(ctx, st, opts)
	case *gql.CreateViewStmt:
		return s.execCreateView(st)
	case *gql.DropViewStmt:
		if !s.catalog.DropView(st.Name) {
			return nil, fmt.Errorf("kaskade: view %q: %w", st.Name, workload.ErrNoSuchView)
		}
		return statusResult(fmt.Sprintf("dropped view %s", st.Name)), nil
	case *gql.ShowViewsStmt:
		return s.showViews(), nil
	}
	return nil, fmt.Errorf("kaskade: unsupported statement %T", stmt)
}

// execExplain runs EXPLAIN [ANALYZE] as a statement, returning the
// rendered text as a one-column result table (one row per line) so the
// REPL prints it like any other statement. Plain EXPLAIN plans through
// Catalog.PlanOnly and moves no counter; EXPLAIN ANALYZE executes.
func (s *System) execExplain(ctx context.Context, st *gql.ExplainStmt, opts []QueryOption) (*exec.Result, error) {
	var text string
	if st.Analyze {
		t, err := s.explainAnalyze(ctx, st.Query, st.Query.String(), opts)
		if err != nil {
			return nil, err
		}
		text = t
	} else {
		plan, err := s.catalog.PlanOnly(st.Query)
		if err != nil {
			s.countError()
			return nil, err
		}
		text = s.explainText(plan)
	}
	res := &exec.Result{Cols: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		res.Rows = append(res.Rows, exec.Row{line})
	}
	return res, nil
}

// execCreateView compiles the defining pattern, materializes the view,
// and registers it under the statement's name.
func (s *System) execCreateView(st *gql.CreateViewStmt) (*exec.Result, error) {
	v, err := views.CompilePattern(st.Body)
	if err != nil {
		return nil, fmt.Errorf("kaskade: CREATE VIEW %s: %w", st.Name, err)
	}
	def := views.ViewDef{Name: st.Name, DDL: canonicalCreate(st.Name, v), View: v}
	if err := s.catalog.CreateView(def, s.Parallelism); err != nil {
		return nil, err
	}
	status := fmt.Sprintf("materialized view %s: %s", st.Name, v.Describe())
	// A racing DROP VIEW may evict the view before this lookup; the
	// create itself still happened, so only the size suffix is lost.
	if m, ok := s.catalog.Get(v.Name()); ok {
		status += fmt.Sprintf(" (|V|=%d, |E|=%d)", m.Graph.NumVertices(), m.Graph.NumEdges())
	}
	return statusResult(status), nil
}

// canonicalCreate renders the canonical CREATE statement for a compiled
// view — the AST-independent text SHOW VIEWS and Explain print, which
// reparses and recompiles to the same view.
func canonicalCreate(name string, v views.View) string {
	pat, err := views.CanonicalPattern(v)
	if err != nil {
		return ""
	}
	return "CREATE MATERIALIZED VIEW " + name + " AS " + pat
}

// showViews renders the catalog's named-view registry as a result
// table, in view creation order.
func (s *System) showViews() *exec.Result {
	infos := s.catalog.ListViews()
	res := &exec.Result{Cols: []string{"name", "kind", "vertices", "edges", "rewrite_hits", "definition"}}
	for _, in := range infos {
		ddl := in.DDL
		if ddl == "" {
			ddl = "(struct-defined; no DDL form)"
		}
		res.Rows = append(res.Rows, exec.Row{
			in.Name, in.Kind, int64(in.Vertices), int64(in.Edges), in.Hits, ddl,
		})
	}
	return res
}

// statusResult wraps a one-line DDL outcome as a result table.
func statusResult(msg string) *exec.Result {
	return &exec.Result{Cols: []string{"status"}, Rows: []exec.Row{{msg}}}
}

// CreateViewFromPattern is the programmatic form of CREATE VIEW: it
// compiles a defining pattern already parsed or built as a query and
// lands it under the given name. The struct API (MaterializeView)
// remains the escape hatch for options the DDL cannot express.
func (s *System) CreateViewFromPattern(name string, q gql.Query) error {
	v, err := views.CompilePattern(q)
	if err != nil {
		return fmt.Errorf("kaskade: CREATE VIEW %s: %w", name, err)
	}
	return s.catalog.CreateView(views.ViewDef{Name: name, DDL: canonicalCreate(name, v), View: v}, s.Parallelism)
}

// ListViews reports every materialized view (name, kind, sizes,
// rewrite hits, canonical DDL) in creation order — SHOW VIEWS as data.
func (s *System) ListViews() []workload.ViewInfo {
	return s.catalog.ListViews()
}
