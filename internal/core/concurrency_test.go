package core

import (
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentQueriesAndParallelMaterialization is the -race coverage
// for the parallel subsystem. The invariant it documents and exercises:
// a graph.Graph is read-only after load (the graph package is
// append-only and nothing mutates a graph once a System owns it), so
//
//   - AdoptSelection may materialize independent views concurrently,
//     each derived from the shared read-only base, and
//   - any number of goroutines may call Query/QueryRaw against one
//     System — including with Parallelism > 1, which nests the
//     matcher's own worker pool inside the callers' concurrency —
//
// without locks. Catalog mutation (AdoptSelection) is the one phase
// that must not overlap queries, which this test keeps sequenced the
// way the CLI and harness do: adopt first, then serve.
func TestConcurrentQueriesAndParallelMaterialization(t *testing.T) {
	sys := testSystem(t)
	sys.Parallelism = 4

	sel, err := sys.SelectViews([]string{blastRadius}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Parallel materialization of the chosen views.
	if err := sys.AdoptSelection(sel); err != nil {
		t.Fatal(err)
	}
	// The catalog must agree with a sequentially-built one.
	seq := testSystem(t)
	if err := seq.AdoptSelection(sel); err != nil {
		t.Fatal(err)
	}
	if got, want := sys.Catalog().Views(), seq.Catalog().Views(); !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel catalog order %v != sequential %v", got, want)
	}
	if got, want := sys.Catalog().TotalEdges(), seq.Catalog().TotalEdges(); got != want {
		t.Fatalf("parallel catalog edges %d != sequential %d", got, want)
	}

	want, err := sys.Query(blastRadius)
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{
		blastRadius,
		`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j.pipelineName AS p, COUNT(f) AS n`,
		`MATCH ()-[r]->() RETURN COUNT(*) AS n`,
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*2*len(queries))
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, q := range queries {
				res, err := sys.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if q == blastRadius && !reflect.DeepEqual(res.Rows, want.Rows) {
					t.Errorf("goroutine %d: concurrent result diverged", i)
				}
				if _, err := sys.QueryRaw(q); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
