package core

import (
	"context"
	"sync"

	"kaskade/internal/exec"
	"kaskade/internal/gql"
	"kaskade/internal/workload"
)

// PreparedQuery is a query parsed and view-rewritten once, executed
// many times — the database/sql Stmt of Kaskade. It is what makes a
// repeated workload cheap: per-execution cost drops to an epoch check
// (one atomic load) plus the match itself, skipping parse and §V-C
// rewriting entirely.
//
// The cached plan tracks the catalog: AdoptSelection, MaterializeView,
// and DropView all bump the catalog's epoch, and the next execution
// transparently re-rewrites against the changed view set — in
// particular, a statement planned over a since-dropped view re-rewrites
// instead of executing the stale plan. Concurrent executions racing an
// epoch bump at worst run one more time over the previous plan; a
// dropped view's graph stays alive until such stragglers release it,
// so they read consistent (one-epoch-old) data, never freed memory.
//
// A PreparedQuery is safe for concurrent use by multiple goroutines.
type PreparedQuery struct {
	sys  *System
	src  string
	q    gql.Query
	opts []QueryOption // Prepare-time defaults, before per-exec opts

	mu    sync.Mutex
	plan  *workload.Plan
	epoch uint64
	valid bool
}

// Prepare parses src and returns a prepared query whose plan is
// rewritten lazily on first execution and cached across executions.
// opts become the query's defaults; per-execution options override
// them. Unlike database/sql statements a PreparedQuery holds no
// resources, so it has no Close.
func (s *System) Prepare(src string, opts ...QueryOption) (*PreparedQuery, error) {
	q, err := gql.Parse(src)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{sys: s, src: src, q: q, opts: opts}, nil
}

// Src returns the query text the statement was prepared from.
func (p *PreparedQuery) Src() string { return p.src }

// currentPlan returns the cached plan, re-rewriting iff the catalog
// epoch moved since the plan was cached (or nothing is cached yet).
func (p *PreparedQuery) currentPlan(cfg queryConfig) (*workload.Plan, error) {
	if cfg.noViews {
		// The raw plan never depends on the catalog; not worth caching.
		return &workload.Plan{Query: p.q, Graph: p.sys.graph}, nil
	}
	// Read the epoch before rewriting: if a view lands mid-rewrite we
	// cache the fresher plan under the older epoch and merely re-rewrite
	// once more on the next execution — never the reverse staleness.
	e := p.sys.catalog.Epoch()
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.valid || p.epoch != e {
		plan, err := p.sys.catalog.Rewrite(p.q)
		if err != nil {
			return nil, err
		}
		p.plan, p.epoch, p.valid = plan, e, true
	}
	return p.plan, nil
}

// resolve merges Prepare-time defaults with per-execution options and
// picks the plan.
func (p *PreparedQuery) resolve(opts []QueryOption) (queryConfig, *workload.Plan, error) {
	cfg := p.sys.config(append(append([]QueryOption(nil), p.opts...), opts...))
	plan, err := p.currentPlan(cfg)
	return cfg, plan, err
}

// ExecContext executes the prepared query into a buffered Result,
// honoring ctx cancellation/deadline throughout the match.
func (p *PreparedQuery) ExecContext(ctx context.Context, opts ...QueryOption) (*exec.Result, error) {
	cfg, plan, err := p.resolve(opts)
	if err != nil {
		p.sys.countError()
		return nil, err
	}
	return p.sys.executor(cfg, plan.Graph, p.src).ExecuteContext(ctx, plan.Query)
}

// Exec is ExecContext without cancellation.
func (p *PreparedQuery) Exec(opts ...QueryOption) (*exec.Result, error) {
	return p.ExecContext(context.Background(), opts...)
}

// QueryContext executes the prepared query as a streaming cursor (see
// System.QueryRows). The caller must Close the cursor.
func (p *PreparedQuery) QueryContext(ctx context.Context, opts ...QueryOption) (*exec.Rows, error) {
	cfg, plan, err := p.resolve(opts)
	if err != nil {
		p.sys.countError()
		return nil, err
	}
	return p.sys.executor(cfg, plan.Graph, p.src).Stream(ctx, plan.Query)
}

// Plan returns the plan the next execution would run (rewriting if the
// cached one is stale) — the prepared-query counterpart of Explain.
func (p *PreparedQuery) Plan() (*workload.Plan, error) {
	_, plan, err := p.resolve(nil)
	return plan, err
}

// AggMode reports the aggregation execution strategy the next execution
// would use (rewriting first if the cached plan is stale): none for
// pure projections, partial when every accumulator is order-insensitive
// and merges per partition, buffered when an observable fold order
// (float SUM, AVG) forces the parallel path to replay yields in
// sequential order. The mode is a plan property — rewriting over a view
// can change the query shape, so it is derived from the current plan,
// not the prepared source.
func (p *PreparedQuery) AggMode() (exec.AggMode, error) {
	_, plan, err := p.resolve(nil)
	if err != nil {
		return exec.AggModeNone, err
	}
	return exec.QueryAggModeFor(plan.Query, plan.Graph.Schema()), nil
}
