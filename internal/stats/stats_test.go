package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"kaskade/internal/graph"
)

func TestPercentileNearestRank(t *testing.T) {
	sample := []int{15, 20, 35, 40, 50}
	cases := []struct {
		alpha float64
		want  int
	}{
		{5, 15},
		{30, 20},
		{40, 20},
		{50, 35},
		{100, 50},
	}
	for _, tc := range cases {
		if got := Percentile(sample, tc.alpha); got != tc.want {
			t.Errorf("Percentile(%v) = %d, want %d", tc.alpha, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty sample should give 0")
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]int, len(raw))
		for i, v := range raw {
			sample[i] = int(v)
		}
		sorted := append([]int(nil), sample...)
		sort.Ints(sorted)
		p50 := Percentile(sample, 50)
		p95 := Percentile(sample, 95)
		p100 := Percentile(sample, 100)
		// Monotone in α and bounded by min/max.
		return p50 <= p95 && p95 <= p100 &&
			p100 == sorted[len(sorted)-1] &&
			p50 >= sorted[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	g := graph.NewGraph(nil)
	hub := g.MustAddVertex("V", nil)
	var others []graph.VertexID
	for i := 0; i < 9; i++ {
		others = append(others, g.MustAddVertex("V", nil))
	}
	for _, o := range others {
		g.MustAddEdge(hub, o, "E", nil) // hub out-degree 9
	}
	g.MustAddEdge(others[0], hub, "E", nil) // one vertex with out-degree 1

	s := Summarize(g, "V")
	if s.Count != 10 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Max != 9 {
		t.Errorf("max = %d, want 9", s.Max)
	}
	if s.P50 != 0 {
		t.Errorf("p50 = %d, want 0 (most vertices have no out-edges)", s.P50)
	}
	if d, err := s.Degree(95); err != nil || d != s.P95 {
		t.Errorf("Degree(95) = %d,%v", d, err)
	}
	if _, err := s.Degree(42); err == nil {
		t.Error("Degree(42) should be unsupported")
	}
}

func TestCCDF(t *testing.T) {
	pts := CCDF([]int{1, 1, 2, 3, 3, 3})
	// deg 1: 4 vertices above; deg 2: 3 above; deg 3: 0 above.
	want := []CCDFPoint{{1, 4}, {2, 3}, {3, 0}}
	if len(pts) != len(want) {
		t.Fatalf("CCDF = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("CCDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	// CCDF counts are non-increasing in degree.
	for i := 1; i < len(pts); i++ {
		if pts[i].Count > pts[i-1].Count {
			t.Error("CCDF not monotone")
		}
	}
}

func TestFitPowerLawOnSyntheticPowerLaw(t *testing.T) {
	// Sample degrees from P(deg > x) ~ x^-(γ-1) with γ=2.5 via inverse
	// transform sampling.
	rng := rand.New(rand.NewSource(7))
	gamma := 2.5
	degrees := make([]int, 20000)
	for i := range degrees {
		u := rng.Float64()
		d := math.Pow(1-u, -1/(gamma-1)) // Pareto with x_min=1
		if d > 1e6 {
			d = 1e6
		}
		degrees[i] = int(d)
	}
	fit, err := FitPowerLaw(degrees)
	if err != nil {
		t.Fatal(err)
	}
	if got := fit.Gamma(); math.Abs(got-gamma) > 0.5 {
		t.Errorf("fitted γ = %.2f, want ≈ %.1f", got, gamma)
	}
	if fit.R2 < 0.9 {
		t.Errorf("R² = %.3f, want > 0.9 for a true power law", fit.R2)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw([]int{5}); err == nil {
		t.Error("single point: want error")
	}
	if _, err := FitPowerLaw(nil); err == nil {
		t.Error("empty: want error")
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 2x + 1 exactly.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	slope, intercept, r2 := linearFit(xs, ys)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Errorf("fit = (%.3f, %.3f, %.3f), want (2, 1, 1)", slope, intercept, r2)
	}
}

func TestHistogramAndMean(t *testing.T) {
	h := Histogram([]int{1, 2, 2, 3})
	if h[2] != 2 || h[1] != 1 || h[3] != 1 {
		t.Errorf("histogram = %v", h)
	}
	if m := Mean([]int{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
}
