// Package stats provides the graph statistics Kaskade's cost model and
// evaluation rely on: exact degree percentiles (the deg_α of §V-A),
// degree-distribution CCDFs, and log-log least-squares power-law fits
// (used to regenerate Fig. 8).
package stats

import (
	"fmt"
	"math"
	"sort"

	"kaskade/internal/graph"
)

// Percentile returns the α-th percentile (0 < α <= 100) of the sample
// using the nearest-rank method on a sorted copy. It returns 0 for an
// empty sample.
func Percentile(sample []int, alpha float64) int {
	if len(sample) == 0 {
		return 0
	}
	sorted := append([]int(nil), sample...)
	sort.Ints(sorted)
	return percentileSorted(sorted, alpha)
}

func percentileSorted(sorted []int, alpha float64) int {
	if len(sorted) == 0 {
		return 0
	}
	if alpha <= 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(alpha / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// OutDegrees returns the out-degree of every vertex of the given type
// (every vertex when vtype is "").
func OutDegrees(g *graph.Graph, vtype string) []int {
	if vtype == "" {
		out := make([]int, g.NumVertices())
		for i := range out {
			out[i] = g.OutDegree(graph.VertexID(i))
		}
		return out
	}
	ids := g.VerticesOfType(vtype)
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = g.OutDegree(id)
	}
	return out
}

// DegreeSummary is the coarse-grained out-degree summary Kaskade keeps
// per vertex type (§V-A: the 50th, 90th, and 95th percentile out-degree,
// plus the maximum).
type DegreeSummary struct {
	Type  string // vertex type ("" for the whole graph)
	Count int    // number of vertices
	P50   int
	P90   int
	P95   int
	Max   int
}

// Summarize computes the degree summary of one vertex type ("" for all).
func Summarize(g *graph.Graph, vtype string) DegreeSummary {
	degs := OutDegrees(g, vtype)
	sort.Ints(degs)
	s := DegreeSummary{Type: vtype, Count: len(degs)}
	if len(degs) == 0 {
		return s
	}
	s.P50 = percentileSorted(degs, 50)
	s.P90 = percentileSorted(degs, 90)
	s.P95 = percentileSorted(degs, 95)
	s.Max = degs[len(degs)-1]
	return s
}

// Degree returns the percentile degree out of a summary for the α values
// the cost model supports (50, 90, 95, 100).
func (s DegreeSummary) Degree(alpha int) (int, error) {
	switch alpha {
	case 50:
		return s.P50, nil
	case 90:
		return s.P90, nil
	case 95:
		return s.P95, nil
	case 100:
		return s.Max, nil
	}
	return 0, fmt.Errorf("stats: unsupported percentile α=%d (want 50, 90, 95, or 100)", alpha)
}

// CCDFPoint is one point of a complementary cumulative distribution
// function: Count vertices have degree strictly greater than Degree.
type CCDFPoint struct {
	Degree int
	Count  int
}

// CCDF computes the degree CCDF (the y-axis of Fig. 8: freq. deg > x).
func CCDF(degrees []int) []CCDFPoint {
	if len(degrees) == 0 {
		return nil
	}
	sorted := append([]int(nil), degrees...)
	sort.Ints(sorted)
	var pts []CCDFPoint
	n := len(sorted)
	i := 0
	for i < n {
		d := sorted[i]
		j := i
		for j < n && sorted[j] == d {
			j++
		}
		pts = append(pts, CCDFPoint{Degree: d, Count: n - j})
		i = j
	}
	return pts
}

// PowerLawFit is the result of a least-squares linear fit on the log-log
// CCDF: log10(count) ≈ Intercept + Slope*log10(degree). For a power-law
// degree distribution with exponent γ, the CCDF slope is ≈ -(γ-1).
type PowerLawFit struct {
	Slope     float64
	Intercept float64
	R2        float64 // goodness of linear fit
	Points    int     // points used (degree >= 1, count >= 1)
}

// Gamma returns the implied power-law exponent γ = 1 - slope.
func (f PowerLawFit) Gamma() float64 { return 1 - f.Slope }

// FitPowerLaw fits a line to the log-log CCDF of the degree sample.
func FitPowerLaw(degrees []int) (PowerLawFit, error) {
	pts := CCDF(degrees)
	var xs, ys []float64
	for _, p := range pts {
		if p.Degree >= 1 && p.Count >= 1 {
			xs = append(xs, math.Log10(float64(p.Degree)))
			ys = append(ys, math.Log10(float64(p.Count)))
		}
	}
	if len(xs) < 2 {
		return PowerLawFit{}, fmt.Errorf("stats: not enough points for power-law fit (%d)", len(xs))
	}
	slope, intercept, r2 := linearFit(xs, ys)
	return PowerLawFit{Slope: slope, Intercept: intercept, R2: r2, Points: len(xs)}, nil
}

// linearFit is ordinary least squares y = a + b*x, returning (b, a, R²).
func linearFit(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	// R² = 1 - SSres/SStot.
	var ssRes, ssTot float64
	meanY := sy / n
	for i := range xs {
		pred := intercept + slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	if ssTot == 0 {
		return slope, intercept, 1
	}
	return slope, intercept, 1 - ssRes/ssTot
}

// Histogram returns degree -> count of vertices with that degree.
func Histogram(degrees []int) map[int]int {
	h := make(map[int]int)
	for _, d := range degrees {
		h[d]++
	}
	return h
}

// Mean returns the arithmetic mean of the sample (0 for empty).
func Mean(sample []int) float64 {
	if len(sample) == 0 {
		return 0
	}
	var sum int64
	for _, v := range sample {
		sum += int64(v)
	}
	return float64(sum) / float64(len(sample))
}
