package datagen

import (
	"testing"

	"kaskade/internal/graph"
	"kaskade/internal/stats"
)

func TestProvSchemaConformance(t *testing.T) {
	cfg := DefaultProvConfig()
	cfg.Jobs, cfg.Files, cfg.TasksPerJob = 200, 400, 5
	g, err := Prov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.CountVerticesOfType("Job") != 200 || g.CountVerticesOfType("File") != 400 {
		t.Errorf("jobs=%d files=%d", g.CountVerticesOfType("Job"), g.CountVerticesOfType("File"))
	}
	// Every edge obeys the schema (AddEdge enforces it, but verify the
	// generator produced the lineage shape: Files never write).
	g.EachEdge(func(e *graph.Edge) {
		ft := g.Vertex(e.From).Type
		tt := g.Vertex(e.To).Type
		if e.Type == "WRITES_TO" && (ft != "Job" || tt != "File") {
			t.Fatalf("bad WRITES_TO %s->%s", ft, tt)
		}
		if e.Type == "IS_READ_BY" && (ft != "File" || tt != "Job") {
			t.Fatalf("bad IS_READ_BY %s->%s", ft, tt)
		}
	})
	// Satellites dominate the raw graph, like the paper's raw prov.
	tasks := g.CountVerticesOfType("Task")
	if tasks <= 200 {
		t.Errorf("tasks=%d should dominate jobs", tasks)
	}
	// Jobs carry the properties Q1 needs.
	j := g.VerticesOfType("Job")[0]
	if g.Vertex(j).Prop("CPU") == nil || g.Vertex(j).Prop("pipelineName") == nil {
		t.Error("job missing CPU/pipelineName properties")
	}
}

func TestProvDeterminism(t *testing.T) {
	cfg := DefaultProvConfig()
	cfg.Jobs, cfg.Files, cfg.TasksPerJob = 100, 150, 3
	g1, err := Prov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Prov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("sizes differ: %v vs %v", g1, g2)
	}
	for i := 0; i < g1.NumEdges(); i++ {
		e1, e2 := g1.Edge(graph.EdgeID(i)), g2.Edge(graph.EdgeID(i))
		if e1.From != e2.From || e1.To != e2.To || e1.Type != e2.Type {
			t.Fatalf("edge %d differs: %v vs %v", i, e1, e2)
		}
	}
}

func TestDBLP(t *testing.T) {
	cfg := DefaultDBLPConfig()
	cfg.Authors, cfg.Papers, cfg.Venues = 300, 500, 20
	g, err := DBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := g.EdgeTypeCounts()
	if counts["AUTHORED"] != counts["AUTHORED_BY"] {
		t.Errorf("AUTHORED=%d != AUTHORED_BY=%d", counts["AUTHORED"], counts["AUTHORED_BY"])
	}
	if counts["PUBLISHED_IN"] != 500 {
		t.Errorf("PUBLISHED_IN=%d, want one per paper", counts["PUBLISHED_IN"])
	}
	// Author participation is skewed: max papers-per-author well above
	// the median.
	s := stats.Summarize(g, "Author")
	if s.Max <= s.P50*2 {
		t.Errorf("author degrees not skewed: p50=%d max=%d", s.P50, s.Max)
	}
}

func TestRoadNet(t *testing.T) {
	cfg := DefaultRoadNetConfig()
	cfg.Width, cfg.Height = 30, 30
	g, err := RoadNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 900 {
		t.Errorf("|V|=%d, want 900", g.NumVertices())
	}
	s := stats.Summarize(g, "Intersection")
	if s.Max > 4 {
		t.Errorf("grid max out-degree = %d, want <= 4", s.Max)
	}
	// Near-constant degrees: p95 and p50 are close (non-power-law).
	if s.P95-s.P50 > 2 {
		t.Errorf("degree spread too wide for a road network: p50=%d p95=%d", s.P50, s.P95)
	}
}

func TestSocialNetworkPowerLaw(t *testing.T) {
	cfg := DefaultSocialConfig()
	cfg.Users, cfg.Edges = 3000, 20000
	g, err := SocialNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 20000 {
		t.Errorf("|E|=%d, want 20000", g.NumEdges())
	}
	degs := stats.OutDegrees(g, "User")
	fit, err := stats.FitPowerLaw(degs)
	if err != nil {
		t.Fatal(err)
	}
	// Power-law-ish: strongly negative slope with decent linear fit on
	// log-log CCDF.
	if fit.Slope > -0.5 {
		t.Errorf("slope = %.2f, want strongly negative", fit.Slope)
	}
	if fit.R2 < 0.7 {
		t.Errorf("R² = %.2f, want > 0.7 for power-law-like", fit.R2)
	}
	// No self loops.
	g.EachEdge(func(e *graph.Edge) {
		if e.From == e.To {
			t.Fatal("self loop generated")
		}
	})
}

func TestPrefix(t *testing.T) {
	cfg := DefaultSocialConfig()
	cfg.Users, cfg.Edges = 500, 3000
	g, err := SocialNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Prefix(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != 100 {
		t.Errorf("prefix |E|=%d, want 100", sub.NumEdges())
	}
	if sub.NumVertices() > 200 {
		t.Errorf("prefix has %d vertices for 100 edges", sub.NumVertices())
	}
	// Every prefix vertex is incident to at least one edge.
	for i := 0; i < sub.NumVertices(); i++ {
		id := graph.VertexID(i)
		if sub.OutDegree(id) == 0 && sub.InDegree(id) == 0 {
			t.Fatalf("isolated vertex %d in prefix", id)
		}
	}
	// Prefix larger than the graph clamps.
	all, err := Prefix(g, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if all.NumEdges() != g.NumEdges() {
		t.Errorf("clamped prefix |E|=%d, want %d", all.NumEdges(), g.NumEdges())
	}
	// Edge timestamps preserved.
	if sub.Edge(0).Prop("ts") == nil {
		t.Error("prefix lost edge properties")
	}
}

func TestGenerateByName(t *testing.T) {
	for _, name := range []string{NameProv, NameDBLP, NameRoadNet, NameSocial} {
		g, err := Generate(name, 0.05, 99)
		if err != nil {
			t.Errorf("Generate(%s): %v", name, err)
			continue
		}
		if g.NumEdges() == 0 {
			t.Errorf("Generate(%s): empty graph", name)
		}
	}
	if _, err := Generate("nope", 1, 0); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Prov(ProvConfig{}); err == nil {
		t.Error("zero prov config accepted")
	}
	if _, err := DBLP(DBLPConfig{Authors: 1}); err == nil {
		t.Error("bad dblp config accepted")
	}
	if _, err := RoadNet(RoadNetConfig{Width: 1, Height: 5}); err == nil {
		t.Error("1-wide roadnet accepted")
	}
	if _, err := SocialNetwork(SocialConfig{Users: 1, Edges: 5}); err == nil {
		t.Error("1-user social accepted")
	}
}
