// Package datagen generates the synthetic datasets standing in for the
// paper's evaluation graphs (Table III): a Microsoft-style provenance
// graph (prov), a DBLP-style publication network (dblp), a road network
// (roadnet-usa), and a power-law social network (soc-livejournal).
//
// The generators preserve what the experiments depend on — schema shape,
// heterogeneity, degree-distribution family (power-law vs. near-constant),
// and the properties queries touch (CPU, pipelineName, edge timestamps) —
// at laptop scales. All generators are deterministic given a seed, and
// edges are emitted in a deterministically shuffled order so that
// first-n-edges prefixes (Fig. 5's x-axis sweeps) are representative
// subgraphs rather than generation-order artifacts.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"kaskade/internal/graph"
)

// Dataset names as used by the benchmark harness and CLI.
const (
	NameProv    = "prov"
	NameDBLP    = "dblp"
	NameRoadNet = "roadnet"
	NameSocial  = "soc"
)

// pendingEdge buffers an edge during generation so the full edge set can
// be shuffled before insertion.
type pendingEdge struct {
	from, to graph.VertexID
	etype    string
	props    graph.Properties
}

// addShuffled shuffles pending edges deterministically and adds them to g
// with increasing timestamps.
func addShuffled(g *graph.Graph, edges []pendingEdge, rng *rand.Rand) error {
	perm := rng.Perm(len(edges))
	for i, pi := range perm {
		e := edges[pi]
		if e.props == nil {
			e.props = graph.Properties{}
		}
		e.props["ts"] = int64(i)
		if _, err := g.AddEdge(e.from, e.to, e.etype, e.props); err != nil {
			return err
		}
	}
	return nil
}

// zipfDegree samples a power-law degree in [1, max] with the given
// exponent (s > 1).
func zipfDegree(rng *rand.Rand, s float64, max uint64) int {
	if max < 1 {
		return 1
	}
	z := rand.NewZipf(rng, s, 1, max-1)
	return int(z.Uint64()) + 1
}

// --- provenance graph (heterogeneous, the paper's §I-A scenario) ---

// ProvConfig sizes the provenance graph. The raw graph includes the
// satellite entity types (tasks, machines, users) that dominate raw size
// and get stripped by the schema-level summarizer, mirroring how the
// paper's 3.2B-vertex raw graph summarizes to 7M jobs+files.
type ProvConfig struct {
	Jobs        int
	Files       int
	TasksPerJob int // tasks spawned per job (raw graph bulk)
	Machines    int
	Users       int
	MaxReads    uint64 // max jobs reading a file (power-law)
	Pipelines   int    // distinct pipelineName values
	Seed        int64
}

// DefaultProvConfig returns laptop-scale defaults preserving the raw vs.
// summarized ratio of Table III (satellites ≫ jobs+files).
func DefaultProvConfig() ProvConfig {
	return ProvConfig{
		Jobs:        2_000,
		Files:       5_000,
		TasksPerJob: 120,
		Machines:    400,
		Users:       100,
		MaxReads:    60,
		Pipelines:   50,
		Seed:        1,
	}
}

// ProvSchema is the data-lineage schema of §I-A / Fig. 3: jobs produce
// and consume files (no file-file or job-job edges), jobs spawn tasks,
// tasks transfer data to tasks and run on machines, users submit jobs.
func ProvSchema() *graph.Schema {
	s := graph.MustSchema(
		[]string{"Job", "File", "Task", "Machine", "User"},
		[]graph.EdgeType{
			{From: "Job", To: "File", Name: "WRITES_TO"},
			{From: "File", To: "Job", Name: "IS_READ_BY"},
			{From: "Job", To: "Task", Name: "SPAWNS"},
			{From: "Task", To: "Task", Name: "TRANSFERS_TO"},
			{From: "Task", To: "Machine", Name: "RUNS_ON"},
			{From: "User", To: "Job", Name: "SUBMITTED"},
		},
	)
	// Declared property kinds match what Prov generates exactly; the
	// declarations both license integer partial aggregation at plan time
	// and opt these properties into frozen columnar storage.
	for _, d := range []struct {
		typ, prop string
		kind      graph.PropKind
	}{
		{"Job", "name", graph.PropString},
		{"Job", "CPU", graph.PropInt},
		{"Job", "pipelineName", graph.PropString},
		{"File", "name", graph.PropString},
		{"File", "size", graph.PropInt},
		{"Machine", "name", graph.PropString},
		{"User", "name", graph.PropString},
	} {
		if err := s.DeclareProperty(d.typ, d.prop, d.kind); err != nil {
			panic(err)
		}
	}
	return s
}

// Prov generates the raw provenance graph.
func Prov(cfg ProvConfig) (*graph.Graph, error) {
	if cfg.Jobs < 1 || cfg.Files < 1 {
		return nil, fmt.Errorf("datagen: prov needs at least one job and one file")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewGraph(ProvSchema())

	jobs := make([]graph.VertexID, cfg.Jobs)
	for i := range jobs {
		jobs[i] = g.MustAddVertex("Job", graph.Properties{
			"name":         fmt.Sprintf("job%d", i),
			"CPU":          int64(1 + rng.Intn(1000)),
			"pipelineName": fmt.Sprintf("pipeline%d", rng.Intn(max(1, cfg.Pipelines))),
		})
	}
	files := make([]graph.VertexID, cfg.Files)
	for i := range files {
		files[i] = g.MustAddVertex("File", graph.Properties{
			"name": fmt.Sprintf("file%d", i),
			"size": int64(1 + rng.Intn(1_000_000)),
		})
	}
	machines := make([]graph.VertexID, max(1, cfg.Machines))
	for i := range machines {
		machines[i] = g.MustAddVertex("Machine", graph.Properties{"name": fmt.Sprintf("m%d", i)})
	}
	users := make([]graph.VertexID, max(1, cfg.Users))
	for i := range users {
		users[i] = g.MustAddVertex("User", graph.Properties{"name": fmt.Sprintf("u%d", i)})
	}

	var edges []pendingEdge
	// Lineage core: a temporal DAG, like a real provenance graph — a
	// file is written by exactly one job and can only be read by jobs
	// submitted later (data cannot flow backwards in time). Job index is
	// submission order. Writers are power-law skewed (hub jobs produce
	// many files) and so are reader counts (hot files feed many jobs).
	// DAG-ness is what makes connector rewritings exactly equivalent
	// (walks in a DAG never reuse edges).
	for _, f := range files {
		wIdx := zipfDegree(rng, 1.5, uint64(cfg.Jobs)) - 1
		edges = append(edges, pendingEdge{from: jobs[wIdx], to: f, etype: "WRITES_TO"})
		if wIdx == cfg.Jobs-1 {
			continue // last job's outputs have no later readers
		}
		r := zipfDegree(rng, 1.8, cfg.MaxReads) - 1 // many files unread
		for k := 0; k < r; k++ {
			rIdx := wIdx + 1 + rng.Intn(cfg.Jobs-wIdx-1)
			edges = append(edges, pendingEdge{from: f, to: jobs[rIdx], etype: "IS_READ_BY"})
		}
	}
	// Satellite bulk: tasks (the raw graph's dominant type), machines,
	// users.
	var allTasks []graph.VertexID
	for _, j := range jobs {
		n := 1 + rng.Intn(max(1, 2*cfg.TasksPerJob))
		var prev graph.VertexID = graph.NoVertex
		for k := 0; k < n; k++ {
			t := g.MustAddVertex("Task", nil)
			allTasks = append(allTasks, t)
			edges = append(edges, pendingEdge{from: j, to: t, etype: "SPAWNS"})
			edges = append(edges, pendingEdge{from: t, to: machines[rng.Intn(len(machines))], etype: "RUNS_ON"})
			if prev != graph.NoVertex {
				edges = append(edges, pendingEdge{from: prev, to: t, etype: "TRANSFERS_TO"})
			}
			prev = t
		}
	}
	for _, j := range jobs {
		edges = append(edges, pendingEdge{from: users[rng.Intn(len(users))], to: j, etype: "SUBMITTED"})
	}
	if err := addShuffled(g, edges, rng); err != nil {
		return nil, err
	}
	return g, nil
}

// --- DBLP-style publication network (heterogeneous) ---

// DBLPConfig sizes the publication graph.
type DBLPConfig struct {
	Authors      int
	Papers       int
	Venues       int
	MaxPerAuthor uint64 // power-law cap on papers per author
	Seed         int64
}

// DefaultDBLPConfig returns laptop-scale defaults.
func DefaultDBLPConfig() DBLPConfig {
	return DBLPConfig{Authors: 3_000, Papers: 6_000, Venues: 150, MaxPerAuthor: 80, Seed: 2}
}

// DBLPSchema: authors write papers (both directions are materialized so
// author-to-author co-authorship 2-hop connectors exist, like GraphDBLP),
// and papers appear in venues.
func DBLPSchema() *graph.Schema {
	return graph.MustSchema(
		[]string{"Author", "Paper", "Venue"},
		[]graph.EdgeType{
			{From: "Author", To: "Paper", Name: "AUTHORED"},
			{From: "Paper", To: "Author", Name: "AUTHORED_BY"},
			{From: "Paper", To: "Venue", Name: "PUBLISHED_IN"},
		},
	)
}

// DBLP generates the publication network. Author participation follows a
// power law (a few prolific authors), authors per paper is 1..5.
func DBLP(cfg DBLPConfig) (*graph.Graph, error) {
	if cfg.Authors < 1 || cfg.Papers < 1 || cfg.Venues < 1 {
		return nil, fmt.Errorf("datagen: dblp needs authors, papers, and venues")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewGraph(DBLPSchema())

	authors := make([]graph.VertexID, cfg.Authors)
	for i := range authors {
		authors[i] = g.MustAddVertex("Author", graph.Properties{"name": fmt.Sprintf("author%d", i)})
	}
	papers := make([]graph.VertexID, cfg.Papers)
	for i := range papers {
		papers[i] = g.MustAddVertex("Paper", graph.Properties{
			"title": fmt.Sprintf("paper%d", i),
			"year":  int64(1990 + rng.Intn(30)),
		})
	}
	venues := make([]graph.VertexID, cfg.Venues)
	for i := range venues {
		venues[i] = g.MustAddVertex("Venue", graph.Properties{"name": fmt.Sprintf("venue%d", i)})
	}

	maxPer := int(cfg.MaxPerAuthor)
	if maxPer < 1 {
		maxPer = 80
	}
	perAuthor := make(map[graph.VertexID]int, cfg.Authors)
	var edges []pendingEdge
	for _, p := range papers {
		// Authors per paper is skewed toward single-author papers
		// (zipf over 1..5), which keeps the co-authorship connector
		// about an order of magnitude smaller than the base graph, the
		// dblp shape of the paper's Fig. 6.
		na := zipfDegree(rng, 2.2, 5)
		seen := map[graph.VertexID]bool{}
		for k := 0; k < na; k++ {
			// Power-law author pick: low indexes are prolific, but a
			// cap keeps the most prolific author realistic relative to
			// the corpus (real DBLP hubs hold a tiny fraction of all
			// papers; without the cap one hub would dominate every
			// 2-hop path count).
			a := authors[zipfDegree(rng, 1.5, uint64(cfg.Authors))-1]
			if perAuthor[a] >= maxPer {
				a = authors[rng.Intn(cfg.Authors)]
			}
			if seen[a] || perAuthor[a] >= maxPer {
				continue
			}
			seen[a] = true
			perAuthor[a]++
			edges = append(edges, pendingEdge{from: a, to: p, etype: "AUTHORED"})
			edges = append(edges, pendingEdge{from: p, to: a, etype: "AUTHORED_BY"})
		}
		edges = append(edges, pendingEdge{from: p, to: venues[rng.Intn(cfg.Venues)], etype: "PUBLISHED_IN"})
	}
	if err := addShuffled(g, edges, rng); err != nil {
		return nil, err
	}
	return g, nil
}

// --- road network (homogeneous, near-constant degree, long paths) ---

// RoadNetConfig sizes the road network as a W×H perturbed grid.
type RoadNetConfig struct {
	Width, Height int
	DropFraction  float64 // fraction of grid edges randomly dropped
	Seed          int64
}

// DefaultRoadNetConfig returns laptop-scale defaults.
func DefaultRoadNetConfig() RoadNetConfig {
	return RoadNetConfig{Width: 120, Height: 120, DropFraction: 0.08, Seed: 3}
}

// RoadNetSchema: a homogeneous graph with one vertex and one edge type.
func RoadNetSchema() *graph.Schema {
	return graph.MustSchema(
		[]string{"Intersection"},
		[]graph.EdgeType{{From: "Intersection", To: "Intersection", Name: "ROAD"}},
	)
}

// RoadNet generates a directed grid road network: neighbors are
// connected in both directions (two directed edges), with a fraction of
// segments dropped for irregularity. Degrees are nearly constant (≤ 4),
// matching roadnet-usa's non-power-law distribution (Fig. 8).
func RoadNet(cfg RoadNetConfig) (*graph.Graph, error) {
	if cfg.Width < 2 || cfg.Height < 2 {
		return nil, fmt.Errorf("datagen: roadnet needs at least a 2x2 grid")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewGraph(RoadNetSchema())
	ids := make([]graph.VertexID, cfg.Width*cfg.Height)
	for i := range ids {
		ids[i] = g.MustAddVertex("Intersection", nil)
	}
	at := func(x, y int) graph.VertexID { return ids[y*cfg.Width+x] }
	var edges []pendingEdge
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			if x+1 < cfg.Width && rng.Float64() >= cfg.DropFraction {
				edges = append(edges, pendingEdge{from: at(x, y), to: at(x+1, y), etype: "ROAD"})
				edges = append(edges, pendingEdge{from: at(x+1, y), to: at(x, y), etype: "ROAD"})
			}
			if y+1 < cfg.Height && rng.Float64() >= cfg.DropFraction {
				edges = append(edges, pendingEdge{from: at(x, y), to: at(x, y+1), etype: "ROAD"})
				edges = append(edges, pendingEdge{from: at(x, y+1), to: at(x, y), etype: "ROAD"})
			}
		}
	}
	if err := addShuffled(g, edges, rng); err != nil {
		return nil, err
	}
	return g, nil
}

// --- social network (homogeneous, power-law) ---

// SocialConfig sizes the Chung-Lu style power-law social graph.
type SocialConfig struct {
	Users    int
	Edges    int
	Exponent float64 // degree-weight power-law exponent (≈2.3 for soc-lj)
	// MaxDegree caps the expected degree of the largest hub (0 = no
	// cap). At laptop scales an uncapped power law concentrates a far
	// larger *fraction* of edges on the top hub than a web-scale graph
	// does, which would distort hub-sensitive statistics (e.g. Fig. 5's
	// percentile-bracketing of 2-hop path counts).
	MaxDegree int
	Seed      int64
}

// DefaultSocialConfig returns laptop-scale defaults.
func DefaultSocialConfig() SocialConfig {
	return SocialConfig{Users: 8_000, Edges: 60_000, Exponent: 2.3, MaxDegree: 250, Seed: 4}
}

// SocialSchema: a homogeneous graph with one vertex and one edge type.
func SocialSchema() *graph.Schema {
	return graph.MustSchema(
		[]string{"User"},
		[]graph.EdgeType{{From: "User", To: "User", Name: "FOLLOWS"}},
	)
}

// SocialNetwork generates a directed Chung-Lu graph: endpoints are drawn
// proportionally to power-law weights w_i = i^(-1/(γ-1)), so both in- and
// out-degrees follow a power law with exponent ≈ γ like soc-livejournal's.
func SocialNetwork(cfg SocialConfig) (*graph.Graph, error) {
	if cfg.Users < 2 || cfg.Edges < 1 {
		return nil, fmt.Errorf("datagen: social network needs users and edges")
	}
	gamma := cfg.Exponent
	if gamma <= 1.1 {
		gamma = 2.3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.NewGraph(SocialSchema())
	ids := make([]graph.VertexID, cfg.Users)
	for i := range ids {
		ids[i] = g.MustAddVertex("User", nil)
	}
	// Power-law weights, optionally clamped so the top hub's expected
	// degree stays near MaxDegree (fixed-point on the normalizer).
	beta := 1 / (gamma - 1)
	weights := make([]float64, cfg.Users)
	for i := range weights {
		weights[i] = powNeg(float64(i+1), beta)
	}
	if cfg.MaxDegree > 0 {
		for iter := 0; iter < 4; iter++ {
			sum := 0.0
			for _, w := range weights {
				sum += w
			}
			// Each edge draws two endpoints, so a vertex's expected
			// incident count is 2*E*w/sum.
			clamp := float64(cfg.MaxDegree) * sum / (2 * float64(cfg.Edges))
			for i, w := range weights {
				if w > clamp {
					weights[i] = clamp
				}
			}
		}
	}
	// Cumulative weights for inverse-CDF sampling.
	cum := make([]float64, cfg.Users)
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	pick := func() graph.VertexID {
		x := rng.Float64() * total
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return ids[lo]
	}
	var edges []pendingEdge
	for len(edges) < cfg.Edges {
		from, to := pick(), pick()
		if from == to {
			continue
		}
		edges = append(edges, pendingEdge{from: from, to: to, etype: "FOLLOWS"})
	}
	if err := addShuffled(g, edges, rng); err != nil {
		return nil, err
	}
	return g, nil
}

// --- prefixes (Fig. 5 sweeps) ---

// Prefix builds the subgraph induced by the first n edges of g (by edge
// ID, which is the deterministic shuffled emission order). Only vertices
// incident to those edges are kept. Vertex properties are shared with the
// original graph.
func Prefix(g *graph.Graph, n int) (*graph.Graph, error) {
	if n > g.NumEdges() {
		n = g.NumEdges()
	}
	sub := graph.NewGraph(g.Schema())
	remap := make(map[graph.VertexID]graph.VertexID)
	mapv := func(old graph.VertexID) (graph.VertexID, error) {
		if nv, ok := remap[old]; ok {
			return nv, nil
		}
		v := g.Vertex(old)
		nv, err := sub.AddVertex(v.Type, v.Props)
		if err != nil {
			return graph.NoVertex, err
		}
		remap[old] = nv
		return nv, nil
	}
	for i := 0; i < n; i++ {
		e := g.Edge(graph.EdgeID(i))
		from, err := mapv(e.From)
		if err != nil {
			return nil, err
		}
		to, err := mapv(e.To)
		if err != nil {
			return nil, err
		}
		if _, err := sub.AddEdge(from, to, e.Type, e.Props); err != nil {
			return nil, err
		}
	}
	return sub, nil
}

// Generate builds a dataset by name with its default configuration,
// scaled by the given factor (0 < scale; 1 = defaults).
func Generate(name string, scale float64, seed int64) (*graph.Graph, error) {
	if scale <= 0 {
		scale = 1
	}
	s := func(n int) int { return max(2, int(float64(n)*scale)) }
	switch name {
	case NameProv:
		cfg := DefaultProvConfig()
		cfg.Jobs, cfg.Files = s(cfg.Jobs), s(cfg.Files)
		cfg.Machines, cfg.Users = s(cfg.Machines), s(cfg.Users)
		if seed != 0 {
			cfg.Seed = seed
		}
		return Prov(cfg)
	case NameDBLP:
		cfg := DefaultDBLPConfig()
		cfg.Authors, cfg.Papers, cfg.Venues = s(cfg.Authors), s(cfg.Papers), s(cfg.Venues)
		if seed != 0 {
			cfg.Seed = seed
		}
		return DBLP(cfg)
	case NameRoadNet:
		cfg := DefaultRoadNetConfig()
		// Scale area linearly: sides scale by sqrt.
		side := func(n int) int { return max(2, int(float64(n)*sqrtish(scale))) }
		cfg.Width, cfg.Height = side(cfg.Width), side(cfg.Height)
		if seed != 0 {
			cfg.Seed = seed
		}
		return RoadNet(cfg)
	case NameSocial:
		cfg := DefaultSocialConfig()
		cfg.Users, cfg.Edges = s(cfg.Users), s(cfg.Edges)
		if seed != 0 {
			cfg.Seed = seed
		}
		return SocialNetwork(cfg)
	}
	return nil, fmt.Errorf("datagen: unknown dataset %q (want prov, dblp, roadnet, or soc)", name)
}

// powNeg computes x^(-b) for positive x via exp/log-free repeated
// squaring on the math library.
func powNeg(x, b float64) float64 { return math.Pow(x, -b) }

func sqrtish(x float64) float64 {
	if x <= 0 {
		return 1
	}
	// Newton's method; avoids importing math for one call site.
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
