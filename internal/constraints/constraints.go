// Package constraints implements Kaskade's constraint miner (§IV-A): it
// extracts explicit constraints (Prolog facts) from the query's MATCH
// clause and from the graph schema, and carries the library of constraint
// mining rules (Listings 2 and 6 of the paper) that derive implicit
// constraints — valid k-hop schema paths, query path lengths,
// source/sink-ness — which are injected into the inference engine at view
// enumeration time to prune the candidate space.
//
// The package also contains the procedural version of schemaKHopPath
// (Alg. 1 in the paper's appendix), kept for the search-space ablation
// experiment.
package constraints

import (
	"fmt"
	"sort"
	"strings"

	"kaskade/internal/gql"
	"kaskade/internal/graph"
)

// DefaultMaxHops bounds unbounded variable-length patterns when emitting
// facts, matching the paper's working assumption of k ≤ 10 (§IV-B).
const DefaultMaxHops = 10

// QueryFacts converts a MATCH clause into explicit Prolog facts
// (§IV-A1): queryVertex/1, queryVertexType/2, queryEdge/2,
// queryEdgeType/3, and queryVariableLengthPath/4. Anonymous pattern
// elements receive synthesized names. Reversed edge patterns are emitted
// in their forward orientation.
func QueryFacts(m *gql.MatchQuery) ([]string, error) {
	if m == nil {
		return nil, fmt.Errorf("constraints: query has no MATCH block")
	}
	var facts []string
	seenVertex := make(map[string]bool)
	anon := 0

	vertexName := func(n gql.NodePattern, pi, ni int) string {
		if n.Var != "" {
			return n.Var
		}
		anon++
		return fmt.Sprintf("anon_%d_%d", pi, ni)
	}
	emitVertex := func(name, vtype string) {
		if !seenVertex[name] {
			seenVertex[name] = true
			facts = append(facts, fmt.Sprintf("queryVertex('%s').", name))
		}
		if vtype != "" {
			facts = append(facts, fmt.Sprintf("queryVertexType('%s', '%s').", name, vtype))
		}
	}

	for pi, pat := range m.Patterns {
		if len(pat.Nodes) == 0 {
			return nil, fmt.Errorf("constraints: empty pattern")
		}
		names := make([]string, len(pat.Nodes))
		for ni, n := range pat.Nodes {
			names[ni] = vertexName(n, pi, ni)
			emitVertex(names[ni], n.Type)
		}
		for ei, e := range pat.Edges {
			from, to := names[ei], names[ei+1]
			if e.Reversed {
				from, to = to, from
			}
			if e.VarLength {
				lo, hi := e.MinHops, e.MaxHops
				if hi < 0 {
					hi = DefaultMaxHops
				}
				facts = append(facts, fmt.Sprintf(
					"queryVariableLengthPath('%s', '%s', %d, %d).", from, to, lo, hi))
				continue
			}
			facts = append(facts, fmt.Sprintf("queryEdge('%s', '%s').", from, to))
			if e.Type != "" {
				facts = append(facts, fmt.Sprintf(
					"queryEdgeType('%s', '%s', '%s').", from, to, e.Type))
			}
		}
	}
	// Deduplicate while preserving first-occurrence order (a vertex can
	// appear in several patterns).
	return dedupe(facts), nil
}

// ProjectedVars returns the variables the MATCH clause projects in its
// RETURN items (directly or via property access/aggregates) — the
// vertices a rewriting must preserve (§IV-B: "the only vertices projected
// out of the MATCH clause").
func ProjectedVars(m *gql.MatchQuery) []string {
	seen := make(map[string]bool)
	var out []string
	var walk func(e gql.Expr)
	walk = func(e gql.Expr) {
		switch e := e.(type) {
		case *gql.Ident:
			if !seen[e.Name] {
				seen[e.Name] = true
				out = append(out, e.Name)
			}
		case *gql.PropAccess:
			if !seen[e.Base] {
				seen[e.Base] = true
				out = append(out, e.Base)
			}
		case *gql.BinaryExpr:
			walk(e.Left)
			walk(e.Right)
		case *gql.UnaryExpr:
			walk(e.Operand)
		case *gql.FuncCall:
			for _, a := range e.Args {
				walk(a)
			}
		}
	}
	for _, item := range m.Return {
		walk(item.Expr)
	}
	return out
}

// SchemaFacts converts a graph schema into explicit Prolog facts
// (§IV-A1): schemaVertex/1 and schemaEdge/3.
func SchemaFacts(s *graph.Schema) ([]string, error) {
	if s == nil {
		return nil, fmt.Errorf("constraints: nil schema (Kaskade's enumeration mines schema constraints)")
	}
	var facts []string
	for _, vt := range s.VertexTypes() {
		facts = append(facts, fmt.Sprintf("schemaVertex('%s').", vt))
	}
	for _, et := range s.EdgeTypes() {
		facts = append(facts, fmt.Sprintf("schemaEdge('%s', '%s', '%s').", et.From, et.To, et.Name))
	}
	return facts, nil
}

// MiningRules is the constraint mining rule library: the schema rule of
// Listing 2 and the query rules of Listing 6, essentially verbatim.
const MiningRules = `
% ---- schema constraint mining (Listing 2) ----
% Determine whether directed k-length paths between two node types X and
% Y are feasible over the input graph schema. When K is already bound
% (the usual case: view templates bind it from the query's constraints
% before consulting the schema), a bounded walk is used so that schema
% types may repeat along the path (a K=4 job-to-job path revisits Job and
% File). When K is unbound, the trail-guarded acyclic rule of Listing 2
% enumerates the finite set of type-acyclic feasible lengths.
schemaKHopPath(X, Y, K) :-
    ( integer(K) -> schemaKHopWalk(X, Y, K)
    ; schemaKHopAcyclic(X, Y, K, []) ).

schemaKHopWalk(X, Y, 1) :- schemaEdge(X, Y, _).
schemaKHopWalk(X, Y, K) :- K > 1,
    schemaEdge(X, Z, _), K1 is K - 1, schemaKHopWalk(Z, Y, K1).

schemaKHopAcyclic(X, Y, 1, _) :- schemaEdge(X, Y, _).
schemaKHopAcyclic(X, Y, K, Trail) :-
    schemaEdge(X, Z, _), not(member(Z, Trail)),
    schemaKHopAcyclic(Z, Y, K1, [X|Trail]), K is K1 + 1.

% Variable-length feasibility over the schema (any path, any length).
schemaPath(X, Y) :- schemaKHopAcyclic(X, Y, _, []).

% ---- query constraint mining (Listing 6) ----
% Query k-hop variable length paths
queryKHopVariableLengthPath(X, Y, K) :-
    queryVariableLengthPath(X, Y, LOWER, UPPER),
    between(LOWER, UPPER, K).

% Query k-hop paths
queryKHopPath(X, Y, 1) :- queryEdge(X, Y).
queryKHopPath(X, Y, K) :-
    queryKHopVariableLengthPath(X, Y, K), K >= 1.
queryKHopPath(X, Y, K) :- queryEdge(X, Z),
    queryKHopPath(Z, Y, K1), K is K1 + 1.
queryKHopPath(X, Y, K) :-
    queryVariableLengthPath(X, Z, LOWER, UPPER),
    queryKHopPath(Z, Y, K1),
    between(LOWER, UPPER, K2),
    K is K1 + K2.

% Query paths
queryPath(X, Y) :- queryEdge(X, Y).
queryPath(X, Y) :- queryVariableLengthPath(X, Y, _, _).
queryPath(X, Y) :- queryEdge(X, Z), queryPath(Z, Y).
queryPath(X, Y) :- queryVariableLengthPath(X, Z, _, _), queryPath(Z, Y).

% Query vertex source/sink
queryVertexSource(X) :- queryVertexInDegree(X, 0).
queryVertexSink(X) :- queryVertexOutDegree(X, 0).

% Query vertex in/out degrees
queryIncomingVertices(X, INLIST) :- queryVertex(X),
    findall(SRC, queryEdge(SRC, X), INLIST).
queryOutgoingVertices(X, OUTLIST) :- queryVertex(X),
    findall(DST, queryEdge(X, DST), OUTLIST).
queryVertexInDegree(X, D) :-
    queryIncomingVertices(X, INLIST), length(INLIST, D).
queryVertexOutDegree(X, D) :-
    queryOutgoingVertices(X, OUTLIST), length(OUTLIST, D).

% Vertex types used anywhere in the query (drives summarizer templates).
queryUsedVertexType(T) :- queryVertexType(_, T).
`

// KHopSchemaPathsProcedural is Alg. 1: the procedural version of the
// schemaKHopPath constraint mining rule. It returns all k-length schema
// paths as edge-type sequences. Unlike the declarative rule, it cannot be
// injected alongside the other inference rules, so it explores the whole
// schema-path space — the comparison backing the paper's claim that the
// Prolog formulation both simplifies and prunes (§IV-A2).
//
// The returned count of explored path extensions is the ablation metric.
func KHopSchemaPathsProcedural(edges []graph.EdgeType, k int) (paths [][]graph.EdgeType, explored int) {
	if k < 1 {
		return nil, 0
	}
	// Seed with 1-edge paths.
	cur := make([][]graph.EdgeType, 0, len(edges))
	for _, e := range edges {
		cur = append(cur, []graph.EdgeType{e})
		explored++
	}
	for length := 1; length < k; length++ {
		var next [][]graph.EdgeType
		for _, p := range cur {
			dst := p[len(p)-1].To
			src := p[0].From
			for _, e := range edges {
				// Extend at the tail.
				if dst == e.From {
					next = append(next, append(append([]graph.EdgeType{}, p...), e))
					explored++
				}
				// Extend at the front (Alg. 1 grows both ways).
				if src == e.To {
					next = append(next, append([]graph.EdgeType{e}, p...))
					explored++
				}
			}
		}
		cur = dedupePaths(next)
	}
	return cur, explored
}

func dedupePaths(ps [][]graph.EdgeType) [][]graph.EdgeType {
	seen := make(map[string]bool)
	var out [][]graph.EdgeType
	for _, p := range ps {
		var sb strings.Builder
		for _, e := range p {
			fmt.Fprintf(&sb, "%s|%s|%s;", e.From, e.Name, e.To)
		}
		k := sb.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return pathKey(out[i]) < pathKey(out[j])
	})
	return out
}

func pathKey(p []graph.EdgeType) string {
	var sb strings.Builder
	for _, e := range p {
		fmt.Fprintf(&sb, "%s|%s|%s;", e.From, e.Name, e.To)
	}
	return sb.String()
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
