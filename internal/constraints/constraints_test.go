package constraints

import (
	"strings"
	"testing"

	"kaskade/internal/gql"
	"kaskade/internal/graph"
)

const blastRadius = `
MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
      (q_f1:File)-[r*0..8]->(q_f2:File)
      (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
RETURN q_j1 AS A, q_j2 AS B`

// TestQueryFactsMatchListing verifies §IV-A1: the fact set extracted from
// the blast-radius MATCH clause is exactly the one shown in the paper.
func TestQueryFactsMatchListing(t *testing.T) {
	m := gql.MustParse(blastRadius).(*gql.MatchQuery)
	facts, err := QueryFacts(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"queryVertex('q_j1').",
		"queryVertex('q_f1').",
		"queryVertex('q_f2').",
		"queryVertex('q_j2').",
		"queryVertexType('q_f1', 'File').",
		"queryVertexType('q_f2', 'File').",
		"queryVertexType('q_j1', 'Job').",
		"queryVertexType('q_j2', 'Job').",
		"queryEdge('q_j1', 'q_f1').",
		"queryEdge('q_f2', 'q_j2').",
		"queryEdgeType('q_j1', 'q_f1', 'WRITES_TO').",
		"queryEdgeType('q_f2', 'q_j2', 'IS_READ_BY').",
		"queryVariableLengthPath('q_f1', 'q_f2', 0, 8).",
	}
	got := make(map[string]bool, len(facts))
	for _, f := range facts {
		got[f] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing fact %s\nall facts:\n%s", w, strings.Join(facts, "\n"))
		}
	}
	if len(facts) != len(want) {
		t.Errorf("fact count = %d, want %d:\n%s", len(facts), len(want), strings.Join(facts, "\n"))
	}
}

func TestQueryFactsAnonymousAndReversed(t *testing.T) {
	m := gql.MustParse(`MATCH (a:File)<-[:WRITES_TO]-()-[r*]->(b) RETURN a, b`).(*gql.MatchQuery)
	facts, err := QueryFacts(m)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(facts, "\n")
	// Reversed edge is emitted forward: anon -> a.
	if !strings.Contains(joined, "queryEdge('anon_0_1', 'a')") {
		t.Errorf("reversed edge not normalized:\n%s", joined)
	}
	// Unbounded *: upper becomes DefaultMaxHops.
	if !strings.Contains(joined, "queryVariableLengthPath('anon_0_1', 'b', 1, 10)") {
		t.Errorf("unbounded path not capped:\n%s", joined)
	}
}

func TestSchemaFacts(t *testing.T) {
	s := graph.MustSchema(
		[]string{"Job", "File"},
		[]graph.EdgeType{
			{From: "Job", To: "File", Name: "WRITES_TO"},
			{From: "File", To: "Job", Name: "IS_READ_BY"},
		},
	)
	facts, err := SchemaFacts(s)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(facts, "\n")
	for _, w := range []string{
		"schemaVertex('File').",
		"schemaVertex('Job').",
		"schemaEdge('Job', 'File', 'WRITES_TO').",
		"schemaEdge('File', 'Job', 'IS_READ_BY').",
	} {
		if !strings.Contains(joined, w) {
			t.Errorf("missing %s in:\n%s", w, joined)
		}
	}
	if _, err := SchemaFacts(nil); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestProjectedVars(t *testing.T) {
	m := gql.MustParse(`MATCH (a:Job)-[:W]->(b:File) RETURN a.name, COUNT(b) AS n`).(*gql.MatchQuery)
	got := ProjectedVars(m)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("projected = %v, want [a b]", got)
	}
}

func TestKHopSchemaPathsProcedural(t *testing.T) {
	edges := []graph.EdgeType{
		{From: "Job", To: "File", Name: "WRITES_TO"},
		{From: "File", To: "Job", Name: "IS_READ_BY"},
	}
	paths, explored := KHopSchemaPathsProcedural(edges, 2)
	if len(paths) != 2 {
		t.Fatalf("2-hop schema paths = %d, want 2 (J->F->J, F->J->F)", len(paths))
	}
	if explored <= 0 {
		t.Error("explored count not tracked")
	}
	// k=1 returns the schema edges themselves.
	one, _ := KHopSchemaPathsProcedural(edges, 1)
	if len(one) != 2 {
		t.Errorf("1-hop = %d, want 2", len(one))
	}
	if p, _ := KHopSchemaPathsProcedural(edges, 0); p != nil {
		t.Error("k=0 should yield nothing")
	}
}

// TestProceduralExploresMore backs §IV-A: the procedural version explores
// a larger space than the constrained declarative pipeline because it
// cannot be injected among the other rules — on a cyclic schema the
// explored-extensions metric grows quickly with k.
func TestProceduralExploresMore(t *testing.T) {
	edges := []graph.EdgeType{
		{From: "Job", To: "File", Name: "W"},
		{From: "File", To: "Job", Name: "R"},
		{From: "Job", To: "Task", Name: "S"},
		{From: "Task", To: "Task", Name: "T"}, // cycle
		{From: "Task", To: "Machine", Name: "M"},
	}
	_, explored4 := KHopSchemaPathsProcedural(edges, 4)
	_, explored8 := KHopSchemaPathsProcedural(edges, 8)
	if explored8 <= explored4 {
		t.Errorf("explored(k=8)=%d should exceed explored(k=4)=%d", explored8, explored4)
	}
}

func TestQueryFactsErrors(t *testing.T) {
	if _, err := QueryFacts(nil); err == nil {
		t.Error("nil match accepted")
	}
}
