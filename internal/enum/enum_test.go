package enum

import (
	"testing"

	"kaskade/internal/constraints"
	"kaskade/internal/datagen"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/views"
)

func lineageSchema() *graph.Schema {
	return graph.MustSchema(
		[]string{"Job", "File"},
		[]graph.EdgeType{
			{From: "Job", To: "File", Name: "WRITES_TO"},
			{From: "File", To: "Job", Name: "IS_READ_BY"},
		},
	)
}

const blastRadius = `
SELECT A.pipelineName, AVG(T_CPU) FROM (
  SELECT A, SUM(B.CPU) AS T_CPU FROM (
    MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
          (q_f1:File)-[r*0..8]->(q_f2:File)
          (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
    RETURN q_j1 AS A, q_j2 AS B
  ) GROUP BY A, B
) GROUP BY A.pipelineName`

// TestBlastRadiusEnumeration reproduces §IV-B's worked example: for the
// Listing 1 query over the 2-type lineage schema with k ≤ 10, the
// kHopConnector template instantiates exactly for (q_j1, q_j2, Job, Job)
// with K ∈ {2, 4, 6, 8, 10} (only even K is schema-feasible).
func TestBlastRadiusEnumeration(t *testing.T) {
	e := &Enumerator{Schema: lineageSchema(), MaxK: 10}
	res, err := e.Enumerate(gql.MustParse(blastRadius))
	if err != nil {
		t.Fatal(err)
	}
	gotK := map[int]bool{}
	for _, c := range res.Candidates {
		if c.Template != "kHopConnector" {
			continue
		}
		kc := c.View.(views.KHopConnector)
		if kc.SrcType != "Job" || kc.DstType != "Job" {
			// q_f1/q_f2 are not projected out of the MATCH clause, so
			// only job-to-job connectors are valid instantiations.
			t.Errorf("unexpected connector %s", kc.Name())
			continue
		}
		if c.SrcVar != "q_j1" || c.DstVar != "q_j2" {
			t.Errorf("job connector anchored at (%s, %s)", c.SrcVar, c.DstVar)
		}
		gotK[c.K] = true
	}
	for _, k := range []int{2, 4, 6, 8, 10} {
		if !gotK[k] {
			t.Errorf("missing job-to-job K=%d instantiation", k)
		}
	}
	for k := range gotK {
		if k%2 != 0 {
			t.Errorf("odd K=%d enumerated; schema only allows even job-job paths", k)
		}
	}
}

func TestEnumerationIncludesSummarizers(t *testing.T) {
	// Over the full prov schema, the blast-radius query only touches
	// Job and File, so the enumerator should propose keeping those and
	// removing Task/Machine/User.
	e := &Enumerator{Schema: datagen.ProvSchema(), MaxK: 10}
	res, err := e.Enumerate(gql.MustParse(blastRadius))
	if err != nil {
		t.Fatal(err)
	}
	var keep *views.VertexInclusionSummarizer
	var remove *views.VertexRemovalSummarizer
	var keepEdges *views.EdgeInclusionSummarizer
	for _, c := range res.Candidates {
		switch v := c.View.(type) {
		case views.VertexInclusionSummarizer:
			keep = &v
		case views.VertexRemovalSummarizer:
			remove = &v
		case views.EdgeInclusionSummarizer:
			keepEdges = &v
		}
	}
	if keep == nil || len(keep.Types) != 2 {
		t.Fatalf("vertex-inclusion candidate = %v", keep)
	}
	if keep.Types[0] != "File" || keep.Types[1] != "Job" {
		t.Errorf("kept types = %v", keep.Types)
	}
	if remove == nil || len(remove.Types) != 3 {
		t.Fatalf("vertex-removal candidate = %v", remove)
	}
	if keepEdges == nil || len(keepEdges.Types) != 2 {
		t.Fatalf("edge-inclusion candidate = %v", keepEdges)
	}
}

func TestHomogeneousEnumeration(t *testing.T) {
	// Q2-style: ancestors up to 4 hops on the social graph.
	e := &Enumerator{Schema: datagen.SocialSchema(), MaxK: 10}
	res, err := e.Enumerate(gql.MustParse(`MATCH (a:User)-[r*1..4]->(b:User) RETURN a, b`))
	if err != nil {
		t.Fatal(err)
	}
	gotK := map[int]bool{}
	for _, c := range res.Candidates {
		if c.Template == "kHopConnector" {
			gotK[c.K] = true
		}
	}
	// All of K=2..4 are schema-feasible on a homogeneous schema (K=1 is
	// the base edge, excluded).
	for _, k := range []int{2, 3, 4} {
		if !gotK[k] {
			t.Errorf("missing K=%d on homogeneous schema", k)
		}
	}
	if gotK[5] {
		t.Error("K=5 enumerated beyond the query's 4-hop bound")
	}
}

func TestSourceToSinkTemplate(t *testing.T) {
	// A chain pattern a->b->c: a is a source, c is a sink in the query
	// graph.
	e := &Enumerator{Schema: lineageSchema(), MaxK: 6}
	res, err := e.Enumerate(gql.MustParse(
		`MATCH (a:Job)-[:WRITES_TO]->(b:File)-[:IS_READ_BY]->(c:Job) RETURN a, c`))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Candidates {
		if c.Template == "sourceToSinkConnector" {
			found = true
			if c.SrcVar != "a" || c.DstVar != "c" {
				t.Errorf("source-sink anchored at (%s, %s), want (a, c)", c.SrcVar, c.DstVar)
			}
		}
	}
	if !found {
		t.Error("source-to-sink connector not enumerated for chain query")
	}
}

// TestConstraintInjectionPrunes backs the §IV-A2 claim: with the query
// constraints injected, the enumerator considers far fewer candidate
// instantiations than unconstrained schema-path enumeration over a
// cyclic schema (which grows like M^k).
func TestConstraintInjectionPrunes(t *testing.T) {
	schema := datagen.ProvSchema() // has a Task->Task self-loop: cyclic
	e := &Enumerator{Schema: schema, MaxK: 8}
	res, err := e.Enumerate(gql.MustParse(blastRadius))
	if err != nil {
		t.Fatal(err)
	}
	unconstrained, _, err := UnconstrainedSchemaPaths(schema, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solutions*4 >= unconstrained {
		t.Errorf("constrained enumeration (%d instantiations) should be far below unconstrained (%d schema walks)",
			res.Solutions, unconstrained)
	}
}

func TestProceduralMatchesDeclarative(t *testing.T) {
	// Alg. 1 and the Prolog rule agree on the set of k-hop schema paths
	// for the lineage schema.
	schema := lineageSchema()
	paths, _ := constraints.KHopSchemaPathsProcedural(schema.EdgeTypes(), 2)
	// Job->File->Job and File->Job->File.
	if len(paths) != 2 {
		t.Fatalf("procedural 2-hop paths = %d, want 2", len(paths))
	}
	sols, _, err := UnconstrainedSchemaPaths(schema, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sols != 2 {
		t.Errorf("declarative 2-hop solutions = %d, want 2", sols)
	}
}

func TestEnumerateErrors(t *testing.T) {
	e := &Enumerator{Schema: nil}
	if _, err := e.Enumerate(gql.MustParse(`MATCH (a:Job) RETURN a`)); err == nil {
		t.Error("nil schema should error (constraint mining needs a schema)")
	}
}

func TestEnumerationDeterminism(t *testing.T) {
	e := &Enumerator{Schema: lineageSchema(), MaxK: 10}
	r1, err := e.Enumerate(gql.MustParse(blastRadius))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Enumerate(gql.MustParse(blastRadius))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Candidates) != len(r2.Candidates) {
		t.Fatalf("candidate counts differ: %d vs %d", len(r1.Candidates), len(r2.Candidates))
	}
	for i := range r1.Candidates {
		if r1.Candidates[i].View.Name() != r2.Candidates[i].View.Name() {
			t.Errorf("candidate %d differs: %s vs %s", i,
				r1.Candidates[i].View.Name(), r2.Candidates[i].View.Name())
		}
	}
}
