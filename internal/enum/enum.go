// Package enum implements Kaskade's inference-based view enumeration
// (§IV-B): view templates are Prolog rules (Listing 3 for connectors,
// Listing 5 for summarizers); the constraint miner's explicit facts and
// mining rules are injected into the inference engine; and candidate
// views are the solutions of the template goals. The injected query
// constraints are what prune the search space from the O(M^k) schema-path
// explosion to the handful of candidates feasible for the query (§IV-A2).
package enum

import (
	"fmt"
	"sort"
	"strings"

	"kaskade/internal/constraints"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/prolog"
	"kaskade/internal/views"
)

// Templates is Kaskade's view template library, expressed as inference
// rules (Listing 3 connectors; summarizer templates in the spirit of
// Listing 5 — the "prune to what the query touches" views the evaluation
// uses). The library is extensible: additional rules can be consulted
// into the enumerator's machine.
const Templates = `
% ---- connector templates (Listing 3) ----

% k-hop connector between nodes X and Y. Both endpoints must be
% projected out of the MATCH clause (§IV-B: a rewriting may only keep the
% vertices the rest of the query can see).
kHopConnector(X, Y, XTYPE, YTYPE, K) :-
    % query constraints
    queryVertexType(X, XTYPE),
    queryVertexType(Y, YTYPE),
    queryVertexProjected(X),
    queryVertexProjected(Y),
    queryKHopPath(X, Y, K),
    % schema constraints
    schemaKHopPath(XTYPE, YTYPE, K).

% k-hop connector where all vertices are of the same type.
kHopConnectorSameVertexType(X, Y, VTYPE, K) :-
    kHopConnector(X, Y, VTYPE, VTYPE, K).

% Variable-length connector where all vertices are of the same type.
connectorSameVertexType(X, Y, VTYPE) :-
    % query constraints
    queryVertexType(X, VTYPE),
    queryVertexType(Y, VTYPE),
    queryVertexProjected(X),
    queryVertexProjected(Y),
    queryPath(X, Y),
    % schema constraints
    schemaPath(VTYPE, VTYPE).

% Source-to-sink variable-length connector.
sourceToSinkConnector(X, Y) :-
    % query constraints
    queryVertexSource(X),
    queryVertexSink(Y),
    queryVertexProjected(X),
    queryVertexProjected(Y),
    queryPath(X, Y).

% ---- summarizer templates (in the spirit of Listing 5) ----

% A vertex-inclusion summarizer keeping exactly the vertex types the
% query touches is feasible whenever the query names at least one type.
summarizerKeepVertexTypes(TS) :-
    setof(T, queryUsedVertexType(T), TS).

% Schema vertex types the query never touches can be removed.
summarizerRemoveVertexType(T) :-
    schemaVertex(T),
    not(queryUsedVertexType(T)).

% Edge types explicitly used by the query.
queryUsedEdgeType(T) :- queryEdgeType(_, _, T).
summarizerKeepEdgeTypes(TS) :-
    setof(T, queryUsedEdgeType(T), TS).
`

// Candidate is one enumerated view together with its rewrite anchors.
type Candidate struct {
	View views.View
	// Template names the Prolog rule that produced the candidate.
	Template string
	// SrcVar/DstVar are the query variables the connector endpoints bind
	// to (empty for summarizers). K is the contraction length (0 when
	// not a k-hop view).
	SrcVar, DstVar string
	K              int
}

// Result is the outcome of one enumeration run.
type Result struct {
	Candidates []Candidate
	// Solutions counts raw template solutions before deduplication.
	Solutions int
	// Steps is the number of inference steps the engine spent — the
	// search-effort metric of the constraint-injection ablation.
	Steps int64
}

// Enumerator generates candidate views for queries over a schema.
type Enumerator struct {
	Schema *graph.Schema
	// MaxK bounds enumerated k-hop connectors (paper: k ≤ 10). Zero
	// means DefaultMaxK.
	MaxK int
	// ExtraRules are additional template/mining rules to consult
	// (KASKADE's library is "readily extensible", §IV).
	ExtraRules string
}

// DefaultMaxK bounds the k of enumerated k-hop connectors.
const DefaultMaxK = 10

func (e *Enumerator) maxK() int {
	if e.MaxK > 0 {
		return e.MaxK
	}
	return DefaultMaxK
}

// machine builds a fresh inference machine loaded with mining rules,
// templates, schema facts, and the query's facts.
func (e *Enumerator) machine(m *gql.MatchQuery) (*prolog.Machine, error) {
	pm := prolog.NewMachine()
	if err := pm.ConsultString(constraints.MiningRules); err != nil {
		return nil, fmt.Errorf("enum: mining rules: %w", err)
	}
	if err := pm.ConsultString(Templates); err != nil {
		return nil, fmt.Errorf("enum: templates: %w", err)
	}
	if e.ExtraRules != "" {
		if err := pm.ConsultString(e.ExtraRules); err != nil {
			return nil, fmt.Errorf("enum: extra rules: %w", err)
		}
	}
	sf, err := constraints.SchemaFacts(e.Schema)
	if err != nil {
		return nil, err
	}
	qf, err := constraints.QueryFacts(m)
	if err != nil {
		return nil, err
	}
	facts := append(sf, qf...)
	for _, v := range constraints.ProjectedVars(m) {
		facts = append(facts, fmt.Sprintf("queryVertexProjected('%s').", v))
	}
	if err := pm.ConsultString(strings.Join(facts, "\n")); err != nil {
		return nil, fmt.Errorf("enum: facts: %w", err)
	}
	// Some queries have no variable-length paths or no typed edges; the
	// mining rules still reference those predicates, so define each with
	// a never-succeeding clause rather than erroring as unknown. (A
	// dummy *fact* would poison the recursive path rules with cycles.)
	for _, decl := range []string{
		"queryVariableLengthPath(_, _, _, _) :- fail.",
		"queryEdge(_, _) :- fail.",
		"queryEdgeType(_, _, _) :- fail.",
		"queryVertexType(_, _) :- fail.",
		"queryVertex(_) :- fail.",
		"queryVertexProjected(_) :- fail.",
	} {
		if err := pm.ConsultString(decl); err != nil {
			return nil, err
		}
	}
	return pm, nil
}

// Enumerate generates the candidate views for a query (§IV-B). The
// returned candidates are deduplicated by view identity, in deterministic
// SLD solution order.
func (e *Enumerator) Enumerate(q gql.Query) (*Result, error) {
	m := gql.InnermostMatch(q)
	if m == nil {
		return nil, fmt.Errorf("enum: query has no MATCH block")
	}
	pm, err := e.machine(m)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	seen := make(map[string]bool)
	add := func(c Candidate) {
		key := c.View.Name() + "/" + c.SrcVar + "/" + c.DstVar
		if !seen[key] {
			seen[key] = true
			res.Candidates = append(res.Candidates, c)
		}
	}

	// k-hop connectors (k >= 2: a 1-hop "connector" is the base edge).
	goal := fmt.Sprintf("kHopConnector(X, Y, XT, YT, K), K >= 2, K =< %d", e.maxK())
	sols, err := pm.Query(goal, 0)
	if err != nil {
		return nil, fmt.Errorf("enum: kHopConnector: %w", err)
	}
	res.Steps += pm.Steps()
	res.Solutions += len(sols)
	for _, s := range sols {
		if bogus(s.Atom("XT")) || bogus(s.Atom("YT")) {
			continue
		}
		add(Candidate{
			View: views.KHopConnector{
				SrcType: s.Atom("XT"),
				DstType: s.Atom("YT"),
				K:       int(s.Int("K")),
			},
			Template: "kHopConnector",
			SrcVar:   s.Atom("X"),
			DstVar:   s.Atom("Y"),
			K:        int(s.Int("K")),
		})
	}

	// Same-vertex-type variable-length connectors.
	sols, err = pm.Query("connectorSameVertexType(X, Y, VT)", 0)
	if err != nil {
		return nil, fmt.Errorf("enum: connectorSameVertexType: %w", err)
	}
	res.Steps += pm.Steps()
	res.Solutions += len(sols)
	for _, s := range sols {
		if bogus(s.Atom("VT")) {
			continue
		}
		add(Candidate{
			View:     views.SameVertexTypeConnector{VType: s.Atom("VT"), MaxLen: e.maxK()},
			Template: "connectorSameVertexType",
			SrcVar:   s.Atom("X"),
			DstVar:   s.Atom("Y"),
		})
	}

	// Source-to-sink connectors.
	sols, err = pm.Query("sourceToSinkConnector(X, Y)", 0)
	if err != nil {
		return nil, fmt.Errorf("enum: sourceToSinkConnector: %w", err)
	}
	res.Steps += pm.Steps()
	res.Solutions += len(sols)
	for _, s := range sols {
		if bogus(s.Atom("X")) || bogus(s.Atom("Y")) {
			continue
		}
		add(Candidate{
			View:     views.SourceToSinkConnector{MaxLen: e.maxK()},
			Template: "sourceToSinkConnector",
			SrcVar:   s.Atom("X"),
			DstVar:   s.Atom("Y"),
		})
	}

	// Vertex-inclusion summarizer keeping the query's vertex types.
	sols, err = pm.Query("summarizerKeepVertexTypes(TS)", 0)
	if err != nil {
		return nil, fmt.Errorf("enum: summarizerKeepVertexTypes: %w", err)
	}
	res.Steps += pm.Steps()
	res.Solutions += len(sols)
	for _, s := range sols {
		ts := atomList(s, "TS")
		if len(ts) == 0 {
			continue
		}
		add(Candidate{
			View:     views.VertexInclusionSummarizer{Types: ts},
			Template: "summarizerKeepVertexTypes",
		})
	}

	// Vertex-removal summarizer dropping untouched schema types
	// (aggregate all removable types into one candidate).
	sols, err = pm.Query("summarizerRemoveVertexType(T)", 0)
	if err != nil {
		return nil, fmt.Errorf("enum: summarizerRemoveVertexType: %w", err)
	}
	res.Steps += pm.Steps()
	res.Solutions += len(sols)
	var removable []string
	for _, s := range sols {
		if t := s.Atom("T"); t != "" && !bogus(t) {
			removable = append(removable, t)
		}
	}
	if len(removable) > 0 {
		sort.Strings(removable)
		add(Candidate{
			View:     views.VertexRemovalSummarizer{Types: removable},
			Template: "summarizerRemoveVertexType",
		})
	}

	// Edge-inclusion summarizer keeping the query's edge types.
	sols, err = pm.Query("summarizerKeepEdgeTypes(TS)", 0)
	if err != nil {
		return nil, fmt.Errorf("enum: summarizerKeepEdgeTypes: %w", err)
	}
	res.Steps += pm.Steps()
	res.Solutions += len(sols)
	for _, s := range sols {
		ts := atomList(s, "TS")
		if len(ts) == 0 {
			continue
		}
		add(Candidate{
			View:     views.EdgeInclusionSummarizer{Types: ts},
			Template: "summarizerKeepEdgeTypes",
		})
	}

	return res, nil
}

// UnconstrainedSchemaPaths enumerates schema k-hop paths *without* query
// constraints — the search space the paper's §IV-A2 describes as at least
// M^k in cyclic schemas. Returns the solution count and the inference
// steps spent; the ablation compares these against a constrained run.
func UnconstrainedSchemaPaths(schema *graph.Schema, maxK int) (solutions int, steps int64, err error) {
	pm := prolog.NewMachine()
	if err := pm.ConsultString(constraints.MiningRules); err != nil {
		return 0, 0, err
	}
	sf, err := constraints.SchemaFacts(schema)
	if err != nil {
		return 0, 0, err
	}
	if err := pm.ConsultString(strings.Join(sf, "\n")); err != nil {
		return 0, 0, err
	}
	goal := fmt.Sprintf("between(2, %d, K), schemaKHopPath(X, Y, K)", maxK)
	sols, err := pm.Query(goal, 0)
	if err != nil {
		return 0, 0, err
	}
	return len(sols), pm.Steps(), nil
}

// bogus filters the placeholder facts asserted so mining rules never hit
// unknown predicates.
func bogus(atom string) bool { return atom == "__none" }

func atomList(s prolog.Solution, name string) []string {
	elems, ok := prolog.ListSlice(s.Get(name))
	if !ok {
		return nil
	}
	var out []string
	for _, e := range elems {
		es := prolog.TermString(e)
		es = strings.Trim(es, "'")
		if es != "" && !bogus(es) {
			out = append(out, es)
		}
	}
	return out
}
