package workload

import (
	"context"
	"fmt"

	"kaskade/internal/algo"
	"kaskade/internal/exec"
	"kaskade/internal/graph"
)

// QueryID identifies one of the Table IV evaluation queries.
type QueryID string

// The Table IV workload.
const (
	Q1BlastRadius QueryID = "Q1"
	Q2Ancestors   QueryID = "Q2"
	Q3Descendants QueryID = "Q3"
	Q4PathLengths QueryID = "Q4"
	Q5EdgeCount   QueryID = "Q5"
	Q6VertexCount QueryID = "Q6"
	Q7Community   QueryID = "Q7"
	Q8LargestComm QueryID = "Q8"
)

// QueryInfo is the Table IV row describing a query.
type QueryInfo struct {
	ID        QueryID
	Name      string
	Operation string // Retrieval or Update
	Result    string
}

// TableIV lists the query workload exactly as the paper's Table IV.
func TableIV() []QueryInfo {
	return []QueryInfo{
		{Q1BlastRadius, "Job Blast Radius", "Retrieval", "Subgraph"},
		{Q2Ancestors, "Ancestors", "Retrieval", "Set of vertices"},
		{Q3Descendants, "Descendants", "Retrieval", "Set of vertices"},
		{Q4PathLengths, "Path lengths", "Retrieval", "Bag of scalars"},
		{Q5EdgeCount, "Edge Count", "Retrieval", "Single scalar"},
		{Q6VertexCount, "Vertex Count", "Retrieval", "Single scalar"},
		{Q7Community, "Community Detection", "Update", "N/A"},
		{Q8LargestComm, "Largest Community", "Retrieval", "Subgraph"},
	}
}

// Runner executes the Table IV queries against one graph. Hop budgets
// and pass counts are explicit so the harness can run the paper's
// rewritten variants (half the hops / half the passes over a 2-hop
// connector, §VII-C).
type Runner struct {
	G *graph.Graph
	// SourceType anchors per-source queries ("Job" on prov, "Author" on
	// dblp, the single type on homogeneous graphs).
	SourceType string
	// BlastHops is Q1's downstream bound in this graph's hops (paper:
	// job-level 10 on the base graph, 5 over the 2-hop connector).
	BlastHops int
	// Hops is the Q2/Q3/Q4 neighborhood bound (paper: 4; 2 over the
	// connector).
	Hops int
	// LPPasses is Q7's pass count (paper: 25; ~half over the connector).
	LPPasses int
	// Sample caps the number of per-source traversals for Q2-Q4 (0 =
	// all sources). The same sample must be used for base and view runs.
	Sample int
	// Workers sets execution parallelism: pattern-match workers for the
	// gql-executed queries (Q5/Q6), per-source traversal fan-out for
	// Q1-Q4, and per-round label propagation chunks for Q7. 0 or 1 =
	// sequential, negative = one per CPU. Results are identical at any
	// setting (per-source merges are index-ordered; label passes are
	// synchronous).
	Workers int
}

// Run executes a query and returns a scalar summary of its result (sum
// or count), which lets base-vs-view runs be checked for agreement.
func (r *Runner) Run(id QueryID) (int64, error) {
	return r.RunContext(context.Background(), id)
}

// RunContext is Run with cancellation: the gql-executed queries observe
// ctx inside the matcher, and the traversal queries observe it inside
// the algo kernels (not merely between sources), so a harness sweep can
// be abandoned promptly mid-experiment. Q1-Q4 fan their per-source
// traversals out over Workers goroutines with an index-ordered merge,
// and Q7 runs its label passes chunk-parallel — results are identical
// to sequential execution at any worker count.
func (r *Runner) RunContext(ctx context.Context, id QueryID) (int64, error) {
	switch id {
	case Q1BlastRadius:
		return r.blastRadius(ctx)
	case Q2Ancestors:
		return r.neighborhoodSum(ctx, algo.Backward)
	case Q3Descendants:
		return r.neighborhoodSum(ctx, algo.Forward)
	case Q4PathLengths:
		return r.pathLengths(ctx)
	case Q5EdgeCount:
		return r.count(ctx, `MATCH ()-[r]->() RETURN COUNT(*) AS n`)
	case Q6VertexCount:
		return r.count(ctx, `MATCH (v) RETURN COUNT(*) AS n`)
	case Q7Community:
		labels, err := algo.LabelPropagationParallel(ctx, r.G, r.LPPasses, "community", r.Workers)
		if err != nil {
			return 0, err
		}
		distinct := make(map[int64]bool, len(labels))
		for _, l := range labels {
			distinct[l] = true
		}
		return int64(len(distinct)), nil
	case Q8LargestComm:
		_, members, err := algo.LargestCommunity(r.G, "community", r.SourceType)
		if err != nil {
			return 0, err
		}
		return int64(len(members)), nil
	}
	return 0, fmt.Errorf("workload: unknown query %s", id)
}

// sources returns the (possibly sampled) anchor vertices.
func (r *Runner) sources() []graph.VertexID {
	src := r.G.VerticesOfType(r.SourceType)
	if r.Sample > 0 && len(src) > r.Sample {
		src = src[:r.Sample]
	}
	return src
}

// perSourceSum fans the per-source traversals out over r.Workers and
// folds the per-source partial sums in source order — byte-identical to
// the sequential loop (int64 addition is associative and each slot is
// deterministic).
func (r *Runner) perSourceSum(ctx context.Context, fn func(t *algo.Traversal, src graph.VertexID) (int64, error)) (int64, error) {
	srcs := r.sources()
	sums := make([]int64, len(srcs))
	err := algo.ForEachSource(ctx, r.G, srcs, r.Workers, func(t *algo.Traversal, i int, src graph.VertexID) error {
		s, err := fn(t, src)
		if err != nil {
			return err
		}
		sums[i] = s
		return nil
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, s := range sums {
		total += s
	}
	return total, nil
}

// blastRadius is Q1: for every job, the sum of CPU over its downstream
// consumers within BlastHops, aggregated across jobs (the per-pipeline
// AVG of Listing 1 is a cheap postprocess; the traversal dominates).
func (r *Runner) blastRadius(ctx context.Context) (int64, error) {
	return r.perSourceSum(ctx, func(t *algo.Traversal, j graph.VertexID) (int64, error) {
		nb, err := t.KHopContext(ctx, j, r.BlastHops, algo.Forward)
		if err != nil {
			return 0, err
		}
		var total int64
		for _, v := range nb {
			vv := r.G.Vertex(v)
			if vv.Type != r.SourceType || v == j {
				continue
			}
			if cpu, ok := vv.Prop("CPU").(int64); ok {
				total += cpu
			}
		}
		return total, nil
	})
}

func (r *Runner) neighborhoodSum(ctx context.Context, dir algo.Direction) (int64, error) {
	return r.perSourceSum(ctx, func(t *algo.Traversal, s graph.VertexID) (int64, error) {
		nb, err := t.KHopContext(ctx, s, r.Hops, dir)
		if err != nil {
			return 0, err
		}
		return int64(len(nb)), nil
	})
}

func (r *Runner) pathLengths(ctx context.Context) (int64, error) {
	return r.perSourceSum(ctx, func(t *algo.Traversal, s graph.VertexID) (int64, error) {
		dist, err := t.PathLengthsContext(ctx, s, r.Hops, "ts")
		if err != nil {
			return 0, err
		}
		var total int64
		for _, agg := range dist {
			total += agg
		}
		return total, nil
	})
}

func (r *Runner) count(ctx context.Context, q string) (int64, error) {
	res, err := exec.RunParallelContext(ctx, r.G, q, r.Workers)
	if err != nil {
		return 0, err
	}
	if len(res.Rows) != 1 {
		return 0, fmt.Errorf("workload: count query returned %d rows", len(res.Rows))
	}
	n, ok := res.Rows[0][0].(int64)
	if !ok {
		return 0, fmt.Errorf("workload: count query returned %T", res.Rows[0][0])
	}
	return n, nil
}

// BaseRunner returns the paper's base-graph parameterization (Q1 ≤ 10
// job-level hops, Q2-Q4 ≤ 4 hops, 25 label-propagation passes).
func BaseRunner(g *graph.Graph, sourceType string, sample int) *Runner {
	return &Runner{G: g, SourceType: sourceType, BlastHops: 10, Hops: 4, LPPasses: 25, Sample: sample}
}

// ConnectorRunner returns the rewritten parameterization over a k-hop
// connector graph: hop budgets divide by k, passes roughly halve
// (§VII-C: "queries Q1 through Q4 go over half of the original number of
// hops, and queries Q7 and Q8 run around half as many iterations").
func ConnectorRunner(vg *graph.Graph, sourceType string, k, sample int) *Runner {
	if k < 1 {
		k = 2
	}
	return &Runner{
		G:          vg,
		SourceType: sourceType,
		BlastHops:  10 / k,
		Hops:       4 / k,
		LPPasses:   (25 + k - 1) / k,
		Sample:     sample,
	}
}
