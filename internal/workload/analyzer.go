// Package workload implements Kaskade's workload analyzer (§V-B): given
// a query workload and a space budget, it enumerates candidate views for
// every query, prices them with the §V-A cost model, formulates view
// selection as 0/1 knapsack (weight = estimated view size, value =
// workload performance improvement divided by creation cost), and
// materializes the chosen views into a catalog used for view-based query
// rewriting (§V-C). It also defines the Table IV evaluation queries.
package workload

import (
	"fmt"
	"math"
	"sort"

	"kaskade/internal/cost"
	"kaskade/internal/enum"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/knapsack"
	"kaskade/internal/rewrite"
	"kaskade/internal/stats"
	"kaskade/internal/views"
)

// Analyzer drives view selection over a workload.
type Analyzer struct {
	Schema *graph.Schema
	// MaxK bounds enumerated connectors (default enum.DefaultMaxK).
	MaxK int
	// Alpha is the degree percentile for size estimation (default
	// cost.DefaultAlpha = 95, per §V-A).
	Alpha int
}

func (a *Analyzer) alpha() int {
	if a.Alpha != 0 {
		return a.Alpha
	}
	return cost.DefaultAlpha
}

// Evaluated is a candidate view priced against the workload.
type Evaluated struct {
	Candidate      enum.Candidate
	EstimatedEdges float64
	CreationCost   float64
	// Improvement is Σ_q EvalCost(q) / EvalCost(rewrite(q, v)) over the
	// queries the view applies to (§V-B).
	Improvement float64
	// Value is Improvement / CreationCost — the knapsack item value.
	Value float64
	// Rewrites maps workload query index -> the rewritten query (saved
	// from enumeration, reused at query time per §V-C).
	Rewrites map[int]gql.Query
	Chosen   bool
}

// Selection is the outcome of view selection.
type Selection struct {
	Candidates []*Evaluated // all priced candidates, deterministic order
	Chosen     []*Evaluated // knapsack winners (subset of Candidates)
	Budget     int64
	TotalValue float64
}

// Analyze runs view selection for the workload under a space budget
// expressed in edges (§V-B's knapsack capacity; the paper uses a
// fraction of memory — edges are our unit of storage). All queries are
// weighted equally; use AnalyzeWeighted to prioritize frequent or
// expensive queries.
func (a *Analyzer) Analyze(g *graph.Graph, queries []gql.Query, budgetEdges int64) (*Selection, error) {
	return a.AnalyzeWeighted(g, queries, nil, budgetEdges)
}

// AnalyzeWeighted is Analyze with per-query weights — §V-B's extension:
// "adding weights to the value of each query to reflect its relative
// importance (e.g., based on the query's frequency ... or estimated
// execution time)". A nil weights slice means uniform weight 1; a
// query's contribution to every applicable view's improvement is
// multiplied by its weight.
func (a *Analyzer) AnalyzeWeighted(g *graph.Graph, queries []gql.Query, weights []float64, budgetEdges int64) (*Selection, error) {
	if a.Schema == nil {
		a.Schema = g.Schema()
	}
	if weights != nil && len(weights) != len(queries) {
		return nil, fmt.Errorf("workload: %d weights for %d queries", len(weights), len(queries))
	}
	props := cost.Collect(g)
	en := &enum.Enumerator{Schema: a.Schema, MaxK: a.MaxK}

	// Enumerate per query and merge candidates by view identity.
	merged := make(map[string]*Evaluated)
	var order []string
	for qi, q := range queries {
		res, err := en.Enumerate(q)
		if err != nil {
			return nil, fmt.Errorf("workload: enumerating query %d: %w", qi, err)
		}
		baseCost, err := cost.EvalCost(q, props, a.Schema, a.alpha())
		if err != nil {
			return nil, err
		}
		weight := 1.0
		if weights != nil {
			weight = weights[qi]
		}
		for _, cand := range res.Candidates {
			ev, rewritten, err := a.evaluate(g, props, cand, q, baseCost)
			if err != nil || ev == nil {
				continue // inapplicable candidate for this query
			}
			key := cand.View.Name()
			existing, ok := merged[key]
			if !ok {
				existing = &Evaluated{
					Candidate:      cand,
					EstimatedEdges: ev.EstimatedEdges,
					CreationCost:   ev.CreationCost,
					Rewrites:       make(map[int]gql.Query),
				}
				merged[key] = existing
				order = append(order, key)
			}
			existing.Improvement += weight * ev.Improvement
			if rewritten != nil {
				existing.Rewrites[qi] = rewritten
			}
		}
	}

	sel := &Selection{Budget: budgetEdges}
	var items []knapsack.Item
	for _, key := range order {
		ev := merged[key]
		if ev.CreationCost > 0 {
			ev.Value = ev.Improvement / ev.CreationCost
		}
		sel.Candidates = append(sel.Candidates, ev)
		items = append(items, knapsack.Item{
			Weight: int64(math.Ceil(ev.EstimatedEdges)),
			Value:  ev.Value,
		})
	}
	picked, total := knapsack.Solve(items, budgetEdges)
	sel.TotalValue = total
	for _, idx := range picked {
		sel.Candidates[idx].Chosen = true
		sel.Chosen = append(sel.Chosen, sel.Candidates[idx])
	}
	return sel, nil
}

// evaluate prices one candidate for one query: estimated size, creation
// cost, and the per-query improvement factor. It returns nil when the
// candidate does not apply to the query.
func (a *Analyzer) evaluate(g *graph.Graph, props *cost.GraphProperties, cand enum.Candidate, q gql.Query, baseCost float64) (*Evaluated, gql.Query, error) {
	switch v := cand.View.(type) {
	case views.KHopConnector:
		est, err := cost.EstimateKHopPaths(props, a.Schema, v.K, a.alpha())
		if err != nil {
			return nil, nil, err
		}
		rw, err := rewrite.OverKHopConnectorExact(q, cand, a.Schema)
		if err != nil {
			return nil, nil, nil // not rewritable (or not result-preserving) for this query
		}
		vprops, err := estimatedConnectorProps(props, v, a.alpha())
		if err != nil {
			return nil, nil, err
		}
		rwCost, err := cost.EvalCost(rw, vprops, nil, a.alpha())
		if err != nil {
			return nil, nil, err
		}
		improvement := 0.0
		if rwCost > 0 {
			improvement = baseCost / rwCost
		}
		return &Evaluated{
			EstimatedEdges: est,
			CreationCost:   cost.CreationCost(est),
			Improvement:    improvement,
		}, rw, nil

	case views.VertexInclusionSummarizer, views.VertexRemovalSummarizer,
		views.EdgeInclusionSummarizer, views.EdgeRemovalSummarizer:
		if err := rewrite.ValidateOnSummarizer(q, cand.View); err != nil {
			return nil, nil, nil
		}
		nv, ne := summarizerSize(g, cand.View)
		sprops := estimatedSummarizerProps(g, props, cand.View, nv, ne)
		rwCost, err := cost.EvalCost(q, sprops, nil, a.alpha())
		if err != nil {
			return nil, nil, err
		}
		improvement := 0.0
		if rwCost > 0 {
			improvement = baseCost / rwCost
		}
		return &Evaluated{
			EstimatedEdges: float64(ne),
			CreationCost:   cost.CreationCost(float64(ne)),
			Improvement:    improvement,
		}, q, nil // summarizer rewriting keeps the query text (§V-C)
	}
	// Other view classes (same-vertex-type, source-to-sink) are
	// materializable but not auto-rewritable yet; skip them in selection
	// like the paper's prototype does for multi-view rewritings.
	return nil, nil, nil
}

// estimatedConnectorProps builds the predicted graph properties of a
// connector view before materialization. The per-hop fan-out of the view
// is priced on the same basis as the base graph: one contracted edge
// spans k base hops, so deg_α(view) = deg_α(base)^k. This keeps the
// improvement ratio a function of plan structure (join levels saved)
// rather than of mismatched statistics.
func estimatedConnectorProps(base *cost.GraphProperties, v views.KHopConnector, alpha int) (*cost.GraphProperties, error) {
	nSrc, nDst := base.NumVertices, base.NumVertices
	if s, ok := base.ByType[v.SrcType]; ok && v.SrcType != "" {
		nSrc = s.Count
	}
	if s, ok := base.ByType[v.DstType]; ok && v.DstType != "" {
		nDst = s.Count
	}
	baseDeg, err := base.Overall.Degree(alpha)
	if err != nil {
		return nil, err
	}
	deg := int(math.Pow(float64(baseDeg), float64(v.K)))
	flat := stats.DegreeSummary{Count: nSrc, P50: deg, P90: deg, P95: deg, Max: deg}
	byType := map[string]stats.DegreeSummary{}
	total := nSrc
	if v.SrcType != "" {
		byType[v.SrcType] = flat
		if v.DstType != v.SrcType {
			byType[v.DstType] = stats.DegreeSummary{Count: nDst}
			total += nDst
		}
	}
	overall := flat
	overall.Count = total
	return &cost.GraphProperties{
		NumVertices: total,
		NumEdges:    nSrc * deg,
		ByType:      byType,
		Overall:     overall,
	}, nil
}

// estimatedSummarizerProps predicts the summarized graph's properties by
// scaling the per-type summaries of surviving types.
func estimatedSummarizerProps(g *graph.Graph, base *cost.GraphProperties, v views.View, nv, ne int) *cost.GraphProperties {
	byType := map[string]stats.DegreeSummary{}
	total := 0
	for t, s := range base.ByType {
		if summarizerKeepsType(v, t) {
			byType[t] = s
			total += s.Count
		}
	}
	overall := base.Overall
	overall.Count = total
	return &cost.GraphProperties{
		NumVertices: nv,
		NumEdges:    ne,
		ByType:      byType,
		Overall:     overall,
	}
}

func summarizerKeepsType(v views.View, t string) bool {
	switch v := v.(type) {
	case views.VertexInclusionSummarizer:
		for _, kt := range v.Types {
			if kt == t {
				return true
			}
		}
		return false
	case views.VertexRemovalSummarizer:
		for _, rt := range v.Types {
			if rt == t {
				return false
			}
		}
		return true
	}
	return true
}

// summarizerSize counts the summarized graph's size without building it
// (filters admit exact cheap cardinalities, §V-A).
func summarizerSize(g *graph.Graph, v views.View) (nv, ne int) {
	keepV := func(t string) bool { return summarizerKeepsType(v, t) }
	keepE := func(t string) bool { return true }
	switch v := v.(type) {
	case views.EdgeInclusionSummarizer:
		set := map[string]bool{}
		for _, t := range v.Types {
			set[t] = true
		}
		keepE = func(t string) bool { return set[t] }
	case views.EdgeRemovalSummarizer:
		set := map[string]bool{}
		for _, t := range v.Types {
			set[t] = true
		}
		keepE = func(t string) bool { return !set[t] }
	}
	g.EachVertex(func(vx *graph.Vertex) {
		if keepV(vx.Type) {
			nv++
		}
	})
	g.EachEdge(func(e *graph.Edge) {
		if keepE(e.Type) && keepV(g.Vertex(e.From).Type) && keepV(g.Vertex(e.To).Type) {
			ne++
		}
	})
	return nv, ne
}

// Describe renders the selection as an aligned table for the CLI.
func (s *Selection) Describe() string {
	rows := make([]string, 0, len(s.Candidates))
	cands := append([]*Evaluated(nil), s.Candidates...)
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Value > cands[j].Value })
	for _, ev := range cands {
		mark := " "
		if ev.Chosen {
			mark = "*"
		}
		rows = append(rows, fmt.Sprintf("%s %-40s est_edges=%-12.0f value=%.3g",
			mark, ev.Candidate.View.Name(), ev.EstimatedEdges, ev.Value))
	}
	out := fmt.Sprintf("budget=%d edges, %d candidates, %d chosen\n", s.Budget, len(s.Candidates), len(s.Chosen))
	for _, r := range rows {
		out += r + "\n"
	}
	return out
}
