package workload

import (
	"testing"

	"kaskade/internal/datagen"
	"kaskade/internal/enum"
	"kaskade/internal/exec"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/views"
)

const blastRadius = `
SELECT A.pipelineName, AVG(T_CPU) FROM (
  SELECT A, SUM(B.CPU) AS T_CPU FROM (
    MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
          (q_f1:File)-[r*0..8]->(q_f2:File)
          (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
    RETURN q_j1 AS A, q_j2 AS B
  ) GROUP BY A, B
) GROUP BY A.pipelineName`

func filteredProv(t testing.TB) *graph.Graph {
	t.Helper()
	cfg := datagen.DefaultProvConfig()
	cfg.Jobs, cfg.Files, cfg.TasksPerJob, cfg.Machines, cfg.Users = 150, 300, 2, 10, 5
	cfg.MaxReads = 6
	raw, err := datagen.Prov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := views.VertexInclusionSummarizer{Types: []string{"Job", "File"}}.Materialize(raw)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAnalyzeSelectsJobConnector(t *testing.T) {
	g := filteredProv(t)
	a := &Analyzer{Schema: g.Schema(), MaxK: 10}
	sel, err := a.Analyze(g, []gql.Query{gql.MustParse(blastRadius)}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Candidates) == 0 {
		t.Fatal("no candidates priced")
	}
	// The 2-hop job-to-job connector must be among the chosen views —
	// it is the cheapest (smallest estimate) with real improvement.
	foundChosen := false
	for _, ev := range sel.Chosen {
		if ev.Candidate.View.Name() == "CONN_2HOP_Job_Job" {
			foundChosen = true
			if ev.Improvement <= 1 {
				t.Errorf("improvement = %v, want > 1", ev.Improvement)
			}
			if len(ev.Rewrites) != 1 {
				t.Errorf("rewrites saved = %d, want 1", len(ev.Rewrites))
			}
		}
	}
	if !foundChosen {
		t.Errorf("CONN_2HOP_Job_Job not chosen; selection:\n%s", sel.Describe())
	}
}

func TestAnalyzeRespectsBudget(t *testing.T) {
	g := filteredProv(t)
	a := &Analyzer{Schema: g.Schema(), MaxK: 10}
	// Zero budget: nothing materializable.
	sel, err := a.Analyze(g, []gql.Query{gql.MustParse(blastRadius)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Chosen) != 0 {
		t.Errorf("zero budget chose %d views", len(sel.Chosen))
	}
	// Tiny budget: at most the cheapest views fit; estimated sizes of
	// chosen views must not exceed it.
	sel, err = a.Analyze(g, []gql.Query{gql.MustParse(blastRadius)}, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, ev := range sel.Chosen {
		sum += ev.EstimatedEdges
	}
	if sum > 50_000 {
		t.Errorf("chosen views estimate %v edges, budget 50000", sum)
	}
}

// TestAnalyzeOnlySoundConnectorsPriced: the enumerator proposes K=2..10
// job-to-job connectors (§IV-B), but only K=2 preserves the blast-radius
// result on the bipartite lineage schema (feasible job-job lengths are
// the even numbers), so only K=2 is priced into selection.
func TestAnalyzeOnlySoundConnectorsPriced(t *testing.T) {
	g := filteredProv(t)
	a := &Analyzer{Schema: g.Schema(), MaxK: 10}
	sel, err := a.Analyze(g, []gql.Query{gql.MustParse(blastRadius)}, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	ks := map[int]bool{}
	for _, ev := range sel.Candidates {
		if kc, ok := ev.Candidate.View.(views.KHopConnector); ok && kc.SrcType == "Job" {
			ks[kc.K] = true
		}
	}
	if !ks[2] {
		t.Error("K=2 connector missing from priced candidates")
	}
	for k := range ks {
		if k != 2 {
			t.Errorf("K=%d priced but is not result-preserving for the blast radius query", k)
		}
	}
}

func TestCatalogRewritePicksMaterializedView(t *testing.T) {
	g := filteredProv(t)
	a := &Analyzer{Schema: g.Schema(), MaxK: 10}
	q := gql.MustParse(blastRadius)
	sel, err := a.Analyze(g, []gql.Query{q}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := Materialize(g, sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Views()) == 0 {
		t.Fatal("nothing materialized")
	}
	plan, err := cat.Rewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ViewName == "" {
		t.Fatal("rewrite fell back to the base graph")
	}
	if plan.Cost <= 0 {
		t.Errorf("plan cost = %v", plan.Cost)
	}
	// The plan executes and agrees with the base plan.
	baseRes, err := (&exec.Executor{G: g}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	viewRes, err := (&exec.Executor{G: plan.Graph}).Execute(plan.Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseRes.Rows) != len(viewRes.Rows) {
		t.Errorf("base rows=%d view rows=%d", len(baseRes.Rows), len(viewRes.Rows))
	}
}

func TestCatalogRewriteFallsBackWithoutViews(t *testing.T) {
	g := filteredProv(t)
	cat := NewCatalog(g)
	q := gql.MustParse(blastRadius)
	plan, err := cat.Rewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ViewName != "" || plan.Graph != g {
		t.Errorf("empty catalog should return the base plan, got view %q", plan.ViewName)
	}
}

// TestCatalogDropView: dropping a view removes it from every read
// surface, bumps the epoch (the staleness signal prepared queries poll),
// sends rewrites back to the base graph, and leaves the catalog ready to
// re-materialize the same view.
func TestCatalogDropView(t *testing.T) {
	g := filteredProv(t)
	a := &Analyzer{Schema: g.Schema(), MaxK: 10}
	q := gql.MustParse(blastRadius)
	sel, err := a.Analyze(g, []gql.Query{q}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := Materialize(g, sel)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := cat.Rewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ViewName == "" {
		t.Fatal("rewrite did not use a view; nothing to drop")
	}

	epoch := cat.Epoch()
	if !cat.DropView(plan.ViewName) {
		t.Fatalf("DropView(%q) = false for a materialized view", plan.ViewName)
	}
	if cat.Epoch() == epoch {
		t.Fatal("DropView did not bump the epoch")
	}
	if _, ok := cat.Get(plan.ViewName); ok {
		t.Fatalf("Get(%q) still finds the dropped view", plan.ViewName)
	}
	for _, n := range cat.Views() {
		if n == plan.ViewName {
			t.Fatalf("Views() still lists dropped %q", plan.ViewName)
		}
	}
	plan2, err := cat.Rewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.ViewName == plan.ViewName {
		t.Fatalf("rewrite still plans over dropped view %q", plan.ViewName)
	}

	// Dropping twice is a no-op that reports absence and keeps the epoch.
	epoch = cat.Epoch()
	if cat.DropView(plan.ViewName) {
		t.Fatal("DropView of an absent view returned true")
	}
	if cat.Epoch() != epoch {
		t.Fatal("no-op DropView bumped the epoch")
	}

	// The same view can land again after the drop.
	if err := cat.AddAll(candidatesOf(sel), 1); err != nil {
		t.Fatal(err)
	}
	plan3, err := cat.Rewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan3.ViewName != plan.ViewName {
		t.Fatalf("after re-add, rewrite uses %q, want %q", plan3.ViewName, plan.ViewName)
	}
}

// candidatesOf extracts a selection's chosen candidates.
func candidatesOf(sel *Selection) []enum.Candidate {
	cands := make([]enum.Candidate, len(sel.Chosen))
	for i, ev := range sel.Chosen {
		cands[i] = ev.Candidate
	}
	return cands
}

// TestAnalyzeWeighted: weighting a query up scales the improvements its
// views earn, without changing which views apply.
func TestAnalyzeWeighted(t *testing.T) {
	g := filteredProv(t)
	a := &Analyzer{Schema: g.Schema(), MaxK: 10}
	qs := []gql.Query{gql.MustParse(blastRadius)}

	uni, err := a.Analyze(g, qs, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	wtd, err := a.AnalyzeWeighted(g, qs, []float64{10}, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(uni.Candidates) != len(wtd.Candidates) {
		t.Fatalf("candidate sets differ: %d vs %d", len(uni.Candidates), len(wtd.Candidates))
	}
	for i := range uni.Candidates {
		u, w := uni.Candidates[i], wtd.Candidates[i]
		ratio := w.Improvement / u.Improvement
		if ratio < 9.99 || ratio > 10.01 {
			t.Errorf("%s: improvement ratio = %v, want 10", u.Candidate.View.Name(), ratio)
		}
	}
	// Mismatched weight count errors.
	if _, err := a.AnalyzeWeighted(g, qs, []float64{1, 2}, 100); err == nil {
		t.Error("mismatched weights accepted")
	}
}

func TestTableIVComplete(t *testing.T) {
	rows := TableIV()
	if len(rows) != 8 {
		t.Fatalf("Table IV rows = %d, want 8", len(rows))
	}
	if rows[0].Name != "Job Blast Radius" || rows[6].Operation != "Update" {
		t.Errorf("Table IV content wrong: %+v", rows)
	}
}

// TestQueriesAgreeBaseVsConnector: the Table IV traversal queries return
// the same answers over the filtered lineage graph (base budgets) and
// over its 2-hop job connector (halved budgets) — the reachable job sets
// coincide on a DAG.
func TestQueriesAgreeBaseVsConnector(t *testing.T) {
	g := filteredProv(t)
	conn, err := views.KHopConnector{SrcType: "Job", DstType: "Job", K: 2}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	base := BaseRunner(g, "Job", 50)
	over := ConnectorRunner(conn, "Job", 2, 50)

	// Q1: downstream CPU sums agree (job-level 10 hops == 5 connector
	// hops on a DAG).
	bv, err := base.Run(Q1BlastRadius)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := over.Run(Q1BlastRadius)
	if err != nil {
		t.Fatal(err)
	}
	if bv != ov {
		t.Errorf("Q1: base=%d connector=%d", bv, ov)
	}

	// Q2/Q3 count job-type neighbors only on the connector (files are
	// contracted away), so compare against a base runner that counts
	// jobs: run on base and filter — here we check the connector result
	// is consistent with itself across runs instead.
	ov2, err := over.Run(Q3Descendants)
	if err != nil {
		t.Fatal(err)
	}
	if ov2 < 0 {
		t.Errorf("Q3 over connector = %d", ov2)
	}

	// Q5/Q6 need no rewriting (§VII-C) — they measure whatever graph
	// they run on.
	be, err := base.Run(Q5EdgeCount)
	if err != nil {
		t.Fatal(err)
	}
	if be != int64(g.NumEdges()) {
		t.Errorf("Q5 = %d, want %d", be, g.NumEdges())
	}
	bn, err := base.Run(Q6VertexCount)
	if err != nil {
		t.Fatal(err)
	}
	if bn != int64(g.NumVertices()) {
		t.Errorf("Q6 = %d, want %d", bn, g.NumVertices())
	}

	// Q7 then Q8 run in sequence (Q8 consumes Q7's labels).
	if _, err := base.Run(Q7Community); err != nil {
		t.Fatal(err)
	}
	q8, err := base.Run(Q8LargestComm)
	if err != nil {
		t.Fatal(err)
	}
	if q8 < 1 {
		t.Errorf("Q8 largest community = %d", q8)
	}
	// Q8 before Q7 on a fresh graph errors.
	fresh := filteredProv(t)
	bad := BaseRunner(fresh, "Job", 10)
	if _, err := bad.Run(Q8LargestComm); err == nil {
		t.Error("Q8 without Q7 labels should error")
	}
}

func TestRunnerUnknownQuery(t *testing.T) {
	g := filteredProv(t)
	if _, err := BaseRunner(g, "Job", 1).Run("Q99"); err == nil {
		t.Error("unknown query accepted")
	}
}
