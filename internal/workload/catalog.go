package workload

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"kaskade/internal/cost"
	"kaskade/internal/enum"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/par"
	"kaskade/internal/rewrite"
	"kaskade/internal/views"
)

// Materialized is one materialized view: its definition, its anchor
// metadata, and the physical view graph.
type Materialized struct {
	Candidate enum.Candidate
	Graph     *graph.Graph
	Props     *cost.GraphProperties
}

// Catalog holds the materialized views over a base graph and implements
// view-based query rewriting (§V-C): on query arrival it enumerates the
// applicable materialized views and picks the rewriting with the lowest
// estimated evaluation cost.
//
// A Catalog is safe for concurrent use: reads (Rewrite, Get, Views,
// TotalEdges) take a shared lock, mutations (Add, AddAll, DropView) an
// exclusive one, and every mutation that lands or drops a view bumps
// Epoch — the cheap freshness signal prepared queries poll to know
// their cached plan may be stale. Base, BaseProps, Schema, and Alpha
// are set at construction and read-only afterwards.
type Catalog struct {
	Base      *graph.Graph
	BaseProps *cost.GraphProperties
	Schema    *graph.Schema
	Alpha     int

	mu     sync.RWMutex
	epoch  atomic.Uint64
	byName map[string]*Materialized
	order  []string
}

// Epoch returns the catalog's mutation counter. It increments every
// time a view lands in or is dropped from the catalog, so a plan
// rewritten at epoch E is current exactly while Epoch() == E. Reading
// it costs one atomic load — cheap enough for every prepared-query
// execution.
func (c *Catalog) Epoch() uint64 { return c.epoch.Load() }

// Materialize executes every chosen view of the selection over g and
// returns the catalog.
func Materialize(g *graph.Graph, sel *Selection) (*Catalog, error) {
	c := &Catalog{
		Base:      g,
		BaseProps: cost.Collect(g),
		Schema:    g.Schema(),
		Alpha:     cost.DefaultAlpha,
		byName:    make(map[string]*Materialized),
	}
	for _, ev := range sel.Chosen {
		if err := c.Add(ev.Candidate); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// NewCatalog returns an empty catalog over g (views added with Add).
func NewCatalog(g *graph.Graph) *Catalog {
	return &Catalog{
		Base:      g,
		BaseProps: cost.Collect(g),
		Schema:    g.Schema(),
		Alpha:     cost.DefaultAlpha,
		byName:    make(map[string]*Materialized),
	}
}

// Add materializes one candidate view into the catalog (idempotent by
// view name). Materialization runs outside the catalog lock — only the
// insertion excludes readers — so queries keep executing while a view
// builds.
func (c *Catalog) Add(cand enum.Candidate) error {
	return c.add(cand, 1)
}

func (c *Catalog) add(cand enum.Candidate, workers int) error {
	name := cand.View.Name()
	if c.has(name) {
		return nil
	}
	vg, err := materializeView(cand.View, c.Base, workers)
	if err != nil {
		return fmt.Errorf("workload: materializing %s: %w", name, err)
	}
	c.insert(name, &Materialized{
		Candidate: cand,
		Graph:     vg,
		Props:     cost.Collect(vg),
	})
	return nil
}

func (c *Catalog) has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, dup := c.byName[name]
	return dup
}

// insert lands one built view, skipping it if a concurrent Add won the
// race for the name, and bumps the epoch when the catalog changed. The
// view graph is frozen (CSR view built) before it becomes visible, so
// every query rewritten over a landed view runs on the frozen path
// without paying the index build on its first execution.
func (c *Catalog) insert(name string, m *Materialized) {
	m.Graph.Freeze()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byName[name]; dup {
		return
	}
	c.byName[name] = m
	c.order = append(c.order, name)
	c.epoch.Add(1)
}

// materializeView builds a view graph, fanning the build itself out
// over `workers` goroutines when the view class supports internal
// parallelism (views.ParallelView) — the per-source BFS fan-out of
// connector materialization.
func materializeView(v views.View, base *graph.Graph, workers int) (*graph.Graph, error) {
	if pv, ok := v.(views.ParallelView); ok && workers > 1 {
		return pv.MaterializeParallel(base, workers)
	}
	return v.Materialize(base)
}

// AddAll materializes a batch of candidate views into the catalog,
// running independent materializations concurrently on up to `workers`
// goroutines (0 or 1 = sequential, negative = one per available CPU).
// Worker budget left over after one-per-view is pushed down into each
// view's own build when the class supports it (views.ParallelView), so
// a single huge connector still saturates the pool. Each build derives
// a fresh graph from the read-only base, so builds never share mutable
// state; catalog insertion happens on the calling goroutine afterwards,
// in candidate order, which keeps Views() order, idempotency, and
// first-error behavior identical to a loop of Add calls.
func (c *Catalog) AddAll(cands []enum.Candidate, workers int) error {
	type build struct {
		cand enum.Candidate
		name string
		mat  *Materialized
		err  error
	}
	var builds []*build
	seen := make(map[string]bool, len(cands))
	for _, cand := range cands {
		name := cand.View.Name()
		if seen[name] {
			continue
		}
		seen[name] = true
		if c.has(name) {
			continue
		}
		builds = append(builds, &build{cand: cand, name: name})
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Divide the worker budget: one slot per view first, and any spare
	// capacity pushed down into each view's own build (never
	// oversubscribed beyond the original budget).
	inner := 1
	if len(builds) > 0 && workers > len(builds) {
		inner = workers / len(builds)
	}
	if workers > len(builds) {
		workers = len(builds)
	}
	materialize := func(b *build) {
		vg, err := materializeView(b.cand.View, c.Base, inner)
		if err != nil {
			b.err = err
			return
		}
		b.mat = &Materialized{Candidate: b.cand, Graph: vg, Props: cost.Collect(vg)}
	}
	if workers <= 1 {
		// Sequential keeps Add's early stop: nothing past the first
		// error is materialized.
		for _, b := range builds {
			materialize(b)
			if b.err != nil {
				break
			}
		}
	} else {
		par.For(len(builds), workers, func(i int) { materialize(builds[i]) })
	}
	for _, b := range builds {
		if b.err != nil {
			return fmt.Errorf("workload: materializing %s: %w", b.name, b.err)
		}
		if b.mat == nil {
			// A sequential run stopped at an earlier error before
			// building this view; the loop returned above already.
			break
		}
		c.insert(b.name, b.mat)
	}
	return nil
}

// DropView evicts a materialized view from the catalog, releasing the
// view graph, and bumps the epoch — the part that matters for
// correctness: a PreparedQuery whose cached plan was rewritten over the
// dropped view sees the epoch move and re-rewrites on its next
// execution instead of running the stale plan. It reports whether the
// view was present. An execution already racing the drop may finish
// over the old plan — the view graph stays alive until the last
// reference drops, so such a straggler reads consistent (if
// one-epoch-old) data, never freed memory.
func (c *Catalog) DropView(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byName[name]; !ok {
		return false
	}
	delete(c.byName, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.epoch.Add(1)
	return true
}

// Views returns the materialized view names in creation order.
func (c *Catalog) Views() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.order...)
}

// Get returns a materialized view by name.
func (c *Catalog) Get(name string) (*Materialized, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.byName[name]
	return m, ok
}

// TotalEdges returns the storage the catalog consumes, in edges.
func (c *Catalog) TotalEdges() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, m := range c.byName {
		total += m.Graph.NumEdges()
	}
	return total
}

// Plan is the outcome of view-based rewriting for one query.
type Plan struct {
	Query    gql.Query    // the (possibly rewritten) query to execute
	Graph    *graph.Graph // the graph to execute it against
	ViewName string       // "" when executing over the base graph
	Cost     float64      // estimated evaluation cost of the plan
}

// Rewrite performs view-based query rewriting (§V-C): it enumerates the
// query's candidates, keeps those whose views are materialized, and
// returns the plan with the smallest estimated evaluation cost (the base
// plan when no view helps). Rewritings use a single view, like the
// paper's prototype. Rewrite holds the catalog's read lock, so it may
// run concurrently with queries and with other Rewrites, and sees a
// consistent view set even while Add/AddAll land new views.
func (c *Catalog) Rewrite(q gql.Query) (*Plan, error) {
	baseCost, err := cost.EvalCost(q, c.BaseProps, c.Schema, c.alpha())
	if err != nil {
		return nil, err
	}
	best := &Plan{Query: q, Graph: c.Base, Cost: baseCost}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.byName) == 0 {
		return best, nil
	}
	en := &enum.Enumerator{Schema: c.Schema}
	res, err := en.Enumerate(q)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(res.Candidates))
	byName := map[string]enum.Candidate{}
	for _, cand := range res.Candidates {
		name := cand.View.Name()
		if _, ok := byName[name]; !ok {
			byName[name] = cand
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		m, ok := c.byName[name]
		if !ok {
			continue // §V-C: prune candidates that are not materialized
		}
		cand := byName[name]
		plan, err := c.planFor(q, cand, m)
		if err != nil || plan == nil {
			continue
		}
		if plan.Cost < best.Cost {
			best = plan
		}
	}
	return best, nil
}

func (c *Catalog) planFor(q gql.Query, cand enum.Candidate, m *Materialized) (*Plan, error) {
	switch cand.View.(type) {
	case views.KHopConnector:
		rw, err := rewrite.OverKHopConnectorExact(q, cand, c.Schema)
		if err != nil {
			return nil, nil
		}
		rwCost, err := cost.EvalCost(rw, m.Props, m.Graph.Schema(), c.alpha())
		if err != nil {
			return nil, err
		}
		return &Plan{Query: rw, Graph: m.Graph, ViewName: cand.View.Name(), Cost: rwCost}, nil
	default:
		if err := rewrite.ValidateOnSummarizer(q, cand.View); err != nil {
			return nil, nil
		}
		rwCost, err := cost.EvalCost(q, m.Props, m.Graph.Schema(), c.alpha())
		if err != nil {
			return nil, err
		}
		return &Plan{Query: q, Graph: m.Graph, ViewName: cand.View.Name(), Cost: rwCost}, nil
	}
}

func (c *Catalog) alpha() int {
	if c.Alpha != 0 {
		return c.Alpha
	}
	return cost.DefaultAlpha
}
