package workload

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"kaskade/internal/cost"
	"kaskade/internal/enum"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/metrics"
	"kaskade/internal/par"
	"kaskade/internal/rewrite"
	"kaskade/internal/views"
)

// Materialized is one materialized view: its definition, its anchor
// metadata, and the physical view graph.
type Materialized struct {
	Candidate enum.Candidate
	Graph     *graph.Graph
	Props     *cost.GraphProperties
	// Def is the named declarative definition: the DDL name and
	// canonical CREATE VIEW text for CREATE VIEW statements, the
	// structural name (and derived DDL where one exists) for
	// struct-API views.
	Def views.ViewDef

	// hits counts §V-C rewrites that landed on this view — the usage
	// signal behind SHOW VIEWS, Explain, and future benefit-based
	// eviction. Atomic: bumped under the catalog's read lock.
	hits atomic.Int64
}

// RewriteHits returns how many times §V-C rewriting has landed on this
// view since it was materialized.
func (m *Materialized) RewriteHits() int64 { return m.hits.Load() }

// Catalog holds the materialized views over a base graph and implements
// view-based query rewriting (§V-C): on query arrival it enumerates the
// applicable materialized views and picks the rewriting with the lowest
// estimated evaluation cost.
//
// A Catalog is safe for concurrent use: reads (Rewrite, Get, Views,
// TotalEdges) take a shared lock, mutations (Add, AddAll, DropView) an
// exclusive one, and every mutation that lands or drops a view bumps
// Epoch — the cheap freshness signal prepared queries poll to know
// their cached plan may be stale. Base, BaseProps, Schema, and Alpha
// are set at construction and read-only afterwards.
type Catalog struct {
	Base      *graph.Graph
	BaseProps *cost.GraphProperties
	Schema    *graph.Schema
	Alpha     int

	// metrics, when set (SetMetrics), receives rewrite hit/miss and
	// materialization counts. Atomic so SetMetrics may race queries.
	metrics atomic.Pointer[metrics.Registry]

	mu     sync.RWMutex
	epoch  atomic.Uint64
	byName map[string]*Materialized
	order  []string
	// defs maps registry (DDL) names to structural view names — the
	// named-view registry behind CREATE VIEW / DROP VIEW / SHOW VIEWS.
	// Struct-API views register under their structural name, so every
	// materialized view has exactly one registry entry.
	defs map[string]string
}

// SetMetrics attaches (or, with nil, detaches) a metrics registry: the
// catalog bumps its RewriteHits/RewriteMisses on every counting Rewrite
// and Materializations when a view lands.
func (c *Catalog) SetMetrics(r *metrics.Registry) { c.metrics.Store(r) }

// Epoch returns the catalog's mutation counter. It increments every
// time a view lands in or is dropped from the catalog, and every time
// the base graph's delta tail is compacted into a fresh CSR — so a plan
// rewritten at epoch E is current exactly while Epoch() == E. Folding
// graph.Graph.Compactions in means prepared plans and response caches
// refresh at compaction granularity, not per mutation: overlay
// mutations between compactions leave the epoch alone, which is the
// whole point of the delta tail. Reading it costs two atomic loads —
// cheap enough for every prepared-query execution.
func (c *Catalog) Epoch() uint64 {
	e := c.epoch.Load()
	if c.Base != nil {
		e += c.Base.Compactions()
	}
	return e
}

// Materialize executes every chosen view of the selection over g and
// returns the catalog.
func Materialize(g *graph.Graph, sel *Selection) (*Catalog, error) {
	c := &Catalog{
		Base:      g,
		BaseProps: cost.Collect(g),
		Schema:    g.Schema(),
		Alpha:     cost.DefaultAlpha,
		byName:    make(map[string]*Materialized),
		defs:      make(map[string]string),
	}
	for _, ev := range sel.Chosen {
		if err := c.Add(ev.Candidate); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// NewCatalog returns an empty catalog over g (views added with Add).
func NewCatalog(g *graph.Graph) *Catalog {
	return &Catalog{
		Base:      g,
		BaseProps: cost.Collect(g),
		Schema:    g.Schema(),
		Alpha:     cost.DefaultAlpha,
		byName:    make(map[string]*Materialized),
		defs:      make(map[string]string),
	}
}

// Add materializes one candidate view into the catalog (idempotent by
// view name). Materialization runs outside the catalog lock — only the
// insertion excludes readers — so queries keep executing while a view
// builds.
func (c *Catalog) Add(cand enum.Candidate) error {
	return c.add(cand, 1)
}

func (c *Catalog) add(cand enum.Candidate, workers int) error {
	name := cand.View.Name()
	if c.has(name) {
		return nil
	}
	vg, err := materializeView(cand.View, c.Base, workers)
	if err != nil {
		return fmt.Errorf("workload: materializing %s: %w", name, err)
	}
	c.insert(name, &Materialized{
		Candidate: cand,
		Graph:     vg,
		Props:     cost.Collect(vg),
	})
	return nil
}

func (c *Catalog) has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, dup := c.byName[name]
	return dup
}

// insert lands one built view, skipping it if a concurrent Add won the
// race for the name, and bumps the epoch when the catalog changed. The
// view graph is frozen (CSR view built) before it becomes visible, so
// every query rewritten over a landed view runs on the frozen path
// without paying the index build on its first execution. Views landing
// without an explicit Def (the struct API) are named after their
// structural name, so SHOW VIEWS lists them alongside DDL-created ones.
func (c *Catalog) insert(name string, m *Materialized) {
	if m.Def.View == nil {
		m.Def = views.Define(m.Candidate.View)
	}
	m.Graph.Freeze()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.byName[name]; dup {
		return
	}
	c.byName[name] = m
	c.order = append(c.order, name)
	if c.defs == nil {
		c.defs = make(map[string]string)
	}
	// A DDL view may already hold this registry name (a CREATE VIEW
	// named like another view's structural name). The struct path
	// cannot error, so the view lands unregistered: still listed,
	// rewritten over, and droppable by its structural name — DropView
	// resolves exact structural matches first.
	if _, taken := c.defs[m.Def.Name]; !taken {
		c.defs[m.Def.Name] = name
	}
	c.epoch.Add(1)
	if r := c.metrics.Load(); r != nil {
		r.Materializations.Inc()
	}
}

// ErrViewExists is wrapped by CreateView when the view name (or an
// identically defined view) is already in the catalog; DROP VIEW it
// first.
var ErrViewExists = fmt.Errorf("view already exists")

// ErrNoSuchView is wrapped by operations that name a view the catalog
// does not hold (DROP VIEW on an unknown name). Typed so service
// surfaces can map it (the kaskaded daemon returns 404 for it).
var ErrNoSuchView = fmt.Errorf("view does not exist")

// CreateView materializes a declaratively defined, named view into the
// catalog — the CREATE VIEW execution path. Unlike the idempotent Add,
// a name collision (with another registry name or with an identically
// defined materialized view) is an error wrapping ErrViewExists: the
// DDL lifecycle makes re-CREATE meaningful only after DROP VIEW.
// Materialization runs outside the catalog lock; landing the view bumps
// the epoch, so prepared statements re-rewrite over it on their next
// execution.
func (c *Catalog) CreateView(def views.ViewDef, workers int) error {
	if def.Name == "" || def.View == nil {
		return fmt.Errorf("workload: view definition needs a name and a compiled view")
	}
	structural := def.View.Name()
	if err := c.checkNames(def.Name, structural); err != nil {
		return err
	}
	vg, err := materializeView(def.View, c.Base, workers)
	if err != nil {
		return fmt.Errorf("workload: materializing %s: %w", def.Name, err)
	}
	m := &Materialized{
		Candidate: enum.Candidate{View: def.View},
		Graph:     vg,
		Props:     cost.Collect(vg),
		Def:       def,
	}
	m.Graph.Freeze()
	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-check under the lock: a racing CREATE may have landed the name
	// while this one materialized.
	if err := c.checkNamesLocked(def.Name, structural); err != nil {
		return err
	}
	c.byName[structural] = m
	c.defs[def.Name] = structural
	c.order = append(c.order, structural)
	c.epoch.Add(1)
	if r := c.metrics.Load(); r != nil {
		r.Materializations.Inc()
	}
	return nil
}

func (c *Catalog) checkNames(defName, structural string) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.checkNamesLocked(defName, structural)
}

func (c *Catalog) checkNamesLocked(defName, structural string) error {
	if s, dup := c.defs[defName]; dup {
		return fmt.Errorf("workload: %w: %q (over %s)", ErrViewExists, defName, s)
	}
	if _, dup := c.byName[defName]; dup {
		return fmt.Errorf("workload: %w: %q names a materialized view", ErrViewExists, defName)
	}
	if m, dup := c.byName[structural]; dup {
		return fmt.Errorf("workload: %w: an identical view is materialized as %q", ErrViewExists, m.Def.Name)
	}
	return nil
}

// materializeView builds a view graph, fanning the build itself out
// over `workers` goroutines when the view class supports internal
// parallelism (views.ParallelView) — the per-source BFS fan-out of
// connector materialization.
func materializeView(v views.View, base *graph.Graph, workers int) (*graph.Graph, error) {
	if pv, ok := v.(views.ParallelView); ok && workers > 1 {
		return pv.MaterializeParallel(base, workers)
	}
	return v.Materialize(base)
}

// AddAll materializes a batch of candidate views into the catalog,
// running independent materializations concurrently on up to `workers`
// goroutines (0 or 1 = sequential, negative = one per available CPU).
// Worker budget left over after one-per-view is pushed down into each
// view's own build when the class supports it (views.ParallelView), so
// a single huge connector still saturates the pool. Each build derives
// a fresh graph from the read-only base, so builds never share mutable
// state; catalog insertion happens on the calling goroutine afterwards,
// in candidate order, which keeps Views() order, idempotency, and
// first-error behavior identical to a loop of Add calls.
func (c *Catalog) AddAll(cands []enum.Candidate, workers int) error {
	type build struct {
		cand enum.Candidate
		name string
		mat  *Materialized
		err  error
	}
	var builds []*build
	seen := make(map[string]bool, len(cands))
	for _, cand := range cands {
		name := cand.View.Name()
		if seen[name] {
			continue
		}
		seen[name] = true
		if c.has(name) {
			continue
		}
		builds = append(builds, &build{cand: cand, name: name})
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Divide the worker budget: one slot per view first, and any spare
	// capacity pushed down into each view's own build (never
	// oversubscribed beyond the original budget).
	inner := 1
	if len(builds) > 0 && workers > len(builds) {
		inner = workers / len(builds)
	}
	if workers > len(builds) {
		workers = len(builds)
	}
	materialize := func(b *build) {
		vg, err := materializeView(b.cand.View, c.Base, inner)
		if err != nil {
			b.err = err
			return
		}
		b.mat = &Materialized{Candidate: b.cand, Graph: vg, Props: cost.Collect(vg)}
	}
	if workers <= 1 {
		// Sequential keeps Add's early stop: nothing past the first
		// error is materialized.
		for _, b := range builds {
			materialize(b)
			if b.err != nil {
				break
			}
		}
	} else {
		par.For(len(builds), workers, func(i int) { materialize(builds[i]) })
	}
	for _, b := range builds {
		if b.err != nil {
			return fmt.Errorf("workload: materializing %s: %w", b.name, b.err)
		}
		if b.mat == nil {
			// A sequential run stopped at an earlier error before
			// building this view; the loop returned above already.
			break
		}
		c.insert(b.name, b.mat)
	}
	return nil
}

// DropView evicts a materialized view from the catalog, releasing the
// view graph, and bumps the epoch — the part that matters for
// correctness: a PreparedQuery whose cached plan was rewritten over the
// dropped view sees the epoch move and re-rewrites on its next
// execution instead of running the stale plan. The name may be either
// the registry (DDL) name or the structural view name. It reports
// whether the view was present. An execution already racing the drop
// may finish over the old plan — the view graph stays alive until the
// last reference drops, so such a straggler reads consistent (if
// one-epoch-old) data, never freed memory.
func (c *Catalog) DropView(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	// An exact structural match wins over a registry alias — the
	// structural name is what Plan.ViewName and Views() report, so a
	// caller naming one means that physical view even if another view's
	// DDL name shadows it.
	structural := name
	if _, ok := c.byName[name]; !ok {
		if s, ok := c.defs[name]; ok {
			structural = s
		}
	}
	m, ok := c.byName[structural]
	if !ok {
		return false
	}
	delete(c.byName, structural)
	// Release the registry name only if it points here: a view whose
	// def name was shadowed at insert time never owned the entry.
	if c.defs[m.Def.Name] == structural {
		delete(c.defs, m.Def.Name)
	}
	for i, n := range c.order {
		if n == structural {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.epoch.Add(1)
	return true
}

// ViewInfo is one SHOW VIEWS row: the registry name, class, canonical
// DDL text (empty for views the DDL surface cannot express), view graph
// size, and the rewrite-hit counter.
type ViewInfo struct {
	Name     string
	Kind     string
	DDL      string
	Vertices int
	Edges    int
	Hits     int64
}

// ListViews reports every materialized view in creation order — the
// data behind SHOW VIEWS.
func (c *Catalog) ListViews() []ViewInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]ViewInfo, 0, len(c.order))
	for _, n := range c.order {
		m := c.byName[n]
		out = append(out, ViewInfo{
			Name:     m.Def.Name,
			Kind:     string(m.Candidate.View.Kind()),
			DDL:      m.Def.DDL,
			Vertices: m.Graph.NumVertices(),
			Edges:    m.Graph.NumEdges(),
			Hits:     m.hits.Load(),
		})
	}
	return out
}

// Views returns the materialized view names in creation order.
func (c *Catalog) Views() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.order...)
}

// Get returns a materialized view by name.
func (c *Catalog) Get(name string) (*Materialized, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.byName[name]
	return m, ok
}

// Resolve returns a materialized view by registry (DDL) name or
// structural name — the same resolution DropView applies, with an exact
// structural match winning over a registry alias. Surfaces that accept
// user-supplied view names (the daemon's /v1/topology) go through here.
func (c *Catalog) Resolve(name string) (*Materialized, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if m, ok := c.byName[name]; ok {
		return m, true
	}
	if s, ok := c.defs[name]; ok {
		m, ok := c.byName[s]
		return m, ok
	}
	return nil, false
}

// TotalEdges returns the storage the catalog consumes, in edges.
func (c *Catalog) TotalEdges() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, m := range c.byName {
		total += m.Graph.NumEdges()
	}
	return total
}

// Plan is the outcome of view-based rewriting for one query.
type Plan struct {
	Query    gql.Query    // the (possibly rewritten) query to execute
	Graph    *graph.Graph // the graph to execute it against
	ViewName string       // "" when executing over the base graph
	Cost     float64      // estimated evaluation cost of the plan
}

// Rewrite performs view-based query rewriting (§V-C): it enumerates the
// query's candidates, keeps those whose views are materialized, and
// returns the plan with the smallest estimated evaluation cost (the base
// plan when no view helps). Rewritings use a single view, like the
// paper's prototype. Rewrite holds the catalog's read lock, so it may
// run concurrently with queries and with other Rewrites, and sees a
// consistent view set even while Add/AddAll land new views.
//
// Rewrite is the execution path's entry point and counts its decision:
// a plan landing on a view bumps that view's hit counter (and the
// registry's RewriteHits), a base-graph plan bumps RewriteMisses.
// Prepared statements rewrite once per catalog epoch, so counters
// record distinct planning decisions, not executions. Plan inspection
// (EXPLAIN, System.Explain) must use PlanOnly so SHOW VIEWS counters
// keep meaning actual usage.
func (c *Catalog) Rewrite(q gql.Query) (*Plan, error) {
	return c.rewrite(q, true)
}

// PlanOnly is Rewrite without the usage accounting: it returns the
// identical plan but bumps neither the per-view hit counters nor the
// registry's hit/miss counters — the entry point for EXPLAIN and other
// inspection surfaces where no query runs.
func (c *Catalog) PlanOnly(q gql.Query) (*Plan, error) {
	return c.rewrite(q, false)
}

func (c *Catalog) rewrite(q gql.Query, count bool) (*Plan, error) {
	baseCost, err := cost.EvalCost(q, c.BaseProps, c.Schema, c.alpha())
	if err != nil {
		return nil, err
	}
	best := &Plan{Query: q, Graph: c.Base, Cost: baseCost}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.byName) == 0 {
		c.countDecision(count, best)
		return best, nil
	}
	en := &enum.Enumerator{Schema: c.Schema}
	res, err := en.Enumerate(q)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(res.Candidates))
	byName := map[string]enum.Candidate{}
	for _, cand := range res.Candidates {
		name := cand.View.Name()
		if _, ok := byName[name]; !ok {
			byName[name] = cand
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		m, ok := c.byName[name]
		if !ok {
			continue // §V-C: prune candidates that are not materialized
		}
		cand := byName[name]
		plan, err := c.planFor(q, cand, m)
		if err != nil || plan == nil {
			continue
		}
		if plan.Cost < best.Cost {
			best = plan
		}
	}
	c.countDecision(count, best)
	return best, nil
}

// countDecision records one §V-C rewrite decision: a view landing bumps
// the view's own hit counter (the signal SHOW VIEWS and Explain
// surface, and the input to benefit-based eviction) and the registry's
// RewriteHits; a base-graph plan bumps RewriteMisses. PlanOnly passes
// count=false and records nothing. Called under the read lock.
func (c *Catalog) countDecision(count bool, best *Plan) {
	if !count {
		return
	}
	r := c.metrics.Load()
	if best.ViewName != "" {
		c.byName[best.ViewName].hits.Add(1)
		if r != nil {
			r.RewriteHits.Inc()
		}
	} else if r != nil {
		r.RewriteMisses.Inc()
	}
}

func (c *Catalog) planFor(q gql.Query, cand enum.Candidate, m *Materialized) (*Plan, error) {
	switch cand.View.(type) {
	case views.KHopConnector:
		rw, err := rewrite.OverKHopConnectorExact(q, cand, c.Schema)
		if err != nil {
			return nil, nil
		}
		rwCost, err := cost.EvalCost(rw, m.Props, m.Graph.Schema(), c.alpha())
		if err != nil {
			return nil, err
		}
		return &Plan{Query: rw, Graph: m.Graph, ViewName: cand.View.Name(), Cost: rwCost}, nil
	default:
		if err := rewrite.ValidateOnSummarizer(q, cand.View); err != nil {
			return nil, nil
		}
		rwCost, err := cost.EvalCost(q, m.Props, m.Graph.Schema(), c.alpha())
		if err != nil {
			return nil, err
		}
		return &Plan{Query: q, Graph: m.Graph, ViewName: cand.View.Name(), Cost: rwCost}, nil
	}
}

func (c *Catalog) alpha() int {
	if c.Alpha != 0 {
		return c.Alpha
	}
	return cost.DefaultAlpha
}
