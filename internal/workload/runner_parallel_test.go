package workload

import (
	"context"
	"testing"

	"kaskade/internal/datagen"
)

// TestRunnerWorkersEquivalence proves the per-source fan-out (Q1-Q4)
// and the chunk-parallel label propagation (Q7/Q8) return the same
// scalar at every worker count — the deterministic-merge contract of
// the parallel algo variants, end to end through the Table IV runner.
func TestRunnerWorkersEquivalence(t *testing.T) {
	g, err := datagen.Prov(datagen.ProvConfig{
		Jobs: 50, Files: 120, TasksPerJob: 3, Machines: 8, Users: 4,
		MaxReads: 12, Pipelines: 5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := []QueryID{
		Q1BlastRadius, Q2Ancestors, Q3Descendants, Q4PathLengths,
		Q5EdgeCount, Q6VertexCount, Q7Community, Q8LargestComm,
	}
	want := make(map[QueryID]int64)
	{
		r := BaseRunner(g, "Job", 0)
		for _, q := range queries {
			v, err := r.Run(q)
			if err != nil {
				t.Fatalf("sequential %s: %v", q, err)
			}
			want[q] = v
		}
	}
	for _, workers := range []int{2, 4, -1} {
		r := BaseRunner(g, "Job", 0)
		r.Workers = workers
		for _, q := range queries {
			got, err := r.RunContext(context.Background(), q)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, q, err)
			}
			if got != want[q] {
				t.Errorf("workers=%d %s: %d, want %d", workers, q, got, want[q])
			}
		}
	}
}

// TestRunnerCancellation proves the traversal queries observe a
// cancelled context inside the kernels.
func TestRunnerCancellation(t *testing.T) {
	g, err := datagen.Prov(datagen.ProvConfig{
		Jobs: 40, Files: 100, TasksPerJob: 2, Machines: 5, Users: 3,
		MaxReads: 10, Pipelines: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := BaseRunner(g, "Job", 0)
	r.Workers = 4
	for _, q := range []QueryID{Q1BlastRadius, Q2Ancestors, Q4PathLengths, Q7Community} {
		if _, err := r.RunContext(ctx, q); err != context.Canceled {
			t.Errorf("%s: err = %v, want context.Canceled", q, err)
		}
	}
}
