package workload

import (
	"errors"
	"strings"
	"testing"

	"kaskade/internal/enum"
	"kaskade/internal/gql"
	"kaskade/internal/metrics"
	"kaskade/internal/views"
)

// ddlTestCatalog builds a catalog over the filtered lineage graph.
func ddlTestCatalog(t *testing.T) *Catalog {
	t.Helper()
	return NewCatalog(filteredProv(t))
}

func khopDef(t *testing.T, name string) views.ViewDef {
	t.Helper()
	v, err := views.Compile(`MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y`)
	if err != nil {
		t.Fatal(err)
	}
	return views.ViewDef{Name: name, DDL: "CREATE MATERIALIZED VIEW " + name + " AS " + v.Cypher(), View: v}
}

func TestCatalogCreateViewRegistry(t *testing.T) {
	c := ddlTestCatalog(t)
	e0 := c.Epoch()
	if err := c.CreateView(khopDef(t, "jj"), 1); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() == e0 {
		t.Error("CreateView did not bump the epoch")
	}
	// The view lands under its structural name (rewriting matches on
	// it) and is listed under its registry name.
	if _, ok := c.Get("CONN_2HOP_Job_Job"); !ok {
		t.Fatalf("structural name not in catalog: %v", c.Views())
	}
	infos := c.ListViews()
	if len(infos) != 1 || infos[0].Name != "jj" || infos[0].Kind != "connector" {
		t.Fatalf("ListViews = %+v", infos)
	}
	if !strings.HasPrefix(infos[0].DDL, "CREATE MATERIALIZED VIEW jj AS MATCH") {
		t.Errorf("DDL text = %q", infos[0].DDL)
	}
	if infos[0].Edges == 0 || infos[0].Vertices == 0 {
		t.Errorf("empty view graph in listing: %+v", infos[0])
	}

	// Name collisions error with ErrViewExists: same registry name,
	// and an identical definition under a different name.
	if err := c.CreateView(khopDef(t, "jj"), 1); !errors.Is(err, ErrViewExists) {
		t.Errorf("duplicate name error = %v", err)
	}
	if err := c.CreateView(khopDef(t, "jj2"), 1); !errors.Is(err, ErrViewExists) {
		t.Errorf("identical definition error = %v", err)
	}

	// DROP by registry name, then re-CREATE under a new name.
	e1 := c.Epoch()
	if !c.DropView("jj") {
		t.Fatal("DropView(jj) = false")
	}
	if c.Epoch() == e1 {
		t.Error("DropView did not bump the epoch")
	}
	if len(c.ListViews()) != 0 {
		t.Fatalf("ListViews after drop = %+v", c.ListViews())
	}
	if err := c.CreateView(khopDef(t, "jj2"), 1); err != nil {
		t.Fatal(err)
	}
	// DROP also resolves the structural name.
	if !c.DropView("CONN_2HOP_Job_Job") {
		t.Fatal("DropView(structural) = false")
	}
	if c.DropView("jj2") {
		t.Error("registry entry survived a structural drop")
	}
}

func TestCatalogStructViewsInRegistry(t *testing.T) {
	c := ddlTestCatalog(t)
	v := views.KHopConnector{SrcType: "Job", DstType: "Job", K: 2}
	if err := c.Add(enum.Candidate{View: v}); err != nil {
		t.Fatal(err)
	}
	infos := c.ListViews()
	if len(infos) != 1 || infos[0].Name != v.Name() {
		t.Fatalf("ListViews = %+v", infos)
	}
	if !strings.Contains(infos[0].DDL, "CREATE MATERIALIZED VIEW "+v.Name()+" AS ") {
		t.Errorf("struct view carries no derived DDL: %q", infos[0].DDL)
	}
	// A struct view with options outside the DDL surface lists with an
	// empty DDL column.
	dedup := views.KHopConnector{SrcType: "Job", DstType: "File", K: 1, DedupPairs: true}
	if err := c.Add(enum.Candidate{View: dedup}); err != nil {
		t.Fatal(err)
	}
	infos = c.ListViews()
	if len(infos) != 2 || infos[1].DDL != "" {
		t.Fatalf("ListViews = %+v", infos)
	}
	// CREATE VIEW under a name that collides with the struct view's
	// registry entry errors.
	if err := c.CreateView(khopDef(t, v.Name()), 1); !errors.Is(err, ErrViewExists) {
		t.Errorf("collision with struct registry name = %v", err)
	}
}

func TestCatalogRewriteHits(t *testing.T) {
	c := ddlTestCatalog(t)
	if err := c.CreateView(khopDef(t, "jj"), 1); err != nil {
		t.Fatal(err)
	}
	q := gql.MustParse(blastRadius)
	for i := 0; i < 3; i++ {
		plan, err := c.Rewrite(q)
		if err != nil {
			t.Fatal(err)
		}
		if plan.ViewName != "CONN_2HOP_Job_Job" {
			t.Fatalf("rewrite %d did not land on the connector: %+v", i, plan)
		}
	}
	infos := c.ListViews()
	if infos[0].Hits != 3 {
		t.Errorf("hits = %d, want 3", infos[0].Hits)
	}
	// A rewrite that stays on the base graph bumps nothing.
	q2 := gql.MustParse(`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`)
	if _, err := c.Rewrite(q2); err != nil {
		t.Fatal(err)
	}
	if got := c.ListViews()[0].Hits; got != 3 {
		t.Errorf("hits after base-plan rewrite = %d, want 3", got)
	}
}

// TestConcurrentCreateViewDDL races two CREATEs of the same name: the
// materialize-outside-lock path must resolve the collision under the
// lock — exactly one lands, the other errors with ErrViewExists.
func TestConcurrentCreateViewDDL(t *testing.T) {
	c := ddlTestCatalog(t)
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { errs <- c.CreateView(khopDef(t, "jj"), 1) }()
	}
	var won, lost int
	for i := 0; i < 2; i++ {
		if err := <-errs; err == nil {
			won++
		} else if errors.Is(err, ErrViewExists) {
			lost++
		} else {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if won != 1 || lost != 1 {
		t.Fatalf("won=%d lost=%d, want 1/1", won, lost)
	}
	if got := len(c.ListViews()); got != 1 {
		t.Fatalf("ListViews has %d entries", got)
	}
}

// TestDDLNameShadowingStructural pins the resolution order when a DDL
// view's name collides with another view's structural name: the struct
// view still lands (unregistered), DROP of the shared name evicts the
// exact structural match first, and the alias survives until its own
// view is dropped.
func TestDDLNameShadowingStructural(t *testing.T) {
	c := ddlTestCatalog(t)
	// A DDL view deliberately named like the k-hop connector's
	// structural name.
	alias := views.ViewDef{
		Name: "CONN_2HOP_Job_Job",
		View: views.MustCompile(`MATCH (x:Job)-[p*1..4]->(y:Job) RETURN x, y`),
	}
	if err := c.CreateView(alias, 1); err != nil {
		t.Fatal(err)
	}
	// The real k-hop view arrives via the struct path; it lands even
	// though its registry name is shadowed.
	khop := views.KHopConnector{SrcType: "Job", DstType: "Job", K: 2}
	if err := c.Add(enum.Candidate{View: khop}); err != nil {
		t.Fatal(err)
	}
	if len(c.ListViews()) != 2 {
		t.Fatalf("ListViews = %+v", c.ListViews())
	}
	// DROP of the shared name evicts the exact structural match (the
	// k-hop view), not the alias's view.
	if !c.DropView("CONN_2HOP_Job_Job") {
		t.Fatal("drop failed")
	}
	if _, ok := c.Get(khop.Name()); ok {
		t.Fatal("structural view survived a drop by its exact name")
	}
	if _, ok := c.Get(alias.View.Name()); !ok {
		t.Fatal("alias's view was evicted instead of the structural match")
	}
	// The alias still resolves its own view.
	if !c.DropView("CONN_2HOP_Job_Job") {
		t.Fatal("alias no longer resolves after the structural drop")
	}
	if len(c.ListViews()) != 0 {
		t.Fatalf("ListViews = %+v", c.ListViews())
	}
}

// TestPlanOnlyReturnsIdenticalPlanWithoutCounting pins the EXPLAIN
// contract: PlanOnly chooses exactly what Rewrite would, but neither the
// per-view hit counters nor the registry's hit/miss counters move.
func TestPlanOnlyReturnsIdenticalPlanWithoutCounting(t *testing.T) {
	c := ddlTestCatalog(t)
	r := metrics.NewRegistry()
	c.SetMetrics(r)
	if err := c.CreateView(khopDef(t, "jj"), 1); err != nil {
		t.Fatal(err)
	}
	q := gql.MustParse(blastRadius)
	for i := 0; i < 3; i++ {
		plan, err := c.PlanOnly(q)
		if err != nil {
			t.Fatal(err)
		}
		if plan.ViewName != "CONN_2HOP_Job_Job" {
			t.Fatalf("PlanOnly %d did not land on the connector: %+v", i, plan)
		}
	}
	if got := c.ListViews()[0].Hits; got != 0 {
		t.Errorf("PlanOnly bumped per-view hits: %d", got)
	}
	if s := r.Snapshot(); s.RewriteHits != 0 || s.RewriteMisses != 0 {
		t.Errorf("PlanOnly bumped registry counters: hits=%d misses=%d", s.RewriteHits, s.RewriteMisses)
	}

	// Same query through the counting entry point: identical plan, and
	// both counter families move in lockstep.
	planOnly, err := c.PlanOnly(q)
	if err != nil {
		t.Fatal(err)
	}
	counted, err := c.Rewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	if counted.ViewName != planOnly.ViewName || counted.Cost != planOnly.Cost {
		t.Errorf("Rewrite plan %+v differs from PlanOnly plan %+v", counted, planOnly)
	}
	if got := c.ListViews()[0].Hits; got != 1 {
		t.Errorf("hits after counted rewrite = %d, want 1", got)
	}
	if s := r.Snapshot(); s.RewriteHits != 1 {
		t.Errorf("registry hits = %d, want 1", s.RewriteHits)
	}

	// A base-graph decision is a miss on the counting path and nothing on
	// the plan-only path.
	q2 := gql.MustParse(`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`)
	if _, err := c.PlanOnly(q2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rewrite(q2); err != nil {
		t.Fatal(err)
	}
	if s := r.Snapshot(); s.RewriteMisses != 1 {
		t.Errorf("registry misses = %d, want 1", s.RewriteMisses)
	}
}

// TestEpochBumpsOnCompaction pins the compaction-granularity freshness
// signal: overlay mutations on the base graph leave the epoch alone
// (the snapshot tracks them through its tail, so cached plans stay
// valid), but folding the tail into a fresh CSR bumps it, refreshing
// prepared plans and response caches once per burst instead of per
// edge.
func TestEpochBumpsOnCompaction(t *testing.T) {
	c := ddlTestCatalog(t)
	base := c.Base
	base.Freeze()
	e0 := c.Epoch()
	jobs := base.VerticesOfType("Job")
	files := base.VerticesOfType("File")
	for i := 0; i < 5; i++ {
		base.MustAddEdge(jobs[i], files[i], "WRITES_TO", nil)
	}
	if c.Epoch() != e0 {
		t.Fatal("overlay mutations bumped the epoch")
	}
	if err := base.Compact(); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != e0+1 {
		t.Fatalf("Epoch after compaction = %d, want %d", c.Epoch(), e0+1)
	}
	// Views landing still bump it on top.
	if err := c.CreateView(khopDef(t, "jj"), 1); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != e0+2 {
		t.Fatalf("Epoch after CreateView = %d, want %d", c.Epoch(), e0+2)
	}
}
