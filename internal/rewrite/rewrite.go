// Package rewrite implements view-based query rewriting (§V-C): given a
// query and a connector view candidate anchored at two projected query
// variables, it replaces the path segment between the anchors with a
// traversal of the contracted connector edges, recomputing the
// variable-length bounds (the Listing 1 → Listing 4 transformation).
// Summarizer views keep the query text unchanged — the rewrite is the
// redirection of the query to the summarized graph — so for them this
// package only validates applicability.
package rewrite

import (
	"fmt"

	"kaskade/internal/constraints"
	"kaskade/internal/enum"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/views"
)

// step is one edge of the query's unified pattern graph, normalized to
// forward orientation.
type step struct {
	from, to string // vertex variable names
	fromType string
	toType   string
	edge     gql.EdgePattern
	pattern  int // index of the owning pattern (for reconstruction)
}

// OverKHopConnector rewrites q's innermost MATCH to traverse the k-hop
// connector view of the candidate instead of the base-graph path between
// cand.SrcVar and cand.DstVar. The rewritten query is meant to run
// against the materialized view graph.
//
// Bound arithmetic: if the consumed segment spans path lengths [L, U] in
// the base graph, the connector traversal spans [max(1, ⌈L/k⌉), ⌊U/k⌋]
// hops. (For the paper's Listing 1 — L=2, U=10, k=2 — this yields *1..5.)
func OverKHopConnector(q gql.Query, cand enum.Candidate) (gql.Query, error) {
	kc, ok := cand.View.(views.KHopConnector)
	if !ok {
		return nil, fmt.Errorf("rewrite: candidate %s is not a k-hop connector", cand.View.Name())
	}
	if cand.SrcVar == "" || cand.DstVar == "" {
		return nil, fmt.Errorf("rewrite: candidate %s has no anchor variables", cand.View.Name())
	}
	m := gql.InnermostMatch(q)
	if m == nil {
		return nil, fmt.Errorf("rewrite: query has no MATCH block")
	}
	steps, err := unifySteps(m)
	if err != nil {
		return nil, err
	}
	segment, err := chase(steps, cand.SrcVar, cand.DstVar)
	if err != nil {
		return nil, err
	}
	// Intermediate variables must not escape the segment.
	inner := make(map[string]bool)
	for _, s := range segment[:len(segment)-1] {
		inner[s.to] = true
	}
	for _, v := range constraints.ProjectedVars(m) {
		if inner[v] {
			return nil, fmt.Errorf("rewrite: intermediate variable %s is projected; cannot contract", v)
		}
	}
	if m.Where != nil {
		for _, v := range exprVars(m.Where) {
			if inner[v] {
				return nil, fmt.Errorf("rewrite: intermediate variable %s appears in WHERE; cannot contract", v)
			}
		}
	}
	// Hop-range arithmetic.
	lo, hi := 0, 0
	edgeVar := ""
	edgeVars := 0
	for _, s := range segment {
		lo += s.edge.MinHops
		if hi >= 0 {
			if s.edge.MaxHops < 0 {
				hi = -1
			} else {
				hi += s.edge.MaxHops
			}
		}
		if s.edge.Var != "" {
			edgeVar = s.edge.Var
			edgeVars++
		}
	}
	if hi < 0 {
		hi = constraints.DefaultMaxHops
	}
	newLo := (lo + kc.K - 1) / kc.K
	if newLo < 1 {
		newLo = 1
	}
	newHi := hi / kc.K
	if newHi < newLo {
		return nil, fmt.Errorf("rewrite: segment spans %d..%d hops; no multiple of k=%d fits", lo, hi, kc.K)
	}
	if edgeVars > 1 {
		return nil, fmt.Errorf("rewrite: segment binds %d edge variables; at most one survives contraction", edgeVars)
	}
	if edgeVar == "" {
		edgeVar = "r_conn"
	}

	// Rebuild the MATCH: surviving steps plus the connector pattern.
	consumed := make(map[*gql.EdgePattern]bool)
	for i := range segment {
		consumed[segment[i].edgeRef] = true
	}
	nm := &gql.MatchQuery{Where: m.Where, Return: m.Return}
	for _, s := range steps {
		if consumed[s.edgeRef] {
			continue
		}
		nm.Patterns = append(nm.Patterns, gql.PathPattern{
			Nodes: []gql.NodePattern{
				{Var: s.from, Type: s.fromType},
				{Var: s.to, Type: s.toType},
			},
			Edges: []gql.EdgePattern{s.edge},
		})
	}
	connEdge := gql.EdgePattern{
		Var:       edgeVar,
		Type:      kc.Name(),
		VarLength: true,
		MinHops:   newLo,
		MaxHops:   newHi,
	}
	if newLo == 1 && newHi == 1 {
		connEdge.VarLength = false
	}
	nm.Patterns = append(nm.Patterns, gql.PathPattern{
		Nodes: []gql.NodePattern{
			{Var: cand.SrcVar, Type: kc.SrcType},
			{Var: cand.DstVar, Type: kc.DstType},
		},
		Edges: []gql.EdgePattern{connEdge},
	})
	return gql.ReplaceInnermostMatch(q, nm), nil
}

// OverKHopConnectorExact is OverKHopConnector with a result-preservation
// guarantee: it additionally verifies, against the schema, that every
// schema-feasible path length in the consumed segment's span is a
// multiple of k, so that traversing the connector reaches exactly the
// pairs the base query reaches. (On the bipartite lineage schema the
// job-to-job feasible lengths are {2,4,...}, so only k=2 passes; on a
// homogeneous schema every k>1 is rejected because odd lengths exist —
// those rewritings are the paper's "approximate" homogeneous scenarios.)
func OverKHopConnectorExact(q gql.Query, cand enum.Candidate, schema *graph.Schema) (gql.Query, error) {
	kc, ok := cand.View.(views.KHopConnector)
	if !ok {
		return nil, fmt.Errorf("rewrite: candidate %s is not a k-hop connector", cand.View.Name())
	}
	rw, err := OverKHopConnector(q, cand)
	if err != nil {
		return nil, err
	}
	if schema == nil {
		return rw, nil
	}
	m := gql.InnermostMatch(q)
	steps, err := unifySteps(m)
	if err != nil {
		return nil, err
	}
	segment, err := chase(steps, cand.SrcVar, cand.DstVar)
	if err != nil {
		return nil, err
	}
	lo, hi := 0, 0
	for _, s := range segment {
		lo += s.edge.MinHops
		if s.edge.MaxHops < 0 {
			hi += constraints.DefaultMaxHops
		} else {
			hi += s.edge.MaxHops
		}
	}
	for _, l := range feasibleLengths(schema, kc.SrcType, kc.DstType, lo, hi) {
		if l%kc.K != 0 {
			return nil, fmt.Errorf("rewrite: schema allows a %d-hop %s->%s path, not expressible over the %d-hop connector",
				l, kc.SrcType, kc.DstType, kc.K)
		}
	}
	return rw, nil
}

// feasibleLengths returns the lengths in [lo, hi] for which the schema
// admits a directed path from srcType to dstType, by frontier expansion
// over the schema's type graph.
func feasibleLengths(schema *graph.Schema, srcType, dstType string, lo, hi int) []int {
	if srcType == "" || dstType == "" {
		// Untyped endpoints: every length is feasible.
		var all []int
		for l := max(lo, 1); l <= hi; l++ {
			all = append(all, l)
		}
		return all
	}
	var out []int
	frontier := map[string]bool{srcType: true}
	for l := 1; l <= hi; l++ {
		next := map[string]bool{}
		for t := range frontier {
			for _, et := range schema.EdgeTypesFrom(t) {
				next[et.To] = true
			}
		}
		frontier = next
		if l >= lo && l >= 1 && frontier[dstType] {
			out = append(out, l)
		}
		if len(frontier) == 0 {
			break
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ValidateOnSummarizer reports whether q can run unchanged against the
// materialization of the given summarizer view: every vertex type the
// query names must be kept, and every edge type must survive.
func ValidateOnSummarizer(q gql.Query, v views.View) error {
	m := gql.InnermostMatch(q)
	if m == nil {
		return fmt.Errorf("rewrite: query has no MATCH block")
	}
	keptV, removedV, keptE, removedE := summarizerEffect(v)
	for _, pat := range m.Patterns {
		for _, n := range pat.Nodes {
			if n.Type == "" {
				continue
			}
			if removedV[n.Type] {
				return fmt.Errorf("rewrite: query uses vertex type %s removed by %s", n.Type, v.Name())
			}
			if keptV != nil && !keptV[n.Type] {
				return fmt.Errorf("rewrite: query uses vertex type %s not kept by %s", n.Type, v.Name())
			}
		}
		for _, e := range pat.Edges {
			if e.Type == "" {
				continue
			}
			if removedE[e.Type] {
				return fmt.Errorf("rewrite: query uses edge type %s removed by %s", e.Type, v.Name())
			}
			if keptE != nil && !keptE[e.Type] {
				return fmt.Errorf("rewrite: query uses edge type %s not kept by %s", e.Type, v.Name())
			}
		}
	}
	return nil
}

func summarizerEffect(v views.View) (keptV, removedV, keptE, removedE map[string]bool) {
	toSet := func(ts []string) map[string]bool {
		s := make(map[string]bool, len(ts))
		for _, t := range ts {
			s[t] = true
		}
		return s
	}
	removedV = map[string]bool{}
	removedE = map[string]bool{}
	switch v := v.(type) {
	case views.VertexInclusionSummarizer:
		keptV = toSet(v.Types)
	case views.VertexRemovalSummarizer:
		removedV = toSet(v.Types)
	case views.EdgeInclusionSummarizer:
		keptE = toSet(v.Types)
	case views.EdgeRemovalSummarizer:
		removedE = toSet(v.Types)
	}
	return
}

// --- pattern graph helpers ---

// stepWithRef extends step with the identity of the original edge
// pattern, needed to mark steps consumed.
type stepRef struct {
	step
	edgeRef *gql.EdgePattern
}

// unifySteps flattens all patterns into forward-oriented steps. Anonymous
// vertices get synthesized names matching the constraint miner's.
func unifySteps(m *gql.MatchQuery) ([]stepRef, error) {
	var steps []stepRef
	for pi := range m.Patterns {
		pat := &m.Patterns[pi]
		names := make([]string, len(pat.Nodes))
		for ni, n := range pat.Nodes {
			if n.Var != "" {
				names[ni] = n.Var
			} else {
				names[ni] = fmt.Sprintf("anon_%d_%d", pi, ni)
			}
		}
		for ei := range pat.Edges {
			e := &pat.Edges[ei]
			s := stepRef{
				step: step{
					from:     names[ei],
					to:       names[ei+1],
					fromType: pat.Nodes[ei].Type,
					toType:   pat.Nodes[ei+1].Type,
					edge:     *e,
					pattern:  pi,
				},
				edgeRef: e,
			}
			if e.Reversed {
				s.from, s.to = s.to, s.from
				s.fromType, s.toType = s.toType, s.fromType
				s.edge.Reversed = false
			}
			steps = append(steps, s)
		}
	}
	return steps, nil
}

// chase walks the unique forward chain from src to dst through the step
// graph, returning the steps it consumed.
func chase(steps []stepRef, src, dst string) ([]stepRef, error) {
	out := make(map[string][]stepRef)
	for _, s := range steps {
		out[s.from] = append(out[s.from], s)
	}
	var segment []stepRef
	at := src
	seen := map[string]bool{src: true}
	for at != dst {
		nexts := out[at]
		if len(nexts) == 0 {
			return nil, fmt.Errorf("rewrite: no path from %s to %s in the query pattern", src, dst)
		}
		if len(nexts) > 1 {
			return nil, fmt.Errorf("rewrite: pattern branches at %s; cannot contract a unique segment", at)
		}
		s := nexts[0]
		segment = append(segment, s)
		at = s.to
		if seen[at] {
			return nil, fmt.Errorf("rewrite: pattern cycles at %s", at)
		}
		seen[at] = true
	}
	return segment, nil
}

func exprVars(e gql.Expr) []string {
	var out []string
	var walk func(gql.Expr)
	walk = func(e gql.Expr) {
		switch e := e.(type) {
		case *gql.Ident:
			out = append(out, e.Name)
		case *gql.PropAccess:
			out = append(out, e.Base)
		case *gql.BinaryExpr:
			walk(e.Left)
			walk(e.Right)
		case *gql.UnaryExpr:
			walk(e.Operand)
		case *gql.FuncCall:
			for _, a := range e.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}
