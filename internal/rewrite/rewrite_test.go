package rewrite

import (
	"strings"
	"testing"

	"kaskade/internal/datagen"
	"kaskade/internal/enum"
	"kaskade/internal/exec"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/views"
)

const blastRadius = `
SELECT A.pipelineName, AVG(T_CPU) FROM (
  SELECT A, SUM(B.CPU) AS T_CPU FROM (
    MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
          (q_f1:File)-[r*0..8]->(q_f2:File)
          (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
    RETURN q_j1 AS A, q_j2 AS B
  ) GROUP BY A, B
) GROUP BY A.pipelineName`

func lineageSchema() *graph.Schema {
	return graph.MustSchema(
		[]string{"Job", "File"},
		[]graph.EdgeType{
			{From: "Job", To: "File", Name: "WRITES_TO"},
			{From: "File", To: "Job", Name: "IS_READ_BY"},
		},
	)
}

func jobConnectorCandidate(k int) enum.Candidate {
	return enum.Candidate{
		View:     views.KHopConnector{SrcType: "Job", DstType: "Job", K: k},
		Template: "kHopConnector",
		SrcVar:   "q_j1",
		DstVar:   "q_j2",
		K:        k,
	}
}

// TestListing4Shape checks the Listing 1 -> Listing 4 transformation: the
// three-pattern chain collapses into a single job-to-job connector
// traversal with recomputed bounds (2..10 base hops -> 1..5 connector
// hops for k=2).
func TestListing4Shape(t *testing.T) {
	q := gql.MustParse(blastRadius)
	rw, err := OverKHopConnector(q, jobConnectorCandidate(2))
	if err != nil {
		t.Fatal(err)
	}
	m := gql.InnermostMatch(rw)
	if len(m.Patterns) != 1 {
		t.Fatalf("rewritten MATCH has %d patterns, want 1: %s", len(m.Patterns), rw)
	}
	p := m.Patterns[0]
	if p.Nodes[0].Var != "q_j1" || p.Nodes[1].Var != "q_j2" {
		t.Errorf("endpoints = %s, %s", p.Nodes[0].Var, p.Nodes[1].Var)
	}
	e := p.Edges[0]
	if e.Type != "CONN_2HOP_Job_Job" {
		t.Errorf("edge type = %s", e.Type)
	}
	if !e.VarLength || e.MinHops != 1 || e.MaxHops != 5 {
		t.Errorf("bounds = %d..%d (varlen=%v), want 1..5", e.MinHops, e.MaxHops, e.VarLength)
	}
	// The SELECT wrappers survive untouched.
	if !strings.Contains(rw.String(), "GROUP BY A.pipelineName") {
		t.Errorf("outer SELECT lost: %s", rw)
	}
	// The original query is unchanged.
	if strings.Contains(q.String(), "CONN_") {
		t.Error("rewrite mutated the original query")
	}
}

// TestRewriteEquivalence is the correctness core: the blast-radius query
// over the raw lineage graph and its rewriting over the materialized
// 2-hop connector produce identical results, on a randomized provenance
// graph.
func TestRewriteEquivalence(t *testing.T) {
	cfg := datagen.DefaultProvConfig()
	cfg.Jobs, cfg.Files, cfg.TasksPerJob, cfg.Machines, cfg.Users = 120, 250, 1, 5, 5
	cfg.MaxReads = 8
	raw, err := datagen.Prov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Filter to the lineage core first (as the paper's runtime
	// experiments do), then materialize the connector over it.
	filtered, err := views.VertexInclusionSummarizer{Types: []string{"Job", "File"}}.Materialize(raw)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := views.KHopConnector{SrcType: "Job", DstType: "Job", K: 2}.Materialize(filtered)
	if err != nil {
		t.Fatal(err)
	}

	q := gql.MustParse(blastRadius)
	rw, err := OverKHopConnector(q, jobConnectorCandidate(2))
	if err != nil {
		t.Fatal(err)
	}

	base, err := (&exec.Executor{G: filtered}).Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	over, err := (&exec.Executor{G: conn}).Execute(rw)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) != len(over.Rows) {
		t.Fatalf("row counts differ: base=%d rewritten=%d", len(base.Rows), len(over.Rows))
	}
	baseMap := resultMap(base)
	overMap := resultMap(over)
	for k, v := range baseMap {
		ov, ok := overMap[k]
		if !ok {
			t.Errorf("pipeline %s missing from rewritten result", k)
			continue
		}
		if diff := v - ov; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("pipeline %s: base=%v rewritten=%v", k, v, ov)
		}
	}
}

func resultMap(r *exec.Result) map[string]float64 {
	out := make(map[string]float64, len(r.Rows))
	for _, row := range r.Rows {
		key, _ := row[0].(string)
		switch v := row[1].(type) {
		case float64:
			out[key] = v
		case int64:
			out[key] = float64(v)
		}
	}
	return out
}

// TestEnumeratedCandidateRewrites ties enumeration and rewriting: every
// job-to-job k-hop candidate the enumerator emits for the blast radius
// query must be rewritable.
func TestEnumeratedCandidateRewrites(t *testing.T) {
	e := &enum.Enumerator{Schema: lineageSchema(), MaxK: 10}
	q := gql.MustParse(blastRadius)
	res, err := e.Enumerate(q)
	if err != nil {
		t.Fatal(err)
	}
	rewrites := 0
	for _, c := range res.Candidates {
		if c.Template != "kHopConnector" {
			continue
		}
		rw, err := OverKHopConnector(q, c)
		if err != nil {
			t.Errorf("candidate %s: %v", c.View.Name(), err)
			continue
		}
		rewrites++
		m := gql.InnermostMatch(rw)
		e := m.Patterns[len(m.Patterns)-1].Edges[0]
		// Bounds arithmetic: [max(1,ceil(2/k)), floor(10/k)].
		k := c.K
		wantLo, wantHi := (2+k-1)/k, 10/k
		if wantLo < 1 {
			wantLo = 1
		}
		if e.MinHops != wantLo || maxHops(e) != wantHi {
			t.Errorf("K=%d: bounds %d..%d, want %d..%d", k, e.MinHops, maxHops(e), wantLo, wantHi)
		}
	}
	if rewrites != 5 {
		t.Errorf("rewrote %d candidates, want 5 (K=2,4,6,8,10)", rewrites)
	}
}

func maxHops(e gql.EdgePattern) int {
	if !e.VarLength {
		return e.MinHops
	}
	return e.MaxHops
}

func TestRewritePreservesEdgeVarForPathFunctions(t *testing.T) {
	q := gql.MustParse(`MATCH (a:User)-[r*2..4]->(b:User) RETURN b, PATH_MAX(r, 'ts') AS m`)
	cand := enum.Candidate{
		View:   views.KHopConnector{SrcType: "User", DstType: "User", K: 2},
		SrcVar: "a", DstVar: "b", K: 2,
	}
	rw, err := OverKHopConnector(q, cand)
	if err != nil {
		t.Fatal(err)
	}
	m := gql.InnermostMatch(rw)
	if m.Patterns[0].Edges[0].Var != "r" {
		t.Errorf("edge var = %q, want r preserved", m.Patterns[0].Edges[0].Var)
	}
	if m.Patterns[0].Edges[0].MinHops != 1 || m.Patterns[0].Edges[0].MaxHops != 2 {
		t.Errorf("bounds = %d..%d, want 1..2", m.Patterns[0].Edges[0].MinHops, m.Patterns[0].Edges[0].MaxHops)
	}
}

func TestRewriteRejectsEscapingIntermediates(t *testing.T) {
	// q_f1 is projected, so the segment through it cannot be contracted.
	q := gql.MustParse(`MATCH (a:Job)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b, f`)
	cand := enum.Candidate{
		View:   views.KHopConnector{SrcType: "Job", DstType: "Job", K: 2},
		SrcVar: "a", DstVar: "b", K: 2,
	}
	if _, err := OverKHopConnector(q, cand); err == nil {
		t.Error("projected intermediate accepted")
	}
	// Same for WHERE references.
	q = gql.MustParse(`MATCH (a:Job)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(b:Job) WHERE f.size > 10 RETURN a, b`)
	if _, err := OverKHopConnector(q, cand); err == nil {
		t.Error("WHERE-referenced intermediate accepted")
	}
}

func TestRewriteInfeasibleBounds(t *testing.T) {
	// A 3-hop segment cannot be expressed over a 2-hop connector when
	// the range contains no multiple of 2... here 3..3.
	q := gql.MustParse(`MATCH (a:User)-[r*3..3]->(b:User) RETURN a, b`)
	cand := enum.Candidate{
		View:   views.KHopConnector{SrcType: "User", DstType: "User", K: 2},
		SrcVar: "a", DstVar: "b", K: 2,
	}
	if _, err := OverKHopConnector(q, cand); err == nil {
		t.Error("3..3 over k=2 accepted")
	}
}

func TestRewriteUnsupportedShapes(t *testing.T) {
	cand := enum.Candidate{
		View:   views.KHopConnector{SrcType: "Job", DstType: "Job", K: 2},
		SrcVar: "a", DstVar: "b", K: 2,
	}
	// Branching at a.
	q := gql.MustParse(`MATCH (a:Job)-[:W]->(x:File), (a:Job)-[:W]->(y:File)-[:R]->(b:Job) RETURN a, b`)
	if _, err := OverKHopConnector(q, cand); err == nil {
		t.Error("branching pattern accepted")
	}
	// No path between anchors.
	q = gql.MustParse(`MATCH (a:Job)-[:W]->(x:File) (b:Job)-[:W]->(y:File) RETURN a, b`)
	if _, err := OverKHopConnector(q, cand); err == nil {
		t.Error("disconnected anchors accepted")
	}
	// Wrong view type.
	bad := enum.Candidate{View: views.VertexInclusionSummarizer{Types: []string{"Job"}}}
	if _, err := OverKHopConnector(q, bad); err == nil {
		t.Error("summarizer accepted by connector rewriter")
	}
}

func TestValidateOnSummarizer(t *testing.T) {
	q := gql.MustParse(`MATCH (a:Job)-[:WRITES_TO]->(f:File) RETURN a, f`)
	if err := ValidateOnSummarizer(q, views.VertexInclusionSummarizer{Types: []string{"Job", "File"}}); err != nil {
		t.Errorf("valid summarizer rejected: %v", err)
	}
	if err := ValidateOnSummarizer(q, views.VertexInclusionSummarizer{Types: []string{"Job"}}); err == nil {
		t.Error("summarizer dropping File accepted for a File query")
	}
	if err := ValidateOnSummarizer(q, views.VertexRemovalSummarizer{Types: []string{"Task"}}); err != nil {
		t.Errorf("irrelevant removal rejected: %v", err)
	}
	if err := ValidateOnSummarizer(q, views.VertexRemovalSummarizer{Types: []string{"File"}}); err == nil {
		t.Error("removal of a used type accepted")
	}
	if err := ValidateOnSummarizer(q, views.EdgeRemovalSummarizer{Types: []string{"WRITES_TO"}}); err == nil {
		t.Error("removal of a used edge type accepted")
	}
	if err := ValidateOnSummarizer(q, views.EdgeInclusionSummarizer{Types: []string{"WRITES_TO"}}); err != nil {
		t.Errorf("edge inclusion keeping the used type rejected: %v", err)
	}
}

// TestReversedSegmentRewrite: a segment written with reversed arrows
// normalizes and contracts the same way.
func TestReversedSegmentRewrite(t *testing.T) {
	// (f)<-[:WRITES_TO]-(a:Job) is Job->File forward.
	q := gql.MustParse(`MATCH (f:File)<-[:WRITES_TO]-(a:Job) (f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b`)
	cand := enum.Candidate{
		View:   views.KHopConnector{SrcType: "Job", DstType: "Job", K: 2},
		SrcVar: "a", DstVar: "b", K: 2,
	}
	rw, err := OverKHopConnector(q, cand)
	if err != nil {
		t.Fatal(err)
	}
	m := gql.InnermostMatch(rw)
	if len(m.Patterns) != 1 {
		t.Fatalf("patterns = %d, want 1", len(m.Patterns))
	}
	e := m.Patterns[0].Edges[0]
	if e.VarLength || e.MinHops != 1 {
		t.Errorf("edge = %+v, want plain 1-hop connector edge", e)
	}
}
