package rewrite

import (
	"testing"

	"kaskade/internal/datagen"
	"kaskade/internal/enum"
	"kaskade/internal/gql"
	"kaskade/internal/views"
)

func TestExactAcceptsBipartiteK2(t *testing.T) {
	q := gql.MustParse(blastRadius)
	rw, err := OverKHopConnectorExact(q, jobConnectorCandidate(2), lineageSchema())
	if err != nil {
		t.Fatalf("k=2 should be exact on the bipartite schema: %v", err)
	}
	if rw == nil {
		t.Fatal("nil rewrite")
	}
}

func TestExactRejectsNonDividingK(t *testing.T) {
	q := gql.MustParse(blastRadius)
	// k=4 misses the 2, 6, and 10-hop job-job pairs.
	for _, k := range []int{4, 6, 8, 10} {
		if _, err := OverKHopConnectorExact(q, jobConnectorCandidate(k), lineageSchema()); err == nil {
			t.Errorf("k=%d accepted; feasible lengths {2,4,..,10} are not all multiples", k)
		}
	}
}

func TestExactRejectsHomogeneousK2(t *testing.T) {
	// On a homogeneous schema, odd path lengths are feasible, so k=2 is
	// approximate and must be rejected.
	q := gql.MustParse(`MATCH (a:User)-[r*1..4]->(b:User) RETURN a, b`)
	cand := enum.Candidate{
		View:   views.KHopConnector{SrcType: "User", DstType: "User", K: 2},
		SrcVar: "a", DstVar: "b", K: 2,
	}
	if _, err := OverKHopConnectorExact(q, cand, datagen.SocialSchema()); err == nil {
		t.Error("homogeneous k=2 rewrite accepted as exact")
	}
	// Without a schema the check is skipped (caller opts into
	// approximation).
	if _, err := OverKHopConnectorExact(q, cand, nil); err != nil {
		t.Errorf("nil-schema rewrite rejected: %v", err)
	}
}

func TestExactEvenOnlyQueryOnHomogeneous(t *testing.T) {
	// A query that only spans even hop counts is exactly rewritable
	// even on a homogeneous schema... but feasibleLengths includes the
	// odd lengths within [2,4], so it is still rejected — the guard is
	// conservative by design.
	q := gql.MustParse(`MATCH (a:User)-[r*2..4]->(b:User) RETURN a, b`)
	cand := enum.Candidate{
		View:   views.KHopConnector{SrcType: "User", DstType: "User", K: 2},
		SrcVar: "a", DstVar: "b", K: 2,
	}
	if _, err := OverKHopConnectorExact(q, cand, datagen.SocialSchema()); err == nil {
		t.Error("span containing odd feasible lengths accepted")
	}
}

func TestExactWrongViewKind(t *testing.T) {
	q := gql.MustParse(blastRadius)
	bad := enum.Candidate{View: views.VertexInclusionSummarizer{Types: []string{"Job"}}}
	if _, err := OverKHopConnectorExact(q, bad, lineageSchema()); err == nil {
		t.Error("summarizer accepted")
	}
}

func TestFeasibleLengths(t *testing.T) {
	s := lineageSchema()
	got := feasibleLengths(s, "Job", "Job", 1, 6)
	want := []int{2, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("feasibleLengths = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("feasibleLengths = %v, want %v", got, want)
		}
	}
	// Job -> File: odd lengths only.
	got = feasibleLengths(s, "Job", "File", 1, 5)
	want = []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Job->File = %v, want %v", got, want)
		}
	}
	// Untyped endpoints: every length.
	got = feasibleLengths(s, "", "File", 2, 4)
	if len(got) != 3 {
		t.Errorf("untyped = %v", got)
	}
	// Unreachable type pair: none.
	s2 := datagen.ProvSchema()
	if got := feasibleLengths(s2, "Machine", "Job", 1, 8); len(got) != 0 {
		t.Errorf("Machine->Job = %v, want none (machines have no out-edges)", got)
	}
}

func TestRewriteBareVarLengthNoFixedEdges(t *testing.T) {
	// Segment is a single var-length edge with no fixed edges around it
	// (the Q2/Q3 shape); bounds divide directly.
	q := gql.MustParse(`MATCH (a:Job)-[r*2..10]->(b:Job) RETURN a, b`)
	cand := jobConnectorCandidate(2)
	cand.SrcVar, cand.DstVar = "a", "b"
	rw, err := OverKHopConnector(q, cand)
	if err != nil {
		t.Fatal(err)
	}
	e := gql.InnermostMatch(rw).Patterns[0].Edges[0]
	if e.MinHops != 1 || e.MaxHops != 5 {
		t.Errorf("bounds = %d..%d, want 1..5", e.MinHops, e.MaxHops)
	}
}

func TestRewriteUnboundedUpperCapped(t *testing.T) {
	// -[*2..]-> has no upper bound; the rewriter caps at the mined
	// default (10) before dividing.
	q := gql.MustParse(`MATCH (a:Job)-[r*2..]->(b:Job) RETURN a, b`)
	cand := jobConnectorCandidate(2)
	cand.SrcVar, cand.DstVar = "a", "b"
	rw, err := OverKHopConnector(q, cand)
	if err != nil {
		t.Fatal(err)
	}
	e := gql.InnermostMatch(rw).Patterns[0].Edges[0]
	if e.MaxHops != 5 {
		t.Errorf("capped upper = %d, want 5", e.MaxHops)
	}
}

func TestRewriteKeepsUnrelatedPatterns(t *testing.T) {
	// A second, disjoint pattern must survive the rewrite untouched.
	q := gql.MustParse(`
		MATCH (a:Job)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(b:Job),
		      (x:Job)-[:WRITES_TO]->(y:File)
		RETURN a, b, x, y`)
	cand := jobConnectorCandidate(2)
	cand.SrcVar, cand.DstVar = "a", "b"
	rw, err := OverKHopConnector(q, cand)
	if err != nil {
		t.Fatal(err)
	}
	m := gql.InnermostMatch(rw)
	if len(m.Patterns) != 2 {
		t.Fatalf("patterns = %d, want 2 (survivor + connector)", len(m.Patterns))
	}
	// The survivor still mentions WRITES_TO.
	found := false
	for _, p := range m.Patterns {
		for _, e := range p.Edges {
			if e.Type == "WRITES_TO" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("unrelated pattern lost: %s", rw)
	}
}
