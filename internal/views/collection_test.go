package views

import (
	"fmt"
	"math/rand"
	"testing"

	"kaskade/internal/graph"
)

// TestMaintainedCollectionMatchesRematerialization drives random
// mutations through a k=1..3 collection and checks each member view,
// at every step, against a from-scratch materialization — the chained
// maintenance must be invisible next to independent maintenance.
func TestMaintainedCollectionMatchesRematerialization(t *testing.T) {
	def := KHopConnector{K: 3}
	base := graph.NewGraph(nil)
	c, err := NewMaintainedCollection(def, base)
	if err != nil {
		t.Fatal(err)
	}
	var ids []graph.VertexID
	for i := 0; i < 8; i++ {
		id, err := c.AddVertex("V", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	rng := rand.New(rand.NewSource(13))
	for step := 0; step < 40; step++ {
		a, b := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if a == b {
			continue
		}
		if _, err := c.AddEdge(a, b, "E", graph.Properties{"ts": int64(step)}); err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 3; k++ {
			dk := def
			dk.K = k
			fresh, err := dk.Materialize(c.Base())
			if err != nil {
				t.Fatal(err)
			}
			sameFingerprint(t, viewFingerprint(c.View(k)), viewFingerprint(fresh),
				fmt.Sprintf("k=%d after step %d", k, step))
		}
	}
	for k := 1; k <= 3; k++ {
		if c.View(k).NumEdges() == 0 {
			t.Fatalf("k=%d view empty; test exercised nothing", k)
		}
	}
}

// TestMaintainedCollectionTypedEndpoints runs the chain with endpoint
// types and an edge filter over a bipartite lineage shape.
func TestMaintainedCollectionTypedEndpoints(t *testing.T) {
	schema := graph.MustSchema(
		[]string{"Job", "File"},
		[]graph.EdgeType{
			{From: "Job", To: "File", Name: "W"},
			{From: "File", To: "Job", Name: "R"},
		},
	)
	def := KHopConnector{SrcType: "Job", DstType: "Job", K: 2, EdgeTypes: []string{"W", "R"}}
	base := graph.NewGraph(schema)
	c, err := NewMaintainedCollection(def, base)
	if err != nil {
		t.Fatal(err)
	}
	var jobs, files []graph.VertexID
	for i := 0; i < 6; i++ {
		j, err := c.AddVertex("Job", nil)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		f, err := c.AddVertex("File", nil)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	rng := rand.New(rand.NewSource(21))
	for step := 0; step < 30; step++ {
		var err error
		if rng.Intn(2) == 0 {
			_, err = c.AddEdge(jobs[rng.Intn(len(jobs))], files[rng.Intn(len(files))], "W",
				graph.Properties{"ts": int64(step)})
		} else {
			_, err = c.AddEdge(files[rng.Intn(len(files))], jobs[rng.Intn(len(jobs))], "R",
				graph.Properties{"ts": int64(step)})
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for k := 1; k <= 2; k++ {
		dk := def
		dk.K = k
		fresh, err := dk.Materialize(c.Base())
		if err != nil {
			t.Fatal(err)
		}
		sameFingerprint(t, viewFingerprint(c.View(k)), viewFingerprint(fresh),
			fmt.Sprintf("typed k=%d final", k))
	}
}

func TestMaintainedCollectionRejectsDedup(t *testing.T) {
	if _, err := NewMaintainedCollection(KHopConnector{K: 2, DedupPairs: true}, graph.NewGraph(nil)); err == nil {
		t.Error("DedupPairs collection should be rejected")
	}
	if _, err := NewMaintainedCollection(KHopConnector{K: 0}, graph.NewGraph(nil)); err == nil {
		t.Error("K=0 collection should be rejected")
	}
}
