package views

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"kaskade/internal/graph"
)

// compileCases pairs every Table I/II view class with its canonical
// defining pattern. The same table drives the classification test, the
// canonical round-trip test, and the materialization equivalence suite.
var compileCases = []struct {
	name string
	src  string
	want View
}{
	{"khop", `MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y`,
		KHopConnector{SrcType: "Job", DstType: "Job", K: 2}},
	{"khop-any", `MATCH (x)-[p*3..3]->(y) RETURN x, y`,
		KHopConnector{K: 3}},
	{"khop-edge-typed", `MATCH (x:Job)-[p:W*2..2]->(y:Job) RETURN x, y`,
		KHopConnector{SrcType: "Job", DstType: "Job", K: 2, EdgeTypes: []string{"W"}}},
	{"same-vertex-type", `MATCH (x:Author)-[p*1..4]->(y:Author) RETURN x, y`,
		SameVertexTypeConnector{VType: "Author", MaxLen: 4}},
	{"same-edge-type", `MATCH (x)-[p:T*1..5]->(y) RETURN x, y`,
		SameEdgeTypeConnector{EType: "T", MaxLen: 5}},
	{"source-to-sink", `MATCH (x)-[p*1..6]->(y) WHERE INDEGREE(x) = 0 AND OUTDEGREE(y) = 0 RETURN x, y`,
		SourceToSinkConnector{MaxLen: 6}},
	{"vertex-inclusion", `MATCH (v) WHERE LABEL(v) = 'File' OR LABEL(v) = 'Job' RETURN v`,
		VertexInclusionSummarizer{Types: []string{"File", "Job"}}},
	{"vertex-removal", `MATCH (v) WHERE NOT (LABEL(v) = 'Task') RETURN v`,
		VertexRemovalSummarizer{Types: []string{"Task"}}},
	{"edge-inclusion", `MATCH (x)-[e]->(y) WHERE TYPE(e) = 'R' OR TYPE(e) = 'W' RETURN x, e, y`,
		EdgeInclusionSummarizer{Types: []string{"R", "W"}}},
	{"edge-removal", `MATCH (x)-[e]->(y) WHERE NOT (TYPE(e) = 'W') RETURN x, e, y`,
		EdgeRemovalSummarizer{Types: []string{"W"}}},
	{"vertex-aggregator", `MATCH (v:Job) RETURN v.pipeline, COUNT(v), MAX(v.ts), SUM(v.cpu)`,
		VertexAggregatorSummarizer{VType: "Job", GroupBy: "pipeline", Aggs: map[string]AggFunc{"cpu": AggSum, "ts": AggMax}}},
	{"edge-aggregator", `MATCH (x)-[e:W]->(y) RETURN x, y, COUNT(e), SUM(e.ts)`,
		EdgeAggregatorSummarizer{EType: "W", Aggs: map[string]AggFunc{"ts": AggSum}}},
	{"edge-aggregator-any", `MATCH (x)-[e]->(y) RETURN x, y, COUNT(e)`,
		EdgeAggregatorSummarizer{}},
	{"subgraph-aggregator", `MATCH (v:Job)-[e]->(w:Job) WHERE v.pipeline = w.pipeline RETURN v.pipeline, COUNT(v)`,
		SubgraphAggregatorSummarizer{VType: "Job", GroupBy: "pipeline"}},
}

func TestCompilePatternClasses(t *testing.T) {
	for _, tc := range compileCases {
		v, err := Compile(tc.src)
		if err != nil {
			t.Errorf("%s: Compile(%q): %v", tc.name, tc.src, err)
			continue
		}
		if !reflect.DeepEqual(v, tc.want) {
			t.Errorf("%s: Compile(%q) = %#v, want %#v", tc.name, tc.src, v, tc.want)
		}
	}
}

// TestCanonicalPatternRoundTrip pins the inverse pair: rendering a
// view's canonical pattern and compiling it yields the view back, for
// every class.
func TestCanonicalPatternRoundTrip(t *testing.T) {
	for _, tc := range compileCases {
		pat, err := CanonicalPattern(tc.want)
		if err != nil {
			t.Errorf("%s: CanonicalPattern: %v", tc.name, err)
			continue
		}
		back, err := Compile(pat)
		if err != nil {
			t.Errorf("%s: canonical pattern %q does not compile: %v", tc.name, pat, err)
			continue
		}
		if !reflect.DeepEqual(back, tc.want) {
			t.Errorf("%s: round trip %q = %#v, want %#v", tc.name, pat, back, tc.want)
		}
		// Cypher() is the canonical pattern for DDL-expressible views.
		if got := tc.want.Cypher(); got != pat {
			t.Errorf("%s: Cypher() = %q, canonical = %q", tc.name, got, pat)
		}
	}
}

func TestCanonicalPatternEscapeHatches(t *testing.T) {
	// Options outside the DDL surface refuse a canonical pattern
	// instead of rendering something that compiles to a different view.
	for _, v := range []View{
		KHopConnector{SrcType: "Job", DstType: "Job", K: 2, DedupPairs: true},
		KHopConnector{K: 2, EdgeTypes: []string{"A", "B"}},
		SameVertexTypeConnector{VType: "V", MaxLen: 3, DedupPairs: true},
		SameEdgeTypeConnector{EType: "E", MaxLen: 3, DedupPairs: true},
		SourceToSinkConnector{MaxLen: 3, DedupPairs: true},
	} {
		if pat, err := CanonicalPattern(v); err == nil {
			t.Errorf("%s: CanonicalPattern = %q, want error", v.Name(), pat)
		}
		// Cypher still renders display text.
		if v.Cypher() == "" {
			t.Errorf("%s: Cypher fallback is empty", v.Name())
		}
	}
	// Define carries the DDL only where derivable.
	if d := Define(KHopConnector{K: 2, DedupPairs: true}); d.DDL != "" {
		t.Errorf("Define(DedupPairs).DDL = %q, want empty", d.DDL)
	}
	d := Define(KHopConnector{SrcType: "Job", DstType: "Job", K: 2})
	if d.Name != "CONN_2HOP_Job_Job" || !strings.HasPrefix(d.DDL, "CREATE MATERIALIZED VIEW CONN_2HOP_Job_Job AS MATCH") {
		t.Errorf("Define = %+v", d)
	}
}

func TestCompilePatternErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring of the error
	}{
		{`SELECT a FROM (MATCH (a) RETURN a)`, "bare MATCH pattern"},
		{`MATCH (a)-[p*]->(b) RETURN a, b`, "bounded hop range"},
		{`MATCH (a)-[p*2..4]->(b) RETURN a, b`, "outside the Table I/II view inventory"},
		{`MATCH (a:X)-[p*1..4]->(b:Y) RETURN a, b`, "outside the Table I/II view inventory"},
		{`MATCH (a)<-[p*2..2]-(b) RETURN a, b`, "reversed"},
		{`MATCH (a)-[p*2..2]->(b) RETURN a`, "RETURN exactly a, b"},
		{`MATCH (a)-[p*2..2]->(b) RETURN b, a`, "RETURN exactly a, b"},
		{`MATCH (a)-[p*2..2]->(b)-[q*2..2]->(c) RETURN a, c`, "3-node path"},
		{`MATCH (a)-[p*2..2]->(b) (c)-[q*2..2]->(d) RETURN a, b`, "2-pattern MATCH"},
		{`MATCH (a)-[p*1..4]->(b) WHERE INDEGREE(a) = 0 RETURN a, b`, "INDEGREE"},
		{`MATCH (a)-[p*1..4]->(b) WHERE INDEGREE(a) = 1 AND OUTDEGREE(b) = 0 RETURN a, b`, "INDEGREE"},
		{`MATCH (v) WHERE v.kind = 'x' RETURN v`, "LABEL(v)"},
		{`MATCH (v) WHERE LABEL(v) = 'A' AND LABEL(v) = 'B' RETURN v`, "operator AND"},
		{`MATCH (v) WHERE LABEL(v) = 7 RETURN v`, "string literal"},
		{`MATCH (v) RETURN v`, "untyped vertex pattern"},
		{`MATCH (v:Job) RETURN v.g`, "COUNT"},
		{`MATCH (v:Job) RETURN v.g, COUNT(*)`, "COUNT(v)"},
		{`MATCH (v:Job) RETURN v.g, COUNT(v), FOO(v.x)`, "unknown aggregation function"},
		{`MATCH (v:Job) RETURN v.g, COUNT(v), SUM(w.x)`, "properties of v"},
		{`MATCH (v:Job) RETURN v.g, COUNT(v), SUM(v.x), MAX(v.x)`, "aggregated twice"},
		{`MATCH (x)-[]->(y) RETURN x, y`, "anonymous edge"},
		{`MATCH (x)-[e]->(y) RETURN x, y`, "without a filter or aggregation"},
		{`MATCH (x:A)-[e]->(y:B) WHERE x.g = y.g RETURN x.g, COUNT(x)`, "not one vertex type"},
		{`MATCH (x:A)-[e]->(y:A) WHERE x.g = y.h RETURN x.g, COUNT(x)`, "typed pattern with an edge WHERE filter"},
	}
	for _, tc := range cases {
		_, err := Compile(tc.src)
		if err == nil {
			t.Errorf("Compile(%q): want error, got nil", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Compile(%q) error %q does not mention %q", tc.src, err, tc.want)
		}
	}
}

// defTestGraph builds a small heterogeneous graph with enough type and
// property variety to exercise every view class.
func defTestGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.NewGraph(nil)
	type vspec struct {
		typ   string
		props graph.Properties
	}
	var ids []graph.VertexID
	for i, vs := range []vspec{
		{"Job", graph.Properties{"pipeline": "p1", "cpu": int64(10), "ts": int64(3)}},
		{"Job", graph.Properties{"pipeline": "p1", "cpu": int64(20), "ts": int64(9)}},
		{"Job", graph.Properties{"pipeline": "p2", "cpu": int64(5), "ts": int64(1)}},
		{"File", graph.Properties{"sz": int64(1)}},
		{"File", graph.Properties{"sz": int64(2)}},
		{"Task", graph.Properties{}},
		{"Author", graph.Properties{}},
		{"Author", graph.Properties{}},
	} {
		id, err := g.AddVertex(vs.typ, vs.props)
		if err != nil {
			t.Fatalf("vertex %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	type espec struct {
		from, to int
		typ      string
		ts       int64
	}
	for i, es := range []espec{
		{0, 3, "W", 1}, {3, 1, "R", 2}, {1, 4, "W", 3}, {4, 2, "R", 4},
		{0, 4, "W", 5}, {2, 5, "T", 6}, {5, 0, "T", 7},
		{6, 3, "T", 8}, {3, 7, "T", 9}, {0, 1, "W", 10}, {0, 1, "W", 11},
		{7, 6, "R", 12},
	} {
		if _, err := g.AddEdge(ids[es.from], ids[es.to], es.typ, graph.Properties{"ts": es.ts}); err != nil {
			t.Fatalf("edge %d: %v", i, err)
		}
	}
	return g
}

// graphBytes serializes a graph for byte-identity comparison.
func graphBytes(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := graph.Save(&b, g); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestDDLMaterializationEquivalence is the round-trip equivalence
// suite: for every view class, the DDL-compiled view must materialize a
// view graph byte-identical to the struct-built equivalent, sequential
// and parallel.
func TestDDLMaterializationEquivalence(t *testing.T) {
	g := defTestGraph(t)
	for _, tc := range compileCases {
		compiled, err := Compile(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		wantG, err := tc.want.Materialize(g)
		if err != nil {
			t.Fatalf("%s: struct materialize: %v", tc.name, err)
		}
		want := graphBytes(t, wantG)
		for _, workers := range []int{1, 4} {
			var gotG *graph.Graph
			if pv, ok := compiled.(ParallelView); ok {
				gotG, err = pv.MaterializeParallel(g, workers)
			} else if workers == 1 {
				gotG, err = compiled.Materialize(g)
			} else {
				continue // summarizers materialize sequentially
			}
			if err != nil {
				t.Fatalf("%s w=%d: ddl materialize: %v", tc.name, workers, err)
			}
			if got := graphBytes(t, gotG); !bytes.Equal(got, want) {
				t.Errorf("%s w=%d: DDL-built view graph differs from struct-built", tc.name, workers)
			}
		}
	}
}
