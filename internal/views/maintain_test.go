package views

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"kaskade/internal/graph"
)

// viewFingerprint summarizes a connector view's edge multiset
// independently of insertion order.
func viewFingerprint(g *graph.Graph) []string {
	var out []string
	g.EachEdge(func(e *graph.Edge) {
		out = append(out, fmt.Sprintf("%d->%d ts=%v hops=%v", e.From, e.To, e.Prop("ts"), e.Prop("hops")))
	})
	sort.Strings(out)
	return out
}

func sameFingerprint(t *testing.T, a, b []string, context string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d view edges", context, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: edge %d differs: %q vs %q", context, i, a[i], b[i])
		}
	}
}

// TestMaintainedConnectorMatchesRematerialization drives a random
// lineage DAG edge by edge through the maintainer and checks, at every
// step, that the incrementally maintained view equals a from-scratch
// materialization.
func TestMaintainedConnectorMatchesRematerialization(t *testing.T) {
	schema := graph.MustSchema(
		[]string{"Job", "File"},
		[]graph.EdgeType{
			{From: "Job", To: "File", Name: "W"},
			{From: "File", To: "Job", Name: "R"},
		},
	)
	def := KHopConnector{SrcType: "Job", DstType: "Job", K: 2}
	base := graph.NewGraph(schema)
	m, err := NewMaintainedConnector(def, base)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(77))
	var jobs, files []graph.VertexID
	for i := 0; i < 12; i++ {
		j, err := m.AddVertex("Job", graph.Properties{"name": fmt.Sprintf("j%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		f, err := m.AddVertex("File", nil)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	for step := 0; step < 60; step++ {
		var err error
		if rng.Intn(2) == 0 {
			j := jobs[rng.Intn(len(jobs))]
			f := files[rng.Intn(len(files))]
			_, err = m.AddEdge(j, f, "W", graph.Properties{"ts": int64(step)})
		} else {
			f := files[rng.Intn(len(files))]
			j := jobs[rng.Intn(len(jobs))]
			_, err = m.AddEdge(f, j, "R", graph.Properties{"ts": int64(step)})
		}
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := def.Materialize(m.Base())
		if err != nil {
			t.Fatal(err)
		}
		sameFingerprint(t, viewFingerprint(m.View()), viewFingerprint(fresh),
			fmt.Sprintf("after step %d", step))
	}
	if m.View().NumEdges() == 0 {
		t.Fatal("maintained view never gained an edge; test exercised nothing")
	}
}

// TestMaintainedConnectorK3 checks a longer contraction on a homogeneous
// graph, where a new edge can sit at any of three positions in a path.
func TestMaintainedConnectorK3(t *testing.T) {
	def := KHopConnector{K: 3}
	base := graph.NewGraph(nil)
	m, err := NewMaintainedConnector(def, base)
	if err != nil {
		t.Fatal(err)
	}
	var ids []graph.VertexID
	for i := 0; i < 8; i++ {
		id, err := m.AddVertex("V", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 40; step++ {
		a, b := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if a == b {
			continue
		}
		if _, err := m.AddEdge(a, b, "E", graph.Properties{"ts": int64(step)}); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := def.Materialize(m.Base())
	if err != nil {
		t.Fatal(err)
	}
	sameFingerprint(t, viewFingerprint(m.View()), viewFingerprint(fresh), "k=3 final")
	if m.View().NumEdges() == 0 {
		t.Fatal("k=3 view empty")
	}
}

func TestMaintainedConnectorEdgeTypeFilter(t *testing.T) {
	def := KHopConnector{K: 2, EdgeTypes: []string{"E"}}
	base := graph.NewGraph(nil)
	m, err := NewMaintainedConnector(def, base)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m.AddVertex("V", nil)
	b, _ := m.AddVertex("V", nil)
	c, _ := m.AddVertex("V", nil)
	if _, err := m.AddEdge(a, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	// An edge of a filtered-out type contributes no paths.
	if _, err := m.AddEdge(b, c, "OTHER", nil); err != nil {
		t.Fatal(err)
	}
	if m.View().NumEdges() != 0 {
		t.Errorf("filtered edge created %d connector edges", m.View().NumEdges())
	}
	if _, err := m.AddEdge(b, c, "E", nil); err != nil {
		t.Fatal(err)
	}
	if m.View().NumEdges() != 1 {
		t.Errorf("connector edges = %d, want 1", m.View().NumEdges())
	}
}

func TestMaintainedConnectorRejectsDedup(t *testing.T) {
	if _, err := NewMaintainedConnector(KHopConnector{K: 2, DedupPairs: true}, graph.NewGraph(nil)); err == nil {
		t.Error("DedupPairs maintenance should be rejected")
	}
}

// TestMaintainedNoOpMutationKeepsFrozen is the regression test for the
// refreeze bug: a mutation the view filters out (wrong edge type,
// non-endpoint vertex type) used to invalidate the cached Frozen of
// BOTH graphs, forcing two O(V+E) rebuilds for a no-op. With
// delta-overlay storage the base mutation lands in the base snapshot's
// tail and the view's snapshot is untouched — no rebuild on either
// side, and the view snapshot needs no overlay at all.
func TestMaintainedNoOpMutationKeepsFrozen(t *testing.T) {
	def := KHopConnector{SrcType: "Job", DstType: "Job", K: 2, EdgeTypes: []string{"W", "R"}}
	schema := graph.MustSchema(
		[]string{"Job", "File", "Machine"},
		[]graph.EdgeType{
			{From: "Job", To: "File", Name: "W"},
			{From: "File", To: "Job", Name: "R"},
			{From: "Job", To: "Machine", Name: "RUNS_ON"},
		},
	)
	base := graph.NewGraph(schema)
	m, err := NewMaintainedConnector(def, base)
	if err != nil {
		t.Fatal(err)
	}
	j, _ := m.AddVertex("Job", nil)
	if _, err := m.AddVertex("File", nil); err != nil {
		t.Fatal(err)
	}
	bf := base.Freeze()
	vf := m.View().Freeze()
	builds := graph.CSRBuilds()

	// Non-endpoint vertex type: mirrored nowhere.
	mach, err := m.AddVertex("Machine", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Filtered edge type: can never contribute a contracted path.
	if _, err := m.AddEdge(j, mach, "RUNS_ON", nil); err != nil {
		t.Fatal(err)
	}
	if base.CachedFrozen() != bf {
		t.Fatal("no-op mutation dropped the base snapshot")
	}
	if m.View().CachedFrozen() != vf {
		t.Fatal("no-op mutation dropped the view snapshot")
	}
	if _, te := vf.TailSize(); te != 0 || vf.NumEdges() != 0 {
		t.Fatal("no-op mutation reached the view")
	}
	if got := graph.CSRBuilds(); got != builds {
		t.Fatalf("no-op mutation rebuilt a CSR (%d builds)", got-builds)
	}
	// The base snapshot sees the mutation through its tail.
	if bf.NumEdges() != 1 || bf.NumVertices() != 3 {
		t.Fatalf("base snapshot stale: |V|=%d |E|=%d", bf.NumVertices(), bf.NumEdges())
	}
}
