package views

import (
	"fmt"
	"runtime"

	"kaskade/internal/graph"
	"kaskade/internal/par"
)

// KHopConnector contracts every k-length (edge-unique) path between a
// vertex of SrcType and a vertex of DstType into a single edge (Table I,
// "k-hop connector"; Fig. 3's running example is the job-to-job K=2
// instance). An empty SrcType/DstType matches any vertex type
// (vertex-to-vertex connectors on homogeneous graphs).
type KHopConnector struct {
	SrcType string
	DstType string
	K       int
	// EdgeTypes restricts which edge types paths may traverse (nil = any).
	EdgeTypes []string
	// DedupPairs collapses parallel connector edges (one edge per
	// reachable pair instead of one per path).
	DedupPairs bool
}

var _ EstimatableView = KHopConnector{}
var _ ParallelView = KHopConnector{}

// Name returns the connector's identifier, which doubles as the
// contracted edge's type, e.g. CONN_2HOP_Job_Job.
func (c KHopConnector) Name() string {
	st, dt := c.SrcType, c.DstType
	if st == "" {
		st = "ANY"
	}
	if dt == "" {
		dt = "ANY"
	}
	return fmt.Sprintf("CONN_%dHOP_%s_%s", c.K, st, dt)
}

// Kind reports connector.
func (c KHopConnector) Kind() Kind { return KindConnector }

// PathLength returns k.
func (c KHopConnector) PathLength() int { return c.K }

// Describe returns a Table I style description.
func (c KHopConnector) Describe() string {
	return fmt.Sprintf("%d-hop connector %s->%s (one edge per contracted %d-length path)",
		c.K, orAny(c.SrcType), orAny(c.DstType), c.K)
}

// Cypher renders the defining pattern.
func (c KHopConnector) Cypher() string {
	return fmt.Sprintf("MATCH (x%s)-[p*%d..%d]->(y%s) RETURN x, y",
		colonType(c.SrcType), c.K, c.K, colonType(c.DstType))
}

// Materialize builds the connector view graph: all vertices of the
// endpoint types plus one contracted edge per k-length path. The
// contracted edge aggregates path properties: ts = max constituent ts
// (so per-path max-timestamp queries keep working), hops = k.
func (c KHopConnector) Materialize(g *graph.Graph) (*graph.Graph, error) {
	return c.MaterializeParallel(g, 1)
}

// sourceChunkTarget is the number of source chunks created per worker
// during parallel materialization: enough over-decomposition that fast
// workers steal the tail when hub sources concentrate the path count.
const sourceChunkTarget = 16

// connEdge is one contracted edge found by the per-source path search,
// already in view-graph coordinates, buffered until the ordered merge.
type connEdge struct {
	from, to graph.VertexID
	ts       int64
}

// MaterializeParallel is Materialize with the per-source DFS fan-out
// spread over up to `workers` goroutines (0 or 1 = sequential,
// negative = one per available CPU). Sources are partitioned into
// contiguous chunks; each worker enumerates its chunk's k-length paths
// into a buffer, and the buffers are appended to the view graph in
// source order — so edge insertion order, pair dedup, and therefore
// the whole view graph are byte-identical to the sequential build.
func (c KHopConnector) MaterializeParallel(g *graph.Graph, workers int) (*graph.Graph, error) {
	if c.K < 1 {
		return nil, fmt.Errorf("views: k-hop connector needs K >= 1, got %d", c.K)
	}
	if err := validateTypes(g, c.SrcType, c.DstType); err != nil {
		return nil, err
	}
	schema, err := connectorSchema(g, c.SrcType, c.DstType, c.Name())
	if err != nil {
		return nil, err
	}
	out := graph.NewGraph(schema)
	var keepTypes []string
	if c.SrcType != "" && c.DstType != "" {
		keepTypes = []string{c.SrcType, c.DstType}
	}
	remap, err := copyVerticesOfTypes(g, out, keepTypes)
	if err != nil {
		return nil, err
	}

	allowEdge := edgeTypeFilter(c.EdgeTypes)
	sources := sourceIDs(g, c.SrcType)
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	seenPair := make(map[[2]graph.VertexID]bool)
	addEdge := func(from, to graph.VertexID, ts int64) error {
		if c.DedupPairs {
			key := [2]graph.VertexID{from, to}
			if seenPair[key] {
				return nil
			}
			seenPair[key] = true
		}
		_, err := out.AddEdge(from, to, c.Name(), graph.Properties{
			"ts":   ts,
			"hops": int64(c.K),
		})
		return err
	}

	if workers <= 1 || len(sources) < 2 {
		used := make(map[graph.EdgeID]bool)
		for _, s := range sources {
			err := c.pathsFrom(g, s, allowEdge, used, func(at graph.VertexID, ts int64) error {
				return addEdge(remap[s], remap[at], ts)
			})
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	// Parallel fan-out: workers enumerate paths into per-chunk buffers
	// (the base graph and remap table are read-only by now), then the
	// calling goroutine merges buffers in chunk order. Only the merge
	// touches the view graph, so AddEdge needs no locking and the
	// dedup set sees pairs in exactly the sequential order.
	chunkSize, numChunks := par.Chunks(len(sources), workers, sourceChunkTarget)
	chunks := make([][]connEdge, numChunks)
	par.Do(numChunks, workers, func(next func() (int, bool)) {
		// One edge-uniqueness set per worker, drained between sources.
		used := make(map[graph.EdgeID]bool)
		for {
			ci, ok := next()
			if !ok {
				return
			}
			lo := ci * chunkSize
			hi := min(lo+chunkSize, len(sources))
			var buf []connEdge
			for _, s := range sources[lo:hi] {
				// The buffering emit cannot fail; pathsFrom only
				// propagates emit errors.
				_ = c.pathsFrom(g, s, allowEdge, used, func(at graph.VertexID, ts int64) error {
					buf = append(buf, connEdge{from: remap[s], to: remap[at], ts: ts})
					return nil
				})
			}
			chunks[ci] = buf
		}
	})
	for _, buf := range chunks {
		for _, e := range buf {
			if err := addEdge(e.from, e.to, e.ts); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// pathsFrom runs the edge-unique DFS enumerating every k-length path
// from s whose hops satisfy the connector's edge filter, calling emit
// with each path's endpoint and aggregated max timestamp, in DFS
// (= sequential materialization) order. used must be empty on entry
// and is drained again on return, so callers may reuse it across
// sources.
func (c KHopConnector) pathsFrom(g *graph.Graph, s graph.VertexID, allowEdge func(string) bool, used map[graph.EdgeID]bool, emit func(at graph.VertexID, ts int64) error) error {
	var dfs func(at graph.VertexID, hops int, maxTS int64) error
	dfs = func(at graph.VertexID, hops int, maxTS int64) error {
		if hops == c.K {
			if c.DstType != "" && g.Vertex(at).Type != c.DstType {
				return nil
			}
			return emit(at, maxTS)
		}
		for _, eid := range g.Out(at) {
			if used[eid] {
				continue
			}
			e := g.Edge(eid)
			if !allowEdge(e.Type) {
				continue
			}
			used[eid] = true
			err := dfs(e.To, hops+1, maxInt64(maxTS, tsOf(e)))
			used[eid] = false
			if err != nil {
				return err
			}
		}
		return nil
	}
	return dfs(s, 0, 0)
}

// SameVertexTypeConnector contracts directed paths (up to MaxLen hops)
// whose endpoints are both of VType and whose intermediate vertices are
// not (Table I, "same-vertex-type connector"): e.g. author-paper-author
// becomes author-author regardless of intermediate hops.
type SameVertexTypeConnector struct {
	VType      string
	MaxLen     int // cap on contracted path length; required (>0)
	DedupPairs bool
}

var _ View = SameVertexTypeConnector{}

// Name returns e.g. CONN_SAMEVT_Author.
func (c SameVertexTypeConnector) Name() string {
	return fmt.Sprintf("CONN_SAMEVT_%s", c.VType)
}

// Kind reports connector.
func (c SameVertexTypeConnector) Kind() Kind { return KindConnector }

// Describe returns a Table I style description.
func (c SameVertexTypeConnector) Describe() string {
	return fmt.Sprintf("same-vertex-type connector over %s (paths up to %d hops, no intermediate %s)",
		c.VType, c.MaxLen, c.VType)
}

// Cypher renders the defining pattern.
func (c SameVertexTypeConnector) Cypher() string {
	return fmt.Sprintf("MATCH (x:%s)-[p*1..%d]->(y:%s) RETURN x, y", c.VType, c.MaxLen, c.VType)
}

// Materialize contracts each qualifying path into one edge.
func (c SameVertexTypeConnector) Materialize(g *graph.Graph) (*graph.Graph, error) {
	if c.VType == "" || c.MaxLen < 1 {
		return nil, fmt.Errorf("views: same-vertex-type connector needs a type and MaxLen >= 1")
	}
	if err := validateTypes(g, c.VType); err != nil {
		return nil, err
	}
	schema, err := connectorSchema(g, c.VType, c.VType, c.Name())
	if err != nil {
		return nil, err
	}
	out := graph.NewGraph(schema)
	remap, err := copyVerticesOfTypes(g, out, []string{c.VType})
	if err != nil {
		return nil, err
	}
	seenPair := make(map[[2]graph.VertexID]bool)
	used := make(map[graph.EdgeID]bool)
	for _, s := range g.VerticesOfType(c.VType) {
		var dfs func(at graph.VertexID, hops int, maxTS int64) error
		dfs = func(at graph.VertexID, hops int, maxTS int64) error {
			if hops > 0 && g.Vertex(at).Type == c.VType {
				from, to := remap[s], remap[at]
				if c.DedupPairs {
					key := [2]graph.VertexID{from, to}
					if seenPair[key] {
						return nil
					}
					seenPair[key] = true
				}
				_, err := out.AddEdge(from, to, c.Name(), graph.Properties{
					"ts": maxTS, "hops": int64(hops),
				})
				return err // path ends at the first same-type vertex
			}
			if hops == c.MaxLen {
				return nil
			}
			for _, eid := range g.Out(at) {
				if used[eid] {
					continue
				}
				e := g.Edge(eid)
				used[eid] = true
				err := dfs(e.To, hops+1, maxInt64(maxTS, tsOf(e)))
				used[eid] = false
				if err != nil {
					return err
				}
			}
			return nil
		}
		if err := dfs(s, 0, 0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SameEdgeTypeConnector contracts maximal directed paths made of a single
// edge type into one edge (Table I, "same-edge-type connector"), e.g.
// chains of task TRANSFERS_TO edges.
type SameEdgeTypeConnector struct {
	EType      string
	MaxLen     int
	DedupPairs bool
}

var _ View = SameEdgeTypeConnector{}

// Name returns e.g. CONN_SAMEET_TRANSFERS_TO.
func (c SameEdgeTypeConnector) Name() string {
	return fmt.Sprintf("CONN_SAMEET_%s", c.EType)
}

// Kind reports connector.
func (c SameEdgeTypeConnector) Kind() Kind { return KindConnector }

// Describe returns a Table I style description.
func (c SameEdgeTypeConnector) Describe() string {
	return fmt.Sprintf("same-edge-type connector over %s paths up to %d hops", c.EType, c.MaxLen)
}

// Cypher renders the defining pattern.
func (c SameEdgeTypeConnector) Cypher() string {
	return fmt.Sprintf("MATCH (x)-[p:%s*1..%d]->(y) RETURN x, y", c.EType, c.MaxLen)
}

// Materialize contracts each path of EType edges (length 1..MaxLen).
func (c SameEdgeTypeConnector) Materialize(g *graph.Graph) (*graph.Graph, error) {
	if c.EType == "" || c.MaxLen < 1 {
		return nil, fmt.Errorf("views: same-edge-type connector needs an edge type and MaxLen >= 1")
	}
	// Determine endpoint vertex types from the schema when available.
	out := graph.NewGraph(nil)
	remap, err := copyVerticesOfTypes(g, out, nil)
	if err != nil {
		return nil, err
	}
	seenPair := make(map[[2]graph.VertexID]bool)
	used := make(map[graph.EdgeID]bool)
	for s := 0; s < g.NumVertices(); s++ {
		src := graph.VertexID(s)
		var dfs func(at graph.VertexID, hops int, maxTS int64) error
		dfs = func(at graph.VertexID, hops int, maxTS int64) error {
			if hops > 0 {
				from, to := remap[src], remap[at]
				key := [2]graph.VertexID{from, to}
				if !c.DedupPairs || !seenPair[key] {
					seenPair[key] = true
					if _, err := out.AddEdge(from, to, c.Name(), graph.Properties{
						"ts": maxTS, "hops": int64(hops),
					}); err != nil {
						return err
					}
				}
			}
			if hops == c.MaxLen {
				return nil
			}
			for _, eid := range g.Out(at) {
				if used[eid] {
					continue
				}
				e := g.Edge(eid)
				if e.Type != c.EType {
					continue
				}
				used[eid] = true
				err := dfs(e.To, hops+1, maxInt64(maxTS, tsOf(e)))
				used[eid] = false
				if err != nil {
					return err
				}
			}
			return nil
		}
		if err := dfs(src, 0, 0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SourceToSinkConnector contracts paths from source vertices (no
// incoming edges) to sink vertices (no outgoing edges) — Table I's last
// row, useful for end-to-end lineage.
type SourceToSinkConnector struct {
	MaxLen     int
	DedupPairs bool
}

var _ View = SourceToSinkConnector{}

// Name returns CONN_SRCSINK.
func (c SourceToSinkConnector) Name() string { return "CONN_SRCSINK" }

// Kind reports connector.
func (c SourceToSinkConnector) Kind() Kind { return KindConnector }

// Describe returns a Table I style description.
func (c SourceToSinkConnector) Describe() string {
	return fmt.Sprintf("source-to-sink connector (paths up to %d hops from in-degree-0 to out-degree-0 vertices)", c.MaxLen)
}

// Cypher renders the defining pattern (source/sink predicates are not
// expressible in the pattern language; noted as a comment).
func (c SourceToSinkConnector) Cypher() string {
	return fmt.Sprintf("MATCH (x)-[p*1..%d]->(y) RETURN x, y -- WHERE indeg(x)=0 AND outdeg(y)=0", c.MaxLen)
}

// Materialize contracts each source-to-sink path.
func (c SourceToSinkConnector) Materialize(g *graph.Graph) (*graph.Graph, error) {
	if c.MaxLen < 1 {
		return nil, fmt.Errorf("views: source-to-sink connector needs MaxLen >= 1")
	}
	out := graph.NewGraph(nil)
	remap, err := copyVerticesOfTypes(g, out, nil)
	if err != nil {
		return nil, err
	}
	seenPair := make(map[[2]graph.VertexID]bool)
	used := make(map[graph.EdgeID]bool)
	for s := 0; s < g.NumVertices(); s++ {
		src := graph.VertexID(s)
		if g.InDegree(src) != 0 || g.OutDegree(src) == 0 {
			continue
		}
		var dfs func(at graph.VertexID, hops int, maxTS int64) error
		dfs = func(at graph.VertexID, hops int, maxTS int64) error {
			if hops > 0 && g.OutDegree(at) == 0 {
				from, to := remap[src], remap[at]
				key := [2]graph.VertexID{from, to}
				if !c.DedupPairs || !seenPair[key] {
					seenPair[key] = true
					if _, err := out.AddEdge(from, to, c.Name(), graph.Properties{
						"ts": maxTS, "hops": int64(hops),
					}); err != nil {
						return err
					}
				}
				return nil
			}
			if hops == c.MaxLen {
				return nil
			}
			for _, eid := range g.Out(at) {
				if used[eid] {
					continue
				}
				e := g.Edge(eid)
				used[eid] = true
				err := dfs(e.To, hops+1, maxInt64(maxTS, tsOf(e)))
				used[eid] = false
				if err != nil {
					return err
				}
			}
			return nil
		}
		if err := dfs(src, 0, 0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CountKHopPaths counts the k-length (edge-unique) directed paths from
// srcType vertices to dstType vertices ("" = any) without materializing
// the connector — the "actual" series of Fig. 5 at sizes where building
// the parallel-edge view graph would be wasteful. By §V-A this count
// equals the edge count of the corresponding k-hop connector.
func CountKHopPaths(g *graph.Graph, srcType, dstType string, k int) int64 {
	if k < 1 {
		return 0
	}
	var count int64
	used := make(map[graph.EdgeID]bool)
	var dfs func(at graph.VertexID, hops int)
	dfs = func(at graph.VertexID, hops int) {
		if hops == k {
			if dstType == "" || g.Vertex(at).Type == dstType {
				count++
			}
			return
		}
		for _, eid := range g.Out(at) {
			if used[eid] {
				continue
			}
			used[eid] = true
			dfs(g.Edge(eid).To, hops+1)
			used[eid] = false
		}
	}
	for _, s := range sourceIDs(g, srcType) {
		dfs(s, 0)
	}
	return count
}

// --- helpers ---

func orAny(t string) string {
	if t == "" {
		return "ANY"
	}
	return t
}

func colonType(t string) string {
	if t == "" {
		return ""
	}
	return ":" + t
}

// connectorSchema builds the view graph's schema: the endpoint types plus
// the contracted edge type. Unconstrained graphs stay unconstrained.
func connectorSchema(g *graph.Graph, src, dst, edgeName string) (*graph.Schema, error) {
	if g.Schema() == nil || src == "" || dst == "" {
		return nil, nil
	}
	return graph.NewSchema(
		dedupeStrings([]string{src, dst}),
		[]graph.EdgeType{{From: src, To: dst, Name: edgeName}},
	)
}

func dedupeStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// edgeTypeFilter returns a predicate accepting the listed edge types
// (everything when the list is empty).
func edgeTypeFilter(types []string) func(string) bool {
	if len(types) == 0 {
		return func(string) bool { return true }
	}
	set := make(map[string]bool, len(types))
	for _, t := range types {
		set[t] = true
	}
	return func(t string) bool { return set[t] }
}

// sourceIDs returns the vertices the path search starts from.
func sourceIDs(g *graph.Graph, srcType string) []graph.VertexID {
	if srcType != "" {
		return g.VerticesOfType(srcType)
	}
	ids := make([]graph.VertexID, g.NumVertices())
	for i := range ids {
		ids[i] = graph.VertexID(i)
	}
	return ids
}
