package views

import (
	"fmt"
	"runtime"

	"kaskade/internal/graph"
	"kaskade/internal/par"
)

// KHopConnector contracts every k-length (edge-unique) path between a
// vertex of SrcType and a vertex of DstType into a single edge (Table I,
// "k-hop connector"; Fig. 3's running example is the job-to-job K=2
// instance). An empty SrcType/DstType matches any vertex type
// (vertex-to-vertex connectors on homogeneous graphs).
type KHopConnector struct {
	SrcType string
	DstType string
	K       int
	// EdgeTypes restricts which edge types paths may traverse (nil = any).
	EdgeTypes []string
	// DedupPairs collapses parallel connector edges (one edge per
	// reachable pair instead of one per path).
	DedupPairs bool
}

var _ EstimatableView = KHopConnector{}
var _ ParallelView = KHopConnector{}

// Name returns the connector's identifier, which doubles as the
// contracted edge's type, e.g. CONN_2HOP_Job_Job.
func (c KHopConnector) Name() string {
	st, dt := c.SrcType, c.DstType
	if st == "" {
		st = "ANY"
	}
	if dt == "" {
		dt = "ANY"
	}
	return fmt.Sprintf("CONN_%dHOP_%s_%s", c.K, st, dt)
}

// Kind reports connector.
func (c KHopConnector) Kind() Kind { return KindConnector }

// PathLength returns k.
func (c KHopConnector) PathLength() int { return c.K }

// Describe returns a Table I style description.
func (c KHopConnector) Describe() string {
	return fmt.Sprintf("%d-hop connector %s->%s (one edge per contracted %d-length path)",
		c.K, orAny(c.SrcType), orAny(c.DstType), c.K)
}

// Cypher renders the defining pattern — the canonical DDL body where
// the connector is DDL-expressible (it compiles back to this view), the
// plain contraction pattern otherwise.
func (c KHopConnector) Cypher() string {
	if p, err := CanonicalPattern(c); err == nil {
		return p
	}
	return fmt.Sprintf("MATCH (x%s)-[p*%d..%d]->(y%s) RETURN x, y",
		colonType(c.SrcType), c.K, c.K, colonType(c.DstType))
}

// Materialize builds the connector view graph: all vertices of the
// endpoint types plus one contracted edge per k-length path. The
// contracted edge aggregates path properties: ts = max constituent ts
// (so per-path max-timestamp queries keep working), hops = k.
func (c KHopConnector) Materialize(g *graph.Graph) (*graph.Graph, error) {
	return c.MaterializeParallel(g, 1)
}

// sourceChunkTarget is the number of source chunks created per worker
// during parallel materialization: enough over-decomposition that fast
// workers steal the tail when hub sources concentrate the path count.
const sourceChunkTarget = 16

// connEdge is one contracted edge found by the per-source path search,
// already in view-graph coordinates, buffered until the ordered merge.
type connEdge struct {
	from, to graph.VertexID
	ts       int64
	hops     int64
}

// pairAdder builds the merge-side edge sink every connector class
// shares: optional pair dedup, then one contracted edge carrying the
// aggregated path properties. Pair dedup lives here — on the single
// goroutine that sees edges in sequential order — because skipping a
// duplicate never changes the path search itself, only whether the
// edge lands.
func pairAdder(out *graph.Graph, name string, dedupPairs bool) func(connEdge) error {
	seenPair := make(map[[2]graph.VertexID]bool)
	return func(e connEdge) error {
		if dedupPairs {
			key := [2]graph.VertexID{e.from, e.to}
			if seenPair[key] {
				return nil
			}
			seenPair[key] = true
		}
		_, err := out.AddEdge(e.from, e.to, name, graph.Properties{
			"ts":   e.ts,
			"hops": e.hops,
		})
		return err
	}
}

// materializeBySource is the execution shape all connector classes
// share: an independent path enumeration per source vertex whose
// emitted edges must land in source order. With workers <= 1 (or a
// single source) it runs inline, handing each emitted edge straight to
// add. Otherwise sources are partitioned into contiguous chunks, each
// worker enumerates its chunk's paths into a buffer (the base graph
// and any remap table are read-only by then), and the calling
// goroutine merges buffers in chunk order — so edge insertion order,
// pair dedup, and therefore the whole view graph are byte-identical to
// the sequential build. Only the merge touches the view graph, so add
// needs no locking.
//
// numEdges sizes the edge-uniqueness set: a dense []bool indexed by
// EdgeID (the DFS unwinds its own marks, so one set serves a worker's
// whole chunk sequence). enumerate must confine its mutation to that
// set — every bit it sets must be cleared again on return — and may
// only fail by propagating emit's error, the contract that makes
// buffered emits infallible.
func materializeBySource(sources []graph.VertexID, numEdges, workers int,
	enumerate func(s graph.VertexID, used []bool, emit func(connEdge) error) error,
	add func(connEdge) error) error {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || len(sources) < 2 {
		used := make([]bool, numEdges)
		for _, s := range sources {
			if err := enumerate(s, used, add); err != nil {
				return err
			}
		}
		return nil
	}
	chunkSize, numChunks := par.Chunks(len(sources), workers, sourceChunkTarget)
	chunks := make([][]connEdge, numChunks)
	par.Do(numChunks, workers, func(next func() (int, bool)) {
		// One edge-uniqueness set per worker, unwound between sources.
		used := make([]bool, numEdges)
		for {
			ci, ok := next()
			if !ok {
				return
			}
			lo := ci * chunkSize
			hi := min(lo+chunkSize, len(sources))
			var buf []connEdge
			for _, s := range sources[lo:hi] {
				// The buffering emit cannot fail, and enumerate only
				// propagates emit errors.
				_ = enumerate(s, used, func(e connEdge) error {
					buf = append(buf, e)
					return nil
				})
			}
			chunks[ci] = buf
		}
	})
	for _, buf := range chunks {
		for _, e := range buf {
			if err := add(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// MaterializeParallel is Materialize with the per-source DFS fan-out
// spread over up to `workers` goroutines (0 or 1 = sequential,
// negative = one per available CPU); see materializeBySource for the
// determinism argument.
func (c KHopConnector) MaterializeParallel(g *graph.Graph, workers int) (*graph.Graph, error) {
	if c.K < 1 {
		return nil, fmt.Errorf("views: k-hop connector needs K >= 1, got %d", c.K)
	}
	if err := validateTypes(g, c.SrcType, c.DstType); err != nil {
		return nil, err
	}
	schema, err := connectorSchema(g, c.SrcType, c.DstType, c.Name())
	if err != nil {
		return nil, err
	}
	out := graph.NewGraph(schema)
	var keepTypes []string
	if c.SrcType != "" && c.DstType != "" {
		keepTypes = []string{c.SrcType, c.DstType}
	}
	remap, err := copyVerticesOfTypes(g, out, keepTypes)
	if err != nil {
		return nil, err
	}
	f := g.Freeze()
	enumerate := func(s graph.VertexID, used []bool, emit func(connEdge) error) error {
		return c.pathsFrom(f, s, used, func(at graph.VertexID, ts int64) error {
			return emit(connEdge{from: remap[s], to: remap[at], ts: ts, hops: int64(c.K)})
		})
	}
	if err := materializeBySource(sourceIDs(g, c.SrcType), g.NumEdges(), workers, enumerate, pairAdder(out, c.Name(), c.DedupPairs)); err != nil {
		return nil, err
	}
	return out, nil
}

// pathsFrom runs the edge-unique DFS enumerating every k-length path
// from s whose hops satisfy the connector's edge filter, calling emit
// with each path's endpoint and aggregated max timestamp, in DFS
// (= sequential materialization) order. The traversal runs on the
// frozen CSR view: with a single allowed edge type the step reads the
// contiguous typed group (the insertion-order subsequence, so emit
// order is unchanged); otherwise it filters the flat row against the
// type label array. used must be all-false on entry and is unwound on
// return, so callers reuse it across sources.
func (c KHopConnector) pathsFrom(f *graph.Frozen, s graph.VertexID, used []bool, emit func(at graph.VertexID, ts int64) error) error {
	var allowEdge func(string) bool // nil = every type allowed
	single := ""
	switch len(c.EdgeTypes) {
	case 0:
	case 1:
		single = c.EdgeTypes[0]
	default:
		allowEdge = edgeTypeFilter(c.EdgeTypes)
	}
	var dfs func(at graph.VertexID, hops int, maxTS int64) error
	dfs = func(at graph.VertexID, hops int, maxTS int64) error {
		if hops == c.K {
			if c.DstType != "" && f.VertexTypeOf(at) != c.DstType {
				return nil
			}
			return emit(at, maxTS)
		}
		edges := f.Out(at)
		if single != "" {
			edges = f.OutOfType(at, single)
		}
		for _, eid := range edges {
			if used[eid] {
				continue
			}
			if allowEdge != nil && !allowEdge(f.EdgeTypeOf(eid)) {
				continue
			}
			used[eid] = true
			err := dfs(f.To(eid), hops+1, maxInt64(maxTS, tsOf(f.Edge(eid))))
			used[eid] = false
			if err != nil {
				return err
			}
		}
		return nil
	}
	return dfs(s, 0, 0)
}

// SameVertexTypeConnector contracts directed paths (up to MaxLen hops)
// whose endpoints are both of VType and whose intermediate vertices are
// not (Table I, "same-vertex-type connector"): e.g. author-paper-author
// becomes author-author regardless of intermediate hops.
type SameVertexTypeConnector struct {
	VType      string
	MaxLen     int // cap on contracted path length; required (>0)
	DedupPairs bool
}

var _ View = SameVertexTypeConnector{}
var _ ParallelView = SameVertexTypeConnector{}

// Name returns e.g. CONN_SAMEVT_Author.
func (c SameVertexTypeConnector) Name() string {
	return fmt.Sprintf("CONN_SAMEVT_%s", c.VType)
}

// Kind reports connector.
func (c SameVertexTypeConnector) Kind() Kind { return KindConnector }

// Describe returns a Table I style description.
func (c SameVertexTypeConnector) Describe() string {
	return fmt.Sprintf("same-vertex-type connector over %s (paths up to %d hops, no intermediate %s)",
		c.VType, c.MaxLen, c.VType)
}

// Cypher renders the defining pattern (the canonical DDL body where
// DDL-expressible; see KHopConnector.Cypher).
func (c SameVertexTypeConnector) Cypher() string {
	if p, err := CanonicalPattern(c); err == nil {
		return p
	}
	return fmt.Sprintf("MATCH (x:%s)-[p*1..%d]->(y:%s) RETURN x, y", c.VType, c.MaxLen, c.VType)
}

// Materialize contracts each qualifying path into one edge.
func (c SameVertexTypeConnector) Materialize(g *graph.Graph) (*graph.Graph, error) {
	return c.MaterializeParallel(g, 1)
}

// MaterializeParallel is Materialize with the per-source DFS fanned out
// over up to `workers` goroutines, byte-identical to the sequential
// build (see materializeBySource).
func (c SameVertexTypeConnector) MaterializeParallel(g *graph.Graph, workers int) (*graph.Graph, error) {
	if c.VType == "" || c.MaxLen < 1 {
		return nil, fmt.Errorf("views: same-vertex-type connector needs a type and MaxLen >= 1")
	}
	if err := validateTypes(g, c.VType); err != nil {
		return nil, err
	}
	schema, err := connectorSchema(g, c.VType, c.VType, c.Name())
	if err != nil {
		return nil, err
	}
	out := graph.NewGraph(schema)
	remap, err := copyVerticesOfTypes(g, out, []string{c.VType})
	if err != nil {
		return nil, err
	}
	f := g.Freeze()
	enumerate := func(s graph.VertexID, used []bool, emit func(connEdge) error) error {
		var dfs func(at graph.VertexID, hops int, maxTS int64) error
		dfs = func(at graph.VertexID, hops int, maxTS int64) error {
			if hops > 0 && f.VertexTypeOf(at) == c.VType {
				// The path ends at the first same-type vertex.
				return emit(connEdge{from: remap[s], to: remap[at], ts: maxTS, hops: int64(hops)})
			}
			if hops == c.MaxLen {
				return nil
			}
			for _, eid := range f.Out(at) {
				if used[eid] {
					continue
				}
				used[eid] = true
				err := dfs(f.To(eid), hops+1, maxInt64(maxTS, tsOf(f.Edge(eid))))
				used[eid] = false
				if err != nil {
					return err
				}
			}
			return nil
		}
		return dfs(s, 0, 0)
	}
	if err := materializeBySource(g.VerticesOfType(c.VType), g.NumEdges(), workers, enumerate, pairAdder(out, c.Name(), c.DedupPairs)); err != nil {
		return nil, err
	}
	return out, nil
}

// SameEdgeTypeConnector contracts maximal directed paths made of a single
// edge type into one edge (Table I, "same-edge-type connector"), e.g.
// chains of task TRANSFERS_TO edges.
type SameEdgeTypeConnector struct {
	EType      string
	MaxLen     int
	DedupPairs bool
}

var _ View = SameEdgeTypeConnector{}
var _ ParallelView = SameEdgeTypeConnector{}

// Name returns e.g. CONN_SAMEET_TRANSFERS_TO.
func (c SameEdgeTypeConnector) Name() string {
	return fmt.Sprintf("CONN_SAMEET_%s", c.EType)
}

// Kind reports connector.
func (c SameEdgeTypeConnector) Kind() Kind { return KindConnector }

// Describe returns a Table I style description.
func (c SameEdgeTypeConnector) Describe() string {
	return fmt.Sprintf("same-edge-type connector over %s paths up to %d hops", c.EType, c.MaxLen)
}

// Cypher renders the defining pattern (the canonical DDL body where
// DDL-expressible; see KHopConnector.Cypher).
func (c SameEdgeTypeConnector) Cypher() string {
	if p, err := CanonicalPattern(c); err == nil {
		return p
	}
	return fmt.Sprintf("MATCH (x)-[p:%s*1..%d]->(y) RETURN x, y", c.EType, c.MaxLen)
}

// Materialize contracts each path of EType edges (length 1..MaxLen).
func (c SameEdgeTypeConnector) Materialize(g *graph.Graph) (*graph.Graph, error) {
	return c.MaterializeParallel(g, 1)
}

// MaterializeParallel is Materialize with the per-source DFS fanned out
// over up to `workers` goroutines, byte-identical to the sequential
// build (see materializeBySource).
func (c SameEdgeTypeConnector) MaterializeParallel(g *graph.Graph, workers int) (*graph.Graph, error) {
	if c.EType == "" || c.MaxLen < 1 {
		return nil, fmt.Errorf("views: same-edge-type connector needs an edge type and MaxLen >= 1")
	}
	out := graph.NewGraph(nil)
	remap, err := copyVerticesOfTypes(g, out, nil)
	if err != nil {
		return nil, err
	}
	// The single-edge-type walk is the typed-adjacency showcase: every
	// DFS step reads the contiguous (vertex, EType) group — the
	// insertion-order subsequence the append-mode filter produced — so
	// no edge of another type is even looked at.
	f := g.Freeze()
	enumerate := func(s graph.VertexID, used []bool, emit func(connEdge) error) error {
		var dfs func(at graph.VertexID, hops int, maxTS int64) error
		dfs = func(at graph.VertexID, hops int, maxTS int64) error {
			if hops > 0 {
				// Every prefix of a chain is itself a contracted path;
				// keep extending after emitting.
				if err := emit(connEdge{from: remap[s], to: remap[at], ts: maxTS, hops: int64(hops)}); err != nil {
					return err
				}
			}
			if hops == c.MaxLen {
				return nil
			}
			for _, eid := range f.OutOfType(at, c.EType) {
				if used[eid] {
					continue
				}
				used[eid] = true
				err := dfs(f.To(eid), hops+1, maxInt64(maxTS, tsOf(f.Edge(eid))))
				used[eid] = false
				if err != nil {
					return err
				}
			}
			return nil
		}
		return dfs(s, 0, 0)
	}
	if err := materializeBySource(sourceIDs(g, ""), g.NumEdges(), workers, enumerate, pairAdder(out, c.Name(), c.DedupPairs)); err != nil {
		return nil, err
	}
	return out, nil
}

// SourceToSinkConnector contracts paths from source vertices (no
// incoming edges) to sink vertices (no outgoing edges) — Table I's last
// row, useful for end-to-end lineage.
type SourceToSinkConnector struct {
	MaxLen     int
	DedupPairs bool
}

var _ View = SourceToSinkConnector{}
var _ ParallelView = SourceToSinkConnector{}

// Name returns CONN_SRCSINK.
func (c SourceToSinkConnector) Name() string { return "CONN_SRCSINK" }

// Kind reports connector.
func (c SourceToSinkConnector) Kind() Kind { return KindConnector }

// Describe returns a Table I style description.
func (c SourceToSinkConnector) Describe() string {
	return fmt.Sprintf("source-to-sink connector (paths up to %d hops from in-degree-0 to out-degree-0 vertices)", c.MaxLen)
}

// Cypher renders the defining pattern (the canonical DDL body where
// DDL-expressible; the INDEGREE/OUTDEGREE predicate in the WHERE clause
// is the class marker the view compiler recognizes).
func (c SourceToSinkConnector) Cypher() string {
	if p, err := CanonicalPattern(c); err == nil {
		return p
	}
	return fmt.Sprintf("MATCH (x)-[p*1..%d]->(y) RETURN x, y -- WHERE indeg(x)=0 AND outdeg(y)=0", c.MaxLen)
}

// Materialize contracts each source-to-sink path.
func (c SourceToSinkConnector) Materialize(g *graph.Graph) (*graph.Graph, error) {
	return c.MaterializeParallel(g, 1)
}

// MaterializeParallel is Materialize with the per-source DFS fanned out
// over up to `workers` goroutines, byte-identical to the sequential
// build (see materializeBySource).
func (c SourceToSinkConnector) MaterializeParallel(g *graph.Graph, workers int) (*graph.Graph, error) {
	if c.MaxLen < 1 {
		return nil, fmt.Errorf("views: source-to-sink connector needs MaxLen >= 1")
	}
	out := graph.NewGraph(nil)
	remap, err := copyVerticesOfTypes(g, out, nil)
	if err != nil {
		return nil, err
	}
	// Only true sources (in-degree 0, at least one outgoing edge) seed
	// the search; filtering up front keeps the chunk partition balanced
	// over real work.
	f := g.Freeze()
	var sources []graph.VertexID
	for s := 0; s < f.NumVertices(); s++ {
		id := graph.VertexID(s)
		if f.InDegree(id) == 0 && f.OutDegree(id) > 0 {
			sources = append(sources, id)
		}
	}
	enumerate := func(s graph.VertexID, used []bool, emit func(connEdge) error) error {
		var dfs func(at graph.VertexID, hops int, maxTS int64) error
		dfs = func(at graph.VertexID, hops int, maxTS int64) error {
			if hops > 0 && f.OutDegree(at) == 0 {
				return emit(connEdge{from: remap[s], to: remap[at], ts: maxTS, hops: int64(hops)})
			}
			if hops == c.MaxLen {
				return nil
			}
			for _, eid := range f.Out(at) {
				if used[eid] {
					continue
				}
				used[eid] = true
				err := dfs(f.To(eid), hops+1, maxInt64(maxTS, tsOf(f.Edge(eid))))
				used[eid] = false
				if err != nil {
					return err
				}
			}
			return nil
		}
		return dfs(s, 0, 0)
	}
	if err := materializeBySource(sources, g.NumEdges(), workers, enumerate, pairAdder(out, c.Name(), c.DedupPairs)); err != nil {
		return nil, err
	}
	return out, nil
}

// CountKHopPaths counts the k-length (edge-unique) directed paths from
// srcType vertices to dstType vertices ("" = any) without materializing
// the connector — the "actual" series of Fig. 5 at sizes where building
// the parallel-edge view graph would be wasteful. By §V-A this count
// equals the edge count of the corresponding k-hop connector.
func CountKHopPaths(g *graph.Graph, srcType, dstType string, k int) int64 {
	if k < 1 {
		return 0
	}
	f := g.Freeze()
	var count int64
	used := make([]bool, g.NumEdges())
	var dfs func(at graph.VertexID, hops int)
	dfs = func(at graph.VertexID, hops int) {
		if hops == k {
			if dstType == "" || f.VertexTypeOf(at) == dstType {
				count++
			}
			return
		}
		for _, eid := range f.Out(at) {
			if used[eid] {
				continue
			}
			used[eid] = true
			dfs(f.To(eid), hops+1)
			used[eid] = false
		}
	}
	for _, s := range sourceIDs(g, srcType) {
		dfs(s, 0)
	}
	return count
}

// --- helpers ---

func orAny(t string) string {
	if t == "" {
		return "ANY"
	}
	return t
}

func colonType(t string) string {
	if t == "" {
		return ""
	}
	return ":" + t
}

// connectorSchema builds the view graph's schema: the endpoint types plus
// the contracted edge type. Unconstrained graphs stay unconstrained.
// Property declarations for the kept endpoint types carry over, so a
// query rewritten over the view keeps its schema-proved typing.
func connectorSchema(g *graph.Graph, src, dst, edgeName string) (*graph.Schema, error) {
	if g.Schema() == nil || src == "" || dst == "" {
		return nil, nil
	}
	s, err := graph.NewSchema(
		dedupeStrings([]string{src, dst}),
		[]graph.EdgeType{{From: src, To: dst, Name: edgeName}},
	)
	if err != nil {
		return nil, err
	}
	s.AdoptProperties(g.Schema())
	return s, nil
}

func dedupeStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// edgeTypeFilter returns a predicate accepting the listed edge types
// (everything when the list is empty).
func edgeTypeFilter(types []string) func(string) bool {
	if len(types) == 0 {
		return func(string) bool { return true }
	}
	set := make(map[string]bool, len(types))
	for _, t := range types {
		set[t] = true
	}
	return func(t string) bool { return set[t] }
}

// sourceIDs returns the vertices the path search starts from.
func sourceIDs(g *graph.Graph, srcType string) []graph.VertexID {
	if srcType != "" {
		return g.VerticesOfType(srcType)
	}
	ids := make([]graph.VertexID, g.NumVertices())
	for i := range ids {
		ids[i] = graph.VertexID(i)
	}
	return ids
}
