// Package views implements Kaskade's graph view classes (§III-C, §VI):
// connectors (path contractions — Table I) and summarizers (filters and
// aggregations — Table II), together with their materialization over a
// property graph.
//
// Materialized connector semantics follow §V-A: "the number of edges in a
// k-hop connector over a graph G equals the number of k-length simple
// paths in G" — each contracted path becomes one (possibly parallel)
// connector edge carrying aggregated path properties, so path-sensitive
// queries (counts, per-path aggregates like Q4's max timestamp) remain
// answerable on the view. A DedupPairs option collapses parallel edges
// for reachability-only workloads.
package views

import (
	"fmt"

	"kaskade/internal/graph"
)

// Kind distinguishes the two view classes of §III-C.
type Kind string

// View kinds.
const (
	KindConnector  Kind = "connector"
	KindSummarizer Kind = "summarizer"
)

// View is a graph view: a derivation that, when materialized, produces a
// new physical graph from a base graph (§III-C's definition following
// Zhuge & Garcia-Molina).
//
// Materialize must treat the base graph as read-only and return a fresh
// graph sharing no mutable state with other materializations — the
// contract that lets the catalog build independent views concurrently
// (workload.Catalog.AddAll) and the executor traverse base and view
// graphs from many goroutines at once. Every view class in this package
// satisfies it: vertices/edges are appended only to the new graph, and
// property bags are shared read-only.
type View interface {
	// Name is a unique, stable identifier used by the catalog and as the
	// contracted edge type for connectors.
	Name() string
	// Kind reports the view class.
	Kind() Kind
	// Describe returns a human-readable one-liner (for the CLI and
	// Table I/II style listings).
	Describe() string
	// Cypher renders the view's defining query in the hybrid language
	// (the paper translates Prolog view instantiations to Cypher for
	// materialization; we keep the translation for display and
	// engine-agnostic export).
	Cypher() string
	// Materialize executes the view over the base graph.
	Materialize(g *graph.Graph) (*graph.Graph, error)
}

// EstimatableView is implemented by views whose materialized edge count
// the §V-A cost model can predict (k-hop connectors).
type EstimatableView interface {
	View
	// PathLength returns the k of the contraction.
	PathLength() int
}

// ParallelView is implemented by views whose materialization can fan
// out internally — for connectors, the per-source path search runs on a
// worker pool while the merge stays deterministic.
type ParallelView interface {
	View
	// MaterializeParallel is Materialize with up to `workers`
	// goroutines (0 or 1 = sequential, negative = one per available
	// CPU). The result is byte-identical to Materialize: same vertices,
	// same edges, same insertion order.
	MaterializeParallel(g *graph.Graph, workers int) (*graph.Graph, error)
}

// copyVerticesOfTypes adds all vertices of the given types (all types
// when nil) from src to dst, sharing property bags, and returns the ID
// remapping.
func copyVerticesOfTypes(src *graph.Graph, dst *graph.Graph, types []string) (map[graph.VertexID]graph.VertexID, error) {
	remap := make(map[graph.VertexID]graph.VertexID)
	add := func(id graph.VertexID) error {
		v := src.Vertex(id)
		nid, err := dst.AddVertex(v.Type, v.Props)
		if err != nil {
			return err
		}
		remap[id] = nid
		return nil
	}
	if types == nil {
		for i := 0; i < src.NumVertices(); i++ {
			if err := add(graph.VertexID(i)); err != nil {
				return nil, err
			}
		}
		return remap, nil
	}
	seen := make(map[string]bool)
	for _, t := range types {
		if seen[t] {
			continue
		}
		seen[t] = true
		for _, id := range src.VerticesOfType(t) {
			if _, dup := remap[id]; !dup {
				if err := add(id); err != nil {
					return nil, err
				}
			}
		}
	}
	return remap, nil
}

// maxInt64 returns the larger of two int64s.
func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// tsOf reads an edge's int64 "ts" property (0 when absent), the
// timestamp connectors aggregate during contraction.
func tsOf(e *graph.Edge) int64 {
	if v, ok := e.Prop("ts").(int64); ok {
		return v
	}
	return 0
}

// validateTypes checks that every named vertex type exists in the schema
// (when there is one).
func validateTypes(g *graph.Graph, types ...string) error {
	s := g.Schema()
	if s == nil {
		return nil
	}
	for _, t := range types {
		if t != "" && !s.HasVertexType(t) {
			return fmt.Errorf("views: vertex type %q not in schema", t)
		}
	}
	return nil
}
