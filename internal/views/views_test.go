package views

import (
	"testing"

	"kaskade/internal/datagen"
	"kaskade/internal/graph"
)

// fig3 builds the input graph of the paper's Fig. 3(a): j1 writes f1,f2;
// f1 read by j2; f2 read by j3; j2 writes f3; j3 writes f4.
func fig3(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.NewGraph(graph.MustSchema(
		[]string{"Job", "File"},
		[]graph.EdgeType{
			{From: "Job", To: "File", Name: "WRITES_TO"},
			{From: "File", To: "Job", Name: "IS_READ_BY"},
		},
	))
	j1 := g.MustAddVertex("Job", graph.Properties{"name": "j1"})
	j2 := g.MustAddVertex("Job", graph.Properties{"name": "j2"})
	j3 := g.MustAddVertex("Job", graph.Properties{"name": "j3"})
	f1 := g.MustAddVertex("File", graph.Properties{"name": "f1"})
	f2 := g.MustAddVertex("File", graph.Properties{"name": "f2"})
	f3 := g.MustAddVertex("File", graph.Properties{"name": "f3"})
	f4 := g.MustAddVertex("File", graph.Properties{"name": "f4"})
	g.MustAddEdge(j1, f1, "WRITES_TO", graph.Properties{"ts": int64(1)})
	g.MustAddEdge(j1, f2, "WRITES_TO", graph.Properties{"ts": int64(2)})
	g.MustAddEdge(f1, j2, "IS_READ_BY", graph.Properties{"ts": int64(3)})
	g.MustAddEdge(f2, j3, "IS_READ_BY", graph.Properties{"ts": int64(4)})
	g.MustAddEdge(j2, f3, "WRITES_TO", graph.Properties{"ts": int64(5)})
	g.MustAddEdge(j3, f4, "WRITES_TO", graph.Properties{"ts": int64(6)})
	return g
}

func names(g *graph.Graph, ids []graph.VertexID) map[string]graph.VertexID {
	out := make(map[string]graph.VertexID)
	for _, id := range ids {
		out[g.Vertex(id).Prop("name").(string)] = id
	}
	return out
}

func TestJobToJobConnectorMatchesFig3c(t *testing.T) {
	g := fig3(t)
	v, err := KHopConnector{SrcType: "Job", DstType: "Job", K: 2}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 3(c) left: jobs only, edges j1->j2 and j1->j3.
	if v.CountVerticesOfType("Job") != 3 || v.CountVerticesOfType("File") != 0 {
		t.Errorf("connector vertices: %d jobs, %d files", v.CountVerticesOfType("Job"), v.CountVerticesOfType("File"))
	}
	if v.NumEdges() != 2 {
		t.Fatalf("connector edges = %d, want 2", v.NumEdges())
	}
	byName := names(v, v.VerticesOfType("Job"))
	pairs := map[[2]graph.VertexID]int64{}
	v.EachEdge(func(e *graph.Edge) {
		pairs[[2]graph.VertexID{e.From, e.To}] = e.Prop("ts").(int64)
	})
	if ts := pairs[[2]graph.VertexID{byName["j1"], byName["j2"]}]; ts != 3 {
		t.Errorf("j1->j2 contracted ts = %d, want max(1,3)=3", ts)
	}
	if ts := pairs[[2]graph.VertexID{byName["j1"], byName["j3"]}]; ts != 4 {
		t.Errorf("j1->j3 contracted ts = %d, want max(2,4)=4", ts)
	}
}

func TestFileToFileConnectorMatchesFig3d(t *testing.T) {
	g := fig3(t)
	v, err := KHopConnector{SrcType: "File", DstType: "File", K: 2}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 3(d): f1->f3 and f2->f4.
	if v.NumEdges() != 2 {
		t.Fatalf("file connector edges = %d, want 2", v.NumEdges())
	}
	byName := names(v, v.VerticesOfType("File"))
	found := map[[2]graph.VertexID]bool{}
	v.EachEdge(func(e *graph.Edge) { found[[2]graph.VertexID{e.From, e.To}] = true })
	if !found[[2]graph.VertexID{byName["f1"], byName["f3"]}] || !found[[2]graph.VertexID{byName["f2"], byName["f4"]}] {
		t.Errorf("file pairs = %v", found)
	}
}

func TestConnectorParallelEdgesCountPaths(t *testing.T) {
	// Two distinct 2-hop paths between the same pair must yield two
	// parallel connector edges (§V-A path-count semantics)...
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", graph.Properties{"name": "a"})
	m1 := g.MustAddVertex("V", graph.Properties{"name": "m1"})
	m2 := g.MustAddVertex("V", graph.Properties{"name": "m2"})
	b := g.MustAddVertex("V", graph.Properties{"name": "b"})
	g.MustAddEdge(a, m1, "E", nil)
	g.MustAddEdge(a, m2, "E", nil)
	g.MustAddEdge(m1, b, "E", nil)
	g.MustAddEdge(m2, b, "E", nil)

	v, err := KHopConnector{K: 2}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumEdges() != 2 {
		t.Errorf("parallel path edges = %d, want 2", v.NumEdges())
	}
	// ...unless DedupPairs collapses them.
	vd, err := KHopConnector{K: 2, DedupPairs: true}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if vd.NumEdges() != 1 {
		t.Errorf("deduped edges = %d, want 1", vd.NumEdges())
	}
}

func TestConnectorEdgeTypeRestriction(t *testing.T) {
	g := fig3(t)
	// Restricting to WRITES_TO only: no job-file-job paths exist.
	v, err := KHopConnector{SrcType: "Job", DstType: "Job", K: 2, EdgeTypes: []string{"WRITES_TO"}}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumEdges() != 0 {
		t.Errorf("restricted connector has %d edges, want 0", v.NumEdges())
	}
}

func TestConnectorValidation(t *testing.T) {
	g := fig3(t)
	if _, err := (KHopConnector{SrcType: "Job", DstType: "Job", K: 0}).Materialize(g); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := (KHopConnector{SrcType: "Nope", DstType: "Job", K: 2}).Materialize(g); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestSameVertexTypeConnector(t *testing.T) {
	g := fig3(t)
	v, err := SameVertexTypeConnector{VType: "Job", MaxLen: 4}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	// Paths stop at the first Job: j1->j2 (via f1), j1->j3 (via f2),
	// same as the 2-hop connector on this graph.
	if v.NumEdges() != 2 {
		t.Errorf("same-vertex-type edges = %d, want 2", v.NumEdges())
	}
	v.EachEdge(func(e *graph.Edge) {
		if e.Prop("hops").(int64) != 2 {
			t.Errorf("hops = %v, want 2", e.Prop("hops"))
		}
	})
}

func TestSameEdgeTypeConnector(t *testing.T) {
	// Chain of TRANSFERS_TO task edges: t1->t2->t3.
	g := graph.NewGraph(nil)
	t1 := g.MustAddVertex("Task", nil)
	t2 := g.MustAddVertex("Task", nil)
	t3 := g.MustAddVertex("Task", nil)
	g.MustAddEdge(t1, t2, "TRANSFERS_TO", nil)
	g.MustAddEdge(t2, t3, "TRANSFERS_TO", nil)
	g.MustAddEdge(t1, t3, "OTHER", nil)

	v, err := SameEdgeTypeConnector{EType: "TRANSFERS_TO", MaxLen: 5}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	// Contracted paths: t1->t2, t2->t3, t1->t3 (2 hops). OTHER ignored.
	if v.NumEdges() != 3 {
		t.Errorf("same-edge-type edges = %d, want 3", v.NumEdges())
	}
}

func TestSourceToSinkConnector(t *testing.T) {
	// a -> b -> c, d isolated: source a, sink c (and d is both but has
	// no outgoing edges, so no paths start there).
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	c := g.MustAddVertex("V", nil)
	g.MustAddVertex("V", nil)
	g.MustAddEdge(a, b, "E", nil)
	g.MustAddEdge(b, c, "E", nil)

	v, err := SourceToSinkConnector{MaxLen: 5}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumEdges() != 1 {
		t.Fatalf("source-sink edges = %d, want 1 (a->c)", v.NumEdges())
	}
	var got *graph.Edge
	v.EachEdge(func(e *graph.Edge) { got = e })
	if got.Prop("hops").(int64) != 2 {
		t.Errorf("hops = %v", got.Prop("hops"))
	}
}

func TestVertexInclusionSummarizerOnProv(t *testing.T) {
	cfg := datagen.DefaultProvConfig()
	cfg.Jobs, cfg.Files, cfg.TasksPerJob = 100, 200, 10
	g, err := datagen.Prov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := VertexInclusionSummarizer{Types: []string{"Job", "File"}}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumVertices() != 300 {
		t.Errorf("summarized |V| = %d, want 300", v.NumVertices())
	}
	// Dramatic reduction: raw includes tasks etc.
	if v.NumEdges() >= g.NumEdges()/2 {
		t.Errorf("summarizer kept %d of %d edges; expected large reduction", v.NumEdges(), g.NumEdges())
	}
	// Only lineage edges survive.
	v.EachEdge(func(e *graph.Edge) {
		if e.Type != "WRITES_TO" && e.Type != "IS_READ_BY" {
			t.Fatalf("unexpected edge type %s", e.Type)
		}
	})
	// Properties preserved for downstream queries.
	if v.Vertex(v.VerticesOfType("Job")[0]).Prop("CPU") == nil {
		t.Error("summarizer lost vertex properties")
	}
}

func TestVertexRemovalSummarizer(t *testing.T) {
	g := fig3(t)
	v, err := VertexRemovalSummarizer{Types: []string{"File"}}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumVertices() != 3 || v.NumEdges() != 0 {
		t.Errorf("removal result: |V|=%d |E|=%d, want 3/0", v.NumVertices(), v.NumEdges())
	}
}

func TestEdgeSummarizers(t *testing.T) {
	g := fig3(t)
	keep, err := EdgeInclusionSummarizer{Types: []string{"WRITES_TO"}}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if keep.NumEdges() != 4 || keep.NumVertices() != 7 {
		t.Errorf("inclusion: |E|=%d |V|=%d, want 4/7", keep.NumEdges(), keep.NumVertices())
	}
	drop, err := EdgeRemovalSummarizer{Types: []string{"WRITES_TO"}}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if drop.NumEdges() != 2 {
		t.Errorf("removal: |E|=%d, want 2", drop.NumEdges())
	}
}

func TestVertexAggregatorSummarizer(t *testing.T) {
	g := graph.NewGraph(nil)
	j1 := g.MustAddVertex("Job", graph.Properties{"pipeline": "p1", "CPU": int64(10)})
	j2 := g.MustAddVertex("Job", graph.Properties{"pipeline": "p1", "CPU": int64(30)})
	j3 := g.MustAddVertex("Job", graph.Properties{"pipeline": "p2", "CPU": int64(5)})
	f := g.MustAddVertex("File", nil)
	g.MustAddEdge(j1, f, "W", nil)
	g.MustAddEdge(j2, f, "W", nil)
	g.MustAddEdge(j3, f, "W", nil)

	v, err := VertexAggregatorSummarizer{
		VType: "Job", GroupBy: "pipeline",
		Aggs: map[string]AggFunc{"CPU": AggSum},
	}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if v.CountVerticesOfType("Job") != 2 {
		t.Fatalf("supervertices = %d, want 2", v.CountVerticesOfType("Job"))
	}
	for _, id := range v.VerticesOfType("Job") {
		sv := v.Vertex(id)
		switch sv.Prop("pipeline") {
		case "p1":
			if sv.Prop("CPU").(int64) != 40 || sv.Prop("members").(int64) != 2 {
				t.Errorf("p1 supervertex = %v", sv.Props)
			}
		case "p2":
			if sv.Prop("CPU").(int64) != 5 {
				t.Errorf("p2 supervertex = %v", sv.Props)
			}
		}
	}
	// Edges re-pointed: p1 supervertex has 2 parallel edges to f.
	if v.NumEdges() != 3 {
		t.Errorf("|E| = %d, want 3", v.NumEdges())
	}
}

func TestEdgeAggregatorSummarizer(t *testing.T) {
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	g.MustAddEdge(a, b, "E", graph.Properties{"w": int64(1)})
	g.MustAddEdge(a, b, "E", graph.Properties{"w": int64(2)})
	g.MustAddEdge(b, a, "E", graph.Properties{"w": int64(5)})
	g.MustAddEdge(a, b, "X", nil)

	v, err := EdgeAggregatorSummarizer{EType: "E", Aggs: map[string]AggFunc{"w": AggSum}}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	// a->b E merged (w=3), b->a E kept (w=5), a->b X passes through.
	if v.NumEdges() != 3 {
		t.Fatalf("|E| = %d, want 3", v.NumEdges())
	}
	var merged *graph.Edge
	v.EachEdge(func(e *graph.Edge) {
		if e.Type == "E" && e.From == 0 {
			merged = e
		}
	})
	if merged == nil || merged.Prop("w").(int64) != 3 || merged.Prop("members").(int64) != 2 {
		t.Errorf("merged edge = %v", merged)
	}
}

func TestSubgraphAggregatorSummarizer(t *testing.T) {
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", graph.Properties{"c": "x"})
	b := g.MustAddVertex("V", graph.Properties{"c": "x"})
	c := g.MustAddVertex("V", graph.Properties{"c": "y"})
	g.MustAddEdge(a, b, "E", nil) // internal to group x
	g.MustAddEdge(b, c, "E", nil) // cross-group

	v, err := SubgraphAggregatorSummarizer{VType: "V", GroupBy: "c"}.Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumVertices() != 2 {
		t.Fatalf("|V| = %d, want 2", v.NumVertices())
	}
	var xSuper *graph.Vertex
	for _, id := range v.VerticesOfType("V") {
		if v.Vertex(id).Prop("c") == "x" {
			xSuper = v.Vertex(id)
		}
	}
	if xSuper == nil || xSuper.Prop("internalEdges").(int64) != 1 {
		t.Errorf("x supervertex = %v", xSuper)
	}
	if v.NumEdges() != 1 {
		t.Errorf("|E| = %d, want 1 (cross-group only)", v.NumEdges())
	}
}

func TestSummarizerValidation(t *testing.T) {
	g := fig3(t)
	if _, err := (VertexInclusionSummarizer{}).Materialize(g); err == nil {
		t.Error("empty inclusion accepted")
	}
	if _, err := (VertexInclusionSummarizer{Types: []string{"Nope"}}).Materialize(g); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := (VertexAggregatorSummarizer{}).Materialize(g); err == nil {
		t.Error("empty aggregator accepted")
	}
	if _, err := aggregateInts("median", nil); err == nil {
		t.Error("unknown agg function accepted")
	}
}

func TestViewMetadata(t *testing.T) {
	vs := []View{
		KHopConnector{SrcType: "Job", DstType: "Job", K: 2},
		SameVertexTypeConnector{VType: "Author", MaxLen: 4},
		SameEdgeTypeConnector{EType: "T", MaxLen: 3},
		SourceToSinkConnector{MaxLen: 8},
		VertexInclusionSummarizer{Types: []string{"Job", "File"}},
		VertexRemovalSummarizer{Types: []string{"Task"}},
		EdgeInclusionSummarizer{Types: []string{"W"}},
		EdgeRemovalSummarizer{Types: []string{"W"}},
		VertexAggregatorSummarizer{VType: "Job", GroupBy: "p"},
		EdgeAggregatorSummarizer{EType: "E"},
		SubgraphAggregatorSummarizer{VType: "V", GroupBy: "c"},
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if v.Name() == "" || v.Describe() == "" || v.Cypher() == "" {
			t.Errorf("%T: empty metadata", v)
		}
		if seen[v.Name()] {
			t.Errorf("duplicate view name %s", v.Name())
		}
		seen[v.Name()] = true
		switch v.Kind() {
		case KindConnector, KindSummarizer:
		default:
			t.Errorf("%T: bad kind %s", v, v.Kind())
		}
	}
	// Connector edge-count estimability is exposed for the cost model.
	var ev EstimatableView = KHopConnector{K: 3}
	if ev.PathLength() != 3 {
		t.Error("PathLength")
	}
}

// Invariant: the number of connector edges equals the number of k-length
// edge-unique paths as counted by direct DFS, on random small graphs.
func TestConnectorEdgeCountEqualsPathCount(t *testing.T) {
	soc, err := datagen.SocialNetwork(datagen.SocialConfig{Users: 60, Edges: 200, Exponent: 2.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3} {
		v, err := KHopConnector{K: k}.Materialize(soc)
		if err != nil {
			t.Fatal(err)
		}
		want := countPathsDFS(soc, k)
		if v.NumEdges() != want {
			t.Errorf("k=%d: connector edges=%d, DFS path count=%d", k, v.NumEdges(), want)
		}
	}
}

func countPathsDFS(g *graph.Graph, k int) int {
	count := 0
	used := make(map[graph.EdgeID]bool)
	var dfs func(at graph.VertexID, hops int)
	dfs = func(at graph.VertexID, hops int) {
		if hops == k {
			count++
			return
		}
		for _, eid := range g.Out(at) {
			if used[eid] {
				continue
			}
			used[eid] = true
			dfs(g.Edge(eid).To, hops+1)
			used[eid] = false
		}
	}
	for i := 0; i < g.NumVertices(); i++ {
		dfs(graph.VertexID(i), 0)
	}
	return count
}
