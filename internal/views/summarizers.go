package views

import (
	"fmt"
	"sort"
	"strings"

	"kaskade/internal/graph"
)

// VertexInclusionSummarizer keeps only vertices of the listed types and
// the edges whose both endpoints survive (Table II, "vertex-inclusion
// summarizer"). This is the schema-level summarizer of the evaluation:
// prov raw -> jobs+files, dblp raw -> authors+papers (§VII-B, Fig. 6).
type VertexInclusionSummarizer struct {
	Types []string
}

var _ View = VertexInclusionSummarizer{}

// Name returns e.g. SUMM_KEEPV_File_Job.
func (s VertexInclusionSummarizer) Name() string {
	return "SUMM_KEEPV_" + joinSorted(s.Types)
}

// Kind reports summarizer.
func (s VertexInclusionSummarizer) Kind() Kind { return KindSummarizer }

// Describe returns a Table II style description.
func (s VertexInclusionSummarizer) Describe() string {
	return fmt.Sprintf("vertex-inclusion summarizer keeping types {%s}", strings.Join(s.Types, ", "))
}

// Cypher renders the defining filter as the canonical DDL body (it
// parses and compiles back to this summarizer; edges survive iff both
// endpoints are kept).
func (s VertexInclusionSummarizer) Cypher() string {
	p, _ := CanonicalPattern(s)
	return p
}

// Materialize filters the graph.
func (s VertexInclusionSummarizer) Materialize(g *graph.Graph) (*graph.Graph, error) {
	if len(s.Types) == 0 {
		return nil, fmt.Errorf("views: vertex-inclusion summarizer needs at least one type")
	}
	if err := validateTypes(g, s.Types...); err != nil {
		return nil, err
	}
	keep := make(map[string]bool, len(s.Types))
	for _, t := range s.Types {
		keep[t] = true
	}
	return filterGraph(g,
		func(v *graph.Vertex) bool { return keep[v.Type] },
		func(*graph.Edge) bool { return true },
	)
}

// VertexRemovalSummarizer removes vertices of the listed types together
// with their incident edges (Table II, "vertex-removal summarizer").
type VertexRemovalSummarizer struct {
	Types []string
}

var _ View = VertexRemovalSummarizer{}

// Name returns e.g. SUMM_DROPV_Task.
func (s VertexRemovalSummarizer) Name() string { return "SUMM_DROPV_" + joinSorted(s.Types) }

// Kind reports summarizer.
func (s VertexRemovalSummarizer) Kind() Kind { return KindSummarizer }

// Describe returns a Table II style description.
func (s VertexRemovalSummarizer) Describe() string {
	return fmt.Sprintf("vertex-removal summarizer dropping types {%s}", strings.Join(s.Types, ", "))
}

// Cypher renders the defining filter as the canonical DDL body.
func (s VertexRemovalSummarizer) Cypher() string {
	p, _ := CanonicalPattern(s)
	return p
}

// Materialize filters the graph.
func (s VertexRemovalSummarizer) Materialize(g *graph.Graph) (*graph.Graph, error) {
	if len(s.Types) == 0 {
		return nil, fmt.Errorf("views: vertex-removal summarizer needs at least one type")
	}
	if err := validateTypes(g, s.Types...); err != nil {
		return nil, err
	}
	drop := make(map[string]bool, len(s.Types))
	for _, t := range s.Types {
		drop[t] = true
	}
	return filterGraph(g,
		func(v *graph.Vertex) bool { return !drop[v.Type] },
		func(*graph.Edge) bool { return true },
	)
}

// EdgeInclusionSummarizer keeps only edges of the listed types; all
// vertices survive (Table II, "edge-inclusion summarizer").
type EdgeInclusionSummarizer struct {
	Types []string
}

var _ View = EdgeInclusionSummarizer{}

// Name returns e.g. SUMM_KEEPE_WRITES_TO.
func (s EdgeInclusionSummarizer) Name() string { return "SUMM_KEEPE_" + joinSorted(s.Types) }

// Kind reports summarizer.
func (s EdgeInclusionSummarizer) Kind() Kind { return KindSummarizer }

// Describe returns a Table II style description.
func (s EdgeInclusionSummarizer) Describe() string {
	return fmt.Sprintf("edge-inclusion summarizer keeping edge types {%s}", strings.Join(s.Types, ", "))
}

// Cypher renders the defining filter as the canonical DDL body.
func (s EdgeInclusionSummarizer) Cypher() string {
	p, _ := CanonicalPattern(s)
	return p
}

// Materialize filters the graph.
func (s EdgeInclusionSummarizer) Materialize(g *graph.Graph) (*graph.Graph, error) {
	if len(s.Types) == 0 {
		return nil, fmt.Errorf("views: edge-inclusion summarizer needs at least one type")
	}
	keep := make(map[string]bool, len(s.Types))
	for _, t := range s.Types {
		keep[t] = true
	}
	return filterGraph(g,
		func(*graph.Vertex) bool { return true },
		func(e *graph.Edge) bool { return keep[e.Type] },
	)
}

// EdgeRemovalSummarizer removes edges of the listed types (Table II,
// "edge-removal summarizer").
type EdgeRemovalSummarizer struct {
	Types []string
}

var _ View = EdgeRemovalSummarizer{}

// Name returns e.g. SUMM_DROPE_TRANSFERS_TO.
func (s EdgeRemovalSummarizer) Name() string { return "SUMM_DROPE_" + joinSorted(s.Types) }

// Kind reports summarizer.
func (s EdgeRemovalSummarizer) Kind() Kind { return KindSummarizer }

// Describe returns a Table II style description.
func (s EdgeRemovalSummarizer) Describe() string {
	return fmt.Sprintf("edge-removal summarizer dropping edge types {%s}", strings.Join(s.Types, ", "))
}

// Cypher renders the defining filter as the canonical DDL body.
func (s EdgeRemovalSummarizer) Cypher() string {
	p, _ := CanonicalPattern(s)
	return p
}

// Materialize filters the graph.
func (s EdgeRemovalSummarizer) Materialize(g *graph.Graph) (*graph.Graph, error) {
	if len(s.Types) == 0 {
		return nil, fmt.Errorf("views: edge-removal summarizer needs at least one type")
	}
	drop := make(map[string]bool, len(s.Types))
	for _, t := range s.Types {
		drop[t] = true
	}
	return filterGraph(g,
		func(*graph.Vertex) bool { return true },
		func(e *graph.Edge) bool { return !drop[e.Type] },
	)
}

// AggFunc names a property aggregation function for aggregator
// summarizers.
type AggFunc string

// Supported aggregation functions.
const (
	AggSum   AggFunc = "sum"
	AggMin   AggFunc = "min"
	AggMax   AggFunc = "max"
	AggCount AggFunc = "count"
	AggAvg   AggFunc = "avg"
)

// VertexAggregatorSummarizer groups vertices of VType by the value of
// GroupBy and combines each group into a supervertex (Table II,
// "vertex-aggregator summarizer"); edges incident to group members are
// re-pointed at the supervertex. Aggs maps property keys to the function
// combining them on the supervertex. Vertices of other types pass
// through. The paper's library restricts aggregation to a single vertex
// type (§VI-B); so does ours.
type VertexAggregatorSummarizer struct {
	VType   string
	GroupBy string
	Aggs    map[string]AggFunc
}

var _ View = VertexAggregatorSummarizer{}

// Name returns e.g. SUMM_AGGV_Job_pipelineName.
func (s VertexAggregatorSummarizer) Name() string {
	return fmt.Sprintf("SUMM_AGGV_%s_%s", s.VType, s.GroupBy)
}

// Kind reports summarizer.
func (s VertexAggregatorSummarizer) Kind() Kind { return KindSummarizer }

// Describe returns a Table II style description.
func (s VertexAggregatorSummarizer) Describe() string {
	return fmt.Sprintf("vertex-aggregator summarizer grouping %s by %s", s.VType, s.GroupBy)
}

// Cypher renders the defining aggregation as the canonical DDL body
// (one supervertex per group).
func (s VertexAggregatorSummarizer) Cypher() string {
	p, _ := CanonicalPattern(s)
	return p
}

// Materialize builds the aggregated graph.
func (s VertexAggregatorSummarizer) Materialize(g *graph.Graph) (*graph.Graph, error) {
	if s.VType == "" || s.GroupBy == "" {
		return nil, fmt.Errorf("views: vertex aggregator needs a vertex type and group-by property")
	}
	if err := validateTypes(g, s.VType); err != nil {
		return nil, err
	}
	out := graph.NewGraph(nil)
	remap := make(map[graph.VertexID]graph.VertexID)
	// Pass through other types.
	for i := 0; i < g.NumVertices(); i++ {
		v := g.Vertex(graph.VertexID(i))
		if v.Type == s.VType {
			continue
		}
		nid, err := out.AddVertex(v.Type, v.Props)
		if err != nil {
			return nil, err
		}
		remap[v.ID] = nid
	}
	// Build supervertices per group value, deterministically ordered.
	groups := make(map[string][]graph.VertexID)
	var keys []string
	for _, id := range g.VerticesOfType(s.VType) {
		key := fmt.Sprintf("%v", g.Vertex(id).Prop(s.GroupBy))
		if _, ok := groups[key]; !ok {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], id)
	}
	sort.Strings(keys)
	for _, key := range keys {
		members := groups[key]
		props := graph.Properties{s.GroupBy: key, "members": int64(len(members))}
		for prop, fn := range s.Aggs {
			var vals []int64
			for _, id := range members {
				if v, ok := g.Vertex(id).Prop(prop).(int64); ok {
					vals = append(vals, v)
				}
			}
			agg, err := aggregateInts(fn, vals)
			if err != nil {
				return nil, err
			}
			props[prop] = agg
		}
		super, err := out.AddVertex(s.VType, props)
		if err != nil {
			return nil, err
		}
		for _, id := range members {
			remap[id] = super
		}
	}
	// Re-point edges; intra-group self loops are dropped.
	var err error
	g.EachEdge(func(e *graph.Edge) {
		if err != nil {
			return
		}
		from, to := remap[e.From], remap[e.To]
		if from == to && g.Vertex(e.From).Type == s.VType && g.Vertex(e.To).Type == s.VType && e.From != e.To {
			return // contracted within a group
		}
		_, err = out.AddEdge(from, to, e.Type, e.Props)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EdgeAggregatorSummarizer combines parallel edges (same source, target,
// and type) into a single superedge with aggregated properties (Table II,
// "edge-aggregator summarizer").
type EdgeAggregatorSummarizer struct {
	EType string // edge type to aggregate; "" = all types
	Aggs  map[string]AggFunc
}

var _ View = EdgeAggregatorSummarizer{}

// Name returns e.g. SUMM_AGGE_FOLLOWS.
func (s EdgeAggregatorSummarizer) Name() string {
	t := s.EType
	if t == "" {
		t = "ANY"
	}
	return "SUMM_AGGE_" + t
}

// Kind reports summarizer.
func (s EdgeAggregatorSummarizer) Kind() Kind { return KindSummarizer }

// Describe returns a Table II style description.
func (s EdgeAggregatorSummarizer) Describe() string {
	return fmt.Sprintf("edge-aggregator summarizer merging parallel %s edges", orAny(s.EType))
}

// Cypher renders the defining aggregation as the canonical DDL body
// (one superedge per (x, y) pair).
func (s EdgeAggregatorSummarizer) Cypher() string {
	p, _ := CanonicalPattern(s)
	return p
}

// Materialize merges parallel edges.
func (s EdgeAggregatorSummarizer) Materialize(g *graph.Graph) (*graph.Graph, error) {
	out := graph.NewGraph(g.Schema())
	remap, err := copyVerticesOfTypes(g, out, nil)
	if err != nil {
		return nil, err
	}
	type key struct {
		from, to graph.VertexID
		etype    string
	}
	buckets := make(map[key][]*graph.Edge)
	var order []key
	var passthrough []*graph.Edge
	g.EachEdge(func(e *graph.Edge) {
		if s.EType != "" && e.Type != s.EType {
			passthrough = append(passthrough, e)
			return
		}
		k := key{from: e.From, to: e.To, etype: e.Type}
		if _, ok := buckets[k]; !ok {
			order = append(order, k)
		}
		buckets[k] = append(buckets[k], e)
	})
	for _, e := range passthrough {
		if _, err := out.AddEdge(remap[e.From], remap[e.To], e.Type, e.Props); err != nil {
			return nil, err
		}
	}
	for _, k := range order {
		group := buckets[k]
		props := graph.Properties{"members": int64(len(group))}
		for prop, fn := range s.Aggs {
			var vals []int64
			for _, e := range group {
				if v, ok := e.Prop(prop).(int64); ok {
					vals = append(vals, v)
				}
			}
			agg, err := aggregateInts(fn, vals)
			if err != nil {
				return nil, err
			}
			props[prop] = agg
		}
		if _, err := out.AddEdge(remap[k.from], remap[k.to], k.etype, props); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SubgraphAggregatorSummarizer groups the vertices of VType that share a
// GroupBy value together with edges among them into one supervertex
// (Table II, "subgraph-aggregator summarizer"): it is the vertex
// aggregator plus merging of the group's internal edge mass into an
// "internalEdges" property on the supervertex.
type SubgraphAggregatorSummarizer struct {
	VType   string
	GroupBy string
	Aggs    map[string]AggFunc
}

var _ View = SubgraphAggregatorSummarizer{}

// Name returns e.g. SUMM_AGGSG_Job_community.
func (s SubgraphAggregatorSummarizer) Name() string {
	return fmt.Sprintf("SUMM_AGGSG_%s_%s", s.VType, s.GroupBy)
}

// Kind reports summarizer.
func (s SubgraphAggregatorSummarizer) Kind() Kind { return KindSummarizer }

// Describe returns a Table II style description.
func (s SubgraphAggregatorSummarizer) Describe() string {
	return fmt.Sprintf("subgraph-aggregator summarizer contracting %s groups by %s", s.VType, s.GroupBy)
}

// Cypher renders the defining aggregation as the canonical DDL body
// (one supervertex per group, internal edge mass annotated).
func (s SubgraphAggregatorSummarizer) Cypher() string {
	p, _ := CanonicalPattern(s)
	return p
}

// Materialize contracts each group subgraph into a supervertex.
func (s SubgraphAggregatorSummarizer) Materialize(g *graph.Graph) (*graph.Graph, error) {
	va := VertexAggregatorSummarizer{VType: s.VType, GroupBy: s.GroupBy, Aggs: s.Aggs}
	out, err := va.Materialize(g)
	if err != nil {
		return nil, err
	}
	// Count contracted internal edges per supervertex and annotate.
	internal := make(map[graph.VertexID]int64)
	g.EachEdge(func(e *graph.Edge) {
		if g.Vertex(e.From).Type != s.VType || g.Vertex(e.To).Type != s.VType || e.From == e.To {
			return
		}
		kf := fmt.Sprintf("%v", g.Vertex(e.From).Prop(s.GroupBy))
		kt := fmt.Sprintf("%v", g.Vertex(e.To).Prop(s.GroupBy))
		if kf == kt {
			// Find the supervertex by group key.
			for _, id := range out.VerticesOfType(s.VType) {
				if fmt.Sprintf("%v", out.Vertex(id).Prop(s.GroupBy)) == kf {
					internal[id]++
					break
				}
			}
		}
	})
	for id, n := range internal {
		out.Vertex(id).SetProp("internalEdges", n)
	}
	return out, nil
}

// --- shared helpers ---

// filterGraph copies the subgraph of vertices passing vkeep and edges
// passing ekeep whose endpoints both survive. The result keeps the
// original schema (filtering never violates it).
func filterGraph(g *graph.Graph, vkeep func(*graph.Vertex) bool, ekeep func(*graph.Edge) bool) (*graph.Graph, error) {
	out := graph.NewGraph(g.Schema())
	remap := make(map[graph.VertexID]graph.VertexID)
	var err error
	g.EachVertex(func(v *graph.Vertex) {
		if err != nil || !vkeep(v) {
			return
		}
		var nid graph.VertexID
		nid, err = out.AddVertex(v.Type, v.Props)
		if err == nil {
			remap[v.ID] = nid
		}
	})
	if err != nil {
		return nil, err
	}
	g.EachEdge(func(e *graph.Edge) {
		if err != nil {
			return
		}
		from, fok := remap[e.From]
		to, tok := remap[e.To]
		if !fok || !tok || !ekeep(e) {
			return
		}
		_, err = out.AddEdge(from, to, e.Type, e.Props)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func aggregateInts(fn AggFunc, vals []int64) (any, error) {
	switch fn {
	case AggCount:
		return int64(len(vals)), nil
	case AggSum:
		var s int64
		for _, v := range vals {
			s += v
		}
		return s, nil
	case AggMin:
		if len(vals) == 0 {
			return int64(0), nil
		}
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m, nil
	case AggMax:
		if len(vals) == 0 {
			return int64(0), nil
		}
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m, nil
	case AggAvg:
		if len(vals) == 0 {
			return float64(0), nil
		}
		var s int64
		for _, v := range vals {
			s += v
		}
		return float64(s) / float64(len(vals)), nil
	}
	return nil, fmt.Errorf("views: unknown aggregate function %q", fn)
}

func joinSorted(types []string) string {
	cp := append([]string(nil), types...)
	sort.Strings(cp)
	return strings.Join(cp, "_")
}
