package views

import (
	"bytes"
	"testing"

	"kaskade/internal/datagen"
	"kaskade/internal/graph"
)

// saveBytes serializes a graph so equivalence checks compare the whole
// artifact: schema, vertices, edges, properties, and insertion order.
func saveBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := graph.Save(&b, g); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestKHopMaterializeParallelMatchesSequential: the per-source fan-out
// must produce a byte-identical view graph — same edge insertion order,
// same dedup decisions — for typed and untyped connectors, with and
// without pair dedup, across worker counts.
func TestKHopMaterializeParallelMatchesSequential(t *testing.T) {
	prov, err := datagen.Prov(datagen.ProvConfig{
		Jobs: 80, Files: 200, TasksPerJob: 2, Machines: 8, Users: 4,
		MaxReads: 12, Pipelines: 5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	soc, err := datagen.SocialNetwork(datagen.SocialConfig{
		Users: 120, Edges: 700, Exponent: 2.3, MaxDegree: 30, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *graph.Graph
		def  ParallelView
	}{
		{"prov-job-job", prov, KHopConnector{SrcType: "Job", DstType: "Job", K: 2}},
		{"prov-dedup", prov, KHopConnector{SrcType: "Job", DstType: "Job", K: 2, DedupPairs: true}},
		{"prov-edge-filtered", prov, KHopConnector{SrcType: "Job", DstType: "Job", K: 2, EdgeTypes: []string{"WRITES_TO", "IS_READ_BY"}}},
		{"soc-any-any", soc, KHopConnector{K: 2}},
		{"soc-3hop-dedup", soc, KHopConnector{K: 3, DedupPairs: true}},
	}
	assertParallelMatchesSequential(t, cases)
}

// assertParallelMatchesSequential checks, per case, that the parallel
// build at several worker counts serializes to the exact bytes of the
// sequential build.
func assertParallelMatchesSequential(t *testing.T, cases []struct {
	name string
	g    *graph.Graph
	def  ParallelView
}) {
	t.Helper()
	for _, tc := range cases {
		seq, err := tc.def.Materialize(tc.g)
		if err != nil {
			t.Fatalf("%s: sequential: %v", tc.name, err)
		}
		if seq.NumEdges() == 0 {
			t.Errorf("%s: sequential build produced no edges — vacuous equivalence case", tc.name)
		}
		want := saveBytes(t, seq)
		for _, workers := range []int{2, 4, -1} {
			par, err := tc.def.MaterializeParallel(tc.g, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if got := saveBytes(t, par); !bytes.Equal(got, want) {
				t.Errorf("%s workers=%d: parallel view graph differs from sequential (%d vs %d bytes)",
					tc.name, workers, len(got), len(want))
			}
		}
	}
}

// TestConnectorClassesMaterializeParallelMatchSequential extends the
// byte-identity requirement to the other connector classes sharing the
// per-source DFS shape — same-vertex-type, same-edge-type, and
// source-to-sink — which previously fell back to sequential builds
// inside AddAll.
func TestConnectorClassesMaterializeParallelMatchSequential(t *testing.T) {
	prov, err := datagen.Prov(datagen.ProvConfig{
		Jobs: 70, Files: 180, TasksPerJob: 2, Machines: 8, Users: 4,
		MaxReads: 10, Pipelines: 5, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	dblp, err := datagen.DBLP(datagen.DBLPConfig{
		Authors: 60, Papers: 140, Venues: 6, MaxPerAuthor: 20, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *graph.Graph
		def  ParallelView
	}{
		{"samevt-author", dblp, SameVertexTypeConnector{VType: "Author", MaxLen: 2}},
		{"samevt-author-dedup", dblp, SameVertexTypeConnector{VType: "Author", MaxLen: 3, DedupPairs: true}},
		{"samevt-job", prov, SameVertexTypeConnector{VType: "Job", MaxLen: 2}},
		{"sameet-writes", prov, SameEdgeTypeConnector{EType: "WRITES_TO", MaxLen: 3}},
		{"sameet-authored-dedup", dblp, SameEdgeTypeConnector{EType: "AUTHORED", MaxLen: 2, DedupPairs: true}},
		{"srcsink", prov, SourceToSinkConnector{MaxLen: 4}},
		{"srcsink-dedup", prov, SourceToSinkConnector{MaxLen: 5, DedupPairs: true}},
	}
	assertParallelMatchesSequential(t, cases)
}
