package views

import (
	"bytes"
	"testing"

	"kaskade/internal/datagen"
	"kaskade/internal/graph"
)

// saveBytes serializes a graph so equivalence checks compare the whole
// artifact: schema, vertices, edges, properties, and insertion order.
func saveBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := graph.Save(&b, g); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestKHopMaterializeParallelMatchesSequential: the per-source fan-out
// must produce a byte-identical view graph — same edge insertion order,
// same dedup decisions — for typed and untyped connectors, with and
// without pair dedup, across worker counts.
func TestKHopMaterializeParallelMatchesSequential(t *testing.T) {
	prov, err := datagen.Prov(datagen.ProvConfig{
		Jobs: 80, Files: 200, TasksPerJob: 2, Machines: 8, Users: 4,
		MaxReads: 12, Pipelines: 5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	soc, err := datagen.SocialNetwork(datagen.SocialConfig{
		Users: 120, Edges: 700, Exponent: 2.3, MaxDegree: 30, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    *graph.Graph
		def  KHopConnector
	}{
		{"prov-job-job", prov, KHopConnector{SrcType: "Job", DstType: "Job", K: 2}},
		{"prov-dedup", prov, KHopConnector{SrcType: "Job", DstType: "Job", K: 2, DedupPairs: true}},
		{"prov-edge-filtered", prov, KHopConnector{SrcType: "Job", DstType: "Job", K: 2, EdgeTypes: []string{"WRITES_TO", "IS_READ_BY"}}},
		{"soc-any-any", soc, KHopConnector{K: 2}},
		{"soc-3hop-dedup", soc, KHopConnector{K: 3, DedupPairs: true}},
	}
	for _, tc := range cases {
		seq, err := tc.def.Materialize(tc.g)
		if err != nil {
			t.Fatalf("%s: sequential: %v", tc.name, err)
		}
		want := saveBytes(t, seq)
		for _, workers := range []int{2, 4, -1} {
			par, err := tc.def.MaterializeParallel(tc.g, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if got := saveBytes(t, par); !bytes.Equal(got, want) {
				t.Errorf("%s workers=%d: parallel view graph differs from sequential (%d vs %d bytes)",
					tc.name, workers, len(got), len(want))
			}
		}
	}
}
