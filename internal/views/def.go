package views

import (
	"fmt"
	"sort"
	"strings"

	"kaskade/internal/gql"
)

// ViewDef is a named, declaratively defined view: the catalog name the
// DDL introduced, the canonical CREATE VIEW statement text, and the
// compiled View. It is what CREATE VIEW produces and what the catalog's
// named-view registry stores; the struct constructors bridge into the
// same surface through Define.
type ViewDef struct {
	// Name is the catalog name (the DDL name; the view's structural
	// Name() for struct-built views wrapped by Define).
	Name string
	// DDL is the canonical CREATE MATERIALIZED VIEW statement text, or
	// "" when the view carries options outside the DDL surface
	// (multi-edge-type k-hop filters, DedupPairs).
	DDL string
	// View is the compiled view.
	View View
}

// Define wraps a struct-built view in a ViewDef named after the view's
// structural name, deriving the canonical DDL text where one exists —
// the bridge that lets struct-API views (MaterializeView,
// AdoptSelection) appear in SHOW VIEWS alongside DDL-created ones.
func Define(v View) ViewDef {
	d := ViewDef{Name: v.Name(), View: v}
	if pat, err := CanonicalPattern(v); err == nil {
		d.DDL = "CREATE MATERIALIZED VIEW " + d.Name + " AS " + pat
	}
	return d
}

// Compile parses src as a defining pattern and compiles it to the view
// class it denotes (CompilePattern).
func Compile(src string) (View, error) {
	q, err := gql.Parse(src)
	if err != nil {
		return nil, err
	}
	return CompilePattern(q)
}

// MustCompile is Compile that panics on error, for statically known
// view definitions.
func MustCompile(src string) View {
	v, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return v
}

// errInventory builds the error for patterns outside the Table I/II
// inventory, naming what was seen and pointing at the recognized shapes.
func errInventory(saw string) error {
	return fmt.Errorf("views: %s is outside the Table I/II view inventory; "+
		"recognized defining patterns: (x)-[*k..k]->(y) k-hop connector, "+
		"(x:T)-[*1..n]->(y:T) same-vertex-type, (x)-[:E*1..n]->(y) same-edge-type, "+
		"(x)-[*1..n]->(y) WHERE INDEGREE(x) = 0 AND OUTDEGREE(y) = 0 source-to-sink, "+
		"(v) WHERE [NOT] LABEL(v) = 'T' OR ... vertex in-/exclusion, "+
		"(x)-[e]->(y) WHERE [NOT] TYPE(e) = 'E' OR ... edge in-/exclusion, "+
		"(v:T) RETURN v.g, COUNT(v) vertex aggregator, "+
		"(x)-[e]->(y) RETURN x, y, COUNT(e) edge aggregator, "+
		"(v:T)-[e]->(w:T) WHERE v.g = w.g RETURN v.g, COUNT(v) subgraph aggregator", saw)
}

// CompilePattern recognizes which Table I/II view class the defining
// pattern of a CREATE VIEW statement denotes — k-hop, same-vertex-type,
// same-edge-type, or source-to-sink connector; inclusion/removal or
// aggregator summarizer — and returns the equivalent View. Patterns
// outside the inventory return a descriptive error. The inverse is
// CanonicalPattern: compiling a canonical pattern yields an equal view.
func CompilePattern(q gql.Query) (View, error) {
	m, ok := q.(*gql.MatchQuery)
	if !ok {
		return nil, errInventory("a SELECT block (views are defined by a bare MATCH pattern)")
	}
	if len(m.Patterns) != 1 {
		return nil, errInventory(fmt.Sprintf("a %d-pattern MATCH", len(m.Patterns)))
	}
	p := m.Patterns[0]
	switch {
	case len(p.Nodes) == 1:
		return compileVertexSummarizer(m, p)
	case len(p.Nodes) == 2:
		if p.Edges[0].Reversed {
			return nil, errInventory("a reversed edge pattern")
		}
		if p.Edges[0].VarLength {
			return compileConnector(m, p)
		}
		return compileEdgeShape(m, p)
	}
	return nil, errInventory(fmt.Sprintf("a %d-node path", len(p.Nodes)))
}

// compileConnector classifies the variable-length two-node shapes of
// Table I.
func compileConnector(m *gql.MatchQuery, p gql.PathPattern) (View, error) {
	x, y, e := p.Nodes[0], p.Nodes[1], p.Edges[0]
	if err := wantReturnVars(m.Return, x.Var, y.Var); err != nil {
		return nil, err
	}
	if e.MaxHops < 0 {
		return nil, fmt.Errorf("views: connector patterns need a bounded hop range, got *%d..", e.MinHops)
	}
	// Source-to-sink: the endpoint degree predicate is the class marker.
	if m.Where != nil {
		if err := wantSourceSinkWhere(m.Where, x.Var, y.Var); err != nil {
			return nil, err
		}
		if x.Type != "" || y.Type != "" || e.Type != "" {
			return nil, errInventory("a typed source-to-sink pattern")
		}
		if e.MinHops != 1 {
			return nil, fmt.Errorf("views: source-to-sink connector paths start at 1 hop, got *%d..%d", e.MinHops, e.MaxHops)
		}
		return SourceToSinkConnector{MaxLen: e.MaxHops}, nil
	}
	if e.MinHops == e.MaxHops {
		if e.MinHops < 1 {
			return nil, fmt.Errorf("views: k-hop connector needs k >= 1, got *%d..%d", e.MinHops, e.MaxHops)
		}
		c := KHopConnector{SrcType: x.Type, DstType: y.Type, K: e.MinHops}
		if e.Type != "" {
			c.EdgeTypes = []string{e.Type}
		}
		return c, nil
	}
	if e.MinHops == 1 {
		switch {
		case x.Type != "" && x.Type == y.Type && e.Type == "":
			return SameVertexTypeConnector{VType: x.Type, MaxLen: e.MaxHops}, nil
		case x.Type == "" && y.Type == "" && e.Type != "":
			return SameEdgeTypeConnector{EType: e.Type, MaxLen: e.MaxHops}, nil
		}
	}
	return nil, errInventory(fmt.Sprintf("a *%d..%d path between (%s) and (%s)",
		e.MinHops, e.MaxHops, orAny(x.Type), orAny(y.Type)))
}

// compileVertexSummarizer classifies the single-node shapes of Table II:
// label filters (inclusion/removal) and the vertex aggregator.
func compileVertexSummarizer(m *gql.MatchQuery, p gql.PathPattern) (View, error) {
	v := p.Nodes[0]
	if v.Var == "" {
		return nil, errInventory("an anonymous vertex pattern")
	}
	if m.Where != nil {
		// Label filter: MATCH (v) WHERE [NOT] LABEL(v)='A' OR ... RETURN v.
		if v.Type != "" {
			return nil, errInventory("a typed vertex pattern with a WHERE filter")
		}
		if err := wantReturnVars(m.Return, v.Var); err != nil {
			return nil, err
		}
		if inner, ok := notOperand(m.Where); ok {
			types, err := labelDisjunction(inner, "LABEL", v.Var)
			if err != nil {
				return nil, err
			}
			return VertexRemovalSummarizer{Types: types}, nil
		}
		types, err := labelDisjunction(m.Where, "LABEL", v.Var)
		if err != nil {
			return nil, err
		}
		return VertexInclusionSummarizer{Types: types}, nil
	}
	// Vertex aggregator: MATCH (v:T) RETURN v.g, COUNT(v)[, AGG(v.p)...].
	if v.Type == "" {
		return nil, errInventory("an untyped vertex pattern without a WHERE filter")
	}
	group, aggs, err := aggregatorReturn(m.Return, v.Var)
	if err != nil {
		return nil, err
	}
	return VertexAggregatorSummarizer{VType: v.Type, GroupBy: group, Aggs: aggs}, nil
}

// compileEdgeShape classifies the plain-edge two-node shapes of Table
// II: edge type filters, the edge aggregator, and the subgraph
// aggregator.
func compileEdgeShape(m *gql.MatchQuery, p gql.PathPattern) (View, error) {
	x, y, e := p.Nodes[0], p.Nodes[1], p.Edges[0]
	if e.Var == "" {
		return nil, errInventory("an anonymous edge pattern (summarizer shapes bind the edge, e.g. -[e]->)")
	}
	if m.Where != nil {
		// Subgraph aggregator: (v:T)-[e]->(w:T) WHERE v.g = w.g
		// RETURN v.g, COUNT(v)[, AGG(v.p)...].
		if group, ok := groupEquality(m.Where, x.Var, y.Var); ok {
			if x.Type == "" || x.Type != y.Type {
				return nil, errInventory("a subgraph-aggregator pattern whose endpoints are not one vertex type")
			}
			g2, aggs, err := aggregatorReturn(m.Return, x.Var)
			if err != nil {
				return nil, err
			}
			if g2 != group {
				return nil, fmt.Errorf("views: subgraph aggregator groups by %s.%s but returns %s.%s", x.Var, group, x.Var, g2)
			}
			return SubgraphAggregatorSummarizer{VType: x.Type, GroupBy: group, Aggs: aggs}, nil
		}
		// Edge type filter: (x)-[e]->(y) WHERE [NOT] TYPE(e)='E' OR ...
		// RETURN x, e, y.
		if x.Type != "" || y.Type != "" || e.Type != "" {
			return nil, errInventory("a typed pattern with an edge WHERE filter")
		}
		if err := wantReturnVars(m.Return, x.Var, e.Var, y.Var); err != nil {
			return nil, err
		}
		if inner, ok := notOperand(m.Where); ok {
			types, err := labelDisjunction(inner, "TYPE", e.Var)
			if err != nil {
				return nil, err
			}
			return EdgeRemovalSummarizer{Types: types}, nil
		}
		types, err := labelDisjunction(m.Where, "TYPE", e.Var)
		if err != nil {
			return nil, err
		}
		return EdgeInclusionSummarizer{Types: types}, nil
	}
	// Edge aggregator: (x)-[e[:E]]->(y) RETURN x, y, COUNT(e)[, AGG(e.p)...].
	if x.Type != "" || y.Type != "" {
		return nil, errInventory("an edge-aggregator pattern with typed endpoints")
	}
	if len(m.Return) < 3 {
		return nil, errInventory("a plain-edge pattern without a filter or aggregation")
	}
	if err := wantReturnVars(m.Return[:2], x.Var, y.Var); err != nil {
		return nil, err
	}
	if err := wantCount(m.Return[2].Expr, e.Var); err != nil {
		return nil, err
	}
	aggs, err := aggItems(m.Return[3:], e.Var)
	if err != nil {
		return nil, err
	}
	return EdgeAggregatorSummarizer{EType: e.Type, Aggs: aggs}, nil
}

// --- shape helpers ---

// wantReturnVars checks the RETURN items are exactly the given
// variables, in order, unaliased.
func wantReturnVars(items []gql.ReturnItem, vars ...string) error {
	if len(items) != len(vars) {
		return fmt.Errorf("views: view pattern must RETURN exactly %s, got %d items", strings.Join(vars, ", "), len(items))
	}
	for i, want := range vars {
		if want == "" {
			return errInventory("an anonymous vertex in the defining pattern")
		}
		id, ok := items[i].Expr.(*gql.Ident)
		if !ok || id.Name != want || items[i].Alias != "" {
			return fmt.Errorf("views: view pattern must RETURN exactly %s, got %s", strings.Join(vars, ", "), items[i].Expr.String())
		}
	}
	return nil
}

// notOperand unwraps a top-level NOT, reporting whether one was present.
func notOperand(e gql.Expr) (gql.Expr, bool) {
	if u, ok := e.(*gql.UnaryExpr); ok && u.Op == "NOT" {
		return u.Operand, true
	}
	return nil, false
}

// labelDisjunction flattens an OR-tree of fn(v) = 'T' comparisons into
// the sorted type list, where fn is LABEL (vertices) or TYPE (edges).
func labelDisjunction(e gql.Expr, fn, v string) ([]string, error) {
	var types []string
	var walk func(e gql.Expr) error
	walk = func(e gql.Expr) error {
		b, ok := e.(*gql.BinaryExpr)
		if !ok {
			return fmt.Errorf("views: expected %s(%s) = '...' [OR ...], got %s", fn, v, e.String())
		}
		if b.Op == "OR" {
			if err := walk(b.Left); err != nil {
				return err
			}
			return walk(b.Right)
		}
		if b.Op != "=" {
			return fmt.Errorf("views: expected %s(%s) = '...' comparisons, got operator %s", fn, v, b.Op)
		}
		call, ok := b.Left.(*gql.FuncCall)
		if !ok || call.Name != fn || call.Star || len(call.Args) != 1 {
			return fmt.Errorf("views: expected %s(%s) on the left of =, got %s", fn, v, b.Left.String())
		}
		if id, ok := call.Args[0].(*gql.Ident); !ok || id.Name != v {
			return fmt.Errorf("views: %s must apply to the pattern variable %s, got %s", fn, v, call.Args[0].String())
		}
		lit, ok := b.Right.(*gql.Lit)
		if !ok {
			return fmt.Errorf("views: expected a string literal on the right of =, got %s", b.Right.String())
		}
		s, ok := lit.Value.(string)
		if !ok || s == "" {
			return fmt.Errorf("views: expected a non-empty string literal type name, got %s", b.Right.String())
		}
		types = append(types, s)
		return nil
	}
	if err := walk(e); err != nil {
		return nil, err
	}
	sort.Strings(types)
	return types, nil
}

// wantSourceSinkWhere matches INDEGREE(x) = 0 AND OUTDEGREE(y) = 0 (in
// either conjunct order).
func wantSourceSinkWhere(e gql.Expr, x, y string) error {
	fail := func() error {
		return fmt.Errorf("views: a connector WHERE clause must be INDEGREE(%s) = 0 AND OUTDEGREE(%s) = 0 (source-to-sink), got %s", x, y, e.String())
	}
	b, ok := e.(*gql.BinaryExpr)
	if !ok || b.Op != "AND" {
		return fail()
	}
	seen := map[string]bool{}
	for _, side := range []gql.Expr{b.Left, b.Right} {
		cmp, ok := side.(*gql.BinaryExpr)
		if !ok || cmp.Op != "=" {
			return fail()
		}
		call, ok := cmp.Left.(*gql.FuncCall)
		if !ok || call.Star || len(call.Args) != 1 {
			return fail()
		}
		id, ok := call.Args[0].(*gql.Ident)
		if !ok {
			return fail()
		}
		lit, ok := cmp.Right.(*gql.Lit)
		if !ok || lit.Value != int64(0) {
			return fail()
		}
		switch {
		case call.Name == "INDEGREE" && id.Name == x:
			seen["in"] = true
		case call.Name == "OUTDEGREE" && id.Name == y:
			seen["out"] = true
		default:
			return fail()
		}
	}
	if !seen["in"] || !seen["out"] {
		return fail()
	}
	return nil
}

// groupEquality matches v.g = w.g between the two pattern variables and
// returns the shared property name.
func groupEquality(e gql.Expr, x, y string) (string, bool) {
	b, ok := e.(*gql.BinaryExpr)
	if !ok || b.Op != "=" {
		return "", false
	}
	l, lok := b.Left.(*gql.PropAccess)
	r, rok := b.Right.(*gql.PropAccess)
	if !lok || !rok || l.Key != r.Key || l.Base != x || r.Base != y {
		return "", false
	}
	return l.Key, true
}

// aggregatorReturn matches v.g, COUNT(v)[, AGG(v.p)...] and returns the
// group-by property and the extra aggregations.
func aggregatorReturn(items []gql.ReturnItem, v string) (string, map[string]AggFunc, error) {
	if len(items) < 2 {
		return "", nil, fmt.Errorf("views: aggregator patterns RETURN %s.group, COUNT(%s)[, AGG(%s.prop)...], got %d items", v, v, v, len(items))
	}
	pa, ok := items[0].Expr.(*gql.PropAccess)
	if !ok || pa.Base != v {
		return "", nil, fmt.Errorf("views: aggregator patterns group by a property of %s, got %s", v, items[0].Expr.String())
	}
	if err := wantCount(items[1].Expr, v); err != nil {
		return "", nil, err
	}
	aggs, err := aggItems(items[2:], v)
	if err != nil {
		return "", nil, err
	}
	return pa.Key, aggs, nil
}

// wantCount matches COUNT(v).
func wantCount(e gql.Expr, v string) error {
	call, ok := e.(*gql.FuncCall)
	if !ok || call.Name != "COUNT" || call.Star || len(call.Args) != 1 {
		return fmt.Errorf("views: aggregator patterns mark the group with COUNT(%s), got %s", v, e.String())
	}
	if id, ok := call.Args[0].(*gql.Ident); !ok || id.Name != v {
		return fmt.Errorf("views: aggregator patterns mark the group with COUNT(%s), got %s", v, e.String())
	}
	return nil
}

// gqlAggFuncs maps gql aggregate names to view aggregation functions.
var gqlAggFuncs = map[string]AggFunc{
	"SUM": AggSum, "MIN": AggMin, "MAX": AggMax, "COUNT": AggCount, "AVG": AggAvg,
}

// aggItems compiles trailing AGG(v.prop) return items into an Aggs map
// (nil when there are none).
func aggItems(items []gql.ReturnItem, v string) (map[string]AggFunc, error) {
	if len(items) == 0 {
		return nil, nil
	}
	aggs := make(map[string]AggFunc, len(items))
	for _, it := range items {
		call, ok := it.Expr.(*gql.FuncCall)
		if !ok || call.Star || len(call.Args) != 1 {
			return nil, fmt.Errorf("views: expected AGG(%s.prop) aggregation items, got %s", v, it.Expr.String())
		}
		fn, ok := gqlAggFuncs[call.Name]
		if !ok {
			return nil, fmt.Errorf("views: unknown aggregation function %s (supported: SUM, MIN, MAX, COUNT, AVG)", call.Name)
		}
		pa, ok := call.Args[0].(*gql.PropAccess)
		if !ok || pa.Base != v {
			return nil, fmt.Errorf("views: aggregations apply to properties of %s, got %s", v, call.Args[0].String())
		}
		if _, dup := aggs[pa.Key]; dup {
			return nil, fmt.Errorf("views: property %s aggregated twice", pa.Key)
		}
		aggs[pa.Key] = fn
	}
	return aggs, nil
}

// --- canonical rendering (the inverse of CompilePattern) ---

// CanonicalPattern renders the canonical defining pattern for v: text
// that parses and compiles (CompilePattern) back to an equal view, the
// round-trip behind DDL display in SHOW VIEWS, Explain, and candidate
// listings. Views carrying options outside the DDL surface — k-hop
// filters over multiple edge types, DedupPairs — return an error; the
// struct API remains their escape hatch.
func CanonicalPattern(v View) (string, error) {
	switch v := v.(type) {
	case KHopConnector:
		if v.DedupPairs {
			return "", errNotDDL(v, "DedupPairs")
		}
		if len(v.EdgeTypes) > 1 {
			return "", errNotDDL(v, "multiple edge types")
		}
		et := ""
		if len(v.EdgeTypes) == 1 {
			et = ":" + v.EdgeTypes[0]
		}
		return fmt.Sprintf("MATCH (x%s)-[p%s*%d..%d]->(y%s) RETURN x, y",
			colonType(v.SrcType), et, v.K, v.K, colonType(v.DstType)), nil
	case SameVertexTypeConnector:
		if v.DedupPairs {
			return "", errNotDDL(v, "DedupPairs")
		}
		return fmt.Sprintf("MATCH (x:%s)-[p*1..%d]->(y:%s) RETURN x, y", v.VType, v.MaxLen, v.VType), nil
	case SameEdgeTypeConnector:
		if v.DedupPairs {
			return "", errNotDDL(v, "DedupPairs")
		}
		return fmt.Sprintf("MATCH (x)-[p:%s*1..%d]->(y) RETURN x, y", v.EType, v.MaxLen), nil
	case SourceToSinkConnector:
		if v.DedupPairs {
			return "", errNotDDL(v, "DedupPairs")
		}
		return fmt.Sprintf("MATCH (x)-[p*1..%d]->(y) WHERE INDEGREE(x) = 0 AND OUTDEGREE(y) = 0 RETURN x, y", v.MaxLen), nil
	case VertexInclusionSummarizer:
		return "MATCH (v) WHERE " + labelOr("LABEL", "v", v.Types) + " RETURN v", nil
	case VertexRemovalSummarizer:
		return "MATCH (v) WHERE NOT (" + labelOr("LABEL", "v", v.Types) + ") RETURN v", nil
	case EdgeInclusionSummarizer:
		return "MATCH (x)-[e]->(y) WHERE " + labelOr("TYPE", "e", v.Types) + " RETURN x, e, y", nil
	case EdgeRemovalSummarizer:
		return "MATCH (x)-[e]->(y) WHERE NOT (" + labelOr("TYPE", "e", v.Types) + ") RETURN x, e, y", nil
	case VertexAggregatorSummarizer:
		return fmt.Sprintf("MATCH (v:%s) RETURN v.%s, COUNT(v)%s", v.VType, v.GroupBy, aggTail("v", v.Aggs)), nil
	case EdgeAggregatorSummarizer:
		return fmt.Sprintf("MATCH (x)-[e%s]->(y) RETURN x, y, COUNT(e)%s", colonType(v.EType), aggTail("e", v.Aggs)), nil
	case SubgraphAggregatorSummarizer:
		return fmt.Sprintf("MATCH (v:%s)-[e]->(w:%s) WHERE v.%s = w.%s RETURN v.%s, COUNT(v)%s",
			v.VType, v.VType, v.GroupBy, v.GroupBy, v.GroupBy, aggTail("v", v.Aggs)), nil
	}
	return "", fmt.Errorf("views: %T has no canonical DDL pattern", v)
}

func errNotDDL(v View, opt string) error {
	return fmt.Errorf("views: %s uses %s, which the DDL surface cannot express (build it through the struct API)", v.Name(), opt)
}

// labelOr renders the sorted fn(v) = 'T' disjunction.
func labelOr(fn, v string, types []string) string {
	cp := append([]string(nil), types...)
	sort.Strings(cp)
	parts := make([]string, len(cp))
	for i, t := range cp {
		parts[i] = fmt.Sprintf("%s(%s) = '%s'", fn, v, t)
	}
	return strings.Join(parts, " OR ")
}

// aggTail renders trailing aggregation items in sorted property order.
func aggTail(v string, aggs map[string]AggFunc) string {
	if len(aggs) == 0 {
		return ""
	}
	props := make([]string, 0, len(aggs))
	for p := range aggs {
		props = append(props, p)
	}
	sort.Strings(props)
	var b strings.Builder
	for _, p := range props {
		fmt.Fprintf(&b, ", %s(%s.%s)", strings.ToUpper(string(aggs[p])), v, p)
	}
	return b.String()
}
