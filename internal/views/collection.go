package views

import (
	"fmt"

	"kaskade/internal/delta"
	"kaskade/internal/graph"
)

// MaintainedCollection maintains the chained k-hop connector views for
// k=1..MaxK as one collection. The views share endpoint types and edge
// filter, so each base insertion needs only one delta computation: the
// bounded prefix/suffix frontier that delta.EdgeDeltas walks once
// serves every k, where independent MaintainedConnectors would re-walk
// it per view. This is the collections-of-related-views shape that
// Graphsurge (PAPERS.md) exploits — maintain the family, not each
// member.
type MaintainedCollection struct {
	template KHopConnector // K is the collection's MaxK
	base     *graph.Graph
	views    []*graph.Graph // views[k-1] is the k-hop view
	ks       []int
	// remap maps base vertex IDs to view vertex IDs. Every view in the
	// chain keeps the same endpoint types, so one mapping serves all.
	remap map[graph.VertexID]graph.VertexID
}

// NewMaintainedCollection materializes the k-hop connectors k=1..def.K
// over base and returns their shared maintainer. Like the single-view
// maintainer, it requires path semantics, and all subsequent mutations
// must go through the collection.
func NewMaintainedCollection(def KHopConnector, base *graph.Graph) (*MaintainedCollection, error) {
	if def.DedupPairs {
		return nil, fmt.Errorf("views: incremental maintenance requires path semantics (DedupPairs=false)")
	}
	if def.K < 1 {
		return nil, fmt.Errorf("views: collection needs K >= 1, got %d", def.K)
	}
	c := &MaintainedCollection{
		template: def,
		base:     base,
		remap:    make(map[graph.VertexID]graph.VertexID),
	}
	for k := 1; k <= def.K; k++ {
		dk := def
		dk.K = k
		view, err := dk.Materialize(base)
		if err != nil {
			return nil, err
		}
		c.views = append(c.views, view)
		c.ks = append(c.ks, k)
	}
	// Rebuild the base->view vertex mapping the materializer used: it
	// copies endpoint-type vertices in base-ID order, identically for
	// every k, so the chain shares one mapping.
	next := 0
	for i := 0; i < base.NumVertices(); i++ {
		v := base.Vertex(graph.VertexID(i))
		if c.keepsType(v.Type) {
			c.remap[v.ID] = graph.VertexID(next)
			next++
		}
	}
	for _, view := range c.views {
		if next != view.NumVertices() {
			return nil, fmt.Errorf("views: collection mapping mismatch: %d mapped, %d in view", next, view.NumVertices())
		}
	}
	return c, nil
}

// View returns the maintained k-hop view (read-only for callers).
func (c *MaintainedCollection) View(k int) *graph.Graph { return c.views[k-1] }

// MaxK returns the largest hop count in the chain.
func (c *MaintainedCollection) MaxK() int { return c.template.K }

// Base returns the underlying base graph.
func (c *MaintainedCollection) Base() *graph.Graph { return c.base }

func (c *MaintainedCollection) keepsType(t string) bool {
	if c.template.SrcType == "" && c.template.DstType == "" {
		return true
	}
	return t == c.template.SrcType || t == c.template.DstType
}

// name returns the k-hop member's view name (CONN_kHOP_...).
func (c *MaintainedCollection) name(k int) string {
	dk := c.template
	dk.K = k
	return dk.Name()
}

// AddVertex adds a vertex to the base graph and mirrors it into every
// view in the chain when its type is an endpoint type.
func (c *MaintainedCollection) AddVertex(vtype string, props graph.Properties) (graph.VertexID, error) {
	id, err := c.base.AddVertex(vtype, props)
	if err != nil {
		return graph.NoVertex, err
	}
	if c.keepsType(vtype) {
		for _, view := range c.views {
			vid, err := view.AddVertex(vtype, props)
			if err != nil {
				return graph.NoVertex, err
			}
			c.remap[id] = vid // identical vid across the chain
		}
	}
	return id, nil
}

// AddEdge adds an edge to the base graph and applies each view's edge
// delta, all computed from one shared prefix/suffix frontier walk.
func (c *MaintainedCollection) AddEdge(from, to graph.VertexID, etype string, props graph.Properties) (graph.EdgeID, error) {
	if allow := edgeTypeFilter(c.template.EdgeTypes); !allow(etype) {
		// The edge can never participate in any view of the chain.
		return c.base.AddEdge(from, to, etype, props)
	}
	eid, err := c.base.AddEdge(from, to, etype, props)
	if err != nil {
		return eid, err
	}
	deltas := delta.EdgeDeltas(c.base, eid, delta.Config{
		SrcType:   c.template.SrcType,
		DstType:   c.template.DstType,
		EdgeTypes: c.template.EdgeTypes,
		Ks:        c.ks,
	})
	for _, k := range c.ks {
		if err := applyDelta(c.views[k-1], c.remap, c.name(k), deltas[k]); err != nil {
			return eid, err
		}
	}
	return eid, nil
}
