package views

import (
	"fmt"

	"kaskade/internal/delta"
	"kaskade/internal/graph"
)

// MaintainedConnector keeps a materialized k-hop connector view
// incrementally consistent with its base graph as vertices and edges are
// added. This implements the maintenance side of graph views that the
// paper inherits from Zhuge & Garcia-Molina [23] and lists as part of
// making views practical: rematerializing on every base update would
// erase the amortization views exist to provide.
//
// The graphs in this engine are append-only, so maintenance handles
// insertions (the dominant case for provenance/lineage graphs, which
// only grow); deletions would require tombstoning and are out of scope,
// as in the paper's prototype.
//
// The view's edge delta for each base insertion comes from
// delta.EdgeDeltas — bounded prefix/suffix walks around the new edge —
// rather than a walk entangled with the view's own insertion logic, so
// a chain of k-hop views can share one delta computation (see
// MaintainedCollection).
//
// Frozen-view interaction: with delta-overlay storage (the default),
// mutations routed through the maintainer land in the cached snapshots'
// delta tails — neither the base nor the view pays an O(V+E) refreeze,
// and a mutation the view filters out touches the view's snapshot not
// at all. Compaction folds the tails off the hot path
// (graph.Graph.Compact).
type MaintainedConnector struct {
	def  KHopConnector
	base *graph.Graph
	view *graph.Graph
	// remap maps base vertex IDs to view vertex IDs for endpoint types.
	remap map[graph.VertexID]graph.VertexID
}

// NewMaintainedConnector materializes the connector over base and
// returns a maintainer. All subsequent mutations must go through the
// maintainer for the view to stay consistent.
func NewMaintainedConnector(def KHopConnector, base *graph.Graph) (*MaintainedConnector, error) {
	if def.DedupPairs {
		return nil, fmt.Errorf("views: incremental maintenance requires path semantics (DedupPairs=false)")
	}
	view, err := def.Materialize(base)
	if err != nil {
		return nil, err
	}
	m := &MaintainedConnector{
		def:   def,
		base:  base,
		view:  view,
		remap: make(map[graph.VertexID]graph.VertexID),
	}
	// Rebuild the base->view vertex mapping the materializer used: it
	// copies endpoint-type vertices in base-ID order.
	next := 0
	for i := 0; i < base.NumVertices(); i++ {
		v := base.Vertex(graph.VertexID(i))
		if m.keepsType(v.Type) {
			m.remap[v.ID] = graph.VertexID(next)
			next++
		}
	}
	if next != view.NumVertices() {
		return nil, fmt.Errorf("views: maintenance mapping mismatch: %d mapped, %d in view", next, view.NumVertices())
	}
	return m, nil
}

// View returns the maintained view graph (read-only for callers).
func (m *MaintainedConnector) View() *graph.Graph { return m.view }

// Base returns the underlying base graph.
func (m *MaintainedConnector) Base() *graph.Graph { return m.base }

func (m *MaintainedConnector) keepsType(t string) bool {
	if m.def.SrcType == "" && m.def.DstType == "" {
		return true
	}
	return t == m.def.SrcType || t == m.def.DstType
}

// AddVertex adds a vertex to the base graph and mirrors it into the view
// when its type is an endpoint type.
func (m *MaintainedConnector) AddVertex(vtype string, props graph.Properties) (graph.VertexID, error) {
	id, err := m.base.AddVertex(vtype, props)
	if err != nil {
		return graph.NoVertex, err
	}
	if m.keepsType(vtype) {
		vid, err := m.view.AddVertex(vtype, props)
		if err != nil {
			return graph.NoVertex, err
		}
		m.remap[id] = vid
	}
	return id, nil
}

// AddEdge adds an edge to the base graph and inserts the contracted
// edges for every new k-length path that uses it, as computed by
// delta.EdgeDeltas: for each split position i, backward (i)-length
// prefixes into the edge's source are combined with forward
// (k-1-i)-length suffixes out of its target, honoring path
// edge-uniqueness across prefix+edge+suffix.
func (m *MaintainedConnector) AddEdge(from, to graph.VertexID, etype string, props graph.Properties) (graph.EdgeID, error) {
	if allow := edgeTypeFilter(m.def.EdgeTypes); !allow(etype) {
		// The edge can never participate in a contracted path; just add.
		return m.base.AddEdge(from, to, etype, props)
	}
	eid, err := m.base.AddEdge(from, to, etype, props)
	if err != nil {
		return eid, err
	}
	deltas := delta.EdgeDeltas(m.base, eid, delta.Config{
		SrcType:   m.def.SrcType,
		DstType:   m.def.DstType,
		EdgeTypes: m.def.EdgeTypes,
		Ks:        []int{m.def.K},
	})
	return eid, applyDelta(m.view, m.remap, m.def.Name(), deltas[m.def.K])
}

// applyDelta inserts one view's edge delta, translating base endpoint
// IDs through the maintainer's vertex mapping.
func applyDelta(view *graph.Graph, remap map[graph.VertexID]graph.VertexID, name string, des []delta.Edge) error {
	for _, de := range des {
		vf, ok1 := remap[de.From]
		vt, ok2 := remap[de.To]
		if !ok1 || !ok2 {
			return fmt.Errorf("views: maintenance: endpoint not mirrored into view")
		}
		if _, err := view.AddEdge(vf, vt, name, graph.Properties{
			"ts": de.TS, "hops": int64(de.K),
		}); err != nil {
			return err
		}
	}
	return nil
}
