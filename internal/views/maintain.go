package views

import (
	"fmt"

	"kaskade/internal/graph"
)

// MaintainedConnector keeps a materialized k-hop connector view
// incrementally consistent with its base graph as vertices and edges are
// added. This implements the maintenance side of graph views that the
// paper inherits from Zhuge & Garcia-Molina [23] and lists as part of
// making views practical: rematerializing on every base update would
// erase the amortization views exist to provide.
//
// The graphs in this engine are append-only, so maintenance handles
// insertions (the dominant case for provenance/lineage graphs, which
// only grow); deletions would require tombstoning and are out of scope,
// as in the paper's prototype.
//
// Frozen-view interaction: every AddVertex/AddEdge routed through the
// maintainer invalidates the cached CSR view (graph.Frozen) of both
// the base and the view graph, so the next query over either pays one
// O(V+E) Freeze rebuild. The incremental edge maintenance itself stays
// cheap; only the storage index is coarse-grained. Batch mutations
// between query bursts where that matters — incremental CSR
// maintenance is an open ROADMAP item.
type MaintainedConnector struct {
	def  KHopConnector
	base *graph.Graph
	view *graph.Graph
	// remap maps base vertex IDs to view vertex IDs for endpoint types.
	remap map[graph.VertexID]graph.VertexID
}

// NewMaintainedConnector materializes the connector over base and
// returns a maintainer. All subsequent mutations must go through the
// maintainer for the view to stay consistent.
func NewMaintainedConnector(def KHopConnector, base *graph.Graph) (*MaintainedConnector, error) {
	if def.DedupPairs {
		return nil, fmt.Errorf("views: incremental maintenance requires path semantics (DedupPairs=false)")
	}
	view, err := def.Materialize(base)
	if err != nil {
		return nil, err
	}
	m := &MaintainedConnector{
		def:   def,
		base:  base,
		view:  view,
		remap: make(map[graph.VertexID]graph.VertexID),
	}
	// Rebuild the base->view vertex mapping the materializer used: it
	// copies endpoint-type vertices in base-ID order.
	next := 0
	for i := 0; i < base.NumVertices(); i++ {
		v := base.Vertex(graph.VertexID(i))
		if m.keepsType(v.Type) {
			m.remap[v.ID] = graph.VertexID(next)
			next++
		}
	}
	if next != view.NumVertices() {
		return nil, fmt.Errorf("views: maintenance mapping mismatch: %d mapped, %d in view", next, view.NumVertices())
	}
	return m, nil
}

// View returns the maintained view graph (read-only for callers).
func (m *MaintainedConnector) View() *graph.Graph { return m.view }

// Base returns the underlying base graph.
func (m *MaintainedConnector) Base() *graph.Graph { return m.base }

func (m *MaintainedConnector) keepsType(t string) bool {
	if m.def.SrcType == "" && m.def.DstType == "" {
		return true
	}
	return t == m.def.SrcType || t == m.def.DstType
}

// AddVertex adds a vertex to the base graph and mirrors it into the view
// when its type is an endpoint type.
func (m *MaintainedConnector) AddVertex(vtype string, props graph.Properties) (graph.VertexID, error) {
	id, err := m.base.AddVertex(vtype, props)
	if err != nil {
		return graph.NoVertex, err
	}
	if m.keepsType(vtype) {
		vid, err := m.view.AddVertex(vtype, props)
		if err != nil {
			return graph.NoVertex, err
		}
		m.remap[id] = vid
	}
	return id, nil
}

// AddEdge adds an edge to the base graph and inserts the contracted
// edges for every new k-length path that uses it: for each split
// position i, backward (i)-length prefixes into the edge's source are
// combined with forward (k-1-i)-length suffixes out of its target,
// honoring path edge-uniqueness across prefix+edge+suffix.
func (m *MaintainedConnector) AddEdge(from, to graph.VertexID, etype string, props graph.Properties) (graph.EdgeID, error) {
	if allow := edgeTypeFilter(m.def.EdgeTypes); !allow(etype) {
		// The edge can never participate in a contracted path; just add.
		return m.base.AddEdge(from, to, etype, props)
	}
	eid, err := m.base.AddEdge(from, to, etype, props)
	if err != nil {
		return eid, err
	}
	newEdge := m.base.Edge(eid)
	k := m.def.K
	allow := edgeTypeFilter(m.def.EdgeTypes)

	// used tracks edges on the current prefix+edge+suffix combination.
	used := map[graph.EdgeID]bool{eid: true}

	// For each position of the new edge within the k-length path:
	for i := 0; i <= k-1; i++ {
		prefixLen, suffixLen := i, k-1-i
		var walkSuffix func(at graph.VertexID, rem int, maxTS int64, emit func(end graph.VertexID, maxTS int64) error) error
		walkSuffix = func(at graph.VertexID, rem int, maxTS int64, emit func(graph.VertexID, int64) error) error {
			if rem == 0 {
				return emit(at, maxTS)
			}
			for _, oe := range m.base.Out(at) {
				if used[oe] {
					continue
				}
				e := m.base.Edge(oe)
				if !allow(e.Type) {
					continue
				}
				used[oe] = true
				err := walkSuffix(e.To, rem-1, maxInt64(maxTS, tsOf(e)), emit)
				used[oe] = false
				if err != nil {
					return err
				}
			}
			return nil
		}
		var walkPrefix func(at graph.VertexID, rem int, maxTS int64) error
		walkPrefix = func(at graph.VertexID, rem int, maxTS int64) error {
			if rem == 0 {
				start := at
				if m.def.SrcType != "" && m.base.Vertex(start).Type != m.def.SrcType {
					return nil
				}
				return walkSuffix(newEdge.To, suffixLen, maxTS, func(end graph.VertexID, pathTS int64) error {
					if m.def.DstType != "" && m.base.Vertex(end).Type != m.def.DstType {
						return nil
					}
					vf, ok1 := m.remap[start]
					vt, ok2 := m.remap[end]
					if !ok1 || !ok2 {
						return fmt.Errorf("views: maintenance: endpoint not mirrored into view")
					}
					_, err := m.view.AddEdge(vf, vt, m.def.Name(), graph.Properties{
						"ts": pathTS, "hops": int64(k),
					})
					return err
				})
			}
			for _, ie := range m.base.In(at) {
				if used[ie] {
					continue
				}
				e := m.base.Edge(ie)
				if !allow(e.Type) {
					continue
				}
				used[ie] = true
				err := walkPrefix(e.From, rem-1, maxInt64(maxTS, tsOf(e)))
				used[ie] = false
				if err != nil {
					return err
				}
			}
			return nil
		}
		if err := walkPrefix(newEdge.From, prefixLen, tsOf(newEdge)); err != nil {
			return eid, err
		}
	}
	return eid, nil
}
