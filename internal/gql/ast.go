// Package gql implements Kaskade's hybrid query language (§III-B of the
// paper): Cypher-style MATCH graph patterns for path traversals combined
// with SQL-style SELECT blocks for filtering and aggregation, e.g.
//
//	SELECT A.pipelineName, AVG(T_CPU) FROM (
//	  SELECT A, SUM(B.CPU) AS T_CPU FROM (
//	    MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
//	          (q_f1:File)-[r*0..8]->(q_f2:File)
//	          (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
//	    RETURN q_j1 AS A, q_j2 AS B
//	  ) GROUP BY A, B
//	) GROUP BY A.pipelineName
//
// Besides queries, the language carries Kaskade's view DDL — CREATE
// [MATERIALIZED] VIEW name AS <pattern>, DROP VIEW name, SHOW VIEWS —
// parsed by ParseStatement (see stmt.go); the query-only Parse rejects
// DDL with ErrDDL.
//
// The package provides the lexer, parser, and AST; evaluation lives in
// internal/exec, and view-pattern compilation in internal/views.
package gql

import (
	"fmt"
	"strings"
)

// Query is the root of a parsed query: either a MatchQuery or a
// SelectQuery.
type Query interface {
	isQuery()
	// String renders the query back to (canonicalized) source text.
	String() string
}

// MatchQuery is a Cypher-style graph pattern matching block.
type MatchQuery struct {
	Patterns []PathPattern
	Where    Expr // optional, nil when absent
	Return   []ReturnItem
}

// SelectQuery is a SQL-style block over a subquery.
type SelectQuery struct {
	Items   []ReturnItem
	From    Query
	Where   Expr // optional
	GroupBy []Expr
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

func (*MatchQuery) isQuery()  {}
func (*SelectQuery) isQuery() {}

// PathPattern is one chain in a MATCH clause:
// (a:T)-[e1]->(b:T)-[e2]->(c). len(Edges) == len(Nodes)-1.
type PathPattern struct {
	Nodes []NodePattern
	Edges []EdgePattern
}

// NodePattern is a vertex pattern (var:Type); both parts are optional in
// the grammar but at least one is present.
type NodePattern struct {
	Var  string // "" for anonymous
	Type string // "" for untyped
}

// EdgePattern is an edge or variable-length path pattern between two
// consecutive node patterns.
type EdgePattern struct {
	Var       string // "" for anonymous
	Type      string // "" matches any edge type
	VarLength bool   // true for -[r*L..U]->
	MinHops   int    // 1 for plain edges
	MaxHops   int    // 1 for plain edges; -1 = unbounded
	Reversed  bool   // true for <-[...]- patterns
}

// ReturnItem is an expression with an optional alias (RETURN x AS A,
// SELECT x AS A).
type ReturnItem struct {
	Expr  Expr
	Alias string // "" when absent; display name falls back to Expr text
}

// Name returns the output column name of the item.
func (r ReturnItem) Name() string {
	if r.Alias != "" {
		return r.Alias
	}
	return r.Expr.String()
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// --- expressions ---

// Expr is an expression over binding rows.
type Expr interface {
	isExpr()
	String() string
}

// Ident references a bound variable or column by name.
type Ident struct{ Name string }

// PropAccess reads a property of a bound vertex/edge value: Base.Key.
type PropAccess struct {
	Base string
	Key  string
}

// Lit is a literal value: int64, float64, string, or bool.
type Lit struct{ Value any }

// BinaryExpr is a binary operation: arithmetic (+ - * /), comparison
// (= <> < <= > >=), or boolean (AND OR).
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// UnaryExpr is NOT or unary minus.
type UnaryExpr struct {
	Op      string
	Operand Expr
}

// FuncCall is a function application. Aggregates (SUM, AVG, COUNT, MIN,
// MAX) are marked by IsAggregate; COUNT(*) has Star set.
type FuncCall struct {
	Name string // upper-cased
	Args []Expr
	Star bool // COUNT(*)
}

func (*Ident) isExpr()      {}
func (*PropAccess) isExpr() {}
func (*Lit) isExpr()        {}
func (*BinaryExpr) isExpr() {}
func (*UnaryExpr) isExpr()  {}
func (*FuncCall) isExpr()   {}

// aggregateFuncs are the supported aggregation functions.
var aggregateFuncs = map[string]bool{
	"SUM": true, "AVG": true, "COUNT": true, "MIN": true, "MAX": true,
}

// IsAggregate reports whether the call is an aggregation function.
func (f *FuncCall) IsAggregate() bool { return aggregateFuncs[f.Name] }

// HasAggregate reports whether the expression contains an aggregate call.
func HasAggregate(e Expr) bool {
	switch e := e.(type) {
	case *FuncCall:
		if e.IsAggregate() {
			return true
		}
		for _, a := range e.Args {
			if HasAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return HasAggregate(e.Left) || HasAggregate(e.Right)
	case *UnaryExpr:
		return HasAggregate(e.Operand)
	}
	return false
}

// --- String renderings ---

func (e *Ident) String() string { return e.Name }

func (e *PropAccess) String() string { return e.Base + "." + e.Key }

func (e *Lit) String() string {
	if s, ok := e.Value.(string); ok {
		return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
	}
	return fmt.Sprintf("%v", e.Value)
}

func (e *BinaryExpr) String() string {
	return "(" + e.Left.String() + " " + e.Op + " " + e.Right.String() + ")"
}

func (e *UnaryExpr) String() string {
	if e.Op == "NOT" {
		return "NOT " + e.Operand.String()
	}
	return e.Op + e.Operand.String()
}

func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

func (n NodePattern) String() string {
	if n.Type == "" {
		return "(" + n.Var + ")"
	}
	return "(" + n.Var + ":" + n.Type + ")"
}

func (e EdgePattern) String() string {
	var inner strings.Builder
	inner.WriteString(e.Var)
	if e.Type != "" {
		inner.WriteString(":" + e.Type)
	}
	if e.VarLength {
		inner.WriteString("*")
		if !(e.MinHops == 1 && e.MaxHops == -1) {
			fmt.Fprintf(&inner, "%d..", e.MinHops)
			if e.MaxHops >= 0 {
				fmt.Fprintf(&inner, "%d", e.MaxHops)
			}
		}
	}
	body := inner.String()
	if body != "" {
		body = "[" + body + "]"
	}
	if e.Reversed {
		return "<-" + body + "-"
	}
	return "-" + body + "->"
}

func (p PathPattern) String() string {
	var b strings.Builder
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteString(p.Edges[i-1].String())
		}
		b.WriteString(n.String())
	}
	return b.String()
}

func (q *MatchQuery) String() string {
	var b strings.Builder
	b.WriteString("MATCH ")
	for i, p := range q.Patterns {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(p.String())
	}
	if q.Where != nil {
		b.WriteString(" WHERE " + q.Where.String())
	}
	b.WriteString(" RETURN ")
	for i, r := range q.Return {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.Expr.String())
		if r.Alias != "" {
			b.WriteString(" AS " + r.Alias)
		}
	}
	return b.String()
}

func (q *SelectQuery) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, r := range q.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.Expr.String())
		if r.Alias != "" {
			b.WriteString(" AS " + r.Alias)
		}
	}
	b.WriteString(" FROM (" + q.From.String() + ")")
	if q.Where != nil {
		b.WriteString(" WHERE " + q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// InnermostMatch returns the MATCH block at the core of a query (queries
// in this language always bottom out in one), or nil if absent. Kaskade's
// constraint miner and rewriter operate on this block.
func InnermostMatch(q Query) *MatchQuery {
	switch q := q.(type) {
	case *MatchQuery:
		return q
	case *SelectQuery:
		return InnermostMatch(q.From)
	}
	return nil
}

// ReplaceInnermostMatch returns a copy of q with its innermost MATCH
// block replaced by m. Wrapping SELECT blocks are shared structurally
// except along the spine.
func ReplaceInnermostMatch(q Query, m *MatchQuery) Query {
	switch q := q.(type) {
	case *MatchQuery:
		return m
	case *SelectQuery:
		cp := *q
		cp.From = ReplaceInnermostMatch(q.From, m)
		return &cp
	}
	return q
}
