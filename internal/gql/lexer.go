package gql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tKeyword
	tInt
	tFloat
	tString
	tSymbol
)

// keywords are case-insensitive reserved words, stored upper-case.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "MATCH": true, "RETURN": true,
	"AND": true, "OR": true, "NOT": true, "ASC": true, "DESC": true,
	"TRUE": true, "FALSE": true, "DISTINCT": true,
	// view DDL (CREATE [MATERIALIZED] VIEW .. AS, DROP VIEW, SHOW VIEWS)
	"CREATE": true, "MATERIALIZED": true, "VIEW": true, "DROP": true,
	"SHOW": true, "VIEWS": true,
	// plan inspection (EXPLAIN [ANALYZE] <query>)
	"EXPLAIN": true, "ANALYZE": true,
}

type tok struct {
	kind tokKind
	text string // keywords/symbols: canonical text; idents: original
	ival int64
	fval float64
	pos  int
}

func (t tok) String() string {
	if t.kind == tEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// multi-character symbols, longest first.
var symbols = []string{
	"<=", ">=", "<>", "!=", "->", "<-", "..",
	"(", ")", "[", "]", "{", "}", ",", ":", ";", "*", "-", "+", "/", "=", "<", ">", ".",
}

func lexQuery(src string) ([]tok, error) {
	var toks []tok
	i, n := 0, len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		// SQL comment, unless it is the bracketless edge "-->" (the
		// parser's anonymous-edge form, which String() emits).
		case c == '-' && i+1 < n && src[i+1] == '-' && !(i+2 < n && src[i+2] == '>'):
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '/': // C-style comment
			for i < n && src[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < n && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			// Distinguish "0..8" (int, dotdot) from "0.5" (float).
			isFloat := false
			if j+1 < n && src[j] == '.' && src[j+1] >= '0' && src[j+1] <= '9' {
				isFloat = true
				j++
				for j < n && src[j] >= '0' && src[j] <= '9' {
					j++
				}
			}
			text := src[i:j]
			if isFloat {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, fmt.Errorf("gql: bad number %q at offset %d", text, i)
				}
				toks = append(toks, tok{kind: tFloat, text: text, fval: f, pos: i})
			} else {
				v, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("gql: bad number %q at offset %d", text, i)
				}
				toks = append(toks, tok{kind: tInt, text: text, ival: v, pos: i})
			}
			i = j
		case c == '\'' || c == '"':
			quote := c
			var sb strings.Builder
			j := i + 1
			closed := false
			for j < n {
				if src[j] == '\\' && j+1 < n {
					sb.WriteByte(src[j+1])
					j += 2
					continue
				}
				if src[j] == quote {
					closed = true
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("gql: unterminated string at offset %d", i)
			}
			toks = append(toks, tok{kind: tString, text: sb.String(), pos: i})
			i = j + 1
		case isWordStart(rune(c)):
			j := i
			for j < n && isWordChar(rune(src[j])) {
				j++
			}
			word := src[i:j]
			if up := strings.ToUpper(word); keywords[up] {
				toks = append(toks, tok{kind: tKeyword, text: up, pos: i})
			} else {
				toks = append(toks, tok{kind: tIdent, text: word, pos: i})
			}
			i = j
		default:
			matched := false
			for _, s := range symbols {
				if strings.HasPrefix(src[i:], s) {
					toks = append(toks, tok{kind: tSymbol, text: s, pos: i})
					i += len(s)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("gql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, tok{kind: tEOF, pos: n})
	return toks, nil
}

func isWordStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }

func isWordChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
