package gql

// Statement is one parsed gql statement: either a query wrapped in a
// QueryStmt, or a view DDL statement. DDL is the declarative face of
// Kaskade's view library — the paper's Table I/II view templates are
// themselves graph patterns, so views are created, listed, and dropped
// in the same language queries are written in:
//
//	CREATE MATERIALIZED VIEW jj AS
//	  MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y
//	SHOW VIEWS
//	DROP VIEW jj
//
// ParseStatement produces Statements; the query-only Parse entry point
// rejects DDL with ErrDDL. Execution lives in core.System.Exec.
type Statement interface {
	isStatement()
	// String renders the statement back to (canonicalized) source text
	// that ParseStatement accepts.
	String() string
}

// QueryStmt wraps an ordinary query (MATCH or SELECT) as a statement.
type QueryStmt struct {
	Query Query
}

// CreateViewStmt is CREATE [MATERIALIZED] VIEW name AS <pattern>. The
// defining Body is a query in the same language; the view compiler
// (views.CompilePattern) decides which Table I/II class it denotes.
// Every Kaskade view is physically materialized on creation; the
// MATERIALIZED keyword is accepted and preserved for round-tripping,
// but both spellings mean the same thing.
type CreateViewStmt struct {
	Name         string
	Materialized bool
	Body         Query
}

// DropViewStmt is DROP VIEW name.
type DropViewStmt struct {
	Name string
}

// ExplainStmt is EXPLAIN [ANALYZE] <query>: plan inspection in the
// statement language. Plain EXPLAIN renders the plan §V-C rewriting
// would choose without executing anything (and without touching any
// usage counter); EXPLAIN ANALYZE executes the plan and reports
// per-stage wall time and actual row counts alongside it.
type ExplainStmt struct {
	Analyze bool
	Query   Query
}

// ShowViewsStmt is SHOW VIEWS.
type ShowViewsStmt struct{}

func (*QueryStmt) isStatement()      {}
func (*CreateViewStmt) isStatement() {}
func (*DropViewStmt) isStatement()   {}
func (*ShowViewsStmt) isStatement()  {}
func (*ExplainStmt) isStatement()    {}

func (s *QueryStmt) String() string { return s.Query.String() }

func (s *CreateViewStmt) String() string {
	kw := "CREATE VIEW "
	if s.Materialized {
		kw = "CREATE MATERIALIZED VIEW "
	}
	return kw + s.Name + " AS " + s.Body.String()
}

func (s *DropViewStmt) String() string { return "DROP VIEW " + s.Name }

func (s *ExplainStmt) String() string {
	kw := "EXPLAIN "
	if s.Analyze {
		kw = "EXPLAIN ANALYZE "
	}
	return kw + s.Query.String()
}

func (*ShowViewsStmt) String() string { return "SHOW VIEWS" }
