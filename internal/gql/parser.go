package gql

import (
	"errors"
	"fmt"
)

// ErrDDL marks a DDL statement (CREATE VIEW, DROP VIEW, SHOW VIEWS)
// handed to a query-only entry point. The query surface (Query*,
// Prepare) wraps parse errors, so callers test with errors.Is(err,
// gql.ErrDDL) and route the statement through System.Exec instead.
var ErrDDL = errors.New("DDL statement, not a query (execute it with Exec)")

// ddlKeywords are the keywords that can only begin a statement, never a
// query: view DDL plus EXPLAIN (plan inspection routes through Exec
// like DDL does, so it shares the ErrDDL rejection).
var ddlKeywords = map[string]bool{"CREATE": true, "DROP": true, "SHOW": true, "EXPLAIN": true}

// Parse parses a query in Kaskade's hybrid language. The top level is
// either a Cypher-style MATCH block or a SQL-style SELECT over a
// parenthesized subquery that bottoms out in a MATCH block. View DDL is
// not a query: it is rejected with an error wrapping ErrDDL (parse it
// with ParseStatement, execute it with System.Exec).
func Parse(src string) (Query, error) {
	toks, err := lexQuery(src)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks}
	if t := p.peek(); t.kind == tKeyword && ddlKeywords[t.text] {
		return nil, fmt.Errorf("gql: %s begins a %w", t.text, ErrDDL)
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tEOF {
		return nil, fmt.Errorf("gql: trailing input at %s", p.peek())
	}
	return q, nil
}

// MustParse is Parse that panics on error, for statically known queries.
func MustParse(src string) Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseStatement parses one statement: a query (wrapped in QueryStmt)
// or a view DDL statement. A single trailing ';' is accepted, so
// script-style input (the REPL, CI smoke scripts) needs no stripping.
func ParseStatement(src string) (Statement, error) {
	toks, err := lexQuery(src)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tSymbol, ";")
	if p.peek().kind != tEOF {
		return nil, fmt.Errorf("gql: trailing input at %s", p.peek())
	}
	return st, nil
}

func (p *qparser) parseStatement() (Statement, error) {
	switch t := p.peek(); {
	case t.kind == tKeyword && t.text == "CREATE":
		return p.parseCreateView()
	case t.kind == tKeyword && t.text == "DROP":
		return p.parseDropView()
	case t.kind == tKeyword && t.text == "SHOW":
		return p.parseShowViews()
	case t.kind == tKeyword && t.text == "EXPLAIN":
		return p.parseExplain()
	default:
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		return &QueryStmt{Query: q}, nil
	}
}

// parseCreateView parses CREATE [MATERIALIZED] VIEW name AS <query>.
func (p *qparser) parseCreateView() (Statement, error) {
	if err := p.expect(tKeyword, "CREATE"); err != nil {
		return nil, err
	}
	st := &CreateViewStmt{}
	st.Materialized = p.accept(tKeyword, "MATERIALIZED")
	if err := p.expect(tKeyword, "VIEW"); err != nil {
		return nil, err
	}
	name, err := p.viewName()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expect(tKeyword, "AS"); err != nil {
		return nil, err
	}
	st.Body, err = p.parseQuery()
	if err != nil {
		return nil, err
	}
	return st, nil
}

// parseDropView parses DROP VIEW name.
func (p *qparser) parseDropView() (Statement, error) {
	if err := p.expect(tKeyword, "DROP"); err != nil {
		return nil, err
	}
	if err := p.expect(tKeyword, "VIEW"); err != nil {
		return nil, err
	}
	name, err := p.viewName()
	if err != nil {
		return nil, err
	}
	return &DropViewStmt{Name: name}, nil
}

// parseExplain parses EXPLAIN [ANALYZE] <query>.
func (p *qparser) parseExplain() (Statement, error) {
	if err := p.expect(tKeyword, "EXPLAIN"); err != nil {
		return nil, err
	}
	st := &ExplainStmt{}
	st.Analyze = p.accept(tKeyword, "ANALYZE")
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	st.Query = q
	return st, nil
}

// parseShowViews parses SHOW VIEWS.
func (p *qparser) parseShowViews() (Statement, error) {
	if err := p.expect(tKeyword, "SHOW"); err != nil {
		return nil, err
	}
	if err := p.expect(tKeyword, "VIEWS"); err != nil {
		return nil, err
	}
	return &ShowViewsStmt{}, nil
}

func (p *qparser) viewName() (string, error) {
	t := p.next()
	if t.kind != tIdent {
		return "", fmt.Errorf("gql: expected view name at offset %d, found %s", t.pos, t)
	}
	return t.text, nil
}

type qparser struct {
	toks []tok
	i    int
}

func (p *qparser) peek() tok { return p.toks[p.i] }
func (p *qparser) next() tok { t := p.toks[p.i]; p.i++; return t }

func (p *qparser) accept(kind tokKind, text string) bool {
	t := p.peek()
	if t.kind == kind && t.text == text {
		p.i++
		return true
	}
	return false
}

func (p *qparser) expect(kind tokKind, text string) error {
	t := p.next()
	if t.kind != kind || t.text != text {
		return fmt.Errorf("gql: expected %q at offset %d, found %s", text, t.pos, t)
	}
	return nil
}

func (p *qparser) parseQuery() (Query, error) {
	switch t := p.peek(); {
	case t.kind == tKeyword && t.text == "SELECT":
		return p.parseSelect()
	case t.kind == tKeyword && t.text == "MATCH":
		return p.parseMatch()
	default:
		return nil, fmt.Errorf("gql: expected SELECT or MATCH at offset %d, found %s", t.pos, t)
	}
}

func (p *qparser) parseSelect() (Query, error) {
	if err := p.expect(tKeyword, "SELECT"); err != nil {
		return nil, err
	}
	items, err := p.parseReturnItems()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tKeyword, "FROM"); err != nil {
		return nil, err
	}
	if err := p.expect(tSymbol, "("); err != nil {
		return nil, err
	}
	from, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tSymbol, ")"); err != nil {
		return nil, err
	}
	q := &SelectQuery{Items: items, From: from, Limit: -1}
	if p.accept(tKeyword, "WHERE") {
		q.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(tKeyword, "GROUP") {
		if err := p.expect(tKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, e)
			if !p.accept(tSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tKeyword, "ORDER") {
		if err := p.expect(tKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tKeyword, "ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.accept(tSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tKeyword, "LIMIT") {
		t := p.next()
		if t.kind != tInt {
			return nil, fmt.Errorf("gql: LIMIT expects an integer at offset %d", t.pos)
		}
		q.Limit = int(t.ival)
	}
	return q, nil
}

func (p *qparser) parseMatch() (Query, error) {
	if err := p.expect(tKeyword, "MATCH"); err != nil {
		return nil, err
	}
	q := &MatchQuery{}
	for {
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, pat)
		// Another pattern begins with ',' or a bare '(' (the paper's
		// Listing 1 separates patterns with whitespace only).
		if p.accept(tSymbol, ",") {
			continue
		}
		if t := p.peek(); t.kind == tSymbol && t.text == "(" {
			continue
		}
		break
	}
	var err error
	if p.accept(tKeyword, "WHERE") {
		q.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(tKeyword, "RETURN"); err != nil {
		return nil, err
	}
	q.Return, err = p.parseReturnItems()
	if err != nil {
		return nil, err
	}
	return q, nil
}

func (p *qparser) parsePattern() (PathPattern, error) {
	var pat PathPattern
	node, err := p.parseNode()
	if err != nil {
		return pat, err
	}
	pat.Nodes = append(pat.Nodes, node)
	for {
		t := p.peek()
		if t.kind != tSymbol || (t.text != "-" && t.text != "<-") {
			return pat, nil
		}
		edge, err := p.parseEdge()
		if err != nil {
			return pat, err
		}
		node, err := p.parseNode()
		if err != nil {
			return pat, err
		}
		pat.Edges = append(pat.Edges, edge)
		pat.Nodes = append(pat.Nodes, node)
	}
}

func (p *qparser) parseNode() (NodePattern, error) {
	var n NodePattern
	if err := p.expect(tSymbol, "("); err != nil {
		return n, err
	}
	if t := p.peek(); t.kind == tIdent {
		n.Var = t.text
		p.i++
	}
	if p.accept(tSymbol, ":") {
		t := p.next()
		if t.kind != tIdent {
			return n, fmt.Errorf("gql: expected vertex type after ':' at offset %d", t.pos)
		}
		n.Type = t.text
	}
	if err := p.expect(tSymbol, ")"); err != nil {
		return n, err
	}
	return n, nil
}

// parseEdge parses -[spec]->, <-[spec]-, or the bracketless forms --> and
// <--. (The lexer splits "-->" into "-", "->".)
func (p *qparser) parseEdge() (EdgePattern, error) {
	var e EdgePattern
	switch {
	case p.accept(tSymbol, "<-"):
		e.Reversed = true
		e.MinHops, e.MaxHops = 1, 1
		if p.accept(tSymbol, "[") {
			if err := p.parseEdgeBody(&e); err != nil {
				return e, err
			}
		}
		if err := p.expect(tSymbol, "-"); err != nil {
			return e, err
		}
		return e, nil
	case p.accept(tSymbol, "-"):
		e.MinHops, e.MaxHops = 1, 1
		if p.accept(tSymbol, "[") {
			if err := p.parseEdgeBody(&e); err != nil {
				return e, err
			}
		}
		if err := p.expect(tSymbol, "->"); err != nil {
			return e, err
		}
		return e, nil
	}
	return e, fmt.Errorf("gql: expected edge pattern at offset %d", p.peek().pos)
}

// parseEdgeBody parses the inside of the brackets: [var][:TYPE][*[L][..[U]]]
// and the closing ']'.
func (p *qparser) parseEdgeBody(e *EdgePattern) error {
	if t := p.peek(); t.kind == tIdent {
		e.Var = t.text
		p.i++
	}
	if p.accept(tSymbol, ":") {
		t := p.next()
		if t.kind != tIdent {
			return fmt.Errorf("gql: expected edge type after ':' at offset %d", t.pos)
		}
		e.Type = t.text
	}
	if p.accept(tSymbol, "*") {
		e.VarLength = true
		e.MinHops, e.MaxHops = 1, -1
		if t := p.peek(); t.kind == tInt {
			e.MinHops = int(t.ival)
			e.MaxHops = e.MinHops // fixed length unless '..' follows
			p.i++
			if p.accept(tSymbol, "..") {
				e.MaxHops = -1
				if t := p.peek(); t.kind == tInt {
					e.MaxHops = int(t.ival)
					p.i++
				}
			}
		} else if p.accept(tSymbol, "..") {
			if t := p.peek(); t.kind == tInt {
				e.MaxHops = int(t.ival)
				p.i++
			}
		}
		if e.MaxHops >= 0 && e.MaxHops < e.MinHops {
			return fmt.Errorf("gql: variable-length bounds %d..%d are inverted", e.MinHops, e.MaxHops)
		}
	}
	return p.expect(tSymbol, "]")
}

func (p *qparser) parseReturnItems() ([]ReturnItem, error) {
	var items []ReturnItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := ReturnItem{Expr: e}
		if p.accept(tKeyword, "AS") {
			t := p.next()
			if t.kind != tIdent {
				return nil, fmt.Errorf("gql: expected alias after AS at offset %d", t.pos)
			}
			item.Alias = t.text
		}
		items = append(items, item)
		if !p.accept(tSymbol, ",") {
			return items, nil
		}
	}
}

// --- expressions (precedence climbing) ---

func (p *qparser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *qparser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *qparser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *qparser) parseNot() (Expr, error) {
	if p.accept(tKeyword, "NOT") {
		operand, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Operand: operand}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]bool{"=": true, "<>": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *qparser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tSymbol && comparisonOps[t.text] {
		p.i++
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		op := t.text
		if op == "!=" {
			op = "<>"
		}
		return &BinaryExpr{Op: op, Left: left, Right: right}, nil
	}
	return left, nil
}

func (p *qparser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tSymbol || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.i++
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.text, Left: left, Right: right}
	}
}

func (p *qparser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tSymbol || (t.text != "*" && t.text != "/") {
			return left, nil
		}
		p.i++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: t.text, Left: left, Right: right}
	}
}

func (p *qparser) parseUnary() (Expr, error) {
	if p.accept(tSymbol, "-") {
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := operand.(*Lit); ok {
			switch v := lit.Value.(type) {
			case int64:
				return &Lit{Value: -v}, nil
			case float64:
				return &Lit{Value: -v}, nil
			}
		}
		return &UnaryExpr{Op: "-", Operand: operand}, nil
	}
	return p.parsePrimary()
}

func (p *qparser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tInt:
		return &Lit{Value: t.ival}, nil
	case tFloat:
		return &Lit{Value: t.fval}, nil
	case tString:
		return &Lit{Value: t.text}, nil
	case tKeyword:
		switch t.text {
		case "TRUE":
			return &Lit{Value: true}, nil
		case "FALSE":
			return &Lit{Value: false}, nil
		}
		return nil, fmt.Errorf("gql: unexpected keyword %s at offset %d", t.text, t.pos)
	case tSymbol:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, fmt.Errorf("gql: unexpected %s at offset %d", t, t.pos)
	case tIdent:
		// Function call?
		if p.peek().kind == tSymbol && p.peek().text == "(" {
			p.i++
			call := &FuncCall{Name: upper(t.text)}
			if p.accept(tSymbol, "*") {
				call.Star = true
				if err := p.expect(tSymbol, ")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if !p.accept(tSymbol, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(tSymbol, ",") {
						continue
					}
					if err := p.expect(tSymbol, ")"); err != nil {
						return nil, err
					}
					break
				}
			}
			return call, nil
		}
		// Property access?
		if p.peek().kind == tSymbol && p.peek().text == "." {
			p.i++
			key := p.next()
			if key.kind != tIdent {
				return nil, fmt.Errorf("gql: expected property name after '.' at offset %d", key.pos)
			}
			return &PropAccess{Base: t.text, Key: key.text}, nil
		}
		return &Ident{Name: t.text}, nil
	}
	return nil, fmt.Errorf("gql: unexpected end of query")
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}
