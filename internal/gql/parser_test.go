package gql

import (
	"strings"
	"testing"
)

// blastRadius is the paper's Listing 1, verbatim modulo whitespace.
const blastRadius = `
SELECT A.pipelineName, AVG(T_CPU) FROM (
  SELECT A, SUM(B.CPU) AS T_CPU FROM (
    MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
          (q_f1:File)-[r*0..8]->(q_f2:File)
          (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
    RETURN q_j1 as A, q_j2 as B
  ) GROUP BY A, B
) GROUP BY A.pipelineName`

func TestParseBlastRadius(t *testing.T) {
	q, err := Parse(blastRadius)
	if err != nil {
		t.Fatalf("Parse(Listing 1): %v", err)
	}
	outer, ok := q.(*SelectQuery)
	if !ok {
		t.Fatalf("top level is %T, want *SelectQuery", q)
	}
	if len(outer.Items) != 2 {
		t.Errorf("outer select has %d items, want 2", len(outer.Items))
	}
	if pa, ok := outer.Items[0].Expr.(*PropAccess); !ok || pa.Base != "A" || pa.Key != "pipelineName" {
		t.Errorf("outer item 0 = %v", outer.Items[0].Expr)
	}
	if fc, ok := outer.Items[1].Expr.(*FuncCall); !ok || fc.Name != "AVG" || !fc.IsAggregate() {
		t.Errorf("outer item 1 = %v", outer.Items[1].Expr)
	}
	inner, ok := outer.From.(*SelectQuery)
	if !ok {
		t.Fatalf("middle level is %T", outer.From)
	}
	if inner.Items[1].Alias != "T_CPU" {
		t.Errorf("middle alias = %q, want T_CPU", inner.Items[1].Alias)
	}
	m := InnermostMatch(q)
	if m == nil {
		t.Fatal("InnermostMatch = nil")
	}
	if len(m.Patterns) != 3 {
		t.Fatalf("MATCH has %d patterns, want 3", len(m.Patterns))
	}
	// Pattern 2 is the variable-length one.
	vp := m.Patterns[1]
	if len(vp.Nodes) != 2 || len(vp.Edges) != 1 {
		t.Fatalf("pattern 1 shape: %d nodes, %d edges", len(vp.Nodes), len(vp.Edges))
	}
	e := vp.Edges[0]
	if !e.VarLength || e.MinHops != 0 || e.MaxHops != 8 || e.Var != "r" {
		t.Errorf("variable-length edge = %+v, want r*0..8", e)
	}
	if vp.Nodes[0].Var != "q_f1" || vp.Nodes[0].Type != "File" {
		t.Errorf("node 0 = %+v", vp.Nodes[0])
	}
	if len(m.Return) != 2 || m.Return[0].Alias != "A" || m.Return[1].Alias != "B" {
		t.Errorf("RETURN items = %+v", m.Return)
	}
}

func TestParseSimpleMatch(t *testing.T) {
	q, err := Parse(`MATCH (a:Job)-[:WRITES_TO]->(b:File) RETURN a, b`)
	if err != nil {
		t.Fatal(err)
	}
	m := q.(*MatchQuery)
	if len(m.Patterns) != 1 {
		t.Fatalf("%d patterns", len(m.Patterns))
	}
	p := m.Patterns[0]
	if p.Edges[0].Type != "WRITES_TO" || p.Edges[0].VarLength {
		t.Errorf("edge = %+v", p.Edges[0])
	}
	if p.Edges[0].MinHops != 1 || p.Edges[0].MaxHops != 1 {
		t.Errorf("plain edge hops = %d..%d, want 1..1", p.Edges[0].MinHops, p.Edges[0].MaxHops)
	}
}

func TestParseReversedEdge(t *testing.T) {
	q, err := Parse(`MATCH (a:File)<-[:WRITES_TO]-(b:Job) RETURN a`)
	if err != nil {
		t.Fatal(err)
	}
	m := q.(*MatchQuery)
	if !m.Patterns[0].Edges[0].Reversed {
		t.Error("edge not marked reversed")
	}
}

func TestParseVariableLengthForms(t *testing.T) {
	cases := []struct {
		src      string
		min, max int
	}{
		{`MATCH (a)-[*]->(b) RETURN a`, 1, -1},
		{`MATCH (a)-[*3]->(b) RETURN a`, 3, 3},
		{`MATCH (a)-[*2..]->(b) RETURN a`, 2, -1},
		{`MATCH (a)-[*..5]->(b) RETURN a`, 1, 5},
		{`MATCH (a)-[r:T*0..8]->(b) RETURN a`, 0, 8},
	}
	for _, tc := range cases {
		q, err := Parse(tc.src)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		e := q.(*MatchQuery).Patterns[0].Edges[0]
		if !e.VarLength || e.MinHops != tc.min || e.MaxHops != tc.max {
			t.Errorf("%s: got %d..%d varlen=%v, want %d..%d", tc.src, e.MinHops, e.MaxHops, e.VarLength, tc.min, tc.max)
		}
	}
	if _, err := Parse(`MATCH (a)-[*5..2]->(b) RETURN a`); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestParseAnonymousAndUntyped(t *testing.T) {
	q, err := Parse(`MATCH ()-[r]->() RETURN COUNT(r)`)
	if err != nil {
		t.Fatal(err)
	}
	m := q.(*MatchQuery)
	p := m.Patterns[0]
	if p.Nodes[0].Var != "" || p.Nodes[0].Type != "" {
		t.Errorf("anonymous node = %+v", p.Nodes[0])
	}
	if p.Edges[0].Var != "r" || p.Edges[0].Type != "" {
		t.Errorf("edge = %+v", p.Edges[0])
	}
	if fc, ok := m.Return[0].Expr.(*FuncCall); !ok || fc.Name != "COUNT" {
		t.Errorf("return = %v", m.Return[0].Expr)
	}
}

func TestParseCountStar(t *testing.T) {
	q, err := Parse(`MATCH (n:Job) RETURN COUNT(*)`)
	if err != nil {
		t.Fatal(err)
	}
	fc := q.(*MatchQuery).Return[0].Expr.(*FuncCall)
	if !fc.Star {
		t.Error("COUNT(*) not marked Star")
	}
}

func TestParseWhere(t *testing.T) {
	q, err := Parse(`MATCH (a:Job) WHERE a.cpu > 100 AND NOT a.name = 'x' RETURN a`)
	if err != nil {
		t.Fatal(err)
	}
	m := q.(*MatchQuery)
	be, ok := m.Where.(*BinaryExpr)
	if !ok || be.Op != "AND" {
		t.Fatalf("where = %v", m.Where)
	}
	if _, ok := be.Right.(*UnaryExpr); !ok {
		t.Errorf("right of AND = %v, want NOT expr", be.Right)
	}
}

func TestParseOrderLimit(t *testing.T) {
	q, err := Parse(`SELECT a, COUNT(*) AS c FROM (MATCH (a:Job) RETURN a) GROUP BY a ORDER BY c DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.(*SelectQuery)
	if len(s.OrderBy) != 1 || !s.OrderBy[0].Desc {
		t.Errorf("order by = %+v", s.OrderBy)
	}
	if s.Limit != 10 {
		t.Errorf("limit = %d", s.Limit)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT a FROM x",          // FROM must be a parenthesized subquery
		"MATCH (a:Job RETURN a",    // unclosed node
		"MATCH (a)-[>(b) RETURN a", // broken edge
		"MATCH (a) RETURN",         // missing items
		"SELECT FROM (MATCH (a) RETURN a)",
		"MATCH (a) RETURN a extra_token_without_comma RETURN",
		"MATCH (a)-[:]->(b) RETURN a", // ':' without type
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error, got nil", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		blastRadius,
		`MATCH (a:Job)-[:W]->(b:File) WHERE a.cpu > 10 RETURN a AS x, b`,
		`MATCH (a)-[r*2..4]->(b) RETURN COUNT(r)`,
		`SELECT x, SUM(y) AS s FROM (MATCH (x)-[e]->(y2) RETURN x, y2 AS y) GROUP BY x ORDER BY s DESC LIMIT 5`,
		`MATCH (a:File)<-[:W]-(b:Job) RETURN b`,
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Errorf("parse: %v", err)
			continue
		}
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse %q: %v", printed, err)
			continue
		}
		if q2.String() != printed {
			t.Errorf("round trip mismatch:\n  first:  %s\n  second: %s", printed, q2.String())
		}
	}
}

func TestReplaceInnermostMatch(t *testing.T) {
	q := MustParse(blastRadius)
	repl := MustParse(`MATCH (a:Job)-[:CONN]->(b:Job) RETURN a AS A, b AS B`).(*MatchQuery)
	q2 := ReplaceInnermostMatch(q, repl)
	if InnermostMatch(q2) != repl {
		t.Error("innermost match not replaced")
	}
	// Original untouched.
	if strings.Contains(q.String(), "CONN") {
		t.Error("ReplaceInnermostMatch mutated the original")
	}
	// Wrapper structure preserved.
	if _, ok := q2.(*SelectQuery); !ok {
		t.Errorf("wrapper lost: %T", q2)
	}
}

// FuzzParse asserts the parser never panics: any input either parses to
// a query whose String() round-trips through the parser, or returns an
// error. The seed corpus is the query shapes the test suite and the
// Table IV workload exercise.
func FuzzParse(f *testing.F) {
	seeds := []string{
		blastRadius,
		`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`,
		`MATCH (f:File)<-[:WRITES_TO]-(j:Job) RETURN f, j`,
		`MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b`,
		`MATCH (a:Job)-[r*1..4]->(v) WHERE a.name = 'j1' RETURN v`,
		`MATCH (a)-[r*]->(b) RETURN COUNT(r) AS n`,
		`MATCH (a)-[r*0..0]->(b) RETURN a, b`,
		`MATCH ()-[r]->() RETURN COUNT(*) AS n`,
		`MATCH (j:Job) WHERE j.CPU >= 20 AND NOT j.name = 'x' RETURN j.name AS name`,
		`MATCH (x)-[r*2..2]->(y) RETURN LENGTH(r) AS len, PATH_MAX(r, 'ts') AS maxts, PATH_SUM(r, 'ts') AS sum`,
		`SELECT name, nfiles FROM (
			MATCH (j:Job)-[:WRITES_TO]->(f:File)
			RETURN j.name AS name, COUNT(f) AS nfiles
		) WHERE nfiles > 1`,
		`SELECT kind, SUM(cpu) AS total FROM (
			MATCH (j:Job) RETURN LABEL(j) AS kind, j.CPU AS cpu
		) GROUP BY kind ORDER BY total DESC LIMIT 3`,
		`MATCH (q_j1:Job)-[r:CONN_2HOP_Job_Job*1..5]->(q_j2:Job) RETURN q_j1 AS A, q_j2 AS B`,
		``,
		`MATCH`,
		`SELECT FROM () GROUP BY`,
		"MATCH (a)-[r*1..]->(b) RETURN a -- trailing",
		// View DDL statements (ParseStatement), including near-miss
		// garbage the statement parser must reject without panicking.
		`CREATE MATERIALIZED VIEW jj AS MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y`,
		`CREATE VIEW keep AS MATCH (v) WHERE LABEL(v) = 'File' OR LABEL(v) = 'Job' RETURN v`,
		`CREATE VIEW drop_t AS MATCH (v) WHERE NOT (LABEL(v) = 'Task') RETURN v`,
		`CREATE VIEW chain AS MATCH (x)-[e:TRANSFERS_TO*1..4]->(y) RETURN x, y`,
		`CREATE VIEW ss AS MATCH (x)-[p*1..6]->(y) WHERE INDEGREE(x) = 0 AND OUTDEGREE(y) = 0 RETURN x, y`,
		`CREATE VIEW agg AS MATCH (v:Job) RETURN v.pipelineName, COUNT(v), SUM(v.CPU)`,
		`DROP VIEW jj;`,
		`SHOW VIEWS`,
		`CREATE VIEW x AS SELECT`,
		`CREATE VIEW AS MATCH (a) RETURN a`,
		`CREATE MATERIALIZED x`,
		`DROP VIEWS`,
		`SHOW VIEW jj`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// The statement surface: accepted inputs must print to
		// something ParseStatement accepts.
		if st, err := ParseStatement(src); err == nil {
			printed := st.String()
			if _, err := ParseStatement(printed); err != nil {
				t.Errorf("String() of accepted statement does not reparse: %q -> %q: %v", src, printed, err)
			}
		}
		// The query-only surface (kept panic-free independently; it
		// additionally rejects every DDL statement with ErrDDL).
		q, err := Parse(src)
		if err != nil {
			return
		}
		printed := q.String()
		if _, err := Parse(printed); err != nil {
			t.Errorf("String() of accepted query does not reparse: %q -> %q: %v", src, printed, err)
		}
	})
}
