package gql

import (
	"errors"
	"strings"
	"testing"
)

func TestParseCreateView(t *testing.T) {
	st, err := ParseStatement(`CREATE MATERIALIZED VIEW jj AS MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y`)
	if err != nil {
		t.Fatal(err)
	}
	cv, ok := st.(*CreateViewStmt)
	if !ok {
		t.Fatalf("statement is %T, want *CreateViewStmt", st)
	}
	if cv.Name != "jj" || !cv.Materialized {
		t.Errorf("stmt = %+v", cv)
	}
	m, ok := cv.Body.(*MatchQuery)
	if !ok || len(m.Patterns) != 1 {
		t.Fatalf("body = %#v", cv.Body)
	}
	if e := m.Patterns[0].Edges[0]; !e.VarLength || e.MinHops != 2 || e.MaxHops != 2 {
		t.Errorf("edge = %+v", e)
	}

	// Plain CREATE VIEW (no MATERIALIZED) and a trailing semicolon.
	st, err = ParseStatement(`CREATE VIEW f AS MATCH (v) WHERE LABEL(v) = 'File' RETURN v;`)
	if err != nil {
		t.Fatal(err)
	}
	if cv := st.(*CreateViewStmt); cv.Materialized || cv.Name != "f" {
		t.Errorf("stmt = %+v", cv)
	}
}

func TestParseDropShowAndQueryStatements(t *testing.T) {
	st, err := ParseStatement(`DROP VIEW jj;`)
	if err != nil {
		t.Fatal(err)
	}
	if dv := st.(*DropViewStmt); dv.Name != "jj" {
		t.Errorf("drop name = %q", dv.Name)
	}
	st, err = ParseStatement(`SHOW VIEWS`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*ShowViewsStmt); !ok {
		t.Errorf("statement is %T", st)
	}
	// A query is a statement too, wrapped in QueryStmt.
	st, err = ParseStatement(`MATCH (a:Job) RETURN a;`)
	if err != nil {
		t.Fatal(err)
	}
	qs, ok := st.(*QueryStmt)
	if !ok {
		t.Fatalf("statement is %T, want *QueryStmt", st)
	}
	if _, ok := qs.Query.(*MatchQuery); !ok {
		t.Errorf("query is %T", qs.Query)
	}
}

func TestStatementStringRoundTrip(t *testing.T) {
	srcs := []string{
		`CREATE MATERIALIZED VIEW jj AS MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y`,
		`CREATE VIEW keep AS MATCH (v) WHERE LABEL(v) = 'File' OR LABEL(v) = 'Job' RETURN v`,
		`CREATE VIEW ss AS MATCH (x)-[p*1..6]->(y) WHERE INDEGREE(x) = 0 AND OUTDEGREE(y) = 0 RETURN x, y`,
		`DROP VIEW jj`,
		`SHOW VIEWS`,
		`MATCH (a:Job)-[:W]->(b:File) RETURN a, b`,
	}
	for _, src := range srcs {
		st1, err := ParseStatement(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		printed := st1.String()
		st2, err := ParseStatement(printed)
		if err != nil {
			t.Errorf("reparse %q: %v", printed, err)
			continue
		}
		if st2.String() != printed {
			t.Errorf("round trip mismatch:\n  first:  %s\n  second: %s", printed, st2.String())
		}
	}
}

func TestParseRejectsDDLAsQuery(t *testing.T) {
	for _, src := range []string{
		`CREATE VIEW x AS MATCH (a) RETURN a`,
		`DROP VIEW x`,
		`SHOW VIEWS`,
	} {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q): DDL accepted as a query", src)
			continue
		}
		if !errors.Is(err, ErrDDL) {
			t.Errorf("Parse(%q) error %v does not wrap ErrDDL", src, err)
		}
	}
	// ParseStatement error paths are ordinary parse errors, not ErrDDL.
	if _, err := ParseStatement(`MATCH (a:Job RETURN a`); errors.Is(err, ErrDDL) {
		t.Error("query parse error wrongly wraps ErrDDL")
	}
}

func TestParseStatementErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring of the error message
	}{
		{`CREATE VIEW x AS SELECT`, "unexpected end"},      // SELECT needs items + FROM
		{`CREATE VIEW AS MATCH (a) RETURN a`, "view name"}, // name missing
		{`CREATE TABLE x AS MATCH (a) RETURN a`, `"VIEW"`},
		{`CREATE VIEW x MATCH (a) RETURN a`, `"AS"`},
		{`CREATE VIEW 7 AS MATCH (a) RETURN a`, "view name"},
		{`DROP VIEW`, "view name"},
		{`DROP x`, `"VIEW"`},
		{`SHOW VIEW`, `"VIEWS"`},
		{`SHOW VIEWS extra`, "trailing input"},
		{`CREATE VIEW x AS MATCH (a) RETURN a; DROP VIEW x`, "trailing input"},
	}
	for _, tc := range cases {
		_, err := ParseStatement(tc.src)
		if err == nil {
			t.Errorf("ParseStatement(%q): want error, got nil", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseStatement(%q) error %q does not mention %q", tc.src, err, tc.want)
		}
	}
}

func TestParseExplainStatement(t *testing.T) {
	st, err := ParseStatement(`EXPLAIN MATCH (a:Job)-->(b:File) RETURN a;`)
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := st.(*ExplainStmt)
	if !ok || ex.Analyze {
		t.Fatalf("parsed %#v, want plain ExplainStmt", st)
	}
	st, err = ParseStatement(`EXPLAIN ANALYZE SELECT a FROM (MATCH (a:Job)-->(b:File) RETURN a) LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	ex, ok = st.(*ExplainStmt)
	if !ok || !ex.Analyze {
		t.Fatalf("parsed %#v, want ExplainStmt{Analyze: true}", st)
	}
	// String round-trips through the statement parser.
	back, err := ParseStatement(ex.String())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.(*ExplainStmt).String() != ex.String() {
		t.Errorf("round trip changed text: %q vs %q", back.(*ExplainStmt).String(), ex.String())
	}
	// The query-only entry point rejects EXPLAIN like DDL, so Query*
	// paths route it to Exec.
	if _, err := Parse(`EXPLAIN MATCH (a) RETURN a`); !errors.Is(err, ErrDDL) {
		t.Errorf("Parse(EXPLAIN ...) = %v, want ErrDDL", err)
	}
	if _, err := ParseStatement(`EXPLAIN`); err == nil {
		t.Error("EXPLAIN without a query parsed")
	}
}
