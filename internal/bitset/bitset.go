// Package bitset provides the dense bit-vector the traversal kernels use
// for visited/frontier sets over dense vertex IDs: one bit per vertex
// instead of a map entry, so membership tests are a mask and marking a
// vertex allocates nothing.
package bitset

// Set is a fixed-capacity bit set over [0, n). The zero value is an
// empty set of capacity 0; use New to size it.
type Set []uint64

// New returns an empty set with capacity for n elements.
func New(n int) Set {
	return make(Set, (n+63)/64)
}

// Has reports whether i is in the set.
func (s Set) Has(i int) bool {
	return s[i>>6]&(1<<(uint(i)&63)) != 0
}

// Add inserts i into the set.
func (s Set) Add(i int) {
	s[i>>6] |= 1 << (uint(i) & 63)
}

// Remove deletes i from the set.
func (s Set) Remove(i int) {
	s[i>>6] &^= 1 << (uint(i) & 63)
}

// Clear empties the whole set in O(capacity/64). When only a few
// elements are set and they are known, calling Remove per element is
// cheaper — the traversal kernels clear by walking their result list.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Cap returns the element capacity (a multiple of 64).
func (s Set) Cap() int { return len(s) * 64 }
