package bitset

import "testing"

func TestSetBasics(t *testing.T) {
	s := New(130)
	if s.Cap() < 130 {
		t.Fatalf("cap = %d, want >= 130", s.Cap())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 129} {
		if s.Has(i) {
			t.Errorf("fresh set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Errorf("added %d not present", i)
		}
	}
	s.Remove(64)
	if s.Has(64) {
		t.Error("removed 64 still present")
	}
	if !s.Has(63) || !s.Has(65) {
		t.Error("Remove(64) disturbed neighbors")
	}
	s.Clear()
	for _, i := range []int{0, 63, 65, 129} {
		if s.Has(i) {
			t.Errorf("cleared set has %d", i)
		}
	}
}
