package server

import (
	"container/list"
	"strconv"
	"sync"
	"time"
)

// respCache is the hot-query response cache: fully rendered /v1/query
// response bodies keyed by (query text, effective row cap), each
// stamped with the catalog epoch observed *before* the execution that
// produced it. A lookup must match the current epoch exactly — any
// CREATE/DROP VIEW moves the epoch and thereby invalidates every older
// entry at once, so a cached response can never outlive the view set
// that shaped it — and must be younger than the TTL. Entries are
// evicted LRU past maxEntries.
//
// Only successful, complete, read-only query results are stored (the
// handler's call sites enforce that); DDL and errors never land here.
type respCache struct {
	ttl time.Duration
	max int
	now func() time.Time // injectable clock (tests)

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
}

// cacheEntry is one stored response body.
type cacheEntry struct {
	key   string
	body  []byte
	epoch uint64
	at    time.Time
}

func newRespCache(ttl time.Duration, maxEntries int) *respCache {
	return &respCache{ttl: ttl, max: maxEntries, now: time.Now, entries: make(map[string]*list.Element), lru: list.New()}
}

// enabled reports whether caching is on at all (TTL > 0).
func (c *respCache) enabled() bool { return c != nil && c.ttl > 0 }

// cacheKey builds the lookup key for one query execution shape.
func cacheKey(query string, maxRows int) string {
	return strconv.Itoa(maxRows) + "|" + query
}

// get returns the cached body for key if it is fresh: stored at the
// current catalog epoch and younger than the TTL. Stale entries are
// dropped on the spot.
func (c *respCache) get(key string, epoch uint64) ([]byte, bool) {
	if !c.enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.epoch != epoch || c.now().Sub(e.at) > c.ttl {
		c.lru.Remove(el)
		delete(c.entries, key)
		return nil, false
	}
	c.lru.MoveToFront(el)
	return e.body, true
}

// put stores a freshly rendered body under key, stamped with the epoch
// the execution planned at.
func (c *respCache) put(key string, epoch uint64, body []byte) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = &cacheEntry{key: key, body: body, epoch: epoch, at: c.now()}
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, body: body, epoch: epoch, at: c.now()})
}

// len reports the live entry count (tests).
func (c *respCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
