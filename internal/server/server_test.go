package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestQueryMatchesInProcess pins the service boundary to the library:
// every /v1/query response body is byte-identical to the JSON rendering
// of the same query executed in-process.
func TestQueryMatchesInProcess(t *testing.T) {
	_, ts, sys := newTestServer(t, Config{})
	for _, q := range []string{qCount, qRows, q2Hop} {
		resp, raw := post(t, ts, "/v1/query", "", map[string]any{"query": q})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%q: status %d, body %s", q, resp.StatusCode, raw)
		}
		if want := wantBody(t, sys, q); !bytes.Equal(raw, want) {
			t.Errorf("%q:\n got %s\nwant %s", q, raw, want)
		}
	}
}

// TestConcurrentSessionsCorrectness is the acceptance scenario: many
// concurrent sessions hammer the daemon with a query mix and every
// response must match in-process execution byte for byte; nothing may
// be rejected below the in-flight limit, and the session gauge must
// land exactly on the session count.
func TestConcurrentSessionsCorrectness(t *testing.T) {
	const sessions, iters = 10, 25
	srv, ts, sys := newTestServer(t, Config{MaxInFlight: sessions * 2})
	mix := []string{qCount, qRows, q2Hop}
	want := make(map[string][]byte, len(mix))
	for _, q := range mix {
		want[q] = wantBody(t, sys, q)
	}

	var wg sync.WaitGroup
	errc := make(chan error, sessions*iters)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			session := ""
			for j := 0; j < iters; j++ {
				q := mix[(worker+j)%len(mix)]
				resp, raw := post(t, ts, "/v1/query", session, map[string]any{"query": q})
				session = resp.Header.Get(sessionHeader)
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("worker %d: status %d, body %s", worker, resp.StatusCode, raw)
					return
				}
				if !bytes.Equal(raw, want[q]) {
					errc <- fmt.Errorf("worker %d: %q diverged from in-process result", worker, q)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	snap := sys.MetricsSnapshot()
	if wantAdmitted := int64(sessions * iters); snap.Admitted != wantAdmitted {
		t.Errorf("admitted = %d, want %d", snap.Admitted, wantAdmitted)
	}
	if snap.Rejected != 0 {
		t.Errorf("rejected = %d, want 0 below the in-flight limit", snap.Rejected)
	}
	if snap.InFlight != 0 {
		t.Errorf("in-flight = %d after drain, want 0", snap.InFlight)
	}
	if snap.Sessions != sessions {
		t.Errorf("sessions gauge = %d, want %d", snap.Sessions, sessions)
	}
	if srv.sessions.len() != sessions {
		t.Errorf("session table holds %d, want %d", srv.sessions.len(), sessions)
	}
}

// TestViewsEndpoint drives the view lifecycle over the wire and reads
// it back through /v1/views.
func TestViewsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, raw := post(t, ts, "/v1/exec", "", map[string]any{"statement": ddl2Hop})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create view: status %d, body %s", resp.StatusCode, raw)
	}
	resp, raw = get(t, ts, "/v1/views")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("views: status %d", resp.StatusCode)
	}
	var out struct {
		Views []viewJSON `json:"views"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("views body: %v", err)
	}
	if len(out.Views) != 1 || out.Views[0].Name != "jj" {
		t.Fatalf("views = %+v, want one view jj", out.Views)
	}
	if out.Views[0].DDL == "" || out.Views[0].Vertices == 0 {
		t.Errorf("view jj missing DDL or size: %+v", out.Views[0])
	}
}

// TestTopologyEndpoint checks the Cytoscape shape, the prefix
// truncation contract, and the view/not-found paths.
func TestTopologyEndpoint(t *testing.T) {
	_, ts, sys := newTestServer(t, Config{})

	resp, raw := get(t, ts, "/v1/topology")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topology: status %d", resp.StatusCode)
	}
	var topo topologyJSON
	if err := json.Unmarshal(raw, &topo); err != nil {
		t.Fatalf("topology body: %v", err)
	}
	g := sys.Graph()
	if topo.TotalNodes != g.NumVertices() || topo.TotalEdges != g.NumEdges() || topo.Truncated {
		t.Errorf("full topology = %d/%d truncated=%v, want %d/%d untruncated",
			topo.TotalNodes, topo.TotalEdges, topo.Truncated, g.NumVertices(), g.NumEdges())
	}
	if len(topo.Nodes) != g.NumVertices() || len(topo.Edges) != g.NumEdges() {
		t.Errorf("elements = %d nodes %d edges, want %d/%d", len(topo.Nodes), len(topo.Edges), g.NumVertices(), g.NumEdges())
	}
	ids := make(map[string]bool, len(topo.Nodes))
	for _, n := range topo.Nodes {
		id, _ := n.Data["id"].(string)
		if id == "" || n.Data["label"] == "" {
			t.Fatalf("node element missing id/label: %+v", n)
		}
		ids[id] = true
	}
	for _, e := range topo.Edges {
		src, _ := e.Data["source"].(string)
		dst, _ := e.Data["target"].(string)
		if !ids[src] || !ids[dst] {
			t.Fatalf("edge %v references node outside the element set", e.Data)
		}
	}

	resp, raw = get(t, ts, "/v1/topology?limit=5")
	var small topologyJSON
	if err := json.Unmarshal(raw, &small); err != nil {
		t.Fatalf("limited topology: %v", err)
	}
	if resp.StatusCode != http.StatusOK || len(small.Nodes) != 5 || !small.Truncated {
		t.Errorf("limit=5: status %d, %d nodes, truncated=%v; want 200, 5, true",
			resp.StatusCode, len(small.Nodes), small.Truncated)
	}
	for _, e := range small.Edges {
		if !within(e.Data["source"].(string), 5) || !within(e.Data["target"].(string), 5) {
			t.Fatalf("truncated edge %v escapes the node prefix", e.Data)
		}
	}

	// A view's topology serves the view graph, not the base graph.
	if _, raw := post(t, ts, "/v1/exec", "", map[string]any{"statement": ddl2Hop}); !bytes.Contains(raw, []byte("materialized view jj")) {
		t.Fatalf("create view failed: %s", raw)
	}
	m, ok := sys.Catalog().Resolve("jj")
	if !ok {
		t.Fatal("view jj not in catalog")
	}
	resp, raw = get(t, ts, "/v1/topology?view=jj")
	var vt topologyJSON
	if err := json.Unmarshal(raw, &vt); err != nil {
		t.Fatalf("view topology: %v", err)
	}
	if resp.StatusCode != http.StatusOK || vt.TotalNodes != m.Graph.NumVertices() || vt.TotalEdges != m.Graph.NumEdges() {
		t.Errorf("view topology = %d/%d (status %d), want %d/%d",
			vt.TotalNodes, vt.TotalEdges, resp.StatusCode, m.Graph.NumVertices(), m.Graph.NumEdges())
	}

	resp, raw = get(t, ts, "/v1/topology?view=nope")
	if eb := decodeError(t, raw); resp.StatusCode != http.StatusNotFound || eb.Kind != kindNotFound {
		t.Errorf("unknown view: status %d kind %s, want 404 not_found", resp.StatusCode, eb.Kind)
	}
	resp, raw = get(t, ts, "/v1/topology?limit=bogus")
	if eb := decodeError(t, raw); resp.StatusCode != http.StatusBadRequest || eb.Kind != kindBadRequest {
		t.Errorf("bad limit: status %d kind %s, want 400 bad_request", resp.StatusCode, eb.Kind)
	}
}

// within reports whether a "v<i>" element id is inside the first n
// vertices.
func within(id string, n int) bool {
	var i int
	if _, err := fmt.Sscanf(id, "v%d", &i); err != nil {
		return false
	}
	return i < n
}

// TestMetricsEndpoint checks /v1/metrics carries both the executor
// counters and the admission block.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	post(t, ts, "/v1/query", "", map[string]any{"query": qCount})
	resp, raw := get(t, ts, "/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var m metricsJSON
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("metrics body: %v", err)
	}
	if m.Queries < 1 || m.Admission.Admitted < 1 || m.Admission.Sessions < 1 {
		t.Errorf("metrics = queries %d, admitted %d, sessions %d; want all ≥ 1",
			m.Queries, m.Admission.Admitted, m.Admission.Sessions)
	}
	if m.Latency.Count < 1 {
		t.Errorf("latency count = %d, want ≥ 1", m.Latency.Count)
	}
	// Delta-overlay block: present on the wire even when zero, and sane.
	for _, key := range []string{
		`"delta_tail_vertices"`, `"delta_tail_edges"`, `"overlay_reads"`,
		`"compactions"`, `"last_compaction_us"`,
	} {
		if !bytes.Contains(raw, []byte(key)) {
			t.Errorf("metrics body missing %s", key)
		}
	}
	if m.DeltaTailVerts < 0 || m.DeltaTailEdges < 0 || m.OverlayReads < 0 ||
		m.Compactions < 0 || m.LastCompactionUS < 0 {
		t.Errorf("delta metrics negative: %+v", m)
	}
}

// TestHealthz checks the ok/draining flip.
func TestHealthz(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{})
	resp, raw := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(raw, []byte(`"ok"`)) {
		t.Fatalf("healthz: status %d body %s", resp.StatusCode, raw)
	}
	srv.Close()
	resp, raw = get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(raw, []byte("draining")) {
		t.Errorf("healthz after Close: status %d body %s, want 503 draining", resp.StatusCode, raw)
	}
}
