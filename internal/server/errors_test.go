package server

import (
	"net/http"
	"testing"
)

// TestErrorTaxonomy is the satellite table: every error class a client
// can trigger maps to its documented status and machine-readable kind,
// on both statement endpoints.
func TestErrorTaxonomy(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	// Seed a view so the duplicate-create case has something to collide
	// with.
	if resp, raw := post(t, ts, "/v1/exec", "", map[string]any{"statement": ddl2Hop}); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed view: status %d, body %s", resp.StatusCode, raw)
	}

	cases := []struct {
		name   string
		path   string
		body   any    // JSON-marshalled when raw is nil
		raw    string // pre-encoded body, possibly malformed
		status int
		kind   errKind
	}{
		{"query: syntax error", "/v1/query", map[string]any{"query": `MATCH (j:Job RETURN j`}, "", http.StatusBadRequest, kindParse},
		{"query: DDL refused", "/v1/query", map[string]any{"query": `DROP VIEW jj`}, "", http.StatusBadRequest, kindDDL},
		{"query: SHOW VIEWS refused", "/v1/query", map[string]any{"query": `SHOW VIEWS`}, "", http.StatusBadRequest, kindDDL},
		{"query: missing query", "/v1/query", map[string]any{}, "", http.StatusBadRequest, kindBadRequest},
		{"query: torn JSON", "/v1/query", nil, `{"query": `, http.StatusBadRequest, kindBadRequest},
		{"query: unknown field", "/v1/query", nil, `{"sql":"MATCH (j:Job) RETURN j"}`, http.StatusBadRequest, kindBadRequest},
		{"query: row cap exceeded", "/v1/query", map[string]any{"query": qCount, "max_rows": 1}, "", http.StatusBadRequest, kindRowLimit},
		{"exec: syntax error", "/v1/exec", map[string]any{"statement": `CREATE NONSENSE`}, "", http.StatusBadRequest, kindParse},
		{"exec: missing statement", "/v1/exec", map[string]any{}, "", http.StatusBadRequest, kindBadRequest},
		{"exec: duplicate view", "/v1/exec", map[string]any{"statement": ddl2Hop}, "", http.StatusConflict, kindConflict},
		{"exec: drop unknown view", "/v1/exec", map[string]any{"statement": `DROP VIEW nope`}, "", http.StatusNotFound, kindNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var raw []byte
			if tc.raw != "" {
				resp, raw = postRaw(t, ts, tc.path, "", []byte(tc.raw))
			} else {
				resp, raw = post(t, ts, tc.path, "", tc.body)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, body %s, want %d", resp.StatusCode, raw, tc.status)
			}
			eb := decodeError(t, raw)
			if eb.Kind != tc.kind {
				t.Errorf("kind = %q, want %q", eb.Kind, tc.kind)
			}
			if eb.Error == "" {
				t.Error("error body carries no message")
			}
		})
	}

	// Unknown routes share the taxonomy.
	resp, raw := get(t, ts, "/v1/nope")
	if eb := decodeError(t, raw); resp.StatusCode != http.StatusNotFound || eb.Kind != kindNotFound {
		t.Errorf("unknown route: status %d kind %q, want 404 not_found", resp.StatusCode, eb.Kind)
	}
}
