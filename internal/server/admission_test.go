package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestAdmissionRejectsWhenSaturated saturates the in-flight semaphore
// with one parked query and checks that every further request is
// refused with 429 + Retry-After — and that the refusals land in the
// Rejected counter while the parked request completes normally.
func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	srv, ts, sys := newTestServer(t, Config{MaxInFlight: 1})

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.testExecDelay = func(ctx context.Context) {
		once.Do(func() { close(entered) })
		select {
		case <-release:
		case <-ctx.Done():
		}
	}

	type outcome struct {
		status int
		body   []byte
	}
	firstDone := make(chan outcome, 1)
	go func() {
		resp, raw := post(t, ts, "/v1/query", "", map[string]any{"query": qCount})
		firstDone <- outcome{resp.StatusCode, raw}
	}()
	<-entered // the slot is held

	const burst = 4
	for i := 0; i < burst; i++ {
		resp, raw := post(t, ts, "/v1/query", "", map[string]any{"query": qCount})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated request %d: status %d, body %s", i, resp.StatusCode, raw)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
		if eb := decodeError(t, raw); eb.Kind != kindSaturated {
			t.Errorf("429 kind = %q, want %q", eb.Kind, kindSaturated)
		}
	}

	close(release)
	out := <-firstDone
	if out.status != http.StatusOK {
		t.Fatalf("parked request: status %d, body %s", out.status, out.body)
	}

	snap := sys.MetricsSnapshot()
	if snap.Admitted != 1 || snap.Rejected != burst {
		t.Errorf("admitted/rejected = %d/%d, want 1/%d", snap.Admitted, snap.Rejected, burst)
	}
	if snap.InFlight != 0 {
		t.Errorf("in-flight = %d after completion, want 0", snap.InFlight)
	}
}

// TestPerRequestTimeout maps the request deadline to 504: the hook
// parks the execution until the context expires, so the query returns
// context.DeadlineExceeded and the TimedOut counter moves.
func TestPerRequestTimeout(t *testing.T) {
	srv, ts, sys := newTestServer(t, Config{})
	srv.testExecDelay = func(ctx context.Context) { <-ctx.Done() }

	resp, raw := post(t, ts, "/v1/query", "", map[string]any{"query": qCount, "timeout_ms": 20})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s, want 504", resp.StatusCode, raw)
	}
	if eb := decodeError(t, raw); eb.Kind != kindTimeout {
		t.Errorf("kind = %q, want %q", eb.Kind, kindTimeout)
	}
	snap := sys.MetricsSnapshot()
	if snap.TimedOut != 1 {
		t.Errorf("timed out counter = %d, want 1", snap.TimedOut)
	}
	if snap.InFlight != 0 {
		t.Errorf("in-flight = %d after timeout, want 0", snap.InFlight)
	}
}

// TestTimeoutClampedToMax checks a client cannot ask for more than
// Config.MaxTimeout: the request still times out at the server's
// ceiling.
func TestTimeoutClampedToMax(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{MaxTimeout: 30 * time.Millisecond})
	srv.testExecDelay = func(ctx context.Context) { <-ctx.Done() }

	start := time.Now()
	resp, _ := post(t, ts, "/v1/query", "", map[string]any{"query": qCount, "timeout_ms": 3_600_000})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("clamped timeout took %s, want ~30ms", took)
	}
}

// TestRowCapEnforced checks the per-request row cap: the client may
// lower the server cap and gets the row_limit taxonomy when the query
// exceeds it — and may never raise the cap above the server's. The cap
// counts matched rows, so an aggregate blows it before any output row
// (a proper 400) while a projection blows it mid-stream (the 200 is on
// the wire; the body ends with error/kind instead of row_count).
func TestRowCapEnforced(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, raw := post(t, ts, "/v1/query", "", map[string]any{"query": qCount, "max_rows": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s, want 400", resp.StatusCode, raw)
	}
	if eb := decodeError(t, raw); eb.Kind != kindRowLimit {
		t.Errorf("kind = %q, want %q", eb.Kind, kindRowLimit)
	}

	// Mid-stream: rows were already streaming when the limit hit, so the
	// body terminates with the taxonomy members and no row_count.
	resp, raw = post(t, ts, "/v1/query", "", map[string]any{"query": qRows, "max_rows": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mid-stream limit status = %d, want 200 (already streaming)", resp.StatusCode)
	}
	var tail struct {
		RowCount *int    `json:"row_count"`
		Error    string  `json:"error"`
		Kind     errKind `json:"kind"`
	}
	if err := json.Unmarshal(raw, &tail); err != nil {
		t.Fatalf("mid-stream body %s: %v", raw, err)
	}
	if tail.RowCount != nil || tail.Error == "" || tail.Kind != kindRowLimit {
		t.Errorf("mid-stream tail = %+v, want no row_count and kind row_limit", tail)
	}

	// Server cap 1, client asks for a million: the server cap wins.
	_, ts2, _ := newTestServer(t, Config{MaxRows: 1})
	resp, raw = post(t, ts2, "/v1/query", "", map[string]any{"query": qCount, "max_rows": 1_000_000})
	if eb := decodeError(t, raw); resp.StatusCode != http.StatusBadRequest || eb.Kind != kindRowLimit {
		t.Errorf("raised cap: status %d kind %q, want 400 row_limit", resp.StatusCode, eb.Kind)
	}
}
