package server

import (
	"bytes"
	"testing"
	"time"
)

// cacheAdvance shifts the cache's injectable clock forward; the clock
// field is guarded by the cache mutex, so this is safe between
// requests.
func cacheAdvance(c *respCache, d time.Duration) {
	c.mu.Lock()
	c.now = func() time.Time { return time.Now().Add(d) }
	c.mu.Unlock()
}

// TestResponseCacheHit checks the hot path: a repeat query is served
// from the cache byte-identically, flagged with X-Kaskade-Cache, and
// never reaches the executor (the Queries counter stays flat).
func TestResponseCacheHit(t *testing.T) {
	_, ts, sys := newTestServer(t, Config{CacheTTL: time.Minute})

	resp, first := post(t, ts, "/v1/query", "", map[string]any{"query": qRows})
	if got := resp.Header.Get("X-Kaskade-Cache"); got != "" {
		t.Errorf("first request cache header = %q, want unset", got)
	}
	executed := sys.MetricsSnapshot().Queries

	resp, second := post(t, ts, "/v1/query", "", map[string]any{"query": qRows})
	if got := resp.Header.Get("X-Kaskade-Cache"); got != "hit" {
		t.Errorf("repeat request cache header = %q, want hit", got)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached body diverged:\n got %s\nwant %s", second, first)
	}
	snap := sys.MetricsSnapshot()
	if snap.Queries != executed {
		t.Errorf("queries counter moved %d -> %d on a cache hit", executed, snap.Queries)
	}
	if snap.CacheHits != 1 || snap.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", snap.CacheHits, snap.CacheMisses)
	}

	// A different row cap is a different execution shape: its own entry.
	resp, _ = post(t, ts, "/v1/query", "", map[string]any{"query": qRows, "max_rows": 100})
	if got := resp.Header.Get("X-Kaskade-Cache"); got != "" {
		t.Errorf("different max_rows served from cache (header %q)", got)
	}
}

// TestResponseCacheEpochInvalidation checks the correctness half: DDL
// moves the catalog epoch, so a cached pre-view response can never be
// served after CREATE VIEW changes what the query should return.
func TestResponseCacheEpochInvalidation(t *testing.T) {
	srv, ts, sys := newTestServer(t, Config{CacheTTL: time.Minute})

	post(t, ts, "/v1/query", "", map[string]any{"query": q2Hop})
	resp, _ := post(t, ts, "/v1/query", "", map[string]any{"query": q2Hop})
	if resp.Header.Get("X-Kaskade-Cache") != "hit" {
		t.Fatal("priming request did not cache")
	}

	post(t, ts, "/v1/exec", "", map[string]any{"statement": ddl2Hop})

	resp, raw := post(t, ts, "/v1/query", "", map[string]any{"query": q2Hop})
	if got := resp.Header.Get("X-Kaskade-Cache"); got != "" {
		t.Errorf("post-DDL request served stale cache entry (header %q)", got)
	}
	if want := wantBody(t, sys, q2Hop); !bytes.Equal(raw, want) {
		t.Errorf("post-DDL body diverged from in-process execution:\n got %s\nwant %s", raw, want)
	}
	if srv.cache.len() == 0 {
		t.Error("fresh post-DDL result was not re-cached")
	}
	// The re-cached entry is fresh at the new epoch.
	if resp, _ := post(t, ts, "/v1/query", "", map[string]any{"query": q2Hop}); resp.Header.Get("X-Kaskade-Cache") != "hit" {
		t.Error("re-cached post-DDL entry not served")
	}
}

// TestResponseCacheTTL checks age-based expiry via the injected clock.
func TestResponseCacheTTL(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{CacheTTL: time.Minute})
	post(t, ts, "/v1/query", "", map[string]any{"query": qCount})
	if resp, _ := post(t, ts, "/v1/query", "", map[string]any{"query": qCount}); resp.Header.Get("X-Kaskade-Cache") != "hit" {
		t.Fatal("entry not cached before expiry")
	}
	cacheAdvance(srv.cache, 2*time.Minute)
	if resp, _ := post(t, ts, "/v1/query", "", map[string]any{"query": qCount}); resp.Header.Get("X-Kaskade-Cache") == "hit" {
		t.Error("expired entry served past the TTL")
	}
}

// TestResponseCacheLRU checks the size bound evicts least-recently-used
// entries first.
func TestResponseCacheLRU(t *testing.T) {
	c := newRespCache(time.Minute, 2)
	c.put("a", 1, []byte("A"))
	c.put("b", 1, []byte("B"))
	if _, ok := c.get("a", 1); !ok { // touch a: b is now LRU
		t.Fatal("entry a missing before eviction")
	}
	c.put("c", 1, []byte("C")) // evicts b
	if _, ok := c.get("b", 1); ok {
		t.Error("LRU entry b survived past the size bound")
	}
	if _, ok := c.get("a", 1); !ok {
		t.Error("recently used entry a was evicted")
	}
	if c.len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.len())
	}
}

// TestResponseCacheDisabled checks the default config serves everything
// uncached and moves no cache counters.
func TestResponseCacheDisabled(t *testing.T) {
	_, ts, sys := newTestServer(t, Config{})
	post(t, ts, "/v1/query", "", map[string]any{"query": qCount})
	resp, _ := post(t, ts, "/v1/query", "", map[string]any{"query": qCount})
	if got := resp.Header.Get("X-Kaskade-Cache"); got != "" {
		t.Errorf("cache header %q with caching disabled", got)
	}
	snap := sys.MetricsSnapshot()
	if snap.CacheHits != 0 || snap.CacheMisses != 0 {
		t.Errorf("cache counters moved (%d/%d) with caching disabled", snap.CacheHits, snap.CacheMisses)
	}
}
