package server

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync"
	"time"

	"kaskade/internal/core"
	"kaskade/internal/metrics"
)

// sessionHeader and sessionCookie are the two ways a client carries its
// session token; the header wins when both are present. Every response
// echoes the token in the header, and a freshly minted session is also
// offered as a cookie so browsers keep it without client code.
const (
	sessionHeader = "X-Kaskade-Session"
	sessionCookie = "kaskade_session"
)

// preparedHeader reports whether the session's prepared-statement cache
// served this query ("hit") or the statement was prepared fresh
// ("miss") — observable cache behavior for clients and tests.
const preparedHeader = "X-Kaskade-Prepared"

// session is one client's server-side state: a prepared-statement
// cache keyed by query text. Cached core.PreparedQuery values carry
// their own epoch tracking, so a plan cached here transparently
// re-rewrites after any CREATE/DROP VIEW — including DDL executed
// through a different session.
type session struct {
	id string

	mu       sync.Mutex
	prepared map[string]*core.PreparedQuery
	order    []string // insertion order, for FIFO eviction at the cap
	lastUsed time.Time
}

// prepare returns the session's cached prepared statement for src,
// preparing and caching it on first use. hit reports whether the cache
// already held it. Parse errors are returned unprepared and uncached.
func (ss *session) prepare(sys *core.System, src string, maxPrepared int) (stmt *core.PreparedQuery, hit bool, err error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if stmt = ss.prepared[src]; stmt != nil {
		return stmt, true, nil
	}
	stmt, err = sys.Prepare(src)
	if err != nil {
		return nil, false, err
	}
	if len(ss.order) >= maxPrepared {
		oldest := ss.order[0]
		ss.order = ss.order[1:]
		delete(ss.prepared, oldest)
	}
	ss.prepared[src] = stmt
	ss.order = append(ss.order, src)
	return stmt, false, nil
}

// touch records activity (guards idle eviction).
func (ss *session) touch(now time.Time) {
	ss.mu.Lock()
	ss.lastUsed = now
	ss.mu.Unlock()
}

// idleSince reports the last activity time.
func (ss *session) idleSince() time.Time {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.lastUsed
}

// sessionTable is the server's live-session registry. metricsFn
// resolves the registry lazily (SetMetrics may swap it), keeping the
// Sessions gauge in step with creations and sweeps.
type sessionTable struct {
	ttl         time.Duration
	maxPrepared int
	metricsFn   func() *metrics.Registry

	mu   sync.Mutex
	byID map[string]*session
}

func newSessionTable(ttl time.Duration, maxPrepared int, metricsFn func() *metrics.Registry) *sessionTable {
	return &sessionTable{ttl: ttl, maxPrepared: maxPrepared, metricsFn: metricsFn, byID: make(map[string]*session)}
}

// resolve returns the request's session, minting a new one when the
// token is absent or unknown (an expired token gets a fresh session —
// and a fresh token — rather than resurrecting the old id). created
// tells the caller to hand the token back to the client.
func (t *sessionTable) resolve(r *http.Request, now time.Time) (ss *session, created bool) {
	token := r.Header.Get(sessionHeader)
	if token == "" {
		if c, err := r.Cookie(sessionCookie); err == nil {
			token = c.Value
		}
	}
	t.mu.Lock()
	if token != "" {
		if ss = t.byID[token]; ss != nil {
			t.mu.Unlock()
			ss.touch(now)
			return ss, false
		}
	}
	ss = &session{id: newSessionID(), prepared: make(map[string]*core.PreparedQuery), lastUsed: now}
	t.byID[ss.id] = ss
	t.mu.Unlock()
	if r := t.metricsFn(); r != nil {
		r.Sessions.Inc()
	}
	return ss, true
}

// sweep evicts sessions idle past the TTL, keeping the Sessions gauge
// in step.
func (t *sessionTable) sweep(now time.Time) {
	cutoff := now.Add(-t.ttl)
	var evicted int64
	t.mu.Lock()
	for id, ss := range t.byID {
		if ss.idleSince().Before(cutoff) {
			delete(t.byID, id)
			evicted++
		}
	}
	t.mu.Unlock()
	if evicted > 0 {
		if r := t.metricsFn(); r != nil {
			r.Sessions.Add(-evicted)
		}
	}
}

// len reports the live session count (tests).
func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}

// newSessionID mints a 128-bit random token.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: session id entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// setSessionHeaders stamps the response with the session token; a newly
// minted session is additionally offered as a cookie.
func setSessionHeaders(w http.ResponseWriter, ss *session, created bool) {
	w.Header().Set(sessionHeader, ss.id)
	if created {
		http.SetCookie(w, &http.Cookie{Name: sessionCookie, Value: ss.id, Path: "/", HttpOnly: true, SameSite: http.SameSiteLaxMode})
	}
}
