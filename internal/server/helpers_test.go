package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"kaskade/internal/core"
	"kaskade/internal/datagen"
	"kaskade/internal/views"
)

// Test queries over the provenance-flavored test graph. q2Hop projects
// vertices (not an aggregate) because connector rewriting applies to
// projected paths — it is the query the jj view accelerates, so the
// epoch-bump tests can observe plans flipping between base and view.
const (
	qCount  = `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN COUNT(*) AS n`
	qRows   = `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`
	q2Hop   = `MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y`
	ddl2Hop = `CREATE MATERIALIZED VIEW jj AS MATCH (x:Job)-[p*2..2]->(y:Job) RETURN x, y`
)

// newTestSystem builds a small generated provenance graph (Job/File
// vertices, WRITES_TO/IS_READ_BY edges) — large enough that the cost
// model actually prefers the jj connector view for q2Hop, so rewrite
// behavior is observable.
func newTestSystem(t *testing.T) *core.System {
	t.Helper()
	cfg := datagen.DefaultProvConfig()
	cfg.Jobs, cfg.Files, cfg.TasksPerJob, cfg.Machines, cfg.Users = 120, 250, 1, 5, 5
	raw, err := datagen.Prov(cfg)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := views.VertexInclusionSummarizer{Types: []string{"Job", "File"}}.Materialize(raw)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.New(filtered)
	sys.Parallelism = 2
	return sys
}

// newTestServer stands up a Server over a fresh test System behind an
// httptest server; both are torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *core.System) {
	t.Helper()
	sys := newTestSystem(t)
	srv := New(sys, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, sys
}

// post sends one JSON request, returning the response and its body.
func post(t *testing.T, ts *httptest.Server, path, session string, payload any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatalf("marshal payload: %v", err)
	}
	return postRaw(t, ts, path, session, body)
}

// postRaw is post with a pre-encoded (possibly malformed) body.
func postRaw(t *testing.T, ts *httptest.Server, path, session string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if session != "" {
		req.Header.Set(sessionHeader, session)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, raw
}

// get sends one GET, returning the response and its body.
func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, raw
}

// wantBody renders the body /v1/query must stream for one query —
// computed through the in-process API, so every comparison against it
// pins the served result byte-identical to ad-hoc execution.
func wantBody(t *testing.T, sys *core.System, query string) []byte {
	t.Helper()
	res, err := sys.Query(query)
	if err != nil {
		t.Fatalf("in-process %q: %v", query, err)
	}
	b, err := json.Marshal(resultJSON(res))
	if err != nil {
		t.Fatalf("marshal expected: %v", err)
	}
	return b
}

// decodeError unpacks a taxonomy error body.
func decodeError(t *testing.T, raw []byte) errorBody {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("error body %q: %v", raw, err)
	}
	return eb
}
