// Package server is the Kaskade service boundary: an HTTP/JSON daemon
// (cmd/kaskaded) that serves one shared System — and its frozen base
// graph — to many concurrent clients.
//
// The three load-bearing pieces, in request order:
//
//   - Sessions (session.go). Every request carries a session token
//     (X-Kaskade-Session header or kaskade_session cookie; the server
//     mints one when absent). A session holds a server-side
//     prepared-statement cache keyed by query text, so a client's
//     repeat queries skip parse and §V-C rewriting entirely — and,
//     because the cache stores core.PreparedQuery values, cached plans
//     transparently re-rewrite when any session's DDL bumps the catalog
//     epoch. Idle sessions are swept after Config.SessionTTL.
//
//   - Admission control (this file). A server-wide semaphore bounds
//     in-flight executions: past Config.MaxInFlight a request is
//     refused immediately with 429 and a Retry-After header instead of
//     queueing without bound. Admitted requests run under a per-request
//     deadline (client-requested, clamped to Config.MaxTimeout) mapped
//     to context cancellation, and under a row cap mapped to
//     WithMaxRows. Outcomes land in the metrics registry: Admitted,
//     Rejected, TimedOut counters and the InFlight gauge.
//
//   - Response cache (cache.go). Successful read-only query results are
//     kept for Config.CacheTTL, keyed by (query text, row cap) and
//     stamped with the catalog epoch at execution; a hit serves the
//     stored bytes without touching the executor, and any CREATE/DROP
//     VIEW invalidates every older entry by moving the epoch.
//
// Endpoints (all JSON): POST /v1/query (streaming rows over chunked
// encoding), POST /v1/exec (DDL and queries through System.Exec), GET
// /v1/views, GET /v1/topology (Cytoscape-ready {nodes[],edges[]}), GET
// /v1/metrics, GET /healthz. Error responses carry a machine-readable
// taxonomy (errors.go): client errors are 4xx (parse 400, DDL on the
// query endpoint 400, unknown view 404, duplicate view 409, saturation
// 429), timeouts are 504, and everything else is 500.
package server

import (
	"context"
	"net"
	"net/http"
	"sync"
	"time"

	"kaskade/internal/core"
	"kaskade/internal/metrics"
)

// Config tunes one Server. The zero value is usable: every field has a
// default applied by New.
type Config struct {
	// MaxInFlight bounds concurrently executing admitted requests
	// (queries and DDL); excess requests get 429 + Retry-After.
	// Default 64.
	MaxInFlight int
	// DefaultTimeout is the per-request execution deadline when the
	// client does not ask for one. Default 30s; negative = none.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines (timeout_ms).
	// Default 5m.
	MaxTimeout time.Duration
	// MaxRows caps rows per request (mapped to WithMaxRows); a client
	// may ask for less but not more. Default 1_000_000; negative =
	// unlimited.
	MaxRows int
	// CacheTTL bounds response-cache entry age. Default 0 = caching
	// disabled.
	CacheTTL time.Duration
	// CacheMaxEntries bounds the response cache size. Default 256.
	CacheMaxEntries int
	// SessionTTL evicts sessions idle longer than this. Default 30m.
	SessionTTL time.Duration
	// SessionMaxPrepared bounds one session's prepared-statement cache.
	// Default 128.
	SessionMaxPrepared int
	// TopologyMaxNodes is the default (and maximum) node count served
	// by /v1/topology. Default 1000.
	TopologyMaxNodes int
}

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxRows == 0 {
		c.MaxRows = 1_000_000
	}
	if c.CacheMaxEntries <= 0 {
		c.CacheMaxEntries = 256
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.SessionMaxPrepared <= 0 {
		c.SessionMaxPrepared = 128
	}
	if c.TopologyMaxNodes <= 0 {
		c.TopologyMaxNodes = 1000
	}
	return c
}

// Server serves one System over HTTP. Create with New, expose with
// Handler (any http.Server or test harness) or run with Serve (listener
// plus graceful drain). A Server is safe for concurrent use by its
// nature; Close is idempotent.
type Server struct {
	sys      *core.System
	cfg      Config
	sem      chan struct{} // admission semaphore, cap MaxInFlight
	sessions *sessionTable
	cache    *respCache
	mux      *http.ServeMux

	// baseCtx parents every admitted request's execution context;
	// cancelBase is the drain hammer — it aborts every in-flight query
	// at once (bounded-drain shutdown, Close).
	baseCtx    context.Context
	cancelBase context.CancelFunc

	closeOnce sync.Once
	janitorWG sync.WaitGroup

	// testExecDelay, when set (tests only), runs after admission and
	// deadline setup, before execution — the hook that lets tests hold
	// the semaphore or park a "slow query" on ctx.Done.
	testExecDelay func(ctx context.Context)
}

// New builds a Server over sys with cfg's knobs (zero fields take
// defaults). The caller keeps ownership of sys — the daemon is a face
// over the same System the library exposes, so in-process code and
// served clients observe one catalog and one metrics registry.
func New(sys *core.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		sys:        sys,
		cfg:        cfg,
		sem:        make(chan struct{}, cfg.MaxInFlight),
		sessions:   newSessionTable(cfg.SessionTTL, cfg.SessionMaxPrepared, sys.Metrics),
		cache:      newRespCache(cfg.CacheTTL, cfg.CacheMaxEntries),
		mux:        http.NewServeMux(),
		baseCtx:    ctx,
		cancelBase: cancel,
	}
	s.routes()
	s.janitorWG.Add(1)
	go s.janitor()
	return s
}

// Handler returns the daemon's HTTP handler (the /v1 API plus
// /healthz) for mounting under any http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// System returns the served System.
func (s *Server) System() *core.System { return s.sys }

// Close releases the Server: the session janitor stops and every
// in-flight request's execution context is cancelled. It does not stop
// an http.Server serving the handler — Serve composes both.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.cancelBase()
		s.janitorWG.Wait()
	})
}

// CancelInflight aborts every currently executing request by cancelling
// the shared base context. It is the bounded-drain escalation: Serve
// calls it when in-flight requests outlive the drain deadline.
func (s *Server) CancelInflight() { s.cancelBase() }

// Serve runs the daemon on l until ctx is cancelled (kaskaded wires
// SIGINT/SIGTERM here), then drains gracefully: the listener closes,
// in-flight requests get up to drain to finish, and stragglers are
// cancelled via context — a slow query is aborted, never leaked. It
// returns nil on a clean (possibly cancelled-straggler) drain.
func (s *Server) Serve(ctx context.Context, l net.Listener, drain time.Duration) error {
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	defer s.Close()
	if drain < 0 {
		drain = 0
	}
	// The drain must outlive the already-canceled serve context, so
	// detach from it without losing its values.
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err == nil {
		return nil
	}
	// Drain deadline passed with requests still running: cancel their
	// execution contexts and give the handlers a moment to unwind and
	// write their "canceled" responses before closing connections.
	s.CancelInflight()
	gctx, gcancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
	defer gcancel()
	if err := hs.Shutdown(gctx); err != nil {
		return hs.Close()
	}
	return nil
}

// metricsRegistry returns the System's registry (nil when metrics are
// disabled — every call site tolerates that).
func (s *Server) metricsRegistry() *metrics.Registry { return s.sys.Metrics() }

// admit reserves an execution slot without blocking; false means the
// server is saturated and the caller must answer 429. Every admit(true)
// must be paired with release().
func (s *Server) admit() bool {
	select {
	case s.sem <- struct{}{}:
		if r := s.metricsRegistry(); r != nil {
			r.Admitted.Inc()
			r.InFlight.Inc()
		}
		return true
	default:
		if r := s.metricsRegistry(); r != nil {
			r.Rejected.Inc()
		}
		return false
	}
}

// release returns an admission slot.
func (s *Server) release() {
	<-s.sem
	if r := s.metricsRegistry(); r != nil {
		r.InFlight.Dec()
	}
}

// execCtx derives one admitted request's execution context: a child of
// the request context (client disconnect cancels) that is also
// cancelled by the server's base context (drain/Close cancels) and by
// the effective deadline. timeoutMS is the client's request; 0 takes
// the server default.
func (s *Server) execCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.baseCtx, cancel)
	fin := func() { stop(); cancel() }
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	if d <= 0 {
		return ctx, fin
	}
	tctx, tcancel := context.WithTimeout(ctx, d)
	return tctx, func() { tcancel(); fin() }
}

// maxRowsFor resolves the effective row cap: the client may lower the
// server cap, never raise it. Negative Config.MaxRows means unlimited.
func (s *Server) maxRowsFor(requested int) int {
	limit := s.cfg.MaxRows
	if limit < 0 {
		limit = 0
	}
	if requested > 0 && (limit == 0 || requested < limit) {
		return requested
	}
	return limit
}

// janitor sweeps idle sessions until Close.
func (s *Server) janitor() {
	defer s.janitorWG.Done()
	period := s.cfg.SessionTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case now := <-t.C:
			s.sessions.sweep(now)
		}
	}
}
