package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// serveHarness runs srv.Serve on an ephemeral listener and returns the
// base URL, the Serve result channel, and the cancel that triggers the
// drain.
func serveHarness(t *testing.T, srv *Server, drain time.Duration) (string, chan error, context.CancelFunc) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, l, drain) }()
	t.Cleanup(cancel)
	return "http://" + l.Addr().String(), served, cancel
}

// postQuery issues one /v1/query against a raw base URL (the Serve
// harness has no httptest server).
func postQuery(base, query string) (int, []byte, error) {
	body, _ := json.Marshal(map[string]any{"query": query})
	resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

// TestDrainCancelsSlowQuery is the shutdown satellite: a query slower
// than the drain deadline is cancelled via context — the client gets a
// 499 "canceled" response and Serve returns promptly instead of leaking
// the straggler.
func TestDrainCancelsSlowQuery(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, Config{DefaultTimeout: -1}) // no per-request deadline: only the drain can stop it
	entered := make(chan struct{})
	srv.testExecDelay = func(ctx context.Context) {
		close(entered)
		<-ctx.Done() // the slow query: parked until cancelled
	}
	base, served, cancel := serveHarness(t, srv, 100*time.Millisecond)

	type outcome struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		status, raw, err := postQuery(base, qCount)
		done <- outcome{status, raw, err}
	}()
	<-entered // the slow query is executing
	cancel()  // SIGTERM equivalent: drain begins

	select {
	case out := <-done:
		if out.err != nil {
			t.Fatalf("slow query transport error: %v", out.err)
		}
		if out.status != statusCanceled {
			t.Errorf("slow query status = %d, body %s, want %d", out.status, out.body, statusCanceled)
		}
		if eb := decodeError(t, out.body); eb.Kind != kindCanceled {
			t.Errorf("slow query kind = %q, want %q", eb.Kind, kindCanceled)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("slow query leaked past the drain deadline")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("Serve = %v, want nil after cancelled-straggler drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

// TestDrainLetsFastQueriesFinish is the other half of the contract: a
// query that finishes inside the drain window completes normally with a
// full 200 result.
func TestDrainLetsFastQueriesFinish(t *testing.T) {
	sys := newTestSystem(t)
	srv := New(sys, Config{})
	entered := make(chan struct{})
	srv.testExecDelay = func(ctx context.Context) {
		close(entered)
		time.Sleep(50 * time.Millisecond) // slower than the shutdown, faster than the drain
	}
	base, served, cancel := serveHarness(t, srv, 10*time.Second)

	type outcome struct {
		status int
		body   []byte
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		status, raw, err := postQuery(base, qCount)
		done <- outcome{status, raw, err}
	}()
	<-entered
	cancel()

	out := <-done
	if out.err != nil || out.status != http.StatusOK {
		t.Fatalf("in-flight query during drain: status %d err %v body %s, want 200", out.status, out.err, out.body)
	}
	if want := wantBody(t, sys, qCount); !bytes.Equal(out.body, want) {
		t.Errorf("drained query body diverged:\n got %s\nwant %s", out.body, want)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("Serve = %v, want nil on clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after clean drain")
	}
}
