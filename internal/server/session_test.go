package server

import (
	"bytes"
	"net/http"
	"testing"
	"time"
)

// TestSessionPreparedCache checks the observable prepared-statement
// cache behavior: a session's repeat query is a cache hit, a different
// session starts cold, and tokens round-trip through the header.
func TestSessionPreparedCache(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	resp, _ := post(t, ts, "/v1/query", "", map[string]any{"query": qCount})
	token := resp.Header.Get(sessionHeader)
	if token == "" {
		t.Fatal("no session token minted")
	}
	if got := resp.Header.Get(preparedHeader); got != "miss" {
		t.Errorf("first execution prepared = %q, want miss", got)
	}

	resp, _ = post(t, ts, "/v1/query", token, map[string]any{"query": qCount})
	if got := resp.Header.Get(sessionHeader); got != token {
		t.Errorf("session token changed across requests: %q -> %q", token, got)
	}
	if got := resp.Header.Get(preparedHeader); got != "hit" {
		t.Errorf("repeat execution prepared = %q, want hit", got)
	}

	resp, _ = post(t, ts, "/v1/query", "", map[string]any{"query": qCount})
	if got := resp.Header.Get(preparedHeader); got != "miss" {
		t.Errorf("fresh session prepared = %q, want miss (caches are per-session)", got)
	}
}

// TestCrossSessionEpochBump is the satellite correctness test: DDL
// through one session must make every other session's cached plans
// re-rewrite, pinned byte-identical to ad-hoc in-process execution at
// each step — base plan before the view, rewritten plan after CREATE,
// base plan again after DROP.
func TestCrossSessionEpochBump(t *testing.T) {
	_, ts, sys := newTestServer(t, Config{})

	// Session B caches a plan for the 2-hop query over the base graph.
	resp, raw := post(t, ts, "/v1/query", "", map[string]any{"query": q2Hop})
	tokenB := resp.Header.Get(sessionHeader)
	if want := wantBody(t, sys, q2Hop); !bytes.Equal(raw, want) {
		t.Fatalf("pre-view result diverged:\n got %s\nwant %s", raw, want)
	}

	// Session A creates the connector view: catalog epoch bumps.
	resp, raw = post(t, ts, "/v1/exec", "", map[string]any{"statement": ddl2Hop})
	tokenA := resp.Header.Get(sessionHeader)
	if resp.StatusCode != http.StatusOK || tokenA == tokenB {
		t.Fatalf("create view: status %d (tokens A=%q B=%q): %s", resp.StatusCode, tokenA, tokenB, raw)
	}

	// Sanity: the in-process planner now rewrites this query.
	if plan, err := sys.Explain(q2Hop); err != nil || !bytes.Contains([]byte(plan), []byte("rewritten over materialized view")) {
		t.Fatalf("explain after create: %v\n%s", err, plan)
	}

	// Session B's next execution re-uses its cached prepared statement
	// (hit) but must transparently re-plan over the view — and stay
	// byte-identical to ad-hoc execution, which rewrites every time.
	resp, raw = post(t, ts, "/v1/query", tokenB, map[string]any{"query": q2Hop})
	if got := resp.Header.Get(preparedHeader); got != "hit" {
		t.Errorf("post-create prepared = %q, want hit (same cached statement)", got)
	}
	if want := wantBody(t, sys, q2Hop); !bytes.Equal(raw, want) {
		t.Fatalf("post-create result diverged:\n got %s\nwant %s", raw, want)
	}
	m, ok := sys.Catalog().Resolve("jj")
	if !ok {
		t.Fatal("view jj missing")
	}
	if m.RewriteHits() == 0 {
		t.Error("view jj has no rewrite hits after session B's re-plan")
	}

	// DROP through session B: session B's own cached plan re-plans away
	// from the dropped view on the next execution.
	if resp, raw := post(t, ts, "/v1/exec", tokenB, map[string]any{"statement": `DROP VIEW jj`}); resp.StatusCode != http.StatusOK {
		t.Fatalf("drop view: status %d: %s", resp.StatusCode, raw)
	}
	resp, raw = post(t, ts, "/v1/query", tokenB, map[string]any{"query": q2Hop})
	if got := resp.Header.Get(preparedHeader); got != "hit" {
		t.Errorf("post-drop prepared = %q, want hit", got)
	}
	if want := wantBody(t, sys, q2Hop); !bytes.Equal(raw, want) {
		t.Fatalf("post-drop result diverged:\n got %s\nwant %s", raw, want)
	}
}

// TestSessionExpiry checks idle sweep: the table empties, the gauge
// drops, and an expired token gets a fresh session rather than a
// resurrected one.
func TestSessionExpiry(t *testing.T) {
	srv, ts, sys := newTestServer(t, Config{SessionTTL: 10 * time.Millisecond})

	resp, _ := post(t, ts, "/v1/query", "", map[string]any{"query": qCount})
	token := resp.Header.Get(sessionHeader)
	if srv.sessions.len() != 1 || sys.MetricsSnapshot().Sessions != 1 {
		t.Fatalf("after first request: table %d gauge %d, want 1/1", srv.sessions.len(), sys.MetricsSnapshot().Sessions)
	}

	time.Sleep(20 * time.Millisecond)
	srv.sessions.sweep(time.Now())
	if srv.sessions.len() != 0 || sys.MetricsSnapshot().Sessions != 0 {
		t.Fatalf("after sweep: table %d gauge %d, want 0/0", srv.sessions.len(), sys.MetricsSnapshot().Sessions)
	}

	resp, _ = post(t, ts, "/v1/query", token, map[string]any{"query": qCount})
	if got := resp.Header.Get(sessionHeader); got == token || got == "" {
		t.Errorf("expired token returned %q, want a fresh session id", got)
	}
	if got := resp.Header.Get(preparedHeader); got != "miss" {
		t.Errorf("expired session prepared = %q, want miss (cache gone with the session)", got)
	}
}

// TestSessionPreparedCap checks the per-session FIFO eviction at the
// prepared-statement cap.
func TestSessionPreparedCap(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{SessionMaxPrepared: 2})
	mk := func(alias string) string {
		return `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN COUNT(*) AS ` + alias
	}
	resp, _ := post(t, ts, "/v1/query", "", map[string]any{"query": mk("a")})
	token := resp.Header.Get(sessionHeader)
	post(t, ts, "/v1/query", token, map[string]any{"query": mk("b")})
	post(t, ts, "/v1/query", token, map[string]any{"query": mk("c")}) // evicts a

	resp, _ = post(t, ts, "/v1/query", token, map[string]any{"query": mk("a")})
	if got := resp.Header.Get(preparedHeader); got != "miss" {
		t.Errorf("evicted statement prepared = %q, want miss", got)
	}
	resp, _ = post(t, ts, "/v1/query", token, map[string]any{"query": mk("c")})
	if got := resp.Header.Get(preparedHeader); got != "hit" {
		t.Errorf("retained statement prepared = %q, want hit", got)
	}
}
