package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"kaskade/internal/exec"
	"kaskade/internal/gql"
	"kaskade/internal/workload"
)

// errKind is the machine-readable error taxonomy carried in every error
// response body. Clients branch on kind (and status); the error string
// is for humans.
type errKind string

const (
	kindBadRequest errKind = "bad_request" // malformed request envelope      → 400
	kindParse      errKind = "parse"       // statement failed to parse       → 400
	kindDDL        errKind = "ddl"         // DDL sent to the query endpoint  → 400
	kindRowLimit   errKind = "row_limit"   // execution hit the row cap       → 400
	kindNotFound   errKind = "not_found"   // unknown view / route            → 404
	kindConflict   errKind = "conflict"    // view already exists             → 409
	kindSaturated  errKind = "saturated"   // admission control refused       → 429
	kindCanceled   errKind = "canceled"    // client gone or server draining  → 499
	kindInternal   errKind = "internal"    // everything else                 → 500
	kindTimeout    errKind = "timeout"     // per-request deadline exceeded   → 504
)

// statusCanceled is the nginx-convention status for "client closed
// request"; it also marks requests cut short by a drain deadline.
const statusCanceled = 499

// errorBody is the JSON envelope of every non-2xx response.
type errorBody struct {
	Error string  `json:"error"`
	Kind  errKind `json:"kind"`
}

// writeError emits one taxonomy-classified error response.
func writeError(w http.ResponseWriter, status int, kind errKind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: msg, Kind: kind})
}

// classifyExec maps an execution-path error (anything returned after a
// statement parsed) to its status and kind. Typed sentinels are matched
// with errors.Is, so wrapping never breaks the taxonomy:
//
//	context.DeadlineExceeded → 504 timeout (the admission deadline hit)
//	context.Canceled         → 499 canceled (client gone / drain)
//	exec.ErrRowLimit         → 400 row_limit (request exceeded the cap)
//	workload.ErrNoSuchView   → 404 not_found
//	workload.ErrViewExists   → 409 conflict
//	anything else            → 500 internal
func classifyExec(err error) (int, errKind) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, kindTimeout
	case errors.Is(err, context.Canceled):
		return statusCanceled, kindCanceled
	case errors.Is(err, exec.ErrRowLimit):
		return http.StatusBadRequest, kindRowLimit
	case errors.Is(err, workload.ErrNoSuchView):
		return http.StatusNotFound, kindNotFound
	case errors.Is(err, workload.ErrViewExists):
		return http.StatusConflict, kindConflict
	default:
		return http.StatusInternalServerError, kindInternal
	}
}

// classifyParse maps a parse-path error (gql.Parse / gql.ParseStatement
// rejected the text) for the query endpoint: DDL sent to /v1/query is
// its own kind so clients learn to use /v1/exec, any other parse
// failure is kindParse. Both are client errors.
func classifyParse(err error) (int, errKind) {
	if errors.Is(err, gql.ErrDDL) {
		return http.StatusBadRequest, kindDDL
	}
	return http.StatusBadRequest, kindParse
}
