package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"kaskade/internal/core"
	"kaskade/internal/exec"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
)

// maxRequestBody bounds request envelopes (a query is text; 1 MiB is
// generous).
const maxRequestBody = 1 << 20

// cacheMaxBody bounds one cached response body; a result that renders
// larger streams through uncached.
const cacheMaxBody = 4 << 20

// flushEvery is the row interval between explicit flushes while
// streaming /v1/query rows over chunked encoding.
const flushEvery = 64

// routes mounts the endpoint surface.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/exec", s.handleExec)
	s.mux.HandleFunc("GET /v1/views", s.handleViews)
	s.mux.HandleFunc("GET /v1/topology", s.handleTopology)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, kindNotFound, "no such endpoint: "+r.URL.Path)
	})
}

// queryRequest is the POST /v1/query envelope.
type queryRequest struct {
	// Query is the statement text (queries only — DDL belongs on
	// /v1/exec and is refused here with kind "ddl").
	Query string `json:"query"`
	// TimeoutMS overrides the server's default execution deadline,
	// clamped to Config.MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms"`
	// MaxRows lowers the server's row cap for this request.
	MaxRows int `json:"max_rows"`
}

// execRequest is the POST /v1/exec envelope.
type execRequest struct {
	// Statement is any statement System.Exec accepts: view DDL (CREATE
	// [MATERIALIZED] VIEW, DROP VIEW, SHOW VIEWS), EXPLAIN [ANALYZE],
	// or a plain query.
	Statement string `json:"statement"`
	TimeoutMS int64  `json:"timeout_ms"`
}

// decodeJSON reads one request envelope, bounding the body.
func decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, kindBadRequest, "invalid request body: "+err.Error())
		return false
	}
	return true
}

// countTimeout bumps the TimedOut counter when a classified failure was
// the per-request deadline.
func (s *Server) countTimeout(kind errKind) {
	if kind != kindTimeout {
		return
	}
	if r := s.metricsRegistry(); r != nil {
		r.TimedOut.Inc()
	}
}

// handleQuery serves POST /v1/query: session-scoped prepared execution
// with admission control, streaming the result as one JSON object whose
// rows array grows over chunked encoding:
//
//	{"columns":["a","n"],"rows":[["x",1],["y",2]],"row_count":2}
//
// An error before the first row is a proper taxonomy status; an error
// mid-stream (the 200 is already on the wire) terminates the body with
// "error"/"kind" members instead of "row_count" — a client knows a
// result is complete iff row_count is present.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, kindBadRequest, "missing query")
		return
	}
	ss, created := s.sessions.resolve(r, time.Now())
	setSessionHeaders(w, ss, created)

	maxRows := s.maxRowsFor(req.MaxRows)
	key := cacheKey(req.Query, maxRows)
	if body, ok := s.cache.get(key, s.sys.Epoch()); ok {
		if reg := s.metricsRegistry(); reg != nil {
			reg.CacheHits.Inc()
		}
		w.Header().Set("X-Kaskade-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
		return
	}
	if s.cache.enabled() {
		if reg := s.metricsRegistry(); reg != nil {
			reg.CacheMisses.Inc()
		}
	}

	if !s.admit() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, kindSaturated,
			fmt.Sprintf("server saturated: %d requests in flight", s.cfg.MaxInFlight))
		return
	}
	defer s.release()

	stmt, hit, err := ss.prepare(s.sys, req.Query, s.cfg.SessionMaxPrepared)
	if err != nil {
		status, kind := classifyParse(err)
		writeError(w, status, kind, err.Error())
		return
	}
	w.Header().Set(preparedHeader, map[bool]string{true: "hit", false: "miss"}[hit])

	ctx, cancel := s.execCtx(r, req.TimeoutMS)
	defer cancel()
	if s.testExecDelay != nil {
		s.testExecDelay(ctx)
	}

	// The epoch is read before planning: if DDL lands mid-execution the
	// stored stamp is already stale at put time, so the entry can never
	// serve a result computed over a view set older than its stamp.
	epoch := s.sys.Epoch()
	rows, err := stmt.QueryContext(ctx, core.WithMaxRows(maxRows))
	if err != nil {
		status, kind := classifyExec(err)
		s.countTimeout(kind)
		writeError(w, status, kind, err.Error())
		return
	}
	defer rows.Close()

	// Pull the first row before committing a status code, so errors the
	// match hits immediately (timeouts included — aggregates yield only
	// at the end) still get their taxonomy status.
	first := rows.Next()
	if !first {
		if err := rows.Err(); err != nil {
			status, kind := classifyExec(err)
			s.countTimeout(kind)
			writeError(w, status, kind, err.Error())
			return
		}
	}

	w.Header().Set("Content-Type", "application/json")
	flusher, _ := w.(http.Flusher)
	var tee *bytes.Buffer
	if s.cache.enabled() {
		tee = &bytes.Buffer{}
	}
	write := func(b []byte) {
		_, _ = w.Write(b)
		if tee != nil {
			if tee.Len()+len(b) > cacheMaxBody {
				tee = nil // too large to cache; keep streaming
			} else {
				tee.Write(b)
			}
		}
	}

	cols, _ := json.Marshal(rows.Columns())
	write([]byte(`{"columns":`))
	write(cols)
	write([]byte(`,"rows":[`))
	n := 0
	if first {
		for {
			enc, err := json.Marshal(encodeRow(rows.Row()))
			if err != nil { // unrepresentable value; end the stream with the error
				write([]byte(`],"error":` + mustJSON(err.Error()) + `,"kind":"internal"}`))
				return
			}
			if n > 0 {
				write([]byte(","))
			}
			write(enc)
			n++
			if flusher != nil && n%flushEvery == 0 {
				flusher.Flush()
			}
			if !rows.Next() {
				break
			}
		}
	}
	if err := rows.Err(); err != nil {
		_, kind := classifyExec(err)
		s.countTimeout(kind)
		write([]byte(`],"error":` + mustJSON(err.Error()) + `,"kind":"` + string(kind) + `"}`))
		return
	}
	write([]byte(`],"row_count":` + strconv.Itoa(n) + `}`))
	if tee != nil {
		s.cache.put(key, epoch, append([]byte(nil), tee.Bytes()...))
	}
}

// handleExec serves POST /v1/exec: the System.Exec dispatcher over the
// wire — view DDL, EXPLAIN, or plain queries — under the same admission
// control as /v1/query, returning the buffered status or result table.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req execRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Statement == "" {
		writeError(w, http.StatusBadRequest, kindBadRequest, "missing statement")
		return
	}
	ss, created := s.sessions.resolve(r, time.Now())
	setSessionHeaders(w, ss, created)

	// Pre-parse so syntax failures classify as parse errors; Exec
	// re-parses internally (statement dispatch is not the hot path).
	if _, err := gql.ParseStatement(req.Statement); err != nil {
		writeError(w, http.StatusBadRequest, kindParse, err.Error())
		return
	}

	if !s.admit() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, kindSaturated,
			fmt.Sprintf("server saturated: %d requests in flight", s.cfg.MaxInFlight))
		return
	}
	defer s.release()

	ctx, cancel := s.execCtx(r, req.TimeoutMS)
	defer cancel()
	if s.testExecDelay != nil {
		s.testExecDelay(ctx)
	}

	res, err := s.sys.Exec(ctx, req.Statement)
	if err != nil {
		status, kind := classifyExec(err)
		s.countTimeout(kind)
		writeError(w, status, kind, err.Error())
		return
	}
	writeJSON(w, resultJSON(res))
}

// viewJSON is one /v1/views element.
type viewJSON struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"`
	Vertices    int    `json:"vertices"`
	Edges       int    `json:"edges"`
	RewriteHits int64  `json:"rewrite_hits"`
	DDL         string `json:"ddl,omitempty"`
}

// handleViews serves GET /v1/views: SHOW VIEWS as JSON, in creation
// order.
func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	infos := s.sys.ListViews()
	out := struct {
		Views []viewJSON `json:"views"`
	}{Views: make([]viewJSON, 0, len(infos))}
	for _, in := range infos {
		out.Views = append(out.Views, viewJSON{
			Name: in.Name, Kind: in.Kind, Vertices: in.Vertices,
			Edges: in.Edges, RewriteHits: in.Hits, DDL: in.DDL,
		})
	}
	writeJSON(w, out)
}

// cytoElement is one Cytoscape.js element: the renderer consumes
// {nodes: [{data: {...}}], edges: [{data: {...}}]} verbatim.
type cytoElement struct {
	Data map[string]any `json:"data"`
}

// topologyJSON is the /v1/topology response: a Cytoscape-ready element
// set plus the true graph size, so a client can tell a truncated render
// from a complete one.
type topologyJSON struct {
	View       string        `json:"view,omitempty"`
	Nodes      []cytoElement `json:"nodes"`
	Edges      []cytoElement `json:"edges"`
	TotalNodes int           `json:"total_nodes"`
	TotalEdges int           `json:"total_edges"`
	Truncated  bool          `json:"truncated"`
}

// handleTopology serves GET /v1/topology?view=&limit=: the base graph
// (no view parameter) or a materialized view's graph as Cytoscape
// elements. Nodes are the first `limit` vertices in ID order (IDs are
// dense and deterministic), edges those with both endpoints included —
// a stable prefix subgraph rather than a random sample, so repeated
// fetches render identically.
func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	g := s.sys.Graph()
	name := r.URL.Query().Get("view")
	if name != "" {
		m, ok := s.sys.Catalog().Resolve(name)
		if !ok {
			writeError(w, http.StatusNotFound, kindNotFound, "no materialized view "+strconv.Quote(name))
			return
		}
		g = m.Graph
	}
	limit := s.cfg.TopologyMaxNodes
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, kindBadRequest, "limit must be a positive integer")
			return
		}
		if n < limit {
			limit = n
		}
	}

	f := g.Freeze()
	nv, ne := f.NumVertices(), f.NumEdges()
	cut := nv
	if cut > limit {
		cut = limit
	}
	out := topologyJSON{View: name, TotalNodes: nv, TotalEdges: ne, Truncated: cut < nv,
		Nodes: make([]cytoElement, 0, cut), Edges: []cytoElement{}}
	for v := 0; v < cut; v++ {
		vt := f.VertexTypeOf(graph.VertexID(v))
		out.Nodes = append(out.Nodes, cytoElement{Data: map[string]any{
			"id": "v" + strconv.Itoa(v), "label": vt, "type": vt,
		}})
	}
	for e := 0; e < ne; e++ {
		from, to := int(f.From(graph.EdgeID(e))), int(f.To(graph.EdgeID(e)))
		if from >= cut || to >= cut {
			continue
		}
		out.Edges = append(out.Edges, cytoElement{Data: map[string]any{
			"id":     "e" + strconv.Itoa(e),
			"source": "v" + strconv.Itoa(from),
			"target": "v" + strconv.Itoa(to),
			"label":  f.EdgeTypeOf(graph.EdgeID(e)),
		}})
	}
	writeJSON(w, out)
}

// latencyJSON summarizes the latency histogram in microseconds (bucket
// upper-bound quantiles, like the top dashboard).
type latencyJSON struct {
	Count  int64 `json:"count"`
	MeanUS int64 `json:"mean_us"`
	P50US  int64 `json:"p50_us"`
	P90US  int64 `json:"p90_us"`
	P99US  int64 `json:"p99_us"`
}

// admissionJSON is the service-boundary slice of /v1/metrics.
type admissionJSON struct {
	Admitted    int64 `json:"admitted"`
	Rejected    int64 `json:"rejected"`
	TimedOut    int64 `json:"timed_out"`
	InFlight    int64 `json:"in_flight"`
	Sessions    int64 `json:"sessions"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
}

// metricsJSON is the /v1/metrics response: System.MetricsSnapshot
// rendered for wire consumption.
type metricsJSON struct {
	Queries          int64          `json:"queries"`
	QueryErrors      int64          `json:"query_errors"`
	Rows             int64          `json:"rows"`
	RewriteHits      int64          `json:"rewrite_hits"`
	RewriteMisses    int64          `json:"rewrite_misses"`
	HitRatio         float64        `json:"hit_ratio"`
	Materializations int64          `json:"materializations"`
	Latency          latencyJSON    `json:"latency"`
	Admission        admissionJSON  `json:"admission"`
	FreezeEvents     int64          `json:"freeze_events"`
	WorkersActive    int64          `json:"workers_active"`
	WorkersPeak      int64          `json:"workers_peak"`
	ColumnScans      int64          `json:"column_scans"`
	PropMapFallbacks int64          `json:"prop_map_fallbacks"`
	Columns          int64          `json:"columns"`
	ColumnBytes      int64          `json:"column_bytes"`
	DeltaTailVerts   int64          `json:"delta_tail_vertices"`
	DeltaTailEdges   int64          `json:"delta_tail_edges"`
	OverlayReads     int64          `json:"overlay_reads"`
	Compactions      int64          `json:"compactions"`
	LastCompactionUS int64          `json:"last_compaction_us"`
	Views            []viewHitsJSON `json:"views"`
}

// viewHitsJSON is one per-view usage entry in /v1/metrics.
type viewHitsJSON struct {
	Name        string `json:"name"`
	RewriteHits int64  `json:"rewrite_hits"`
}

// handleMetrics serves GET /v1/metrics: a point-in-time snapshot of the
// served System's registry, admission-control outcomes included.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.sys.MetricsSnapshot()
	us := func(d time.Duration) int64 { return d.Microseconds() }
	out := metricsJSON{
		Queries: snap.Queries, QueryErrors: snap.QueryErrors, Rows: snap.Rows,
		RewriteHits: snap.RewriteHits, RewriteMisses: snap.RewriteMisses,
		HitRatio: snap.HitRatio(), Materializations: snap.Materializations,
		Latency: latencyJSON{
			Count:  snap.Latency.Count,
			MeanUS: us(snap.Latency.Mean()),
			P50US:  us(snap.Latency.Quantile(0.50)),
			P90US:  us(snap.Latency.Quantile(0.90)),
			P99US:  us(snap.Latency.Quantile(0.99)),
		},
		Admission: admissionJSON{
			Admitted: snap.Admitted, Rejected: snap.Rejected, TimedOut: snap.TimedOut,
			InFlight: snap.InFlight, Sessions: snap.Sessions,
			CacheHits: snap.CacheHits, CacheMisses: snap.CacheMisses,
		},
		FreezeEvents:     snap.FreezeEvents,
		WorkersActive:    snap.WorkersActive,
		WorkersPeak:      snap.WorkersPeak,
		ColumnScans:      snap.ColumnScans,
		PropMapFallbacks: snap.PropMapFallbacks,
		Columns:          snap.ColumnCount,
		ColumnBytes:      snap.ColumnBytes,
		DeltaTailVerts:   snap.DeltaTailVertices,
		DeltaTailEdges:   snap.DeltaTailEdges,
		OverlayReads:     snap.OverlayReads,
		Compactions:      snap.Compactions,
		LastCompactionUS: us(snap.LastCompaction),
		Views:            make([]viewHitsJSON, 0, len(snap.Views)),
	}
	for _, v := range snap.Views {
		out.Views = append(out.Views, viewHitsJSON{Name: v.Name, RewriteHits: v.Hits})
	}
	writeJSON(w, out)
}

// handleHealthz serves GET /healthz: ok while accepting work, 503 once
// draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.baseCtx.Err() != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable) //kaskade:allow errtaxonomy health probes want a status report, not an error envelope
		_, _ = w.Write([]byte(`{"status":"draining"}`))
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

// writeJSON emits one buffered 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// resultJSON renders a buffered exec.Result as the standard result
// envelope (what a fully buffered /v1/query body would hold).
func resultJSON(res *exec.Result) any {
	rows := make([][]any, len(res.Rows))
	for i, row := range res.Rows {
		rows[i] = encodeRow(row)
	}
	return struct {
		Columns  []string `json:"columns"`
		Rows     [][]any  `json:"rows"`
		RowCount int      `json:"row_count"`
	}{Columns: res.Cols, Rows: rows, RowCount: len(rows)}
}

// encodeRow maps one result row to JSON-encodable values.
func encodeRow(row exec.Row) []any {
	out := make([]any, len(row))
	for i, v := range row {
		out[i] = encodeValue(v)
	}
	return out
}

// encodeValue maps one exec.Value to its JSON form: scalars pass
// through (non-finite floats fall back to their display string — JSON
// has no NaN/Inf), graph references (vertices, edges, paths) render as
// their display form.
func encodeValue(v exec.Value) any {
	switch x := v.(type) {
	case nil:
		return nil
	case int64, string, bool:
		return x
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return exec.FormatValue(x)
		}
		return x
	default:
		return exec.FormatValue(v)
	}
}

// mustJSON marshals a string for inline body construction.
func mustJSON(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
