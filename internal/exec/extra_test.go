package exec

import (
	"testing"

	"kaskade/internal/graph"
)

func TestTwoVariableLengthSegments(t *testing.T) {
	// a -> b -> c -> d: pattern (x)-[*1..2]->(y)-[*1..2]->(z) counts
	// ordered edge-disjoint path pairs.
	g := graph.NewGraph(nil)
	ids := make([]graph.VertexID, 4)
	for i := range ids {
		ids[i] = g.MustAddVertex("V", nil)
	}
	for i := 0; i < 3; i++ {
		g.MustAddEdge(ids[i], ids[i+1], "E", nil)
	}
	res := run(t, g, `MATCH (x)-[r1*1..2]->(y)-[r2*1..2]->(z) RETURN COUNT(*) AS n`)
	// Splits: len1+len1 (a-b-c, b-c-d), len1+len2 (a-b-d), len2+len1
	// (a-c-d): 4 total.
	if got := res.Rows[0][0].(int64); got != 4 {
		t.Errorf("two-segment count = %d, want 4", got)
	}
}

func TestWhereBooleanOperators(t *testing.T) {
	g, _ := lineage(t)
	res := run(t, g, `MATCH (j:Job) WHERE j.CPU = 10 OR j.CPU = 30 RETURN j.name AS n`)
	if len(res.Rows) != 2 {
		t.Errorf("OR filter rows = %d", len(res.Rows))
	}
	res = run(t, g, `MATCH (j:Job) WHERE NOT j.CPU = 10 AND j.CPU <= 30 RETURN j.name AS n`)
	if len(res.Rows) != 2 || res.Rows[0][0] != "j2" {
		t.Errorf("NOT/AND filter = %v", res.Rows)
	}
	// String comparison.
	res = run(t, g, `MATCH (j:Job) WHERE j.name = 'j2' RETURN j`)
	if len(res.Rows) != 1 {
		t.Errorf("string equality rows = %d", len(res.Rows))
	}
	res = run(t, g, `MATCH (j:Job) WHERE j.name <> 'j2' RETURN j`)
	if len(res.Rows) != 2 {
		t.Errorf("string inequality rows = %d", len(res.Rows))
	}
}

func TestNullPropertyHandling(t *testing.T) {
	g := graph.NewGraph(nil)
	g.MustAddVertex("V", graph.Properties{"x": int64(1)})
	g.MustAddVertex("V", nil) // x missing -> null
	// COALESCE falls back.
	res := run(t, g, `MATCH (v:V) RETURN COALESCE(v.x, 0) AS x`)
	if res.Rows[0][0].(int64) != 1 || res.Rows[1][0].(int64) != 0 {
		t.Errorf("coalesce = %v", res.Rows)
	}
	// Aggregates skip nulls; COUNT(prop) counts non-null.
	res = run(t, g, `MATCH (v:V) RETURN COUNT(v.x) AS c, SUM(v.x) AS s, AVG(v.x) AS a`)
	if res.Rows[0][0].(int64) != 1 || res.Rows[0][1].(int64) != 1 || res.Rows[0][2].(float64) != 1 {
		t.Errorf("null-skipping aggregates = %v", res.Rows[0])
	}
	// Equality with null: null = x is false, null <> x is true.
	res = run(t, g, `MATCH (v:V) WHERE v.x = 1 RETURN v`)
	if len(res.Rows) != 1 {
		t.Errorf("null-equality rows = %d", len(res.Rows))
	}
}

func TestEdgePropertiesInReturn(t *testing.T) {
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	g.MustAddEdge(a, b, "E", graph.Properties{"w": int64(7)})
	res := run(t, g, `MATCH (x)-[e]->(y) RETURN e.w AS w, TYPE(e) AS t, ID(e) AS id`)
	if res.Rows[0][0].(int64) != 7 || res.Rows[0][1] != "E" || res.Rows[0][2].(int64) != 0 {
		t.Errorf("edge projection = %v", res.Rows[0])
	}
}

func TestMinMaxAggregates(t *testing.T) {
	g, _ := lineage(t)
	res := run(t, g, `MATCH (j:Job) RETURN MIN(j.CPU) AS lo, MAX(j.CPU) AS hi`)
	if res.Rows[0][0].(int64) != 10 || res.Rows[0][1].(int64) != 30 {
		t.Errorf("min/max = %v", res.Rows[0])
	}
	// MIN/MAX over strings.
	res = run(t, g, `MATCH (j:Job) RETURN MIN(j.name) AS lo, MAX(j.name) AS hi`)
	if res.Rows[0][0] != "j1" || res.Rows[0][1] != "j3" {
		t.Errorf("string min/max = %v", res.Rows[0])
	}
}

func TestArithmeticInProjection(t *testing.T) {
	g, _ := lineage(t)
	res := run(t, g, `MATCH (j:Job) WHERE j.name = 'j2' RETURN j.CPU * 2 + 1 AS x, j.CPU / 8 AS y`)
	if res.Rows[0][0].(int64) != 41 {
		t.Errorf("arith = %v", res.Rows[0][0])
	}
	if res.Rows[0][1].(float64) != 2.5 {
		t.Errorf("non-exact division = %v (%T)", res.Rows[0][1], res.Rows[0][1])
	}
}

func TestAggregateOfExpression(t *testing.T) {
	g, _ := lineage(t)
	// SUM over an arithmetic expression, plus arithmetic over an
	// aggregate result.
	res := run(t, g, `MATCH (j:Job) RETURN SUM(j.CPU * 2) AS d, SUM(j.CPU) + 1 AS e`)
	if res.Rows[0][0].(int64) != 120 || res.Rows[0][1].(int64) != 61 {
		t.Errorf("aggregate expressions = %v", res.Rows[0])
	}
}

func TestLimitZeroAndOrderTies(t *testing.T) {
	g, _ := lineage(t)
	res := run(t, g, `SELECT n FROM (MATCH (j:Job) RETURN j.name AS n) LIMIT 0`)
	if len(res.Rows) != 0 {
		t.Errorf("LIMIT 0 rows = %d", len(res.Rows))
	}
	// Stable order under ties: equal keys keep input order. (ORDER BY
	// references projected columns, so k must be selected.)
	res = run(t, g, `SELECT n, k FROM (MATCH (j:Job) RETURN j.name AS n, 1 AS k) ORDER BY k`)
	if res.Rows[0][0] != "j1" || res.Rows[2][0] != "j3" {
		t.Errorf("tie order = %v", res.Rows)
	}
}

func TestSelfJoinPattern(t *testing.T) {
	// Same variable at both chain ends: cycles of length 2.
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("V", nil)
	b := g.MustAddVertex("V", nil)
	c := g.MustAddVertex("V", nil)
	g.MustAddEdge(a, b, "E", nil)
	g.MustAddEdge(b, a, "E", nil)
	g.MustAddEdge(b, c, "E", nil)
	res := run(t, g, `MATCH (x)-[e1]->(y)-[e2]->(x) RETURN COUNT(*) AS n`)
	// a->b->a and b->a->b.
	if res.Rows[0][0].(int64) != 2 {
		t.Errorf("2-cycles = %v", res.Rows[0][0])
	}
}

func TestVarLengthWithTypeRestriction(t *testing.T) {
	g, _ := lineage(t)
	// Variable-length restricted to WRITES_TO edges: from a job only
	// 1-hop paths exist (files have no WRITES_TO out-edges).
	res := run(t, g, `MATCH (j:Job)-[r:WRITES_TO*1..3]->(v) RETURN COUNT(r) AS n`)
	if res.Rows[0][0].(int64) != 4 {
		t.Errorf("typed var-length paths = %v, want 4 write edges", res.Rows[0][0])
	}
}

func TestFixedLengthVarPattern(t *testing.T) {
	g, _ := lineage(t)
	// [*2] means exactly two hops.
	res := run(t, g, `MATCH (j:Job)-[r*2]->(k:Job) RETURN COUNT(r) AS n`)
	if res.Rows[0][0].(int64) != 2 {
		t.Errorf("fixed 2-hop job-job paths = %v, want 2", res.Rows[0][0])
	}
}
