package exec

import (
	"errors"
	"fmt"
	"iter"
)

// Rows is a streaming query result cursor, modeled on database/sql:
//
//	rows, err := ex.Stream(ctx, q)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		var name string
//		var n int64
//		if err := rows.Scan(&name, &n); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Rows yields exactly the rows, in exactly the order, that the buffered
// Execute path would return — streaming is a memory/latency win, never
// a semantic change. Closing the cursor (or cancelling the context
// passed to Stream) aborts the underlying pattern match, including its
// worker pool when the executor runs parallel.
//
// A Rows is single-consumer: Next/Scan/Err/Close must stay on one
// goroutine.
type Rows struct {
	cols   []string
	next   func() (Row, error, bool)
	stop   func()
	cancel func()
	row    Row
	err    error
	done   bool
}

// newRows adapts the streaming core's row sequence into a pull cursor.
// cancel aborts the producer (it is the Stream-level context cancel);
// it must be safe to call more than once.
func newRows(cols []string, body iter.Seq2[Row, error], cancel func()) *Rows {
	next, stop := iter.Pull2(body)
	return &Rows{cols: cols, next: next, stop: stop, cancel: cancel}
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Next advances to the next row, returning false when the rows are
// exhausted, an error occurred (see Err), or the cursor is closed.
func (r *Rows) Next() bool {
	if r.done {
		return false
	}
	row, err, ok := r.next()
	if !ok {
		r.finish(nil)
		return false
	}
	if err != nil {
		r.finish(err)
		return false
	}
	r.row = row
	return true
}

// Row returns the current row (valid until the next call to Next). Most
// callers want Scan; Row is the zero-copy escape hatch.
func (r *Rows) Row() Row { return r.row }

// Scan copies the current row's columns into dest, which must hold one
// pointer per column: *int64 (or *int), *float64, *string, *bool,
// *VertexRef, *EdgeRef, *PathRef, or *Value / *any for any column type.
// *float64 additionally accepts integer values.
func (r *Rows) Scan(dest ...any) error {
	if r.row == nil {
		return errors.New("exec: Scan called without a successful Next")
	}
	if len(dest) != len(r.row) {
		return fmt.Errorf("exec: Scan expects %d destinations, got %d", len(r.row), len(dest))
	}
	for i, d := range dest {
		if err := assignValue(d, r.row[i]); err != nil {
			return fmt.Errorf("exec: Scan column %d (%s): %w", i, r.cols[i], err)
		}
	}
	return nil
}

// Err returns the error, if any, that ended iteration. It is valid
// after Next returns false (and after Close).
func (r *Rows) Err() error { return r.err }

// Close releases the cursor, aborting the underlying match if it is
// still running. Close is idempotent and always safe to defer; it
// returns Err() so `return rows.Close()` propagates a mid-stream
// failure.
func (r *Rows) Close() error {
	if !r.done {
		// Unblock a producer that is mid-traversal (or waiting on
		// parallel partitions) before stopping the pull coroutine —
		// stop blocks until the producer returns.
		r.cancel()
		r.finish(nil)
	}
	return r.err
}

// finish tears the cursor down exactly once, recording err.
func (r *Rows) finish(err error) {
	r.done = true
	r.err = err
	r.row = nil
	r.cancel()
	r.stop()
}

// All returns the remaining rows as a Go 1.23 range-over-func sequence:
//
//	for row, err := range rows.All() {
//		if err != nil { ... }
//		...
//	}
//
// The sequence closes the cursor when the loop ends, including on early
// break, so `for ... range rows.All()` needs no separate Close.
func (r *Rows) All() iter.Seq2[Row, error] {
	return func(yield func(Row, error) bool) {
		defer r.Close()
		for r.Next() {
			if !yield(r.row, nil) {
				return
			}
		}
		if r.err != nil {
			yield(nil, r.err)
		}
	}
}

// Result drains the remaining rows into a buffered Result and closes
// the cursor — the convenience bridge from the streaming API back to
// the table one.
func (r *Rows) Result() (*Result, error) {
	defer r.Close()
	out := &Result{Cols: r.Columns()}
	for r.Next() {
		out.Rows = append(out.Rows, r.row)
	}
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

// assignValue stores v into the destination pointer d. *Value and *any
// are distinct pointer types (Value is a defined type), so both get a
// case.
func assignValue(d any, v Value) error {
	switch d := d.(type) {
	case *Value:
		*d = v
		return nil
	case *any:
		*d = v
		return nil
	case *int64:
		if i, ok := v.(int64); ok {
			*d = i
			return nil
		}
	case *int:
		if i, ok := v.(int64); ok {
			// int is 32 bits on some platforms; a silent truncation
			// would flip values past 2^31, so range-check instead.
			if n := int(i); int64(n) == i {
				*d = n
				return nil
			}
			return fmt.Errorf("value %d overflows int (use *int64)", i)
		}
	case *float64:
		switch v := v.(type) {
		case float64:
			*d = v
			return nil
		case int64:
			*d = float64(v)
			return nil
		}
	case *string:
		if s, ok := v.(string); ok {
			*d = s
			return nil
		}
	case *bool:
		if b, ok := v.(bool); ok {
			*d = b
			return nil
		}
	case *VertexRef:
		if r, ok := v.(VertexRef); ok {
			*d = r
			return nil
		}
	case *EdgeRef:
		if r, ok := v.(EdgeRef); ok {
			*d = r
			return nil
		}
	case *PathRef:
		if r, ok := v.(PathRef); ok {
			*d = r
			return nil
		}
	default:
		return fmt.Errorf("unsupported destination type %T", d)
	}
	return fmt.Errorf("cannot scan %T into %T", v, d)
}
