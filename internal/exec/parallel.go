package exec

import (
	"context"
	"iter"
	"runtime"

	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/par"
)

// The parallel matcher partitions the binding space of the first node of
// the first pattern — the candidate vertex list that the sequential
// matcher's bindNode would scan — into contiguous chunks, and runs an
// independent matcher (own bindings map, own edge-uniqueness set) over
// each chunk on a bounded worker pool. Chunks are merged in partition
// order, so the result rows, aggregation group order, and row-limit
// behavior are identical to the sequential path: workers=N is a pure
// speedup, never a semantic change.
//
// The merge is a stream: chunk 0's rows are yielded as soon as chunk 0
// completes, while later chunks are still being matched, so a streaming
// consumer sees first rows before the full binding space is explored.
// Cancellation flows through three layers — the pool stops handing out
// chunks (par.DoContext), each in-flight matcher polls the context
// between traversal steps, and the merge loop itself selects on the
// context while waiting for a partition.
//
// Correctness rests on two facts: (1) subtrees of the backtracking
// search rooted at different first-node bindings never share mutable
// state, and (2) graph.Graph is read-only after load, so any number of
// matchers may traverse it concurrently.

// chunkTarget is the number of chunks created per worker. More chunks
// than workers lets fast workers steal the tail of the candidate list,
// which matters on power-law graphs where hub vertices concentrate work
// in a few candidates.
const chunkTarget = 16

// aggYield is one aggregated-query yield: the worker-evaluated group
// key and aggregate arguments, plus — only for the first occurrence of
// a group key within the chunk — a copy of the bindings, in case the
// merge phase discovers this yield opens a new group and needs its
// representative row.
type aggYield struct {
	p   prepared
	env map[string]Value
}

// matchChunk holds one partition's yields in enumeration order. Exactly
// one of rows/aggs is populated: projected rows when the query has no
// aggregates, prepared aggregation inputs (accumulated at merge time,
// preserving first-seen group order) otherwise. yields counts yield
// *events*, which can exceed the recorded entries by one when the last
// yield's evaluation errored — the merge phase needs the event position
// to reproduce the sequential path's check-limit-then-evaluate order.
type matchChunk struct {
	yields int
	rows   []Row
	aggs   []aggYield
	err    error
}

// firstNodeCandidates reproduces bindNode's enumeration order for the
// first node of the first pattern: the type-restricted vertex list when
// the node is typed, every vertex otherwise. The second result is false
// when the query shape is not partitionable (no patterns or an empty
// pattern — the sequential path reports those errors).
func firstNodeCandidates(g *graph.Graph, patterns []gql.PathPattern) ([]graph.VertexID, bool) {
	if len(patterns) == 0 || len(patterns[0].Nodes) == 0 {
		return nil, false
	}
	n := patterns[0].Nodes[0]
	if n.Type != "" {
		return g.VerticesOfType(n.Type), true
	}
	ids := make([]graph.VertexID, g.NumVertices())
	for i := range ids {
		ids[i] = graph.VertexID(i)
	}
	return ids, true
}

// streamMatchParallel is streamMatchSeq with the first-node binding
// space fanned out across `workers` goroutines. It returns ok=false
// when the query shape or candidate count does not benefit from
// partitioning, in which case the caller falls through to the
// sequential path.
func (ex *Executor) streamMatchParallel(ctx context.Context, q *gql.MatchQuery, workers int) ([]string, iter.Seq2[Row, error], bool) {
	cands, ok := firstNodeCandidates(ex.G, q.Patterns)
	if !ok || len(cands) < 2 {
		return nil, nil, false
	}
	if workers > len(cands) {
		workers = len(cands)
	}

	// Contiguous chunks in candidate order; concatenating chunk results
	// in chunk-index order reproduces the sequential enumeration.
	chunkSize, numChunks := par.Chunks(len(cands), workers, chunkTarget)

	cols := returnCols(q.Return)
	body := func(yield func(Row, error) bool) {
		// wctx scopes the workers to this consumption: when the
		// consumer stops early (Rows.Close, broken range loop), the
		// deferred cancel reels the pool back in before the stream
		// returns, so no goroutine outlives the query.
		wctx, cancel := context.WithCancel(ctx)
		defer cancel()

		chunks := make([]matchChunk, numChunks)
		agg := newAggregator(q.Return, nil)
		firstNode := q.Patterns[0].Nodes[0]

		// done[ci] closes when chunk ci is fully matched; the merge
		// loop rendezvouses on it in partition order.
		done := make([]chan struct{}, numChunks)
		for i := range done {
			done[i] = make(chan struct{})
		}
		poolDone := make(chan struct{})
		go func() {
			defer close(poolDone)
			par.DoContext(wctx, numChunks, workers, func(next func() (int, bool)) {
				// One matcher per worker: bindings and usedEdge drain
				// back to empty between candidates, so the maps are
				// reusable across chunks without cross-talk.
				m := &matcher{
					g:        ex.G,
					bindings: make(map[string]Value),
					usedEdge: make(map[graph.EdgeID]bool),
					where:    q.Where,
					ctx:      wctx,
				}
				for {
					ci, ok := next()
					if !ok {
						return
					}
					ch := &chunks[ci]
					lo := ci * chunkSize
					hi := lo + chunkSize
					if hi > len(cands) {
						hi = len(cands)
					}
					ch.err = ex.matchChunkRange(m, q, agg, cands[lo:hi], firstNode, ch)
					close(done[ci])
				}
			})
		}()
		defer func() { cancel(); <-poolDone }()

		// Merge: replay the chunks in partition order, reproducing the
		// sequential path's row order, aggregation feed order,
		// row-limit check, and first-error position.
		rows := 0
		for ci := range numChunks {
			select {
			case <-done[ci]:
			case <-wctx.Done():
				// Cancelled while a partition was still matching (the
				// pool may never claim it once the context is done).
				yield(nil, wctx.Err())
				return
			}
			ch := &chunks[ci]
			recorded := len(ch.rows)
			if agg != nil {
				recorded = len(ch.aggs)
			}
			// Replay yield *events*, not just recorded entries: the
			// global row count and limit check advance at the position
			// the sequential path would check them — before evaluation
			// — so a yield whose evaluation errored (yields ==
			// recorded+1) first passes through the same limit gate.
			for i := 0; i < ch.yields; i++ {
				rows++
				if ex.MaxRows > 0 && rows > ex.MaxRows {
					yield(nil, ErrRowLimit)
					return
				}
				if i >= recorded {
					// This yield event produced no entry: its
					// evaluation errored in the worker. The sequential
					// path fails with that error at exactly this row.
					yield(nil, ch.err)
					return
				}
				if agg == nil {
					if !yield(ch.rows[i], nil) {
						return
					}
					continue
				}
				y := ch.aggs[i]
				env := y.env
				// A group is only ever opened at the global first
				// occurrence of its key, which is also the first local
				// occurrence within its chunk — the one yield that
				// carries the bindings copy.
				if err := agg.feedPrepared(y.p, func() map[string]Value { return env }); err != nil {
					yield(nil, err)
					return
				}
			}
			if ch.err != nil {
				// An error outside a yield (WHERE evaluation, malformed
				// pattern, cancellation) aborted the chunk after its
				// recorded yields; errPartitionLimit cannot reach here
				// — its chunk carries MaxRows+1 yield events, so the
				// limit gate above tripped.
				yield(nil, ch.err)
				return
			}
		}
		if agg != nil {
			out, err := agg.finish()
			if err != nil {
				yield(nil, err)
				return
			}
			for _, row := range out {
				if !yield(row, nil) {
					return
				}
			}
		}
	}
	return cols, body, true
}

// errPartitionLimit aborts a worker whose local yield count alone
// already exceeds MaxRows; the merge loop converts it into the
// sequential path's ErrRowLimit at the equivalent global row.
var errPartitionLimit = &partitionLimitError{}

type partitionLimitError struct{}

func (*partitionLimitError) Error() string { return "exec: partition row limit" }

// matchChunkRange runs the full backtracking match with the first node
// pinned to each candidate in turn, recording yields into ch. Aggregate
// queries evaluate their group keys and argument expressions here, on
// the worker; agg.prepare only reads the aggregator's immutable shape,
// so sharing one aggregator across workers is safe.
func (ex *Executor) matchChunkRange(m *matcher, q *gql.MatchQuery, agg *aggregator, cands []graph.VertexID, firstNode gql.NodePattern, ch *matchChunk) error {
	var localGroups map[string]bool
	if agg != nil {
		localGroups = make(map[string]bool)
	}
	// Yield-event accounting mirrors the sequential path's order: count
	// the row and check the limit BEFORE evaluating any expression, so
	// an evaluation error beyond the row limit surfaces as ErrRowLimit,
	// not as the eval error the sequential path never reaches. The
	// worker can only apply its local limit (its count is a lower bound
	// on the global one); the merge phase re-checks globally.
	m.yield = func() error {
		ch.yields++
		if ex.MaxRows > 0 && ch.yields > ex.MaxRows {
			return errPartitionLimit
		}
		if agg != nil {
			p, err := agg.prepare(m.bindings)
			if err != nil {
				return err
			}
			y := aggYield{p: p}
			if !localGroups[p.key] {
				localGroups[p.key] = true
				y.env = make(map[string]Value, len(m.bindings))
				for k, v := range m.bindings {
					y.env[k] = v
				}
			}
			ch.aggs = append(ch.aggs, y)
			return nil
		}
		row := make(Row, len(q.Return))
		for i, item := range q.Return {
			v, err := evalExpr(item.Expr, m.bindings)
			if err != nil {
				return err
			}
			row[i] = v
		}
		ch.rows = append(ch.rows, row)
		return nil
	}
	for _, id := range cands {
		if err := m.tick(); err != nil {
			return err
		}
		if firstNode.Var != "" {
			m.bindings[firstNode.Var] = VertexRef{G: m.g, ID: id}
		}
		err := m.walkChain(q.Patterns, 0, 1, id)
		if firstNode.Var != "" {
			delete(m.bindings, firstNode.Var)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// effectiveWorkers resolves the Workers knob: 0 and 1 mean sequential,
// negative means one worker per available CPU.
func (ex *Executor) effectiveWorkers() int {
	if ex.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return ex.Workers
}
