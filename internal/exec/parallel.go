package exec

import (
	"context"
	"errors"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/par"
)

// The parallel matcher partitions the binding space of the first node of
// the first pattern — the candidate vertex list that the sequential
// matcher's bindNode would scan — into contiguous chunks, and runs an
// independent matcher (own bindings map, own edge-uniqueness set) over
// each chunk on a bounded worker pool. Chunks are merged in partition
// order, so the result rows, aggregation group order, and row-limit
// behavior are identical to the sequential path: workers=N is a pure
// speedup, never a semantic change.
//
// How a chunk's yields travel to the merge depends on the query's
// aggregation mode, chosen at plan time from the RETURN items
// (aggModeOf):
//
//   - AggModeNone (pure projection): workers publish each projected row
//     as it is produced, and the merge streams the front partition's
//     prefix while the chunk is still matching — a streaming consumer
//     sees chunk 0's first row long before chunk 0 (or the full binding
//     space) completes.
//   - AggModePartial (COUNT/MIN/MAX/integer SUM): each chunk feeds its
//     own partial accumulators, and the merge combines per-chunk states
//     in partition order. Order-insensitive folds make the combined
//     result byte-identical to the sequential feed, with no per-yield
//     buffer at all.
//   - AggModeBuffered (float SUM, AVG — observable fold order): workers
//     buffer prepared yields (group key + evaluated aggregate
//     arguments) and the merge replays them in sequential order, so
//     even float accumulation order matches the sequential path.
//
// Cancellation flows through three layers — the pool stops handing out
// chunks (par.DoContext), each in-flight matcher polls the context
// between traversal steps, and the merge loop itself selects on the
// context while waiting for a partition.
//
// Correctness rests on two facts: (1) subtrees of the backtracking
// search rooted at different first-node bindings never share mutable
// state, and (2) graph.Graph is read-only after load, so any number of
// matchers may traverse it concurrently.

// chunkTarget is the number of chunks created per worker. More chunks
// than workers lets fast workers steal the tail of the candidate list,
// which matters on power-law graphs where hub vertices concentrate work
// in a few candidates.
const chunkTarget = 16

// aggYield is one buffered-mode yield: the worker-evaluated group key
// and aggregate arguments, plus — only for the first occurrence of a
// group key within the chunk — a copy of the bindings, in case the
// merge phase discovers this yield opens a new group and needs its
// representative row.
type aggYield struct {
	p   prepared
	env map[string]Value
}

// matchChunk holds one partition's yields. Exactly one of rows/aggs/agg
// is populated, by aggregation mode: projected rows (AggModeNone),
// buffered prepared inputs (AggModeBuffered), or a chunk-local partial
// aggregator (AggModePartial). yields counts yield *events*, which can
// exceed the recorded entries by one when the last yield's evaluation
// errored — the merge phase needs the event position to reproduce the
// sequential path's check-limit-then-evaluate order.
//
// In AggModeNone the worker publishes rows under mu and nudges wake, so
// the merge can stream the chunk's row prefix while the chunk is still
// matching — but only while the chunk is the merge *front* (the atomic
// front index): rows of chunks the merge has not reached yet buffer
// lock-free in the worker and flush when the front arrives or the chunk
// completes, so trailing chunks pay no per-row synchronization. The
// aggregation modes write the fields unlocked and publish once, at
// chunk completion (the done flag is always set under mu, which orders
// those writes before the merge's reads). err is the chunk's terminal
// error, written by the claim loop before its completion hook runs.
type matchChunk struct {
	mu     sync.Mutex
	wake   chan struct{} // cap 1; nudged on publish and completion
	yields int
	rows   []Row
	aggs   []aggYield
	agg    *aggregator
	done   bool
	err    error
}

// nudge wakes the merge loop if it is (or is about to start) waiting on
// this chunk. The channel holds at most one token; a pending token
// already guarantees a wakeup, so the send never blocks.
func (ch *matchChunk) nudge() {
	select {
	case ch.wake <- struct{}{}:
	default:
	}
}

// complete marks the chunk finished and wakes the merge. All worker
// writes to the chunk happen before this on the worker's goroutine, so
// the merge — which re-reads state under mu after observing done — sees
// them.
func (ch *matchChunk) complete() {
	ch.mu.Lock()
	ch.done = true
	ch.mu.Unlock()
	ch.nudge()
}

// firstNodeCandidates reproduces bindNode's enumeration order for the
// first node of the first pattern: the type-restricted vertex list when
// the node is typed, every vertex otherwise. The second result is false
// when the query shape is not partitionable (no patterns or an empty
// pattern — the sequential path reports those errors).
func firstNodeCandidates(g *graph.Graph, patterns []gql.PathPattern) ([]graph.VertexID, bool) {
	if len(patterns) == 0 || len(patterns[0].Nodes) == 0 {
		return nil, false
	}
	n := patterns[0].Nodes[0]
	if n.Type != "" {
		return g.VerticesOfType(n.Type), true
	}
	ids := make([]graph.VertexID, g.NumVertices())
	for i := range ids {
		ids[i] = graph.VertexID(i)
	}
	return ids, true
}

// streamMatchParallel is streamMatchSeq with the first-node binding
// space fanned out across `workers` goroutines. It returns ok=false
// when the query shape or candidate count does not benefit from
// partitioning, in which case the caller falls through to the
// sequential path.
func (ex *Executor) streamMatchParallel(ctx context.Context, q *gql.MatchQuery, workers int) ([]string, iter.Seq2[Row, error], bool) {
	cands, ok := firstNodeCandidates(ex.G, q.Patterns)
	if !ok || len(cands) < 2 {
		return nil, nil, false
	}
	if pf := ex.columnPrefilter(q); pf != nil {
		// One flat column pass drops candidates whose leftmost WHERE
		// conjunct is cleanly false before any chunk descends; survivors
		// still evaluate the full WHERE (idempotent). Filtering the
		// candidate list keeps a subsequence, so partition-order merging
		// is unchanged.
		cands = pf.filter(cands, ex.Metrics)
		if len(cands) < 2 {
			return nil, nil, false // sequential path re-filters
		}
	}
	if workers > len(cands) {
		workers = len(cands)
	}

	mode := aggModeOf(q.Return, newTypeEnv(ex.G.Schema(), q.Patterns))
	if mode == AggModePartial && ex.noPartialAgg {
		mode = AggModeBuffered
	}

	// Contiguous chunks in candidate order; concatenating chunk results
	// in chunk-index order reproduces the sequential enumeration.
	chunkSize, numChunks := par.Chunks(len(cands), workers, chunkTarget)

	cols := returnCols(q.Return)
	if ex.Prof != nil {
		ex.Prof.Workers = workers
		ex.Prof.Mode = mode
	}
	body := func(yield func(Row, error) bool) {
		matchStart := time.Now()
		// wctx scopes the workers to this consumption: when the
		// consumer stops early (Rows.Close, broken range loop), the
		// deferred cancel reels the pool back in before the stream
		// returns, so no goroutine outlives the query.
		wctx, cancel := context.WithCancel(ctx)
		defer cancel()

		chunks := make([]matchChunk, numChunks)
		for i := range chunks {
			chunks[i].wake = make(chan struct{}, 1)
		}
		// The global aggregator: the buffered mode shares it with the
		// workers (they call only its immutable prepare), the partial
		// mode uses it purely as the merge target.
		var agg *aggregator
		if mode != AggModeNone {
			agg = newAggregator(q.Return, nil, ex.noColumns)
		}
		firstNode := q.Patterns[0].Nodes[0]
		// front is the partition the merge currently consumes. Row-mode
		// workers publish per row only while their chunk is the front;
		// it starts at 0, so chunk 0's first row is visible immediately.
		var front atomic.Int64

		poolDone := make(chan struct{})
		go func() {
			defer close(poolDone)
			par.DoContextDone(wctx, numChunks, workers, func(next func() (int, bool)) {
				// One matcher per worker: binding slots and usedEdge
				// drain back to empty between candidates, so the
				// per-matcher state is reusable across chunks without
				// cross-talk.
				m := ex.newMatcher(wctx, q)
				defer m.flushPropReads(ex.Metrics)
				for {
					ci, ok := next()
					if !ok {
						return
					}
					ch := &chunks[ci]
					lo := ci * chunkSize
					hi := lo + chunkSize
					if hi > len(cands) {
						hi = len(cands)
					}
					ch.err = ex.matchChunkRange(m, q, mode, agg, cands[lo:hi], firstNode, ch, ci, &front)
				}
			}, func(ci int) {
				// Chunk-completion hook: the merge loop rendezvouses on
				// this, in partition order.
				chunks[ci].complete()
			})
		}()
		defer func() { cancel(); <-poolDone }()

		// Merge: consume the chunks in partition order, reproducing the
		// sequential path's row order, aggregation feed order, row-limit
		// check, and first-error position. Only the front partition is
		// ever waited on; in row mode its published prefix streams out
		// while the chunk is still matching.
		rows := 0
		for ci := range numChunks {
			ch := &chunks[ci]
			front.Store(int64(ci))
			consumed := 0 // row entries already yielded (row mode)
			for {
				// Under mu, read only what the mode publishes
				// incrementally: the done flag always, the row prefix in
				// row mode. The aggregation modes write their fields
				// unlocked and order them before the merge's reads via
				// complete()'s critical section, so they must not be
				// touched until done is observed.
				ch.mu.Lock()
				done := ch.done
				var published []Row
				if mode == AggModeNone {
					published = ch.rows // entries are immutable once appended
				}
				ch.mu.Unlock()

				if mode == AggModeNone {
					// Stream the freshly published prefix. The global
					// row count and limit check advance at the position
					// the sequential path would check them — before
					// evaluation.
					for consumed < len(published) {
						rows++
						if ex.MaxRows > 0 && rows > ex.MaxRows {
							yield(nil, ErrRowLimit)
							return
						}
						if !yield(published[consumed], nil) {
							return
						}
						consumed++
					}
				}

				if done {
					// A done observed under mu happened after the
					// chunk's final publish, so consumed covers every
					// recorded row and the remaining fields are frozen.
					if err := ex.mergeChunk(mode, agg, ch, consumed, &rows, yield); err != nil {
						return // mergeChunk already yielded the terminal error
					}
					break
				}
				select {
				case <-ch.wake:
				case <-wctx.Done():
					// Cancelled while a partition was still matching
					// (the pool may never claim it once the context is
					// done).
					yield(nil, wctx.Err())
					return
				}
			}
		}
		if ex.Prof != nil {
			// rows counts yield events merged across every partition —
			// the sequential path's pre-aggregation row count.
			ex.Prof.add("match", int64(rows), numChunks, time.Since(matchStart))
		}
		if agg != nil {
			finStart := time.Now()
			out, err := agg.finish()
			if err != nil {
				yield(nil, err)
				return
			}
			if ex.Prof != nil {
				ex.Prof.add("aggregate", int64(len(out)), 0, time.Since(finStart))
			}
			for _, row := range out {
				if !yield(row, nil) {
					return
				}
			}
		}
	}
	return cols, body, true
}

// errMergeStop signals mergeChunk's caller that the stream terminated
// (the terminal yield already happened inside mergeChunk).
var errMergeStop = errors.New("exec: merge stopped")

// mergeChunk folds one completed chunk into the merge state. It must
// only run after the chunk's done flag was observed under its mutex, at
// which point every field is frozen. It returns nil when the merge
// should advance to the next partition, errMergeStop when the stream is
// over (terminal error already yielded, or consumer stopped).
func (ex *Executor) mergeChunk(mode AggMode, agg *aggregator, ch *matchChunk, consumed int, rows *int, yield func(Row, error) bool) error {
	yields, chErr := ch.yields, ch.err
	switch mode {
	case AggModeNone:
		// The streaming loop above already yielded every recorded row;
		// what remains are trailing entry-less events — at most the one
		// whose evaluation errored, or the local-limit overflow event —
		// which must still pass through the limit gate at their global
		// position before the chunk error (if any) surfaces.
		for ; consumed < yields; consumed++ {
			*rows++
			if ex.MaxRows > 0 && *rows > ex.MaxRows {
				yield(nil, ErrRowLimit)
				return errMergeStop
			}
		}
		if chErr != nil {
			yield(nil, chErr)
			return errMergeStop
		}
	case AggModeBuffered:
		// Replay yield *events*, not just recorded entries: the global
		// row count and limit check advance at the position the
		// sequential path would check them — before evaluation — so a
		// yield whose evaluation errored (yields == recorded+1) first
		// passes through the same limit gate.
		for i := 0; i < yields; i++ {
			*rows++
			if ex.MaxRows > 0 && *rows > ex.MaxRows {
				yield(nil, ErrRowLimit)
				return errMergeStop
			}
			if i >= len(ch.aggs) {
				// This yield event produced no entry: its evaluation
				// errored in the worker. The sequential path fails with
				// that error at exactly this row.
				yield(nil, chErr)
				return errMergeStop
			}
			y := ch.aggs[i]
			env := y.env
			// A group is only ever opened at the global first
			// occurrence of its key, which is also the first local
			// occurrence within its chunk — the one yield that carries
			// the bindings copy.
			if err := agg.feedPrepared(y.p, func() map[string]Value { return env }); err != nil {
				yield(nil, err)
				return errMergeStop
			}
		}
		if chErr != nil {
			// An error outside a yield (WHERE evaluation, malformed
			// pattern, cancellation) aborted the chunk after its
			// recorded yields; errPartitionLimit cannot reach here —
			// its chunk carries MaxRows+1 yield events, so the limit
			// gate above tripped.
			yield(nil, chErr)
			return errMergeStop
		}
	case AggModePartial:
		// The chunk's yields were folded into its partial accumulators
		// as they happened; only the event count travels here. The
		// limit gate trips iff the sequential path would have checked
		// rows > MaxRows at one of this chunk's events — and since a
		// chunk error is positioned at (or after) the chunk's last
		// event, the gate wins exactly when sequential's earlier
		// limit-before-evaluate check would.
		if ex.MaxRows > 0 && *rows+yields > ex.MaxRows {
			yield(nil, ErrRowLimit)
			return errMergeStop
		}
		*rows += yields
		if chErr != nil {
			yield(nil, chErr)
			return errMergeStop
		}
		if ch.agg != nil {
			if err := agg.mergeFrom(ch.agg); err != nil {
				yield(nil, err)
				return errMergeStop
			}
		}
	}
	return nil
}

// errPartitionLimit aborts a worker whose local yield count alone
// already exceeds MaxRows; the merge loop converts it into the
// sequential path's ErrRowLimit at the equivalent global row.
var errPartitionLimit = &partitionLimitError{}

type partitionLimitError struct{}

func (*partitionLimitError) Error() string { return "exec: partition row limit" }

// matchChunkRange runs the full backtracking match with the first node
// pinned to each candidate in turn, recording yields into ch according
// to the aggregation mode. Aggregate queries evaluate their group keys
// and argument expressions here, on the worker; agg.prepare only reads
// the aggregator's immutable shape, so sharing one aggregator across
// workers is safe. In partial mode the chunk accumulates into its own
// aggregator (ch.agg), untouched by anyone else until the merge.
//
// Yield-event accounting mirrors the sequential path's order in every
// mode: count the row and check the limit BEFORE evaluating any
// expression, so an evaluation error beyond the row limit surfaces as
// ErrRowLimit, not as the eval error the sequential path never reaches.
// The worker can only apply its local limit (its count is a lower bound
// on the global one); the merge phase re-checks globally.
//
// Row mode checks the merge front (one atomic load per yield): while
// this chunk IS the front, each row is appended to ch.rows under the
// mutex and the merge woken — eager streaming; otherwise rows pile up
// in a worker-local pending buffer that is flushed under the mutex when
// the front catches up (at the next yield) or, at the latest, by the
// finalize before the chunk completes. The merge reads ch.yields and
// ch.err only after done, so they need no per-yield synchronization in
// any mode.
func (ex *Executor) matchChunkRange(m *matcher, q *gql.MatchQuery, mode AggMode, agg *aggregator, cands []graph.VertexID, firstNode gql.NodePattern, ch *matchChunk, ci int, front *atomic.Int64) error {
	switch mode {
	case AggModePartial:
		ch.agg = newAggregator(q.Return, nil, ex.noColumns)
		m.yield = func() error {
			ch.yields++
			if ex.MaxRows > 0 && ch.yields > ex.MaxRows {
				return errPartitionLimit
			}
			return ch.agg.feed(m)
		}
	case AggModeBuffered:
		localGroups := make(map[string]bool)
		m.yield = func() error {
			ch.yields++
			if ex.MaxRows > 0 && ch.yields > ex.MaxRows {
				return errPartitionLimit
			}
			p, err := agg.prepare(m)
			if err != nil {
				return err
			}
			y := aggYield{p: p}
			if !localGroups[p.key] {
				localGroups[p.key] = true
				y.env = m.snapshot()
			}
			ch.aggs = append(ch.aggs, y)
			return nil
		}
	default: // AggModeNone
		events := 0
		var pending []Row
		// finalize lands everything the merge has not seen yet — pending
		// rows and the final event count (which exceeds the row count by
		// one when the last event's evaluation errored). It runs before
		// the completion hook, whose critical section orders these
		// writes ahead of the merge's post-done reads.
		defer func() {
			ch.mu.Lock()
			ch.rows = append(ch.rows, pending...)
			ch.yields = events
			ch.mu.Unlock()
		}()
		m.yield = func() error {
			events++
			if ex.MaxRows > 0 && events > ex.MaxRows {
				return errPartitionLimit
			}
			row := make(Row, len(q.Return))
			for i, item := range q.Return {
				v, err := evalExpr(item.Expr, m)
				if err != nil {
					return err
				}
				row[i] = exportValue(v)
			}
			if front.Load() != int64(ci) {
				pending = append(pending, row)
				return nil
			}
			ch.mu.Lock()
			if len(pending) > 0 {
				ch.rows = append(ch.rows, pending...)
				pending = pending[:0]
			}
			ch.rows = append(ch.rows, row)
			ch.mu.Unlock()
			ch.nudge()
			return nil
		}
	}
	fs := -1
	if firstNode.Var != "" {
		fs = m.slot(firstNode.Var)
	}
	for _, id := range cands {
		if err := m.tick(); err != nil {
			return err
		}
		if fs >= 0 {
			m.slots[fs] = VertexRef{G: m.g, ID: id}
		}
		err := m.walkChain(q.Patterns, 0, 1, id)
		if fs >= 0 {
			m.slots[fs] = nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// effectiveWorkers resolves the Workers knob: 0 and 1 mean sequential,
// negative means one worker per available CPU.
func (ex *Executor) effectiveWorkers() int {
	if ex.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return ex.Workers
}
