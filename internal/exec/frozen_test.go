package exec

import (
	"strings"
	"testing"

	"kaskade/internal/datagen"
	"kaskade/internal/gql"
	"kaskade/internal/graph"
)

// runMode executes src on g with the given parallelism, on the frozen
// CSR path or the append-mode reference.
func runMode(t testing.TB, g *graph.Graph, src string, workers int, noFrozen bool) *Result {
	t.Helper()
	q := mustParse(t, src)
	ex := &Executor{G: g, Workers: workers, noFrozen: noFrozen}
	res, err := ex.Execute(q)
	if err != nil {
		t.Fatalf("Execute(%q, workers=%d, noFrozen=%v): %v", src, workers, noFrozen, err)
	}
	return res
}

// TestFrozenMatchesAppendOnLineage is the frozen-vs-append equivalence
// suite over every exec_test query shape: the frozen CSR matcher must
// produce byte-identical results (rows, order, group order, float bit
// patterns) to the append-mode reference, sequential and parallel.
func TestFrozenMatchesAppendOnLineage(t *testing.T) {
	g, _ := lineage(t)
	for _, src := range equivalenceQueries {
		ref := runMode(t, g, src, 1, true) // append-mode sequential: the semantic reference
		for _, workers := range []int{1, 4} {
			frozen := runMode(t, g, src, workers, false)
			assertSameResult(t, src, ref, frozen, workers)
			append_ := runMode(t, g, src, workers, true)
			assertSameResult(t, src, ref, append_, workers)
		}
	}
}

// TestFrozenMatchesAppendOnDatagen runs the same A/B over the randomized
// synthetic datasets (skewed, cyclic, and grid-shaped graphs).
func TestFrozenMatchesAppendOnDatagen(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		graphs := datagenGraphs(t, seed)
		for name, g := range graphs {
			for _, src := range datasetQueries[name] {
				ref := runMode(t, g, src, 1, true)
				for _, workers := range []int{1, 4} {
					assertSameResult(t, src, ref, runMode(t, g, src, workers, false), workers)
				}
			}
		}
	}
}

// TestFrozenErrorsMatchAppend pins error behavior (row limits included)
// across the storage modes.
func TestFrozenErrorsMatchAppend(t *testing.T) {
	g, _ := lineage(t)
	q := mustParse(t, `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`)
	for _, noFrozen := range []bool{false, true} {
		ex := &Executor{G: g, MaxRows: 2, noFrozen: noFrozen}
		if _, err := ex.Execute(q); err != ErrRowLimit {
			t.Errorf("noFrozen=%v: got %v, want ErrRowLimit", noFrozen, err)
		}
	}
	for _, src := range []string{
		`MATCH (j:Job) RETURN unknown_var`,
		`MATCH (j:Job) WHERE j.CPU RETURN j`,
	} {
		for _, noFrozen := range []bool{false, true} {
			ex := &Executor{G: g, noFrozen: noFrozen}
			if _, err := ex.Execute(mustParse(t, src)); err == nil {
				t.Errorf("query %q noFrozen=%v: want error", src, noFrozen)
			}
		}
	}
}

// declaredSchema builds the lineage schema with Job.CPU declared as an
// integer property.
func declaredSchema(t *testing.T) *graph.Schema {
	t.Helper()
	s, err := graph.NewSchema(
		[]string{"Job", "File"},
		[]graph.EdgeType{
			{From: "Job", To: "File", Name: "WRITES_TO"},
			{From: "File", To: "Job", Name: "IS_READ_BY"},
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.DeclareProperty("Job", "CPU", graph.PropInt); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAggModeSchemaDeclaredProperty pins the ROADMAP item: SUM over a
// property is unprovable without type information and buffers, but a
// schema declaration (Job.CPU is PropInt) licenses the
// partial-aggregation path — and only for matching variables and
// properties.
func TestAggModeSchemaDeclaredProperty(t *testing.T) {
	sumCPU := mustParse(t, `MATCH (j:Job) RETURN SUM(j.CPU) AS total`)
	// Without a schema, property SUM is unprovable: buffered.
	if got := QueryAggModeFor(sumCPU, nil); got != AggModeBuffered {
		t.Errorf("no schema: mode = %v, want buffered", got)
	}
	s := declaredSchema(t)
	cases := []struct {
		src  string
		want AggMode
	}{
		// The declaration proves integer SUM: partial.
		{`MATCH (j:Job) RETURN SUM(j.CPU) AS total`, AggModePartial},
		// Composed integer arithmetic over the declared property.
		{`MATCH (j:Job) RETURN SUM(j.CPU * 2 + 1) AS total`, AggModePartial},
		// Undeclared property on the same variable: buffered.
		{`MATCH (j:Job) RETURN SUM(j.mem) AS total`, AggModeBuffered},
		// Untyped variable (no label in the pattern): buffered.
		{`MATCH (j) RETURN SUM(j.CPU) AS total`, AggModeBuffered},
		// AVG stays buffered regardless of declarations.
		{`MATCH (j:Job) RETURN AVG(j.CPU) AS a`, AggModeBuffered},
	}
	for _, tc := range cases {
		if got := QueryAggModeFor(mustParse(t, tc.src), s); got != tc.want {
			t.Errorf("%q: mode = %v, want %v", tc.src, got, tc.want)
		}
	}
	// A float declaration must not license partial.
	if err := s.DeclareProperty("Job", "load", graph.PropFloat); err != nil {
		t.Fatal(err)
	}
	if got := QueryAggModeFor(mustParse(t, `MATCH (j:Job) RETURN SUM(j.load) AS l`), s); got != AggModeBuffered {
		t.Errorf("float-declared property: mode = %v, want buffered", got)
	}
}

// TestDeclaredPropertyPartialEquivalence proves the schema-widened
// partial path byte-identical to buffered and sequential on real data.
func TestDeclaredPropertyPartialEquivalence(t *testing.T) {
	s := declaredSchema(t)
	g := graph.NewGraph(s)
	for i := 0; i < 40; i++ {
		j := g.MustAddVertex("Job", graph.Properties{"CPU": int64(i * 7 % 13)})
		f := g.MustAddVertex("File", nil)
		g.MustAddEdge(j, f, "WRITES_TO", nil)
		if i > 0 {
			g.MustAddEdge(f, j-2, "IS_READ_BY", nil)
		}
	}
	src := `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN SUM(j.CPU) AS total`
	q := mustParse(t, src)
	if got := QueryAggModeFor(q, g.Schema()); got != AggModePartial {
		t.Fatalf("mode = %v, want partial", got)
	}
	seq := runWorkers(t, g, src, 1)
	for _, workers := range []int{2, 4} {
		// Partial (default) and buffered (noPartialAgg) must both match.
		assertSameResult(t, src, seq, runWorkers(t, g, src, workers), workers)
		ex := &Executor{G: g, Workers: workers, noPartialAgg: true}
		res, err := ex.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, src, seq, res, workers)
	}
}

// TestMisdeclaredPropertyFailsLoudly pins the lying-schema behavior: a
// property declared PropInt whose stored values are float64 must fail
// loudly, not silently produce wrong bits. The first line of defense is
// the columnar freeze itself — FreezeChecked validates every stored
// value against its declaration. The second (reachable with freezing
// disabled, where no columns are built) is the partial SUM merge, which
// refuses to fold float partial states the planner proved integer.
func TestMisdeclaredPropertyFailsLoudly(t *testing.T) {
	s := declaredSchema(t)
	g := graph.NewGraph(s)
	for i := 0; i < 30; i++ {
		j := g.MustAddVertex("Job", graph.Properties{"CPU": float64(i) / 3}) // lies: declared PropInt
		f := g.MustAddVertex("File", nil)
		g.MustAddEdge(j, f, "WRITES_TO", nil)
	}
	// Freeze-time defense: the column build rejects the lying value.
	if _, err := g.FreezeChecked(); err == nil ||
		!strings.Contains(err.Error(), "declared int, holds float64") {
		t.Fatalf("FreezeChecked err = %v, want declared-kind violation", err)
	}
	q := mustParse(t, `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN SUM(j.CPU) AS total`)
	if got := QueryAggModeFor(q, g.Schema()); got != AggModePartial {
		t.Fatalf("mode = %v, want partial (declaration trusted at plan time)", got)
	}
	// Merge-time backstop: with freezing off (append-mode matcher, no
	// columns, no freeze-time check) the partial merge still fails loudly
	// instead of folding floats in chunk order (worker-count-dependent
	// bits).
	ex := &Executor{G: g, Workers: 4, noFrozen: true}
	if _, err := ex.Execute(q); err == nil || !strings.Contains(err.Error(), "declared integer") {
		t.Fatalf("err = %v, want loud mis-declaration error", err)
	}
}

// BenchmarkFrozenPatternMatch prices the frozen CSR matcher against the
// append-mode reference on the 2-hop typed lineage join — the matcher
// hot path the tentpole optimizes (typed adjacency removes the per-edge
// type filter and the Edge-record loads).
func BenchmarkFrozenPatternMatch(b *testing.B) {
	g := benchGraph(b)
	q := gql.MustParse(`MATCH (a:Job)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(c:Job) RETURN a, c`)
	b.Run("append", func(b *testing.B) {
		ex := &Executor{G: g, noFrozen: true}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Execute(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("frozen", func(b *testing.B) {
		ex := &Executor{G: g}
		ex.G.Freeze()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Execute(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFrozenVarLength prices the storage modes on variable-length
// traversal (untyped steps — flat CSR rows vs pointer-chased slices).
func BenchmarkFrozenVarLength(b *testing.B) {
	g := benchGraph(b)
	q := gql.MustParse(`MATCH (a:Job)-[r*1..3]->(v) RETURN COUNT(r) AS n`)
	for _, mode := range []struct {
		name     string
		noFrozen bool
	}{{"append", true}, {"frozen", false}} {
		b.Run(mode.name, func(b *testing.B) {
			ex := &Executor{G: g, noFrozen: mode.noFrozen}
			g.Freeze()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchGraph is a mid-size filtered-provenance-shaped graph for the
// frozen benchmarks.
func benchGraph(b testing.TB) *graph.Graph {
	b.Helper()
	g, err := datagen.Prov(datagen.ProvConfig{
		Jobs: 400, Files: 900, TasksPerJob: 2, Machines: 15, Users: 5,
		MaxReads: 15, Pipelines: 6, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g
}
