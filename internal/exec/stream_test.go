package exec

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strconv"
	"testing"
	"time"

	"kaskade/internal/graph"
)

// streamWorkers drains src through the Rows cursor with the given
// parallelism, returning the buffered equivalent.
func streamWorkers(t testing.TB, g *graph.Graph, src string, workers int) (*Result, error) {
	t.Helper()
	q := mustParse(t, src)
	ex := &Executor{G: g, Workers: workers}
	rows, err := ex.Stream(context.Background(), q)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	out := &Result{Cols: rows.Columns()}
	for rows.Next() {
		out.Rows = append(out.Rows, rows.Row())
	}
	return out, rows.Err()
}

// TestStreamMatchesBufferedOnLineage is the acceptance equivalence: for
// every exec_test query shape, the Rows cursor yields byte-identical
// rows in identical order to the buffered Result, at workers 1 and 4.
func TestStreamMatchesBufferedOnLineage(t *testing.T) {
	g, _ := lineage(t)
	for _, src := range equivalenceQueries {
		for _, workers := range []int{1, 4} {
			want := runWorkers(t, g, src, workers)
			got, err := streamWorkers(t, g, src, workers)
			if err != nil {
				t.Fatalf("stream(%q, workers=%d): %v", src, workers, err)
			}
			assertSameResult(t, src, want, got, workers)
		}
	}
}

// TestStreamMatchesBufferedOnDatagen repeats the equivalence on the
// randomized synthetic datasets (skewed, cyclic, grid-shaped data).
func TestStreamMatchesBufferedOnDatagen(t *testing.T) {
	graphs := datagenGraphs(t, 3)
	for name, g := range graphs {
		for _, src := range datasetQueries[name] {
			for _, workers := range []int{1, 4} {
				want := runWorkers(t, g, src, workers)
				got, err := streamWorkers(t, g, src, workers)
				if err != nil {
					t.Fatalf("%s stream(%q, workers=%d): %v", name, src, workers, err)
				}
				assertSameResult(t, src, want, got, workers)
			}
		}
	}
}

// TestStreamRowLimit pins that MaxRows surfaces through the cursor as
// ErrRowLimit at the same point it would abort the buffered path.
func TestStreamRowLimit(t *testing.T) {
	g, _ := lineage(t)
	q := mustParse(t, `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`)
	for _, workers := range []int{1, 4} {
		ex := &Executor{G: g, MaxRows: 2, Workers: workers}
		rows, err := ex.Stream(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Close(); err != ErrRowLimit {
			t.Errorf("workers=%d: Close = %v, want ErrRowLimit", workers, err)
		}
		if n > 2 {
			t.Errorf("workers=%d: cursor yielded %d rows past the limit", workers, n)
		}
	}
}

func TestStreamScan(t *testing.T) {
	g, _ := lineage(t)
	q := mustParse(t, `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j.name AS name, COUNT(f) AS n, j.CPU + 0.5 AS load`)
	rows, err := (&Executor{G: g}).Stream(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	got := map[string]int64{}
	for rows.Next() {
		var name string
		var n int64
		var load float64
		if err := rows.Scan(&name, &n, &load); err != nil {
			t.Fatal(err)
		}
		got[name] = n
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"j1": 2, "j2": 1, "j3": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("scanned %v, want %v", got, want)
	}

	// Type mismatches and arity mismatches are errors, not silences.
	rows2, err := (&Executor{G: g}).Stream(context.Background(), mustParse(t, `MATCH (j:Job) RETURN j.name AS name`))
	if err != nil {
		t.Fatal(err)
	}
	defer rows2.Close()
	if err := rows2.Scan(new(string)); err == nil {
		t.Error("Scan before Next succeeded")
	}
	if !rows2.Next() {
		t.Fatal("no rows")
	}
	if err := rows2.Scan(new(int64)); err == nil {
		t.Error("Scan string into *int64 succeeded")
	}
	if err := rows2.Scan(new(string), new(string)); err == nil {
		t.Error("Scan with wrong arity succeeded")
	}
	var v Value
	if err := rows2.Scan(&v); err != nil || v != "j1" {
		t.Errorf("Scan into *Value = (%v, %v), want j1", v, err)
	}
	// *any is a distinct pointer type from *Value and must also work.
	var a any
	if err := rows2.Scan(&a); err != nil || a != "j1" {
		t.Errorf("Scan into *any = (%v, %v), want j1", a, err)
	}
}

// TestExecuteNilContext: a nil context means "never cancelled" in both
// execution modes (the parallel path derives its own context from it).
func TestExecuteNilContext(t *testing.T) {
	g, _ := lineage(t)
	q := mustParse(t, `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`)
	for _, workers := range []int{1, 4} {
		ex := &Executor{G: g, Workers: workers}
		res, err := ex.ExecuteContext(nil, q)
		if err != nil || len(res.Rows) != 4 {
			t.Errorf("workers=%d: res=%v err=%v, want 4 rows", workers, res, err)
		}
	}
}

// TestStreamAllAdapter exercises the iter.Seq2 adapter, including early
// break (which must close the cursor and its worker pool).
func TestStreamAllAdapter(t *testing.T) {
	g, _ := lineage(t)
	q := mustParse(t, `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`)
	for _, workers := range []int{1, 4} {
		ex := &Executor{G: g, Workers: workers}
		rows, err := ex.Stream(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		var n int
		for row, err := range rows.All() {
			if err != nil {
				t.Fatal(err)
			}
			if len(row) != 2 {
				t.Fatalf("row width %d", len(row))
			}
			n++
			if n == 2 {
				break // adapter must clean up on early exit
			}
		}
		if n != 2 {
			t.Fatalf("workers=%d: saw %d rows, want 2", workers, n)
		}
		if err := rows.Err(); err != nil {
			t.Errorf("workers=%d: Err after break = %v", workers, err)
		}
	}
}

// denseGraph builds a graph whose variable-length matches are
// combinatorially explosive: full enumeration would take far longer
// than any test timeout, so only cancellation can end the queries
// below early. The first two vertices form a cheap detached pair ahead
// of the dense component; since the merge streams each chunk's row
// prefix eagerly, the first match arrives immediately either way (see
// TestStreamFirstRowBeforePartitionCompletes, which drops the cheap
// pair to pin exactly that).
func denseGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.NewGraph(nil)
	v0 := g.MustAddVertex("V", graph.Properties{"i": int64(-1)})
	sink := g.MustAddVertex("V", graph.Properties{"i": int64(-2)})
	g.MustAddEdge(v0, sink, "E", nil)
	const n = 24
	ids := make([]graph.VertexID, n)
	for i := range ids {
		ids[i] = g.MustAddVertex("V", graph.Properties{"i": int64(i)})
	}
	for i := 0; i < n; i++ {
		for d := 1; d <= 6; d++ {
			g.MustAddEdge(ids[i], ids[(i+d)%n], "E", nil)
		}
	}
	return g
}

const pathologicalQuery = `MATCH (a:V)-[r*1..12]->(b:V) RETURN COUNT(r) AS n`

// TestCancelSequentialMatch: a context cancelled mid-match terminates a
// sequential pathological query promptly with ctx.Err().
func TestCancelSequentialMatch(t *testing.T) {
	testCancelMidMatch(t, 1)
}

// TestCancelParallelMatch: the same, with the match fanned out over a
// worker pool (pool teardown included).
func TestCancelParallelMatch(t *testing.T) {
	testCancelMidMatch(t, 4)
}

func testCancelMidMatch(t *testing.T, workers int) {
	g := denseGraph(t)
	q := mustParse(t, pathologicalQuery)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	ex := &Executor{G: g, Workers: workers}
	start := time.Now()
	_, err := ex.ExecuteContext(ctx, q)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("workers=%d: err = %v, want deadline exceeded", workers, err)
	}
	// "Promptly": the 30ms deadline may overshoot by scheduling noise
	// and tick granularity, but not by orders of magnitude.
	if elapsed > 10*time.Second {
		t.Fatalf("workers=%d: cancellation took %s", workers, elapsed)
	}
}

// TestCancelAfterFirstRow streams one row out of an explosive match,
// cancels, and requires the cursor to finish with ctx.Err().
func TestCancelAfterFirstRow(t *testing.T) {
	g := denseGraph(t)
	q := mustParse(t, `MATCH (a:V)-[r*1..12]->(b:V) RETURN a, b`)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		ex := &Executor{G: g, Workers: workers}
		rows, err := ex.Stream(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("workers=%d: no first row: %v", workers, rows.Err())
		}
		cancel()
		for rows.Next() {
			// Drain whatever was already buffered in completed
			// partitions; the cursor must still terminate.
		}
		if err := rows.Close(); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: Close = %v, want context.Canceled", workers, err)
		}
	}
}

// TestCloseAbortsMatch: closing the cursor with no context cancellation
// of the caller's own must still abort the explosive match (the cursor
// owns a derived context for exactly this).
func TestCloseAbortsMatch(t *testing.T) {
	g := denseGraph(t)
	q := mustParse(t, `MATCH (a:V)-[r*1..12]->(b:V) RETURN a, b`)
	for _, workers := range []int{1, 4} {
		ex := &Executor{G: g, Workers: workers}
		rows, err := ex.Stream(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if !rows.Next() {
			t.Fatalf("workers=%d: no first row: %v", workers, rows.Err())
		}
		start := time.Now()
		if err := rows.Close(); err != nil {
			t.Errorf("workers=%d: Close = %v", workers, err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("workers=%d: Close took %s", workers, elapsed)
		}
	}
}

// TestStreamLeaksNoGoroutines runs cancelled and early-closed streaming
// queries and requires the goroutine count to return to baseline:
// worker pools and the pull coroutine must not outlive their cursor.
func TestStreamLeaksNoGoroutines(t *testing.T) {
	g := denseGraph(t)
	q := mustParse(t, `MATCH (a:V)-[r*1..12]->(b:V) RETURN a, b`)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		workers := 1 + i%4
		ctx, cancel := context.WithCancel(context.Background())
		ex := &Executor{G: g, Workers: workers}
		rows, err := ex.Stream(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		rows.Next()
		if i%2 == 0 {
			cancel() // cancel-then-close
		}
		rows.Close()
		cancel()
	}
	// Close tears down synchronously, but give the runtime a moment to
	// retire exiting goroutines before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestExecuteContextPreCancelled: an already-dead context fails fast in
// both modes without touching the graph for long.
func TestExecuteContextPreCancelled(t *testing.T) {
	g := denseGraph(t)
	q := mustParse(t, pathologicalQuery)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ex := &Executor{G: g, Workers: workers}
		if _, err := ex.ExecuteContext(ctx, q); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestCancelSelectSubquery: cancellation reaches through a SELECT's
// relational tail into its MATCH subquery.
func TestCancelSelectSubquery(t *testing.T) {
	g := denseGraph(t)
	q := mustParse(t, `SELECT n FROM (`+pathologicalQuery+`) WHERE n > 0`)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	ex := &Executor{G: g, Workers: 2}
	if _, err := ex.ExecuteContext(ctx, q); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestAssignValueIntRange pins the *int destination semantics: values
// that fit are assigned, and on platforms where int is 32 bits a value
// past 2^31 must error instead of silently truncating.
func TestAssignValueIntRange(t *testing.T) {
	var n int
	if err := assignValue(&n, Value(int64(42))); err != nil || n != 42 {
		t.Fatalf("assignValue(*int, 42) = (%d, %v)", n, err)
	}
	big := int64(1) << 40
	err := assignValue(&n, Value(big))
	if strconv.IntSize == 64 {
		if err != nil || n != int(big) {
			t.Fatalf("64-bit assignValue(*int, 2^40) = (%d, %v)", n, err)
		}
	} else if err == nil {
		t.Fatalf("32-bit assignValue(*int, 2^40) silently truncated to %d", n)
	}
	if err := assignValue(&n, Value(int64(-7))); err != nil || n != -7 {
		t.Fatalf("assignValue(*int, -7) = (%d, %v)", n, err)
	}
}
