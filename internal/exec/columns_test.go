package exec

import (
	"strings"
	"testing"

	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/metrics"
)

// declaredLineage is the lineage graph (exec_test.go) rebuilt over a
// schema that declares every property, so every vertex property read a
// query makes is column-covered.
func declaredLineage(t testing.TB) *graph.Graph {
	t.Helper()
	s := graph.MustSchema(
		[]string{"Job", "File"},
		[]graph.EdgeType{
			{From: "Job", To: "File", Name: "WRITES_TO"},
			{From: "File", To: "Job", Name: "IS_READ_BY"},
		},
	)
	for _, d := range []struct {
		typ, prop string
		kind      graph.PropKind
	}{
		{"Job", "name", graph.PropString},
		{"Job", "CPU", graph.PropInt},
		{"Job", "pipelineName", graph.PropString},
		{"File", "name", graph.PropString},
	} {
		if err := s.DeclareProperty(d.typ, d.prop, d.kind); err != nil {
			t.Fatal(err)
		}
	}
	g := graph.NewGraph(s)
	ids := make(map[string]graph.VertexID)
	addJ := func(name string, cpu int64) {
		ids[name] = g.MustAddVertex("Job", graph.Properties{"name": name, "CPU": cpu, "pipelineName": "p" + name})
	}
	addF := func(name string) {
		ids[name] = g.MustAddVertex("File", graph.Properties{"name": name})
	}
	addJ("j1", 10)
	addJ("j2", 20)
	addJ("j3", 30)
	addF("f1")
	addF("f2")
	addF("f3")
	addF("f4")
	w := func(j, f string) { g.MustAddEdge(ids[j], ids[f], "WRITES_TO", nil) }
	r := func(f, j string) { g.MustAddEdge(ids[f], ids[j], "IS_READ_BY", nil) }
	w("j1", "f1")
	w("j1", "f2")
	r("f1", "j2")
	r("f2", "j3")
	w("j2", "f3")
	w("j3", "f4")
	return g
}

// runColumnMode executes src with the columnar path on or off.
func runColumnMode(t testing.TB, g *graph.Graph, src string, workers int, noColumns bool) *Result {
	t.Helper()
	q := mustParse(t, src)
	ex := &Executor{G: g, Workers: workers, noColumns: noColumns}
	res, err := ex.Execute(q)
	if err != nil {
		t.Fatalf("Execute(%q, workers=%d, noColumns=%v): %v", src, workers, noColumns, err)
	}
	return res
}

// TestColumnsMatchMapOnLineage is the columnar-vs-map equivalence suite
// over every exec_test query shape: with every property declared, the
// columnar reads and the predicate prefilter must produce byte-identical
// results (rows, order, group order, float bit patterns) to the
// property-map path, sequential and parallel.
func TestColumnsMatchMapOnLineage(t *testing.T) {
	g := declaredLineage(t)
	for _, src := range equivalenceQueries {
		ref := runColumnMode(t, g, src, 1, true) // map path sequential: the reference
		for _, workers := range []int{1, 4} {
			assertSameResult(t, src, ref, runColumnMode(t, g, src, workers, false), workers)
			assertSameResult(t, src, ref, runColumnMode(t, g, src, workers, true), workers)
		}
	}
}

// TestColumnsMatchMapOnDatagen runs the same A/B over the randomized
// synthetic datasets (prov declares properties; the others exercise the
// column-less fallback).
func TestColumnsMatchMapOnDatagen(t *testing.T) {
	for _, seed := range []int64{5, 19} {
		graphs := datagenGraphs(t, seed)
		for name, g := range graphs {
			for _, src := range datasetQueries[name] {
				ref := runColumnMode(t, g, src, 1, true)
				for _, workers := range []int{1, 4} {
					assertSameResult(t, src, ref, runColumnMode(t, g, src, workers, false), workers)
				}
			}
		}
	}
}

// TestColumnsMatchMapOnAbsentValues pins the prefilter's nil semantics:
// a vertex lacking the declared property compares like the map path —
// "=" is cleanly false, "<>" is cleanly true, and orderings error — on
// both storage modes.
func TestColumnsMatchMapOnAbsentValues(t *testing.T) {
	s := graph.MustSchema([]string{"Job"}, nil)
	if err := s.DeclareProperty("Job", "CPU", graph.PropInt); err != nil {
		t.Fatal(err)
	}
	g := graph.NewGraph(s)
	g.MustAddVertex("Job", graph.Properties{"CPU": int64(10)})
	g.MustAddVertex("Job", nil) // no CPU
	g.MustAddVertex("Job", graph.Properties{"CPU": int64(20)})

	for _, src := range []string{
		`MATCH (j:Job) WHERE j.CPU = 10 RETURN ID(j) AS id`,
		`MATCH (j:Job) WHERE j.CPU <> 10 RETURN ID(j) AS id`,
	} {
		ref := runColumnMode(t, g, src, 1, true)
		for _, workers := range []int{1, 4} {
			assertSameResult(t, src, ref, runColumnMode(t, g, src, workers, false), workers)
		}
	}
	// An ordering against the absent value errors identically: the
	// prefilter must keep the candidate so the error still surfaces.
	src := `MATCH (j:Job) WHERE j.CPU >= 10 RETURN ID(j) AS id`
	for _, noColumns := range []bool{false, true} {
		ex := &Executor{G: g, noColumns: noColumns}
		if _, err := ex.Execute(mustParse(t, src)); err == nil ||
			!strings.Contains(err.Error(), "cannot compare") {
			t.Errorf("noColumns=%v: err = %v, want incomparable error", noColumns, err)
		}
	}
}

// TestColumnPrefilterEngagement pins which WHERE shapes the plan-time
// prefilter extraction accepts, and that filtering matches the
// predicate.
func TestColumnPrefilterEngagement(t *testing.T) {
	g := declaredLineage(t)
	g.Freeze()
	ex := &Executor{G: g}
	match := func(src string) *gql.MatchQuery {
		t.Helper()
		q, ok := mustParse(t, src).(*gql.MatchQuery)
		if !ok {
			t.Fatalf("%q is not a MATCH query", src)
		}
		return q
	}

	// Engages: first-var property vs literal, leftmost AND conjunct,
	// flipped operand order.
	for _, src := range []string{
		`MATCH (j:Job) WHERE j.CPU >= 20 RETURN j`,
		`MATCH (j:Job) WHERE 20 <= j.CPU RETURN j`,
		`MATCH (j:Job) WHERE j.CPU >= 20 AND j.name <> 'zzz' RETURN j`,
		`MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE j.CPU >= 20 RETURN j, f`,
	} {
		pf := ex.columnPrefilter(match(src))
		if pf == nil {
			t.Errorf("%q: prefilter did not engage", src)
			continue
		}
		got := pf.filter(g.VerticesOfType("Job"), nil)
		if len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Errorf("%q: filtered candidates = %v, want [1 2] (j2, j3)", src, got)
		}
	}

	// Stays out: shapes where skipping a candidate could change results
	// or suppress errors.
	for _, tc := range []struct {
		src, why string
	}{
		{`MATCH (j:Job) WHERE j.undeclared = 1 RETURN j`, "no column"},
		{`MATCH (j:Job)-[:WRITES_TO]->(f:File) WHERE f.name = 'f1' RETURN j`, "property on a later variable"},
		{`MATCH (j) WHERE j.CPU >= 20 RETURN j`, "untyped first node"},
		{`MATCH (j:Job) WHERE j.CPU = 'ten' RETURN j`, "literal kind mismatch"},
		{`MATCH (j:Job) WHERE j.name <> 'x' OR j.CPU = 1 RETURN j`, "top-level OR"},
		{`MATCH (j:Job) WHERE j.CPU + 1 >= 21 RETURN j`, "computed left side"},
	} {
		if ex.columnPrefilter(match(tc.src)) != nil {
			t.Errorf("%q: prefilter engaged (%s)", tc.src, tc.why)
		}
	}

	// The A/B switch disables it outright.
	exOff := &Executor{G: g, noColumns: true}
	if exOff.columnPrefilter(match(`MATCH (j:Job) WHERE j.CPU >= 20 RETURN j`)) != nil {
		t.Error("noColumns executor still prefilters")
	}
}

// TestColumnMetricsCounters pins the columnar-usage counters: a fully
// declared workload reads only columns; the noColumns switch reads only
// the maps.
func TestColumnMetricsCounters(t *testing.T) {
	g := declaredLineage(t)
	src := `MATCH (j:Job) WHERE j.CPU >= 20 RETURN j.name AS name`
	for _, workers := range []int{1, 4} {
		reg := metrics.NewRegistry()
		ex := &Executor{G: g, Workers: workers, Metrics: reg}
		if _, err := ex.Execute(mustParse(t, src)); err != nil {
			t.Fatal(err)
		}
		if reg.ColumnScans.Load() == 0 {
			t.Errorf("workers=%d: ColumnScans = 0, want > 0", workers)
		}
		if n := reg.PropMapFallbacks.Load(); n != 0 {
			t.Errorf("workers=%d: PropMapFallbacks = %d, want 0 (all properties declared)", workers, n)
		}

		reg = metrics.NewRegistry()
		ex = &Executor{G: g, Workers: workers, Metrics: reg, noColumns: true}
		if _, err := ex.Execute(mustParse(t, src)); err != nil {
			t.Fatal(err)
		}
		if n := reg.ColumnScans.Load(); n != 0 {
			t.Errorf("workers=%d noColumns: ColumnScans = %d, want 0", workers, n)
		}
		if reg.PropMapFallbacks.Load() == 0 {
			t.Errorf("workers=%d noColumns: PropMapFallbacks = 0, want > 0", workers)
		}
	}
}

// TestVarLengthMatchAllocations is the allocation-regression guard on
// the warm var-length match path: with the flat binding slots, reused
// aggregation buffers, and uncopied path yields, a COUNT over thousands
// of variable-length matches allocates orders of magnitude fewer
// objects than it yields (the old bindings-map path paid several
// allocations per yield).
func TestVarLengthMatchAllocations(t *testing.T) {
	g := benchGraph(t)
	q := mustParse(t, `MATCH (a:Job)-[r*1..3]->(v) RETURN COUNT(r) AS n`)
	ex := &Executor{G: g}
	res, err := ex.Execute(q) // warm: freeze, columns, plan caches
	if err != nil {
		t.Fatal(err)
	}
	yields := res.Rows[0][0].(int64)
	if yields < 5000 {
		t.Fatalf("bench graph too small for a meaningful guard: %d yields", yields)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := ex.Execute(q); err != nil {
			t.Fatal(err)
		}
	})
	// The floor is the interface boxings a yield can't avoid (binding a
	// VertexRef and a fresh-length PathRef into their slots); the guard
	// catches reintroducing per-yield map writes, environment copies, or
	// path-slice copies, each of which adds whole allocations per yield
	// (the old path paid 6+).
	if perYield := allocs / float64(yields); perYield > 4 {
		t.Errorf("var-length match allocates %.2f objects/yield (%.0f for %d yields), want <= 4", perYield, allocs, yields)
	}
}

// BenchmarkPropertyScan prices the Q1 WHERE-filter shape — scan a
// vertex type, filter on a declared property, project another — on the
// property-map path vs the columnar path with the predicate prefilter.
func BenchmarkPropertyScan(b *testing.B) {
	g := benchGraph(b)
	q := gql.MustParse(`MATCH (j:Job) WHERE j.CPU >= 900 RETURN j.name AS name`)
	b.Run("map", func(b *testing.B) {
		ex := &Executor{G: g, noColumns: true}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Execute(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("columnar", func(b *testing.B) {
		ex := &Executor{G: g}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Execute(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
