package exec

import (
	"context"
	"math"
	"testing"
	"time"

	"kaskade/internal/graph"
)

// partialAggQueries are aggregate shapes whose accumulators are all
// order-insensitive, so the planner must select AggModePartial for
// them: COUNT/COUNT(*), MIN/MAX over arbitrary comparables, and SUM
// over provably-integer expressions.
var partialAggQueries = []string{
	`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j.name AS name, COUNT(f) AS nfiles`,
	`MATCH ()-[r]->() RETURN COUNT(*) AS n`,
	`MATCH (j:Job) RETURN MIN(j.CPU) AS lo, MAX(j.CPU) AS hi`,
	`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j.name AS name, MIN(f.name) AS first, COUNT(*) AS n`,
	`MATCH (a:Job)-[r*1..3]->(v) RETURN a, SUM(LENGTH(r)) AS hops, COUNT(*) AS n`,
	`MATCH (j:Job) RETURN MAX(ID(j)) AS maxid, SUM(ID(j)) AS sumid`,
	`MATCH (j:Job) WHERE j.CPU > 1000 RETURN COUNT(*) AS n, MIN(j.CPU) AS lo`,
	`MATCH (j:Job) RETURN LABEL(j) AS kind, SUM(2*ID(j) + 1) AS s, MAX(j.name) AS last`,
}

// TestQueryAggModeSelection pins the plan-time strategy choice — in
// particular that float SUM and AVG (any accumulator whose fold order
// is observable) never select the partial mode.
func TestQueryAggModeSelection(t *testing.T) {
	cases := []struct {
		src  string
		want AggMode
	}{
		{`MATCH (j:Job) RETURN j.name AS name`, AggModeNone},
		{`MATCH (j:Job) RETURN COUNT(*) AS n`, AggModePartial},
		{`MATCH (j:Job) RETURN MIN(j.CPU) AS lo, MAX(j.name) AS hi`, AggModePartial},
		{`MATCH (a:Job)-[r*1..2]->(b) RETURN SUM(LENGTH(r)) AS s`, AggModePartial},
		{`MATCH (j:Job) RETURN SUM(ID(j) + 1) AS s`, AggModePartial},
		// SUM over a property is not provably integer: buffered.
		{`MATCH (j:Job) RETURN SUM(j.CPU) AS s`, AggModeBuffered},
		// AVG accumulates in float64: always buffered.
		{`MATCH (j:Job) RETURN AVG(j.CPU) AS a`, AggModeBuffered},
		{`MATCH (j:Job) RETURN j.name AS name, AVG(ID(j)) AS a`, AggModeBuffered},
		// A float literal anywhere in SUM's argument: buffered.
		{`MATCH (j:Job) RETURN SUM(ID(j) + 0.5) AS s`, AggModeBuffered},
		// Division can promote to float even on integers: buffered.
		{`MATCH (j:Job) RETURN SUM(ID(j) / 2) AS s`, AggModeBuffered},
		// One order-sensitive aggregate poisons the whole query.
		{`MATCH (j:Job) RETURN COUNT(*) AS n, AVG(j.CPU) AS a`, AggModeBuffered},
		// The innermost MATCH decides: its COUNT is partial even under a
		// SELECT whose own (blocking) aggregation is an AVG.
		{`SELECT AVG(n) AS a FROM (MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j AS job, COUNT(f) AS n) GROUP BY a`, AggModePartial},
		{`SELECT name FROM (MATCH (j:Job) RETURN j.name AS name, SUM(j.CPU) AS s)`, AggModeBuffered},
	}
	for _, tc := range cases {
		if got := QueryAggMode(mustParse(t, tc.src)); got != tc.want {
			t.Errorf("QueryAggMode(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

// TestPartialAggSuiteSelectsPartial guards the suite itself: every
// query in partialAggQueries must actually exercise the partial mode.
func TestPartialAggSuiteSelectsPartial(t *testing.T) {
	for _, src := range partialAggQueries {
		if got := QueryAggMode(mustParse(t, src)); got != AggModePartial {
			t.Errorf("QueryAggMode(%q) = %v, want partial", src, got)
		}
	}
}

// runBuffered executes src with the partial mode disabled — the A/B
// switch proving the two aggregation strategies byte-identical.
func runBuffered(t testing.TB, g *graph.Graph, src string, workers int) *Result {
	t.Helper()
	q := mustParse(t, src)
	ex := &Executor{G: g, Workers: workers, noPartialAgg: true}
	res, err := ex.Execute(q)
	if err != nil {
		t.Fatalf("buffered(%q, workers=%d): %v", src, workers, err)
	}
	return res
}

// TestPartialAggMatchesBufferedOnLineage: for every partial-mode shape,
// sequential, buffered-parallel, and partial-parallel execution must
// agree byte for byte (rows, group order, values) at every worker
// count, streamed or buffered.
func TestPartialAggMatchesBufferedOnLineage(t *testing.T) {
	g, _ := lineage(t)
	for _, src := range partialAggQueries {
		seq := runWorkers(t, g, src, 1)
		for _, workers := range []int{2, 4, 8, -1} {
			partial := runWorkers(t, g, src, workers)
			assertSameResult(t, src, seq, partial, workers)
			buffered := runBuffered(t, g, src, workers)
			assertSameResult(t, src, seq, buffered, workers)
		}
		// The streaming cursor consumes the same partial-merge core.
		for _, workers := range []int{1, 4} {
			streamed, err := streamWorkers(t, g, src, workers)
			if err != nil {
				t.Fatalf("stream(%q, workers=%d): %v", src, workers, err)
			}
			assertSameResult(t, src, seq, streamed, workers)
		}
	}
}

// partialDatasetQueries are partial-mode shapes per synthetic dataset
// (schema-appropriate), run on randomized graphs.
var partialDatasetQueries = map[string][]string{
	"prov": {
		`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j.pipelineName AS p, COUNT(f) AS n, MAX(f.size) AS biggest`,
		`MATCH (v) RETURN LABEL(v) AS kind, COUNT(*) AS n, MIN(ID(v)) AS first`,
		`MATCH (j:Job)-[r*1..2]->(v) RETURN j, SUM(LENGTH(r)) AS hops`,
	},
	"dblp": {
		`MATCH (p:Paper)-[:PUBLISHED_IN]->(v:Venue) RETURN v, COUNT(p) AS papers, MIN(p.year) AS oldest`,
		`MATCH (a:Author)-[r*2..2]->(b:Author) RETURN COUNT(r) AS n`,
	},
	"roadnet": {
		`MATCH (a)-[r*1..2]->(b) RETURN COUNT(r) AS n, MAX(LENGTH(r)) AS longest`,
	},
	"soc": {
		`MATCH (a:User)-[:FOLLOWS]->(b:User) RETURN a, COUNT(b) AS out, MAX(ID(b)) AS hub`,
		`MATCH (a)-[r*1..2]->(b) RETURN SUM(LENGTH(r)) AS hops, COUNT(*) AS n`,
	},
}

// TestPartialAggMatchesBufferedOnDatagen repeats the three-way
// equivalence on randomized skewed, cyclic, and grid-shaped data.
func TestPartialAggMatchesBufferedOnDatagen(t *testing.T) {
	for _, seed := range []int64{5, 23} {
		graphs := datagenGraphs(t, seed)
		for name, g := range graphs {
			for _, src := range partialDatasetQueries[name] {
				if got := QueryAggMode(mustParse(t, src)); got != AggModePartial {
					t.Fatalf("%s query %q selects %v, want partial", name, src, got)
				}
				seq := runWorkers(t, g, src, 1)
				for _, workers := range []int{4} {
					assertSameResult(t, src, seq, runWorkers(t, g, src, workers), workers)
					assertSameResult(t, src, seq, runBuffered(t, g, src, workers), workers)
				}
			}
		}
	}
}

// TestPartialAggRowLimitShadowsLaterEvalError is the partial-mode
// counterpart of TestParallelRowLimitShadowsLaterEvalError: the limit
// gate must trip at the exact global yield position — before the
// aggregate-argument evaluation the sequential path never reaches —
// even though the chunk only ships an event count, not per-yield
// entries.
func TestPartialAggRowLimitShadowsLaterEvalError(t *testing.T) {
	g := graph.NewGraph(nil)
	for i := 0; i < 5; i++ {
		j := g.MustAddVertex("Job", nil)
		var v any = "s"
		if i == 4 {
			v = int64(7) // 5th row: LENGTH(int64) is an eval error
		}
		f := g.MustAddVertex("File", graph.Properties{"v": v})
		g.MustAddEdge(j, f, "WRITES_TO", nil)
	}
	src := `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN SUM(LENGTH(f.v)) AS s`
	if got := QueryAggMode(mustParse(t, src)); got != AggModePartial {
		t.Fatalf("mode = %v, want partial", got)
	}
	q := mustParse(t, src)
	for _, workers := range []int{1, 2, 8, -1} {
		// Limit before the bad row: both paths must say ErrRowLimit.
		ex := &Executor{G: g, MaxRows: 4, Workers: workers}
		if _, err := ex.Execute(q); err != ErrRowLimit {
			t.Errorf("workers=%d MaxRows=4: got %v, want ErrRowLimit", workers, err)
		}
		// No limit: both paths must surface the evaluation error.
		ex = &Executor{G: g, Workers: workers}
		if _, err := ex.Execute(q); err == nil || err == ErrRowLimit {
			t.Errorf("workers=%d no limit: got %v, want eval error", workers, err)
		}
	}
}

// TestPartialAggEmptyMatch: zero-row aggregation still yields the
// single conventional row (COUNT 0, MIN nil) through the partial merge.
func TestPartialAggEmptyMatch(t *testing.T) {
	g, _ := lineage(t)
	src := `MATCH (j:Job) WHERE j.CPU > 100000 RETURN COUNT(*) AS n, MIN(j.CPU) AS lo`
	for _, workers := range []int{1, 4} {
		res := runWorkers(t, g, src, workers)
		if len(res.Rows) != 1 {
			t.Fatalf("workers=%d: %d rows, want 1", workers, len(res.Rows))
		}
		if res.Rows[0][0] != int64(0) || res.Rows[0][1] != nil {
			t.Errorf("workers=%d: row = %v, want [0 <nil>]", workers, res.Rows[0])
		}
	}
}

// TestPartialAggMinMaxIgnoresNaN: a NaN property landing at a chunk
// boundary must not poison MIN/MAX — compareValues ties NaN with
// everything, so a chunk-local fold that kept a first-seen NaN would
// discard that chunk's true extremum at merge time. MIN/MAX ignore NaN
// (like nil), keeping the fold associative and all paths identical.
func TestPartialAggMinMaxIgnoresNaN(t *testing.T) {
	g := graph.NewGraph(nil)
	const n = 200
	for i := 0; i < n; i++ {
		x := float64(i + 10)
		switch i {
		case 148:
			x = math.NaN() // likely a chunk-start position at workers=4
		case 149:
			x = 100000 // the true max, right behind the NaN
		}
		g.MustAddVertex("V", graph.Properties{"x": x})
	}
	src := `MATCH (a:V) RETURN MAX(a.x) AS hi, MIN(a.x) AS lo`
	if got := QueryAggMode(mustParse(t, src)); got != AggModePartial {
		t.Fatalf("mode = %v, want partial", got)
	}
	seq := runWorkers(t, g, src, 1)
	if seq.Rows[0][0] != float64(100000) || seq.Rows[0][1] != float64(10) {
		t.Fatalf("sequential row = %v, want [100000 10]", seq.Rows[0])
	}
	for _, workers := range []int{2, 4, 8, -1} {
		assertSameResult(t, src, seq, runWorkers(t, g, src, workers), workers)
		assertSameResult(t, src, seq, runBuffered(t, g, src, workers), workers)
	}
}

// explosiveGraph is denseGraph without the cheap detached prefix: the
// very first candidate vertex sits inside the dense component, so a
// merge that released a chunk's rows only at chunk completion could not
// produce a first row within any reasonable time.
func explosiveGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.NewGraph(nil)
	const n = 24
	ids := make([]graph.VertexID, n)
	for i := range ids {
		ids[i] = g.MustAddVertex("V", graph.Properties{"i": int64(i)})
	}
	for i := 0; i < n; i++ {
		for d := 1; d <= 6; d++ {
			g.MustAddEdge(ids[i], ids[(i+d)%n], "E", nil)
		}
	}
	return g
}

// TestStreamFirstRowBeforePartitionCompletes pins eager prefix
// streaming under workers>1: chunk 0's rows must release as they are
// produced, not when the chunk completes. Chunk 0 here is an explosive
// match whose full enumeration is combinatorially out of reach, so the
// first row arriving at all proves it arrived while the partition was
// still running.
func TestStreamFirstRowBeforePartitionCompletes(t *testing.T) {
	g := explosiveGraph(t)
	q := mustParse(t, `MATCH (a:V)-[r*1..12]->(b:V) RETURN a, b`)
	for _, workers := range []int{2, 4} {
		ex := &Executor{G: g, Workers: workers}
		rows, err := ex.Stream(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if !rows.Next() {
			t.Fatalf("workers=%d: no first row: %v", workers, rows.Err())
		}
		if elapsed := time.Since(start); elapsed > 30*time.Second {
			t.Fatalf("workers=%d: first row took %s", workers, elapsed)
		}
		// Drain a few more to show the prefix keeps flowing, then abort
		// the still-running partition.
		for i := 0; i < 10 && rows.Next(); i++ {
		}
		if err := rows.Close(); err != nil {
			t.Errorf("workers=%d: Close = %v", workers, err)
		}
	}
}
