package exec

import (
	"fmt"
	"strings"

	"kaskade/internal/gql"
)

// evalExpr evaluates a non-aggregate expression against a scope of
// named values (MATCH bindings or SELECT row columns).
func evalExpr(e gql.Expr, sc scope) (Value, error) {
	switch e := e.(type) {
	case *gql.Lit:
		return e.Value, nil
	case *gql.Ident:
		v, ok := sc.lookup(e.Name)
		if !ok {
			return nil, fmt.Errorf("exec: unknown variable %q", e.Name)
		}
		return v, nil
	case *gql.PropAccess:
		base, ok := sc.lookup(e.Base)
		if !ok {
			return nil, fmt.Errorf("exec: unknown variable %q", e.Base)
		}
		return sc.prop(base, e.Key)
	case *gql.UnaryExpr:
		v, err := evalExpr(e.Operand, sc)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "NOT":
			b, ok := v.(bool)
			if !ok {
				return nil, fmt.Errorf("exec: NOT applied to non-boolean %v", v)
			}
			return !b, nil
		case "-":
			switch v := v.(type) {
			case int64:
				return -v, nil
			case float64:
				return -v, nil
			}
			return nil, fmt.Errorf("exec: unary - applied to %T", v)
		}
		return nil, fmt.Errorf("exec: unknown unary operator %s", e.Op)
	case *gql.BinaryExpr:
		return evalBinary(e, sc)
	case *gql.FuncCall:
		if e.IsAggregate() {
			return nil, fmt.Errorf("exec: aggregate %s used outside an aggregation context", e.Name)
		}
		return evalScalarFunc(e, sc)
	}
	return nil, fmt.Errorf("exec: unsupported expression %T", e)
}

func evalBinary(e *gql.BinaryExpr, sc scope) (Value, error) {
	// Short-circuit booleans. AND evaluates left first — the column
	// prefilter (prefilter.go) relies on that to pre-apply the leftmost
	// conjunct without changing which errors later conjuncts can raise.
	if e.Op == "AND" || e.Op == "OR" {
		lb, err := evalBool(e.Left, sc)
		if err != nil {
			return nil, err
		}
		if e.Op == "AND" && !lb {
			return false, nil
		}
		if e.Op == "OR" && lb {
			return true, nil
		}
		return evalBool(e.Right, sc)
	}
	l, err := evalExpr(e.Left, sc)
	if err != nil {
		return nil, err
	}
	r, err := evalExpr(e.Right, sc)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case "+", "-", "*", "/":
		return arith(e.Op, l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		c, ok := compareValues(l, r)
		if !ok {
			// Incomparable values are equal only to themselves under "=".
			if e.Op == "=" {
				return false, nil
			}
			if e.Op == "<>" {
				return true, nil
			}
			return nil, fmt.Errorf("exec: cannot compare %T and %T", l, r)
		}
		switch e.Op {
		case "=":
			return c == 0, nil
		case "<>":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		case ">=":
			return c >= 0, nil
		}
	}
	return nil, fmt.Errorf("exec: unknown operator %s", e.Op)
}

func evalBool(e gql.Expr, sc scope) (bool, error) {
	v, err := evalExpr(e, sc)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("exec: expected boolean, got %T", v)
	}
	return b, nil
}

func arith(op string, l, r Value) (Value, error) {
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, fmt.Errorf("exec: division by zero")
			}
			if li%ri == 0 {
				return li / ri, nil
			}
			return float64(li) / float64(ri), nil
		}
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		if op == "+" {
			ls, lsok := l.(string)
			rs, rsok := r.(string)
			if lsok && rsok {
				return ls + rs, nil
			}
		}
		return nil, fmt.Errorf("exec: arithmetic on %T and %T", l, r)
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, fmt.Errorf("exec: division by zero")
		}
		return lf / rf, nil
	}
	return nil, fmt.Errorf("exec: unknown arithmetic operator %s", op)
}

func toFloat(v Value) (float64, bool) {
	switch v := v.(type) {
	case int64:
		return float64(v), true
	case float64:
		return v, true
	}
	return 0, false
}

// compareValues compares two values, returning (-1|0|1, true) when they
// are comparable.
func compareValues(l, r Value) (int, bool) {
	if lf, ok := toFloat(l); ok {
		if rf, ok := toFloat(r); ok {
			switch {
			case lf < rf:
				return -1, true
			case lf > rf:
				return 1, true
			}
			return 0, true
		}
		return 0, false
	}
	switch l := l.(type) {
	case string:
		if r, ok := r.(string); ok {
			return strings.Compare(l, r), true
		}
	case bool:
		if r, ok := r.(bool); ok {
			switch {
			case l == r:
				return 0, true
			case !l:
				return -1, true
			}
			return 1, true
		}
	case VertexRef:
		if r, ok := r.(VertexRef); ok {
			return int(l.ID - r.ID), true
		}
	case EdgeRef:
		if r, ok := r.(EdgeRef); ok {
			return int(l.ID - r.ID), true
		}
	case nil:
		if r == nil {
			return 0, true
		}
	}
	return 0, false
}

// evalScalarFunc evaluates the built-in scalar functions. Beyond the
// usual ID/LABEL/LENGTH, the PATH_* family aggregates a property over the
// edges of a bound variable-length path — the primitive behind Q4 ("path
// lengths": max edge timestamp along each path).
func evalScalarFunc(e *gql.FuncCall, sc scope) (Value, error) {
	argv := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := evalExpr(a, sc)
		if err != nil {
			return nil, err
		}
		argv[i] = v
	}
	need := func(n int) error {
		if len(argv) != n {
			return fmt.Errorf("exec: %s expects %d argument(s), got %d", e.Name, n, len(argv))
		}
		return nil
	}
	switch e.Name {
	case "ID":
		if err := need(1); err != nil {
			return nil, err
		}
		switch v := argv[0].(type) {
		case VertexRef:
			return int64(v.ID), nil
		case EdgeRef:
			return int64(v.ID), nil
		}
		return nil, fmt.Errorf("exec: ID of %T", argv[0])
	case "LABEL", "TYPE":
		if err := need(1); err != nil {
			return nil, err
		}
		switch v := argv[0].(type) {
		case VertexRef:
			return v.G.Vertex(v.ID).Type, nil
		case EdgeRef:
			return v.G.Edge(v.ID).Type, nil
		}
		return nil, fmt.Errorf("exec: LABEL of %T", argv[0])
	case "LENGTH":
		if err := need(1); err != nil {
			return nil, err
		}
		switch v := argv[0].(type) {
		case PathRef:
			return int64(len(v.Edges)), nil
		case string:
			return int64(len(v)), nil
		case EdgeRef:
			return int64(1), nil
		}
		return nil, fmt.Errorf("exec: LENGTH of %T", argv[0])
	case "PATH_MAX", "PATH_MIN", "PATH_SUM":
		if err := need(2); err != nil {
			return nil, err
		}
		key, ok := argv[1].(string)
		if !ok {
			return nil, fmt.Errorf("exec: %s expects a property name string", e.Name)
		}
		var edges []EdgeRef
		switch v := argv[0].(type) {
		case PathRef:
			for _, eid := range v.Edges {
				edges = append(edges, EdgeRef{G: v.G, ID: eid})
			}
		case EdgeRef:
			edges = []EdgeRef{v}
		default:
			return nil, fmt.Errorf("exec: %s over %T", e.Name, argv[0])
		}
		var acc Value
		for _, er := range edges {
			pv := er.G.Edge(er.ID).Prop(key)
			if pv == nil {
				continue
			}
			if acc == nil {
				acc = pv
				continue
			}
			switch e.Name {
			case "PATH_SUM":
				s, err := arith("+", acc, pv)
				if err != nil {
					return nil, err
				}
				acc = s
			case "PATH_MAX":
				if c, ok := compareValues(pv, acc); ok && c > 0 {
					acc = pv
				}
			case "PATH_MIN":
				if c, ok := compareValues(pv, acc); ok && c < 0 {
					acc = pv
				}
			}
		}
		return acc, nil
	case "COALESCE":
		for _, v := range argv {
			if v != nil {
				return v, nil
			}
		}
		return nil, nil
	case "ABS":
		if err := need(1); err != nil {
			return nil, err
		}
		switch v := argv[0].(type) {
		case int64:
			if v < 0 {
				return -v, nil
			}
			return v, nil
		case float64:
			if v < 0 {
				return -v, nil
			}
			return v, nil
		}
		return nil, fmt.Errorf("exec: ABS of %T", argv[0])
	}
	return nil, fmt.Errorf("exec: unknown function %s", e.Name)
}
