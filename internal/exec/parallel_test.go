package exec

import (
	"reflect"
	"testing"

	"kaskade/internal/datagen"
	"kaskade/internal/graph"
)

// equivalenceQueries covers every query shape exercised by exec_test.go:
// single edges, type filters, chains, multi-pattern joins, reversed
// edges, variable-length paths (bounded, zero-hop, unbounded), WHERE
// filters, implicit grouping, aggregates over empty matches, nested
// SELECTs, ORDER BY/LIMIT, and path scalar functions.
var equivalenceQueries = []string{
	`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`,
	`MATCH (f:File)-[:IS_READ_BY]->(j:Job) RETURN f, j`,
	`MATCH (a:Job)-[:IS_READ_BY]->(b:Job) RETURN a, b`,
	`MATCH (a:Job)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b`,
	`MATCH (a:Job)-[:WRITES_TO]->(f:File) (f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b`,
	`MATCH (f:File)<-[:WRITES_TO]-(j:Job) RETURN f, j`,
	`MATCH (a:Job)-[r*1..4]->(v) WHERE a.name = 'j1' RETURN v`,
	`MATCH (a:Job)-[r*0..0]->(b) RETURN a, b`,
	`MATCH (a:Job)-[r*2..2]->(b:Job) RETURN COUNT(r) AS n`,
	`MATCH (j:Job) WHERE j.CPU >= 20 RETURN j.name AS name`,
	`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j.name AS name, COUNT(f) AS nfiles`,
	`MATCH ()-[r]->() RETURN COUNT(*) AS n`,
	`MATCH (j:Job) WHERE j.CPU > 1000 RETURN COUNT(*) AS n`,
	`SELECT name, nfiles FROM (
		MATCH (j:Job)-[:WRITES_TO]->(f:File)
		RETURN j.name AS name, COUNT(f) AS nfiles
	) WHERE nfiles > 1`,
	`SELECT kind, SUM(cpu) AS total FROM (
		MATCH (j:Job) RETURN LABEL(j) AS kind, j.CPU AS cpu
	) GROUP BY kind`,
	`SELECT A.pipelineName, AVG(T_CPU) AS avg_cpu FROM (
		SELECT A, SUM(B.CPU) AS T_CPU FROM (
			MATCH (q_j1:Job)-[:WRITES_TO]->(q_f1:File)
			      (q_f1:File)-[r*0..8]->(q_f2:File)
			      (q_f2:File)-[:IS_READ_BY]->(q_j2:Job)
			RETURN q_j1 AS A, q_j2 AS B
		) GROUP BY A, B
	) GROUP BY A.pipelineName`,
	`SELECT name, cpu FROM (
		MATCH (j:Job) RETURN j.name AS name, j.CPU AS cpu
	) ORDER BY cpu DESC LIMIT 2`,
}

// runWorkers executes src on g with the given parallelism.
func runWorkers(t testing.TB, g *graph.Graph, src string, workers int) *Result {
	t.Helper()
	res, err := RunParallel(g, src, workers)
	if err != nil {
		t.Fatalf("RunParallel(%q, workers=%d): %v", src, workers, err)
	}
	return res
}

// assertSameResult requires byte-identical results: same columns, same
// rows, same row order, same values (including group order from
// aggregation and float bit patterns, which depend on feed order).
func assertSameResult(t *testing.T, src string, want, got *Result, workers int) {
	t.Helper()
	if !reflect.DeepEqual(want.Cols, got.Cols) {
		t.Fatalf("query %q workers=%d: cols %v != %v", src, workers, got.Cols, want.Cols)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("query %q workers=%d: %d rows != %d rows", src, workers, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if !reflect.DeepEqual(want.Rows[i], got.Rows[i]) {
			t.Fatalf("query %q workers=%d: row %d = %v, want %v", src, workers, i, got.Rows[i], want.Rows[i])
		}
	}
}

func TestParallelMatchesSequentialOnLineage(t *testing.T) {
	g, _ := lineage(t)
	for _, src := range equivalenceQueries {
		seq := runWorkers(t, g, src, 1)
		for _, workers := range []int{2, 3, 8, -1} {
			par := runWorkers(t, g, src, workers)
			assertSameResult(t, src, seq, par, workers)
		}
	}
}

// datagenGraphs builds small instances of all four synthetic datasets
// for the given seed.
func datagenGraphs(t testing.TB, seed int64) map[string]*graph.Graph {
	t.Helper()
	out := make(map[string]*graph.Graph)
	prov, err := datagen.Prov(datagen.ProvConfig{
		Jobs: 60, Files: 150, TasksPerJob: 3, Machines: 10, Users: 5,
		MaxReads: 20, Pipelines: 6, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["prov"] = prov
	dblp, err := datagen.DBLP(datagen.DBLPConfig{
		Authors: 80, Papers: 160, Venues: 8, MaxPerAuthor: 30, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["dblp"] = dblp
	road, err := datagen.RoadNet(datagen.RoadNetConfig{
		Width: 14, Height: 14, DropFraction: 0.1, Seed: seed + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["roadnet"] = road
	soc, err := datagen.SocialNetwork(datagen.SocialConfig{
		Users: 150, Edges: 900, Exponent: 2.3, MaxDegree: 40, Seed: seed + 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["soc"] = soc
	return out
}

// datasetQueries are schema-appropriate shapes per dataset, mixing
// typed/untyped first nodes, joins, variable-length paths, and
// aggregation (the shapes whose determinism the parallel merge must
// preserve on skewed, cyclic, and grid-shaped data).
var datasetQueries = map[string][]string{
	"prov": {
		`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`,
		`MATCH (a:Job)-[:WRITES_TO]->(f:File)-[:IS_READ_BY]->(b:Job) RETURN a, b`,
		`MATCH (j:Job)-[r*1..2]->(v) RETURN COUNT(r) AS n`,
		`MATCH (u:User)-[:SUBMITTED]->(j:Job) RETURN u, COUNT(j) AS jobs`,
		`MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j.pipelineName AS p, COUNT(f) AS n`,
		`MATCH (v) RETURN LABEL(v) AS kind, COUNT(*) AS n`,
	},
	"dblp": {
		`MATCH (a:Author)-[:AUTHORED]->(p:Paper)-[:AUTHORED_BY]->(b:Author) RETURN a, b`,
		`MATCH (p:Paper)-[:PUBLISHED_IN]->(v:Venue) RETURN v, COUNT(p) AS papers`,
		`MATCH (a:Author)-[r*2..2]->(b:Author) RETURN COUNT(r) AS n`,
		`SELECT y, n FROM (
			MATCH (p:Paper) RETURN p.year AS y, COUNT(*) AS n
		) ORDER BY y`,
	},
	"roadnet": {
		`MATCH (a)-[r]->(b) RETURN COUNT(*) AS n`,
		`MATCH (a)-[r*1..2]->(b) RETURN COUNT(r) AS n`,
		`MATCH (a:Intersection)-[:ROAD]->(b:Intersection)-[:ROAD]->(c:Intersection) RETURN COUNT(*) AS n`,
	},
	"soc": {
		`MATCH (a:User)-[:FOLLOWS]->(b:User) RETURN a, b`,
		`MATCH (a)-[r*1..2]->(b) RETURN COUNT(r) AS n`,
		`MATCH (a:User)-[:FOLLOWS]->(b:User)-[:FOLLOWS]->(c:User) RETURN COUNT(*) AS paths`,
	},
}

func TestParallelMatchesSequentialOnDatagen(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		graphs := datagenGraphs(t, seed)
		for name, g := range graphs {
			for _, src := range datasetQueries[name] {
				seq := runWorkers(t, g, src, 1)
				for _, workers := range []int{2, 4, -1} {
					par := runWorkers(t, g, src, workers)
					assertSameResult(t, src, seq, par, workers)
				}
			}
		}
	}
}

func TestParallelRowLimitMatchesSequential(t *testing.T) {
	g, _ := lineage(t)
	q := mustParse(t, `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN j, f`)
	for _, workers := range []int{1, 2, 8} {
		ex := &Executor{G: g, MaxRows: 2, Workers: workers}
		if _, err := ex.Execute(q); err != ErrRowLimit {
			t.Errorf("workers=%d: got %v, want ErrRowLimit", workers, err)
		}
	}
	// A limit the match fits under must not trip in any mode.
	for _, workers := range []int{1, 2, 8} {
		ex := &Executor{G: g, MaxRows: 4, Workers: workers}
		res, err := ex.Execute(q)
		if err != nil || len(res.Rows) != 4 {
			t.Errorf("workers=%d: res=%v err=%v, want 4 rows", workers, res, err)
		}
	}
}

// TestParallelRowLimitShadowsLaterEvalError pins the check-then-evaluate
// order: when an evaluation error sits beyond MaxRows, the sequential
// path never reaches it — it fails with ErrRowLimit first — and the
// parallel path must report the same error even though its workers,
// blind to the global row count, already tripped over the bad row.
func TestParallelRowLimitShadowsLaterEvalError(t *testing.T) {
	g := graph.NewGraph(nil)
	for i := 0; i < 5; i++ {
		j := g.MustAddVertex("Job", nil)
		var v any = int64(i)
		if i == 4 {
			v = "boom" // 5th row: f.v + 1 becomes string + int
		}
		f := g.MustAddVertex("File", graph.Properties{"v": v})
		g.MustAddEdge(j, f, "WRITES_TO", nil)
	}
	q := mustParse(t, `MATCH (j:Job)-[:WRITES_TO]->(f:File) RETURN f.v + 1 AS n`)
	for _, workers := range []int{1, 2, 8, -1} {
		// Limit before the bad row: both paths must say ErrRowLimit.
		ex := &Executor{G: g, MaxRows: 4, Workers: workers}
		if _, err := ex.Execute(q); err != ErrRowLimit {
			t.Errorf("workers=%d MaxRows=4: got %v, want ErrRowLimit", workers, err)
		}
		// No limit: both paths must surface the evaluation error.
		ex = &Executor{G: g, Workers: workers}
		if _, err := ex.Execute(q); err == nil || err == ErrRowLimit {
			t.Errorf("workers=%d no limit: got %v, want eval error", workers, err)
		}
	}
}

func TestParallelErrorsMatchSequential(t *testing.T) {
	g, _ := lineage(t)
	for _, src := range []string{
		`MATCH (j:Job) RETURN unknown_var`,
		`MATCH (j:Job) RETURN NOSUCHFUNC(j)`,
		`MATCH (j:Job) WHERE j.CPU RETURN j`,
	} {
		for _, workers := range []int{2, -1} {
			if _, err := RunParallel(g, src, workers); err == nil {
				t.Errorf("query %q workers=%d: want error", src, workers)
			}
		}
	}
}

// TestParallelSingleCandidateFallsBack pins the fallback: one candidate
// start vertex leaves nothing to partition, so the parallel path defers
// to the sequential matcher rather than spinning up a pool.
func TestParallelSingleCandidateFallsBack(t *testing.T) {
	g := graph.NewGraph(nil)
	a := g.MustAddVertex("Only", nil)
	b := g.MustAddVertex("V", nil)
	g.MustAddEdge(a, b, "E", nil)
	res := runWorkers(t, g, `MATCH (x:Only)-[:E]->(y) RETURN x, y`, 8)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}
