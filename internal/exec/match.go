package exec

import (
	"context"
	"fmt"

	"kaskade/internal/gql"
	"kaskade/internal/graph"
)

// matcher performs backtracking pattern matching of a MATCH clause over a
// graph, with Cypher edge-uniqueness semantics: no edge is used twice
// within one match of the whole clause (this is what makes variable-length
// traversal over cyclic graphs terminate).
//
// When f is set (the default — the executor freezes its graph at query
// start), traversal steps run on the frozen CSR view: a typed edge
// pattern expands through OutOfType/InOfType, one contiguous
// pre-filtered slice per step instead of a filter over the full
// adjacency row, and endpoint/type lookups read flat arrays instead of
// the Edge records. Enumeration order is identical either way (the
// frozen view preserves insertion order within each type group), so
// both modes produce byte-identical results; the append-mode path
// (f == nil) is kept as the semantic reference for the equivalence
// tests.
type matcher struct {
	g        *graph.Graph
	f        *graph.Frozen // frozen CSR view; nil = append-mode traversal
	bindings map[string]Value
	usedEdge []bool          // edge-uniqueness set, indexed by EdgeID
	where    gql.Expr        // optional row filter
	yield    func() error    // called once per full match
	ctx      context.Context // optional cancellation (nil = never)
	steps    int             // tick counter amortizing ctx polls
}

// newMatcher builds a matcher for q over ex's graph, on the frozen CSR
// path unless the executor's noFrozen escape hatch is set. The
// edge-uniqueness set costs O(NumEdges) to allocate and zero, so it is
// only built when the patterns actually contain edge steps — a
// vertex-only point query pays nothing for it regardless of graph
// size.
func (ex *Executor) newMatcher(ctx context.Context, q *gql.MatchQuery) *matcher {
	m := &matcher{
		g:        ex.G,
		bindings: make(map[string]Value),
		where:    q.Where,
		ctx:      ctx,
	}
	for _, pat := range q.Patterns {
		if len(pat.Edges) > 0 {
			m.usedEdge = make([]bool, ex.G.NumEdges())
			break
		}
	}
	if !ex.noFrozen {
		m.f = ex.G.Freeze()
	}
	return m
}

// stepEdges returns the adjacency slice to scan for one edge-pattern
// step at vertex v, and whether it is already restricted to the
// pattern's edge type. On the frozen path a typed step gets the
// contiguous (v, type) group; otherwise callers filter per edge.
func (m *matcher) stepEdges(v graph.VertexID, etype string, reversed bool) (edges []graph.EdgeID, typed bool) {
	if m.f != nil {
		if etype != "" {
			if reversed {
				return m.f.InOfType(v, etype), true
			}
			return m.f.OutOfType(v, etype), true
		}
		if reversed {
			return m.f.In(v), false
		}
		return m.f.Out(v), false
	}
	if reversed {
		return m.g.In(v), false
	}
	return m.g.Out(v), false
}

// edgeEndpoint returns the step's target endpoint of eid (the source
// when reversed), from the frozen flat arrays when available.
func (m *matcher) edgeEndpoint(eid graph.EdgeID, reversed bool) graph.VertexID {
	if m.f != nil {
		if reversed {
			return m.f.From(eid)
		}
		return m.f.To(eid)
	}
	e := m.g.Edge(eid)
	if reversed {
		return e.From
	}
	return e.To
}

// edgeTypeOf returns eid's type label.
func (m *matcher) edgeTypeOf(eid graph.EdgeID) string {
	if m.f != nil {
		return m.f.EdgeTypeOf(eid)
	}
	return m.g.Edge(eid).Type
}

// vertexTypeOf returns v's type label.
func (m *matcher) vertexTypeOf(v graph.VertexID) string {
	if m.f != nil {
		return m.f.VertexTypeOf(v)
	}
	return m.g.Vertex(v).Type
}

// tickEvery is how many traversal steps pass between context polls: a
// power of two so the check compiles to a mask, small enough that even a
// match that never yields (everything filtered by WHERE, or a huge
// search space per candidate) notices cancellation promptly.
const tickEvery = 256

// tick is called on every traversal step (candidate binding, edge
// probe). It polls the matcher's context once every tickEvery steps and
// returns the context's error once cancelled, which aborts the
// backtracking search the same way any evaluation error would.
func (m *matcher) tick() error {
	if m.ctx == nil {
		return nil
	}
	m.steps++
	if m.steps&(tickEvery-1) != 0 {
		return nil
	}
	return m.ctx.Err()
}

// matchPatterns enumerates all matches of the given patterns and calls
// yield with m.bindings populated.
func (m *matcher) matchPatterns(patterns []gql.PathPattern) error {
	return m.startPattern(patterns, 0)
}

// startPattern begins matching pattern pi by binding its first node, then
// walking the chain; when all patterns are matched, the WHERE filter runs
// and yield fires.
func (m *matcher) startPattern(patterns []gql.PathPattern, pi int) error {
	if pi == len(patterns) {
		if m.where != nil {
			ok, err := evalBool(m.where, m.bindings)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		return m.yield()
	}
	pat := patterns[pi]
	if len(pat.Nodes) == 0 {
		return fmt.Errorf("exec: empty pattern")
	}
	return m.bindNode(pat.Nodes[0], func(at graph.VertexID) error {
		return m.walkChain(patterns, pi, 1, at)
	})
}

// walkChain continues pattern pi at node index ni with the chain's
// current endpoint at `at`.
func (m *matcher) walkChain(patterns []gql.PathPattern, pi, ni int, at graph.VertexID) error {
	pat := patterns[pi]
	if ni == len(pat.Nodes) {
		return m.startPattern(patterns, pi+1)
	}
	edge := pat.Edges[ni-1]
	toPat := pat.Nodes[ni]
	cont := func(next graph.VertexID) error {
		return m.walkChain(patterns, pi, ni+1, next)
	}
	if edge.VarLength {
		return m.matchVarLength(at, edge, toPat, cont)
	}
	return m.matchSingleEdge(at, edge, toPat, cont)
}

// bindNode binds the first node of a chain: either the variable is
// already bound (join with an earlier pattern) or we enumerate candidate
// vertices (restricted by type when given).
func (m *matcher) bindNode(n gql.NodePattern, cont func(graph.VertexID) error) error {
	if n.Var != "" {
		if v, bound := m.bindings[n.Var]; bound {
			ref, ok := v.(VertexRef)
			if !ok {
				return fmt.Errorf("exec: variable %s is not a vertex", n.Var)
			}
			if n.Type != "" && m.vertexTypeOf(ref.ID) != n.Type {
				return nil
			}
			return cont(ref.ID)
		}
	}
	try := func(id graph.VertexID) error {
		if err := m.tick(); err != nil {
			return err
		}
		if n.Var == "" {
			return cont(id)
		}
		m.bindings[n.Var] = VertexRef{G: m.g, ID: id}
		err := cont(id)
		delete(m.bindings, n.Var)
		return err
	}
	if n.Type != "" {
		for _, id := range m.g.VerticesOfType(n.Type) {
			if err := try(id); err != nil {
				return err
			}
		}
		return nil
	}
	for id := 0; id < m.g.NumVertices(); id++ {
		if err := try(graph.VertexID(id)); err != nil {
			return err
		}
	}
	return nil
}

// checkAndBindTarget binds (or joins) the target node of an edge step and
// invokes cont with the target vertex.
func (m *matcher) checkAndBindTarget(toPat gql.NodePattern, target graph.VertexID, cont func(graph.VertexID) error) error {
	if toPat.Type != "" && m.vertexTypeOf(target) != toPat.Type {
		return nil
	}
	if toPat.Var == "" {
		return cont(target)
	}
	if v, bound := m.bindings[toPat.Var]; bound {
		ref, ok := v.(VertexRef)
		if !ok {
			return fmt.Errorf("exec: variable %s is not a vertex", toPat.Var)
		}
		if ref.ID != target {
			return nil
		}
		return cont(target)
	}
	m.bindings[toPat.Var] = VertexRef{G: m.g, ID: target}
	err := cont(target)
	delete(m.bindings, toPat.Var)
	return err
}

func (m *matcher) matchSingleEdge(from graph.VertexID, e gql.EdgePattern, toPat gql.NodePattern, cont func(graph.VertexID) error) error {
	edges, typed := m.stepEdges(from, e.Type, e.Reversed)
	for _, eid := range edges {
		if err := m.tick(); err != nil {
			return err
		}
		if m.usedEdge[eid] {
			continue
		}
		if !typed && e.Type != "" && m.edgeTypeOf(eid) != e.Type {
			continue
		}
		target := m.edgeEndpoint(eid, e.Reversed)
		var undoVar bool
		if e.Var != "" {
			if prev, exists := m.bindings[e.Var]; exists {
				if ref, ok := prev.(EdgeRef); !ok || ref.ID != eid {
					continue
				}
			} else {
				m.bindings[e.Var] = EdgeRef{G: m.g, ID: eid}
				undoVar = true
			}
		}
		m.usedEdge[eid] = true
		err := m.checkAndBindTarget(toPat, target, cont)
		m.usedEdge[eid] = false
		if undoVar {
			delete(m.bindings, e.Var)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// matchVarLength walks paths of length MinHops..MaxHops from `from`,
// following edges of the pattern's type (any type when empty), honoring
// global edge-uniqueness. Each distinct edge sequence is a distinct match
// (path semantics, which is what connector views contract).
func (m *matcher) matchVarLength(from graph.VertexID, e gql.EdgePattern, toPat gql.NodePattern, cont func(graph.VertexID) error) error {
	var path []graph.EdgeID
	min, max := e.MinHops, e.MaxHops

	emit := func(at graph.VertexID) error {
		if e.Var == "" {
			return m.checkAndBindTarget(toPat, at, cont)
		}
		if _, exists := m.bindings[e.Var]; exists {
			return fmt.Errorf("exec: variable-length variable %s bound twice", e.Var)
		}
		cp := make([]graph.EdgeID, len(path))
		copy(cp, path)
		m.bindings[e.Var] = PathRef{G: m.g, Edges: cp}
		err := m.checkAndBindTarget(toPat, at, cont)
		delete(m.bindings, e.Var)
		return err
	}

	var walk func(at graph.VertexID, hops int) error
	walk = func(at graph.VertexID, hops int) error {
		if hops >= min {
			if err := emit(at); err != nil {
				return err
			}
		}
		if max >= 0 && hops == max {
			return nil
		}
		edges, typed := m.stepEdges(at, e.Type, e.Reversed)
		for _, eid := range edges {
			if err := m.tick(); err != nil {
				return err
			}
			if m.usedEdge[eid] {
				continue
			}
			if !typed && e.Type != "" && m.edgeTypeOf(eid) != e.Type {
				continue
			}
			next := m.edgeEndpoint(eid, e.Reversed)
			m.usedEdge[eid] = true
			path = append(path, eid)
			err := walk(next, hops+1)
			path = path[:len(path)-1]
			m.usedEdge[eid] = false
			if err != nil {
				return err
			}
		}
		return nil
	}
	return walk(from, 0)
}
