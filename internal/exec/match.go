package exec

import (
	"context"
	"fmt"

	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/metrics"
)

// matcher performs backtracking pattern matching of a MATCH clause over a
// graph, with Cypher edge-uniqueness semantics: no edge is used twice
// within one match of the whole clause (this is what makes variable-length
// traversal over cyclic graphs terminate).
//
// When f is set (the default — the executor freezes its graph at query
// start), traversal steps run on the frozen CSR view: a typed edge
// pattern expands through OutOfType/InOfType, one contiguous
// pre-filtered slice per step instead of a filter over the full
// adjacency row, and endpoint/type lookups read flat arrays instead of
// the Edge records. Enumeration order is identical either way (the
// frozen view preserves insertion order within each type group), so
// both modes produce byte-identical results; the append-mode path
// (f == nil) is kept as the semantic reference for the equivalence
// tests.
//
// Bindings live in flat plan-time scratch, not a map: varNames holds
// the pattern's variables (fixed at construction) and slots the bound
// value per variable, nil meaning unbound — pattern variables only ever
// bind non-nil refs. Binding and backtracking are a slot store and a
// nil store; the matcher itself implements the evaluator's scope over
// the slots, so WHERE/RETURN evaluation does no map work at all. Values
// handed out of a live binding (projected rows, aggregation inputs) are
// exported at the escape boundary — see exportValue.
type matcher struct {
	g        *graph.Graph
	f        *graph.Frozen // frozen CSR view; nil = append-mode traversal
	varNames []string      // pattern variables, deduped, construction order
	slots    []Value       // bound value per variable; nil = unbound
	usedEdge []bool        // edge-uniqueness set, indexed by EdgeID
	where    gql.Expr      // optional row filter
	yield    func() error  // called once per full match
	ctx      context.Context
	steps    int // tick counter amortizing ctx polls

	// firstCands, when non-nil, replaces the first pattern's first-node
	// enumeration: the column prefilter's surviving candidate list
	// (sequential path; the parallel path filters its chunk input
	// instead).
	firstCands []graph.VertexID

	// noColumns pins property reads to the map path (the columnar A/B
	// switch); colReads/mapReads count covered column reads vs vertex
	// map fallbacks, flushed coarsely via flushPropReads.
	noColumns bool
	colReads  int64
	mapReads  int64
}

// newMatcher builds a matcher for q over ex's graph, on the frozen CSR
// path unless the executor's noFrozen escape hatch is set. The
// edge-uniqueness set costs O(NumEdges) to allocate and zero, so it is
// only built when the patterns actually contain edge steps — a
// vertex-only point query pays nothing for it regardless of graph
// size.
func (ex *Executor) newMatcher(ctx context.Context, q *gql.MatchQuery) *matcher {
	m := &matcher{
		g:         ex.G,
		where:     q.Where,
		ctx:       ctx,
		noColumns: ex.noColumns,
	}
	for _, pat := range q.Patterns {
		for _, n := range pat.Nodes {
			m.addVar(n.Var)
		}
		for _, e := range pat.Edges {
			m.addVar(e.Var)
		}
	}
	m.slots = make([]Value, len(m.varNames))
	for _, pat := range q.Patterns {
		if len(pat.Edges) > 0 {
			m.usedEdge = make([]bool, ex.G.NumEdges())
			break
		}
	}
	if !ex.noFrozen {
		m.f = ex.G.Freeze()
	}
	return m
}

// addVar registers a pattern variable (deduped; "" ignored).
func (m *matcher) addVar(name string) {
	if name == "" {
		return
	}
	for _, n := range m.varNames {
		if n == name {
			return
		}
	}
	m.varNames = append(m.varNames, name)
}

// slot resolves a variable to its scratch index (-1 when the name is
// not a pattern variable). Patterns carry a handful of variables, so a
// linear scan — with Go's pointer-equality fast path for interned
// strings — beats map hashing.
func (m *matcher) slot(name string) int {
	for i, n := range m.varNames {
		if n == name {
			return i
		}
	}
	return -1
}

// lookup implements scope over the slots: bound means non-nil.
func (m *matcher) lookup(name string) (Value, bool) {
	for i, n := range m.varNames {
		if n == name {
			v := m.slots[i]
			return v, v != nil
		}
	}
	return nil, false
}

// prop implements scope: vertex reads route through the frozen columns
// unless the noColumns A/B switch pins the map path.
func (m *matcher) prop(base Value, key string) (Value, error) {
	return readProp(base, key, !m.noColumns, &m.colReads, &m.mapReads)
}

// snapshot implements scope: the bound variables as a map, values
// exported for retention beyond the current match.
func (m *matcher) snapshot() map[string]Value {
	out := make(map[string]Value, len(m.varNames))
	for i, n := range m.varNames {
		if v := m.slots[i]; v != nil {
			out[n] = exportValue(v)
		}
	}
	return out
}

// flushPropReads moves the matcher's property-read tallies into the
// registry (nil-safe). Called once per match (or worker), not per read,
// so the hot path stays on plain local ints.
func (m *matcher) flushPropReads(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	if m.colReads > 0 {
		reg.ColumnScans.Add(m.colReads)
	}
	if m.mapReads > 0 {
		reg.PropMapFallbacks.Add(m.mapReads)
	}
	m.colReads, m.mapReads = 0, 0
}

// stepEdges returns the adjacency slice to scan for one edge-pattern
// step at vertex v, and whether it is already restricted to the
// pattern's edge type. On the frozen path a typed step gets the
// contiguous (v, type) group; otherwise callers filter per edge.
func (m *matcher) stepEdges(v graph.VertexID, etype string, reversed bool) (edges []graph.EdgeID, typed bool) {
	if m.f != nil {
		if etype != "" {
			if reversed {
				return m.f.InOfType(v, etype), true
			}
			return m.f.OutOfType(v, etype), true
		}
		if reversed {
			return m.f.In(v), false
		}
		return m.f.Out(v), false
	}
	if reversed {
		return m.g.In(v), false
	}
	return m.g.Out(v), false
}

// edgeEndpoint returns the step's target endpoint of eid (the source
// when reversed), from the frozen flat arrays when available.
func (m *matcher) edgeEndpoint(eid graph.EdgeID, reversed bool) graph.VertexID {
	if m.f != nil {
		if reversed {
			return m.f.From(eid)
		}
		return m.f.To(eid)
	}
	e := m.g.Edge(eid)
	if reversed {
		return e.From
	}
	return e.To
}

// edgeTypeOf returns eid's type label.
func (m *matcher) edgeTypeOf(eid graph.EdgeID) string {
	if m.f != nil {
		return m.f.EdgeTypeOf(eid)
	}
	return m.g.Edge(eid).Type
}

// vertexTypeOf returns v's type label.
func (m *matcher) vertexTypeOf(v graph.VertexID) string {
	if m.f != nil {
		return m.f.VertexTypeOf(v)
	}
	return m.g.Vertex(v).Type
}

// tickEvery is how many traversal steps pass between context polls: a
// power of two so the check compiles to a mask, small enough that even a
// match that never yields (everything filtered by WHERE, or a huge
// search space per candidate) notices cancellation promptly.
const tickEvery = 256

// tick is called on every traversal step (candidate binding, edge
// probe). It polls the matcher's context once every tickEvery steps and
// returns the context's error once cancelled, which aborts the
// backtracking search the same way any evaluation error would.
func (m *matcher) tick() error {
	if m.ctx == nil {
		return nil
	}
	m.steps++
	if m.steps&(tickEvery-1) != 0 {
		return nil
	}
	return m.ctx.Err()
}

// matchPatterns enumerates all matches of the given patterns and calls
// yield with the matcher's slots populated.
func (m *matcher) matchPatterns(patterns []gql.PathPattern) error {
	return m.startPattern(patterns, 0)
}

// startPattern begins matching pattern pi by binding its first node, then
// walking the chain; when all patterns are matched, the WHERE filter runs
// and yield fires.
func (m *matcher) startPattern(patterns []gql.PathPattern, pi int) error {
	if pi == len(patterns) {
		if m.where != nil {
			ok, err := evalBool(m.where, m)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		return m.yield()
	}
	pat := patterns[pi]
	if len(pat.Nodes) == 0 {
		return fmt.Errorf("exec: empty pattern")
	}
	if pi == 0 && m.firstCands != nil {
		// Column-prefiltered first-node enumeration: the surviving
		// candidates, in the original order. The prefilter only engages
		// on shapes where the first node has a fresh variable (see
		// columnPrefilter), so this is a plain bind-walk-unbind loop.
		si := m.slot(pat.Nodes[0].Var)
		for _, id := range m.firstCands {
			if err := m.tick(); err != nil {
				return err
			}
			m.slots[si] = VertexRef{G: m.g, ID: id}
			err := m.walkChain(patterns, 0, 1, id)
			m.slots[si] = nil
			if err != nil {
				return err
			}
		}
		return nil
	}
	return m.bindNode(pat.Nodes[0], func(at graph.VertexID) error {
		return m.walkChain(patterns, pi, 1, at)
	})
}

// walkChain continues pattern pi at node index ni with the chain's
// current endpoint at `at`.
func (m *matcher) walkChain(patterns []gql.PathPattern, pi, ni int, at graph.VertexID) error {
	pat := patterns[pi]
	if ni == len(pat.Nodes) {
		return m.startPattern(patterns, pi+1)
	}
	edge := pat.Edges[ni-1]
	toPat := pat.Nodes[ni]
	cont := func(next graph.VertexID) error {
		return m.walkChain(patterns, pi, ni+1, next)
	}
	if edge.VarLength {
		return m.matchVarLength(at, edge, toPat, cont)
	}
	return m.matchSingleEdge(at, edge, toPat, cont)
}

// bindNode binds the first node of a chain: either the variable is
// already bound (join with an earlier pattern) or we enumerate candidate
// vertices (restricted by type when given).
func (m *matcher) bindNode(n gql.NodePattern, cont func(graph.VertexID) error) error {
	si := -1
	if n.Var != "" {
		si = m.slot(n.Var)
		if v := m.slots[si]; v != nil {
			ref, ok := v.(VertexRef)
			if !ok {
				return fmt.Errorf("exec: variable %s is not a vertex", n.Var)
			}
			if n.Type != "" && m.vertexTypeOf(ref.ID) != n.Type {
				return nil
			}
			return cont(ref.ID)
		}
	}
	try := func(id graph.VertexID) error {
		if err := m.tick(); err != nil {
			return err
		}
		if si < 0 {
			return cont(id)
		}
		m.slots[si] = VertexRef{G: m.g, ID: id}
		err := cont(id)
		m.slots[si] = nil
		return err
	}
	if n.Type != "" {
		for _, id := range m.g.VerticesOfType(n.Type) {
			if err := try(id); err != nil {
				return err
			}
		}
		return nil
	}
	for id := 0; id < m.g.NumVertices(); id++ {
		if err := try(graph.VertexID(id)); err != nil {
			return err
		}
	}
	return nil
}

// checkAndBindTarget binds (or joins) the target node of an edge step and
// invokes cont with the target vertex.
func (m *matcher) checkAndBindTarget(toPat gql.NodePattern, target graph.VertexID, cont func(graph.VertexID) error) error {
	if toPat.Type != "" && m.vertexTypeOf(target) != toPat.Type {
		return nil
	}
	if toPat.Var == "" {
		return cont(target)
	}
	si := m.slot(toPat.Var)
	if v := m.slots[si]; v != nil {
		ref, ok := v.(VertexRef)
		if !ok {
			return fmt.Errorf("exec: variable %s is not a vertex", toPat.Var)
		}
		if ref.ID != target {
			return nil
		}
		return cont(target)
	}
	m.slots[si] = VertexRef{G: m.g, ID: target}
	err := cont(target)
	m.slots[si] = nil
	return err
}

func (m *matcher) matchSingleEdge(from graph.VertexID, e gql.EdgePattern, toPat gql.NodePattern, cont func(graph.VertexID) error) error {
	edges, typed := m.stepEdges(from, e.Type, e.Reversed)
	ei := -1
	if e.Var != "" {
		ei = m.slot(e.Var)
	}
	for _, eid := range edges {
		if err := m.tick(); err != nil {
			return err
		}
		if m.usedEdge[eid] {
			continue
		}
		if !typed && e.Type != "" && m.edgeTypeOf(eid) != e.Type {
			continue
		}
		target := m.edgeEndpoint(eid, e.Reversed)
		var undoVar bool
		if ei >= 0 {
			if prev := m.slots[ei]; prev != nil {
				if ref, ok := prev.(EdgeRef); !ok || ref.ID != eid {
					continue
				}
			} else {
				m.slots[ei] = EdgeRef{G: m.g, ID: eid}
				undoVar = true
			}
		}
		m.usedEdge[eid] = true
		err := m.checkAndBindTarget(toPat, target, cont)
		m.usedEdge[eid] = false
		if undoVar {
			m.slots[ei] = nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// matchVarLength walks paths of length MinHops..MaxHops from `from`,
// following edges of the pattern's type (any type when empty), honoring
// global edge-uniqueness. Each distinct edge sequence is a distinct match
// (path semantics, which is what connector views contract).
func (m *matcher) matchVarLength(from graph.VertexID, e gql.EdgePattern, toPat gql.NodePattern, cont func(graph.VertexID) error) error {
	var path []graph.EdgeID
	min, max := e.MinHops, e.MaxHops
	ei := -1
	if e.Var != "" {
		ei = m.slot(e.Var)
	}

	emit := func(at graph.VertexID) error {
		if ei < 0 {
			return m.checkAndBindTarget(toPat, at, cont)
		}
		if m.slots[ei] != nil {
			return fmt.Errorf("exec: variable-length variable %s bound twice", e.Var)
		}
		// The binding aliases the walk's scratch path — no per-yield
		// copy. The walk never mutates path while the binding is live
		// (it appends only after emit returns and the slot is cleared);
		// anything that outlives the yield is exported at its escape
		// boundary instead (exportValue).
		m.slots[ei] = PathRef{G: m.g, Edges: path}
		err := m.checkAndBindTarget(toPat, at, cont)
		m.slots[ei] = nil
		return err
	}

	var walk func(at graph.VertexID, hops int) error
	walk = func(at graph.VertexID, hops int) error {
		if hops >= min {
			if err := emit(at); err != nil {
				return err
			}
		}
		if max >= 0 && hops == max {
			return nil
		}
		edges, typed := m.stepEdges(at, e.Type, e.Reversed)
		for _, eid := range edges {
			if err := m.tick(); err != nil {
				return err
			}
			if m.usedEdge[eid] {
				continue
			}
			if !typed && e.Type != "" && m.edgeTypeOf(eid) != e.Type {
				continue
			}
			next := m.edgeEndpoint(eid, e.Reversed)
			m.usedEdge[eid] = true
			path = append(path, eid)
			err := walk(next, hops+1)
			path = path[:len(path)-1]
			m.usedEdge[eid] = false
			if err != nil {
				return err
			}
		}
		return nil
	}
	return walk(from, 0)
}
