package exec

import (
	"fmt"
	"testing"

	"kaskade/internal/datagen"
	"kaskade/internal/graph"
)

// The BenchmarkPartialAgg* family measures the aggregate path's
// sequential-equivalent overhead: on a single-CPU host, the parallel
// path at workers=N cannot beat the sequential matcher, so any gap
// between "seq" and the worker variants is pure coordination cost. The
// buffered strategy pays for materializing every prepared yield and
// replaying it at merge time (~30% on these shapes before partial
// merging existed); the partial strategy folds yields into per-chunk
// accumulators as they happen and must stay within a few percent of
// sequential. On multi-core hosts the same variants show the speedup
// instead.

func partialBenchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := datagen.SocialNetwork(datagen.SocialConfig{
		Users: 600, Edges: 6000, Exponent: 2.3, MaxDegree: 80, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchAggVariants runs src sequentially, then on the parallel path in
// both aggregation strategies at each worker count.
func benchAggVariants(b *testing.B, src string, wantMode AggMode) {
	g := partialBenchGraph(b)
	q := mustParse(b, src)
	if got := QueryAggMode(q); got != wantMode {
		b.Fatalf("QueryAggMode(%q) = %v, want %v", src, got, wantMode)
	}
	run := func(ex *Executor) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("seq", run(&Executor{G: g, Workers: 1}))
	for _, workers := range []int{2, 4} {
		if wantMode == AggModePartial {
			b.Run(fmt.Sprintf("partial/w%d", workers),
				run(&Executor{G: g, Workers: workers}))
		}
		b.Run(fmt.Sprintf("buffered/w%d", workers),
			run(&Executor{G: g, Workers: workers, noPartialAgg: true}))
	}
}

// BenchmarkPartialAggCount: grouped COUNT over a skewed social graph —
// the canonical order-insensitive shape.
func BenchmarkPartialAggCount(b *testing.B) {
	benchAggVariants(b, `MATCH (a:User)-[:FOLLOWS]->(b:User) RETURN a AS u, COUNT(b) AS n`, AggModePartial)
}

// BenchmarkPartialAggMinMax: MIN/MAX over vertex properties, grouped.
func BenchmarkPartialAggMinMax(b *testing.B) {
	benchAggVariants(b, `MATCH (a:User)-[:FOLLOWS]->(b:User) RETURN a AS u, MIN(ID(b)) AS lo, MAX(ID(b)) AS hi`, AggModePartial)
}

// BenchmarkPartialAggSumInt: SUM over a provably-integer expression
// (path length) on variable-length matches.
func BenchmarkPartialAggSumInt(b *testing.B) {
	benchAggVariants(b, `MATCH (a:User)-[r*1..2]->(b:User) RETURN a AS u, SUM(LENGTH(r)) AS hops`, AggModePartial)
}

// BenchmarkPartialAggFloatStaysBuffered: the AVG control — an
// order-sensitive accumulator never selects the partial mode, so only
// the buffered variants exist for it.
func BenchmarkPartialAggFloatStaysBuffered(b *testing.B) {
	benchAggVariants(b, `MATCH (a:User)-[:FOLLOWS]->(b:User) RETURN a AS u, AVG(ID(b)) AS avg`, AggModeBuffered)
}
