package exec

import (
	"fmt"
	"sort"

	"kaskade/internal/gql"
	"kaskade/internal/graph"
)

// Executor runs queries against a graph. The zero value plus a Graph is
// ready to use; MaxRows, when positive, aborts queries that produce more
// than that many intermediate rows (a guard against accidentally
// intractable pattern matches — the very thing Kaskade's views exist to
// avoid).
//
// Workers controls pattern-match parallelism: 0 or 1 runs the
// sequential matcher, N>1 partitions the first-node binding space
// across N goroutines, and any negative value uses one worker per
// available CPU. The parallel path merges partitions deterministically,
// so results are identical to the sequential path row for row (see
// parallel.go). The graph must not be mutated during execution — after
// load, a graph.Graph is read-only and safe for concurrent traversal.
type Executor struct {
	G       *graph.Graph
	MaxRows int
	Workers int
}

// ErrRowLimit is returned when a query exceeds the executor's MaxRows.
var ErrRowLimit = fmt.Errorf("exec: row limit exceeded")

// Run executes a query string against g on the sequential matcher.
func Run(g *graph.Graph, src string) (*Result, error) {
	return RunParallel(g, src, 1)
}

// RunParallel executes a query string against g with the given
// match-parallelism (see Executor.Workers for the knob's semantics).
func RunParallel(g *graph.Graph, src string, workers int) (*Result, error) {
	q, err := gql.Parse(src)
	if err != nil {
		return nil, err
	}
	return (&Executor{G: g, Workers: workers}).Execute(q)
}

// Execute evaluates a parsed query.
func (ex *Executor) Execute(q gql.Query) (*Result, error) {
	switch q := q.(type) {
	case *gql.MatchQuery:
		return ex.runMatch(q)
	case *gql.SelectQuery:
		return ex.runSelect(q)
	}
	return nil, fmt.Errorf("exec: unsupported query type %T", q)
}

// runMatch enumerates pattern matches and projects the RETURN items,
// with Cypher-style implicit grouping when aggregates appear. With
// Workers > 1 the enumeration is partitioned across a worker pool; the
// sequential path below remains the semantic reference.
func (ex *Executor) runMatch(q *gql.MatchQuery) (*Result, error) {
	if w := ex.effectiveWorkers(); w > 1 {
		if res, ok, err := ex.runMatchParallel(q, w); ok {
			return res, err
		}
	}
	cols := make([]string, len(q.Return))
	for i, item := range q.Return {
		cols[i] = item.Name()
	}
	agg := newAggregator(q.Return, nil)

	rows := 0
	m := &matcher{
		g:        ex.G,
		bindings: make(map[string]Value),
		usedEdge: make(map[graph.EdgeID]bool),
		where:    q.Where,
	}
	out := &Result{Cols: cols}
	m.yield = func() error {
		rows++
		if ex.MaxRows > 0 && rows > ex.MaxRows {
			return ErrRowLimit
		}
		if agg != nil {
			return agg.feed(m.bindings)
		}
		row := make(Row, len(q.Return))
		for i, item := range q.Return {
			v, err := evalExpr(item.Expr, m.bindings)
			if err != nil {
				return err
			}
			row[i] = v
		}
		out.Rows = append(out.Rows, row)
		return nil
	}
	if err := m.matchPatterns(q.Patterns); err != nil {
		return nil, err
	}
	if agg != nil {
		var err error
		out.Rows, err = agg.finish()
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runSelect evaluates the subquery, then filter/group/order/limit.
func (ex *Executor) runSelect(q *gql.SelectQuery) (*Result, error) {
	sub, err := ex.Execute(q.From)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(q.Items))
	for i, item := range q.Items {
		cols[i] = item.Name()
	}
	out := &Result{Cols: cols}

	agg := newAggregator(q.Items, q.GroupBy)
	env := make(map[string]Value, len(sub.Cols))
	for _, row := range sub.Rows {
		for i, c := range sub.Cols {
			env[c] = row[i]
		}
		if q.Where != nil {
			ok, err := evalBool(q.Where, env)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		if agg != nil {
			if err := agg.feed(env); err != nil {
				return nil, err
			}
			continue
		}
		outRow := make(Row, len(q.Items))
		for i, item := range q.Items {
			v, err := evalExpr(item.Expr, env)
			if err != nil {
				return nil, err
			}
			outRow[i] = v
		}
		out.Rows = append(out.Rows, outRow)
	}
	if agg != nil {
		out.Rows, err = agg.finish()
		if err != nil {
			return nil, err
		}
	}
	if len(q.OrderBy) > 0 {
		if err := orderRows(out, q.OrderBy); err != nil {
			return nil, err
		}
	}
	if q.Limit >= 0 && len(out.Rows) > q.Limit {
		out.Rows = out.Rows[:q.Limit]
	}
	return out, nil
}

func orderRows(r *Result, order []gql.OrderItem) error {
	var evalErr error
	envFor := func(row Row) map[string]Value {
		env := make(map[string]Value, len(r.Cols))
		for i, c := range r.Cols {
			env[c] = row[i]
		}
		return env
	}
	keys := make([][]Value, len(r.Rows))
	for ri, row := range r.Rows {
		env := envFor(row)
		ks := make([]Value, len(order))
		for oi, o := range order {
			v, err := evalExpr(o.Expr, env)
			if err != nil {
				return err
			}
			ks[oi] = v
		}
		keys[ri] = ks
	}
	idx := make([]int, len(r.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for oi, o := range order {
			c, ok := compareValues(keys[idx[a]][oi], keys[idx[b]][oi])
			if !ok {
				continue
			}
			if c != 0 {
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	sorted := make([]Row, len(r.Rows))
	for i, j := range idx {
		sorted[i] = r.Rows[j]
	}
	r.Rows = sorted
	return evalErr
}
