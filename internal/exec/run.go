package exec

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sort"
	"time"

	"kaskade/internal/gql"
	"kaskade/internal/graph"
	"kaskade/internal/metrics"
)

// Executor runs queries against a graph. The zero value plus a Graph is
// ready to use; MaxRows, when positive, aborts queries that produce more
// than that many intermediate rows (a guard against accidentally
// intractable pattern matches — the very thing Kaskade's views exist to
// avoid).
//
// Workers controls pattern-match parallelism: 0 or 1 runs the
// sequential matcher, N>1 partitions the first-node binding space
// across N goroutines, and any negative value uses one worker per
// available CPU. The parallel path merges partitions deterministically,
// so results are identical to the sequential path row for row; how a
// partition's yields reach the merge is chosen per query at plan time
// (AggMode: eager row streaming, per-chunk partial accumulators, or
// buffered yield replay — see parallel.go). The graph must not be
// mutated during execution — after load, a graph.Graph is read-only
// and safe for concurrent traversal.
//
// Execution comes in two forms built on one streaming core:
// ExecuteContext buffers every row into a Result; Stream returns a Rows
// cursor that yields rows incrementally, in exactly the order the
// buffered path would produce them. Both observe context cancellation:
// the matcher polls the context between traversal steps, so a
// pathological pattern match stops soon after the caller walks away.
type Executor struct {
	G       *graph.Graph
	MaxRows int
	Workers int

	// Metrics, when set, records every top-level execution (count,
	// rows, latency, errors) into the registry; Label names the
	// execution in the registry's per-query stats (empty = aggregate
	// counters only). Subqueries of a SELECT are part of their parent
	// execution and are not observed separately.
	Metrics *metrics.Registry
	Label   string

	// Prof, when set, collects per-stage actuals (rows, chunks, wall
	// time) for this execution — the EXPLAIN ANALYZE hook. A Profile is
	// single-use: attach a fresh one per execution.
	Prof *Profile

	// noPartialAgg forces AggModePartial queries onto the buffered
	// path — the A/B switch the equivalence tests and benchmarks use to
	// prove the two strategies byte-identical.
	noPartialAgg bool

	// noFrozen forces the matcher onto the append-mode adjacency
	// (Graph.Out/In with per-edge type filtering) instead of the frozen
	// CSR view — the A/B switch the frozen-vs-append equivalence suite
	// and benchmarks use. Results are byte-identical either way.
	noFrozen bool

	// noColumns pins every property read to the per-vertex map and
	// disables the column prefilter, leaving the frozen columns unused —
	// the A/B switch the columnar equivalence suite and benchmarks use.
	// Results are byte-identical either way (freeze-time validation
	// guarantees a column holds exactly what the map holds).
	noColumns bool
}

// QueryAggMode reports the aggregation execution strategy the parallel
// path selects at plan time for q — the mode of its innermost MATCH
// block's RETURN items, since that is the block the worker pool
// executes (a wrapping SELECT's own aggregation is a blocking
// relational operator either way). See AggMode for the strategies.
// It assumes no schema; QueryAggModeFor additionally consults schema
// property declarations.
func QueryAggMode(q gql.Query) AggMode {
	return QueryAggModeFor(q, nil)
}

// QueryAggModeFor is QueryAggMode with the schema of the graph the
// query will run against: schema-declared property kinds
// (Schema.DeclareProperty) let the plan-time analysis prove integer SUM
// over properties like j.CPU, widening the partial-aggregation class.
func QueryAggModeFor(q gql.Query, schema *graph.Schema) AggMode {
	m := gql.InnermostMatch(q)
	if m == nil {
		return AggModeNone
	}
	return aggModeOf(m.Return, newTypeEnv(schema, m.Patterns))
}

// ErrRowLimit is returned when a query exceeds the executor's MaxRows.
var ErrRowLimit = fmt.Errorf("exec: row limit exceeded")

// errStreamStop aborts the matcher when a streaming consumer stops
// early (Rows.Close, or breaking out of an iter.Seq2 loop). It never
// escapes the streaming core.
var errStreamStop = errors.New("exec: stream consumer stopped")

// Run executes a query string against g on the sequential matcher.
func Run(g *graph.Graph, src string) (*Result, error) {
	return RunParallel(g, src, 1)
}

// RunParallel executes a query string against g with the given
// match-parallelism (see Executor.Workers for the knob's semantics).
func RunParallel(g *graph.Graph, src string, workers int) (*Result, error) {
	return RunParallelContext(context.Background(), g, src, workers)
}

// RunParallelContext is RunParallel with cancellation.
func RunParallelContext(ctx context.Context, g *graph.Graph, src string, workers int) (*Result, error) {
	q, err := gql.Parse(src)
	if err != nil {
		return nil, err
	}
	return (&Executor{G: g, Workers: workers}).ExecuteContext(ctx, q)
}

// Execute evaluates a parsed query into a buffered Result.
func (ex *Executor) Execute(q gql.Query) (*Result, error) {
	return ex.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute with cancellation: it drains the streaming
// core into a Result, returning ctx.Err() if the context is cancelled
// mid-query. A nil ctx means no cancellation.
func (ex *Executor) ExecuteContext(ctx context.Context, q gql.Query) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cols, body, err := ex.observedStream(ctx, q)
	if err != nil {
		return nil, err
	}
	out := &Result{Cols: cols}
	for row, err := range body {
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Stream evaluates a parsed query into a Rows cursor that yields rows
// incrementally — byte-identical, in identical order, to what
// ExecuteContext would buffer. The caller must Close the cursor.
// Closing early (or cancelling ctx) aborts the underlying match,
// including its worker pool when Workers > 1.
func (ex *Executor) Stream(ctx context.Context, q gql.Query) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The cursor owns a derived context so Close can abort a match that
	// is blocked deep in traversal (or waiting on parallel partitions)
	// even when the caller's ctx stays live.
	ictx, cancel := context.WithCancel(ctx)
	cols, body, err := ex.observedStream(ictx, q)
	if err != nil {
		cancel()
		return nil, err
	}
	return newRows(cols, body, cancel), nil
}

// observedStream wraps the execution core with metrics and profile
// recording. The wrapper fires once per top-level execution, when the
// row sequence finishes (normally, on error, or when the consumer
// stops early — the work done up to that point is what gets recorded);
// subqueries reach the core through stream directly and are not
// double-counted.
func (ex *Executor) observedStream(ctx context.Context, q gql.Query) ([]string, iter.Seq2[Row, error], error) {
	cols, body, err := ex.stream(ctx, q)
	if err != nil {
		if ex.Metrics != nil {
			ex.Metrics.QueryErrors.Inc()
		}
		return nil, nil, err
	}
	if ex.Metrics == nil && ex.Prof == nil {
		return cols, body, nil
	}
	inner := body
	body = func(yield func(Row, error) bool) {
		start := time.Now()
		var rows int64
		errored := false
		inner(func(r Row, e error) bool {
			if e != nil {
				errored = true
			} else {
				rows++
			}
			return yield(r, e)
		})
		d := time.Since(start)
		if ex.Prof != nil {
			ex.Prof.Rows, ex.Prof.Total = rows, d
		}
		if ex.Metrics != nil {
			ex.Metrics.ObserveQuery(ex.Label, d, rows, errored)
		}
	}
	return cols, body, nil
}

// stream is the single execution core: it resolves a query to its
// column names and a one-shot row sequence. The sequence yields
// (row, nil) per result row and terminates after at most one
// (nil, err). Both Execute and Stream consume it.
func (ex *Executor) stream(ctx context.Context, q gql.Query) ([]string, iter.Seq2[Row, error], error) {
	switch q := q.(type) {
	case *gql.MatchQuery:
		if w := ex.effectiveWorkers(); w > 1 {
			if cols, body, ok := ex.streamMatchParallel(ctx, q, w); ok {
				return cols, body, nil
			}
		}
		return ex.streamMatchSeq(ctx, q)
	case *gql.SelectQuery:
		return ex.streamSelect(ctx, q)
	}
	return nil, nil, fmt.Errorf("exec: unsupported query type %T", q)
}

// returnCols names the output columns of a RETURN/SELECT item list.
func returnCols(items []gql.ReturnItem) []string {
	cols := make([]string, len(items))
	for i, item := range items {
		cols[i] = item.Name()
	}
	return cols
}

// streamMatchSeq enumerates pattern matches on the sequential matcher
// and streams the projected rows, with Cypher-style implicit grouping
// when aggregates appear (aggregation is blocking: grouped rows stream
// only after the match completes). This is the semantic reference the
// parallel path reproduces.
func (ex *Executor) streamMatchSeq(ctx context.Context, q *gql.MatchQuery) ([]string, iter.Seq2[Row, error], error) {
	cols := returnCols(q.Return)
	if ex.Prof != nil {
		ex.Prof.Workers = 1
		ex.Prof.Mode = aggModeOf(q.Return, newTypeEnv(ex.G.Schema(), q.Patterns))
	}
	body := func(yield func(Row, error) bool) {
		matchStart := time.Now()
		agg := newAggregator(q.Return, nil, ex.noColumns)
		m := ex.newMatcher(ctx, q)
		defer m.flushPropReads(ex.Metrics)
		if pf := ex.columnPrefilter(q); pf != nil {
			m.firstCands = pf.filter(ex.G.VerticesOfType(q.Patterns[0].Nodes[0].Type), ex.Metrics)
		}
		rows := 0
		m.yield = func() error {
			rows++
			if ex.MaxRows > 0 && rows > ex.MaxRows {
				return ErrRowLimit
			}
			if agg != nil {
				return agg.feed(m)
			}
			row := make(Row, len(q.Return))
			for i, item := range q.Return {
				v, err := evalExpr(item.Expr, m)
				if err != nil {
					return err
				}
				row[i] = exportValue(v)
			}
			if !yield(row, nil) {
				return errStreamStop
			}
			return nil
		}
		if err := m.matchPatterns(q.Patterns); err != nil {
			if err != errStreamStop {
				yield(nil, err)
			}
			return
		}
		if ex.Prof != nil {
			ex.Prof.add("match", int64(rows), 0, time.Since(matchStart))
		}
		if agg != nil {
			finStart := time.Now()
			out, err := agg.finish()
			if err != nil {
				yield(nil, err)
				return
			}
			if ex.Prof != nil {
				ex.Prof.add("aggregate", int64(len(out)), 0, time.Since(finStart))
			}
			for _, row := range out {
				if !yield(row, nil) {
					return
				}
			}
		}
	}
	return cols, body, nil
}

// streamSelect evaluates the subquery, then filter/group/order/limit.
// The relational tail is evaluated in full before the first row is
// yielded — ORDER BY and grouping are blocking operators anyway — but
// the subquery itself runs through the cancellable core, so a SELECT
// over a runaway MATCH still stops when the context does.
func (ex *Executor) streamSelect(ctx context.Context, q *gql.SelectQuery) ([]string, iter.Seq2[Row, error], error) {
	cols := returnCols(q.Items)
	body := func(yield func(Row, error) bool) {
		out, err := ex.evalSelect(ctx, q)
		if err != nil {
			yield(nil, err)
			return
		}
		for _, row := range out.Rows {
			if !yield(row, nil) {
				return
			}
		}
	}
	return cols, body, nil
}

// evalSelect is the buffered relational tail shared by both execution
// forms. The subquery reaches the execution core directly (not through
// ExecuteContext) so a metrics-instrumented executor observes the
// SELECT as one execution, not two.
func (ex *Executor) evalSelect(ctx context.Context, q *gql.SelectQuery) (*Result, error) {
	subCols, subBody, err := ex.stream(ctx, q.From)
	if err != nil {
		return nil, err
	}
	sub := &Result{Cols: subCols}
	for row, err := range subBody {
		if err != nil {
			return nil, err
		}
		sub.Rows = append(sub.Rows, row)
	}
	tailStart := time.Now()
	out := &Result{Cols: returnCols(q.Items)}

	agg := newAggregator(q.Items, q.GroupBy, ex.noColumns)
	env := make(map[string]Value, len(sub.Cols))
	sc := mapScope{env: env, noCols: ex.noColumns}
	for _, row := range sub.Rows {
		for i, c := range sub.Cols {
			env[c] = row[i]
		}
		if q.Where != nil {
			ok, err := evalBool(q.Where, sc)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		if agg != nil {
			if err := agg.feed(sc); err != nil {
				return nil, err
			}
			continue
		}
		outRow := make(Row, len(q.Items))
		for i, item := range q.Items {
			v, err := evalExpr(item.Expr, sc)
			if err != nil {
				return nil, err
			}
			outRow[i] = v
		}
		out.Rows = append(out.Rows, outRow)
	}
	if agg != nil {
		out.Rows, err = agg.finish()
		if err != nil {
			return nil, err
		}
	}
	if ex.Prof != nil {
		stage := "select: filter/project"
		if agg != nil {
			stage = "select: aggregate"
		}
		ex.Prof.add(stage, int64(len(out.Rows)), 0, time.Since(tailStart))
	}
	if len(q.OrderBy) > 0 {
		orderStart := time.Now()
		if err := orderRows(out, q.OrderBy, ex.noColumns); err != nil {
			return nil, err
		}
		if ex.Prof != nil {
			ex.Prof.add("select: order by", int64(len(out.Rows)), 0, time.Since(orderStart))
		}
	}
	if q.Limit >= 0 && len(out.Rows) > q.Limit {
		out.Rows = out.Rows[:q.Limit]
		if ex.Prof != nil {
			ex.Prof.add("select: limit", int64(len(out.Rows)), 0, 0)
		}
	}
	return out, nil
}

func orderRows(r *Result, order []gql.OrderItem, noCols bool) error {
	env := make(map[string]Value, len(r.Cols))
	sc := mapScope{env: env, noCols: noCols}
	keys := make([][]Value, len(r.Rows))
	for ri, row := range r.Rows {
		for i, c := range r.Cols {
			env[c] = row[i]
		}
		ks := make([]Value, len(order))
		for oi, o := range order {
			v, err := evalExpr(o.Expr, sc)
			if err != nil {
				return err
			}
			ks[oi] = v
		}
		keys[ri] = ks
	}
	idx := make([]int, len(r.Rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for oi, o := range order {
			c, ok := compareValues(keys[idx[a]][oi], keys[idx[b]][oi])
			if !ok {
				continue // incomparable keys tie; later keys break it
			}
			if c != 0 {
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	sorted := make([]Row, len(r.Rows))
	for i, j := range idx {
		sorted[i] = r.Rows[j]
	}
	r.Rows = sorted
	return nil
}
