package exec

import (
	"fmt"

	"kaskade/internal/graph"
)

// scope is the evaluator's view of a variable environment. The matcher
// implements it directly over its flat var->slot scratch (no
// map[string]Value per partition), and mapScope adapts the relational
// paths (SELECT rows, aggregation representative rows) that genuinely
// hold maps. prop is part of the interface so each scope decides how a
// property access reads storage: the matcher routes vertex reads
// through the frozen columns (and counts hits vs map fallbacks), a
// noCols scope pins the map path for the A/B equivalence suites.
type scope interface {
	// lookup resolves a variable, reporting false when unbound.
	lookup(name string) (Value, bool)
	// prop reads base.key per this scope's storage policy.
	prop(base Value, key string) (Value, error)
	// snapshot materializes the bound variables as a map for retention
	// beyond the current row (aggregation representative rows, buffered
	// yields). Values escaping live bindings are exported (PathRef edge
	// slices copied), so the snapshot stays valid after backtracking.
	snapshot() map[string]Value
}

// mapScope is the scope over a plain environment map: SELECT row
// columns, aggregation representative rows.
type mapScope struct {
	env    map[string]Value
	noCols bool
}

func (s mapScope) lookup(name string) (Value, bool) {
	v, ok := s.env[name]
	return v, ok
}

func (s mapScope) prop(base Value, key string) (Value, error) {
	return readProp(base, key, !s.noCols, nil, nil)
}

func (s mapScope) snapshot() map[string]Value {
	out := make(map[string]Value, len(s.env))
	for k, v := range s.env {
		out[k] = exportValue(v)
	}
	return out
}

// readProp reads one property. Vertex reads prefer the graph's frozen
// columns when cols is set and a frozen view has already been built
// (CachedFrozen never builds one mid-evaluation): a covered read is two
// flat array indexes returning the exact boxed value the property map
// holds. Uncovered or column-disabled vertex reads fall back to the
// map. Edge properties always read the map (edge columns are not
// built). colReads/mapReads, when non-nil, count covered vertex reads
// vs vertex map fallbacks — the columnar-usage metrics.
func readProp(base Value, key string, cols bool, colReads, mapReads *int64) (Value, error) {
	switch base := base.(type) {
	case VertexRef:
		if cols {
			if f := base.G.CachedFrozen(); f != nil {
				if v, ok := f.VertexPropColumnar(base.ID, key); ok {
					if colReads != nil {
						*colReads++
					}
					return v, nil
				}
			}
		}
		if mapReads != nil {
			*mapReads++
		}
		return base.G.Vertex(base.ID).Prop(key), nil
	case EdgeRef:
		return base.G.Edge(base.ID).Prop(key), nil
	case nil:
		return nil, nil
	}
	return nil, fmt.Errorf("exec: property access on %T", base)
}

// exportValue makes a value safe to retain beyond the binding that
// produced it. Matcher PathRef bindings alias the walk's scratch path
// (the per-yield copy the old bindings map paid is gone), so any value
// that escapes a yield — projected rows, aggregate arguments, snapshot
// maps — is exported at the escape boundary instead: PathRef edge
// slices are copied (non-nil even for zero-hop paths, matching the old
// copies byte for byte), everything else is already immutable.
func exportValue(v Value) Value {
	if p, ok := v.(PathRef); ok {
		cp := make([]graph.EdgeID, len(p.Edges))
		copy(cp, p.Edges)
		p.Edges = cp
		return p
	}
	return v
}
